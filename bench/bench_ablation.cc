// Ablations over this implementation's own design choices (DESIGN.md):
//   A1  page size — split frequency, space, and query cost
//   A2  buffer pool capacity — hit rate and simulated magnetic time
//   A3  historical read cache — optical I/O saved on history scans
// These are not paper experiments; they justify the defaults the library
// ships with.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "common/random.h"
#include "tsb/cursor.h"

namespace tsb {
namespace bench {
namespace {

constexpr size_t kOps = 10000;

util::WorkloadSpec Spec() {
  util::WorkloadSpec spec;
  spec.seed = 42;
  spec.num_ops = kOps;
  spec.update_fraction = 0.6;
  spec.value_size = 40;
  return spec;
}

void PrintPageSizeTable() {
  printf("== A1: page size ablation (%zu ops, 60%% updates) ==\n\n", kOps);
  printf("%8s | %10s %10s %10s | %12s %12s\n", "page B", "key splits",
         "time splits", "height", "SpaceM KiB", "SpaceO KiB");
  printf("%s\n", std::string(78, '-').c_str());
  for (uint32_t page : {512u, 1024u, 2048u, 4096u, 8192u}) {
    tsb_tree::TsbOptions opts;
    opts.page_size = page;
    TsbFixture f = TsbFixture::Build(Spec(), opts);
    tsb_tree::SpaceStats stats = f.Stats();
    const auto& c = f.tree->counters();
    printf("%8u | %10llu %10llu %10u | %12.1f %12.1f\n", page,
           (unsigned long long)c.data_key_splits,
           (unsigned long long)c.data_time_splits, f.tree->height(),
           KiB(stats.magnetic_bytes), KiB(stats.optical_device_bytes));
  }
  printf("\n");
}

void PrintBufferPoolTable() {
  printf("== A2: buffer pool ablation (current-lookup working set) ==\n\n");
  printf("%8s | %10s %10s | %14s\n", "frames", "hits", "misses",
         "sim magnetic ms");
  printf("%s\n", std::string(52, '-').c_str());
  for (size_t frames : {4ul, 16ul, 64ul, 256ul}) {
    tsb_tree::TsbOptions opts;
    opts.page_size = 1024;
    opts.buffer_pool_frames = frames;
    TsbFixture f = TsbFixture::Build(Spec(), opts);
    f.magnetic->ResetStats();
    f.tree->buffer_pool()->ResetStats();
    Random rnd(9);
    util::WorkloadGenerator gen(Spec());
    std::string v;
    for (int i = 0; i < 2000; ++i) {
      f.tree->GetCurrent(gen.KeyFor(rnd.Uniform(gen.spec().num_ops / 3)), &v);
    }
    const auto& st = f.tree->buffer_pool()->stats();
    printf("%8zu | %10llu %10llu | %14.0f\n", frames,
           (unsigned long long)st.hits, (unsigned long long)st.misses,
           f.magnetic->stats().simulated_ms);
  }
  printf("\n");
}

void PrintHistCacheTable() {
  printf("== A3: historical read cache ablation (history scans) ==\n\n");
  printf("%8s | %12s %12s | %14s\n", "blobs", "cache hits", "dev reads",
         "sim optical ms");
  printf("%s\n", std::string(56, '-').c_str());
  for (size_t blobs : {0ul, 4ul, 32ul, 256ul}) {
    tsb_tree::TsbOptions opts;
    opts.page_size = 1024;
    opts.hist_cache_blobs = blobs;
    TsbFixture f = TsbFixture::Build(Spec(), opts);
    f.worm->ResetStats();
    Random rnd(9);
    util::WorkloadGenerator gen(Spec());
    for (int i = 0; i < 100; ++i) {
      auto it = f.tree->NewHistoryIterator(
          gen.KeyFor(rnd.Uniform(gen.spec().num_ops / 4)));
      it->SeekToNewest();
      while (it->Valid()) it->Next();
    }
    printf("%8zu | %12llu %12llu | %14.0f\n", blobs,
           (unsigned long long)f.tree->hist_store()->cache_hits(),
           (unsigned long long)f.worm->stats().reads,
           f.worm->stats().simulated_ms);
  }
  printf("\n");
}

void BM_GetCurrentByPageSize(benchmark::State& state) {
  tsb_tree::TsbOptions opts;
  opts.page_size = static_cast<uint32_t>(state.range(0));
  TsbFixture f = TsbFixture::Build(Spec(), opts);
  Random rnd(4);
  util::WorkloadGenerator gen(Spec());
  std::string v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.tree->GetCurrent(gen.KeyFor(rnd.Uniform(kOps / 3)), &v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GetCurrentByPageSize)->Arg(512)->Arg(2048)->Arg(8192);

}  // namespace
}  // namespace bench
}  // namespace tsb

int main(int argc, char** argv) {
  tsb::bench::PrintPageSizeTable();
  tsb::bench::PrintBufferPoolTable();
  tsb::bench::PrintHistCacheTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
