// Shared helpers for the experiment harness. Every bench binary prints the
// deterministic paper-style table for its experiment row(s) from DESIGN.md,
// then runs google-benchmark timings.
#ifndef TSBTREE_BENCH_BENCH_COMMON_H_
#define TSBTREE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>

#include "storage/mem_device.h"
#include "storage/worm_device.h"
#include "tsb/tsb_stats.h"
#include "tsb/tsb_tree.h"
#include "util/workload.h"

namespace tsb {
namespace bench {

/// A TSB-tree with its two devices, built from a workload.
struct TsbFixture {
  std::unique_ptr<MemDevice> magnetic;
  std::unique_ptr<WormDevice> worm;
  std::unique_ptr<tsb_tree::TsbTree> tree;

  static TsbFixture Build(const util::WorkloadSpec& spec,
                          const tsb_tree::TsbOptions& options,
                          uint32_t sector_size = 1024) {
    TsbFixture f;
    f.magnetic = std::make_unique<MemDevice>();
    f.worm = std::make_unique<WormDevice>(sector_size);
    Status s = tsb_tree::TsbTree::Open(f.magnetic.get(), f.worm.get(),
                                       options, &f.tree);
    if (!s.ok()) {
      fprintf(stderr, "fixture open failed: %s\n", s.ToString().c_str());
      abort();
    }
    util::WorkloadGenerator gen(spec);
    util::Op op;
    while (gen.Next(&op)) {
      s = f.tree->Put(op.key, op.value, op.ts);
      if (!s.ok()) {
        fprintf(stderr, "fixture put failed: %s\n", s.ToString().c_str());
        abort();
      }
    }
    return f;
  }

  tsb_tree::SpaceStats Stats() {
    tsb_tree::SpaceStats stats;
    Status s = tree->ComputeSpaceStats(&stats);
    if (!s.ok()) {
      fprintf(stderr, "stats failed: %s\n", s.ToString().c_str());
      abort();
    }
    return stats;
  }
};

inline double KiB(uint64_t bytes) { return static_cast<double>(bytes) / 1024.0; }

inline const char* KindPolicyName(tsb_tree::SplitKindPolicy p) {
  switch (p) {
    case tsb_tree::SplitKindPolicy::kWobtStyle:
      return "wobt-style";
    case tsb_tree::SplitKindPolicy::kThreshold:
      return "threshold";
    case tsb_tree::SplitKindPolicy::kCostBased:
      return "cost-based";
  }
  return "?";
}

inline const char* TimeModeName(tsb_tree::SplitTimeMode m) {
  switch (m) {
    case tsb_tree::SplitTimeMode::kCurrentTime:
      return "current-time";
    case tsb_tree::SplitTimeMode::kLastUpdate:
      return "last-update";
    case tsb_tree::SplitTimeMode::kMinRedundancy:
      return "min-redundancy";
  }
  return "?";
}

}  // namespace bench
}  // namespace tsb

#endif  // TSBTREE_BENCH_BENCH_COMMON_H_
