// Concurrency experiment (paper section 4.1): one updater advancing the
// logical clock while N read-only transactions run lock-free against
// timestamped snapshots. Reports aggregate reader throughput as the reader
// count grows — with per-frame shared latches and a sharded buffer pool,
// point reads should scale nearly linearly until the memory bus saturates.
//
// The deterministic table is the acceptance artifact: reader scaling at 4
// threads (1 writer running) vs 1 thread (1 writer running).
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "tsb/cursor.h"

namespace tsb {
namespace bench {
namespace {

constexpr int kKeys = 4000;
constexpr int kMeasureMs = 400;

std::string KeyOf(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%06d", i);
  return buf;
}

tsb_tree::TsbOptions Options() {
  tsb_tree::TsbOptions options;
  options.page_size = 4096;
  options.buffer_pool_frames = 512;
  options.hist_cache_blobs = 32;
  return options;
}

struct ConcurrencyFixture {
  std::unique_ptr<MemDevice> magnetic;
  std::unique_ptr<MemDevice> optical;
  std::unique_ptr<tsb_tree::TsbTree> tree;

  static ConcurrencyFixture Build() {
    ConcurrencyFixture f;
    f.magnetic = std::make_unique<MemDevice>();
    f.optical = std::make_unique<MemDevice>(DeviceKind::kOpticalErasable,
                                            CostParams::OpticalWorm());
    Status s = tsb_tree::TsbTree::Open(f.magnetic.get(), f.optical.get(),
                                       Options(), &f.tree);
    if (!s.ok()) {
      fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
      abort();
    }
    for (int i = 0; i < kKeys; ++i) {
      const Timestamp ts = f.tree->clock().Tick();
      s = f.tree->Put(KeyOf(i), "v0-initial-payload-for-key-" + KeyOf(i), ts);
      if (!s.ok()) {
        fprintf(stderr, "seed put failed: %s\n", s.ToString().c_str());
        abort();
      }
    }
    return f;
  }
};

struct RunResult {
  double reader_ops_per_sec = 0;
  double writer_ops_per_sec = 0;
};

// Runs 1 writer + `n_readers` reader threads for kMeasureMs and returns
// the aggregate throughputs.
RunResult RunMix(tsb_tree::TsbTree* tree, int n_readers) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reader_ops{0};
  std::atomic<uint64_t> writer_ops{0};
  std::atomic<bool> failed{false};

  std::thread writer([&] {
    uint64_t seq = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::string key = KeyOf(static_cast<int>(seq % kKeys));
      const Timestamp ts = tree->clock().Tick();
      Status s = tree->Put(key, "v" + std::to_string(ts) + "-updated", ts);
      if (!s.ok()) {
        failed.store(true);
        break;
      }
      writer_ops.fetch_add(1, std::memory_order_relaxed);
      seq++;
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < n_readers; ++r) {
    readers.emplace_back([&, r] {
      uint64_t rng = 0x9E3779B97F4A7C15ull * (r + 1);
      uint64_t local = 0;
      while (!stop.load(std::memory_order_acquire)) {
        // A read-only transaction: capture the committed watermark, read
        // as of it.
        const Timestamp t = tree->VisibleNow();
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        const int ki = static_cast<int>((rng >> 33) % kKeys);
        std::string value;
        Status s = tree->GetAsOf(KeyOf(ki), t, &value);
        if (!s.ok()) {
          failed.store(true);
          break;
        }
        local++;
      }
      reader_ops.fetch_add(local, std::memory_order_relaxed);
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(kMeasureMs));
  stop.store(true, std::memory_order_release);
  writer.join();
  for (auto& t : readers) t.join();
  if (failed.load()) {
    fprintf(stderr, "concurrent run failed\n");
    abort();
  }

  RunResult res;
  res.reader_ops_per_sec =
      static_cast<double>(reader_ops.load()) * 1000.0 / kMeasureMs;
  res.writer_ops_per_sec =
      static_cast<double>(writer_ops.load()) * 1000.0 / kMeasureMs;
  return res;
}

void PrintTable() {
  printf("# E9 concurrency: 1 writer + N lock-free timestamped readers\n");
  printf("# keys=%d page=4096 frames=512 measure=%dms cores=%u\n", kKeys,
         kMeasureMs, std::thread::hardware_concurrency());
  if (std::thread::hardware_concurrency() < 4) {
    printf(
        "# NOTE: <4 cores — reader threads time-share; the scaling column\n"
        "# is capped by the scheduler, not by the latching protocol\n"
        "# (single-core ceiling for 1 writer + N readers is ~(N/(N+1))/0.5).\n");
  }
  printf("%-10s %16s %16s %10s\n", "readers", "reads/s", "writes/s",
         "scaling");
  ConcurrencyFixture f = ConcurrencyFixture::Build();
  double base = 0;
  for (int n : {1, 2, 4, 8}) {
    const RunResult r = RunMix(f.tree.get(), n);
    if (n == 1) base = r.reader_ops_per_sec;
    printf("%-10d %16.0f %16.0f %9.2fx\n", n, r.reader_ops_per_sec,
           r.writer_ops_per_sec,
           base > 0 ? r.reader_ops_per_sec / base : 0.0);
  }
  printf("\n");
}

void BM_ConcurrentReaders(benchmark::State& state) {
  static ConcurrencyFixture* f = [] {
    auto* fix = new ConcurrencyFixture(ConcurrencyFixture::Build());
    return fix;
  }();
  const int n_readers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const RunResult r = RunMix(f->tree.get(), n_readers);
    state.counters["reads_per_sec"] = r.reader_ops_per_sec;
    state.counters["writes_per_sec"] = r.writer_ops_per_sec;
  }
}
BENCHMARK(BM_ConcurrentReaders)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace tsb

int main(int argc, char** argv) {
  tsb::bench::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
