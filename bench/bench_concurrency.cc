// Concurrency experiment (paper section 4.1): one updater advancing the
// logical clock while N read-only transactions run lock-free against
// timestamped snapshots. Reports aggregate reader throughput as the reader
// count grows — with per-frame shared latches and a sharded buffer pool,
// point reads should scale nearly linearly until the memory bus saturates.
//
// Second phase: N committing WRITERS, serial mode (single-writer
// discipline, the paper's model) vs optimistic latch coupling
// (concurrent_writers), on disjoint key ranges and on one contended key
// space. Emits BENCH_concurrency.json (BENCH_CONCURRENCY_JSON overrides
// the path) with the scaling ratios CI gates on.
//
// The deterministic tables are the acceptance artifacts: reader scaling at
// 4 threads vs 1, and 4-writer OLC throughput vs 1-writer on disjoint
// ranges.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "tsb/cursor.h"
#include "txn/txn_manager.h"
#include "txn/write_batch.h"

namespace tsb {
namespace bench {
namespace {

constexpr int kKeys = 4000;
constexpr int kMeasureMs = 400;

std::string KeyOf(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%06d", i);
  return buf;
}

tsb_tree::TsbOptions Options() {
  tsb_tree::TsbOptions options;
  options.page_size = 4096;
  options.buffer_pool_frames = 512;
  options.hist_cache_blobs = 32;
  return options;
}

struct ConcurrencyFixture {
  std::unique_ptr<MemDevice> magnetic;
  std::unique_ptr<MemDevice> optical;
  std::unique_ptr<tsb_tree::TsbTree> tree;

  static ConcurrencyFixture Build() {
    ConcurrencyFixture f;
    f.magnetic = std::make_unique<MemDevice>();
    f.optical = std::make_unique<MemDevice>(DeviceKind::kOpticalErasable,
                                            CostParams::OpticalWorm());
    Status s = tsb_tree::TsbTree::Open(f.magnetic.get(), f.optical.get(),
                                       Options(), &f.tree);
    if (!s.ok()) {
      fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
      abort();
    }
    for (int i = 0; i < kKeys; ++i) {
      const Timestamp ts = f.tree->clock().Tick();
      s = f.tree->Put(KeyOf(i), "v0-initial-payload-for-key-" + KeyOf(i), ts);
      if (!s.ok()) {
        fprintf(stderr, "seed put failed: %s\n", s.ToString().c_str());
        abort();
      }
    }
    return f;
  }
};

struct RunResult {
  double reader_ops_per_sec = 0;
  double writer_ops_per_sec = 0;
};

// Runs 1 writer + `n_readers` reader threads for kMeasureMs and returns
// the aggregate throughputs.
RunResult RunMix(tsb_tree::TsbTree* tree, int n_readers) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reader_ops{0};
  std::atomic<uint64_t> writer_ops{0};
  std::atomic<bool> failed{false};

  std::thread writer([&] {
    uint64_t seq = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::string key = KeyOf(static_cast<int>(seq % kKeys));
      const Timestamp ts = tree->clock().Tick();
      Status s = tree->Put(key, "v" + std::to_string(ts) + "-updated", ts);
      if (!s.ok()) {
        failed.store(true);
        break;
      }
      writer_ops.fetch_add(1, std::memory_order_relaxed);
      seq++;
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < n_readers; ++r) {
    readers.emplace_back([&, r] {
      uint64_t rng = 0x9E3779B97F4A7C15ull * (r + 1);
      uint64_t local = 0;
      while (!stop.load(std::memory_order_acquire)) {
        // A read-only transaction: capture the committed watermark, read
        // as of it.
        const Timestamp t = tree->VisibleNow();
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        const int ki = static_cast<int>((rng >> 33) % kKeys);
        std::string value;
        Status s = tree->GetAsOf(KeyOf(ki), t, &value);
        if (!s.ok()) {
          failed.store(true);
          break;
        }
        local++;
      }
      reader_ops.fetch_add(local, std::memory_order_relaxed);
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(kMeasureMs));
  stop.store(true, std::memory_order_release);
  writer.join();
  for (auto& t : readers) t.join();
  if (failed.load()) {
    fprintf(stderr, "concurrent run failed\n");
    abort();
  }

  RunResult res;
  res.reader_ops_per_sec =
      static_cast<double>(reader_ops.load()) * 1000.0 / kMeasureMs;
  res.writer_ops_per_sec =
      static_cast<double>(writer_ops.load()) * 1000.0 / kMeasureMs;
  return res;
}

void PrintTable() {
  printf("# E9 concurrency: 1 writer + N lock-free timestamped readers\n");
  printf("# keys=%d page=4096 frames=512 measure=%dms cores=%u\n", kKeys,
         kMeasureMs, std::thread::hardware_concurrency());
  if (std::thread::hardware_concurrency() < 4) {
    printf(
        "# NOTE: <4 cores — reader threads time-share; the scaling column\n"
        "# is capped by the scheduler, not by the latching protocol\n"
        "# (single-core ceiling for 1 writer + N readers is ~(N/(N+1))/0.5).\n");
  }
  printf("%-10s %16s %16s %10s\n", "readers", "reads/s", "writes/s",
         "scaling");
  ConcurrencyFixture f = ConcurrencyFixture::Build();
  double base = 0;
  for (int n : {1, 2, 4, 8}) {
    const RunResult r = RunMix(f.tree.get(), n);
    if (n == 1) base = r.reader_ops_per_sec;
    printf("%-10d %16.0f %16.0f %9.2fx\n", n, r.reader_ops_per_sec,
           r.writer_ops_per_sec,
           base > 0 ? r.reader_ops_per_sec / base : 0.0);
  }
  printf("\n");
}

// ---- writer scaling (optimistic latch coupling vs serial) -------------

struct WriterFixture {
  std::unique_ptr<MemDevice> magnetic;
  std::unique_ptr<MemDevice> optical;
  std::unique_ptr<tsb_tree::TsbTree> tree;
  std::unique_ptr<txn::TxnManager> txns;

  static WriterFixture Build(bool concurrent) {
    WriterFixture f;
    f.magnetic = std::make_unique<MemDevice>();
    f.optical = std::make_unique<MemDevice>(DeviceKind::kOpticalErasable,
                                            CostParams::OpticalWorm());
    tsb_tree::TsbOptions options = Options();
    options.concurrent_writers = concurrent;
    Status s = tsb_tree::TsbTree::Open(f.magnetic.get(), f.optical.get(),
                                       options, &f.tree);
    if (!s.ok()) {
      fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
      abort();
    }
    f.txns = std::make_unique<txn::TxnManager>(f.tree.get());
    for (int i = 0; i < kKeys; ++i) {
      const Timestamp ts = f.tree->clock().Tick();
      s = f.tree->Put(KeyOf(i), "v0-initial-payload-for-key-" + KeyOf(i), ts);
      if (!s.ok()) {
        fprintf(stderr, "seed put failed: %s\n", s.ToString().c_str());
        abort();
      }
    }
    f.tree->clock().Publish(f.tree->clock().Now());
    return f;
  }
};

struct WriterRun {
  double commits_per_sec = 0;
  uint64_t conflicts = 0;
  uint64_t olc_restarts = 0;
  uint64_t olc_sidesteps = 0;
};

// Runs `n_writers` threads committing single-key transactions for
// kMeasureMs. Disjoint = each writer owns kKeys/n_writers keys (the
// scaling case); contended = every writer draws from the whole key space
// (first-writer-wins conflicts are counted, not fatal).
WriterRun RunWriters(WriterFixture* f, int n_writers, bool disjoint) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> conflicts{0};
  std::atomic<bool> failed{false};
  const uint64_t restarts0 = f->tree->counters().olc_restarts.load();
  const uint64_t sidesteps0 = f->tree->counters().olc_sidesteps.load();

  std::vector<std::thread> writers;
  for (int w = 0; w < n_writers; ++w) {
    writers.emplace_back([&, w] {
      const int shard = kKeys / n_writers;
      const int lo = w * shard;
      uint64_t rng = 0x9E3779B97F4A7C15ull * (w + 1);
      uint64_t seq = 0;
      uint64_t local_commits = 0;
      uint64_t local_conflicts = 0;
      while (!stop.load(std::memory_order_acquire)) {
        int ki;
        if (disjoint) {
          ki = lo + static_cast<int>(seq % shard);
        } else {
          rng = rng * 6364136223846793005ull + 1442695040888963407ull;
          ki = static_cast<int>((rng >> 33) % kKeys);
        }
        txn::WriteBatch batch;
        batch.Put(KeyOf(ki),
                  "w" + std::to_string(w) + "-v" + std::to_string(seq));
        Status s = f->txns->Write(batch);
        seq++;
        if (s.IsTxnConflict()) {
          local_conflicts++;
          continue;
        }
        if (!s.ok()) {
          fprintf(stderr, "writer commit failed: %s\n", s.ToString().c_str());
          failed.store(true);
          break;
        }
        local_commits++;
      }
      commits.fetch_add(local_commits, std::memory_order_relaxed);
      conflicts.fetch_add(local_conflicts, std::memory_order_relaxed);
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(kMeasureMs));
  stop.store(true, std::memory_order_release);
  for (auto& t : writers) t.join();
  if (failed.load()) {
    fprintf(stderr, "writer run failed\n");
    abort();
  }

  WriterRun res;
  res.commits_per_sec =
      static_cast<double>(commits.load()) * 1000.0 / kMeasureMs;
  res.conflicts = conflicts.load();
  res.olc_restarts = f->tree->counters().olc_restarts.load() - restarts0;
  res.olc_sidesteps = f->tree->counters().olc_sidesteps.load() - sidesteps0;
  return res;
}

void PrintWriterTableAndJson() {
  printf("# E10 writer scaling: N single-key committing writers\n");
  printf("# keys=%d page=4096 frames=512 measure=%dms cores=%u\n", kKeys,
         kMeasureMs, std::thread::hardware_concurrency());
  if (std::thread::hardware_concurrency() < 4) {
    printf(
        "# NOTE: <4 cores — writer threads time-share; scaling is capped\n"
        "# by the scheduler, not by the latching protocol.\n");
  }
  printf("%-8s %-10s %-8s %14s %10s %10s %10s\n", "mode", "pattern",
         "writers", "commits/s", "conflicts", "restarts", "sidesteps");

  struct Row {
    bool concurrent;
    bool disjoint;
    int n;
    WriterRun r;
  };
  std::vector<Row> rows;
  for (const bool concurrent : {false, true}) {
    for (const bool disjoint : {true, false}) {
      for (const int n : {1, 2, 4, 8}) {
        // Fresh tree per run: every configuration pays the same seed
        // state instead of inheriting the previous run's versions/splits.
        WriterFixture f = WriterFixture::Build(concurrent);
        Row row{concurrent, disjoint, n, RunWriters(&f, n, disjoint)};
        printf("%-8s %-10s %-8d %14.0f %10llu %10llu %10llu\n",
               concurrent ? "olc" : "serial",
               disjoint ? "disjoint" : "contended", n, row.r.commits_per_sec,
               (unsigned long long)row.r.conflicts,
               (unsigned long long)row.r.olc_restarts,
               (unsigned long long)row.r.olc_sidesteps);
        rows.push_back(std::move(row));
      }
    }
  }
  printf("\n");

  auto find = [&](bool concurrent, bool disjoint, int n) -> const WriterRun& {
    for (const Row& row : rows) {
      if (row.concurrent == concurrent && row.disjoint == disjoint &&
          row.n == n) {
        return row.r;
      }
    }
    abort();
  };
  const double olc_1w = find(true, true, 1).commits_per_sec;
  const double olc_4w = find(true, true, 4).commits_per_sec;
  const double serial_1w = find(false, true, 1).commits_per_sec;
  const double speedup_4w = olc_1w > 0 ? olc_4w / olc_1w : 0.0;
  const double olc_over_serial = serial_1w > 0 ? olc_1w / serial_1w : 0.0;
  printf("4-writer OLC vs 1-writer (disjoint): %.2fx\n", speedup_4w);
  printf("1-writer OLC vs 1-writer serial:     %.2fx\n\n", olc_over_serial);

  const char* path = std::getenv("BENCH_CONCURRENCY_JSON");
  if (path == nullptr) path = "BENCH_concurrency.json";
  FILE* out = fopen(path, "w");
  if (out == nullptr) {
    fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  fprintf(out,
          "{\n"
          "  \"hardware_concurrency\": %u,\n"
          "  \"keys\": %d,\n"
          "  \"measure_ms\": %d,\n"
          "  \"runs\": [\n",
          std::thread::hardware_concurrency(), kKeys, kMeasureMs);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    fprintf(out,
            "    {\"mode\": \"%s\", \"pattern\": \"%s\", \"writers\": %d, "
            "\"commits_per_sec\": %.1f, \"conflicts\": %llu, "
            "\"olc_restarts\": %llu, \"olc_sidesteps\": %llu}%s\n",
            row.concurrent ? "olc" : "serial",
            row.disjoint ? "disjoint" : "contended", row.n,
            row.r.commits_per_sec, (unsigned long long)row.r.conflicts,
            (unsigned long long)row.r.olc_restarts,
            (unsigned long long)row.r.olc_sidesteps,
            i + 1 < rows.size() ? "," : "");
  }
  fprintf(out,
          "  ],\n"
          "  \"speedup_4w_disjoint_vs_1w\": %.3f,\n"
          "  \"olc_1w_over_serial_1w\": %.3f\n"
          "}\n",
          speedup_4w, olc_over_serial);
  fclose(out);
  printf("wrote %s\n\n", path);
}

void BM_ConcurrentWriters(benchmark::State& state) {
  const int n_writers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    WriterFixture f = WriterFixture::Build(/*concurrent=*/true);
    const WriterRun r = RunWriters(&f, n_writers, /*disjoint=*/true);
    state.counters["commits_per_sec"] = r.commits_per_sec;
    state.counters["olc_restarts"] = static_cast<double>(r.olc_restarts);
  }
}
BENCHMARK(BM_ConcurrentWriters)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_ConcurrentReaders(benchmark::State& state) {
  static ConcurrencyFixture* f = [] {
    auto* fix = new ConcurrencyFixture(ConcurrencyFixture::Build());
    return fix;
  }();
  const int n_readers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const RunResult r = RunMix(f->tree.get(), n_readers);
    state.counters["reads_per_sec"] = r.reader_ops_per_sec;
    state.counters["writes_per_sec"] = r.writer_ops_per_sec;
  }
}
BENCHMARK(BM_ConcurrentReaders)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace tsb

int main(int argc, char** argv) {
  tsb::bench::PrintTable();
  tsb::bench::PrintWriterTableAndJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
