// Experiment E4 (paper section 3.2): the storage cost function
// CS = SpaceM * CM + SpaceO * CO. The splitting policy is parameterized
// (key-split threshold) and the optimum moves toward time splits as
// magnetic storage gets relatively more expensive — "more time splits to
// lower magnetic-disk space use, more key splits to lower total space use"
// (section 5).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace tsb {
namespace bench {
namespace {

constexpr size_t kOps = 15000;

struct Sample {
  double threshold;
  tsb_tree::SpaceStats stats;
};

std::vector<Sample> Sweep() {
  std::vector<Sample> samples;
  for (double threshold : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    util::WorkloadSpec spec;
    spec.seed = 42;
    spec.num_ops = kOps;
    spec.update_fraction = 0.6;
    spec.value_size = 40;
    tsb_tree::TsbOptions opts;
    opts.page_size = 2048;
    opts.policy.kind_policy = tsb_tree::SplitKindPolicy::kThreshold;
    opts.policy.key_split_threshold = threshold;
    opts.policy.time_mode = tsb_tree::SplitTimeMode::kLastUpdate;
    TsbFixture f = TsbFixture::Build(spec, opts);
    samples.push_back({threshold, f.Stats()});
  }
  return samples;
}

void PrintTable() {
  printf("== E4: cost function CS = SpaceM*CM + SpaceO*CO ==\n");
  printf("(%zu ops at 60%% updates; threshold policy sweep; KiB units)\n\n",
         kOps);
  std::vector<Sample> samples = Sweep();
  printf("%10s %12s %12s |", "threshold", "SpaceM KiB", "SpaceO KiB");
  struct Ratio {
    const char* label;
    double cm, co;
  };
  const Ratio ratios[] = {{"CM:CO=1:1", 1.0, 1.0},
                          {"CM:CO=5:1", 1.0, 0.2},
                          {"CM:CO=25:1", 1.0, 0.04},
                          {"CM:CO=100:1", 1.0, 0.01}};
  for (const Ratio& r : ratios) printf(" %12s", r.label);
  printf("\n%s\n", std::string(36 + 13 * 4 + 1, '-').c_str());
  for (const Sample& s : samples) {
    printf("%10.2f %12.1f %12.1f |", s.threshold, KiB(s.stats.magnetic_bytes),
           KiB(s.stats.optical_device_bytes));
    for (const Ratio& r : ratios) {
      printf(" %12.1f", s.stats.StorageCost(r.cm, r.co) / 1024.0);
    }
    printf("\n");
  }
  // The crossover: which threshold minimizes CS at each price ratio.
  printf("\nbest threshold per price ratio:");
  for (const Ratio& r : ratios) {
    double best_cost = 1e300;
    double best_threshold = 0;
    for (const Sample& s : samples) {
      const double c = s.stats.StorageCost(r.cm, r.co);
      if (c < best_cost) {
        best_cost = c;
        best_threshold = s.threshold;
      }
    }
    printf("  %s -> %.1f", r.label, best_threshold);
  }
  printf("\n(higher thresholds = more time splits; the optimum moves toward"
         " time splits\n as magnetic storage gets relatively costlier)\n\n");
}

void BM_CostSweepBuild(benchmark::State& state) {
  const double threshold = static_cast<double>(state.range(0)) / 10.0;
  for (auto _ : state) {
    util::WorkloadSpec spec;
    spec.seed = 3;
    spec.num_ops = 3000;
    spec.update_fraction = 0.6;
    tsb_tree::TsbOptions opts;
    opts.page_size = 2048;
    opts.policy.key_split_threshold = threshold;
    TsbFixture f = TsbFixture::Build(spec, opts);
    benchmark::DoNotOptimize(f.tree.get());
  }
  state.SetItemsProcessed(state.iterations() * 3000);
}
BENCHMARK(BM_CostSweepBuild)->Arg(1)->Arg(5)->Arg(9)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace tsb

int main(int argc, char** argv) {
  tsb::bench::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
