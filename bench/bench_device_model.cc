// Experiment E7 (paper section 1): the device cost model itself — optical
// seeks ~3x slower than magnetic, ~20 s robot mounts, and the trade-off
// that makes the two-tier layout worthwhile: historical data is accessed
// less often, so its slower seeks are tolerable.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench_common.h"

namespace tsb {
namespace bench {
namespace {

void PrintTable() {
  printf("== E7: simulated device characteristics ==\n\n");
  printf("%-18s %12s %14s %12s | %16s\n", "device", "seek ms", "MB/s",
         "mount ms", "1000 rand reads");
  printf("%s\n", std::string(80, '-').c_str());
  struct Row {
    const char* name;
    DeviceKind kind;
    CostParams params;
  };
  const Row rows[] = {
      {"magnetic", DeviceKind::kMagnetic, CostParams::Magnetic()},
      {"optical-worm", DeviceKind::kOpticalErasable, CostParams::OpticalWorm()},
      {"optical-jukebox", DeviceKind::kOpticalErasable,
       CostParams::OpticalJukebox()},
  };
  double magnetic_ms = 0;
  for (const Row& row : rows) {
    MemDevice dev(row.kind, row.params);
    // Fill 4 MiB, then 1000 random 4 KiB reads.
    std::string chunk(1 << 16, 'x');
    for (int i = 0; i < 64; ++i) {
      dev.Write(static_cast<uint64_t>(i) << 16, chunk);
    }
    dev.ResetStats();
    Random rnd(1);
    char buf[4096];
    for (int i = 0; i < 1000; ++i) {
      dev.Read((rnd.Uniform(1023)) * 4096, sizeof(buf), buf);
    }
    const double ms = dev.stats().simulated_ms;
    if (row.kind == DeviceKind::kMagnetic) magnetic_ms = ms;
    printf("%-18s %12.1f %14.1f %12.1f | %13.0f ms%s\n", row.name,
           row.params.avg_seek_ms, row.params.transfer_mb_per_s,
           row.params.mount_ms, ms,
           magnetic_ms > 0 && row.kind != DeviceKind::kMagnetic
               ? (" (" + std::to_string(ms / magnetic_ms).substr(0, 4) +
                  "x magnetic)")
                     .c_str()
               : "");
  }
  printf("\n== access mix: why the split layout wins ==\n");
  printf("%-34s %16s\n", "configuration (95%% current reads)", "simulated ms");
  printf("%s\n", std::string(52, '-').c_str());
  // 1000 reads, 95% current / 5% historical, three placements.
  auto mixed = [&](CostParams cur, CostParams hist) {
    MemDevice c(DeviceKind::kMagnetic, cur);
    MemDevice h(DeviceKind::kOpticalErasable, hist);
    std::string chunk(1 << 16, 'x');
    for (int i = 0; i < 64; ++i) {
      c.Write(static_cast<uint64_t>(i) << 16, chunk);
      h.Write(static_cast<uint64_t>(i) << 16, chunk);
    }
    c.ResetStats();
    h.ResetStats();
    Random rnd(2);
    char buf[4096];
    for (int i = 0; i < 1000; ++i) {
      Device& dev = (rnd.Uniform(100) < 95) ? static_cast<Device&>(c)
                                            : static_cast<Device&>(h);
      dev.Read(rnd.Uniform(1023) * 4096, sizeof(buf), buf);
    }
    return c.stats().simulated_ms + h.stats().simulated_ms;
  };
  printf("%-34s %14.0f\n", "all magnetic (costly)",
         mixed(CostParams::Magnetic(), CostParams::Magnetic()));
  printf("%-34s %14.0f\n", "current magnetic + history optical",
         mixed(CostParams::Magnetic(), CostParams::OpticalWorm()));
  printf("%-34s %14.0f\n", "all optical (WOBT placement)",
         mixed(CostParams::OpticalWorm(), CostParams::OpticalWorm()));
  printf("\n(the hybrid tracks the all-magnetic time because the 5%%\n"
         "historical tail tolerates slow seeks — section 1's argument)\n\n");
}

void BM_SimulatedRandomRead(benchmark::State& state) {
  const CostParams params = state.range(0) == 0 ? CostParams::Magnetic()
                                                : CostParams::OpticalWorm();
  MemDevice dev(DeviceKind::kMagnetic, params);
  std::string chunk(1 << 16, 'x');
  for (int i = 0; i < 16; ++i) {
    dev.Write(static_cast<uint64_t>(i) << 16, chunk);
  }
  Random rnd(1);
  char buf[4096];
  for (auto _ : state) {
    benchmark::DoNotOptimize(dev.Read(rnd.Uniform(255) * 4096, 4096, buf));
  }
  state.counters["sim_ms_per_op"] =
      dev.stats().simulated_ms / static_cast<double>(state.iterations());
  state.SetLabel(state.range(0) == 0 ? "magnetic" : "optical");
}
BENCHMARK(BM_SimulatedRandomRead)->Arg(0)->Arg(1);

}  // namespace
}  // namespace bench
}  // namespace tsb

int main(int argc, char** argv) {
  tsb::bench::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
