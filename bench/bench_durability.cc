// Durability experiment: what the write-ahead log costs and what group
// commit buys back, plus recovery speed after a kill.
//
// Phase 1 (sync modes): single-writer commit throughput with the WAL off,
// unsynced (kOff), background-synced, and per-commit-group fsync'd — the
// full price ladder from "memory speed" to "survives power loss".
//
// Phase 2 (group commit): N concurrent committers in kGroup mode on
// disjoint key ranges. Every commit must be fsync'd before it returns,
// but committers rendezvous on one shared fdatasync; throughput should
// grow well past 1-writer fsync throughput (CI gates 8w >= 3x 1w, with
// an escape hatch when fdatasync itself is near-free, e.g. tmpfs).
//
// Phase 3 (recovery): a forked child writes a known volume of WAL and
// SIGKILLs itself; the parent times MultiVersionDB::Open and reports
// recovery throughput in MB of log replayed per second.
//
// Emits BENCH_durability.json (BENCH_DURABILITY_JSON overrides the path).
#include <benchmark/benchmark.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "db/multiversion_db.h"
#include "storage/fault_device.h"
#include "wal/wal.h"

namespace tsb {
namespace bench {
namespace {

constexpr int kMeasureMs = 300;
constexpr int kValueBytes = 100;

std::string KeyOf(int writer, int n) {
  char buf[24];
  snprintf(buf, sizeof(buf), "w%02d-%07d", writer, n);
  return buf;
}

std::string Root() {
  return "/tmp/tsb_bench_durability." + std::to_string(::getpid());
}

db::DbOptions Options(bool enable_wal, wal::WalSyncMode mode) {
  db::DbOptions opts;
  opts.tree.page_size = 4096;
  opts.tree.buffer_pool_frames = 1 << 14;
  opts.tree.concurrent_writers = true;
  opts.enable_wal = enable_wal;
  opts.wal_sync = mode;
  // Large threshold: checkpoints (and their freeze) stay out of the
  // measured window; the bench measures the append+sync path itself.
  opts.wal_checkpoint_bytes = 1ull << 40;
  return opts;
}

struct Run {
  double commits_per_sec = 0;
  double piggyback_ratio = 0;  // sync_requests / syncs (kGroup only)
};

/// N writers commit one-key batches on disjoint ranges for kMeasureMs.
Run RunWriters(const db::DbOptions& opts, int n_writers) {
  const std::string path = Root() + ".run";
  db::MultiVersionDB::Destroy(path);
  std::unique_ptr<db::MultiVersionDB> db;
  Status s = db::MultiVersionDB::Open(path, opts, &db);
  if (!s.ok()) {
    fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    abort();
  }
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> commits{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> writers;
  const std::string value(kValueBytes, 'v');
  for (int w = 0; w < n_writers; ++w) {
    writers.emplace_back([&, w] {
      for (int n = 0; !stop.load(std::memory_order_acquire); ++n) {
        db::WriteBatch batch;
        batch.Put(KeyOf(w, n), value);
        if (!db->Write(batch).ok()) {
          failed.store(true);
          break;
        }
        commits.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(kMeasureMs));
  stop.store(true, std::memory_order_release);
  for (auto& t : writers) t.join();
  if (failed.load()) {
    fprintf(stderr, "writer failed\n");
    abort();
  }
  Run r;
  r.commits_per_sec = commits.load() * 1000.0 / kMeasureMs;
  if (db->wal() != nullptr) {
    const wal::WalStats ws = db->wal()->stats();
    r.piggyback_ratio =
        ws.syncs > 0 ? static_cast<double>(ws.sync_requests) / ws.syncs : 0;
  }
  db.reset();
  db::MultiVersionDB::Destroy(path);
  return r;
}

/// One raw fdatasync on a freshly-appended file, in microseconds — the
/// floor group commit amortizes. Near zero (tmpfs, fast NVMe with write
/// cache) there is nothing to amortize and the scaling gate is vacuous.
double ProbeFdatasyncUs() {
  const std::string file = Root() + ".syncprobe";
  const int fd = ::open(file.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return 0;
  double best = 1e12;
  for (int i = 0; i < 5; ++i) {
    char buf[512];
    memset(buf, i, sizeof(buf));
    (void)!::write(fd, buf, sizeof(buf));
    const auto t0 = std::chrono::steady_clock::now();
    ::fdatasync(fd);
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (us < best) best = us;
  }
  ::close(fd);
  ::unlink(file.c_str());
  return best;
}

struct RecoveryRun {
  double open_ms = 0;
  double wal_mb = 0;
  double mb_per_sec = 0;
  double ms_per_mb = 0;
  uint64_t frames = 0;
};

/// Child writes `commits` one-key commits (kOff: volume, not fsyncs, is
/// what recovery replays) then SIGKILLs itself; parent times the reopen.
RecoveryRun MeasureRecovery(int commits) {
  const std::string path = Root() + ".recovery";
  db::MultiVersionDB::Destroy(path);
  const db::DbOptions opts = Options(true, wal::WalSyncMode::kOff);
  const pid_t pid = ::fork();
  if (pid == 0) {
    std::unique_ptr<db::MultiVersionDB> db;
    if (!db::MultiVersionDB::Open(path, opts, &db).ok()) ::_exit(2);
    const std::string value(kValueBytes, 'v');
    for (int n = 0; n < commits; ++n) {
      if (!db->Put(KeyOf(n % 8, n), value).ok()) ::_exit(3);
    }
    ::kill(::getpid(), SIGKILL);
    ::_exit(4);
  }
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  RecoveryRun r;
  if (!WIFSIGNALED(wstatus)) {
    fprintf(stderr, "recovery child exited early (%d)\n", wstatus);
    abort();
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::unique_ptr<db::MultiVersionDB> db;
  Status s = db::MultiVersionDB::Open(path, opts, &db);
  r.open_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  if (!s.ok()) {
    fprintf(stderr, "recovery open failed: %s\n", s.ToString().c_str());
    abort();
  }
  r.frames = db->recovery_stats().frames_replayed;
  r.wal_mb = db->recovery_stats().wal_bytes_scanned / (1024.0 * 1024.0);
  r.mb_per_sec = r.open_ms > 0 ? r.wal_mb / (r.open_ms / 1000.0) : 0;
  r.ms_per_mb = r.wal_mb > 0 ? r.open_ms / r.wal_mb : 0;
  db.reset();
  db::MultiVersionDB::Destroy(path);
  return r;
}

struct FaultRun {
  db::ErrorHandlerStats stats;
  double resume_ms = 0;  // wall time of the degraded-mode Resume()
  bool acked_survived = false;
  bool doomed_absent = false;
};

/// Degrade-and-resume exercise: commit a baseline, trip a one-shot WAL
/// fdatasync failure, verify the doomed commit is rejected, then time
/// Resume() and re-check the contract. The JSON "fault" section is what
/// CI diffs: degradations/resumes must both be 1 and the contract bools
/// true on every run.
FaultRun MeasureFault() {
  const std::string path = Root() + ".fault";
  db::MultiVersionDB::Destroy(path);
  db::DbOptions opts = Options(true, wal::WalSyncMode::kGroup);
  auto plan = std::make_shared<FaultPlan>();
  opts.wal_fault_plan = plan;
  std::unique_ptr<db::MultiVersionDB> db;
  Status s = db::MultiVersionDB::Open(path, opts, &db);
  if (!s.ok()) {
    fprintf(stderr, "fault open failed: %s\n", s.ToString().c_str());
    abort();
  }
  const std::string value(kValueBytes, 'v');
  for (int n = 0; n < 64; ++n) {
    if (!db->Put(KeyOf(0, n), value).ok()) abort();
  }
  plan->FailNth(FaultOp::kSync, 1, FaultKind::kEIO, /*sticky=*/false);
  const bool doomed_rejected = !db->Put("doomed", value).ok();
  plan->Clear();
  FaultRun r;
  const auto t0 = std::chrono::steady_clock::now();
  const bool resumed = db->Resume().ok();
  r.resume_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  r.stats = db->error_stats();
  std::string got;
  r.acked_survived = resumed && db->Get(KeyOf(0, 63), &got).ok();
  r.doomed_absent = doomed_rejected && db->Get("doomed", &got).IsNotFound();
  db.reset();
  db::MultiVersionDB::Destroy(path);
  return r;
}

struct ScrubRun {
  uint64_t injected_cycles = 0;   // cycles where a silent fault fired
  uint64_t detected_cycles = 0;   // cycles where scrub caught it
  uint64_t injected = 0;          // silent write faults fired
  uint64_t detected = 0;          // scrub corruption detections
  uint64_t false_positives = 0;   // detections on clean control passes
  uint64_t pages_repaired = 0;
  uint64_t bytes_scanned = 0;
  double scrub_ms = 0;
  double mb_per_sec = 0;
};

/// Silent-corruption exercise: cycle through the silent fault kinds (bit
/// flip, lost write, misdirected write), push each through a checkpoint
/// the device acks cleanly, and let Scrub() find it. The JSON "scrub"
/// section is what CI gates: every injected cycle detected, zero
/// detections on the clean control passes, every quarantined page
/// repaired by Resume().
ScrubRun MeasureScrub() {
  const std::string path = Root() + ".scrub";
  db::MultiVersionDB::Destroy(path);
  auto plan = std::make_shared<FaultPlan>();
  db::DbOptions opts = Options(true, wal::WalSyncMode::kGroup);
  opts.wrap_device = [&plan](const std::string& role,
                             std::unique_ptr<Device> dev)
      -> std::unique_ptr<Device> {
    if (role != "magnetic") return dev;
    return std::make_unique<FaultInjectingDevice>(std::move(dev), plan);
  };
  std::unique_ptr<db::MultiVersionDB> db;
  Status s = db::MultiVersionDB::Open(path, opts, &db);
  if (!s.ok()) {
    fprintf(stderr, "scrub open failed: %s\n", s.ToString().c_str());
    abort();
  }
  const std::string value(kValueBytes, 'v');
  for (int n = 0; n < 256; ++n) {
    if (!db->Put(KeyOf(0, n), value).ok()) abort();
  }
  if (!db->Checkpoint().ok()) abort();

  ScrubRun r;
  auto scrub = [&](db::ScrubStats* stats) {
    const auto t0 = std::chrono::steady_clock::now();
    if (!db->Scrub(stats).ok()) abort();
    r.scrub_ms += std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    r.bytes_scanned += stats->bytes_scanned;
  };
  db::ScrubStats control;
  scrub(&control);  // clean control pass: must stay silent
  r.false_positives += control.corruptions_detected;

  const FaultKind kinds[] = {FaultKind::kBitFlip, FaultKind::kLostWrite,
                             FaultKind::kMisdirectedWrite,
                             FaultKind::kBitFlip, FaultKind::kLostWrite,
                             FaultKind::kMisdirectedWrite};
  uint64_t fired_before = plan->fired(FaultOp::kWrite);
  for (const FaultKind kind : kinds) {
    for (int n = 0; n < 256; n += 3) {
      if (!db->Put(KeyOf(0, n), value).ok()) abort();
    }
    plan->FailNth(FaultOp::kWrite, 2, kind, /*sticky=*/false);
    if (!db->Checkpoint().ok()) abort();  // silent: the device acks it
    const uint64_t fired = plan->fired(FaultOp::kWrite) - fired_before;
    fired_before = plan->fired(FaultOp::kWrite);
    plan->Clear();
    db::ScrubStats pass;
    scrub(&pass);
    r.injected += fired;
    r.detected += pass.corruptions_detected;
    if (fired > 0) {
      r.injected_cycles++;
      if (pass.corruptions_detected > 0) r.detected_cycles++;
    } else if (pass.corruptions_detected > 0) {
      r.false_positives += pass.corruptions_detected;
    }
    if (!db->Resume().ok()) abort();  // repair before the next cycle
  }
  db::ScrubStats final_control;
  scrub(&final_control);  // everything repaired: silent again
  r.false_positives += final_control.corruptions_detected;
  r.pages_repaired = db->error_stats().pages_repaired;
  r.mb_per_sec = r.scrub_ms > 0
                     ? (r.bytes_scanned / (1024.0 * 1024.0)) /
                           (r.scrub_ms / 1000.0)
                     : 0;
  db.reset();
  db::MultiVersionDB::Destroy(path);
  return r;
}

void PrintTablesAndJson() {
  printf("=== Durability: sync-mode ladder (1 writer, %d ms) ===\n",
         kMeasureMs);
  printf("%-14s %16s\n", "mode", "commits/sec");
  const Run no_wal = RunWriters(Options(false, wal::WalSyncMode::kOff), 1);
  printf("%-14s %16.0f\n", "wal-disabled", no_wal.commits_per_sec);
  const Run off = RunWriters(Options(true, wal::WalSyncMode::kOff), 1);
  printf("%-14s %16.0f\n", "off", off.commits_per_sec);
  const Run background =
      RunWriters(Options(true, wal::WalSyncMode::kBackground), 1);
  printf("%-14s %16.0f\n", "background", background.commits_per_sec);
  const Run group1 = RunWriters(Options(true, wal::WalSyncMode::kGroup), 1);
  printf("%-14s %16.0f\n\n", "group", group1.commits_per_sec);

  printf("=== Group commit: N fsync'd committers (kGroup) ===\n");
  printf("%-8s %16s %18s\n", "writers", "commits/sec", "piggyback ratio");
  struct GroupRow {
    int n;
    Run r;
  };
  std::vector<GroupRow> group_rows;
  for (const int n : {1, 2, 4, 8}) {
    GroupRow row{n, RunWriters(Options(true, wal::WalSyncMode::kGroup), n)};
    printf("%-8d %16.0f %18.2f\n", n, row.r.commits_per_sec,
           row.r.piggyback_ratio);
    group_rows.push_back(row);
  }
  const double group8 = group_rows.back().r.commits_per_sec;
  const double amortization =
      group1.commits_per_sec > 0 ? group8 / group1.commits_per_sec : 0;
  const double fdatasync_us = ProbeFdatasyncUs();
  printf("8-writer / 1-writer fsync'd throughput: %.2fx "
         "(raw fdatasync %.1f us)\n\n",
         amortization, fdatasync_us);

  printf("=== Recovery: replay a killed process's log ===\n");
  printf("%-10s %10s %10s %12s %10s\n", "commits", "wal MB", "open ms",
         "MB/sec", "ms/MB");
  std::vector<RecoveryRun> recovery_rows;
  for (const int commits : {2000, 10000, 40000}) {
    const RecoveryRun r = MeasureRecovery(commits);
    printf("%-10d %10.2f %10.1f %12.1f %10.2f\n", commits, r.wal_mb,
           r.open_ms, r.mb_per_sec, r.ms_per_mb);
    recovery_rows.push_back(r);
  }
  const RecoveryRun& big = recovery_rows.back();
  printf("\n");

  printf("=== Degraded mode: trip, reject, Resume() ===\n");
  const FaultRun fault = MeasureFault();
  printf("degradations=%llu resumes=%llu resume_ms=%.2f "
         "acked_survived=%d doomed_absent=%d\n\n",
         (unsigned long long)fault.stats.degradations,
         (unsigned long long)fault.stats.resumes, fault.resume_ms,
         fault.acked_survived ? 1 : 0, fault.doomed_absent ? 1 : 0);

  printf("=== Scrub: silent-fault detection (bit flip / lost write / "
         "misdirected write) ===\n");
  const ScrubRun scrub = MeasureScrub();
  printf("injected_cycles=%llu detected_cycles=%llu false_positives=%llu "
         "pages_repaired=%llu scan %.1f MB/s\n\n",
         (unsigned long long)scrub.injected_cycles,
         (unsigned long long)scrub.detected_cycles,
         (unsigned long long)scrub.false_positives,
         (unsigned long long)scrub.pages_repaired, scrub.mb_per_sec);

  const char* path = std::getenv("BENCH_DURABILITY_JSON");
  if (path == nullptr) path = "BENCH_durability.json";
  FILE* out = fopen(path, "w");
  if (out == nullptr) {
    fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  fprintf(out,
          "{\n"
          "  \"hardware_concurrency\": %u,\n"
          "  \"measure_ms\": %d,\n"
          "  \"value_bytes\": %d,\n"
          "  \"fdatasync_us\": %.2f,\n"
          "  \"sync_modes\": {\n"
          "    \"wal_disabled\": %.1f,\n"
          "    \"off\": %.1f,\n"
          "    \"background\": %.1f,\n"
          "    \"group\": %.1f\n"
          "  },\n",
          std::thread::hardware_concurrency(), kMeasureMs, kValueBytes,
          fdatasync_us, no_wal.commits_per_sec, off.commits_per_sec,
          background.commits_per_sec, group1.commits_per_sec);
  fprintf(out, "  \"group_commit\": [\n");
  for (size_t i = 0; i < group_rows.size(); ++i) {
    fprintf(out,
            "    {\"writers\": %d, \"commits_per_sec\": %.1f, "
            "\"piggyback_ratio\": %.3f}%s\n",
            group_rows[i].n, group_rows[i].r.commits_per_sec,
            group_rows[i].r.piggyback_ratio,
            i + 1 < group_rows.size() ? "," : "");
  }
  fprintf(out,
          "  ],\n"
          "  \"group_8w_over_1w\": %.3f,\n"
          "  \"recovery\": {\"wal_mb\": %.3f, \"open_ms\": %.2f, "
          "\"mb_per_sec\": %.2f, \"ms_per_mb\": %.3f, \"frames\": %llu},\n",
          amortization, big.wal_mb, big.open_ms, big.mb_per_sec,
          big.ms_per_mb, (unsigned long long)big.frames);
  fprintf(out,
          "  \"fault\": {\"errors_reported\": %llu, \"degradations\": %llu, "
          "\"resumes\": %llu, \"auto_resumes\": %llu, "
          "\"failed_resumes\": %llu, \"last_class\": \"%s\", "
          "\"last_error\": \"%s\", \"resume_ms\": %.2f, "
          "\"acked_survived\": %s, \"doomed_absent\": %s},\n",
          (unsigned long long)fault.stats.errors_reported,
          (unsigned long long)fault.stats.degradations,
          (unsigned long long)fault.stats.resumes,
          (unsigned long long)fault.stats.auto_resumes,
          (unsigned long long)fault.stats.failed_resumes,
          db::ErrorClassName(fault.stats.last_class),
          fault.stats.last_error.c_str(),
          fault.resume_ms, fault.acked_survived ? "true" : "false",
          fault.doomed_absent ? "true" : "false");
  fprintf(out,
          "  \"scrub\": {\"injected_cycles\": %llu, "
          "\"detected_cycles\": %llu, \"injected\": %llu, "
          "\"detected\": %llu, \"false_positives\": %llu, "
          "\"pages_repaired\": %llu, \"bytes_scanned\": %llu, "
          "\"mb_per_sec\": %.2f}\n"
          "}\n",
          (unsigned long long)scrub.injected_cycles,
          (unsigned long long)scrub.detected_cycles,
          (unsigned long long)scrub.injected,
          (unsigned long long)scrub.detected,
          (unsigned long long)scrub.false_positives,
          (unsigned long long)scrub.pages_repaired,
          (unsigned long long)scrub.bytes_scanned, scrub.mb_per_sec);
  fclose(out);
  printf("wrote %s\n\n", path);
}

void BM_GroupCommit(benchmark::State& state) {
  const int n_writers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const Run r = RunWriters(Options(true, wal::WalSyncMode::kGroup),
                             n_writers);
    state.counters["commits_per_sec"] = r.commits_per_sec;
    state.counters["piggyback_ratio"] = r.piggyback_ratio;
  }
}
BENCHMARK(BM_GroupCommit)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_Recovery(benchmark::State& state) {
  const int commits = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const RecoveryRun r = MeasureRecovery(commits);
    state.counters["mb_per_sec"] = r.mb_per_sec;
    state.counters["open_ms"] = r.open_ms;
  }
}
BENCHMARK(BM_Recovery)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace tsb

int main(int argc, char** argv) {
  tsb::bench::PrintTablesAndJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
