// Experiment E8 (paper sections 3.1, 3.5): migration behaviour — data
// moves to the historical device incrementally, ONE NODE AT A TIME, only
// when nodes time-split; index time splits are local ("there will usually
// be a time before which all entries point to historical data"); and the
// write stream to the WORM is strictly appending.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench_common.h"

namespace tsb {
namespace bench {
namespace {

void PrintTable() {
  printf("== E8: incremental migration, one node per time split ==\n\n");
  printf("%8s | %10s %10s %10s %10s | %12s %10s\n", "upd%", "data tsplits",
         "hist nodes", "idx tsplit", "idx hist", "migrated", "appends");
  printf("%s\n", std::string(88, '-').c_str());
  for (double uf : {0.5, 0.75, 0.9}) {
    util::WorkloadSpec spec;
    spec.seed = 42;
    spec.num_ops = 20000;
    spec.update_fraction = uf;
    spec.value_size = 40;
    tsb_tree::TsbOptions opts;
    opts.page_size = 1024;
    opts.policy.kind_policy = tsb_tree::SplitKindPolicy::kThreshold;
    opts.policy.key_split_threshold = 0.5;
    TsbFixture f = TsbFixture::Build(spec, opts);
    const auto& c = f.tree->counters();
    printf("%7.0f%% | %10llu %10llu %10llu %10llu | %12llu %10llu\n",
           uf * 100, (unsigned long long)c.data_time_splits,
           (unsigned long long)c.hist_data_nodes,
           (unsigned long long)c.index_time_splits,
           (unsigned long long)c.hist_index_nodes,
           (unsigned long long)c.records_migrated,
           (unsigned long long)f.tree->hist_store()->blob_count());
    // The invariant the paper states: one consolidated node per time split.
    if (c.data_time_splits != c.hist_data_nodes ||
        c.index_time_splits != c.hist_index_nodes) {
      printf("  *** VIOLATION: migration was not one-node-at-a-time!\n");
    }
  }
  printf("\n(hist nodes == time splits: each split migrates exactly one\n"
         "consolidated node; appends == data + index historical nodes)\n\n");
}

void BM_UpdateHeavyIngest(benchmark::State& state) {
  // Throughput of the full ingest+migrate pipeline at varying update mix.
  const double uf = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    util::WorkloadSpec spec;
    spec.seed = 11;
    spec.num_ops = 5000;
    spec.update_fraction = uf;
    tsb_tree::TsbOptions opts;
    opts.page_size = 1024;
    TsbFixture f = TsbFixture::Build(spec, opts);
    benchmark::DoNotOptimize(f.tree.get());
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_UpdateHeavyIngest)->Arg(0)->Arg(50)->Arg(90)->Unit(benchmark::kMillisecond);

void BM_SingleTimeSplitCost(benchmark::State& state) {
  // Marginal cost of one migration: build a nearly-full single-key node,
  // then measure the insert that triggers the time split.
  for (auto _ : state) {
    state.PauseTiming();
    MemDevice magnetic;
    WormDevice worm(1024);
    tsb_tree::TsbOptions opts;
    opts.page_size = 1024;
    opts.policy.kind_policy = tsb_tree::SplitKindPolicy::kWobtStyle;
    std::unique_ptr<tsb_tree::TsbTree> tree;
    if (!tsb_tree::TsbTree::Open(&magnetic, &worm, opts, &tree).ok()) abort();
    Timestamp ts = 0;
    // Fill until the NEXT insert will split.
    while (tree->counters().data_time_splits == 0) {
      if (!tree->Put("hot", std::string(40, 'v'), ++ts).ok()) abort();
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(tree->Put("hot", std::string(40, 'v'), ++ts));
  }
}
BENCHMARK(BM_SingleTimeSplitCost)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace tsb

int main(int argc, char** argv) {
  tsb::bench::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
