// Experiment E6 (paper sections 2.2, 2.5, 3.7): query performance — the
// design goal is that current data stays concentrated in a small number of
// fast-device nodes while history is still reachable. We measure current
// lookups, as-of lookups into deep history, snapshot scans and version
// history scans on the TSB-tree vs the WOBT vs a B+-tree (current only),
// reporting both wall time and SIMULATED device time (the 1989-hardware
// cost model: magnetic vs 3x-slower optical seeks).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>

#include "bench_common.h"
#include "bpt/bplus_tree.h"
#include "common/random.h"
#include "tsb/cursor.h"
#include "wobt/wobt_tree.h"

namespace tsb {
namespace bench {
namespace {

constexpr size_t kOps = 12000;
constexpr double kUpdateFraction = 0.7;

util::WorkloadSpec QuerySpec() {
  util::WorkloadSpec spec;
  spec.seed = 42;
  spec.num_ops = kOps;
  spec.update_fraction = kUpdateFraction;
  spec.value_size = 40;
  return spec;
}

// Shared fixtures, built once.
struct Fixtures {
  TsbFixture tsb;
  std::unique_ptr<WormDevice> wobt_worm;
  std::unique_ptr<wobt::WobtTree> wobt;
  std::unique_ptr<MemDevice> bpt_dev;
  std::unique_ptr<bpt::BPlusTree> bpt;
  size_t keys = 0;

  static Fixtures& Get() {
    static Fixtures* f = Build();
    return *f;
  }

  static Fixtures* Build() {
    auto* f = new Fixtures();
    tsb_tree::TsbOptions topts;
    topts.page_size = 2048;
    topts.buffer_pool_frames = 128;
    f->tsb = TsbFixture::Build(QuerySpec(), topts);

    f->wobt_worm = std::make_unique<WormDevice>(1024);
    wobt::WobtOptions wopts;
    wopts.node_sectors = 4;
    f->wobt = std::make_unique<wobt::WobtTree>(f->wobt_worm.get(), wopts);

    f->bpt_dev = std::make_unique<MemDevice>();
    bpt::BptOptions bopts;
    bopts.page_size = 2048;
    bpt::BPlusTree::Open(f->bpt_dev.get(), bopts, &f->bpt);

    util::WorkloadGenerator gen(QuerySpec());
    util::Op op;
    while (gen.Next(&op)) {
      if (!f->wobt->Insert(op.key, op.value, op.ts).ok()) abort();
      if (!f->bpt->Put(op.key, op.value).ok()) abort();
    }
    f->keys = gen.keys_created();
    return f;
  }

  std::string KeyAt(uint64_t i) const {
    util::WorkloadGenerator gen(QuerySpec());
    return gen.KeyFor(i % keys);
  }
};

void PrintIoTable() {
  Fixtures& f = Fixtures::Get();
  printf("== E6: query I/O and simulated device time per 1000 queries ==\n");
  printf("(%zu ops at %.0f%% updates; magnetic seek 16 ms, optical 48 ms)\n\n",
         kOps, kUpdateFraction * 100);

  auto run = [&](const char* label, auto&& body) {
    f.tsb.magnetic->ResetStats();
    f.tsb.worm->ResetStats();
    f.wobt_worm->ResetStats();
    f.bpt_dev->ResetStats();
    body();
    printf("%-28s | tsb: mag %7.0fms opt %7.0fms | wobt: %8.0fms | "
           "b+: %7.0fms\n",
           label, f.tsb.magnetic->stats().simulated_ms,
           f.tsb.worm->stats().simulated_ms,
           f.wobt_worm->stats().simulated_ms,
           f.bpt_dev->stats().simulated_ms);
  };

  Random rnd(1);
  run("current point lookups", [&] {
    std::string v;
    for (int i = 0; i < 1000; ++i) {
      const std::string k = f.KeyAt(rnd.Next());
      f.tsb.tree->GetCurrent(k, &v);
      f.wobt->GetCurrent(k, &v);
      f.bpt->Get(k, &v);
    }
  });
  run("as-of lookups (deep past)", [&] {
    std::string v;
    for (int i = 0; i < 1000; ++i) {
      const std::string k = f.KeyAt(rnd.Next());
      const Timestamp t = 1 + rnd.Uniform(kOps / 4);  // oldest quarter
      f.tsb.tree->GetAsOf(k, t, &v);
      f.wobt->GetAsOf(k, t, &v);
      f.bpt->Get(k, &v);  // B+ has no history: current read for contrast
    }
  });
  run("version-history scans", [&] {
    for (int i = 0; i < 100; ++i) {
      const std::string k = f.KeyAt(rnd.Next());
      auto it = f.tsb.tree->NewHistoryIterator(k);
      it->SeekToNewest();
      while (it->Valid()) it->Next();
      std::vector<std::pair<Timestamp, std::string>> versions;
      f.wobt->GetVersions(k, &versions);
    }
  });
  printf("\n(current lookups touch only the magnetic disk in the TSB-tree —\n"
         "the small-current-database property; deep as-of reads pay optical\n"
         "seeks; the WOBT pays optical seeks for EVERYTHING)\n\n");
}

void BM_TsbGetCurrent(benchmark::State& state) {
  Fixtures& f = Fixtures::Get();
  Random rnd(2);
  std::string v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.tsb.tree->GetCurrent(f.KeyAt(rnd.Next()), &v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TsbGetCurrent);

void BM_WobtGetCurrent(benchmark::State& state) {
  Fixtures& f = Fixtures::Get();
  Random rnd(2);
  std::string v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.wobt->GetCurrent(f.KeyAt(rnd.Next()), &v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WobtGetCurrent);

void BM_BptGetCurrent(benchmark::State& state) {
  Fixtures& f = Fixtures::Get();
  Random rnd(2);
  std::string v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.bpt->Get(f.KeyAt(rnd.Next()), &v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BptGetCurrent);

void BM_TsbGetAsOfDeep(benchmark::State& state) {
  Fixtures& f = Fixtures::Get();
  Random rnd(3);
  std::string v;
  for (auto _ : state) {
    const Timestamp t = 1 + rnd.Uniform(kOps / 4);
    benchmark::DoNotOptimize(f.tsb.tree->GetAsOf(f.KeyAt(rnd.Next()), t, &v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TsbGetAsOfDeep);

void BM_WobtGetAsOfDeep(benchmark::State& state) {
  Fixtures& f = Fixtures::Get();
  Random rnd(3);
  std::string v;
  for (auto _ : state) {
    const Timestamp t = 1 + rnd.Uniform(kOps / 4);
    benchmark::DoNotOptimize(f.wobt->GetAsOf(f.KeyAt(rnd.Next()), t, &v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WobtGetAsOfDeep);

void BM_TsbSnapshotScan(benchmark::State& state) {
  Fixtures& f = Fixtures::Get();
  const Timestamp t = state.range(0) == 0 ? kOps / 4 : kOps;  // old vs now
  for (auto _ : state) {
    auto it = f.tsb.tree->NewSnapshotIterator(t);
    it->SeekToFirst();
    size_t n = 0;
    while (it->Valid()) {
      ++n;
      it->Next();
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetLabel(state.range(0) == 0 ? "old snapshot" : "current snapshot");
}
BENCHMARK(BM_TsbSnapshotScan)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace tsb

int main(int argc, char** argv) {
  tsb::bench::PrintIoTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
