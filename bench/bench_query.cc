// Experiment E6 (paper sections 2.2, 2.5, 3.7): query performance — the
// design goal is that current data stays concentrated in a small number of
// fast-device nodes while history is still reachable. We measure current
// lookups, as-of lookups into deep history, snapshot scans and version
// history scans on the TSB-tree vs the WOBT vs a B+-tree (current only),
// reporting both wall time and SIMULATED device time (the 1989-hardware
// cost model: magnetic vs 3x-slower optical seeks).
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "bpt/bplus_tree.h"
#include "common/random.h"
#include "tsb/cursor.h"
#include "wobt/wobt_tree.h"

// ---- binary-wide allocation counter ----
// Counts every operator-new call so the historical as-of section can
// report allocations per lookup: the zero-copy read path must show ~0 on
// the cache-hit path, the legacy owning-decode baseline shows the per-
// entry materialization cost.
//
// All replacement news below are malloc/aligned_alloc-backed, so free()
// in the deletes is correct; GCC's pairing heuristic cannot see that.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
static std::atomic<uint64_t> g_alloc_count{0};

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace tsb {
namespace bench {
namespace {

constexpr size_t kOps = 12000;
constexpr double kUpdateFraction = 0.7;

util::WorkloadSpec QuerySpec() {
  util::WorkloadSpec spec;
  spec.seed = 42;
  spec.num_ops = kOps;
  spec.update_fraction = kUpdateFraction;
  spec.value_size = 40;
  return spec;
}

// Shared fixtures, built once.
struct Fixtures {
  TsbFixture tsb;
  std::unique_ptr<WormDevice> wobt_worm;
  std::unique_ptr<wobt::WobtTree> wobt;
  std::unique_ptr<MemDevice> bpt_dev;
  std::unique_ptr<bpt::BPlusTree> bpt;
  size_t keys = 0;

  static Fixtures& Get() {
    static Fixtures* f = Build();
    return *f;
  }

  static Fixtures* Build() {
    auto* f = new Fixtures();
    tsb_tree::TsbOptions topts;
    topts.page_size = 2048;
    topts.buffer_pool_frames = 128;
    f->tsb = TsbFixture::Build(QuerySpec(), topts);

    f->wobt_worm = std::make_unique<WormDevice>(1024);
    wobt::WobtOptions wopts;
    wopts.node_sectors = 4;
    f->wobt = std::make_unique<wobt::WobtTree>(f->wobt_worm.get(), wopts);

    f->bpt_dev = std::make_unique<MemDevice>();
    bpt::BptOptions bopts;
    bopts.page_size = 2048;
    bpt::BPlusTree::Open(f->bpt_dev.get(), bopts, &f->bpt);

    util::WorkloadGenerator gen(QuerySpec());
    util::Op op;
    while (gen.Next(&op)) {
      if (!f->wobt->Insert(op.key, op.value, op.ts).ok()) abort();
      if (!f->bpt->Put(op.key, op.value).ok()) abort();
    }
    f->keys = gen.keys_created();
    return f;
  }

  std::string KeyAt(uint64_t i) const {
    util::WorkloadGenerator gen(QuerySpec());
    return gen.KeyFor(i % keys);
  }
};

void PrintIoTable() {
  Fixtures& f = Fixtures::Get();
  printf("== E6: query I/O and simulated device time per 1000 queries ==\n");
  printf("(%zu ops at %.0f%% updates; magnetic seek 16 ms, optical 48 ms)\n\n",
         kOps, kUpdateFraction * 100);

  auto run = [&](const char* label, auto&& body) {
    f.tsb.magnetic->ResetStats();
    f.tsb.worm->ResetStats();
    f.wobt_worm->ResetStats();
    f.bpt_dev->ResetStats();
    body();
    printf("%-28s | tsb: mag %7.0fms opt %7.0fms | wobt: %8.0fms | "
           "b+: %7.0fms\n",
           label, f.tsb.magnetic->stats().simulated_ms,
           f.tsb.worm->stats().simulated_ms,
           f.wobt_worm->stats().simulated_ms,
           f.bpt_dev->stats().simulated_ms);
  };

  Random rnd(1);
  run("current point lookups", [&] {
    std::string v;
    for (int i = 0; i < 1000; ++i) {
      const std::string k = f.KeyAt(rnd.Next());
      f.tsb.tree->GetCurrent(k, &v);
      f.wobt->GetCurrent(k, &v);
      f.bpt->Get(k, &v);
    }
  });
  run("as-of lookups (deep past)", [&] {
    std::string v;
    for (int i = 0; i < 1000; ++i) {
      const std::string k = f.KeyAt(rnd.Next());
      const Timestamp t = 1 + rnd.Uniform(kOps / 4);  // oldest quarter
      f.tsb.tree->GetAsOf(k, t, &v);
      f.wobt->GetAsOf(k, t, &v);
      f.bpt->Get(k, &v);  // B+ has no history: current read for contrast
    }
  });
  run("version-history scans", [&] {
    for (int i = 0; i < 100; ++i) {
      const std::string k = f.KeyAt(rnd.Next());
      auto it = f.tsb.tree->NewHistoryIterator(k);
      it->SeekToNewest();
      while (it->Valid()) it->Next();
      std::vector<std::pair<Timestamp, std::string>> versions;
      f.wobt->GetVersions(k, &versions);
    }
  });
  printf("\n(current lookups touch only the magnetic disk in the TSB-tree —\n"
         "the small-current-database property; deep as-of reads pay optical\n"
         "seeks; the WOBT pays optical seeks for EVERYTHING)\n\n");
}

// ---- historical as-of workload: zero-copy views vs owning decodes ----
//
// Measures SearchPoint phase 2 on its cache-hit path (the shared-blob
// cache is sized to the whole historical working set) and writes
// BENCH_query.json: ops/sec and allocations per op for the zero-copy view
// path and for the legacy owning-decode baseline (the pre-change read
// path, kept behind TsbOptions::zero_copy_hist_reads = false).

struct HistAsOfResult {
  double ops_per_sec = 0;
  double allocs_per_op = 0;
  double cache_hit_ratio = 0;
};

HistAsOfResult MeasureHistAsOf(
    tsb_tree::TsbTree* tree,
    const std::vector<std::pair<std::string, Timestamp>>& probes,
    int rounds) {
  std::string v;
  // Warmup populates the shared-blob cache; the measured loop then runs
  // entirely on cache hits.
  for (const auto& [k, t] : probes) tree->GetAsOf(k, t, &v);
  const HistReadStats before_stats = tree->HistStats();
  const uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  size_t ops = 0;
  for (int r = 0; r < rounds; ++r) {
    for (const auto& [k, t] : probes) {
      benchmark::DoNotOptimize(tree->GetAsOf(k, t, &v));
      ++ops;
    }
  }
  const auto end = std::chrono::steady_clock::now();
  const uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  const double secs = std::chrono::duration<double>(end - start).count();
  const HistReadStats after_stats = tree->HistStats();
  HistAsOfResult r;
  r.ops_per_sec = secs > 0 ? static_cast<double>(ops) / secs : 0;
  r.allocs_per_op = static_cast<double>(allocs) / static_cast<double>(ops);
  const uint64_t lookups = (after_stats.cache_hits + after_stats.cache_misses) -
                           (before_stats.cache_hits + before_stats.cache_misses);
  const uint64_t hits = after_stats.cache_hits - before_stats.cache_hits;
  r.cache_hit_ratio =
      lookups == 0 ? 1.0
                   : static_cast<double>(hits) / static_cast<double>(lookups);
  return r;
}

void WriteHistAsOfJson() {
  tsb_tree::TsbOptions topts;
  topts.page_size = 2048;
  topts.buffer_pool_frames = 1024;  // current axis fully resident
  topts.hist_cache_blobs = 4096;    // whole historical working set cached
  TsbFixture view_f = TsbFixture::Build(QuerySpec(), topts);
  tsb_tree::TsbOptions owned_opts = topts;
  owned_opts.zero_copy_hist_reads = false;
  TsbFixture owned_f = TsbFixture::Build(QuerySpec(), owned_opts);

  // Probe set: deep-past as-of lookups that land on a version, so the
  // measured loop exercises full descents into historical data nodes.
  size_t keys = 0;
  {
    util::WorkloadGenerator gen(QuerySpec());
    util::Op op;
    while (gen.Next(&op)) {
    }
    keys = gen.keys_created();
  }
  util::WorkloadGenerator gen(QuerySpec());
  Random rnd(29);
  std::vector<std::pair<std::string, Timestamp>> probes;
  std::string v;
  for (int attempt = 0; attempt < 20000 && probes.size() < 512; ++attempt) {
    std::string k = gen.KeyFor(rnd.Uniform(keys));
    const Timestamp t = 1 + rnd.Uniform(kOps / 4);  // oldest quarter
    if (view_f.tree->GetAsOf(k, t, &v).ok()) {
      probes.emplace_back(std::move(k), t);
    }
  }
  if (probes.empty()) {
    fprintf(stderr, "hist as-of bench: no probes found, skipping JSON\n");
    return;
  }
  const int rounds =
      static_cast<int>(200000 / probes.size()) + 1;  // ~200k measured ops

  const HistAsOfResult view = MeasureHistAsOf(view_f.tree.get(), probes, rounds);
  const HistAsOfResult owned =
      MeasureHistAsOf(owned_f.tree.get(), probes, rounds);
  const double speedup =
      owned.ops_per_sec > 0 ? view.ops_per_sec / owned.ops_per_sec : 0;

  printf("== historical as-of lookups: zero-copy views vs owning decodes ==\n");
  printf("(%zu probes x %d rounds, shared-blob cache covers the working set)\n",
         probes.size(), rounds);
  printf("view path : %12.0f ops/s  %6.2f allocs/op  hit ratio %.3f\n",
         view.ops_per_sec, view.allocs_per_op, view.cache_hit_ratio);
  printf("owned path: %12.0f ops/s  %6.2f allocs/op  hit ratio %.3f\n",
         owned.ops_per_sec, owned.allocs_per_op, owned.cache_hit_ratio);
  printf("speedup: %.2fx\n\n", speedup);

  const char* path = std::getenv("BENCH_QUERY_JSON");
  if (path == nullptr) path = "BENCH_query.json";
  FILE* f = fopen(path, "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  fprintf(f,
          "{\n"
          "  \"workload\": {\"ops\": %zu, \"update_fraction\": %.2f, "
          "\"probes\": %zu, \"rounds\": %d},\n"
          "  \"hist_asof_view\": {\"ops_per_sec\": %.1f, "
          "\"allocs_per_op\": %.4f, \"cache_hit_ratio\": %.4f},\n"
          "  \"hist_asof_owned_baseline\": {\"ops_per_sec\": %.1f, "
          "\"allocs_per_op\": %.4f, \"cache_hit_ratio\": %.4f},\n"
          "  \"speedup_view_vs_owned\": %.3f\n"
          "}\n",
          kOps, kUpdateFraction, probes.size(), rounds, view.ops_per_sec,
          view.allocs_per_op, view.cache_hit_ratio, owned.ops_per_sec,
          owned.allocs_per_op, owned.cache_hit_ratio, speedup);
  fclose(f);
  printf("wrote %s\n\n", path);
}

void BM_TsbGetCurrent(benchmark::State& state) {
  Fixtures& f = Fixtures::Get();
  Random rnd(2);
  std::string v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.tsb.tree->GetCurrent(f.KeyAt(rnd.Next()), &v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TsbGetCurrent);

void BM_WobtGetCurrent(benchmark::State& state) {
  Fixtures& f = Fixtures::Get();
  Random rnd(2);
  std::string v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.wobt->GetCurrent(f.KeyAt(rnd.Next()), &v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WobtGetCurrent);

void BM_BptGetCurrent(benchmark::State& state) {
  Fixtures& f = Fixtures::Get();
  Random rnd(2);
  std::string v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.bpt->Get(f.KeyAt(rnd.Next()), &v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BptGetCurrent);

void BM_TsbGetAsOfDeep(benchmark::State& state) {
  Fixtures& f = Fixtures::Get();
  Random rnd(3);
  std::string v;
  for (auto _ : state) {
    const Timestamp t = 1 + rnd.Uniform(kOps / 4);
    benchmark::DoNotOptimize(f.tsb.tree->GetAsOf(f.KeyAt(rnd.Next()), t, &v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TsbGetAsOfDeep);

void BM_WobtGetAsOfDeep(benchmark::State& state) {
  Fixtures& f = Fixtures::Get();
  Random rnd(3);
  std::string v;
  for (auto _ : state) {
    const Timestamp t = 1 + rnd.Uniform(kOps / 4);
    benchmark::DoNotOptimize(f.wobt->GetAsOf(f.KeyAt(rnd.Next()), t, &v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WobtGetAsOfDeep);

void BM_TsbSnapshotScan(benchmark::State& state) {
  Fixtures& f = Fixtures::Get();
  const Timestamp t = state.range(0) == 0 ? kOps / 4 : kOps;  // old vs now
  for (auto _ : state) {
    auto it = f.tsb.tree->NewSnapshotIterator(t);
    it->SeekToFirst();
    size_t n = 0;
    while (it->Valid()) {
      ++n;
      it->Next();
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetLabel(state.range(0) == 0 ? "old snapshot" : "current snapshot");
}
BENCHMARK(BM_TsbSnapshotScan)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace tsb

int main(int argc, char** argv) {
  tsb::bench::PrintIoTable();
  tsb::bench::WriteHistAsOfJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
