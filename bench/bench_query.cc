// Experiment E6 (paper sections 2.2, 2.5, 3.7): query performance — the
// design goal is that current data stays concentrated in a small number of
// fast-device nodes while history is still reachable. We measure current
// lookups, as-of lookups into deep history, snapshot scans and version
// history scans on the TSB-tree vs the WOBT vs a B+-tree (current only),
// reporting both wall time and SIMULATED device time (the 1989-hardware
// cost model: magnetic vs 3x-slower optical seeks).
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "bpt/bplus_tree.h"
#include "common/random.h"
#include "storage/file_device.h"
#include "tsb/cursor.h"
#include "wobt/wobt_tree.h"

// ---- binary-wide allocation counter ----
// Counts every operator-new call so the historical as-of section can
// report allocations per lookup: the zero-copy read path must show ~0 on
// the cache-hit path, the legacy owning-decode baseline shows the per-
// entry materialization cost.
//
// All replacement news below are malloc/aligned_alloc-backed, so free()
// in the deletes is correct; GCC's pairing heuristic cannot see that.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
static std::atomic<uint64_t> g_alloc_count{0};

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace tsb {
namespace bench {
namespace {

constexpr size_t kOps = 12000;
constexpr double kUpdateFraction = 0.7;

util::WorkloadSpec QuerySpec() {
  util::WorkloadSpec spec;
  spec.seed = 42;
  spec.num_ops = kOps;
  spec.update_fraction = kUpdateFraction;
  spec.value_size = 40;
  return spec;
}

// Shared fixtures, built once.
struct Fixtures {
  TsbFixture tsb;
  std::unique_ptr<WormDevice> wobt_worm;
  std::unique_ptr<wobt::WobtTree> wobt;
  std::unique_ptr<MemDevice> bpt_dev;
  std::unique_ptr<bpt::BPlusTree> bpt;
  size_t keys = 0;

  static Fixtures& Get() {
    static Fixtures* f = Build();
    return *f;
  }

  static Fixtures* Build() {
    auto* f = new Fixtures();
    tsb_tree::TsbOptions topts;
    topts.page_size = 2048;
    topts.buffer_pool_frames = 128;
    f->tsb = TsbFixture::Build(QuerySpec(), topts);

    f->wobt_worm = std::make_unique<WormDevice>(1024);
    wobt::WobtOptions wopts;
    wopts.node_sectors = 4;
    f->wobt = std::make_unique<wobt::WobtTree>(f->wobt_worm.get(), wopts);

    f->bpt_dev = std::make_unique<MemDevice>();
    bpt::BptOptions bopts;
    bopts.page_size = 2048;
    bpt::BPlusTree::Open(f->bpt_dev.get(), bopts, &f->bpt);

    util::WorkloadGenerator gen(QuerySpec());
    util::Op op;
    while (gen.Next(&op)) {
      if (!f->wobt->Insert(op.key, op.value, op.ts).ok()) abort();
      if (!f->bpt->Put(op.key, op.value).ok()) abort();
    }
    f->keys = gen.keys_created();
    return f;
  }

  std::string KeyAt(uint64_t i) const {
    util::WorkloadGenerator gen(QuerySpec());
    return gen.KeyFor(i % keys);
  }
};

void PrintIoTable() {
  Fixtures& f = Fixtures::Get();
  printf("== E6: query I/O and simulated device time per 1000 queries ==\n");
  printf("(%zu ops at %.0f%% updates; magnetic seek 16 ms, optical 48 ms)\n\n",
         kOps, kUpdateFraction * 100);

  auto run = [&](const char* label, auto&& body) {
    f.tsb.magnetic->ResetStats();
    f.tsb.worm->ResetStats();
    f.wobt_worm->ResetStats();
    f.bpt_dev->ResetStats();
    body();
    printf("%-28s | tsb: mag %7.0fms opt %7.0fms | wobt: %8.0fms | "
           "b+: %7.0fms\n",
           label, f.tsb.magnetic->stats().simulated_ms,
           f.tsb.worm->stats().simulated_ms,
           f.wobt_worm->stats().simulated_ms,
           f.bpt_dev->stats().simulated_ms);
  };

  Random rnd(1);
  run("current point lookups", [&] {
    std::string v;
    for (int i = 0; i < 1000; ++i) {
      const std::string k = f.KeyAt(rnd.Next());
      f.tsb.tree->GetCurrent(k, &v);
      f.wobt->GetCurrent(k, &v);
      f.bpt->Get(k, &v);
    }
  });
  run("as-of lookups (deep past)", [&] {
    std::string v;
    for (int i = 0; i < 1000; ++i) {
      const std::string k = f.KeyAt(rnd.Next());
      const Timestamp t = 1 + rnd.Uniform(kOps / 4);  // oldest quarter
      f.tsb.tree->GetAsOf(k, t, &v);
      f.wobt->GetAsOf(k, t, &v);
      f.bpt->Get(k, &v);  // B+ has no history: current read for contrast
    }
  });
  run("version-history scans", [&] {
    for (int i = 0; i < 100; ++i) {
      const std::string k = f.KeyAt(rnd.Next());
      auto it = f.tsb.tree->NewHistoryIterator(k);
      it->SeekToNewest();
      while (it->Valid()) it->Next();
      std::vector<std::pair<Timestamp, std::string>> versions;
      f.wobt->GetVersions(k, &versions);
    }
  });
  printf("\n(current lookups touch only the magnetic disk in the TSB-tree —\n"
         "the small-current-database property; deep as-of reads pay optical\n"
         "seeks; the WOBT pays optical seeks for EVERYTHING)\n\n");
}

// ---- historical as-of workload: zero-copy views vs owning decodes ----
//
// Measures SearchPoint phase 2 on its cache-hit path (the shared-blob
// cache is sized to the whole historical working set) and writes
// BENCH_query.json: ops/sec and allocations per op for the zero-copy view
// path and for the legacy owning-decode baseline (the pre-change read
// path, kept behind TsbOptions::zero_copy_hist_reads = false).

struct HistAsOfResult {
  double ops_per_sec = 0;
  double allocs_per_op = 0;
  double cache_hit_ratio = 0;
};

// ---- cold-read fixtures: FileDevice-backed historical store ----
//
// The cold phase measures SearchPoint phase 2 with the shared-blob cache
// disabled, so every historical pin goes to the device: once through the
// mmap read path (pins served straight from the file mapping; CRC paid on
// each blob's first pin ever) and once on the same device class with mmap
// off (the copying pread + CRC baseline). The blob cache is also cleared
// between rounds, so enabling it would not leak warmth across rounds.

struct ColdFixture {
  std::string path;
  std::unique_ptr<MemDevice> magnetic;
  std::unique_ptr<FileDevice> hist;
  std::unique_ptr<tsb_tree::TsbTree> tree;  // declared last: destroyed
                                            // (and flushed) before devices

  ColdFixture() = default;
  ColdFixture(ColdFixture&&) = default;
  ColdFixture& operator=(ColdFixture&&) = default;

  ~ColdFixture() {
    tree.reset();
    hist.reset();
    if (!path.empty()) ::unlink(path.c_str());
  }
};

ColdFixture BuildColdFixture(bool enable_mmap, const char* suffix) {
  ColdFixture f;
  f.path = "/tmp/tsb_bench_cold_" + std::to_string(::getpid()) + "_" +
           suffix + ".dat";
  ::unlink(f.path.c_str());  // fresh store
  f.magnetic = std::make_unique<MemDevice>();
  FileDevice* raw = nullptr;
  Status s = FileDevice::Open(f.path, &raw, DeviceKind::kOpticalErasable,
                              CostParams::OpticalWorm(), enable_mmap);
  if (!s.ok()) {
    fprintf(stderr, "cold fixture open failed: %s\n", s.ToString().c_str());
    abort();
  }
  f.hist.reset(raw);

  tsb_tree::TsbOptions topts;
  topts.page_size = 2048;
  topts.buffer_pool_frames = 1024;  // current axis fully resident
  topts.hist_cache_blobs = 0;       // every historical pin is cold
  s = tsb_tree::TsbTree::Open(f.magnetic.get(), f.hist.get(), topts,
                              &f.tree);
  if (!s.ok()) {
    fprintf(stderr, "cold fixture tree open failed: %s\n",
            s.ToString().c_str());
    abort();
  }
  util::WorkloadGenerator gen(QuerySpec());
  util::Op op;
  while (gen.Next(&op)) {
    if (!f.tree->Put(op.key, op.value, op.ts).ok()) abort();
  }
  return f;
}

struct ColdReadResult {
  double ops_per_sec = 0;
  double allocs_per_op = 0;  // measured after the first (verifying) pass
};

ColdReadResult MeasureColdRead(
    tsb_tree::TsbTree* tree,
    const std::vector<std::pair<std::string, Timestamp>>& probes,
    int rounds) {
  std::string v;
  // First pass pays the one-time costs (CRC verification on the mmap
  // path, value capacity growth); the measured rounds are pure re-pins.
  for (const auto& [k, t] : probes) tree->GetAsOf(k, t, &v);
  tree->hist_store()->ClearCache();
  const uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  size_t ops = 0;
  for (int r = 0; r < rounds; ++r) {
    tree->hist_store()->ClearCache();  // no warmth across rounds
    for (const auto& [k, t] : probes) {
      benchmark::DoNotOptimize(tree->GetAsOf(k, t, &v));
      ++ops;
    }
  }
  const auto end = std::chrono::steady_clock::now();
  const uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  const double secs = std::chrono::duration<double>(end - start).count();
  ColdReadResult r;
  r.ops_per_sec = secs > 0 ? static_cast<double>(ops) / secs : 0;
  r.allocs_per_op = static_cast<double>(allocs) / static_cast<double>(ops);
  return r;
}

// ---- v3 vs v2 node bytes on a prefix-heavy key workload ----
//
// Mirrors what time splits consolidate: runs of versions for keys that
// share long prefixes, chunked into node-sized blobs.

struct NodeBytesResult {
  uint64_t v2_bytes = 0;
  uint64_t v3_bytes = 0;
};

NodeBytesResult MeasureHistNodeBytes() {
  using tsb_tree::DataEntry;
  Random rnd(97);
  std::vector<DataEntry> entries;
  Timestamp ts = 1;
  for (int k = 0; k < 400; ++k) {
    char key[48];
    snprintf(key, sizeof(key), "tenant-0042/user-%08d/balance", k * 7);
    const int versions = 2 + static_cast<int>(rnd.Uniform(4));
    for (int v = 0; v < versions; ++v) {
      DataEntry e;
      e.key = key;
      e.ts = ts;
      ts += 1 + rnd.Uniform(3);
      e.value = "balance=" + std::to_string(1000 + ts);
      entries.push_back(std::move(e));
    }
  }
  NodeBytesResult r;
  constexpr size_t kEntriesPerNode = 32;  // ~2 KiB consolidated nodes
  std::string blob;
  for (size_t i = 0; i < entries.size(); i += kEntriesPerNode) {
    const size_t n = std::min(kEntriesPerNode, entries.size() - i);
    const std::vector<DataEntry> node(entries.begin() + i,
                                      entries.begin() + i + n);
    tsb_tree::SerializeHistDataNode(node, &blob,
                                    tsb_tree::HistNodeFormat::kV2);
    r.v2_bytes += blob.size();
    tsb_tree::SerializeHistDataNode(node, &blob,
                                    tsb_tree::HistNodeFormat::kV3);
    r.v3_bytes += blob.size();
  }
  return r;
}

// ---- scan phase: zero-copy frames forward, true backward walk reverse ----
//
// Measures full snapshot scans through the VersionCursor in both
// directions. Forward scans ride pinned-page-view frames (no owned index
// entries, no latch across iteration); reverse scans ride the same stack
// walked leftward (one O(height) descent at the direction switch, then
// amortized O(1) per key like Next). Warm rounds reuse every capacity in
// the cursor, so allocations per emitted entry must be ~0; cold rounds
// clear the blob cache so historical frames re-pin from the mapping.

struct ScanResult {
  double entries_per_sec = 0;
  double allocs_per_entry = 0;
  size_t entries_per_scan = 0;
};

ScanResult MeasureScan(tsb_tree::TsbTree* tree, Timestamp t, bool reverse,
                       int rounds, AppendStore* clear_cache) {
  tsb_tree::ReadOptions opts;
  opts.as_of = t;
  auto c = tree->NewCursor(opts);
  // Find the snapshot's last key once — the reverse walk's anchor.
  std::string last_key;
  size_t per_scan = 0;
  if (!c->SeekToFirst().ok()) return {};
  while (c->Valid()) {
    last_key.assign(c->key().data(), c->key().size());
    ++per_scan;
    if (!c->Next().ok()) return {};
  }
  if (per_scan == 0) return {};
  auto pass = [&]() -> size_t {
    size_t n = 0;
    if (reverse) {
      if (!c->Seek(Slice(last_key)).ok()) return 0;
      while (c->Valid()) {
        benchmark::DoNotOptimize(c->value().data());
        ++n;
        if (!c->Prev().ok()) return 0;
      }
    } else {
      if (!c->SeekToFirst().ok()) return 0;
      while (c->Valid()) {
        benchmark::DoNotOptimize(c->value().data());
        ++n;
        if (!c->Next().ok()) return 0;
      }
    }
    return n;
  };
  pass();  // warmup: emission slots, frame pool and value capacities grow once
  // BENCH_SCAN_DEBUG=1 prints one scan's IO profile per direction — the
  // node-visit asymmetry this exposes is how the old-snapshot forward-scan
  // gap (fixed by the index-entry content-floor hints) was diagnosed.
  if (getenv("BENCH_SCAN_DEBUG") != nullptr) {
    const HistReadStats h0 = tree->HistStats();
    const BufferPoolStats p0 = tree->PoolStats();
    pass();
    const HistReadStats h1 = tree->HistStats();
    const BufferPoolStats p1 = tree->PoolStats();
    fprintf(stderr,
            "[scan-debug] reverse=%d t=%llu keys=%zu blob_reads=%llu "
            "blob_bytes=%llu view_decodes=%llu owned_decodes=%llu "
            "pool_lookups=%llu\n",
            reverse ? 1 : 0, (unsigned long long)t, per_scan,
            (unsigned long long)(h1.blob_reads - h0.blob_reads),
            (unsigned long long)(h1.blob_bytes - h0.blob_bytes),
            (unsigned long long)(h1.view_decodes - h0.view_decodes),
            (unsigned long long)(h1.owned_decodes - h0.owned_decodes),
            (unsigned long long)((p1.hits + p1.misses) -
                                 (p0.hits + p0.misses)));
  }
  const uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  size_t total = 0;
  for (int r = 0; r < rounds; ++r) {
    if (clear_cache != nullptr) clear_cache->ClearCache();
    total += pass();
  }
  const auto end = std::chrono::steady_clock::now();
  const uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  const double secs = std::chrono::duration<double>(end - start).count();
  ScanResult r;
  r.entries_per_sec = secs > 0 ? static_cast<double>(total) / secs : 0;
  r.allocs_per_entry =
      total == 0 ? 0
                 : static_cast<double>(allocs) / static_cast<double>(total);
  r.entries_per_scan = per_scan;
  return r;
}

// ---- pinned-Get phase: the zero-copy public read surface ----
//
// Same warm-cache workload as the view phase, but through
// Get(ReadOptions, key, PinnableValue*): the blob pin moves into the
// result and the value stays a view, so a cache-hit lookup does ZERO
// value memcpys and zero heap allocations (the reused PinnableValue's
// scratch absorbs v3 delta cells inline).

HistAsOfResult MeasureHistAsOfPinned(
    tsb_tree::TsbTree* tree,
    const std::vector<std::pair<std::string, Timestamp>>& probes,
    int rounds) {
  tsb_tree::PinnableValue pv;
  tsb_tree::ReadOptions opts;
  // Warmup populates the shared-blob cache and the scratch capacity.
  for (const auto& [k, t] : probes) {
    opts.as_of = t;
    tree->Get(opts, k, &pv);
  }
  const HistReadStats before_stats = tree->HistStats();
  const uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  size_t ops = 0;
  for (int r = 0; r < rounds; ++r) {
    for (const auto& [k, t] : probes) {
      opts.as_of = t;
      benchmark::DoNotOptimize(tree->Get(opts, k, &pv));
      ++ops;
    }
  }
  const auto end = std::chrono::steady_clock::now();
  const uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  const double secs = std::chrono::duration<double>(end - start).count();
  const HistReadStats after_stats = tree->HistStats();
  HistAsOfResult r;
  r.ops_per_sec = secs > 0 ? static_cast<double>(ops) / secs : 0;
  r.allocs_per_op = static_cast<double>(allocs) / static_cast<double>(ops);
  const uint64_t lookups = (after_stats.cache_hits + after_stats.cache_misses) -
                           (before_stats.cache_hits + before_stats.cache_misses);
  const uint64_t hits = after_stats.cache_hits - before_stats.cache_hits;
  r.cache_hit_ratio =
      lookups == 0 ? 1.0
                   : static_cast<double>(hits) / static_cast<double>(lookups);
  return r;
}

HistAsOfResult MeasureHistAsOf(
    tsb_tree::TsbTree* tree,
    const std::vector<std::pair<std::string, Timestamp>>& probes,
    int rounds) {
  std::string v;
  // Warmup populates the shared-blob cache; the measured loop then runs
  // entirely on cache hits.
  for (const auto& [k, t] : probes) tree->GetAsOf(k, t, &v);
  const HistReadStats before_stats = tree->HistStats();
  const uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  size_t ops = 0;
  for (int r = 0; r < rounds; ++r) {
    for (const auto& [k, t] : probes) {
      benchmark::DoNotOptimize(tree->GetAsOf(k, t, &v));
      ++ops;
    }
  }
  const auto end = std::chrono::steady_clock::now();
  const uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  const double secs = std::chrono::duration<double>(end - start).count();
  const HistReadStats after_stats = tree->HistStats();
  HistAsOfResult r;
  r.ops_per_sec = secs > 0 ? static_cast<double>(ops) / secs : 0;
  r.allocs_per_op = static_cast<double>(allocs) / static_cast<double>(ops);
  const uint64_t lookups = (after_stats.cache_hits + after_stats.cache_misses) -
                           (before_stats.cache_hits + before_stats.cache_misses);
  const uint64_t hits = after_stats.cache_hits - before_stats.cache_hits;
  r.cache_hit_ratio =
      lookups == 0 ? 1.0
                   : static_cast<double>(hits) / static_cast<double>(lookups);
  return r;
}

void WriteHistAsOfJson() {
  tsb_tree::TsbOptions topts;
  topts.page_size = 2048;
  topts.buffer_pool_frames = 1024;  // current axis fully resident
  topts.hist_cache_blobs = 4096;    // whole historical working set cached
  TsbFixture view_f = TsbFixture::Build(QuerySpec(), topts);
  tsb_tree::TsbOptions owned_opts = topts;
  owned_opts.zero_copy_hist_reads = false;
  TsbFixture owned_f = TsbFixture::Build(QuerySpec(), owned_opts);

  // Probe set: deep-past as-of lookups that land on a version, so the
  // measured loop exercises full descents into historical data nodes.
  size_t keys = 0;
  {
    util::WorkloadGenerator gen(QuerySpec());
    util::Op op;
    while (gen.Next(&op)) {
    }
    keys = gen.keys_created();
  }
  util::WorkloadGenerator gen(QuerySpec());
  Random rnd(29);
  std::vector<std::pair<std::string, Timestamp>> probes;
  std::string v;
  for (int attempt = 0; attempt < 20000 && probes.size() < 512; ++attempt) {
    std::string k = gen.KeyFor(rnd.Uniform(keys));
    const Timestamp t = 1 + rnd.Uniform(kOps / 4);  // oldest quarter
    if (view_f.tree->GetAsOf(k, t, &v).ok()) {
      probes.emplace_back(std::move(k), t);
    }
  }
  if (probes.empty()) {
    fprintf(stderr, "hist as-of bench: no probes found, skipping JSON\n");
    return;
  }
  const int rounds =
      static_cast<int>(200000 / probes.size()) + 1;  // ~200k measured ops

  const HistAsOfResult view = MeasureHistAsOf(view_f.tree.get(), probes, rounds);
  const HistAsOfResult pinned =
      MeasureHistAsOfPinned(view_f.tree.get(), probes, rounds);
  const HistAsOfResult owned =
      MeasureHistAsOf(owned_f.tree.get(), probes, rounds);
  const double speedup =
      owned.ops_per_sec > 0 ? view.ops_per_sec / owned.ops_per_sec : 0;
  const double pinned_speedup =
      owned.ops_per_sec > 0 ? pinned.ops_per_sec / owned.ops_per_sec : 0;

  // ---- checksum overhead: the same warm pinned-Get loop with
  // verify-on-read disabled (what DbOptions::paranoid_checks = false
  // maps to). Warm reads serve from the buffer pool and the verified-
  // blob memo, so end-to-end checksums must cost ~nothing here; CI
  // gates the ratio at 5%.
  // Best-of-two per setting, interleaved, so a scheduler hiccup in one
  // timed window cannot fake a regression against the 5% gate.
  HistAsOfResult pinned_verify, pinned_noverify;
  for (int rep = 0; rep < 2; ++rep) {
    view_f.tree->pager()->set_verify_on_read(false);
    const HistAsOfResult off =
        MeasureHistAsOfPinned(view_f.tree.get(), probes, rounds);
    if (off.ops_per_sec > pinned_noverify.ops_per_sec) pinned_noverify = off;
    view_f.tree->pager()->set_verify_on_read(true);
    const HistAsOfResult on =
        MeasureHistAsOfPinned(view_f.tree.get(), probes, rounds);
    if (on.ops_per_sec > pinned_verify.ops_per_sec) pinned_verify = on;
  }
  const double verify_over_noverify =
      pinned_noverify.ops_per_sec > 0
          ? pinned_verify.ops_per_sec / pinned_noverify.ops_per_sec
          : 0;

  printf("== historical as-of lookups: zero-copy views vs owning decodes ==\n");
  printf("(%zu probes x %d rounds, shared-blob cache covers the working set)\n",
         probes.size(), rounds);
  printf("view path : %12.0f ops/s  %6.2f allocs/op  hit ratio %.3f\n",
         view.ops_per_sec, view.allocs_per_op, view.cache_hit_ratio);
  printf("pinned Get: %12.0f ops/s  %6.2f allocs/op  hit ratio %.3f "
         "(zero value memcpy)\n",
         pinned.ops_per_sec, pinned.allocs_per_op, pinned.cache_hit_ratio);
  printf("owned path: %12.0f ops/s  %6.2f allocs/op  hit ratio %.3f\n",
         owned.ops_per_sec, owned.allocs_per_op, owned.cache_hit_ratio);
  printf("speedup: %.2fx (pinned %.2fx)\n", speedup, pinned_speedup);
  printf("checksum overhead (warm pinned Get): verify-on %.0f ops/s vs "
         "verify-off %.0f ops/s = %.3fx\n\n",
         pinned_verify.ops_per_sec, pinned_noverify.ops_per_sec,
         verify_over_noverify);

  // ---- cold reads: mmap pins vs pread copies, cache disabled ----
  ColdFixture mmap_f = BuildColdFixture(/*enable_mmap=*/true, "mmap");
  ColdFixture copy_f = BuildColdFixture(/*enable_mmap=*/false, "copy");
  const int cold_rounds = static_cast<int>(60000 / probes.size()) + 1;
  const ColdReadResult cold_mmap =
      MeasureColdRead(mmap_f.tree.get(), probes, cold_rounds);
  const ColdReadResult cold_copy =
      MeasureColdRead(copy_f.tree.get(), probes, cold_rounds);
  const double cold_speedup = cold_copy.ops_per_sec > 0
                                  ? cold_mmap.ops_per_sec / cold_copy.ops_per_sec
                                  : 0;
  const HistReadStats mmap_stats = mmap_f.tree->HistStats();
  const HistReadStats copy_stats = copy_f.tree->HistStats();
  const BufferPoolStats cold_pool = mmap_f.tree->PoolStats();

  printf("== historical cold reads: mmap pins vs pread copies ==\n");
  printf("(%zu probes x %d rounds, blob cache disabled + cleared per round)\n",
         probes.size(), cold_rounds);
  printf("mmap path : %12.0f ops/s  %6.2f allocs/op (re-pin)  "
         "mapped %llu KiB\n",
         cold_mmap.ops_per_sec, cold_mmap.allocs_per_op,
         static_cast<unsigned long long>(mmap_stats.mapped_bytes / 1024));
  printf("copy path : %12.0f ops/s  %6.2f allocs/op          "
         "copied %llu KiB\n",
         cold_copy.ops_per_sec, cold_copy.allocs_per_op,
         static_cast<unsigned long long>(copy_stats.copied_bytes / 1024));
  printf("cold speedup: %.2fx; buffer-pool hit ratio (magnetic axis): %.3f\n",
         cold_speedup, cold_pool.hit_ratio());
  printf("written-node compression (workload keys, v3): %.3f\n\n",
         mmap_stats.compression_ratio());

  // ---- node bytes: v3 prefix compression vs v2 ----
  const NodeBytesResult nb = MeasureHistNodeBytes();
  const double v3_over_v2 =
      nb.v2_bytes > 0
          ? static_cast<double>(nb.v3_bytes) / static_cast<double>(nb.v2_bytes)
          : 1.0;
  printf("== historical node bytes, prefix-heavy keys ==\n");
  printf("v2: %llu bytes  v3: %llu bytes  ratio %.3f\n\n",
         static_cast<unsigned long long>(nb.v2_bytes),
         static_cast<unsigned long long>(nb.v3_bytes), v3_over_v2);

  // ---- snapshot scans: zero-copy frames, forward and reverse ----
  const Timestamp t_now = view_f.tree->VisibleNow();
  const Timestamp t_old = 1 + kOps / 4;
  const ScanResult scan_fwd_cur =
      MeasureScan(view_f.tree.get(), t_now, /*reverse=*/false, 30, nullptr);
  const ScanResult scan_rev_cur =
      MeasureScan(view_f.tree.get(), t_now, /*reverse=*/true, 30, nullptr);
  const ScanResult scan_fwd_old =
      MeasureScan(view_f.tree.get(), t_old, /*reverse=*/false, 30, nullptr);
  const ScanResult scan_rev_old =
      MeasureScan(view_f.tree.get(), t_old, /*reverse=*/true, 30, nullptr);
  const ScanResult scan_fwd_cold = MeasureScan(
      mmap_f.tree.get(), t_old, /*reverse=*/false, 8,
      mmap_f.tree->hist_store());
  const ScanResult scan_rev_cold = MeasureScan(
      mmap_f.tree.get(), t_old, /*reverse=*/true, 8,
      mmap_f.tree->hist_store());
  auto ratio = [](const ScanResult& rev, const ScanResult& fwd) {
    return fwd.entries_per_sec > 0 ? rev.entries_per_sec / fwd.entries_per_sec
                                   : 0.0;
  };
  const double rev_over_fwd_cur = ratio(scan_rev_cur, scan_fwd_cur);
  const double rev_over_fwd_old = ratio(scan_rev_old, scan_fwd_old);
  const double rev_over_fwd_cold = ratio(scan_rev_cold, scan_fwd_cold);

  printf("== snapshot scans: zero-copy frames + true backward walk ==\n");
  printf("(warm = blob cache covers the working set; cold = cache cleared "
         "per round, mmap pins)\n");
  printf("forward current : %12.0f entries/s  %6.3f allocs/entry  "
         "(%zu keys/scan)\n",
         scan_fwd_cur.entries_per_sec, scan_fwd_cur.allocs_per_entry,
         scan_fwd_cur.entries_per_scan);
  printf("reverse current : %12.0f entries/s  %6.3f allocs/entry  "
         "(%.2fx forward)\n",
         scan_rev_cur.entries_per_sec, scan_rev_cur.allocs_per_entry,
         rev_over_fwd_cur);
  printf("forward old     : %12.0f entries/s  %6.3f allocs/entry  "
         "(%zu keys/scan)\n",
         scan_fwd_old.entries_per_sec, scan_fwd_old.allocs_per_entry,
         scan_fwd_old.entries_per_scan);
  printf("reverse old     : %12.0f entries/s  %6.3f allocs/entry  "
         "(%.2fx forward)\n",
         scan_rev_old.entries_per_sec, scan_rev_old.allocs_per_entry,
         rev_over_fwd_old);
  printf("forward cold    : %12.0f entries/s  %6.3f allocs/entry\n",
         scan_fwd_cold.entries_per_sec, scan_fwd_cold.allocs_per_entry);
  printf("reverse cold    : %12.0f entries/s  %6.3f allocs/entry  "
         "(%.2fx forward)\n\n",
         scan_rev_cold.entries_per_sec, scan_rev_cold.allocs_per_entry,
         rev_over_fwd_cold);

  const char* path = std::getenv("BENCH_QUERY_JSON");
  if (path == nullptr) path = "BENCH_query.json";
  FILE* f = fopen(path, "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  fprintf(f,
          "{\n"
          "  \"workload\": {\"ops\": %zu, \"update_fraction\": %.2f, "
          "\"probes\": %zu, \"rounds\": %d},\n"
          "  \"hist_asof_view\": {\"ops_per_sec\": %.1f, "
          "\"allocs_per_op\": %.4f, \"cache_hit_ratio\": %.4f},\n"
          "  \"hist_asof_pinned\": {\"ops_per_sec\": %.1f, "
          "\"allocs_per_op\": %.4f, \"cache_hit_ratio\": %.4f},\n"
          "  \"hist_asof_owned_baseline\": {\"ops_per_sec\": %.1f, "
          "\"allocs_per_op\": %.4f, \"cache_hit_ratio\": %.4f},\n"
          "  \"speedup_view_vs_owned\": %.3f,\n"
          "  \"speedup_pinned_vs_owned\": %.3f,\n"
          "  \"checksum_overhead\": {\"pinned_verify_ops_per_sec\": %.1f, "
          "\"pinned_noverify_ops_per_sec\": %.1f, "
          "\"verify_over_noverify\": %.3f},\n"
          "  \"hist_cold_read\": {\"mmap_ops_per_sec\": %.1f, "
          "\"copy_ops_per_sec\": %.1f, \"speedup_mmap_vs_copy\": %.3f, "
          "\"allocs_per_op_repin\": %.4f, \"mapped_bytes\": %llu, "
          "\"copied_bytes\": %llu, \"rounds\": %d},\n"
          "  \"hist_node_bytes\": {\"workload\": \"prefix-heavy\", "
          "\"v2_bytes\": %llu, \"v3_bytes\": %llu, \"v3_over_v2\": %.3f, "
          "\"tree_compression_ratio\": %.3f},\n"
          "  \"scan\": {\n"
          "    \"forward_current\": {\"entries_per_sec\": %.1f, "
          "\"allocs_per_entry\": %.4f, \"entries_per_scan\": %zu},\n"
          "    \"reverse_current\": {\"entries_per_sec\": %.1f, "
          "\"allocs_per_entry\": %.4f, \"entries_per_scan\": %zu},\n"
          "    \"reverse_over_forward_current\": %.3f,\n"
          "    \"forward_old\": {\"entries_per_sec\": %.1f, "
          "\"allocs_per_entry\": %.4f, \"entries_per_scan\": %zu},\n"
          "    \"reverse_old\": {\"entries_per_sec\": %.1f, "
          "\"allocs_per_entry\": %.4f, \"entries_per_scan\": %zu},\n"
          "    \"reverse_over_forward_old\": %.3f,\n"
          "    \"forward_cold\": {\"entries_per_sec\": %.1f, "
          "\"allocs_per_entry\": %.4f},\n"
          "    \"reverse_cold\": {\"entries_per_sec\": %.1f, "
          "\"allocs_per_entry\": %.4f},\n"
          "    \"reverse_over_forward_cold\": %.3f\n"
          "  }\n"
          "}\n",
          kOps, kUpdateFraction, probes.size(), rounds, view.ops_per_sec,
          view.allocs_per_op, view.cache_hit_ratio, pinned.ops_per_sec,
          pinned.allocs_per_op, pinned.cache_hit_ratio, owned.ops_per_sec,
          owned.allocs_per_op, owned.cache_hit_ratio, speedup,
          pinned_speedup, pinned_verify.ops_per_sec,
          pinned_noverify.ops_per_sec, verify_over_noverify,
          cold_mmap.ops_per_sec, cold_copy.ops_per_sec, cold_speedup,
          cold_mmap.allocs_per_op,
          static_cast<unsigned long long>(mmap_stats.mapped_bytes),
          static_cast<unsigned long long>(copy_stats.copied_bytes),
          cold_rounds,
          static_cast<unsigned long long>(nb.v2_bytes),
          static_cast<unsigned long long>(nb.v3_bytes), v3_over_v2,
          mmap_stats.compression_ratio(),
          scan_fwd_cur.entries_per_sec, scan_fwd_cur.allocs_per_entry,
          scan_fwd_cur.entries_per_scan,
          scan_rev_cur.entries_per_sec, scan_rev_cur.allocs_per_entry,
          scan_rev_cur.entries_per_scan, rev_over_fwd_cur,
          scan_fwd_old.entries_per_sec, scan_fwd_old.allocs_per_entry,
          scan_fwd_old.entries_per_scan,
          scan_rev_old.entries_per_sec, scan_rev_old.allocs_per_entry,
          scan_rev_old.entries_per_scan, rev_over_fwd_old,
          scan_fwd_cold.entries_per_sec, scan_fwd_cold.allocs_per_entry,
          scan_rev_cold.entries_per_sec, scan_rev_cold.allocs_per_entry,
          rev_over_fwd_cold);
  fclose(f);
  printf("wrote %s\n\n", path);
}

void BM_TsbGetCurrent(benchmark::State& state) {
  Fixtures& f = Fixtures::Get();
  Random rnd(2);
  std::string v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.tsb.tree->GetCurrent(f.KeyAt(rnd.Next()), &v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TsbGetCurrent);

void BM_WobtGetCurrent(benchmark::State& state) {
  Fixtures& f = Fixtures::Get();
  Random rnd(2);
  std::string v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.wobt->GetCurrent(f.KeyAt(rnd.Next()), &v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WobtGetCurrent);

void BM_BptGetCurrent(benchmark::State& state) {
  Fixtures& f = Fixtures::Get();
  Random rnd(2);
  std::string v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.bpt->Get(f.KeyAt(rnd.Next()), &v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BptGetCurrent);

void BM_TsbGetAsOfDeep(benchmark::State& state) {
  Fixtures& f = Fixtures::Get();
  Random rnd(3);
  std::string v;
  for (auto _ : state) {
    const Timestamp t = 1 + rnd.Uniform(kOps / 4);
    benchmark::DoNotOptimize(f.tsb.tree->GetAsOf(f.KeyAt(rnd.Next()), t, &v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TsbGetAsOfDeep);

void BM_WobtGetAsOfDeep(benchmark::State& state) {
  Fixtures& f = Fixtures::Get();
  Random rnd(3);
  std::string v;
  for (auto _ : state) {
    const Timestamp t = 1 + rnd.Uniform(kOps / 4);
    benchmark::DoNotOptimize(f.wobt->GetAsOf(f.KeyAt(rnd.Next()), t, &v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WobtGetAsOfDeep);

void BM_TsbSnapshotScan(benchmark::State& state) {
  Fixtures& f = Fixtures::Get();
  const Timestamp t = state.range(0) == 0 ? kOps / 4 : kOps;  // old vs now
  for (auto _ : state) {
    auto it = f.tsb.tree->NewSnapshotIterator(t);
    it->SeekToFirst();
    size_t n = 0;
    while (it->Valid()) {
      ++n;
      it->Next();
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetLabel(state.range(0) == 0 ? "old snapshot" : "current snapshot");
}
BENCHMARK(BM_TsbSnapshotScan)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace tsb

int main(int argc, char** argv) {
  tsb::bench::PrintIoTable();
  tsb::bench::WriteHistAsOfJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
