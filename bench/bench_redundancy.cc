// Experiment E3 (paper section 5): amount of redundancy — physical record
// copies per logical version — under different split-time choices, with
// the WOBT as baseline.
//
// Expected shape: the WOBT, forced to split at current time on a
// write-once medium, stores many copies of long-lived records; the
// TSB-tree's free choice of split time cuts redundancy, with
// min-redundancy < last-update < current-time.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "wobt/wobt_tree.h"

namespace tsb {
namespace bench {
namespace {

constexpr size_t kOps = 15000;

double WobtRedundancy(double update_fraction, uint64_t* sectors) {
  WormDevice worm(1024);
  wobt::WobtOptions opts;
  opts.node_sectors = 4;
  wobt::WobtTree tree(&worm, opts);
  util::WorkloadSpec spec;
  spec.seed = 42;
  spec.num_ops = kOps;
  spec.update_fraction = update_fraction;
  spec.value_size = 40;
  util::WorkloadGenerator gen(spec);
  util::Op op;
  while (gen.Next(&op)) {
    Status s = tree.Insert(op.key, op.value, op.ts);
    if (!s.ok()) {
      fprintf(stderr, "wobt insert failed: %s\n", s.ToString().c_str());
      abort();
    }
  }
  *sectors = worm.sectors_burned();
  const auto& c = tree.counters();
  return static_cast<double>(c.record_copies) /
         static_cast<double>(c.logical_inserts);
}

void PrintTable() {
  printf("== E3: redundancy (physical copies / logical version) ==\n");
  printf("(%zu ops, 40-byte values; TSB: 2 KiB pages; WOBT: 4x1 KiB nodes)\n\n",
         kOps);
  printf("%8s | %12s %12s %12s | %12s\n", "upd%", "tsb current",
         "tsb last-upd", "tsb min-red", "wobt");
  printf("%s\n", std::string(70, '-').c_str());
  for (double uf : {0.25, 0.5, 0.75, 0.9}) {
    double tsb_r[3];
    int i = 0;
    for (auto mode : {tsb_tree::SplitTimeMode::kCurrentTime,
                      tsb_tree::SplitTimeMode::kLastUpdate,
                      tsb_tree::SplitTimeMode::kMinRedundancy}) {
      util::WorkloadSpec spec;
      spec.seed = 42;
      spec.num_ops = kOps;
      spec.update_fraction = uf;
      spec.value_size = 40;
      tsb_tree::TsbOptions opts;
      opts.page_size = 2048;
      opts.policy.kind_policy = tsb_tree::SplitKindPolicy::kThreshold;
      opts.policy.key_split_threshold = 0.5;
      opts.policy.time_mode = mode;
      TsbFixture f = TsbFixture::Build(spec, opts);
      tsb_r[i++] = f.Stats().redundancy();
    }
    uint64_t wobt_sectors = 0;
    const double wobt_r = WobtRedundancy(uf, &wobt_sectors);
    printf("%7.0f%% | %12.3f %12.3f %12.3f | %12.3f\n", uf * 100, tsb_r[0],
           tsb_r[1], tsb_r[2], wobt_r);
  }
  printf("\nWOBT baseline also wastes whole sectors per increment; see E5.\n\n");
}

void BM_TsbBuildRedundancyWorkload(benchmark::State& state) {
  for (auto _ : state) {
    util::WorkloadSpec spec;
    spec.seed = 9;
    spec.num_ops = 4000;
    spec.update_fraction = 0.75;
    tsb_tree::TsbOptions opts;
    opts.page_size = 2048;
    opts.policy.time_mode =
        static_cast<tsb_tree::SplitTimeMode>(state.range(0));
    TsbFixture f = TsbFixture::Build(spec, opts);
    benchmark::DoNotOptimize(f.tree.get());
  }
  state.SetItemsProcessed(state.iterations() * 4000);
  state.SetLabel(TimeModeName(
      static_cast<tsb_tree::SplitTimeMode>(state.range(0))));
}
BENCHMARK(BM_TsbBuildRedundancyWorkload)
    ->DenseRange(0, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace tsb

int main(int argc, char** argv) {
  tsb::bench::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
