// Experiment E9 (paper section 3.6): secondary indexes as TSB-trees.
// Temporal queries on secondary values ("how many records had secondary
// key S at time T") are answered from the secondary tree alone, without
// searching primary data — we measure that against the brute-force
// alternative (scan a primary snapshot and test every record).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "bench_common.h"
#include "db/multiversion_db.h"

namespace tsb {
namespace bench {
namespace {

constexpr int kRecords = 400;
constexpr int kRounds = 20;
constexpr int kRegions = 8;

std::optional<std::string> ExtractRegion(const Slice& v) {
  const std::string s = v.ToString();
  const size_t bar = s.find('|');
  if (bar == std::string::npos) return std::nullopt;
  return s.substr(0, bar);
}

struct DbFixture {
  std::unique_ptr<MemDevice> magnetic;
  std::unique_ptr<WormDevice> worm;
  std::unique_ptr<db::MultiVersionDB> mvdb;
  Timestamp mid = 0;

  static DbFixture& Get() {
    static DbFixture* f = Build();
    return *f;
  }

  static DbFixture* Build() {
    auto* f = new DbFixture();
    f->magnetic = std::make_unique<MemDevice>();
    f->worm = std::make_unique<WormDevice>(1024);
    db::DbOptions opts;
    opts.tree.page_size = 2048;
    if (!db::MultiVersionDB::Open(f->magnetic.get(), f->worm.get(), opts,
                                  &f->mvdb)
             .ok()) {
      abort();
    }
    if (!f->mvdb->CreateSecondaryIndex("by_region", ExtractRegion).ok()) {
      abort();
    }
    Random rnd(42);
    for (int round = 0; round < kRounds; ++round) {
      for (int r = 0; r < kRecords; ++r) {
        const std::string region =
            "region-" + std::to_string(rnd.Uniform(kRegions));
        const std::string key = "rec-" + std::to_string(r);
        Timestamp cts = 0;
        if (!f->mvdb->Put(key, region + "|payload-" + std::to_string(round),
                          &cts)
                 .ok()) {
          abort();
        }
        if (round == kRounds / 2 && r == kRecords - 1) f->mid = cts;
      }
    }
    return f;
  }
};

// Brute force: scan the primary snapshot at t, extracting regions.
size_t BruteForceCount(db::MultiVersionDB* mvdb, const std::string& region,
                       Timestamp t) {
  size_t n = 0;
  auto it = mvdb->NewSnapshotIterator(t);
  it->SeekToFirst();
  while (it->Valid()) {
    auto r = ExtractRegion(it->value());
    if (r.has_value() && *r == region) ++n;
    it->Next();
  }
  return n;
}

void PrintTable() {
  DbFixture& f = DbFixture::Get();
  printf("== E9: secondary-index temporal count vs primary scan ==\n");
  printf("(%d records x %d update rounds, %d regions)\n\n", kRecords, kRounds,
         kRegions);
  printf("%12s %10s | %12s %14s | %s\n", "time", "region", "index count",
         "primary scan", "agree?");
  printf("%s\n", std::string(70, '-').c_str());
  for (Timestamp t : {f.mid, f.mvdb->Now()}) {
    for (int r = 0; r < 3; ++r) {
      const std::string region = "region-" + std::to_string(r);
      size_t via_index = 0;
      if (!f.mvdb->index("by_region")->CountAsOf(region, t, &via_index).ok()) {
        abort();
      }
      const size_t via_scan = BruteForceCount(f.mvdb.get(), region, t);
      printf("%12llu %10s | %12zu %14zu | %s\n", (unsigned long long)t,
             region.c_str(), via_index, via_scan,
             via_index == via_scan ? "yes" : "NO — BUG");
    }
  }
  printf("\n");
}

void BM_CountViaSecondaryIndex(benchmark::State& state) {
  DbFixture& f = DbFixture::Get();
  Random rnd(3);
  for (auto _ : state) {
    const std::string region =
        "region-" + std::to_string(rnd.Uniform(kRegions));
    size_t n = 0;
    benchmark::DoNotOptimize(
        f.mvdb->index("by_region")->CountAsOf(region, f.mid, &n));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountViaSecondaryIndex);

void BM_CountViaPrimaryScan(benchmark::State& state) {
  DbFixture& f = DbFixture::Get();
  Random rnd(3);
  for (auto _ : state) {
    const std::string region =
        "region-" + std::to_string(rnd.Uniform(kRegions));
    benchmark::DoNotOptimize(BruteForceCount(f.mvdb.get(), region, f.mid));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountViaPrimaryScan);

void BM_FindBySecondaryJoined(benchmark::State& state) {
  DbFixture& f = DbFixture::Get();
  Random rnd(4);
  std::vector<std::pair<std::string, std::string>> kvs;
  for (auto _ : state) {
    const std::string region =
        "region-" + std::to_string(rnd.Uniform(kRegions));
    benchmark::DoNotOptimize(
        f.mvdb->FindBySecondaryAsOf("by_region", region, f.mid, &kvs));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FindBySecondaryJoined);

}  // namespace
}  // namespace bench
}  // namespace tsb

int main(int argc, char** argv) {
  tsb::bench::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
