// Sharded write scaling: a fixed pool of writer threads committing
// WriteBatches against a ShardedDB as the shard count grows 1 -> 8.
//
// Two key patterns:
//   disjoint — each writer's keys are pre-filtered to one home shard, so
//              every batch takes the single-shard fast path and the
//              shards' commit pipelines (latch, stamp, WAL) run fully in
//              parallel. This is the scaling headline.
//   uniform  — each batch draws random keys from the whole keyspace, so
//              almost every batch spans shards and pays the coordinator
//              protocol (prepare on every touched shard, one decision-log
//              append, ts-barrier release). This measures the cost of
//              cross-shard atomicity, and CI gates only that it makes
//              progress.
//
// WAL sync is off for both patterns: the question here is whether the
// commit path scales with shards on CPU, not how fast fdatasync is
// (bench_durability owns that axis). Emits BENCH_sharded.json
// (BENCH_SHARDED_JSON overrides the path) with the ratio CI gates on:
// 4-shard disjoint throughput vs 1-shard, same 4 writers.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "shard/sharded_db.h"

namespace tsb {
namespace bench {
namespace {

using db::WriteBatch;
using shard::ShardedDB;
using shard::ShardedOptions;

constexpr int kWriters = 4;
constexpr int kBatch = 4;
constexpr int kMeasureMs = 400;
constexpr int kKeysPerWriter = 512;

std::string KeyOf(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%06d", i);
  return buf;
}

struct ShardedFixture {
  std::string path;
  std::unique_ptr<ShardedDB> db;
  // [writer][n] — for disjoint, writer w's keys all live on shard
  // (w % num_shards); for uniform they are a plain slice of the keyspace.
  std::vector<std::vector<std::string>> keys;

  static ShardedFixture Build(uint32_t shards, bool disjoint) {
    static std::atomic<int> counter{0};
    ShardedFixture f;
    f.path = "/tmp/tsb_bench_sharded." + std::to_string(::getpid()) + "." +
             std::to_string(counter.fetch_add(1));
    ShardedDB::Destroy(f.path);
    ShardedOptions o;
    o.num_shards = shards;
    o.base.tree.page_size = 4096;
    o.base.tree.buffer_pool_frames = 4096;
    o.base.tree.concurrent_writers = true;
    o.base.wal_sync = wal::WalSyncMode::kOff;
    Status s = ShardedDB::Open(f.path, o, &f.db);
    if (!s.ok()) {
      fprintf(stderr, "sharded open failed: %s\n", s.ToString().c_str());
      abort();
    }
    f.keys.resize(kWriters);
    if (disjoint) {
      // Walk the keyspace and deal each key to the writer owning its home
      // shard, until every writer has its quota of single-shard keys.
      int filled = 0;
      for (int i = 0; filled < kWriters; ++i) {
        const std::string key = KeyOf(i);
        const uint32_t home = f.db->ShardOf(key);
        for (int w = 0; w < kWriters; ++w) {
          if (home == static_cast<uint32_t>(w) % shards &&
              f.keys[w].size() < kKeysPerWriter) {
            f.keys[w].push_back(key);
            if (f.keys[w].size() == kKeysPerWriter) ++filled;
            break;
          }
        }
      }
    } else {
      for (int w = 0; w < kWriters; ++w) {
        for (int k = 0; k < kKeysPerWriter; ++k) {
          f.keys[w].push_back(KeyOf(w * kKeysPerWriter + k));
        }
      }
    }
    return f;
  }

  ShardedFixture() = default;
  ShardedFixture(ShardedFixture&& o) noexcept
      : path(std::move(o.path)), db(std::move(o.db)),
        keys(std::move(o.keys)) {
    o.path.clear();
  }

  ~ShardedFixture() {
    db.reset();
    if (!path.empty()) ShardedDB::Destroy(path);
  }
};

struct ShardedRun {
  double commits_per_sec = 0;
  uint64_t multi_shard_commits = 0;
};

ShardedRun RunShardedWriters(ShardedFixture* f, bool disjoint) {
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> multi{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([f, w, disjoint, &stop, &failed, &commits, &multi] {
      const std::vector<std::string>& pool = f->keys[w];
      uint64_t rng = 0x9e3779b97f4a7c15ull * (w + 1);
      uint64_t local_commits = 0;
      uint64_t local_multi = 0;
      uint64_t seq = 0;
      while (!stop.load(std::memory_order_acquire)) {
        WriteBatch batch;
        uint32_t first_shard = 0;
        bool spans = false;
        for (int i = 0; i < kBatch; ++i) {
          size_t ki;
          if (disjoint) {
            ki = (seq * kBatch + i) % pool.size();
          } else {
            rng = rng * 6364136223846793005ull + 1442695040888963407ull;
            ki = static_cast<size_t>(rng >> 33) % pool.size();
          }
          const std::string& key = pool[ki];
          const uint32_t home = f->db->ShardOf(key);
          if (i == 0) {
            first_shard = home;
          } else if (home != first_shard) {
            spans = true;
          }
          batch.Put(key, "w" + std::to_string(w) + "-v" +
                             std::to_string(seq));
        }
        Status s = f->db->Write(batch);
        seq++;
        if (!s.ok()) {
          fprintf(stderr, "sharded commit failed: %s\n",
                  s.ToString().c_str());
          failed.store(true);
          break;
        }
        local_commits++;
        if (spans) local_multi++;
      }
      commits.fetch_add(local_commits, std::memory_order_relaxed);
      multi.fetch_add(local_multi, std::memory_order_relaxed);
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(kMeasureMs));
  stop.store(true, std::memory_order_release);
  for (auto& t : writers) t.join();
  if (failed.load()) {
    fprintf(stderr, "sharded writer run failed\n");
    abort();
  }

  ShardedRun res;
  res.commits_per_sec =
      static_cast<double>(commits.load()) * 1000.0 / kMeasureMs;
  res.multi_shard_commits = multi.load();
  return res;
}

void PrintShardTableAndJson() {
  printf("# Sharded write scaling: %d writers, batch=%d, wal_sync=off\n",
         kWriters, kBatch);
  printf("# page=4096 frames=4096 measure=%dms cores=%u\n", kMeasureMs,
         std::thread::hardware_concurrency());
  if (std::thread::hardware_concurrency() < 4) {
    printf(
        "# NOTE: <4 cores — shard pipelines time-share; scaling is capped\n"
        "# by the scheduler, not by the partitioning.\n");
  }
  printf("%-10s %-8s %14s %18s\n", "pattern", "shards", "commits/s",
         "multi-shard");

  struct Row {
    bool disjoint;
    uint32_t shards;
    ShardedRun r;
  };
  std::vector<Row> rows;
  for (const bool disjoint : {true, false}) {
    for (const uint32_t shards : {1u, 2u, 4u, 8u}) {
      // Fresh DB per run so every configuration starts from the same
      // empty state instead of inheriting versions from the last sweep.
      ShardedFixture f = ShardedFixture::Build(shards, disjoint);
      Row row{disjoint, shards, RunShardedWriters(&f, disjoint)};
      printf("%-10s %-8u %14.0f %18llu\n",
             disjoint ? "disjoint" : "uniform", shards,
             row.r.commits_per_sec,
             (unsigned long long)row.r.multi_shard_commits);
      rows.push_back(row);
    }
  }
  printf("\n");

  auto find = [&](bool disjoint, uint32_t shards) -> const ShardedRun& {
    for (const Row& row : rows) {
      if (row.disjoint == disjoint && row.shards == shards) return row.r;
    }
    abort();
  };
  const double one = find(true, 1).commits_per_sec;
  const double four = find(true, 4).commits_per_sec;
  const double speedup_4s = one > 0 ? four / one : 0.0;
  const double uniform_4s = find(false, 4).commits_per_sec;
  const double coord_cost =
      four > 0 ? uniform_4s / four : 0.0;
  printf("4-shard vs 1-shard (disjoint, %d writers): %.2fx\n", kWriters,
         speedup_4s);
  printf("uniform vs disjoint at 4 shards (coordinator cost): %.2fx\n\n",
         coord_cost);

  const char* path = std::getenv("BENCH_SHARDED_JSON");
  if (path == nullptr) path = "BENCH_sharded.json";
  FILE* out = fopen(path, "w");
  if (out == nullptr) {
    fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  fprintf(out,
          "{\n"
          "  \"hardware_concurrency\": %u,\n"
          "  \"writers\": %d,\n"
          "  \"batch\": %d,\n"
          "  \"measure_ms\": %d,\n"
          "  \"runs\": [\n",
          std::thread::hardware_concurrency(), kWriters, kBatch, kMeasureMs);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    fprintf(out,
            "    {\"pattern\": \"%s\", \"shards\": %u, "
            "\"commits_per_sec\": %.1f, \"multi_shard_commits\": %llu}%s\n",
            row.disjoint ? "disjoint" : "uniform", row.shards,
            row.r.commits_per_sec,
            (unsigned long long)row.r.multi_shard_commits,
            i + 1 < rows.size() ? "," : "");
  }
  fprintf(out,
          "  ],\n"
          "  \"speedup_4s_disjoint_vs_1s\": %.3f,\n"
          "  \"uniform_over_disjoint_4s\": %.3f\n"
          "}\n",
          speedup_4s, coord_cost);
  fclose(out);
  printf("wrote %s\n", path);
}

// Google-benchmark registrations for ad-hoc timing runs; the CI artifact
// comes from the deterministic table above.
void BM_ShardedWriters(benchmark::State& state) {
  const uint32_t shards = static_cast<uint32_t>(state.range(0));
  const bool disjoint = state.range(1) != 0;
  for (auto _ : state) {
    ShardedFixture f = ShardedFixture::Build(shards, disjoint);
    ShardedRun r = RunShardedWriters(&f, disjoint);
    state.counters["commits_per_sec"] = r.commits_per_sec;
  }
}
BENCHMARK(BM_ShardedWriters)
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({4, 0})
    ->Args({8, 1})
    ->Iterations(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace tsb

int main(int argc, char** argv) {
  tsb::bench::PrintShardTableAndJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
