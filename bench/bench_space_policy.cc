// Experiments E1 + E2 (paper section 5): total space use and space use in
// the current (magnetic) database, under different splitting policies and
// different rates of update versus insertion.
//
// Expected shape: time-split-heavy policies minimize magnetic space and
// maximize total space; key-split-heavy policies do the reverse; the
// spread widens as the update fraction grows (pure-insert workloads never
// time-split at all — section 3.2 boundary condition).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace tsb {
namespace bench {
namespace {

constexpr size_t kOps = 20000;
constexpr uint32_t kPageSize = 2048;

struct PolicyRow {
  const char* label;
  tsb_tree::SplitPolicyConfig config;
};

std::vector<PolicyRow> Policies() {
  using tsb_tree::SplitKindPolicy;
  using tsb_tree::SplitTimeMode;
  std::vector<PolicyRow> rows;
  {
    tsb_tree::SplitPolicyConfig c;
    c.kind_policy = SplitKindPolicy::kWobtStyle;
    c.time_mode = SplitTimeMode::kCurrentTime;
    rows.push_back({"wobt-style (time-split always)", c});
  }
  {
    tsb_tree::SplitPolicyConfig c;
    c.kind_policy = SplitKindPolicy::kThreshold;
    c.key_split_threshold = 0.33;
    c.time_mode = SplitTimeMode::kLastUpdate;
    rows.push_back({"threshold 0.33 (key-leaning)", c});
  }
  {
    tsb_tree::SplitPolicyConfig c;
    c.kind_policy = SplitKindPolicy::kThreshold;
    c.key_split_threshold = 0.67;
    c.time_mode = SplitTimeMode::kLastUpdate;
    rows.push_back({"threshold 0.67 (default)", c});
  }
  {
    tsb_tree::SplitPolicyConfig c;
    c.kind_policy = SplitKindPolicy::kThreshold;
    c.key_split_threshold = 0.95;
    c.time_mode = SplitTimeMode::kLastUpdate;
    rows.push_back({"threshold 0.95 (time-leaning)", c});
  }
  {
    tsb_tree::SplitPolicyConfig c;
    c.kind_policy = SplitKindPolicy::kCostBased;
    c.cost_magnetic = 1.0;
    c.cost_optical = 0.2;
    c.time_mode = SplitTimeMode::kLastUpdate;
    rows.push_back({"cost-based CM:CO=5:1", c});
  }
  return rows;
}

void PrintTable() {
  printf("== E1/E2: space vs split policy vs update:insert mix ==\n");
  printf("(%zu ops, %u-byte pages, 1 KiB WORM sectors)\n\n", kOps, kPageSize);
  printf("%-32s %8s | %12s %12s %12s %10s\n", "policy", "upd%", "SpaceM KiB",
         "SpaceO KiB", "total KiB", "cur pages");
  printf("%s\n", std::string(95, '-').c_str());
  for (double update_fraction : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    for (const PolicyRow& row : Policies()) {
      util::WorkloadSpec spec;
      spec.seed = 42;
      spec.num_ops = kOps;
      spec.update_fraction = update_fraction;
      spec.value_size = 40;
      tsb_tree::TsbOptions opts;
      opts.page_size = kPageSize;
      opts.policy = row.config;
      TsbFixture f = TsbFixture::Build(spec, opts);
      tsb_tree::SpaceStats stats = f.Stats();
      printf("%-32s %7.0f%% | %12.1f %12.1f %12.1f %10llu\n", row.label,
             update_fraction * 100, KiB(stats.magnetic_bytes),
             KiB(stats.optical_device_bytes), KiB(stats.total_bytes()),
             static_cast<unsigned long long>(stats.magnetic_pages));
    }
    printf("%s\n", std::string(95, '-').c_str());
  }
  printf("\n");
}

// Timing: insert throughput under each policy at 50%% updates.
void BM_InsertThroughput(benchmark::State& state) {
  const auto policies = Policies();
  const PolicyRow& row = policies[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    util::WorkloadSpec spec;
    spec.seed = 7;
    spec.num_ops = 5000;
    spec.update_fraction = 0.5;
    spec.value_size = 40;
    tsb_tree::TsbOptions opts;
    opts.page_size = kPageSize;
    opts.policy = row.config;
    TsbFixture f = TsbFixture::Build(spec, opts);
    benchmark::DoNotOptimize(f.tree.get());
  }
  state.SetItemsProcessed(state.iterations() * 5000);
  state.SetLabel(row.label);
}
BENCHMARK(BM_InsertThroughput)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace tsb

int main(int argc, char** argv) {
  tsb::bench::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
