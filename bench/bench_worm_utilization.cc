// Experiment E5 (paper sections 1, 2.1, 3.4): WORM sector utilization.
// The WOBT burns one whole sector per incremental insert ("even when a
// small amount of data is written, the rest of the sector is unusable");
// the TSB-tree consolidates node contents in the erasable current database
// and appends near-sector-sized units, so its historical utilization
// "nearly approximates the sector size".
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "wobt/wobt_tree.h"

namespace tsb {
namespace bench {
namespace {

constexpr size_t kOps = 10000;

struct UtilRow {
  double wobt_util;
  uint64_t wobt_sectors;
  double tsb_util;
  uint64_t tsb_sectors;
};

UtilRow Measure(uint32_t sector_size, double update_fraction) {
  UtilRow row{};
  {
    WormDevice worm(sector_size);
    wobt::WobtOptions opts;
    opts.node_sectors = 4;
    wobt::WobtTree tree(&worm, opts);
    util::WorkloadSpec spec;
    spec.seed = 42;
    spec.num_ops = kOps;
    spec.update_fraction = update_fraction;
    spec.value_size = 40;
    util::WorkloadGenerator gen(spec);
    util::Op op;
    while (gen.Next(&op)) {
      if (!tree.Insert(op.key, op.value, op.ts).ok()) abort();
    }
    row.wobt_util = worm.Utilization();
    row.wobt_sectors = worm.sectors_burned();
  }
  {
    util::WorkloadSpec spec;
    spec.seed = 42;
    spec.num_ops = kOps;
    spec.update_fraction = update_fraction;
    spec.value_size = 40;
    tsb_tree::TsbOptions opts;
    opts.page_size = 2048;
    opts.policy.key_split_threshold = 0.5;
    TsbFixture f = TsbFixture::Build(spec, opts, sector_size);
    row.tsb_util = f.worm->Utilization();
    row.tsb_sectors = f.worm->sectors_burned();
  }
  return row;
}

void PrintTable() {
  printf("== E5: WORM sector utilization, WOBT vs TSB historical ==\n");
  printf("(%zu ops, 40-byte values; utilization = payload / burned bytes)\n\n",
         kOps);
  printf("%8s %8s | %10s %12s | %10s %12s | %8s\n", "sector", "upd%",
         "wobt util", "wobt sect", "tsb util", "tsb sect", "ratio");
  printf("%s\n", std::string(84, '-').c_str());
  for (uint32_t sector : {512u, 1024u, 2048u}) {
    for (double uf : {0.5, 0.9}) {
      UtilRow r = Measure(sector, uf);
      printf("%8u %7.0f%% | %9.1f%% %12llu | %9.1f%% %12llu | %7.1fx\n",
             sector, uf * 100, 100 * r.wobt_util,
             static_cast<unsigned long long>(r.wobt_sectors),
             100 * r.tsb_util, static_cast<unsigned long long>(r.tsb_sectors),
             r.wobt_util > 0 ? r.tsb_util / r.wobt_util : 0.0);
    }
  }
  printf("\n(TSB burns a small fraction of WOBT's sectors because only\n"
         "consolidated historical nodes reach the WORM; the ratio column is\n"
         "utilization gain)\n\n");
}

void BM_WormAppendConsolidated(benchmark::State& state) {
  // The raw device-level effect: consolidated appends vs one-record writes.
  const bool consolidated = state.range(0) == 1;
  for (auto _ : state) {
    WormDevice worm(1024);
    if (consolidated) {
      std::string node(1016, 'n');
      for (int i = 0; i < 200; ++i) {
        uint64_t off;
        benchmark::DoNotOptimize(worm.Append(node, &off));
      }
    } else {
      std::string record(50, 'r');
      for (int i = 0; i < 200 * 20; ++i) {
        uint64_t off;
        benchmark::DoNotOptimize(worm.Append(record, &off));
      }
    }
  }
  state.SetLabel(consolidated ? "consolidated nodes" : "record-per-sector");
}
BENCHMARK(BM_WormAppendConsolidated)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace tsb

int main(int argc, char** argv) {
  tsb::bench::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
