// Fault-injection harness: repeatedly SIGKILL a child process running a
// concurrent commit workload, reopen the database in the parent, and
// check the durability contract against a commit-log oracle:
//   1. no acknowledged commit is lost (present, right value, right ts),
//   2. no transaction is torn (batches recover all-or-nothing),
//   3. the tree passes full structural verification after every crash.
//
// The oracle is an O_APPEND file the child writes ONE line to per commit,
// strictly after Write() returned — exactly a client's view of what was
// acknowledged. Killing with SIGKILL (not SIGTERM) means no destructor,
// no flush, no atexit: the only survivors are what the WAL + checkpoint
// discipline made durable.
//
// Plain executable, no benchmark-library dependency:
//   crash_harness [--cycles N] [--writers N] [--batch N]
//                 [--min-ms N] [--max-ms N] [--path DIR] [--seed N]
// Exit code 0 = every cycle upheld the contract.
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "db/multiversion_db.h"
#include "tsb/tree_check.h"

namespace {

using tsb::Status;
using tsb::Timestamp;
using tsb::db::DbOptions;
using tsb::db::MultiVersionDB;
using tsb::db::WriteBatch;

struct Config {
  int cycles = 50;
  int writers = 4;
  int batch = 3;
  int min_ms = 20;
  int max_ms = 250;
  int checksums = 1;  // post-cycle TreeChecker also audits device CRCs
  uint32_t seed = 0x5eed;
  std::string path;
};

std::string Key(int writer, int cycle, int n) {
  char buf[40];
  snprintf(buf, sizeof(buf), "c%03d-w%02d-key-%06d", cycle, writer, n);
  return buf;
}

std::string Value(int writer, int cycle, int n) {
  char buf[64];
  snprintf(buf, sizeof(buf), "value-%03d-%02d-%06d-", cycle, writer, n);
  std::string v = buf;
  v.append(48, 'x');
  return v;
}

DbOptions Options() {
  DbOptions opts;
  opts.tree.page_size = 1024;
  opts.tree.buffer_pool_frames = 1 << 14;
  opts.tree.concurrent_writers = true;
  return opts;
}

/// Child body: commit until killed, acking each commit to the oracle.
[[noreturn]] void ChildWorkload(const Config& cfg, int cycle) {
  std::unique_ptr<MultiVersionDB> db;
  if (!MultiVersionDB::Open(cfg.path, Options(), &db).ok()) ::_exit(2);
  const int fd = ::open((cfg.path + ".oracle").c_str(),
                        O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) ::_exit(3);
  std::vector<std::thread> threads;
  for (int w = 0; w < cfg.writers; ++w) {
    threads.emplace_back([&, w] {
      for (int seq = 0;; ++seq) {
        WriteBatch batch;
        for (int i = 0; i < cfg.batch; ++i) {
          const int n = seq * cfg.batch + i;
          batch.Put(Key(w, cycle, n), Value(w, cycle, n));
        }
        Timestamp cts = 0;
        if (!db->Write(batch, &cts).ok()) ::_exit(4);
        char line[80];
        const int len = snprintf(line, sizeof(line), "%d %d %d %llu\n",
                                 cycle, w, seq, (unsigned long long)cts);
        if (::write(fd, line, len) != len) ::_exit(5);
      }
    });
  }
  for (auto& t : threads) t.join();
  ::_exit(0);
}

struct Ack {
  int cycle;
  int writer;
  int seq;
  Timestamp ts;
};

bool ReadOracle(const std::string& file, std::vector<Ack>* acks) {
  acks->clear();
  FILE* f = fopen(file.c_str(), "r");
  if (f == nullptr) return true;  // no acks yet
  char line[96];
  while (fgets(line, sizeof(line), f) != nullptr) {
    Ack a;
    unsigned long long ts = 0;
    if (sscanf(line, "%d %d %d %llu", &a.cycle, &a.writer, &a.seq, &ts) ==
        4) {
      a.ts = ts;
      acks->push_back(a);
    }
    // else: line torn by the kill — that commit was never acknowledged.
  }
  fclose(f);
  return true;
}

bool Verify(MultiVersionDB* db, const std::vector<Ack>& acks,
            const Config& cfg, int* failures) {
  for (const Ack& a : acks) {
    for (int i = 0; i < cfg.batch; ++i) {
      const int n = a.seq * cfg.batch + i;
      std::string value;
      Timestamp version_ts = 0;
      Status s =
          db->GetAsOf(Key(a.writer, a.cycle, n), a.ts, &value, &version_ts);
      if (!s.ok()) {
        fprintf(stderr,
                "FAIL: acked commit lost: cycle %d writer %d seq %d key %d "
                "(%s)\n",
                a.cycle, a.writer, a.seq, n, s.ToString().c_str());
        ++*failures;
        continue;
      }
      if (value != Value(a.writer, a.cycle, n) || version_ts != a.ts) {
        fprintf(stderr,
                "FAIL: acked commit mangled: cycle %d writer %d seq %d key "
                "%d (ts %llu vs %llu)\n",
                a.cycle, a.writer, a.seq, n, (unsigned long long)version_ts,
                (unsigned long long)a.ts);
        ++*failures;
      }
    }
  }
  // Atomicity probes just past each writer's acked frontier: a batch is
  // recovered whole or not at all.
  std::map<std::pair<int, int>, int> frontier;  // (cycle, writer) -> seq
  for (const Ack& a : acks) {
    auto [it, inserted] = frontier.emplace(std::make_pair(a.cycle, a.writer),
                                           a.seq);
    if (!inserted && it->second < a.seq) it->second = a.seq;
  }
  for (const auto& [cw, seq] : frontier) {
    for (int probe = seq + 1; probe < seq + 3; ++probe) {
      int present = 0;
      for (int i = 0; i < cfg.batch; ++i) {
        std::string value;
        if (db->Get(Key(cw.second, cw.first, probe * cfg.batch + i), &value)
                .ok()) {
          ++present;
        }
      }
      if (present != 0 && present != cfg.batch) {
        fprintf(stderr, "FAIL: torn batch: cycle %d writer %d seq %d "
                        "(%d/%d keys)\n",
                cw.first, cw.second, probe, present, cfg.batch);
        ++*failures;
      }
    }
  }
  tsb::tsb_tree::TreeChecker checker(db->primary());
  checker.set_verify_checksums(cfg.checksums != 0);
  Status s = checker.Check();
  if (!s.ok()) {
    fprintf(stderr, "FAIL: tree check: %s\n", s.ToString().c_str());
    ++*failures;
  }
  return *failures == 0;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  cfg.path = "/tmp/tsb_crash_harness." + std::to_string(::getpid());
  for (int i = 1; i < argc; ++i) {
    auto arg = [&](const char* name, int* out) {
      if (strcmp(argv[i], name) == 0 && i + 1 < argc) {
        *out = atoi(argv[++i]);
        return true;
      }
      return false;
    };
    if (arg("--cycles", &cfg.cycles) || arg("--writers", &cfg.writers) ||
        arg("--batch", &cfg.batch) || arg("--min-ms", &cfg.min_ms) ||
        arg("--max-ms", &cfg.max_ms) || arg("--checksums", &cfg.checksums)) {
      continue;
    }
    if (strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      cfg.seed = static_cast<uint32_t>(atoi(argv[++i]));
    } else if (strcmp(argv[i], "--path") == 0 && i + 1 < argc) {
      cfg.path = argv[++i];
    } else {
      fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 64;
    }
  }

  MultiVersionDB::Destroy(cfg.path);
  ::unlink((cfg.path + ".oracle").c_str());
  std::mt19937 rng(cfg.seed);
  std::uniform_int_distribution<int> run_ms(cfg.min_ms, cfg.max_ms);

  int failures = 0;
  uint64_t total_acks = 0;
  double total_recovery_ms = 0;
  uint64_t total_replayed = 0;
  for (int cycle = 0; cycle < cfg.cycles; ++cycle) {
    const pid_t pid = ::fork();
    if (pid == 0) ChildWorkload(cfg, cycle);
    std::this_thread::sleep_for(std::chrono::milliseconds(run_ms(rng)));
    ::kill(pid, SIGKILL);
    int wstatus = 0;
    ::waitpid(pid, &wstatus, 0);
    if (!WIFSIGNALED(wstatus) || WTERMSIG(wstatus) != SIGKILL) {
      fprintf(stderr, "FAIL: child exited on its own (status %d)\n",
              wstatus);
      return 1;
    }
    std::vector<Ack> acks;
    ReadOracle(cfg.path + ".oracle", &acks);
    const auto t0 = std::chrono::steady_clock::now();
    std::unique_ptr<MultiVersionDB> db;
    Status s = MultiVersionDB::Open(cfg.path, Options(), &db);
    const double open_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (!s.ok()) {
      fprintf(stderr, "FAIL: reopen after kill: %s\n", s.ToString().c_str());
      return 1;
    }
    const int before = failures;
    Verify(db.get(), acks, cfg, &failures);
    const auto& rs = db->recovery_stats();
    printf("cycle %3d: %5zu acks, recovery %6.1f ms "
           "(%llu frames, %llu ghosts purged%s) %s\n",
           cycle, acks.size(), open_ms,
           (unsigned long long)rs.frames_replayed,
           (unsigned long long)rs.purged_uncommitted,
           rs.tail_truncated ? ", torn tail" : "",
           failures == before ? "OK" : "FAILED");
    fflush(stdout);
    total_acks = acks.size();
    total_recovery_ms += open_ms;
    total_replayed += rs.frames_replayed;
    db.reset();  // clean close: the next cycle crashes on fresh state
  }

  printf("\n%d cycles, %llu acked commits verified each cycle end, "
         "%llu frames replayed total, mean recovery %.1f ms\n",
         cfg.cycles, (unsigned long long)total_acks,
         (unsigned long long)total_replayed,
         total_recovery_ms / cfg.cycles);
  MultiVersionDB::Destroy(cfg.path);
  ::unlink((cfg.path + ".oracle").c_str());
  if (failures != 0) {
    fprintf(stderr, "%d contract violations\n", failures);
    return 1;
  }
  printf("durability contract upheld in all %d kill cycles\n", cfg.cycles);
  return 0;
}
