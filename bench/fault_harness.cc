// Sick-disk harness: run a concurrent commit workload while a randomized
// fault schedule breaks the storage stack out from under it — failed WAL
// fdatasyncs, ENOSPC/EIO/short-write on frame appends, EIO and ENOSPC on
// page writes during checkpoints — then heal the disk and check the
// degraded-mode contract against an in-process oracle:
//   1. every ACKNOWLEDGED commit is readable (right value, right ts)
//      after Resume(), and again after a clean close + reopen;
//   2. every commit whose Write() returned an error is ABSENT — rejected
//      commits never leak half-stamped state past Resume();
//   3. Resume() succeeds once the fault is cleared (every injected class
//      is transient), and reopen ALWAYS succeeds;
//   4. the tree passes full structural verification after every cycle.
//
// Unlike crash_harness (SIGKILL, fork-based), faults here are injected
// in-process through FaultPlan, so the harness can also assert the
// negative space: what the DB said failed must stay failed.
//
// Plain executable, no benchmark-library dependency:
//   fault_harness [--cycles N] [--writers N] [--attempts N] [--batch N]
//                 [--path DIR] [--seed N]
// Exit code 0 = every cycle upheld the contract.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "db/multiversion_db.h"
#include "storage/fault_device.h"
#include "tsb/tree_check.h"

namespace {

using tsb::Fault;
using tsb::FaultInjectingDevice;
using tsb::FaultKind;
using tsb::FaultOp;
using tsb::FaultPlan;
using tsb::Status;
using tsb::Timestamp;
using tsb::db::DbOptions;
using tsb::db::MultiVersionDB;
using tsb::db::WriteBatch;

struct Config {
  int cycles = 50;
  int writers = 4;
  int attempts = 24;  // commit attempts per writer per cycle
  int batch = 3;
  int checksums = 1;  // post-cycle TreeChecker also audits device CRCs
  uint32_t seed = 0xd15c;
  std::string path;
};

std::string Key(int writer, int attempt, int i) {
  char buf[40];
  snprintf(buf, sizeof(buf), "w%02d-a%04d-k%d", writer, attempt, i);
  return buf;
}

std::string Value(int writer, int attempt, int i) {
  char buf[64];
  snprintf(buf, sizeof(buf), "value-%02d-%04d-%d-", writer, attempt, i);
  std::string v = buf;
  v.append(32, 'x');
  return v;
}

/// One acknowledged commit: Write() returned OK with this timestamp.
struct Ack {
  int writer;
  int attempt;
  Timestamp ts;
};

/// The randomized fault schedules. Every one maps to a TRANSIENT status
/// class (IOError / OutOfSpace), so Resume() after Clear() must succeed.
enum class Scenario {
  kWalSyncEio = 0,       // fdatasync fails mid-workload
  kWalSyncEnospc,        // fdatasync hits a full disk
  kWalAppendEnospc,      // frame append rejected outright
  kWalAppendShortWrite,  // frame torn mid-append (truncate-back path)
  kCheckpointWriteEio,   // page write fails during a checkpoint
  kCheckpointEnospc,     // checkpoint hits a full disk
  kNoFault,              // control: the contract holds trivially
  kCount
};

const char* ScenarioName(Scenario s) {
  switch (s) {
    case Scenario::kWalSyncEio: return "wal-sync-eio";
    case Scenario::kWalSyncEnospc: return "wal-sync-enospc";
    case Scenario::kWalAppendEnospc: return "wal-append-enospc";
    case Scenario::kWalAppendShortWrite: return "wal-append-short-write";
    case Scenario::kCheckpointWriteEio: return "ckpt-write-eio";
    case Scenario::kCheckpointEnospc: return "ckpt-write-enospc";
    case Scenario::kNoFault: return "no-fault";
    default: return "?";
  }
}

struct CycleState {
  std::mutex mu;
  std::vector<Ack> acked;
  std::vector<std::pair<int, int>> rejected;  // (writer, attempt)
};

int VerifyDb(MultiVersionDB* db, const CycleState& st, const Config& cfg,
             int cycle, const char* when) {
  int failures = 0;
  for (const Ack& a : st.acked) {
    for (int i = 0; i < cfg.batch; ++i) {
      std::string value;
      Timestamp version_ts = 0;
      Status s = db->GetAsOf(Key(a.writer, a.attempt, i), a.ts, &value,
                             &version_ts);
      if (!s.ok()) {
        fprintf(stderr,
                "FAIL cycle %d (%s): acked commit lost: writer %d attempt "
                "%d key %d (%s)\n",
                cycle, when, a.writer, a.attempt, i, s.ToString().c_str());
        ++failures;
        continue;
      }
      if (value != Value(a.writer, a.attempt, i) || version_ts != a.ts) {
        fprintf(stderr,
                "FAIL cycle %d (%s): acked commit mangled: writer %d "
                "attempt %d key %d (ts %llu vs %llu)\n",
                cycle, when, a.writer, a.attempt, i,
                (unsigned long long)version_ts, (unsigned long long)a.ts);
        ++failures;
      }
    }
  }
  for (const auto& [writer, attempt] : st.rejected) {
    for (int i = 0; i < cfg.batch; ++i) {
      std::string value;
      Status s = db->Get(Key(writer, attempt, i), &value);
      if (!s.IsNotFound()) {
        fprintf(stderr,
                "FAIL cycle %d (%s): rejected commit leaked: writer %d "
                "attempt %d key %d (%s)\n",
                cycle, when, writer, attempt, i, s.ToString().c_str());
        ++failures;
      }
    }
  }
  tsb::tsb_tree::TreeChecker checker(db->primary());
  checker.set_verify_checksums(cfg.checksums != 0);
  Status s = checker.Check();
  if (!s.ok()) {
    fprintf(stderr, "FAIL cycle %d (%s): tree check: %s\n", cycle, when,
            s.ToString().c_str());
    ++failures;
  }
  return failures;
}

int RunCycle(const Config& cfg, int cycle, std::mt19937* rng,
             int* degradations) {
  const std::string dir = cfg.path + "." + std::to_string(cycle);
  MultiVersionDB::Destroy(dir);

  auto dev_plan = std::make_shared<FaultPlan>();
  auto wal_plan = std::make_shared<FaultPlan>();
  DbOptions opts;
  opts.tree.page_size = 1024;
  opts.tree.buffer_pool_frames = 1 << 14;
  opts.tree.concurrent_writers = true;
  opts.wal_fault_plan = wal_plan;
  opts.wrap_device = [dev_plan](const std::string&,
                                 std::unique_ptr<tsb::Device> dev)
      -> std::unique_ptr<tsb::Device> {
    return std::make_unique<FaultInjectingDevice>(std::move(dev), dev_plan);
  };

  std::unique_ptr<MultiVersionDB> db;
  Status s = MultiVersionDB::Open(dir, opts, &db);
  if (!s.ok()) {
    fprintf(stderr, "FAIL cycle %d: open: %s\n", cycle, s.ToString().c_str());
    return 1;
  }

  const auto scenario =
      static_cast<Scenario>((*rng)() % static_cast<uint32_t>(Scenario::kCount));
  const bool sticky = ((*rng)() & 1) != 0;
  const uint64_t nth = 1 + (*rng)() % 8;

  CycleState st;
  std::vector<std::thread> writers;
  for (int w = 0; w < cfg.writers; ++w) {
    writers.emplace_back([&, w] {
      for (int attempt = 0; attempt < cfg.attempts; ++attempt) {
        WriteBatch batch;
        for (int i = 0; i < cfg.batch; ++i) {
          batch.Put(Key(w, attempt, i), Value(w, attempt, i));
        }
        Timestamp cts = 0;
        Status ws = db->Write(batch, &cts);
        std::lock_guard<std::mutex> lock(st.mu);
        if (ws.ok()) {
          st.acked.push_back({w, attempt, cts});
        } else {
          st.rejected.emplace_back(w, attempt);
        }
      }
    });
  }

  // Arm the WAL-path faults while the workload is in flight; the nth-op
  // countdown lands the trip at a random point in the commit stream.
  switch (scenario) {
    case Scenario::kWalSyncEio:
      wal_plan->FailNth(FaultOp::kSync, nth, FaultKind::kEIO, sticky);
      break;
    case Scenario::kWalSyncEnospc:
      wal_plan->FailNth(FaultOp::kSync, nth, FaultKind::kENOSPC, sticky);
      break;
    case Scenario::kWalAppendEnospc:
      wal_plan->FailNth(FaultOp::kAppend, nth, FaultKind::kENOSPC, sticky);
      break;
    case Scenario::kWalAppendShortWrite: {
      Fault f;
      f.op = FaultOp::kAppend;
      f.kind = FaultKind::kShortWrite;
      f.nth = nth;
      f.sticky = sticky;
      f.short_bytes = 1 + (*rng)() % 24;
      wal_plan->Arm(f);
      break;
    }
    default:
      break;  // device faults arm after the writers quiesce
  }
  for (auto& t : writers) t.join();

  // Checkpoint-path faults: break the devices under a forced checkpoint.
  if (scenario == Scenario::kCheckpointWriteEio ||
      scenario == Scenario::kCheckpointEnospc) {
    dev_plan->FailNth(FaultOp::kWrite, nth,
                      scenario == Scenario::kCheckpointWriteEio
                          ? FaultKind::kEIO
                          : FaultKind::kENOSPC,
                      sticky);
    Status cs = db->Checkpoint();
    if (cs.ok() && dev_plan->fired(FaultOp::kWrite) > 0) {
      fprintf(stderr, "FAIL cycle %d: checkpoint swallowed a device fault\n",
              cycle);
      return 1;
    }
  }

  int failures = 0;
  const bool degraded = db->degraded();
  if (degraded) ++*degradations;

  // Heal the disk. Every scheduled fault is transient, so Resume() must
  // bring the DB back — and must purge exactly the rejected commits.
  dev_plan->Clear();
  wal_plan->Clear();
  if (degraded) {
    Status rs = db->Resume();
    if (!rs.ok()) {
      fprintf(stderr, "FAIL cycle %d (%s): resume: %s\n", cycle,
              ScenarioName(scenario), rs.ToString().c_str());
      return failures + 1;  // cannot meaningfully verify a degraded DB
    }
  }
  if (db->degraded()) {
    fprintf(stderr, "FAIL cycle %d: still degraded after Resume()\n", cycle);
    return failures + 1;
  }

  // Post-resume service check: the healed DB accepts writes again.
  for (int i = 0; i < 4; ++i) {
    Timestamp cts = 0;
    WriteBatch batch;
    for (int k = 0; k < cfg.batch; ++k) {
      batch.Put(Key(90 + i, 0, k), Value(90 + i, 0, k));
    }
    Status ws = db->Write(batch, &cts);
    if (!ws.ok()) {
      fprintf(stderr, "FAIL cycle %d: post-resume write: %s\n", cycle,
              ws.ToString().c_str());
      ++failures;
      break;
    }
    std::lock_guard<std::mutex> lock(st.mu);
    st.acked.push_back({90 + i, 0, cts});
  }

  failures += VerifyDb(db.get(), st, cfg, cycle, "after-resume");

  // Clean close + reopen: reopen must ALWAYS succeed, and the oracle must
  // hold against the recovered state too.
  db.reset();
  s = MultiVersionDB::Open(dir, opts, &db);
  if (!s.ok()) {
    fprintf(stderr, "FAIL cycle %d (%s): reopen: %s\n", cycle,
            ScenarioName(scenario), s.ToString().c_str());
    return failures + 1;
  }
  failures += VerifyDb(db.get(), st, cfg, cycle, "after-reopen");

  size_t acked = st.acked.size(), rejected = st.rejected.size();
  db.reset();
  MultiVersionDB::Destroy(dir);
  printf("cycle %3d %-22s nth=%llu sticky=%d acked=%zu rejected=%zu "
         "degraded=%d%s\n",
         cycle, ScenarioName(scenario), (unsigned long long)nth,
         sticky ? 1 : 0, acked, rejected, degraded ? 1 : 0,
         failures == 0 ? "" : "  ** FAILURES **");
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  cfg.path = "/tmp/tsb_fault_harness." + std::to_string(::getpid());
  for (int i = 1; i < argc; ++i) {
    auto arg = [&](const char* name, int* out) {
      if (strcmp(argv[i], name) == 0 && i + 1 < argc) {
        *out = atoi(argv[++i]);
        return true;
      }
      return false;
    };
    int seed = 0;
    if (arg("--cycles", &cfg.cycles) || arg("--writers", &cfg.writers) ||
        arg("--attempts", &cfg.attempts) || arg("--batch", &cfg.batch) ||
        arg("--checksums", &cfg.checksums)) {
      continue;
    }
    if (arg("--seed", &seed)) {
      cfg.seed = static_cast<uint32_t>(seed);
      continue;
    }
    if (strcmp(argv[i], "--path") == 0 && i + 1 < argc) {
      cfg.path = argv[++i];
      continue;
    }
    fprintf(stderr,
            "usage: %s [--cycles N] [--writers N] [--attempts N] "
            "[--batch N] [--path DIR] [--seed N]\n",
            argv[0]);
    return 2;
  }

  std::mt19937 rng(cfg.seed);
  int total_failures = 0;
  int degradations = 0;
  for (int cycle = 0; cycle < cfg.cycles; ++cycle) {
    total_failures += RunCycle(cfg, cycle, &rng, &degradations);
  }
  printf("fault_harness: %d cycles, %d degradations, %d failures\n",
         cfg.cycles, degradations, total_failures);
  return total_failures == 0 ? 0 : 1;
}
