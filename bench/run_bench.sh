#!/usr/bin/env bash
# Builds the benchmarks in Release mode and runs the query + concurrency
# benches as a smoke test. bench_query writes BENCH_query.json (historical
# as-of ops/sec and allocations per lookup for the zero-copy view path vs
# the legacy owning-decode baseline, cold mmap reads, v3 node bytes, and
# the scan phase: forward/reverse snapshot scans — warm, old-snapshot and
# cold — with entries/sec and allocs per emitted entry), which is copied
# to the repo root for CI artifact upload. bench_concurrency writes
# BENCH_concurrency.json (N-writer scaling, serial vs optimistic latch
# coupling, with conflict/restart/side-step counters). bench_durability
# writes BENCH_durability.json (WAL sync-mode ladder, fsync'd group-commit
# scaling at 1/2/4/8 writers, crash-recovery replay MB/sec, and a
# silent-corruption scrub section the recap below FAILS on if any
# injected fault went undetected).
# bench_sharded writes BENCH_sharded.json (ShardedDB write scaling at
# 1/2/4/8 shards, disjoint single-shard batches vs uniform multi-shard
# batches through the coordinator protocol).
#
# Usage: bench/run_bench.sh [build-dir]   (default: <repo>/build-release)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-release}"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j --target bench_query bench_concurrency \
    bench_durability bench_sharded || {
  echo "error: bench build failed (if the targets are missing entirely," >&2
  echo "check that libbenchmark-dev is installed)" >&2
  exit 1
}

# Full google-benchmark timings are opt-in (slow); the smoke run executes
# each binary's deterministic table + JSON section only.
FILTER="${BENCH_FILTER:-NONE}"

(cd "$BUILD" && BENCH_QUERY_JSON="$ROOT/BENCH_query.json" \
    ./bench_query --benchmark_filter="$FILTER")
(cd "$BUILD" && BENCH_CONCURRENCY_JSON="$ROOT/BENCH_concurrency.json" \
    ./bench_concurrency --benchmark_filter="$FILTER")
(cd "$BUILD" && BENCH_DURABILITY_JSON="$ROOT/BENCH_durability.json" \
    ./bench_durability --benchmark_filter="$FILTER")
(cd "$BUILD" && BENCH_SHARDED_JSON="$ROOT/BENCH_sharded.json" \
    ./bench_sharded --benchmark_filter="$FILTER")

echo "wrote $ROOT/BENCH_query.json"
echo "wrote $ROOT/BENCH_concurrency.json"
echo "wrote $ROOT/BENCH_durability.json"
echo "wrote $ROOT/BENCH_sharded.json"

# One-line scan recap (the numbers CI gates on), when python3 is around.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$ROOT/BENCH_query.json" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1])).get("scan")
if s:
    print("scan recap: forward %.0f entries/s (%.3f allocs/entry), "
          "reverse %.2fx forward; old-snapshot reverse %.2fx forward"
          % (s["forward_current"]["entries_per_sec"],
             s["forward_current"]["allocs_per_entry"],
             s["reverse_over_forward_current"],
             s["reverse_over_forward_old"]))
EOF
  python3 - "$ROOT/BENCH_concurrency.json" <<'EOF'
import json, sys
c = json.load(open(sys.argv[1]))
print("writer recap: %d cores, 4-writer OLC %.2fx of 1-writer (disjoint), "
      "1-writer OLC %.2fx of serial"
      % (c["hardware_concurrency"], c["speedup_4w_disjoint_vs_1w"],
         c["olc_1w_over_serial_1w"]))
EOF
  python3 - "$ROOT/BENCH_durability.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
print("durability recap: group commit 8w %.2fx of 1w (fdatasync %.0f us), "
      "recovery %.0f MB/s"
      % (d["group_8w_over_1w"], d["fdatasync_us"],
         d["recovery"]["mb_per_sec"]))
# Scrub recap — and a loud failure if any silently corrupted cycle went
# undetected or a clean control pass produced a false positive.
sc = d.get("scrub")
if sc:
    if sc["detected_cycles"] != sc["injected_cycles"]:
        sys.exit("scrub recap: UNDETECTED SILENT CORRUPTION: %d of %d "
                 "injected cycles detected" % (sc["detected_cycles"],
                                               sc["injected_cycles"]))
    if sc["false_positives"] != 0:
        sys.exit("scrub recap: %d FALSE POSITIVES on clean control passes"
                 % sc["false_positives"])
    print("scrub recap: %d/%d silent-fault cycles detected, "
          "0 false positives, %d pages repaired, scan %.0f MB/s"
          % (sc["detected_cycles"], sc["injected_cycles"],
             sc["pages_repaired"], sc["mb_per_sec"]))
EOF
  python3 - "$ROOT/BENCH_sharded.json" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))
print("sharding recap: %d cores, 4-shard %.2fx of 1-shard (disjoint), "
      "uniform/disjoint at 4 shards %.2fx"
      % (s["hardware_concurrency"], s["speedup_4s_disjoint_vs_1s"],
         s["uniform_over_disjoint_4s"]))
EOF
fi
