#!/usr/bin/env bash
# Builds the benchmarks in Release mode and runs the query + concurrency
# benches as a smoke test. bench_query writes BENCH_query.json (historical
# as-of ops/sec and allocations per lookup for the zero-copy view path vs
# the legacy owning-decode baseline), which is copied to the repo root for
# CI artifact upload.
#
# Usage: bench/run_bench.sh [build-dir]   (default: <repo>/build-release)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-release}"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j --target bench_query bench_concurrency || {
  echo "error: bench build failed (if the targets are missing entirely," >&2
  echo "check that libbenchmark-dev is installed)" >&2
  exit 1
}

# Full google-benchmark timings are opt-in (slow); the smoke run executes
# each binary's deterministic table + JSON section only.
FILTER="${BENCH_FILTER:-NONE}"

(cd "$BUILD" && BENCH_QUERY_JSON="$ROOT/BENCH_query.json" \
    ./bench_query --benchmark_filter="$FILTER")
(cd "$BUILD" && ./bench_concurrency --benchmark_filter="$FILTER")

echo "wrote $ROOT/BENCH_query.json"
