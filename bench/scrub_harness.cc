// Silent-corruption harness: inject faults the disk LIES about — bit
// flips, misdirected writes, lost writes, all acknowledged as success —
// and check the detection contract against an in-process oracle:
//
//   1. DETECTION: if any silent fault actually fired, Scrub() plus a full
//      read sweep must surface at least one corruption (page CRC for bit
//      flips, page-id identity for misdirected writes, the stamped
//      trailer-LSN sweep for lost writes). Zero undetected corruptions.
//   2. NO FALSE POSITIVES: on control cycles (no fault armed) Scrub()
//      must report zero corruptions and quarantine nothing.
//   3. SALVAGE: tsb_doctor's engine (SalvageDatabase) run on the damaged
//      directory must recover every acknowledged record — each record
//      also lives in a WAL commit frame the faults never touched, so a
//      lossy salvage means salvage dropped checksummed bytes.
//
// Faults are injected on the base (magnetic) device's page writes, which
// a forced Checkpoint() then flushes through. No checkpoint runs between
// injection and detection — a later flush rewriting the page would heal
// the damage and void the oracle.
//
// Plain executable, no benchmark-library dependency:
//   scrub_harness [--cycles N] [--records N] [--path DIR] [--seed N]
// Exit code 0 = every cycle upheld the contract.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "db/multiversion_db.h"
#include "db/salvage.h"
#include "storage/fault_device.h"

namespace {

using tsb::Fault;
using tsb::FaultInjectingDevice;
using tsb::FaultKind;
using tsb::FaultOp;
using tsb::FaultPlan;
using tsb::Status;
using tsb::Timestamp;
using tsb::db::DbOptions;
using tsb::db::MultiVersionDB;
using tsb::db::ScrubStats;
using tsb::db::WriteBatch;

struct Config {
  int cycles = 50;
  int records = 200;
  uint32_t seed = 0x5cab;
  std::string path;
};

enum class Scenario {
  kNoFault = 0,  // control: zero detections allowed
  kBitFlip,
  kMisdirectedWrite,
  kLostWrite,
  kCount
};

const char* ScenarioName(Scenario s) {
  switch (s) {
    case Scenario::kNoFault: return "no-fault";
    case Scenario::kBitFlip: return "bit-flip";
    case Scenario::kMisdirectedWrite: return "misdirected-write";
    case Scenario::kLostWrite: return "lost-write";
    default: return "?";
  }
}

std::string Key(int i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "rec-%06d", i);
  return buf;
}

std::string Value(int i, int gen) {
  char buf[48];
  snprintf(buf, sizeof(buf), "value-%06d-g%d-", i, gen);
  std::string v = buf;
  v.append(24, 'v');
  return v;
}

struct CycleResult {
  int failures = 0;
  uint64_t fired = 0;
  uint64_t detections = 0;
};

CycleResult RunCycle(const Config& cfg, int cycle, std::mt19937* rng) {
  CycleResult res;
  const std::string dir = cfg.path + "." + std::to_string(cycle);
  const std::string salvage_dir = dir + ".salvaged";
  MultiVersionDB::Destroy(dir);
  MultiVersionDB::Destroy(salvage_dir);

  auto plan = std::make_shared<FaultPlan>();
  DbOptions opts;
  opts.tree.page_size = 1024;
  // A tiny pool forces the read sweep through device misses, so the
  // inline verify-on-read path (not just the scrubber) gets exercised.
  opts.tree.buffer_pool_frames = 16;
  opts.paranoid_checks = true;
  opts.wrap_device = [plan](const std::string& role,
                            std::unique_ptr<tsb::Device> dev)
      -> std::unique_ptr<tsb::Device> {
    if (role != "magnetic") return dev;  // target base pages only
    return std::make_unique<FaultInjectingDevice>(std::move(dev), plan);
  };

  std::unique_ptr<MultiVersionDB> db;
  Status s = MultiVersionDB::Open(dir, opts, &db);
  if (!s.ok()) {
    fprintf(stderr, "FAIL cycle %d: open: %s\n", cycle, s.ToString().c_str());
    res.failures = 1;
    return res;
  }

  // Load phase (faults not armed yet): every record acknowledged here is
  // the oracle's expectation, for both detection and salvage.
  std::map<std::string, std::string> expected;
  for (int i = 0; i < cfg.records; ++i) {
    WriteBatch batch;
    const int per_batch = 4;
    for (int k = 0; k < per_batch && i < cfg.records; ++k, ++i) {
      batch.Put(Key(i), Value(i, 0));
      expected[Key(i)] = Value(i, 0);
    }
    --i;  // outer loop increments once more
    Timestamp ts = 0;
    Status ws = db->Write(batch, &ts);
    if (!ws.ok()) {
      fprintf(stderr, "FAIL cycle %d: load write: %s\n", cycle,
              ws.ToString().c_str());
      res.failures++;
      return res;
    }
  }
  // First checkpoint flushes the tree through the (healthy) device so
  // later faults hit page REWRITES too, not only first-time writes.
  Status cs = db->Checkpoint();
  if (!cs.ok()) {
    fprintf(stderr, "FAIL cycle %d: pre-fault checkpoint: %s\n", cycle,
            cs.ToString().c_str());
    res.failures++;
    return res;
  }
  // Overwrite a slice of the keys so the next checkpoint has real dirty
  // pages to flush through the armed faults.
  for (int i = 0; i < cfg.records; i += 3) {
    Status ws = db->Put(Key(i), Value(i, 1));
    if (!ws.ok()) {
      fprintf(stderr, "FAIL cycle %d: overwrite: %s\n", cycle,
              ws.ToString().c_str());
      res.failures++;
      return res;
    }
    expected[Key(i)] = Value(i, 1);
  }

  const auto scenario =
      static_cast<Scenario>((*rng)() % static_cast<uint32_t>(Scenario::kCount));
  const uint64_t nth = 1 + (*rng)() % 12;
  if (scenario != Scenario::kNoFault) {
    FaultKind kind = FaultKind::kBitFlip;
    if (scenario == Scenario::kMisdirectedWrite) {
      kind = FaultKind::kMisdirectedWrite;
    } else if (scenario == Scenario::kLostWrite) {
      kind = FaultKind::kLostWrite;
    }
    plan->FailNth(FaultOp::kWrite, nth, kind, /*sticky=*/false);
  }

  // Flush the dirty pages through the armed fault. The checkpoint itself
  // must report success — the whole point of a silent fault is that the
  // storage stack cannot see it at write time.
  cs = db->Checkpoint();
  if (!cs.ok()) {
    fprintf(stderr, "FAIL cycle %d (%s): checkpoint: %s\n", cycle,
            ScenarioName(scenario), cs.ToString().c_str());
    res.failures++;
    return res;
  }
  res.fired = plan->fired(FaultOp::kWrite);
  plan->Clear();  // stop injecting; from here we only detect

  // ---- detection phase (NO further checkpoints: a rewrite would heal
  // the damaged slot and break the oracle) ----

  ScrubStats pass;
  Status scrub_status = db->Scrub(&pass);
  if (!scrub_status.ok()) {
    fprintf(stderr, "FAIL cycle %d (%s): scrub errored: %s\n", cycle,
            ScenarioName(scenario), scrub_status.ToString().c_str());
    res.failures++;
    return res;
  }

  // Full read sweep. With corruption present some reads may legitimately
  // fail (quarantined page) — that IS detection. What must never happen
  // is a read returning the WRONG bytes with an OK status.
  uint64_t read_errors = 0;
  for (const auto& [key, value] : expected) {
    std::string got;
    Status gs = db->Get(key, &got);
    if (gs.ok()) {
      if (got != value) {
        fprintf(stderr,
                "FAIL cycle %d (%s): UNDETECTED corruption: key %s read OK "
                "with wrong bytes\n",
                cycle, ScenarioName(scenario), key.c_str());
        res.failures++;
      }
    } else {
      read_errors++;
      if (scenario == Scenario::kNoFault) {
        fprintf(stderr, "FAIL cycle %d (no-fault): read %s: %s\n", cycle,
                key.c_str(), gs.ToString().c_str());
        res.failures++;
      }
    }
  }

  res.detections = pass.corruptions_detected + db->quarantined_count() +
                   db->error_stats().errors_reported + read_errors;

  if (scenario == Scenario::kNoFault || res.fired == 0) {
    // Control contract: pristine device => scrub is silent.
    if (pass.corruptions_detected != 0 || db->quarantined_count() != 0) {
      fprintf(stderr,
              "FAIL cycle %d (%s): FALSE POSITIVE: %llu corruptions, %llu "
              "quarantined on a pristine device\n",
              cycle, ScenarioName(scenario),
              (unsigned long long)pass.corruptions_detected,
              (unsigned long long)db->quarantined_count());
      res.failures++;
    }
  } else if (res.detections == 0) {
    fprintf(stderr,
            "FAIL cycle %d (%s): UNDETECTED: fault fired %llu time(s), "
            "zero detections\n",
            cycle, ScenarioName(scenario), (unsigned long long)res.fired);
    res.failures++;
  }

  // ---- salvage phase: close the damaged DB and doctor it. Every
  // acknowledged record also lives in a checksummed WAL commit frame the
  // page faults never touched, so 100% must come back. ----
  db.reset();
  tsb::db::SalvageOptions sopts;
  tsb::db::SalvageReport report;
  Status vs = tsb::db::SalvageDatabase(dir, salvage_dir, sopts, &report);
  if (!vs.ok()) {
    fprintf(stderr, "FAIL cycle %d (%s): salvage: %s\n", cycle,
            ScenarioName(scenario), vs.ToString().c_str());
    res.failures++;
    return res;
  }
  std::unique_ptr<MultiVersionDB> doctored;
  DbOptions plain;
  plain.tree.page_size = 1024;
  s = MultiVersionDB::Open(salvage_dir, plain, &doctored);
  if (!s.ok()) {
    fprintf(stderr, "FAIL cycle %d (%s): open salvaged: %s\n", cycle,
            ScenarioName(scenario), s.ToString().c_str());
    res.failures++;
    return res;
  }
  for (const auto& [key, value] : expected) {
    std::string got;
    Status gs = doctored->Get(key, &got);
    if (!gs.ok() || got != value) {
      fprintf(stderr,
              "FAIL cycle %d (%s): salvage lost record %s (%s)\n", cycle,
              ScenarioName(scenario), key.c_str(), gs.ToString().c_str());
      res.failures++;
    }
  }
  doctored.reset();

  printf("cycle %3d %-18s nth=%-2llu fired=%llu scanned=%llu detections=%llu "
         "read_errors=%llu salvaged=%llu%s\n",
         cycle, ScenarioName(scenario), (unsigned long long)nth,
         (unsigned long long)res.fired,
         (unsigned long long)pass.pages_scanned,
         (unsigned long long)res.detections, (unsigned long long)read_errors,
         (unsigned long long)report.records_recovered,
         res.failures == 0 ? "" : "  ** FAILURES **");

  MultiVersionDB::Destroy(dir);
  MultiVersionDB::Destroy(salvage_dir);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  cfg.path = "/tmp/tsb_scrub_harness." + std::to_string(::getpid());
  for (int i = 1; i < argc; ++i) {
    auto arg = [&](const char* name, int* out) {
      if (strcmp(argv[i], name) == 0 && i + 1 < argc) {
        *out = atoi(argv[++i]);
        return true;
      }
      return false;
    };
    int seed = 0;
    if (arg("--cycles", &cfg.cycles) || arg("--records", &cfg.records)) {
      continue;
    }
    if (arg("--seed", &seed)) {
      cfg.seed = static_cast<uint32_t>(seed);
      continue;
    }
    if (strcmp(argv[i], "--path") == 0 && i + 1 < argc) {
      cfg.path = argv[++i];
      continue;
    }
    fprintf(stderr,
            "usage: %s [--cycles N] [--records N] [--path DIR] [--seed N]\n",
            argv[0]);
    return 2;
  }

  std::mt19937 rng(cfg.seed);
  int total_failures = 0;
  uint64_t faulty_cycles = 0, detected_cycles = 0;
  for (int cycle = 0; cycle < cfg.cycles; ++cycle) {
    CycleResult r = RunCycle(cfg, cycle, &rng);
    total_failures += r.failures;
    if (r.fired > 0) {
      faulty_cycles++;
      if (r.detections > 0) detected_cycles++;
    }
  }
  printf("scrub_harness: %d cycles, %llu faulty, %llu detected, "
         "%d failures\n",
         cfg.cycles, (unsigned long long)faulty_cycles,
         (unsigned long long)detected_cycles, total_failures);
  return total_failures == 0 ? 0 : 1;
}
