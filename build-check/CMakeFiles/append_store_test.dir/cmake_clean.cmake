file(REMOVE_RECURSE
  "CMakeFiles/append_store_test.dir/tests/append_store_test.cc.o"
  "CMakeFiles/append_store_test.dir/tests/append_store_test.cc.o.d"
  "append_store_test"
  "append_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/append_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
