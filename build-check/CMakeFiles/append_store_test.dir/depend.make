# Empty dependencies file for append_store_test.
# This may be replaced when dependencies are built.
