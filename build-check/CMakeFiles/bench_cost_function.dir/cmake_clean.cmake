file(REMOVE_RECURSE
  "CMakeFiles/bench_cost_function.dir/bench/bench_cost_function.cc.o"
  "CMakeFiles/bench_cost_function.dir/bench/bench_cost_function.cc.o.d"
  "bench_cost_function"
  "bench_cost_function.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cost_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
