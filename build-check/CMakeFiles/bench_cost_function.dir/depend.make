# Empty dependencies file for bench_cost_function.
# This may be replaced when dependencies are built.
