file(REMOVE_RECURSE
  "CMakeFiles/bench_device_model.dir/bench/bench_device_model.cc.o"
  "CMakeFiles/bench_device_model.dir/bench/bench_device_model.cc.o.d"
  "bench_device_model"
  "bench_device_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_device_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
