# Empty compiler generated dependencies file for bench_device_model.
# This may be replaced when dependencies are built.
