file(REMOVE_RECURSE
  "CMakeFiles/bench_redundancy.dir/bench/bench_redundancy.cc.o"
  "CMakeFiles/bench_redundancy.dir/bench/bench_redundancy.cc.o.d"
  "bench_redundancy"
  "bench_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
