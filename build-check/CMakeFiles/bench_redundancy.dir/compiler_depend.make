# Empty compiler generated dependencies file for bench_redundancy.
# This may be replaced when dependencies are built.
