file(REMOVE_RECURSE
  "CMakeFiles/bench_secondary.dir/bench/bench_secondary.cc.o"
  "CMakeFiles/bench_secondary.dir/bench/bench_secondary.cc.o.d"
  "bench_secondary"
  "bench_secondary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_secondary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
