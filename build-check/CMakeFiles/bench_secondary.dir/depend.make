# Empty dependencies file for bench_secondary.
# This may be replaced when dependencies are built.
