file(REMOVE_RECURSE
  "CMakeFiles/bench_space_policy.dir/bench/bench_space_policy.cc.o"
  "CMakeFiles/bench_space_policy.dir/bench/bench_space_policy.cc.o.d"
  "bench_space_policy"
  "bench_space_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_space_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
