# Empty compiler generated dependencies file for bench_space_policy.
# This may be replaced when dependencies are built.
