file(REMOVE_RECURSE
  "CMakeFiles/bench_worm_utilization.dir/bench/bench_worm_utilization.cc.o"
  "CMakeFiles/bench_worm_utilization.dir/bench/bench_worm_utilization.cc.o.d"
  "bench_worm_utilization"
  "bench_worm_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_worm_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
