# Empty dependencies file for bench_worm_utilization.
# This may be replaced when dependencies are built.
