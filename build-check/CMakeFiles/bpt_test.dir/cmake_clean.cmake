file(REMOVE_RECURSE
  "CMakeFiles/bpt_test.dir/tests/bpt_test.cc.o"
  "CMakeFiles/bpt_test.dir/tests/bpt_test.cc.o.d"
  "bpt_test"
  "bpt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
