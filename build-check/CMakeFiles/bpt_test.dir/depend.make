# Empty dependencies file for bpt_test.
# This may be replaced when dependencies are built.
