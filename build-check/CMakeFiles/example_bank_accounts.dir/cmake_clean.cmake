file(REMOVE_RECURSE
  "CMakeFiles/example_bank_accounts.dir/examples/bank_accounts.cpp.o"
  "CMakeFiles/example_bank_accounts.dir/examples/bank_accounts.cpp.o.d"
  "example_bank_accounts"
  "example_bank_accounts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_bank_accounts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
