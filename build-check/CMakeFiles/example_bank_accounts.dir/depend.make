# Empty dependencies file for example_bank_accounts.
# This may be replaced when dependencies are built.
