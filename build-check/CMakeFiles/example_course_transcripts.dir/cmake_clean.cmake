file(REMOVE_RECURSE
  "CMakeFiles/example_course_transcripts.dir/examples/course_transcripts.cpp.o"
  "CMakeFiles/example_course_transcripts.dir/examples/course_transcripts.cpp.o.d"
  "example_course_transcripts"
  "example_course_transcripts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_course_transcripts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
