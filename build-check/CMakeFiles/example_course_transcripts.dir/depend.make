# Empty dependencies file for example_course_transcripts.
# This may be replaced when dependencies are built.
