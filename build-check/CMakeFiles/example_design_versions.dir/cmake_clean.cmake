file(REMOVE_RECURSE
  "CMakeFiles/example_design_versions.dir/examples/design_versions.cpp.o"
  "CMakeFiles/example_design_versions.dir/examples/design_versions.cpp.o.d"
  "example_design_versions"
  "example_design_versions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_design_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
