# Empty dependencies file for example_design_versions.
# This may be replaced when dependencies are built.
