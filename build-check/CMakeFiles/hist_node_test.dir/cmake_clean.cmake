file(REMOVE_RECURSE
  "CMakeFiles/hist_node_test.dir/tests/hist_node_test.cc.o"
  "CMakeFiles/hist_node_test.dir/tests/hist_node_test.cc.o.d"
  "hist_node_test"
  "hist_node_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hist_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
