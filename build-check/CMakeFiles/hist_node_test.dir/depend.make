# Empty dependencies file for hist_node_test.
# This may be replaced when dependencies are built.
