file(REMOVE_RECURSE
  "CMakeFiles/tsb_basic_test.dir/tests/tsb_basic_test.cc.o"
  "CMakeFiles/tsb_basic_test.dir/tests/tsb_basic_test.cc.o.d"
  "tsb_basic_test"
  "tsb_basic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsb_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
