# Empty dependencies file for tsb_basic_test.
# This may be replaced when dependencies are built.
