file(REMOVE_RECURSE
  "CMakeFiles/tsb_check_test.dir/tests/tsb_check_test.cc.o"
  "CMakeFiles/tsb_check_test.dir/tests/tsb_check_test.cc.o.d"
  "tsb_check_test"
  "tsb_check_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsb_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
