# Empty compiler generated dependencies file for tsb_check_test.
# This may be replaced when dependencies are built.
