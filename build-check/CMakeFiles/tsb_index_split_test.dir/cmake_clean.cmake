file(REMOVE_RECURSE
  "CMakeFiles/tsb_index_split_test.dir/tests/tsb_index_split_test.cc.o"
  "CMakeFiles/tsb_index_split_test.dir/tests/tsb_index_split_test.cc.o.d"
  "tsb_index_split_test"
  "tsb_index_split_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsb_index_split_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
