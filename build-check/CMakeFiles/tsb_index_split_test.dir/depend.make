# Empty dependencies file for tsb_index_split_test.
# This may be replaced when dependencies are built.
