file(REMOVE_RECURSE
  "CMakeFiles/tsb_property_test.dir/tests/tsb_property_test.cc.o"
  "CMakeFiles/tsb_property_test.dir/tests/tsb_property_test.cc.o.d"
  "tsb_property_test"
  "tsb_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsb_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
