# Empty compiler generated dependencies file for tsb_property_test.
# This may be replaced when dependencies are built.
