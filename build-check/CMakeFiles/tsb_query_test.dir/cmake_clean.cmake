file(REMOVE_RECURSE
  "CMakeFiles/tsb_query_test.dir/tests/tsb_query_test.cc.o"
  "CMakeFiles/tsb_query_test.dir/tests/tsb_query_test.cc.o.d"
  "tsb_query_test"
  "tsb_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsb_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
