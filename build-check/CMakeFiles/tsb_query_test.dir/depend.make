# Empty dependencies file for tsb_query_test.
# This may be replaced when dependencies are built.
