file(REMOVE_RECURSE
  "CMakeFiles/tsb_range_test.dir/tests/tsb_range_test.cc.o"
  "CMakeFiles/tsb_range_test.dir/tests/tsb_range_test.cc.o.d"
  "tsb_range_test"
  "tsb_range_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsb_range_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
