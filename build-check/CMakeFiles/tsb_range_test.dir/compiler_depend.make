# Empty compiler generated dependencies file for tsb_range_test.
# This may be replaced when dependencies are built.
