file(REMOVE_RECURSE
  "CMakeFiles/tsb_split_test.dir/tests/tsb_split_test.cc.o"
  "CMakeFiles/tsb_split_test.dir/tests/tsb_split_test.cc.o.d"
  "tsb_split_test"
  "tsb_split_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsb_split_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
