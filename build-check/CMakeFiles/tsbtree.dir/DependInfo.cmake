
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bpt/bplus_tree.cc" "CMakeFiles/tsbtree.dir/src/bpt/bplus_tree.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/bpt/bplus_tree.cc.o.d"
  "/root/repo/src/common/arena.cc" "CMakeFiles/tsbtree.dir/src/common/arena.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/common/arena.cc.o.d"
  "/root/repo/src/common/clock.cc" "CMakeFiles/tsbtree.dir/src/common/clock.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/common/clock.cc.o.d"
  "/root/repo/src/common/coding.cc" "CMakeFiles/tsbtree.dir/src/common/coding.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/common/coding.cc.o.d"
  "/root/repo/src/common/crc32c.cc" "CMakeFiles/tsbtree.dir/src/common/crc32c.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/common/crc32c.cc.o.d"
  "/root/repo/src/common/logger.cc" "CMakeFiles/tsbtree.dir/src/common/logger.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/common/logger.cc.o.d"
  "/root/repo/src/common/slice.cc" "CMakeFiles/tsbtree.dir/src/common/slice.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/common/slice.cc.o.d"
  "/root/repo/src/common/status.cc" "CMakeFiles/tsbtree.dir/src/common/status.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/common/status.cc.o.d"
  "/root/repo/src/db/multiversion_db.cc" "CMakeFiles/tsbtree.dir/src/db/multiversion_db.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/db/multiversion_db.cc.o.d"
  "/root/repo/src/db/secondary_index.cc" "CMakeFiles/tsbtree.dir/src/db/secondary_index.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/db/secondary_index.cc.o.d"
  "/root/repo/src/storage/append_store.cc" "CMakeFiles/tsbtree.dir/src/storage/append_store.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/storage/append_store.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "CMakeFiles/tsbtree.dir/src/storage/buffer_pool.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/device.cc" "CMakeFiles/tsbtree.dir/src/storage/device.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/storage/device.cc.o.d"
  "/root/repo/src/storage/file_device.cc" "CMakeFiles/tsbtree.dir/src/storage/file_device.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/storage/file_device.cc.o.d"
  "/root/repo/src/storage/io_stats.cc" "CMakeFiles/tsbtree.dir/src/storage/io_stats.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/storage/io_stats.cc.o.d"
  "/root/repo/src/storage/mem_device.cc" "CMakeFiles/tsbtree.dir/src/storage/mem_device.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/storage/mem_device.cc.o.d"
  "/root/repo/src/storage/page.cc" "CMakeFiles/tsbtree.dir/src/storage/page.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/storage/page.cc.o.d"
  "/root/repo/src/storage/pager.cc" "CMakeFiles/tsbtree.dir/src/storage/pager.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/storage/pager.cc.o.d"
  "/root/repo/src/storage/slotted.cc" "CMakeFiles/tsbtree.dir/src/storage/slotted.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/storage/slotted.cc.o.d"
  "/root/repo/src/storage/worm_device.cc" "CMakeFiles/tsbtree.dir/src/storage/worm_device.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/storage/worm_device.cc.o.d"
  "/root/repo/src/tsb/cursor.cc" "CMakeFiles/tsbtree.dir/src/tsb/cursor.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/tsb/cursor.cc.o.d"
  "/root/repo/src/tsb/data_page.cc" "CMakeFiles/tsbtree.dir/src/tsb/data_page.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/tsb/data_page.cc.o.d"
  "/root/repo/src/tsb/hist_node.cc" "CMakeFiles/tsbtree.dir/src/tsb/hist_node.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/tsb/hist_node.cc.o.d"
  "/root/repo/src/tsb/index_page.cc" "CMakeFiles/tsbtree.dir/src/tsb/index_page.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/tsb/index_page.cc.o.d"
  "/root/repo/src/tsb/node_ref.cc" "CMakeFiles/tsbtree.dir/src/tsb/node_ref.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/tsb/node_ref.cc.o.d"
  "/root/repo/src/tsb/split_policy.cc" "CMakeFiles/tsbtree.dir/src/tsb/split_policy.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/tsb/split_policy.cc.o.d"
  "/root/repo/src/tsb/tree_check.cc" "CMakeFiles/tsbtree.dir/src/tsb/tree_check.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/tsb/tree_check.cc.o.d"
  "/root/repo/src/tsb/tsb_tree.cc" "CMakeFiles/tsbtree.dir/src/tsb/tsb_tree.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/tsb/tsb_tree.cc.o.d"
  "/root/repo/src/txn/txn_manager.cc" "CMakeFiles/tsbtree.dir/src/txn/txn_manager.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/txn/txn_manager.cc.o.d"
  "/root/repo/src/util/workload.cc" "CMakeFiles/tsbtree.dir/src/util/workload.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/util/workload.cc.o.d"
  "/root/repo/src/wobt/wobt_node.cc" "CMakeFiles/tsbtree.dir/src/wobt/wobt_node.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/wobt/wobt_node.cc.o.d"
  "/root/repo/src/wobt/wobt_tree.cc" "CMakeFiles/tsbtree.dir/src/wobt/wobt_tree.cc.o" "gcc" "CMakeFiles/tsbtree.dir/src/wobt/wobt_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
