file(REMOVE_RECURSE
  "libtsbtree.a"
)
