# Empty dependencies file for tsbtree.
# This may be replaced when dependencies are built.
