file(REMOVE_RECURSE
  "CMakeFiles/wobt_test.dir/tests/wobt_test.cc.o"
  "CMakeFiles/wobt_test.dir/tests/wobt_test.cc.o.d"
  "wobt_test"
  "wobt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wobt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
