# Empty compiler generated dependencies file for wobt_test.
# This may be replaced when dependencies are built.
