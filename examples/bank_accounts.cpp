// Bank accounts: the paper's Figure 1 scenario — account balances are
// stepwise-constant data stamped with transaction commit times, under a
// non-deletion policy (financial records must be kept forever).
//
// Shows: opening the ledger atomically with one WriteBatch, multi-account
// transfers as transactions, point-in-time audits over a VersionCursor
// ("what was every balance when?"), a lock-free auditor scanning a
// consistent snapshot while transfers keep committing (section 4.1), and
// the migration of old balance versions to the write-once archive file.
//
//   ./example_bank_accounts
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "db/multiversion_db.h"

using namespace tsb;

#define CHECK_OK(expr)                                         \
  do {                                                         \
    ::tsb::Status _s = (expr);                                 \
    if (!_s.ok()) {                                            \
      fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__, \
              _s.ToString().c_str());                          \
      return 1;                                                \
    }                                                          \
  } while (0)

namespace {

std::string Acct(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "acct-%04d", i);
  return buf;
}

long ParseBalance(const std::string& v) { return std::stol(v); }

}  // namespace

int main() {
  const std::string path = "/tmp/tsb_bank." + std::to_string(::getpid());
  db::DbOptions options;
  options.tree.page_size = 1024;  // small pages: watch migration happen
  options.worm_historical = true;  // the vault is write-once
  // Favor time splits: keep the magnetic footprint small, archive history.
  options.tree.policy.kind_policy = tsb_tree::SplitKindPolicy::kThreshold;
  options.tree.policy.key_split_threshold = 0.6;
  options.tree.policy.time_mode = tsb_tree::SplitTimeMode::kLastUpdate;

  std::unique_ptr<db::MultiVersionDB> bank;
  CHECK_OK(db::MultiVersionDB::Open(path, options, &bank));

  // Ledger genesis: every account appears atomically, at ONE timestamp.
  const int kAccounts = 40;
  db::WriteBatch genesis;
  for (int i = 0; i < kAccounts; ++i) {
    genesis.Put(Acct(i), "1000");
  }
  CHECK_OK(bank->Write(genesis));
  printf("opened %d accounts with balance 1000 (one atomic batch)\n",
         kAccounts);

  // A day of transfers: each is an atomic two-account transaction.
  Random rnd(2026);
  Timestamp mid_day = 0;
  const int kTransfers = 1500;
  for (int i = 0; i < kTransfers; ++i) {
    const int from = static_cast<int>(rnd.Uniform(kAccounts));
    int to = static_cast<int>(rnd.Uniform(kAccounts));
    if (to == from) to = (to + 1) % kAccounts;
    const long amount = 1 + static_cast<long>(rnd.Uniform(50));

    std::unique_ptr<txn::Transaction> t;
    CHECK_OK(bank->Begin(&t));
    std::string fv, tv;
    CHECK_OK(t->Get(Acct(from), &fv));
    CHECK_OK(t->Get(Acct(to), &tv));
    const long fb = ParseBalance(fv), tb = ParseBalance(tv);
    if (fb < amount) {
      CHECK_OK(t->Abort());  // insufficient funds: no trace remains
      continue;
    }
    CHECK_OK(t->Put(Acct(from), std::to_string(fb - amount)));
    CHECK_OK(t->Put(Acct(to), std::to_string(tb + amount)));
    Timestamp cts;
    CHECK_OK(t->Commit(&cts));
    if (i == kTransfers / 2) mid_day = cts;
  }

  // Invariant: money is conserved at EVERY point in time. A lock-free
  // read-only transaction audits a consistent snapshot while the bank
  // stays open (no locks taken, per section 4.1).
  txn::ReadTransaction auditor = bank->BeginReadOnly();
  long total_now = 0;
  auto it = auditor.NewCursor();
  CHECK_OK(it->SeekToFirst());
  while (it->Valid()) {
    total_now += ParseBalance(it->value().ToString());
    CHECK_OK(it->Next());
  }
  printf("audit @now       : total=%ld (%s)\n", total_now,
         total_now == 1000L * kAccounts ? "conserved" : "VIOLATION!");

  // Same audit against the mid-day snapshot, reconstructed from history —
  // much of which has migrated to the write-once archive by now.
  db::ReadOptions mid;
  mid.as_of = mid_day;
  long total_mid = 0;
  auto mid_it = bank->NewCursor(mid);
  CHECK_OK(mid_it->SeekToFirst());
  while (mid_it->Valid()) {
    total_mid += ParseBalance(mid_it->value().ToString());
    CHECK_OK(mid_it->Next());
  }
  printf("audit @mid-day   : total=%ld (%s)\n", total_mid,
         total_mid == 1000L * kAccounts ? "conserved" : "VIOLATION!");

  // Statement for one account: stop the key-axis cursor on the account
  // and drill into its past along the time axis — one cursor, both axes.
  printf("statement for %s (newest 5 entries):\n", Acct(7).c_str());
  auto stmt = bank->NewCursor();
  CHECK_OK(stmt->Seek(Acct(7)));
  for (int n = 0; n < 5 && stmt->Valid(); ++n) {
    printf("  t=%-6llu balance=%s\n", (unsigned long long)stmt->ts(),
           stmt->value().ToString().c_str());
    CHECK_OK(stmt->NextVersion());
  }

  tsb_tree::SpaceStats stats;
  CHECK_OK(bank->ComputeSpaceStats(&stats));
  printf("storage          : magnetic=%llu KiB (%llu pages), archive=%llu "
         "KiB, redundancy=%.3f copies/version\n",
         (unsigned long long)(stats.magnetic_bytes / 1024),
         (unsigned long long)stats.magnetic_pages,
         (unsigned long long)(stats.optical_device_bytes / 1024),
         stats.redundancy());
  const auto& c = bank->primary()->counters();
  printf("splits           : %llu key, %llu time (migrated %llu versions "
         "in %llu consolidated nodes)\n",
         (unsigned long long)c.data_key_splits,
         (unsigned long long)c.data_time_splits,
         (unsigned long long)c.records_migrated,
         (unsigned long long)c.hist_data_nodes);

  // Cursors pin pages in the bank's buffer pool: release them before the
  // DB closes (standard iterator-before-DB destruction order).
  stmt.reset();
  mid_it.reset();
  it.reset();
  bank.reset();
  CHECK_OK(db::MultiVersionDB::Destroy(path));
  return 0;
}
