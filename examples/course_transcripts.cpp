// University transcript archive: one of the paper's motivating non-deletion
// applications. Grades are appended, never deleted; corrections supersede
// rather than destroy; a secondary index by student answers "which courses
// did student S have on record at time T" without touching course records
// (section 3.6).
//
// Opened from a path, so the registrar's records — and the secondary
// index, which the DB backs with files in the same directory — survive
// process restarts.
//
//   ./example_course_transcripts
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "db/multiversion_db.h"

using namespace tsb;

#define CHECK_OK(expr)                                         \
  do {                                                         \
    ::tsb::Status _s = (expr);                                 \
    if (!_s.ok()) {                                            \
      fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__, \
              _s.ToString().c_str());                          \
      return 1;                                                \
    }                                                          \
  } while (0)

namespace {

// Record key: "<student>/<course>", value: "student=<id>;grade=<g>".
std::string RecordKey(const std::string& student, const std::string& course) {
  return student + "/" + course;
}

std::optional<std::string> ExtractStudent(const Slice& value) {
  const std::string s = value.ToString();
  if (!s.starts_with("student=")) return std::nullopt;
  const size_t semi = s.find(';');
  if (semi == std::string::npos) return std::nullopt;
  return s.substr(8, semi - 8);
}

std::string GradeValue(const std::string& student, const std::string& grade) {
  return "student=" + student + ";grade=" + grade;
}

}  // namespace

int main() {
  const std::string path =
      "/tmp/tsb_registrar." + std::to_string(::getpid());
  db::DbOptions options;
  options.tree.page_size = 1024;
  options.worm_historical = true;  // transcripts go to the write-once vault
  std::unique_ptr<db::MultiVersionDB> registrar;
  CHECK_OK(db::MultiVersionDB::Open(path, options, &registrar));
  CHECK_OK(registrar->CreateSecondaryIndex("by_student", ExtractStudent));

  const char* students[] = {"s-ada", "s-bob", "s-eve"};
  const char* courses[] = {"cs500", "cs520", "cs540", "math400"};

  // Semester 1: everyone takes two courses; each student's enrollment is
  // one atomic batch (both grades appear at one commit time).
  Timestamp end_of_sem1 = 0;
  for (const char* s : students) {
    db::WriteBatch enroll;
    enroll.Put(RecordKey(s, courses[0]), GradeValue(s, "B"));
    enroll.Put(RecordKey(s, courses[1]), GradeValue(s, "B+"));
    CHECK_OK(registrar->Write(enroll, &end_of_sem1));
  }

  // Semester 2: more courses; ada's cs500 grade is CORRECTED (the old
  // grade stays in the archive — transcripts are never rewritten).
  CHECK_OK(registrar->Put(RecordKey("s-ada", "cs500"),
                          GradeValue("s-ada", "A")));
  Timestamp end_of_sem2 = 0;
  for (const char* s : students) {
    db::WriteBatch enroll;
    enroll.Put(RecordKey(s, courses[2]), GradeValue(s, "A-"));
    enroll.Put(RecordKey(s, courses[3]), GradeValue(s, "B"));
    CHECK_OK(registrar->Write(enroll, &end_of_sem2));
  }

  // Query 1: ada's transcript as the registrar sees it today.
  printf("ada's transcript today:\n");
  std::vector<std::pair<std::string, std::string>> kvs;
  CHECK_OK(registrar->FindBySecondary(db::ReadOptions(), "by_student",
                                      "s-ada", &kvs));
  for (const auto& [key, value] : kvs) {
    printf("  %-16s %s\n", key.c_str(), value.c_str());
  }

  // Query 2: the certified copy issued at the end of semester 1 — before
  // the correction and before semester 2 enrollment.
  printf("ada's transcript as of end of semester 1 (t=%llu):\n",
         (unsigned long long)end_of_sem1);
  db::ReadOptions sem1;
  sem1.as_of = end_of_sem1;
  CHECK_OK(registrar->FindBySecondary(sem1, "by_student", "s-ada", &kvs));
  for (const auto& [key, value] : kvs) {
    printf("  %-16s %s\n", key.c_str(), value.c_str());
  }

  // Query 3: the grade-change audit trail for ada/cs500 — the cursor
  // parked on the record, walked along the time axis.
  printf("audit trail for s-ada/cs500:\n");
  auto cursor = registrar->NewCursor();
  CHECK_OK(cursor->Seek(RecordKey("s-ada", "cs500")));
  while (cursor->Valid() &&
         cursor->key() == Slice(RecordKey("s-ada", "cs500"))) {
    printf("  t=%-4llu %s\n", (unsigned long long)cursor->ts(),
           cursor->value().ToString().c_str());
    CHECK_OK(cursor->NextVersion());
  }

  // Query 4 (section 3.6): enrollment counts per student at both times,
  // answered from the secondary index alone.
  for (const char* s : students) {
    size_t then = 0, now = 0;
    CHECK_OK(registrar->index("by_student")->CountAsOf(s, end_of_sem1, &then));
    CHECK_OK(registrar->index("by_student")->CountAsOf(s, end_of_sem2, &now));
    printf("courses on record for %-6s: %zu at sem1, %zu at sem2\n", s, then,
           now);
  }

  cursor.reset();  // cursors release their page pins before the DB closes
  registrar.reset();
  CHECK_OK(db::MultiVersionDB::Destroy(path));
  return 0;
}
