// Engineering design history: the paper's "multiple version histories in
// engineering design" application, exercised at a scale where the TSB-tree
// actually earns its keep — thousands of part revisions, incremental
// migration of cold versions to the WORM archive, and reconstruction of
// complete past design states ("give me the bill of materials exactly as
// it was when we taped out v2").
//
// This example drives the TREE layer directly (raw simulated devices, so
// the device cost model is visible) through the unified read surface: one
// VersionCursor walks the v2 snapshot forward, backward (Prev), and down
// each part's revision history (NextVersion / SeekTimestamp).
//
//   ./example_design_versions
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/mem_device.h"
#include "storage/worm_device.h"
#include "tsb/cursor.h"
#include "tsb/tree_check.h"
#include "tsb/tsb_tree.h"

using namespace tsb;
using namespace tsb::tsb_tree;

#define CHECK_OK(expr)                                         \
  do {                                                         \
    ::tsb::Status _s = (expr);                                 \
    if (!_s.ok()) {                                            \
      fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__, \
              _s.ToString().c_str());                          \
      return 1;                                                \
    }                                                          \
  } while (0)

namespace {

std::string Part(int i) {
  char buf[24];
  snprintf(buf, sizeof(buf), "part-%05d", i);
  return buf;
}

}  // namespace

int main() {
  MemDevice magnetic;
  WormDevice archive(1024, CostParams::OpticalWorm());
  TsbOptions options;
  options.page_size = 2048;
  options.policy.time_mode = SplitTimeMode::kMinRedundancy;
  std::unique_ptr<TsbTree> designs;
  CHECK_OK(TsbTree::Open(&magnetic, &archive, options, &designs));

  const int kParts = 300;
  Random rnd(7);
  Timestamp ts = 0;

  // Baseline design drop.
  for (int p = 0; p < kParts; ++p) {
    CHECK_OK(designs->Put(Part(p), "rev=0;status=released", ++ts));
  }
  // Milestones: between tape-outs, engineers revise a random subset.
  std::vector<Timestamp> tapeouts;
  for (int milestone = 1; milestone <= 6; ++milestone) {
    const int revisions = 400 + static_cast<int>(rnd.Uniform(400));
    for (int r = 0; r < revisions; ++r) {
      const int p = static_cast<int>(rnd.Skewed(kParts));  // hot parts exist
      CHECK_OK(designs->Put(
          Part(p),
          "rev=" + std::to_string(milestone) + ";status=wip-" +
              std::to_string(r % 10),
          ++ts));
    }
    tapeouts.push_back(ts);
    printf("tape-out v%d at t=%llu\n", milestone, (unsigned long long)ts);
  }

  // Reconstruct the complete design state at an old tape-out: every part,
  // exactly the version that shipped. Much of it now lives on the archive.
  const Timestamp v2 = tapeouts[1];
  ReadOptions at_v2;
  at_v2.as_of = v2;
  size_t total = 0, revised_since_baseline = 0;
  auto snap = designs->NewCursor(at_v2);
  CHECK_OK(snap->SeekToFirst());
  while (snap->Valid()) {
    total++;
    if (snap->value().ToString().find("rev=0") == std::string::npos) {
      revised_since_baseline++;
    }
    CHECK_OK(snap->Next());
  }
  printf("tape-out v2 snapshot: %zu parts (%zu revised since baseline)\n",
         total, revised_since_baseline);

  // The same cursor walks BACKWARD too: the last three parts of the v2
  // bill of materials, in reverse key order.
  printf("v2 BOM, last three parts in reverse:\n");
  CHECK_OK(snap->Seek(Part(kParts - 1)));
  for (int n = 0; n < 3 && snap->Valid(); ++n) {
    printf("  %s  %s\n", snap->key().ToString().c_str(),
           snap->value().ToString().c_str());
    CHECK_OK(snap->Prev());
  }

  // Deep-history drill-down on the hottest part: park the cursor on the
  // key, walk its time axis newest-first.
  size_t versions = 0;
  auto hist = designs->NewCursor(ReadOptions());
  CHECK_OK(hist->Seek(Part(0)));
  while (hist->Valid()) {
    versions++;
    CHECK_OK(hist->NextVersion());
  }
  printf("part-00000 has %zu archived revisions\n", versions);

  // "Which revision shipped at each tape-out?" — SeekTimestamp jumps the
  // time axis straight to the version valid at each milestone.
  printf("part-00000 at each tape-out:\n");
  for (size_t m = 0; m < tapeouts.size(); ++m) {
    CHECK_OK(hist->Seek(Part(0)));
    if (!hist->Valid()) break;
    CHECK_OK(hist->SeekTimestamp(tapeouts[m]));
    if (!hist->Valid()) continue;
    printf("  v%zu: t=%-6llu %s\n", m + 1, (unsigned long long)hist->ts(),
           hist->value().ToString().c_str());
  }

  // What the two-device layout bought us.
  SpaceStats stats;
  CHECK_OK(designs->ComputeSpaceStats(&stats));
  const auto& c = designs->counters();
  printf("magnetic (hot)  : %7llu KiB in %llu pages\n",
         (unsigned long long)(stats.magnetic_bytes / 1024),
         (unsigned long long)stats.magnetic_pages);
  printf("archive  (cold) : %7llu KiB, %.1f%% sector utilization\n",
         (unsigned long long)(stats.optical_device_bytes / 1024),
         100.0 * archive.Utilization());
  printf("versions        : %llu logical, %llu physical copies "
         "(redundancy %.3f)\n",
         (unsigned long long)stats.logical_versions,
         (unsigned long long)stats.physical_record_copies,
         stats.redundancy());
  printf("migration       : %llu time splits moved %llu versions; "
         "%llu key splits; %llu index time splits\n",
         (unsigned long long)c.data_time_splits,
         (unsigned long long)c.records_migrated,
         (unsigned long long)c.data_key_splits,
         (unsigned long long)c.index_time_splits);
  printf("simulated I/O   : magnetic %.1f ms, optical %.1f ms\n",
         magnetic.stats().simulated_ms, archive.stats().simulated_ms);

  // Structural self-check before we call it a day.
  TreeChecker checker(designs.get());
  Status s = checker.Check();
  printf("invariant check : %s (%llu nodes visited)\n",
         s.ok() ? "OK" : s.ToString().c_str(),
         (unsigned long long)checker.nodes_visited());
  return s.ok() ? 0 : 1;
}
