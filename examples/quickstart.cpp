// Quickstart: open a MultiVersionDB from a path (the DB creates and owns
// its devices — a file-backed magnetic current database and a write-once
// historical archive), write versions atomically, and run the temporal
// query classes the TSB-tree supports through the unified read surface:
// ReadOptions point reads (copying and zero-copy pinned), and one
// VersionCursor that walks both the key axis and the time axis.
//
//   ./example_quickstart
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>

#include "db/multiversion_db.h"

using namespace tsb;

#define CHECK_OK(expr)                                         \
  do {                                                         \
    ::tsb::Status _s = (expr);                                 \
    if (!_s.ok()) {                                            \
      fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__, \
              _s.ToString().c_str());                          \
      return 1;                                                \
    }                                                          \
  } while (0)

int main() {
  const std::string path =
      "/tmp/tsb_quickstart." + std::to_string(::getpid());

  // The current database lives on an erasable file; history is appended
  // to a write-once file — rewriting a burned sector would fail.
  db::DbOptions options;
  options.tree.page_size = 4096;
  options.worm_historical = true;
  std::unique_ptr<db::MultiVersionDB> mvdb;
  CHECK_OK(db::MultiVersionDB::Open(path, options, &mvdb));

  // Every Put commits a new VERSION; nothing is ever overwritten.
  Timestamp t1, t2, t3;
  CHECK_OK(mvdb->Put("greeting", "hello, 1989", &t1));
  CHECK_OK(mvdb->Put("greeting", "hello, WORM world", &t2));
  CHECK_OK(mvdb->Put("greeting", "hello, time-split b-tree", &t3));

  // Point reads: the read timestamp is an explicit ReadOptions choice.
  std::string v;
  CHECK_OK(mvdb->Get(db::ReadOptions(), "greeting", &v));
  printf("current          : %s\n", v.c_str());

  db::ReadOptions asof1;
  asof1.as_of = t1;
  CHECK_OK(mvdb->Get(asof1, "greeting", &v));
  printf("as of t=%llu        : %s\n", (unsigned long long)t1, v.c_str());

  // Zero-copy read: once the version has migrated to the archive, the
  // PinnableValue pins the node blob and the value is a view into it.
  db::PinnableValue pinned;
  CHECK_OK(mvdb->Get(asof1, "greeting", &pinned));
  printf("pinned read      : %.*s (ts=%llu, %s)\n",
         (int)pinned.data().size(), pinned.data().data(),
         (unsigned long long)pinned.timestamp(),
         pinned.pinned() ? "zero-copy view" : "copied from current page");

  // One cursor for both axes: Seek/Next walk keys at the as-of time,
  // NextVersion walks the current key's past.
  printf("full history     :\n");
  auto cursor = mvdb->NewCursor();
  CHECK_OK(cursor->Seek("greeting"));
  while (cursor->Valid()) {
    printf("  t=%llu  %s\n", (unsigned long long)cursor->ts(),
           cursor->value().ToString().c_str());
    CHECK_OK(cursor->NextVersion());
  }

  // WriteBatch: atomic multi-key commit under ONE timestamp.
  db::WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  Timestamp commit_ts;
  CHECK_OK(mvdb->Write(batch, &commit_ts));
  printf("batch committed  : 2 keys at t=%llu\n",
         (unsigned long long)commit_ts);

  // Transactions are still there for read-modify-write; abort leaves no
  // trace (the current database is erasable).
  std::unique_ptr<txn::Transaction> txn;
  CHECK_OK(mvdb->Begin(&txn));
  CHECK_OK(txn->Put("c", "never happened"));
  CHECK_OK(txn->Abort());
  printf("aborted write    : %s\n",
         mvdb->Get(db::ReadOptions(), "c", &v).IsNotFound() ? "erased (good)"
                                                            : "LEAKED");

  // Reopen from the path: both databases persist. Cursors pin pages in
  // the DB's buffer pool, so they are released BEFORE the DB closes.
  cursor.reset();
  mvdb.reset();
  CHECK_OK(db::MultiVersionDB::Open(path, options, &mvdb));
  CHECK_OK(mvdb->Get(db::ReadOptions(), "greeting", &v));
  printf("after reopen     : %s\n", v.c_str());

  tsb_tree::SpaceStats stats;
  CHECK_OK(mvdb->ComputeSpaceStats(&stats));
  printf("storage          : magnetic=%llu bytes, archive=%llu bytes "
         "(write-once)\n",
         (unsigned long long)stats.magnetic_bytes,
         (unsigned long long)stats.optical_device_bytes);

  mvdb.reset();
  CHECK_OK(db::MultiVersionDB::Destroy(path));
  return 0;
}
