// Quickstart: open a MultiVersionDB over a simulated magnetic disk
// (current database) and WORM optical disk (historical database), write a
// few versions, and run the three temporal query classes the TSB-tree
// supports: current lookup, as-of lookup, and full version history.
//
//   ./example_quickstart
#include <cstdio>
#include <memory>

#include "db/multiversion_db.h"
#include "storage/mem_device.h"
#include "storage/worm_device.h"

using namespace tsb;

#define CHECK_OK(expr)                                         \
  do {                                                         \
    ::tsb::Status _s = (expr);                                 \
    if (!_s.ok()) {                                            \
      fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__, \
              _s.ToString().c_str());                          \
      return 1;                                                \
    }                                                          \
  } while (0)

int main() {
  // The current database lives on an erasable device; history is appended
  // to a write-once device — rewriting a burned sector would fail.
  MemDevice magnetic;
  WormDevice optical(/*sector_size=*/1024);

  db::DbOptions options;
  options.tree.page_size = 4096;
  std::unique_ptr<db::MultiVersionDB> mvdb;
  CHECK_OK(db::MultiVersionDB::Open(&magnetic, &optical, options, &mvdb));

  // Every Put commits a new VERSION; nothing is ever overwritten.
  Timestamp t1, t2, t3;
  CHECK_OK(mvdb->Put("greeting", "hello, 1989", &t1));
  CHECK_OK(mvdb->Put("greeting", "hello, WORM world", &t2));
  CHECK_OK(mvdb->Put("greeting", "hello, time-split b-tree", &t3));

  std::string v;
  CHECK_OK(mvdb->Get("greeting", &v));
  printf("current          : %s\n", v.c_str());

  CHECK_OK(mvdb->GetAsOf("greeting", t1, &v));
  printf("as of t=%llu        : %s\n", (unsigned long long)t1, v.c_str());

  printf("full history     :\n");
  auto hist = mvdb->NewHistoryIterator("greeting");
  CHECK_OK(hist->SeekToNewest());
  while (hist->Valid()) {
    printf("  t=%llu  %s\n", (unsigned long long)hist->ts(),
           hist->value().ToString().c_str());
    CHECK_OK(hist->Next());
  }

  // Transactions: atomic multi-key commit, abort leaves no trace.
  std::unique_ptr<txn::Transaction> txn;
  CHECK_OK(mvdb->Begin(&txn));
  CHECK_OK(txn->Put("a", "1"));
  CHECK_OK(txn->Put("b", "2"));
  Timestamp commit_ts;
  CHECK_OK(txn->Commit(&commit_ts));
  printf("txn committed at : t=%llu\n", (unsigned long long)commit_ts);

  CHECK_OK(mvdb->Begin(&txn));
  CHECK_OK(txn->Put("c", "never happened"));
  CHECK_OK(txn->Abort());
  printf("aborted write    : %s\n",
         mvdb->Get("c", &v).IsNotFound() ? "erased (good)" : "LEAKED");

  printf("devices          : magnetic=%llu bytes, optical=%llu sectors "
         "(%.1f%% utilized)\n",
         (unsigned long long)magnetic.Size(),
         (unsigned long long)optical.sectors_burned(),
         100.0 * optical.Utilization());
  return 0;
}
