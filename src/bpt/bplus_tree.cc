#include "bpt/bplus_tree.h"

#include <cassert>
#include <cstring>

#include "common/coding.h"
#include "storage/slotted.h"

namespace tsb {
namespace bpt {

namespace {

// Sub-header after the common 24-byte page header:
//   [24]     level (u8): 0 = leaf
//   [25]     pad
//   [26..30) next leaf page id (u32, leaves only)
constexpr uint32_t kSubHeader = 6;
constexpr uint32_t kSlotBase = kPageHeaderSize + kSubHeader;

uint8_t NodeLevel(const char* buf) { return static_cast<uint8_t>(buf[24]); }
void SetNodeLevel(char* buf, uint8_t level) { buf[24] = static_cast<char>(level); }
uint32_t NextLeaf(const char* buf) { return DecodeFixed32(buf + 26); }
void SetNextLeaf(char* buf, uint32_t id) { EncodeFixed32(buf + 26, id); }

SlottedView Slots(char* buf, uint32_t page_size) {
  // Capacity follows the page's own format: v2 pages reserve the checksum
  // trailer, legacy v1 pages keep their full payload area.
  return SlottedView(buf + kSlotBase, PageUsableSize(buf, page_size) - kSlotBase);
}

// Leaf cell: [varint klen][key][value...].
void EncodeLeafCell(std::string* out, const Slice& key, const Slice& value) {
  out->clear();
  PutVarint32(out, static_cast<uint32_t>(key.size()));
  out->append(key.data(), key.size());
  out->append(value.data(), value.size());
}

bool DecodeLeafCell(const Slice& cell, Slice* key, Slice* value) {
  Slice in = cell;
  uint32_t klen = 0;
  if (!GetVarint32(&in, &klen) || in.size() < klen) return false;
  *key = Slice(in.data(), klen);
  *value = Slice(in.data() + klen, in.size() - klen);
  return true;
}

// Internal cell: [varint klen][key][fixed32 child]. The key is the lower
// bound of the child's key range; cell 0 of a node acts as minus infinity.
void EncodeInternalCell(std::string* out, const Slice& key, uint32_t child) {
  out->clear();
  PutVarint32(out, static_cast<uint32_t>(key.size()));
  out->append(key.data(), key.size());
  PutFixed32(out, child);
}

bool DecodeInternalCell(const Slice& cell, Slice* key, uint32_t* child) {
  Slice in = cell;
  uint32_t klen = 0;
  if (!GetVarint32(&in, &klen) || in.size() < klen + 4) return false;
  *key = Slice(in.data(), klen);
  *child = DecodeFixed32(in.data() + klen);
  return true;
}

// First index i in the leaf with cell-key >= key; n if none.
int LeafLowerBound(const SlottedView& slots, const Slice& key) {
  int lo = 0, hi = slots.count();
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    Slice ck, cv;
    DecodeLeafCell(slots.Cell(mid), &ck, &cv);
    if (ck < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Index of the child entry to follow: last entry with key <= target
// (entry 0 if target precedes everything).
int InternalChildIndex(const SlottedView& slots, const Slice& key) {
  const int n = slots.count();
  int lo = 0, hi = n - 1, ans = 0;
  while (lo <= hi) {
    const int mid = (lo + hi) / 2;
    Slice ck;
    uint32_t child;
    DecodeInternalCell(slots.Cell(mid), &ck, &child);
    if (ck <= key) {
      ans = mid;
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return ans;
}

constexpr uint32_t kMetaMagic = 0x42505431;  // "BPT1"

}  // namespace

BPlusTree::BPlusTree(Device* device, const BptOptions& options)
    : options_(options),
      pager_(std::make_unique<Pager>(device, options.page_size)),
      pool_(std::make_unique<BufferPool>(pager_.get(),
                                         options.buffer_pool_frames)) {}

BPlusTree::~BPlusTree() { Flush(); }

Status BPlusTree::Open(Device* device, const BptOptions& options,
                       std::unique_ptr<BPlusTree>* out) {
  if (options.page_size < 256) {
    return Status::InvalidArgument("page_size too small");
  }
  std::unique_ptr<BPlusTree> tree(new BPlusTree(device, options));
  TSB_RETURN_IF_ERROR(tree->Load());
  *out = std::move(tree);
  return Status::OK();
}

Status BPlusTree::Load() {
  std::vector<char> meta(options_.page_size);
  TSB_RETURN_IF_ERROR(pager_->ReadMeta(meta.data()));
  const char* p = meta.data() + kPageHeaderSize;
  if (DecodeFixed32(p) == kMetaMagic) {
    root_ = DecodeFixed32(p + 4);
    height_ = DecodeFixed32(p + 8);
    num_keys_ = DecodeFixed64(p + 12);
    return Status::OK();
  }
  // Fresh tree: root is an empty leaf.
  PageHandle h;
  TSB_RETURN_IF_ERROR(pool_->New(PageType::kBptLeaf, &h));
  SetNodeLevel(h.data(), 0);
  SetNextLeaf(h.data(), kInvalidPageId);
  Slots(h.data(), options_.page_size).Init();
  h.MarkDirty();
  root_ = h.id();
  height_ = 1;
  return Status::OK();
}

Status BPlusTree::Flush() {
  std::vector<char> meta(options_.page_size);
  TSB_RETURN_IF_ERROR(pager_->ReadMeta(meta.data()));
  char* p = meta.data() + kPageHeaderSize;
  EncodeFixed32(p, kMetaMagic);
  EncodeFixed32(p + 4, root_);
  EncodeFixed32(p + 8, height_);
  EncodeFixed64(p + 12, num_keys_);
  TSB_RETURN_IF_ERROR(pager_->WriteMeta(meta.data()));
  return pool_->FlushAll();
}

Status BPlusTree::FindLeaf(const Slice& key, uint32_t* leaf_id) {
  uint32_t id = root_;
  for (;;) {
    PageHandle h;
    TSB_RETURN_IF_ERROR(pool_->Fetch(id, &h));
    if (NodeLevel(h.data()) == 0) {
      *leaf_id = id;
      return Status::OK();
    }
    SlottedView slots = Slots(h.data(), options_.page_size);
    const int idx = InternalChildIndex(slots, key);
    Slice ck;
    uint32_t child;
    if (!DecodeInternalCell(slots.Cell(idx), &ck, &child)) {
      return Status::Corruption("bad internal cell", std::to_string(id));
    }
    id = child;
  }
}

Status BPlusTree::Get(const Slice& key, std::string* value) {
  uint32_t leaf_id;
  TSB_RETURN_IF_ERROR(FindLeaf(key, &leaf_id));
  PageHandle h;
  TSB_RETURN_IF_ERROR(pool_->Fetch(leaf_id, &h));
  SlottedView slots = Slots(h.data(), options_.page_size);
  const int pos = LeafLowerBound(slots, key);
  if (pos < slots.count()) {
    Slice ck, cv;
    DecodeLeafCell(slots.Cell(pos), &ck, &cv);
    if (ck == key) {
      value->assign(cv.data(), cv.size());
      return Status::OK();
    }
  }
  return Status::NotFound("key absent");
}

Status BPlusTree::Put(const Slice& key, const Slice& value) {
  const uint32_t max_cell =
      (options_.page_size - kSlotBase - kPageTrailerSize) / 4;
  if (key.size() + value.size() + 8 > max_cell) {
    return Status::InvalidArgument("record too large for page size");
  }
  bool did_split = false, was_insert = false;
  std::string sep;
  uint32_t new_page = kInvalidPageId;
  TSB_RETURN_IF_ERROR(
      InsertRec(root_, key, value, &did_split, &sep, &new_page, &was_insert));
  if (did_split) {
    PageHandle h;
    TSB_RETURN_IF_ERROR(pool_->New(PageType::kBptInternal, &h));
    SetNodeLevel(h.data(), static_cast<uint8_t>(height_));
    SlottedView slots = Slots(h.data(), options_.page_size);
    slots.Init();
    std::string cell;
    EncodeInternalCell(&cell, Slice(), root_);
    slots.Insert(0, cell);
    EncodeInternalCell(&cell, sep, new_page);
    slots.Insert(1, cell);
    h.MarkDirty();
    root_ = h.id();
    height_++;
  }
  if (was_insert) num_keys_++;
  return Status::OK();
}

Status BPlusTree::InsertRec(uint32_t page_id, const Slice& key,
                            const Slice& value, bool* did_split,
                            std::string* sep, uint32_t* new_page,
                            bool* was_insert) {
  PageHandle h;
  TSB_RETURN_IF_ERROR(pool_->Fetch(page_id, &h));
  SlottedView slots = Slots(h.data(), options_.page_size);

  if (NodeLevel(h.data()) == 0) {
    std::string cell;
    EncodeLeafCell(&cell, key, value);
    int pos = LeafLowerBound(slots, key);
    bool exists = false;
    if (pos < slots.count()) {
      Slice ck, cv;
      DecodeLeafCell(slots.Cell(pos), &ck, &cv);
      exists = (ck == key);
    }
    const bool ok = exists ? slots.Replace(pos, cell) : slots.Insert(pos, cell);
    if (ok) {
      h.MarkDirty();
      *was_insert = !exists;
      return Status::OK();
    }
    // Full: split, then insert into the proper half.
    TSB_RETURN_IF_ERROR(SplitLeaf(&h, sep, new_page));
    *did_split = true;
    PageHandle target;
    uint32_t target_id = (key < Slice(*sep)) ? page_id : *new_page;
    TSB_RETURN_IF_ERROR(pool_->Fetch(target_id, &target));
    SlottedView ts = Slots(target.data(), options_.page_size);
    pos = LeafLowerBound(ts, key);
    if (exists) {
      if (!ts.Replace(pos, cell)) {
        return Status::Corruption("no room after leaf split");
      }
    } else if (!ts.Insert(pos, cell)) {
      return Status::Corruption("no room after leaf split");
    }
    target.MarkDirty();
    *was_insert = !exists;
    return Status::OK();
  }

  // Internal node.
  const int child_idx = InternalChildIndex(slots, key);
  Slice ck;
  uint32_t child;
  if (!DecodeInternalCell(slots.Cell(child_idx), &ck, &child)) {
    return Status::Corruption("bad internal cell");
  }
  bool child_split = false;
  std::string child_sep;
  uint32_t child_new = kInvalidPageId;
  h.Release();  // avoid holding pins across the whole recursion depth
  TSB_RETURN_IF_ERROR(InsertRec(child, key, value, &child_split, &child_sep,
                                &child_new, was_insert));
  if (!child_split) return Status::OK();

  TSB_RETURN_IF_ERROR(pool_->Fetch(page_id, &h));
  SlottedView slots2 = Slots(h.data(), options_.page_size);
  std::string cell;
  EncodeInternalCell(&cell, child_sep, child_new);
  if (slots2.Insert(child_idx + 1, cell)) {
    h.MarkDirty();
    return Status::OK();
  }
  // Internal node full: split it, then place the new separator.
  TSB_RETURN_IF_ERROR(SplitInternal(&h, sep, new_page));
  *did_split = true;
  const uint32_t target_id =
      (Slice(child_sep) < Slice(*sep)) ? page_id : *new_page;
  PageHandle target;
  TSB_RETURN_IF_ERROR(pool_->Fetch(target_id, &target));
  SlottedView ts = Slots(target.data(), options_.page_size);
  // Re-locate insert position in the target half.
  const int n = ts.count();
  int pos = n;
  for (int i = 0; i < n; ++i) {
    Slice k2;
    uint32_t c2;
    DecodeInternalCell(ts.Cell(i), &k2, &c2);
    if (Slice(child_sep) < k2) {
      pos = i;
      break;
    }
  }
  if (!ts.Insert(pos, cell)) {
    return Status::Corruption("no room after internal split");
  }
  target.MarkDirty();
  return Status::OK();
}

Status BPlusTree::SplitLeaf(PageHandle* page, std::string* sep,
                            uint32_t* new_page) {
  SlottedView slots = Slots(page->data(), options_.page_size);
  const int n = slots.count();
  if (n < 2) return Status::Corruption("split of leaf with <2 cells");
  // Split at the byte midpoint so variable-length records balance.
  uint32_t total = 0;
  std::vector<uint32_t> sizes(n);
  for (int i = 0; i < n; ++i) {
    sizes[i] = static_cast<uint32_t>(slots.Cell(i).size());
    total += sizes[i];
  }
  uint32_t acc = 0;
  int mid = n / 2;
  for (int i = 0; i < n; ++i) {
    acc += sizes[i];
    if (acc * 2 >= total) {
      mid = i + 1;
      break;
    }
  }
  if (mid >= n) mid = n - 1;
  if (mid == 0) mid = 1;

  PageHandle right;
  TSB_RETURN_IF_ERROR(pool_->New(PageType::kBptLeaf, &right));
  SetNodeLevel(right.data(), 0);
  SetNextLeaf(right.data(), NextLeaf(page->data()));
  SlottedView rslots = Slots(right.data(), options_.page_size);
  rslots.Init();
  for (int i = mid; i < n; ++i) {
    if (!rslots.Insert(i - mid, slots.Cell(i))) {
      return Status::Corruption("leaf split overflow");
    }
  }
  for (int i = n - 1; i >= mid; --i) slots.Remove(i);
  SetNextLeaf(page->data(), right.id());
  page->MarkDirty();
  right.MarkDirty();

  Slice first_key, v;
  DecodeLeafCell(rslots.Cell(0), &first_key, &v);
  sep->assign(first_key.data(), first_key.size());
  *new_page = right.id();
  return Status::OK();
}

Status BPlusTree::SplitInternal(PageHandle* page, std::string* sep,
                                uint32_t* new_page) {
  SlottedView slots = Slots(page->data(), options_.page_size);
  const int n = slots.count();
  if (n < 3) return Status::Corruption("split of internal with <3 cells");
  const int mid = n / 2;

  PageHandle right;
  TSB_RETURN_IF_ERROR(pool_->New(PageType::kBptInternal, &right));
  SetNodeLevel(right.data(), NodeLevel(page->data()));
  SlottedView rslots = Slots(right.data(), options_.page_size);
  rslots.Init();
  for (int i = mid; i < n; ++i) {
    if (!rslots.Insert(i - mid, slots.Cell(i))) {
      return Status::Corruption("internal split overflow");
    }
  }
  Slice mid_key;
  uint32_t mid_child;
  DecodeInternalCell(rslots.Cell(0), &mid_key, &mid_child);
  sep->assign(mid_key.data(), mid_key.size());
  for (int i = n - 1; i >= mid; --i) slots.Remove(i);
  page->MarkDirty();
  right.MarkDirty();
  *new_page = right.id();
  return Status::OK();
}

Status BPlusTree::Delete(const Slice& key) {
  uint32_t leaf_id;
  TSB_RETURN_IF_ERROR(FindLeaf(key, &leaf_id));
  PageHandle h;
  TSB_RETURN_IF_ERROR(pool_->Fetch(leaf_id, &h));
  SlottedView slots = Slots(h.data(), options_.page_size);
  const int pos = LeafLowerBound(slots, key);
  if (pos < slots.count()) {
    Slice ck, cv;
    DecodeLeafCell(slots.Cell(pos), &ck, &cv);
    if (ck == key) {
      slots.Remove(pos);
      h.MarkDirty();
      num_keys_--;
      return Status::OK();
    }
  }
  return Status::NotFound("key absent");
}

Status BPlusTree::Iterator::Seek(const Slice& target) {
  TSB_RETURN_IF_ERROR(tree_->FindLeaf(target, &leaf_));
  PageHandle h;
  TSB_RETURN_IF_ERROR(tree_->pool_->Fetch(leaf_, &h));
  SlottedView slots = Slots(h.data(), tree_->options_.page_size);
  idx_ = LeafLowerBound(slots, target);
  h.Release();
  return LoadPosition();
}

Status BPlusTree::Iterator::SeekToFirst() { return Seek(Slice()); }

Status BPlusTree::Iterator::LoadPosition() {
  valid_ = false;
  while (leaf_ != kInvalidPageId) {
    PageHandle h;
    TSB_RETURN_IF_ERROR(tree_->pool_->Fetch(leaf_, &h));
    SlottedView slots = Slots(h.data(), tree_->options_.page_size);
    if (idx_ < slots.count()) {
      Slice k, v;
      if (!DecodeLeafCell(slots.Cell(idx_), &k, &v)) {
        return Status::Corruption("bad leaf cell");
      }
      key_.assign(k.data(), k.size());
      value_.assign(v.data(), v.size());
      valid_ = true;
      return Status::OK();
    }
    leaf_ = NextLeaf(h.data());
    idx_ = 0;
  }
  return Status::OK();
}

Status BPlusTree::Iterator::Next() {
  if (!valid_) return Status::InvalidArgument("Next on invalid iterator");
  idx_++;
  return LoadPosition();
}

Status BPlusTree::CheckInvariants() {
  return CheckRec(root_, height_ - 1, Slice(), Slice(), true);
}

Status BPlusTree::CheckRec(uint32_t page_id, uint32_t level, const Slice& lower,
                           const Slice& upper, bool upper_unbounded) {
  PageHandle h;
  TSB_RETURN_IF_ERROR(pool_->Fetch(page_id, &h));
  if (NodeLevel(h.data()) != level) {
    return Status::Corruption("level mismatch", std::to_string(page_id));
  }
  SlottedView slots = Slots(h.data(), options_.page_size);
  const int n = slots.count();
  std::string prev;
  bool have_prev = false;
  for (int i = 0; i < n; ++i) {
    Slice k, v;
    uint32_t child = 0;
    if (level == 0) {
      if (!DecodeLeafCell(slots.Cell(i), &k, &v)) {
        return Status::Corruption("bad leaf cell");
      }
    } else {
      if (!DecodeInternalCell(slots.Cell(i), &k, &child)) {
        return Status::Corruption("bad internal cell");
      }
    }
    if (have_prev && Slice(prev) >= k && !(i == 0)) {
      return Status::Corruption("unsorted node", std::to_string(page_id));
    }
    // Internal cell 0 acts as -infinity; skip its bound checks.
    if (!(level > 0 && i == 0)) {
      if (k < lower) {
        return Status::Corruption("key below lower bound");
      }
      if (!upper_unbounded && k >= upper) {
        return Status::Corruption("key above upper bound");
      }
    }
    prev.assign(k.data(), k.size());
    have_prev = true;
  }
  if (level > 0) {
    for (int i = 0; i < n; ++i) {
      Slice k;
      uint32_t child;
      DecodeInternalCell(slots.Cell(i), &k, &child);
      Slice child_lower = (i == 0) ? lower : k;
      Slice child_upper;
      bool child_upper_unbounded = true;
      if (i + 1 < n) {
        Slice nk;
        uint32_t nc;
        DecodeInternalCell(slots.Cell(i + 1), &nk, &nc);
        child_upper = nk;
        child_upper_unbounded = false;
      } else {
        child_upper = upper;
        child_upper_unbounded = upper_unbounded;
      }
      // Copy bounds: the recursive call fetches pages and may evict ours.
      std::string cl = child_lower.ToString(), cu = child_upper.ToString();
      h.Release();
      TSB_RETURN_IF_ERROR(
          CheckRec(child, level - 1, Slice(cl), Slice(cu), child_upper_unbounded));
      TSB_RETURN_IF_ERROR(pool_->Fetch(page_id, &h));
      slots = Slots(h.data(), options_.page_size);
    }
  }
  return Status::OK();
}

}  // namespace bpt
}  // namespace tsb
