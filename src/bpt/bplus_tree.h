// B+-tree baseline: single-version, update-in-place, current data only.
//
// This is the comparator the paper's key splits mimic ("key splits as in
// B+-trees", abstract): it shows what current-version performance and
// space look like when history is simply overwritten. Variable-length
// keys/values in slotted pages, leaf sibling chain for range scans.
#ifndef TSBTREE_BPT_BPLUS_TREE_H_
#define TSBTREE_BPT_BPLUS_TREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"

namespace tsb {
namespace bpt {

struct BptOptions {
  uint32_t page_size = kDefaultPageSize;
  size_t buffer_pool_frames = 256;
};

/// Classic B+-tree. Not thread-safe. Deletion removes the key from its
/// leaf without rebalancing (underfull leaves are tolerated); the paper's
/// workloads are non-deleting, so this keeps the baseline honest without
/// extra machinery.
class BPlusTree {
 public:
  /// Opens (or creates) a tree on `device`, which must outlive the tree.
  static Status Open(Device* device, const BptOptions& options,
                     std::unique_ptr<BPlusTree>* out);

  ~BPlusTree();

  /// Inserts or overwrites `key`.
  Status Put(const Slice& key, const Slice& value);

  /// Point lookup; NotFound if absent.
  Status Get(const Slice& key, std::string* value);

  /// Removes `key`; NotFound if absent.
  Status Delete(const Slice& key);

  /// Forward iterator over the leaf chain.
  class Iterator {
   public:
    explicit Iterator(BPlusTree* tree) : tree_(tree) {}
    /// Positions at the first key >= target (or end).
    Status Seek(const Slice& target);
    Status SeekToFirst();
    bool Valid() const { return valid_; }
    Status Next();
    Slice key() const { return Slice(key_); }
    Slice value() const { return Slice(value_); }

   private:
    Status LoadPosition();
    BPlusTree* tree_;
    uint32_t leaf_ = kInvalidPageId;
    int idx_ = 0;
    bool valid_ = false;
    std::string key_, value_;
  };

  std::unique_ptr<Iterator> NewIterator() {
    return std::make_unique<Iterator>(this);
  }

  /// Persists meta (root, height, count) and flushes dirty pages.
  Status Flush();

  /// Structural check: in-node ordering, separator bounds, leaf-chain
  /// ordering. Returns Corruption on the first violation.
  Status CheckInvariants();

  uint64_t num_keys() const { return num_keys_; }
  uint32_t height() const { return height_; }
  Pager* pager() { return pager_.get(); }
  BufferPool* buffer_pool() { return pool_.get(); }

 private:
  BPlusTree(Device* device, const BptOptions& options);

  Status Load();
  Status InsertRec(uint32_t page_id, const Slice& key, const Slice& value,
                   bool* did_split, std::string* sep, uint32_t* new_page,
                   bool* was_insert);
  Status SplitLeaf(PageHandle* page, std::string* sep, uint32_t* new_page);
  Status SplitInternal(PageHandle* page, std::string* sep, uint32_t* new_page);
  Status FindLeaf(const Slice& key, uint32_t* leaf_id);
  Status CheckRec(uint32_t page_id, uint32_t level, const Slice& lower,
                  const Slice& upper, bool upper_unbounded);

  BptOptions options_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  uint32_t root_ = kInvalidPageId;
  uint32_t height_ = 1;  // number of levels; 1 = root is a leaf
  uint64_t num_keys_ = 0;

  friend class Iterator;
};

}  // namespace bpt
}  // namespace tsb

#endif  // TSBTREE_BPT_BPLUS_TREE_H_
