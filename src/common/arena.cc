#include "common/arena.h"

#include <cstring>

namespace tsb {

Arena::Arena() = default;

char* Arena::Allocate(size_t bytes) {
  // Keep 8-byte alignment by rounding every request up.
  bytes = (bytes + 7) & ~size_t{7};
  if (bytes <= alloc_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_remaining_ -= bytes;
    return result;
  }
  return AllocateFallback(bytes);
}

char* Arena::AllocateFallback(size_t bytes) {
  if (bytes > kBlockSize / 4) {
    // Large request: dedicated block, leave the current bump block alone.
    blocks_.emplace_back(new char[bytes]);
    memory_usage_ += bytes;
    return blocks_.back().get();
  }
  blocks_.emplace_back(new char[kBlockSize]);
  memory_usage_ += kBlockSize;
  alloc_ptr_ = blocks_.back().get();
  alloc_remaining_ = kBlockSize;
  char* result = alloc_ptr_;
  alloc_ptr_ += bytes;
  alloc_remaining_ -= bytes;
  return result;
}

char* Arena::AllocateCopy(const char* data, size_t n) {
  char* dst = Allocate(n == 0 ? 1 : n);
  if (n > 0) memcpy(dst, data, n);
  return dst;
}

}  // namespace tsb
