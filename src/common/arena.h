// Arena: bump allocator for short-lived per-operation scratch (split
// staging, iterator buffers). All memory is released when the arena dies.
#ifndef TSBTREE_COMMON_ARENA_H_
#define TSBTREE_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace tsb {

/// Block-chained bump allocator. Not thread-safe; use one per operation.
class Arena {
 public:
  Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of uninitialized memory (8-byte aligned).
  char* Allocate(size_t bytes);

  /// Copies `n` bytes of `data` into the arena and returns the copy.
  char* AllocateCopy(const char* data, size_t n);

  /// Total bytes handed to callers plus block overhead.
  size_t MemoryUsage() const { return memory_usage_; }

 private:
  char* AllocateFallback(size_t bytes);

  static constexpr size_t kBlockSize = 4096;

  char* alloc_ptr_ = nullptr;
  size_t alloc_remaining_ = 0;
  size_t memory_usage_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
};

}  // namespace tsb

#endif  // TSBTREE_COMMON_ARENA_H_
