#include "common/clock.h"

// LogicalClock is header-only; anchor translation unit.
namespace tsb {
namespace {
[[maybe_unused]] const char kClockAnchor = 0;
}  // namespace
}  // namespace tsb
