// Timestamps and the logical commit clock.
//
// The paper assumes a "rollback database" [McKe, SnAh]: records are stamped
// with the *transaction commit time*, not effective time. We model commit
// time as a strictly monotonic 64-bit logical clock. Records written by
// uncommitted transactions carry no timestamp (kUncommittedTs sentinel) so
// they sort after every committed version and are never migrated to the
// historical database (paper section 4).
#ifndef TSBTREE_COMMON_CLOCK_H_
#define TSBTREE_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace tsb {

/// Logical commit timestamp. Ordinary values are 1..kMaxCommittedTs.
using Timestamp = uint64_t;

/// Smallest timestamp; nothing commits at 0, so 0 is "beginning of time".
inline constexpr Timestamp kMinTimestamp = 0;

/// Largest committed timestamp value.
inline constexpr Timestamp kMaxCommittedTs = UINT64_MAX - 2;

/// Sentinel meaning "+infinity" for time-range upper bounds (open ranges of
/// current nodes and of current record versions).
inline constexpr Timestamp kInfiniteTs = UINT64_MAX;

/// Sentinel carried by records of not-yet-committed transactions. Sorts
/// after every committed timestamp but before kInfiniteTs.
inline constexpr Timestamp kUncommittedTs = UINT64_MAX - 1;

/// Transaction identifier (0 = "no transaction" / committed record).
using TxnId = uint64_t;
inline constexpr TxnId kNoTxn = 0;

/// Strictly monotonic logical clock issuing commit timestamps.
///
/// Lock-free (paper section 4.1): read-only transactions capture their
/// start timestamp with a single atomic load, updaters advance the clock
/// with atomic RMW ops. No reader ever blocks on the clock.
///
/// The clock keeps TWO values. `Now()` is the allocator — the latest
/// timestamp handed out, used for split-time decisions. `Visible()` is
/// the committed watermark readers snapshot at: every commit with ts <=
/// Visible() is fully stamped (all its keys, all its index maintenance).
/// Updaters Publish() a timestamp only after the data stamped with it is
/// completely in place, which is what makes the paper's guarantee hold:
/// no updater can commit at or before an already-issued read timestamp.
class LogicalClock {
 public:
  explicit LogicalClock(Timestamp start = 0)
      : now_(start), visible_(start) {}

  /// Issues the next commit timestamp (strictly increasing).
  Timestamp Tick() { return now_.fetch_add(1, std::memory_order_acq_rel) + 1; }

  /// The latest issued timestamp ("current time" in split decisions).
  /// May exceed Visible() while a commit is in flight. Wait-free.
  Timestamp Now() const { return now_.load(std::memory_order_acquire); }

  /// The committed watermark: the start timestamp for lock-free readers.
  /// Wait-free.
  Timestamp Visible() const {
    return visible_.load(std::memory_order_acquire);
  }

  /// Declares every timestamp <= `t` fully committed (monotone advance;
  /// call only after the stamped data is reader-reachable).
  void Publish(Timestamp t) {
    Timestamp cur = visible_.load(std::memory_order_relaxed);
    while (t > cur && !visible_.compare_exchange_weak(
                          cur, t, std::memory_order_acq_rel)) {
    }
  }

  /// Advances the allocator to at least `t` (used when replaying
  /// workloads with externally chosen timestamps).
  void AdvanceTo(Timestamp t) {
    Timestamp cur = now_.load(std::memory_order_relaxed);
    while (t > cur &&
           !now_.compare_exchange_weak(cur, t, std::memory_order_acq_rel)) {
    }
  }

 private:
  std::atomic<Timestamp> now_;
  std::atomic<Timestamp> visible_;
};

}  // namespace tsb

#endif  // TSBTREE_COMMON_CLOCK_H_
