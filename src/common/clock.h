// Timestamps and the logical commit clock.
//
// The paper assumes a "rollback database" [McKe, SnAh]: records are stamped
// with the *transaction commit time*, not effective time. We model commit
// time as a strictly monotonic 64-bit logical clock. Records written by
// uncommitted transactions carry no timestamp (kUncommittedTs sentinel) so
// they sort after every committed version and are never migrated to the
// historical database (paper section 4).
#ifndef TSBTREE_COMMON_CLOCK_H_
#define TSBTREE_COMMON_CLOCK_H_

#include <cstdint>

namespace tsb {

/// Logical commit timestamp. Ordinary values are 1..kMaxCommittedTs.
using Timestamp = uint64_t;

/// Smallest timestamp; nothing commits at 0, so 0 is "beginning of time".
inline constexpr Timestamp kMinTimestamp = 0;

/// Largest committed timestamp value.
inline constexpr Timestamp kMaxCommittedTs = UINT64_MAX - 2;

/// Sentinel meaning "+infinity" for time-range upper bounds (open ranges of
/// current nodes and of current record versions).
inline constexpr Timestamp kInfiniteTs = UINT64_MAX;

/// Sentinel carried by records of not-yet-committed transactions. Sorts
/// after every committed timestamp but before kInfiniteTs.
inline constexpr Timestamp kUncommittedTs = UINT64_MAX - 1;

/// Transaction identifier (0 = "no transaction" / committed record).
using TxnId = uint64_t;
inline constexpr TxnId kNoTxn = 0;

/// Strictly monotonic logical clock issuing commit timestamps.
class LogicalClock {
 public:
  explicit LogicalClock(Timestamp start = 0) : now_(start) {}

  /// Issues the next commit timestamp (strictly increasing).
  Timestamp Tick() { return ++now_; }

  /// The latest issued timestamp ("current time" in split decisions).
  Timestamp Now() const { return now_; }

  /// Advances the clock to at least `t` (used when replaying workloads with
  /// externally chosen timestamps).
  void AdvanceTo(Timestamp t) {
    if (t > now_) now_ = t;
  }

 private:
  Timestamp now_;
};

}  // namespace tsb

#endif  // TSBTREE_COMMON_CLOCK_H_
