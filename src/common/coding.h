// Byte-layout codecs. Everything on a page or in the historical store is
// encoded little-endian through these helpers so layouts are explicit and
// platform-independent.
#ifndef TSBTREE_COMMON_CODING_H_
#define TSBTREE_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"

namespace tsb {

// ---- fixed-width little-endian ----

inline void EncodeFixed16(char* dst, uint16_t v) {
  dst[0] = static_cast<char>(v & 0xff);
  dst[1] = static_cast<char>((v >> 8) & 0xff);
}

inline void EncodeFixed32(char* dst, uint32_t v) {
  for (int i = 0; i < 4; ++i) dst[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

inline void EncodeFixed64(char* dst, uint64_t v) {
  for (int i = 0; i < 8; ++i) dst[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

inline uint16_t DecodeFixed16(const char* src) {
  const auto* p = reinterpret_cast<const uint8_t*>(src);
  return static_cast<uint16_t>(p[0]) | (static_cast<uint16_t>(p[1]) << 8);
}

inline uint32_t DecodeFixed32(const char* src) {
  const auto* p = reinterpret_cast<const uint8_t*>(src);
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline uint64_t DecodeFixed64(const char* src) {
  const auto* p = reinterpret_cast<const uint8_t*>(src);
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline void PutFixed16(std::string* dst, uint16_t v) {
  char buf[2];
  EncodeFixed16(buf, v);
  dst->append(buf, 2);
}

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  EncodeFixed32(buf, v);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  EncodeFixed64(buf, v);
  dst->append(buf, 8);
}

// ---- varint32/64 (LEB128) ----

/// Appends v as a varint32 (1-5 bytes).
void PutVarint32(std::string* dst, uint32_t v);
/// Appends v as a varint64 (1-10 bytes).
void PutVarint64(std::string* dst, uint64_t v);

/// Encodes v into dst (which must have >= 5 bytes); returns one past the end.
char* EncodeVarint32(char* dst, uint32_t v);
/// Encodes v into dst (which must have >= 10 bytes); returns one past the end.
char* EncodeVarint64(char* dst, uint64_t v);

/// Parses a varint32 from [p, limit); returns pointer past the value, or
/// nullptr on malformed/truncated input.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value);
/// Parses a varint64 from [p, limit); nullptr on malformed input.
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value);

/// Consumes a varint32 from the front of *input. Returns false on failure.
bool GetVarint32(Slice* input, uint32_t* value);
/// Consumes a varint64 from the front of *input. Returns false on failure.
bool GetVarint64(Slice* input, uint64_t* value);

/// Appends a varint32 length prefix followed by the bytes of `value`.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);
/// Consumes a length-prefixed slice from *input into *result (non-owning view
/// into the input buffer). Returns false on failure.
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

/// Number of bytes PutVarint32/64 would emit.
int VarintLength(uint64_t v);

}  // namespace tsb

#endif  // TSBTREE_COMMON_CODING_H_
