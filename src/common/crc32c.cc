#include "common/crc32c.h"

namespace tsb {
namespace crc32c {

namespace {

// Table-driven CRC32C, table generated at first use (reflected polynomial
// 0x82f63b78).
struct Table {
  uint32_t t[256];
  Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0x82f63b78u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
  }
};

const Table& GetTable() {
  static const Table table;
  return table;
}

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  const Table& table = GetTable();
  uint32_t crc = init_crc ^ 0xffffffffu;
  const auto* p = reinterpret_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    crc = table.t[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace crc32c
}  // namespace tsb
