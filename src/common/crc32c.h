// CRC32C (Castagnoli). Every page header and historical node carries a
// checksum so corruption and WORM immutability violations are detectable.
#ifndef TSBTREE_COMMON_CRC32C_H_
#define TSBTREE_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace tsb {
namespace crc32c {

/// Returns the CRC32C of data[0,n) seeded with `init_crc` (use Value() with
/// init_crc = 0 for a fresh checksum; Extend chains block checksums).
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

/// CRC32C of data[0,n).
inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

/// A masked CRC is stored on disk so that computing the CRC of a buffer that
/// itself contains CRCs does not degenerate (same trick as LevelDB).
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8ul;
}

/// Inverse of Mask().
inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8ul;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace crc32c
}  // namespace tsb

#endif  // TSBTREE_COMMON_CRC32C_H_
