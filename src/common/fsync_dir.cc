#include "common/fsync_dir.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tsb {

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IOError("open dir " + dir, strerror(errno));
  }
  Status status;
  if (::fsync(fd) != 0) {
    // Some filesystems refuse fsync on directories (EINVAL); there the
    // directory entry is as durable as the platform allows and failing
    // the commit path would only turn a durability gap into an outage.
    if (errno != EINVAL) {
      status = Status::IOError("fsync dir " + dir, strerror(errno));
    }
  }
  ::close(fd);
  return status;
}

Status SyncParentDir(const std::string& file) {
  const size_t slash = file.find_last_of('/');
  return SyncDir(slash == std::string::npos ? "." : file.substr(0, slash));
}

}  // namespace tsb
