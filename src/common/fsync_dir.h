// Directory-entry durability. fsync on a file makes its BYTES stable,
// but the file's existence (a create, rename or unlink) lives in the
// parent directory and needs its own fsync: without it a power cut can
// forget that a just-renamed MANIFEST, a freshly committed checkpoint
// journal, or a new WAL segment was ever linked into the directory.
#ifndef TSBTREE_COMMON_FSYNC_DIR_H_
#define TSBTREE_COMMON_FSYNC_DIR_H_

#include <string>

#include "common/status.h"

namespace tsb {

/// fsyncs the directory `dir` so that creates/renames/unlinks performed
/// inside it are durable. Call AFTER the file operation and BEFORE
/// treating it as a commit point.
Status SyncDir(const std::string& dir);

/// SyncDir on the parent directory of `file` (the path up to the last
/// '/'; "." when the path has no directory component).
Status SyncParentDir(const std::string& file);

}  // namespace tsb

#endif  // TSBTREE_COMMON_FSYNC_DIR_H_
