#include "common/hash.h"

#include <cstring>

namespace tsb {

namespace {

// splitmix64 finalizer: full avalanche over 64 bits (Vigna's mixer, the
// same constants used by xxHash3's avalanche step lineage).
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Normalized little-endian load: byte i of the input contributes bits
// [8i, 8i+8). memcpy compiles to an unaligned load on every target that
// matters; the explicit assembly keeps big-endian hosts hash-compatible.
inline uint64_t Load64(const uint8_t* p) {
  return static_cast<uint64_t>(p[0]) | (static_cast<uint64_t>(p[1]) << 8) |
         (static_cast<uint64_t>(p[2]) << 16) |
         (static_cast<uint64_t>(p[3]) << 24) |
         (static_cast<uint64_t>(p[4]) << 32) |
         (static_cast<uint64_t>(p[5]) << 40) |
         (static_cast<uint64_t>(p[6]) << 48) |
         (static_cast<uint64_t>(p[7]) << 56);
}

constexpr uint64_t kMul1 = 0x9e3779b97f4a7c15ULL;  // golden-ratio odd const
constexpr uint64_t kMul2 = 0xc2b2ae3d27d4eb4fULL;  // xxHash prime64_2

}  // namespace

uint64_t Hash64(const void* data, size_t n, uint64_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  // Seed and length enter the state up front so "" with different seeds —
  // and prefixes of different lengths — diverge immediately.
  uint64_t h = Mix64(seed ^ (kMul1 * (n + 1)));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    h = Mix64(h ^ (Load64(p + i) * kMul2));
  }
  if (i < n) {
    // Tail: length-distinct because n is already folded in; bytes pack
    // little-endian into one word.
    uint64_t tail = 0;
    for (size_t j = 0; i + j < n; ++j) {
      tail |= static_cast<uint64_t>(p[i + j]) << (8 * j);
    }
    h = Mix64(h ^ (tail * kMul2));
  }
  return Mix64(h);
}

}  // namespace tsb
