// Seeded 64-bit key hashing for partitioning and routing.
//
// The sharded facade routes every key to a shard with one Hash64 call, so
// the function must (a) avalanche — flipping any input bit flips each
// output bit with ~1/2 probability, or short common-prefix keys ("user0001",
// "user0002", ...) would all land on one shard — and (b) be seedable, so a
// database can pick its placement once and persist the seed in its
// manifest (re-opening with a different seed would silently read the wrong
// shard). The mixer is the splitmix64 finalizer over 8-byte little-endian
// chunks folded with xxHash-style odd-constant multiplies: 2-3 ns per
// short key, no tables, no allocation. This is a placement hash, not a
// cryptographic one.
#ifndef TSBTREE_COMMON_HASH_H_
#define TSBTREE_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

#include "common/slice.h"

namespace tsb {

/// Seeded 64-bit hash of `data[0, n)`. Stable across platforms and
/// processes (little-endian chunk loads are normalized): values may be
/// persisted (the sharded MANIFEST records the routing seed, and the
/// router must agree with every past run).
uint64_t Hash64(const void* data, size_t n, uint64_t seed);

inline uint64_t Hash64(const Slice& s, uint64_t seed) {
  return Hash64(s.data(), s.size(), seed);
}

/// Routes a key to one of `num_shards` partitions.
inline uint32_t ShardOfKey(const Slice& key, uint32_t num_shards,
                           uint64_t seed) {
  return num_shards <= 1
             ? 0
             : static_cast<uint32_t>(Hash64(key, seed) % num_shards);
}

}  // namespace tsb

#endif  // TSBTREE_COMMON_HASH_H_
