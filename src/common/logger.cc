#include "common/logger.h"

#include <cstdio>
#include <mutex>
#include <vector>

namespace tsb {

namespace {

struct LoggerState {
  std::mutex mu;
  LogLevel level = LogLevel::kWarn;
  Logger::Sink sink;  // empty => stderr
};

LoggerState& State() {
  static LoggerState* state = new LoggerState();
  return *state;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void Logger::SetLevel(LogLevel level) {
  std::lock_guard<std::mutex> lock(State().mu);
  State().level = level;
}

LogLevel Logger::GetLevel() {
  std::lock_guard<std::mutex> lock(State().mu);
  return State().level;
}

void Logger::SetSink(Sink sink) {
  std::lock_guard<std::mutex> lock(State().mu);
  State().sink = std::move(sink);
}

void Logger::Logf(LogLevel level, const char* fmt, ...) {
  LoggerState& st = State();
  {
    std::lock_guard<std::mutex> lock(st.mu);
    if (static_cast<int>(level) < static_cast<int>(st.level)) return;
  }
  va_list ap;
  va_start(ap, fmt);
  char stack_buf[512];
  va_list ap_copy;
  va_copy(ap_copy, ap);
  int n = vsnprintf(stack_buf, sizeof(stack_buf), fmt, ap_copy);
  va_end(ap_copy);
  std::string msg;
  if (n < 0) {
    msg = "(log format error)";
  } else if (static_cast<size_t>(n) < sizeof(stack_buf)) {
    msg.assign(stack_buf, static_cast<size_t>(n));
  } else {
    std::vector<char> big(static_cast<size_t>(n) + 1);
    vsnprintf(big.data(), big.size(), fmt, ap);
    msg.assign(big.data(), static_cast<size_t>(n));
  }
  va_end(ap);

  std::lock_guard<std::mutex> lock(st.mu);
  if (st.sink) {
    st.sink(level, msg);
  } else {
    fprintf(stderr, "[%s] %s\n", LevelName(level), msg.c_str());
  }
}

}  // namespace tsb
