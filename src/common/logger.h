// Minimal leveled logger. Default sink is stderr; tests install a capture
// sink. Logging is off (kWarn) by default so benches stay quiet.
#ifndef TSBTREE_COMMON_LOGGER_H_
#define TSBTREE_COMMON_LOGGER_H_

#include <cstdarg>
#include <functional>
#include <string>

namespace tsb {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide logger configuration.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  /// Sets the minimum level that is emitted.
  static void SetLevel(LogLevel level);
  static LogLevel GetLevel();

  /// Replaces the output sink (nullptr restores the stderr sink).
  static void SetSink(Sink sink);

  /// printf-style emit; no-op if below the configured level.
  static void Logf(LogLevel level, const char* fmt, ...)
      __attribute__((format(printf, 2, 3)));
};

#define TSB_LOG_DEBUG(...) ::tsb::Logger::Logf(::tsb::LogLevel::kDebug, __VA_ARGS__)
#define TSB_LOG_INFO(...) ::tsb::Logger::Logf(::tsb::LogLevel::kInfo, __VA_ARGS__)
#define TSB_LOG_WARN(...) ::tsb::Logger::Logf(::tsb::LogLevel::kWarn, __VA_ARGS__)
#define TSB_LOG_ERROR(...) ::tsb::Logger::Logf(::tsb::LogLevel::kError, __VA_ARGS__)

}  // namespace tsb

#endif  // TSBTREE_COMMON_LOGGER_H_
