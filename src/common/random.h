// Deterministic pseudo-random generator for workloads and property tests.
// xorshift128+ — fast, seedable, reproducible across platforms.
#ifndef TSBTREE_COMMON_RANDOM_H_
#define TSBTREE_COMMON_RANDOM_H_

#include <cstdint>

namespace tsb {

/// Seedable PRNG. Not cryptographic; used only for test/bench workloads.
class Random {
 public:
  explicit Random(uint64_t seed) {
    s_[0] = seed ? seed : 0x9e3779b97f4a7c15ull;
    s_[1] = SplitMix(&s_[0]);
    s_[0] = SplitMix(&s_[1]);
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// True with probability num/den.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Skewed value in [0, n): smaller values more likely (Zipf-ish via
  /// repeated halving). `skew` halvings at most.
  uint64_t Skewed(uint64_t n, int skew = 4) {
    uint64_t range = n;
    for (int i = 0; i < skew && range > 1; ++i) {
      if (OneIn(2)) break;
      range = (range + 1) / 2;
    }
    return Uniform(range);
  }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t s_[2];
};

}  // namespace tsb

#endif  // TSBTREE_COMMON_RANDOM_H_
