#include "common/slice.h"

// Slice is header-only; this translation unit exists so the build exposes a
// stable object for the target and keeps one-definition checks honest.
namespace tsb {
namespace {
// Anchor to silence "has no symbols" linker warnings on some toolchains.
[[maybe_unused]] const char kSliceAnchor = 0;
}  // namespace
}  // namespace tsb
