// Status: the library-wide error model. Follows the LevelDB/RocksDB idiom:
// cheap-to-copy value type, no exceptions cross public API boundaries.
#ifndef TSBTREE_COMMON_STATUS_H_
#define TSBTREE_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>

namespace tsb {

/// Result of an operation that can fail. `ok()` is the success predicate;
/// every other code carries a human-readable message assembled from up to
/// two context fragments.
class Status {
 public:
  enum class Code : uint8_t {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kNotSupported = 3,
    kInvalidArgument = 4,
    kIOError = 5,
    kWriteOnceViolation = 6,  // attempt to rewrite a burned WORM sector
    kOutOfSpace = 7,
    kTxnConflict = 8,   // write-write conflict between transactions
    kTxnNotActive = 9,  // commit/abort/use of a finished transaction
    kBusy = 10,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(const std::string& msg, const std::string& msg2 = "") {
    return Status(Code::kNotFound, msg, msg2);
  }
  static Status Corruption(const std::string& msg, const std::string& msg2 = "") {
    return Status(Code::kCorruption, msg, msg2);
  }
  static Status NotSupported(const std::string& msg, const std::string& msg2 = "") {
    return Status(Code::kNotSupported, msg, msg2);
  }
  static Status InvalidArgument(const std::string& msg, const std::string& msg2 = "") {
    return Status(Code::kInvalidArgument, msg, msg2);
  }
  static Status IOError(const std::string& msg, const std::string& msg2 = "") {
    return Status(Code::kIOError, msg, msg2);
  }
  static Status WriteOnceViolation(const std::string& msg, const std::string& msg2 = "") {
    return Status(Code::kWriteOnceViolation, msg, msg2);
  }
  static Status OutOfSpace(const std::string& msg, const std::string& msg2 = "") {
    return Status(Code::kOutOfSpace, msg, msg2);
  }
  static Status TxnConflict(const std::string& msg, const std::string& msg2 = "") {
    return Status(Code::kTxnConflict, msg, msg2);
  }
  static Status TxnNotActive(const std::string& msg, const std::string& msg2 = "") {
    return Status(Code::kTxnNotActive, msg, msg2);
  }
  static Status Busy(const std::string& msg, const std::string& msg2 = "") {
    return Status(Code::kBusy, msg, msg2);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsWriteOnceViolation() const { return code_ == Code::kWriteOnceViolation; }
  bool IsOutOfSpace() const { return code_ == Code::kOutOfSpace; }
  bool IsTxnConflict() const { return code_ == Code::kTxnConflict; }
  bool IsTxnNotActive() const { return code_ == Code::kTxnNotActive; }
  bool IsBusy() const { return code_ == Code::kBusy; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  Status(Code code, const std::string& msg, const std::string& msg2)
      : code_(code), msg_(msg2.empty() ? msg : msg + ": " + msg2) {}

  Code code_;
  std::string msg_;
};

/// Evaluate `expr`; if it is a non-OK Status, return it from the enclosing
/// function. The standard early-return macro for internal plumbing.
#define TSB_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::tsb::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace tsb

#endif  // TSBTREE_COMMON_STATUS_H_
