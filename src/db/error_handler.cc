#include "db/error_handler.h"

#include <algorithm>
#include <chrono>

#include "common/logger.h"

namespace tsb {
namespace db {

const char* ErrorClassName(ErrorClass c) {
  switch (c) {
    case ErrorClass::kNone:
      return "none";
    case ErrorClass::kTransient:
      return "transient";
    case ErrorClass::kHard:
      return "hard";
  }
  return "unknown";
}

ErrorHandler::ErrorHandler(Options options, ResumeFn resume_fn)
    : options_(options), resume_fn_(std::move(resume_fn)) {
  if (options_.auto_resume && resume_fn_) {
    auto_resume_thread_ = std::thread([this] { AutoResumeLoop(); });
  }
}

ErrorHandler::~ErrorHandler() { Shutdown(); }

ErrorClass ErrorHandler::Classify(const Status& s) {
  if (s.ok()) return ErrorClass::kNone;
  // Environment failures the operator can heal: free space, reseat the
  // cable, wait out the controller reset. Everything touching data
  // integrity (corruption, a WORM sector rewrite) is hard: retrying the
  // same I/O cannot make the bytes correct.
  if (s.IsOutOfSpace() || s.IsIOError() || s.IsBusy()) {
    return ErrorClass::kTransient;
  }
  return ErrorClass::kHard;
}

void ErrorHandler::Report(const std::string& context, const Status& s) {
  if (s.ok()) return;
  ReportClassified(context, s, Classify(s));
}

void ErrorHandler::Report(const std::string& context, const Status& s,
                          ErrorClass forced) {
  if (s.ok()) return;
  ReportClassified(context, s, forced);
}

void ErrorHandler::NoteQuarantine(const std::string& context,
                                  const Status& s) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.pages_quarantined++;
    stats_.last_error = context + ": " + s.ToString();
  }
  TSB_LOG_WARN("page quarantined (%s): %s", context.c_str(),
               s.ToString().c_str());
}

void ErrorHandler::NoteRepairs(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.pages_repaired += n;
}

void ErrorHandler::ReportClassified(const std::string& context,
                                    const Status& s, ErrorClass c) {
  bool fresh = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.errors_reported++;
    stats_.last_error = context + ": " + s.ToString();
    stats_.last_class = c;
    if (resume_in_progress_) {
      // The resume has the lock dropped while repairing; park the report
      // so a success cannot silently swallow it.
      if (pending_error_.ok() ||
          (c == ErrorClass::kHard && pending_class_ != ErrorClass::kHard)) {
        pending_error_ = s;
        pending_class_ = c;
      }
    } else if (error_.ok()) {
      error_ = s;
      class_ = c;
      error_epoch_++;
      stats_.degradations++;
      fresh = true;
    } else if (c == ErrorClass::kHard && class_ != ErrorClass::kHard) {
      // Severity upgrade: the cause on record was resumable, the new one
      // is not. Keep the DB degraded but close the resume door.
      error_ = s;
      class_ = c;
    }
  }
  if (fresh) {
    TSB_LOG_ERROR(
        "background error (%s, %s): entering degraded read-only mode: %s",
        context.c_str(), ErrorClassName(c), s.ToString().c_str());
  }
  cv_.notify_all();
}

Status ErrorHandler::BackgroundError() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

bool ErrorHandler::degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !error_.ok();
}

ErrorClass ErrorHandler::error_class() const {
  std::lock_guard<std::mutex> lock(mu_);
  return class_;
}

Status ErrorHandler::Resume() {
  std::unique_lock<std::mutex> lock(mu_);
  return ResumeLocked(lock, /*auto_initiated=*/false);
}

Status ErrorHandler::ResumeLocked(std::unique_lock<std::mutex>& lock,
                                  bool auto_initiated) {
  while (resume_in_progress_) cv_.wait(lock);
  if (shutdown_) return Status::Busy("error handler is shut down");
  if (error_.ok()) return Status::OK();
  if (class_ == ErrorClass::kHard) {
    // Not a policy knob: replaying the same writes over corrupt state
    // cannot repair it. The operator reopens (running recovery) instead.
    return error_;
  }
  resume_in_progress_ = true;
  lock.unlock();
  Status s = resume_fn_ ? resume_fn_() : Status::OK();
  lock.lock();
  resume_in_progress_ = false;
  if (s.ok()) {
    stats_.resumes++;
    if (auto_initiated) stats_.auto_resumes++;
    error_ = Status::OK();
    class_ = ErrorClass::kNone;
    if (!pending_error_.ok()) {
      // Something else failed while we repaired: degrade again right away.
      error_ = pending_error_;
      class_ = pending_class_;
      pending_error_ = Status::OK();
      pending_class_ = ErrorClass::kNone;
      error_epoch_++;
      stats_.degradations++;
      s = error_;
    } else {
      TSB_LOG_INFO("degraded mode lifted (%s resume)",
                   auto_initiated ? "auto" : "manual");
    }
  } else {
    stats_.failed_resumes++;
    TSB_LOG_WARN("resume attempt failed: %s", s.ToString().c_str());
  }
  cv_.notify_all();
  return s;
}

void ErrorHandler::AutoResumeLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t handled_epoch = 0;
  uint32_t attempt = 0;
  while (!shutdown_) {
    const bool actionable = !error_.ok() && class_ == ErrorClass::kTransient;
    if (!actionable) {
      cv_.wait(lock);
      continue;
    }
    if (handled_epoch != error_epoch_) {
      handled_epoch = error_epoch_;
      attempt = 0;
    }
    if (options_.max_retries > 0 && attempt >= options_.max_retries) {
      // Budget exhausted for this degradation; only a manual Resume() or
      // a fresh error epoch restarts the clock.
      cv_.wait(lock);
      continue;
    }
    uint64_t delay_ms = static_cast<uint64_t>(options_.backoff_initial_ms)
                        << std::min<uint32_t>(attempt, 16);
    delay_ms = std::min<uint64_t>(
        std::max<uint64_t>(delay_ms, 1),
        std::max<uint32_t>(options_.backoff_max_ms, 1));
    const uint64_t epoch = error_epoch_;
    cv_.wait_for(lock, std::chrono::milliseconds(delay_ms));
    if (shutdown_) break;
    if (error_.ok() || class_ != ErrorClass::kTransient) continue;
    if (epoch != error_epoch_) continue;  // new cause: restart the backoff
    attempt++;
    (void)ResumeLocked(lock, /*auto_initiated=*/true);
  }
}

ErrorHandlerStats ErrorHandler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ErrorHandler::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
    cv_.notify_all();
    // A manual Resume() may be mid-repair; let it finish so resume_fn_'s
    // structures are quiescent when the caller starts tearing them down.
    while (resume_in_progress_) cv_.wait(lock);
  }
  if (auto_resume_thread_.joinable()) auto_resume_thread_.join();
}

}  // namespace db
}  // namespace tsb
