// Background-error state machine: how the DB survives a sick disk.
//
// Any failed background or commit-path I/O — a page write, a WAL append
// or fdatasync, a checkpoint step, a manifest rename — is reported here
// and becomes a STICKY BackgroundError(): the DB transitions to degraded
// read-only mode. Reads, cursors and snapshots keep serving from the
// buffer pool and the already-durable on-disk state; Write / Checkpoint /
// Flush fail fast with the original cause until the error is cleared.
//
// Errors are classified:
//   - kTransient (ENOSPC, plain EIO/sync failures): the medium may heal —
//     space freed, a cable reseated. Resume() repairs the in-memory /
//     on-log state and lifts degraded mode; with auto_resume enabled a
//     background thread retries Resume() on a bounded exponential backoff.
//   - kHard (corruption, write-once violations, invalid state): retrying
//     cannot make the data correct. Resume() refuses; the DB stays
//     read-only until reopened (and likely repaired) by the operator.
//
// The fsync contract deserves emphasis: after a FAILED fdatasync the
// kernel may have dropped the dirty pages and cleared the error, so a
// retry that "succeeds" proves nothing. The resume path therefore never
// re-syncs the poisoned log; it re-establishes durability from trusted
// state (memory pages -> recovery-grade checkpoint) and rotates to a
// fresh WAL file. See MultiVersionDB::ResumeImpl.
#ifndef TSBTREE_DB_ERROR_HANDLER_H_
#define TSBTREE_DB_ERROR_HANDLER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"

namespace tsb {
namespace db {

enum class ErrorClass : uint8_t {
  kNone = 0,
  /// The environment may heal (ENOSPC, transient EIO): Resume() can lift
  /// degraded mode, and auto-resume retries it in the background.
  kTransient = 1,
  /// Data-integrity class (corruption, WORM violation): auto-resume never
  /// fires and Resume() refuses; reopen/repair is the only way out.
  kHard = 2,
};

const char* ErrorClassName(ErrorClass c);

/// Counters surfaced through MultiVersionDB::error_stats() and the
/// durability bench's "fault" JSON section.
struct ErrorHandlerStats {
  uint64_t errors_reported = 0;   ///< Report() calls with a non-OK status
  uint64_t degradations = 0;      ///< healthy -> degraded transitions
  uint64_t resumes = 0;           ///< successful Resume() completions
  uint64_t auto_resumes = 0;      ///< resumes initiated by the backoff thread
  uint64_t failed_resumes = 0;    ///< Resume() attempts that did not clear
  uint64_t pages_quarantined = 0; ///< NoteQuarantine() calls (corrupt pages)
  uint64_t pages_repaired = 0;    ///< quarantined pages repaired by Resume()
  ErrorClass last_class = ErrorClass::kNone;
  std::string last_error;         ///< ToString() of the most recent report
};

/// DB-level sticky error state. Thread-safe; shared by every component
/// that can fail in the background (WAL, buffer pool, checkpointer) via
/// the DB's Report() plumbing.
class ErrorHandler {
 public:
  struct Options {
    /// Spawn a thread that retries Resume() after a transient error.
    bool auto_resume = false;
    uint32_t backoff_initial_ms = 100;
    uint32_t backoff_max_ms = 5000;
    /// 0 = retry until it works (or a hard error / shutdown intervenes).
    uint32_t max_retries = 0;
  };

  /// `resume_fn` performs the actual repair (MultiVersionDB::ResumeImpl);
  /// the handler serializes calls to it and owns the retry policy.
  using ResumeFn = std::function<Status()>;

  ErrorHandler(Options options, ResumeFn resume_fn);
  ~ErrorHandler();

  ErrorHandler(const ErrorHandler&) = delete;
  ErrorHandler& operator=(const ErrorHandler&) = delete;

  /// Escalates a failed background/commit-path operation. The first error
  /// becomes the sticky cause; later reports bump counters only — except a
  /// kHard report over a kTransient cause, which upgrades the class so a
  /// disk that went from "full" to "corrupting" is no longer resumable.
  /// Flips the DB into degraded mode and kicks the auto-resume thread for
  /// the transient class. `context` names the failing op for the log.
  void Report(const std::string& context, const Status& s);

  /// Report with an explicit class instead of Classify(s). The scrubber
  /// uses this for WAL-tail corruption: Corruption would classify kHard,
  /// but the committed state lives in memory and a resume-grade checkpoint
  /// onto a fresh log file fully repairs it — so it reports kTransient.
  void Report(const std::string& context, const Status& s, ErrorClass forced);

  /// Records a corrupt page entering quarantine. Deliberately does NOT
  /// degrade the DB: a quarantined page fails only the reads that touch
  /// it (the load path returns the Corruption), everything else keeps
  /// serving — the page's blast radius is the keys it covers.
  void NoteQuarantine(const std::string& context, const Status& s);

  /// Records `n` quarantined pages repaired (journal-image restore).
  void NoteRepairs(uint64_t n);

  /// The sticky cause, or OK when healthy. Write paths gate on this.
  Status BackgroundError() const;
  bool degraded() const;
  ErrorClass error_class() const;

  /// Manually attempts recovery. Serialized against auto-resume; refuses
  /// kHard errors with the original cause. On success the sticky error
  /// clears and writes are accepted again.
  Status Resume();

  ErrorHandlerStats stats() const;

  /// Stops the auto-resume thread and rejects future resumes. Call before
  /// tearing down the structures resume_fn touches (the DB destructor
  /// shuts the handler down first, then reports destructor-path failures
  /// with the thread guaranteed quiescent).
  void Shutdown();

 private:
  static ErrorClass Classify(const Status& s);
  void ReportClassified(const std::string& context, const Status& s,
                        ErrorClass c);
  Status ResumeLocked(std::unique_lock<std::mutex>& lock, bool auto_initiated);
  void AutoResumeLoop();

  const Options options_;
  const ResumeFn resume_fn_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Status error_;                   // sticky; OK == healthy
  ErrorClass class_ = ErrorClass::kNone;
  bool resume_in_progress_ = false;
  bool shutdown_ = false;
  uint64_t error_epoch_ = 0;       // bumped per degradation; wakes the thread
  // A report that lands while resume_fn_ is running (lock dropped) must
  // not be lost when the resume clears error_: it parks here and
  // re-degrades the DB the moment the resume completes.
  Status pending_error_;
  ErrorClass pending_class_ = ErrorClass::kNone;
  ErrorHandlerStats stats_;

  std::thread auto_resume_thread_;
};

}  // namespace db
}  // namespace tsb

#endif  // TSBTREE_DB_ERROR_HANDLER_H_
