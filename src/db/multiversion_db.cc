#include "db/multiversion_db.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/coding.h"
#include "common/crc32c.h"
#include "storage/append_store.h"
#include "storage/file_device.h"
#include "storage/worm_file_device.h"

namespace tsb {
namespace db {

Status MultiVersionDB::Open(Device* magnetic, Device* historical,
                            const DbOptions& options,
                            std::unique_ptr<MultiVersionDB>* out) {
  std::unique_ptr<MultiVersionDB> mvdb(new MultiVersionDB(options));
  TSB_RETURN_IF_ERROR(tsb_tree::TsbTree::Open(magnetic, historical,
                                              options.tree, &mvdb->tree_));
  mvdb->txns_ = std::make_unique<txn::TxnManager>(mvdb->tree_.get());
  // No commit hook yet: it is installed lazily with the first secondary
  // index (InstallCommitHook). A hook forces commits onto the serial
  // path, so an index-less DB keeps concurrent commits available.
  *out = std::move(mvdb);
  return Status::OK();
}

void MultiVersionDB::InstallCommitHook() {
  if (hook_installed_) return;
  hook_installed_ = true;
  MultiVersionDB* raw = this;
  txns_->SetCommitHook(
      [raw](const std::string& key, const std::string* old_value,
            const std::string& new_value, Timestamp ts) {
        return raw->OnCommit(key, old_value, new_value, ts);
      });
}

namespace {

constexpr char kManifestName[] = "MANIFEST";

/// The manifest records the device geometry a path-backed database was
/// created with, so reopen verifies it instead of relying on caller
/// discipline: a mismatched page size or WORM sector grid would silently
/// corrupt (or refuse) the stored files. Hard geometry (page_size,
/// worm_historical, worm_sector_size) is ENFORCED; enable_mmap is a pure
/// read-path choice with no on-disk footprint, so it is recorded for
/// diagnostics and refreshed when it changes.
struct Manifest {
  uint32_t page_size = 0;
  bool worm_historical = false;
  uint32_t worm_sector_size = 0;
  bool enable_mmap = false;
  /// Names of the secondary indexes whose device files live in the
  /// directory. Open re-attaches each one so index data never becomes an
  /// orphaned pair of .tsb files after a reopen.
  std::vector<std::string> indexes;
};

std::string ManifestPath(const std::string& dir) {
  return dir + "/" + kManifestName;
}

Status WriteManifest(const std::string& dir, const DbOptions& options,
                     const std::vector<std::string>& indexes) {
  char head[256];
  snprintf(head, sizeof(head),
           "tsb-manifest v1\n"
           "page_size=%u\n"
           "worm_historical=%d\n"
           "worm_sector_size=%u\n"
           "enable_mmap=%d\n",
           options.tree.page_size, options.worm_historical ? 1 : 0,
           options.worm_sector_size, options.enable_mmap ? 1 : 0);
  std::string body = head;
  for (const std::string& name : indexes) {
    body += "index=" + name + "\n";
  }
  // Write-temp-fsync-rename: a crash never leaves a torn manifest behind
  // (without the fsync, the rename can survive a power cut while the
  // data blocks do not, leaving an empty MANIFEST that fails every
  // subsequent Open).
  const std::string tmp = ManifestPath(dir) + ".tmp";
  FILE* f = fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("create " + tmp, strerror(errno));
  }
  const bool wrote = fwrite(body.data(), 1, body.size(), f) == body.size() &&
                     fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  fclose(f);
  if (!wrote) return Status::IOError("write " + tmp, strerror(errno));
  if (::rename(tmp.c_str(), ManifestPath(dir).c_str()) != 0) {
    return Status::IOError("rename " + tmp, strerror(errno));
  }
  return Status::OK();
}

Status ReadManifest(const std::string& dir, bool* exists, Manifest* out) {
  *exists = false;
  FILE* f = fopen(ManifestPath(dir).c_str(), "r");
  if (f == nullptr) {
    if (errno == ENOENT) return Status::OK();
    return Status::IOError("open " + ManifestPath(dir), strerror(errno));
  }
  char line[128];
  bool header_ok = false;
  while (fgets(line, sizeof(line), f) != nullptr) {
    if (!header_ok) {
      if (strncmp(line, "tsb-manifest v1", 15) != 0) break;
      header_ok = true;
      continue;
    }
    unsigned value = 0;
    if (sscanf(line, "page_size=%u", &value) == 1) {
      out->page_size = value;
    } else if (sscanf(line, "worm_historical=%u", &value) == 1) {
      out->worm_historical = value != 0;
    } else if (sscanf(line, "worm_sector_size=%u", &value) == 1) {
      out->worm_sector_size = value;
    } else if (sscanf(line, "enable_mmap=%u", &value) == 1) {
      out->enable_mmap = value != 0;
    } else if (strncmp(line, "index=", 6) == 0) {
      std::string name(line + 6);
      while (!name.empty() && (name.back() == '\n' || name.back() == '\r')) {
        name.pop_back();
      }
      if (!name.empty()) out->indexes.push_back(std::move(name));
    }
  }
  fclose(f);
  if (!header_ok) {
    return Status::Corruption("unrecognized manifest", ManifestPath(dir));
  }
  *exists = true;
  return Status::OK();
}

/// Creates the manifest on first open; on reopen verifies the recorded
/// geometry against `options` and fails fast BEFORE any device file is
/// touched with the wrong parameters.
Status CheckOrWriteManifest(const std::string& dir, const DbOptions& options,
                            Manifest* out) {
  bool exists = false;
  Manifest& m = *out;
  TSB_RETURN_IF_ERROR(ReadManifest(dir, &exists, &m));
  if (exists) {
    // The manifest is only authoritative once a device file exists: if a
    // first Open wrote the manifest and then failed to create its
    // devices (disk full, permissions), the recorded geometry guards
    // nothing and must not lock out a retry with corrected options.
    struct stat st;
    if (::stat((dir + "/current.tsb").c_str(), &st) != 0) exists = false;
  }
  if (!exists) {
    m.indexes.clear();
    return WriteManifest(dir, options, m.indexes);
  }
  if (m.page_size != options.tree.page_size) {
    return Status::InvalidArgument(
        "page_size mismatch with manifest",
        "manifest " + std::to_string(m.page_size) + " vs options " +
            std::to_string(options.tree.page_size));
  }
  if (m.worm_historical != options.worm_historical) {
    return Status::InvalidArgument(
        "worm_historical mismatch with manifest",
        m.worm_historical ? "database was created write-once"
                          : "database was created erasable");
  }
  if (options.worm_historical &&
      m.worm_sector_size != options.worm_sector_size) {
    return Status::InvalidArgument(
        "worm_sector_size mismatch with manifest",
        "manifest " + std::to_string(m.worm_sector_size) + " vs options " +
            std::to_string(options.worm_sector_size));
  }
  if (m.enable_mmap != options.enable_mmap) {
    // Read-path choice, not geometry: allowed, but keep the record fresh
    // (preserving the index catalog).
    return WriteManifest(dir, options, m.indexes);
  }
  return Status::OK();
}

// ---- verified-blob sidecar -------------------------------------------
//
// The historical store CRC-checks each blob once, on its first mapped
// pin, then serves it zero-copy forever (the bytes are immutable). That
// memo used to die with the process: every reopen re-paid one checksum
// pass per blob before cold reads reached memory speed. The sidecar
// persists the memo. Format (all little-endian):
//   [u32 magic "TSBV"][u32 version][u64 store_size][u64 count]
//   [count x u64 sorted offsets][u32 masked crc32c of preceding bytes]

constexpr char kVerifiedSidecarName[] = "verified.tsb";
constexpr uint32_t kVerifiedMagic = 0x56425354;  // "TSBV"
constexpr uint32_t kVerifiedVersion = 1;
constexpr size_t kVerifiedHeaderSize = 24;

Status WriteVerifiedSidecar(const std::string& dir, AppendStore* hist) {
  std::vector<uint64_t> offsets;
  uint64_t store_size = 0;
  hist->SnapshotVerified(&offsets, &store_size);
  std::string body;
  body.reserve(kVerifiedHeaderSize + offsets.size() * 8 + 4);
  PutFixed32(&body, kVerifiedMagic);
  PutFixed32(&body, kVerifiedVersion);
  PutFixed64(&body, store_size);
  PutFixed64(&body, offsets.size());
  for (const uint64_t off : offsets) PutFixed64(&body, off);
  PutFixed32(&body, crc32c::Mask(crc32c::Value(body.data(), body.size())));
  // The tmp name keeps the .tsb suffix so Destroy recognizes a leftover
  // from a crashed rename as ours.
  const std::string file = dir + "/" + kVerifiedSidecarName;
  const std::string tmp = dir + "/verified.tmp.tsb";
  FILE* f = fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IOError("create " + tmp, strerror(errno));
  const bool wrote = fwrite(body.data(), 1, body.size(), f) == body.size() &&
                     fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  fclose(f);
  if (!wrote) return Status::IOError("write " + tmp, strerror(errno));
  if (::rename(tmp.c_str(), file.c_str()) != 0) {
    return Status::IOError("rename " + tmp, strerror(errno));
  }
  return Status::OK();
}

/// Seeds the verified set from the sidecar. Purely a performance hint:
/// any validation failure just means cold pins re-verify lazily, so
/// every suspect condition is a silent return, never an Open error.
void LoadVerifiedSidecar(const std::string& dir, AppendStore* hist) {
  FILE* f = fopen((dir + "/" + kVerifiedSidecarName).c_str(), "rb");
  if (f == nullptr) return;
  std::string body;
  char buf[1 << 16];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) body.append(buf, n);
  fclose(f);
  if (body.size() < kVerifiedHeaderSize + 4) return;
  const size_t crc_pos = body.size() - 4;
  if (crc32c::Value(body.data(), crc_pos) !=
      crc32c::Unmask(DecodeFixed32(body.data() + crc_pos))) {
    return;
  }
  const char* p = body.data();
  if (DecodeFixed32(p) != kVerifiedMagic) return;
  if (DecodeFixed32(p + 4) != kVerifiedVersion) return;
  const uint64_t store_size = DecodeFixed64(p + 8);
  const uint64_t count = DecodeFixed64(p + 16);
  if (count != (body.size() - kVerifiedHeaderSize - 4) / 8 ||
      body.size() != kVerifiedHeaderSize + count * 8 + 4) {
    return;
  }
  // A snapshot larger than the store can only describe a different file;
  // the store is append-only, so a valid snapshot never shrinks.
  if (store_size > hist->device_bytes()) return;
  std::vector<uint64_t> offsets;
  offsets.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    offsets.push_back(DecodeFixed64(p + kVerifiedHeaderSize + i * 8));
  }
  hist->PreloadVerified(offsets);
}

/// Opens the file-backed historical device per options: WORM sector
/// semantics when requested, else a plain erasable file that still pays
/// optical cost parameters (the simulated 1989 archive medium).
Status OpenHistoricalFile(const std::string& file, const DbOptions& options,
                          std::unique_ptr<Device>* out) {
  if (options.worm_historical) {
    WormFileDevice* dev = nullptr;
    TSB_RETURN_IF_ERROR(WormFileDevice::Open(file, &dev,
                                             options.worm_sector_size,
                                             CostParams::OpticalWorm(),
                                             options.enable_mmap));
    out->reset(dev);
    return Status::OK();
  }
  FileDevice* dev = nullptr;
  TSB_RETURN_IF_ERROR(FileDevice::Open(file, &dev,
                                       DeviceKind::kOpticalErasable,
                                       CostParams::OpticalWorm(),
                                       options.enable_mmap));
  out->reset(dev);
  return Status::OK();
}

}  // namespace

Status MultiVersionDB::Open(const std::string& path, const DbOptions& options,
                            std::unique_ptr<MultiVersionDB>* out) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    // Only a genuinely absent path is a create candidate; EACCES/ENOTDIR
    // and friends are real errors, not "missing database".
    if (errno != ENOENT) {
      return Status::IOError("stat " + path, strerror(errno));
    }
    if (!options.create_if_missing) {
      return Status::IOError("no such database", path);
    }
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IOError("mkdir " + path, strerror(errno));
    }
  } else if (!S_ISDIR(st.st_mode)) {
    return Status::InvalidArgument("database path is not a directory", path);
  }

  // Geometry gate: verify (or create) the manifest before any device file
  // is opened with possibly-wrong parameters.
  Manifest manifest;
  TSB_RETURN_IF_ERROR(CheckOrWriteManifest(path, options, &manifest));

  FileDevice* mag = nullptr;
  TSB_RETURN_IF_ERROR(FileDevice::Open(path + "/current.tsb", &mag,
                                       DeviceKind::kMagnetic,
                                       CostParams::Magnetic(),
                                       options.enable_mmap));
  std::unique_ptr<Device> magnetic(mag);
  std::unique_ptr<Device> historical;
  TSB_RETURN_IF_ERROR(
      OpenHistoricalFile(path + "/history.tsb", options, &historical));

  std::unique_ptr<MultiVersionDB> mvdb;
  TSB_RETURN_IF_ERROR(Open(magnetic.get(), historical.get(), options, &mvdb));
  mvdb->path_ = path;
  mvdb->owned_magnetic_ = std::move(magnetic);
  mvdb->owned_historical_ = std::move(historical);

  // Re-attach every cataloged secondary index: with the registry extractor
  // when options provide one, extractor-less otherwise (readable via
  // FindBySecondary, unwritable until CreateSecondaryIndex binds code).
  for (const std::string& name : manifest.indexes) {
    KeyExtractor extract;
    auto reg = options.index_extractors.find(name);
    if (reg != options.index_extractors.end()) extract = reg->second;
    TSB_RETURN_IF_ERROR(mvdb->RegisterIndex(name, std::move(extract),
                                            /*from_catalog=*/true,
                                            /*magnetic=*/nullptr,
                                            /*historical=*/nullptr));
  }

  // Warm-start hint: seed the historical store's verified-blob memo so
  // cold mapped reads skip the per-blob first-pin checksum pass.
  LoadVerifiedSidecar(path, mvdb->tree_->hist_store());

  *out = std::move(mvdb);
  return Status::OK();
}

MultiVersionDB::~MultiVersionDB() {
  // Best-effort: losing the sidecar only costs re-verification after the
  // next open, so a failed write must not throw from a destructor path.
  if (!path_.empty() && tree_ != nullptr) {
    (void)WriteVerifiedSidecar(path_, tree_->hist_store());
  }
}

Status MultiVersionDB::Destroy(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    if (errno == ENOENT) return Status::OK();  // nothing to destroy
    return Status::IOError("opendir " + path, strerror(errno));
  }
  Status status = Status::OK();
  const std::string suffix = ".tsb";
  while (struct dirent* e = ::readdir(dir)) {
    const std::string name = e->d_name;
    const bool manifest = name == kManifestName ||
                          name == std::string(kManifestName) + ".tmp";
    const bool device_file =
        name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
    if (!manifest && !device_file) {
      continue;  // not ours; the rmdir below will surface it
    }
    const std::string file = path + "/" + name;
    if (::unlink(file.c_str()) != 0) {
      status = Status::IOError("unlink " + file, strerror(errno));
    }
  }
  ::closedir(dir);
  TSB_RETURN_IF_ERROR(status);
  if (::rmdir(path.c_str()) != 0) {
    return Status::IOError("rmdir " + path, strerror(errno));
  }
  return Status::OK();
}

// ---------------------------------------------------------------- writes

Status MultiVersionDB::Write(const WriteBatch& batch, Timestamp* commit_ts) {
  return txns_->Write(batch, commit_ts);
}

Status MultiVersionDB::Put(const Slice& key, const Slice& value,
                           Timestamp* commit_ts) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(batch, commit_ts);
}

// ---------------------------------------------------------------- reads

Status MultiVersionDB::Get(const ReadOptions& options, const Slice& key,
                           std::string* value, Timestamp* ts) {
  return tree_->Get(options, key, value, ts);
}

Status MultiVersionDB::Get(const ReadOptions& options, const Slice& key,
                           PinnableValue* value) {
  return tree_->Get(options, key, value);
}

Status MultiVersionDB::Get(const Slice& key, std::string* value,
                           Timestamp* ts) {
  // Default ReadOptions read at the committed watermark: a reader must
  // never observe the partial stamps of an in-flight (or failed)
  // transaction. Quiesced, this is identical to a latest-version read.
  return Get(ReadOptions(), key, value, ts);
}

Status MultiVersionDB::GetAsOf(const Slice& key, Timestamp t,
                               std::string* value, Timestamp* ts) {
  ReadOptions options;
  options.as_of = t;
  return Get(options, key, value, ts);
}

std::unique_ptr<VersionCursor> MultiVersionDB::NewCursor(
    const ReadOptions& options) {
  return tree_->NewCursor(options);
}

std::unique_ptr<tsb_tree::SnapshotIterator> MultiVersionDB::NewSnapshotIterator(
    Timestamp t) {
  return tree_->NewSnapshotIterator(t);
}

std::unique_ptr<tsb_tree::HistoryIterator> MultiVersionDB::NewHistoryIterator(
    const Slice& key) {
  return tree_->NewHistoryIterator(key);
}

// ---------------------------------------------------------------- indexes

Status MultiVersionDB::CreateSecondaryIndex(const std::string& name,
                                            KeyExtractor extract,
                                            Device* magnetic,
                                            Device* historical) {
  return RegisterIndex(name, std::move(extract), /*from_catalog=*/false,
                       magnetic, historical);
}

Status MultiVersionDB::PersistManifest() {
  if (path_.empty()) return Status::OK();
  std::vector<std::string> names;
  names.reserve(indexes_.size());
  for (const auto& [name, def] : indexes_) names.push_back(name);
  return WriteManifest(path_, options_, names);
}

Status MultiVersionDB::RegisterIndex(const std::string& name,
                                     KeyExtractor extract, bool from_catalog,
                                     Device* magnetic, Device* historical) {
  // Index names become file names and MANIFEST lines.
  if (name.empty() || name.find('/') != std::string::npos ||
      name.find('\n') != std::string::npos) {
    return Status::InvalidArgument("invalid index name", name);
  }
  auto existing = indexes_.find(name);
  if (existing != indexes_.end()) {
    if (!existing->second.from_catalog) {
      return Status::InvalidArgument("index already exists", name);
    }
    // Cataloged index re-attached at Open: this call binds its extractor
    // (extractors are code and cannot persist in the MANIFEST).
    existing->second.extract = std::move(extract);
    existing->second.from_catalog = false;
    return Status::OK();
  }
  IndexEntryDef def;
  def.extract = std::move(extract);
  def.from_catalog = from_catalog;
  if (magnetic == nullptr) {
    if (!path_.empty()) {
      // Path-backed DB: the index persists alongside the primary.
      FileDevice* dev = nullptr;
      TSB_RETURN_IF_ERROR(FileDevice::Open(
          path_ + "/index-" + name + ".current.tsb", &dev,
          DeviceKind::kMagnetic, CostParams::Magnetic(),
          options_.enable_mmap));
      def.owned_magnetic.reset(dev);
    } else {
      def.owned_magnetic = std::make_unique<MemDevice>();
    }
    magnetic = def.owned_magnetic.get();
  }
  if (historical == nullptr) {
    if (!path_.empty()) {
      FileDevice* dev = nullptr;
      TSB_RETURN_IF_ERROR(FileDevice::Open(
          path_ + "/index-" + name + ".hist.tsb", &dev,
          DeviceKind::kOpticalErasable, CostParams::OpticalWorm(),
          options_.enable_mmap));
      def.owned_historical.reset(dev);
    } else {
      def.owned_historical = std::make_unique<MemDevice>(
          DeviceKind::kOpticalErasable, CostParams::OpticalWorm());
    }
    historical = def.owned_historical.get();
  }
  std::unique_ptr<tsb_tree::TsbTree> tree;
  TSB_RETURN_IF_ERROR(
      tsb_tree::TsbTree::Open(magnetic, historical, options_.tree, &tree));
  def.index = std::make_unique<SecondaryIndex>(std::move(tree));
  indexes_.emplace(name, std::move(def));
  // The hook goes in with the FIRST index (even an extractor-less one:
  // OnCommit must be able to reject writes it cannot maintain).
  InstallCommitHook();
  if (!from_catalog) {
    // A newly created index enters the catalog so reopen re-attaches it.
    TSB_RETURN_IF_ERROR(PersistManifest());
  }
  return Status::OK();
}

SecondaryIndex* MultiVersionDB::index(const std::string& name) {
  auto it = indexes_.find(name);
  return it == indexes_.end() ? nullptr : it->second.index.get();
}

Status MultiVersionDB::OnCommit(const std::string& key,
                                const std::string* old_value,
                                const std::string& new_value, Timestamp ts) {
  for (auto& [name, def] : indexes_) {
    if (!def.extract) {
      // Letting the write through would silently leave this index stale
      // (= corrupt). Rejecting makes it a loud schema-setup error: bind
      // the extractor (DbOptions::index_extractors or
      // CreateSecondaryIndex) before writing.
      return Status::InvalidArgument("secondary index has no extractor",
                                     name);
    }
    std::optional<std::string> old_sk;
    if (old_value != nullptr) old_sk = def.extract(Slice(*old_value));
    std::optional<std::string> new_sk = def.extract(Slice(new_value));
    if (old_sk == new_sk) continue;  // secondary field unchanged
    if (old_sk.has_value()) {
      TSB_RETURN_IF_ERROR(def.index->Remove(*old_sk, key, ts));
    }
    if (new_sk.has_value()) {
      TSB_RETURN_IF_ERROR(def.index->Add(*new_sk, key, ts));
    }
  }
  return Status::OK();
}

Status MultiVersionDB::FindBySecondary(
    const ReadOptions& options, const std::string& index_name,
    const Slice& secondary,
    std::vector<std::pair<std::string, std::string>>* key_values) {
  key_values->clear();
  SecondaryIndex* idx = index(index_name);
  if (idx == nullptr) {
    return Status::InvalidArgument("no such index", index_name);
  }
  // Resolve the sentinel ONCE against the primary's watermark so the
  // index lookup and the primary fetches observe the same time.
  const Timestamp t = tree_->ResolveAsOf(options.as_of);
  std::vector<std::string> pks;
  TSB_RETURN_IF_ERROR(idx->LookupAsOf(secondary, t, &pks));
  ReadOptions fetch = options;
  fetch.as_of = t;
  for (const std::string& pk : pks) {
    std::string value;
    // The timestamps in the secondary index locate the primary version
    // (section 3.6): read the primary record as of the same time.
    Status s = tree_->Get(fetch, pk, &value);
    if (s.IsNotFound()) continue;  // index entry newer than primary? skip
    TSB_RETURN_IF_ERROR(s);
    key_values->emplace_back(pk, std::move(value));
  }
  return Status::OK();
}

Status MultiVersionDB::FindBySecondaryAsOf(
    const std::string& index_name, const Slice& secondary, Timestamp t,
    std::vector<std::pair<std::string, std::string>>* key_values) {
  ReadOptions options;
  options.as_of = t;
  return FindBySecondary(options, index_name, secondary, key_values);
}

// ---------------------------------------------------------------- stats

HistReadStats MultiVersionDB::HistStats() const {
  HistReadStats s = tree_->HistStats();
  for (const auto& [name, def] : indexes_) {
    s.Add(def.index->tree()->HistStats());
  }
  return s;
}

BufferPoolStats MultiVersionDB::PoolStats() const {
  BufferPoolStats s = tree_->PoolStats();
  for (const auto& [name, def] : indexes_) {
    s.Add(def.index->tree()->PoolStats());
  }
  return s;
}

Status MultiVersionDB::Flush() {
  TSB_RETURN_IF_ERROR(tree_->Flush());
  for (auto& [name, def] : indexes_) {
    TSB_RETURN_IF_ERROR(def.index->tree()->Flush());
  }
  if (!path_.empty()) {
    // Persist the verified-blob memo with the data it describes.
    TSB_RETURN_IF_ERROR(WriteVerifiedSidecar(path_, tree_->hist_store()));
  }
  return Status::OK();
}

}  // namespace db
}  // namespace tsb
