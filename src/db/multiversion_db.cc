#include "db/multiversion_db.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <set>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/fsync_dir.h"
#include "common/logger.h"
#include "storage/append_store.h"
#include "storage/file_device.h"
#include "storage/worm_file_device.h"
#include "wal/checkpoint.h"

namespace tsb {
namespace db {

Status MultiVersionDB::Open(Device* magnetic, Device* historical,
                            const DbOptions& options,
                            std::unique_ptr<MultiVersionDB>* out) {
  std::unique_ptr<MultiVersionDB> mvdb(new MultiVersionDB(options));
  if (options.shared_clock != nullptr) {
    // The DB's options_ copy holds the shared_ptr, so the raw pointer the
    // tree keeps stays valid for the tree's whole life.
    mvdb->options_.tree.external_clock = options.shared_clock.get();
  }
  TSB_RETURN_IF_ERROR(tsb_tree::TsbTree::Open(magnetic, historical,
                                              mvdb->options_.tree,
                                              &mvdb->tree_));
  mvdb->txns_ = std::make_unique<txn::TxnManager>(mvdb->tree_.get());
  // No commit hook yet: it is installed lazily with the first secondary
  // index (InstallCommitHook). A hook forces commits onto the serial
  // path, so an index-less DB keeps concurrent commits available.
  mvdb->SetupErrorHandler();
  mvdb->InstallCorruptionReporter("primary", mvdb->tree_.get());
  *out = std::move(mvdb);
  return Status::OK();
}

void MultiVersionDB::SetupErrorHandler() {
  ErrorHandler::Options eh;
  eh.auto_resume = options_.auto_resume;
  eh.backoff_initial_ms = options_.auto_resume_backoff_initial_ms;
  eh.backoff_max_ms = options_.auto_resume_backoff_max_ms;
  eh.max_retries = options_.auto_resume_max_retries;
  MultiVersionDB* raw = this;
  errors_ = std::make_unique<ErrorHandler>(
      eh, [raw] { return raw->ResumeImpl(); });
  // Commits fail fast with the sticky cause while degraded, and commit
  // failures that sicken the database (append failures, anything after
  // the timestamp ticked) escalate here.
  txns_->SetCommitGate([raw] { return raw->errors_->BackgroundError(); });
  txns_->SetErrorReporter([raw](const std::string& context, const Status& s) {
    raw->errors_->Report(context, s);
  });
}

void MultiVersionDB::InstallCorruptionReporter(const std::string& tree_name,
                                               tsb_tree::TsbTree* tree) {
  tree->pager()->set_verify_on_read(options_.paranoid_checks);
  MultiVersionDB* raw = this;
  // Fires on every corrupt buffer-pool miss read (outside pager locks):
  // the page goes into quarantine, the read that tripped it fails with
  // the corruption, everything else keeps serving.
  tree->pager()->set_corruption_reporter(
      [raw, tree_name](uint32_t page_id, const Status& s) {
        raw->AddQuarantine(tree_name, page_id, s);
      });
}

void MultiVersionDB::InstallWalReporter(wal::Wal* wal) {
  MultiVersionDB* raw = this;
  wal->SetSyncErrorReporter([raw](const Status& s) {
    // Covers the background flusher too — a sync failure no commit path
    // ever observes must still degrade the DB.
    raw->errors_->Report("wal sync", s);
  });
}

void MultiVersionDB::InstallCommitHook() {
  if (hook_installed_) return;
  hook_installed_ = true;
  MultiVersionDB* raw = this;
  txns_->SetCommitHook(
      [raw](const std::string& key, const std::string* old_value,
            const std::string& new_value, Timestamp ts) {
        return raw->OnCommit(key, old_value, new_value, ts);
      });
}

namespace {

constexpr char kManifestName[] = "MANIFEST";

/// The manifest records the device geometry a path-backed database was
/// created with, so reopen verifies it instead of relying on caller
/// discipline: a mismatched page size or WORM sector grid would silently
/// corrupt (or refuse) the stored files. Hard geometry (page_size,
/// worm_historical, worm_sector_size) is ENFORCED; enable_mmap is a pure
/// read-path choice with no on-disk footprint, so it is recorded for
/// diagnostics and refreshed when it changes.
struct Manifest {
  uint32_t page_size = 0;
  bool worm_historical = false;
  uint32_t worm_sector_size = 0;
  bool enable_mmap = false;
  /// WAL position: the live log file is wal-<wal_seq>.tsb and recovery
  /// replays it from checkpoint_lsn (everything before is already in the
  /// checkpointed device files). clean_shutdown distinguishes "the tree
  /// files are exactly the committed state" (no purge needed) from a
  /// crash. Old manifests carry none of these lines; the defaults (seq 0,
  /// lsn 0, clean) make a pre-WAL database open as a cleanly-closed one.
  uint64_t wal_seq = 0;
  uint64_t checkpoint_lsn = 0;
  bool clean_shutdown = true;
  /// Names of the secondary indexes whose device files live in the
  /// directory. Open re-attaches each one so index data never becomes an
  /// orphaned pair of .tsb files after a reopen.
  std::vector<std::string> indexes;
  /// True when the file carried a valid `crc=` terminator line. The
  /// writer always emits one; a parse without it is a legacy (pre-crc)
  /// manifest or a torn file. MANIFEST.tmp promotion REQUIRES it — a
  /// partially flushed tmp can parse cleanly yet be missing trailing
  /// index= lines, and promoting it would silently drop catalog entries.
  bool complete = false;
};

std::string ManifestPath(const std::string& dir) {
  return dir + "/" + kManifestName;
}

Manifest ManifestFromOptions(const DbOptions& options) {
  Manifest m;
  m.page_size = options.tree.page_size;
  m.worm_historical = options.worm_historical;
  m.worm_sector_size = options.worm_sector_size;
  m.enable_mmap = options.enable_mmap;
  return m;
}

Status WriteManifest(const std::string& dir, const Manifest& m) {
  char head[384];
  snprintf(head, sizeof(head),
           "tsb-manifest v1\n"
           "page_size=%u\n"
           "worm_historical=%d\n"
           "worm_sector_size=%u\n"
           "enable_mmap=%d\n"
           "wal_seq=%" PRIu64 "\n"
           "checkpoint_lsn=%" PRIu64 "\n"
           "clean_shutdown=%d\n",
           m.page_size, m.worm_historical ? 1 : 0, m.worm_sector_size,
           m.enable_mmap ? 1 : 0, m.wal_seq, m.checkpoint_lsn,
           m.clean_shutdown ? 1 : 0);
  std::string body = head;
  for (const std::string& name : m.indexes) {
    body += "index=" + name + "\n";
  }
  // Terminator: masked CRC32C over every preceding byte. This is what
  // distinguishes "the writer finished" from "the file happens to parse":
  // a tmp flushed halfway still yields valid-looking lines.
  char trailer[24];
  snprintf(trailer, sizeof(trailer), "crc=%08x\n",
           crc32c::Mask(crc32c::Value(body.data(), body.size())));
  body += trailer;
  // Write-temp-fsync-rename: a crash never leaves a torn manifest behind
  // (without the fsync, the rename can survive a power cut while the
  // data blocks do not, leaving an empty MANIFEST that fails every
  // subsequent Open).
  const std::string tmp = ManifestPath(dir) + ".tmp";
  FILE* f = fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("create " + tmp, strerror(errno));
  }
  const bool wrote = fwrite(body.data(), 1, body.size(), f) == body.size() &&
                     fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  fclose(f);
  if (!wrote) return Status::IOError("write " + tmp, strerror(errno));
  if (::rename(tmp.c_str(), ManifestPath(dir).c_str()) != 0) {
    return Status::IOError("rename " + tmp, strerror(errno));
  }
  // The rename lives in the directory: without this fsync a power cut can
  // resurrect the previous manifest (or none) after later steps — the
  // checkpoint path treats this write as its commit point.
  return SyncDir(dir);
}

Status ReadManifestFile(const std::string& file, bool* exists, Manifest* out) {
  *exists = false;
  FILE* f = fopen(file.c_str(), "r");
  if (f == nullptr) {
    if (errno == ENOENT) return Status::OK();
    return Status::IOError("open " + file, strerror(errno));
  }
  char line[128];
  bool header_ok = false;
  uint32_t running_crc = 0;
  while (fgets(line, sizeof(line), f) != nullptr) {
    unsigned crc_line = 0;
    if (header_ok && sscanf(line, "crc=%x", &crc_line) == 1) {
      // Terminator: validates every byte read so far (the crc line itself
      // excluded). The writer emits it last, so a matching crc proves the
      // file is whole — in particular that no trailing index= line was
      // lost in a torn flush. Anything after it is ignored.
      if (crc32c::Unmask(static_cast<uint32_t>(crc_line)) != running_crc) {
        fclose(f);
        return Status::Corruption("manifest crc mismatch", file);
      }
      out->complete = true;
      break;
    }
    // fgets hands back raw chunks in file order (long lines split), so
    // extending per chunk equals a CRC over the file prefix.
    running_crc = crc32c::Extend(running_crc, line, strlen(line));
    if (!header_ok) {
      if (strncmp(line, "tsb-manifest v1", 15) != 0) break;
      header_ok = true;
      continue;
    }
    unsigned value = 0;
    unsigned long long value64 = 0;
    if (sscanf(line, "page_size=%u", &value) == 1) {
      out->page_size = value;
    } else if (sscanf(line, "worm_historical=%u", &value) == 1) {
      out->worm_historical = value != 0;
    } else if (sscanf(line, "worm_sector_size=%u", &value) == 1) {
      out->worm_sector_size = value;
    } else if (sscanf(line, "enable_mmap=%u", &value) == 1) {
      out->enable_mmap = value != 0;
    } else if (sscanf(line, "wal_seq=%llu", &value64) == 1) {
      out->wal_seq = value64;
    } else if (sscanf(line, "checkpoint_lsn=%llu", &value64) == 1) {
      out->checkpoint_lsn = value64;
    } else if (sscanf(line, "clean_shutdown=%u", &value) == 1) {
      out->clean_shutdown = value != 0;
    } else if (strncmp(line, "index=", 6) == 0) {
      std::string name(line + 6);
      while (!name.empty() && (name.back() == '\n' || name.back() == '\r')) {
        name.pop_back();
      }
      if (!name.empty()) out->indexes.push_back(std::move(name));
    }
  }
  fclose(f);
  if (!header_ok) {
    return Status::Corruption("unrecognized manifest", file);
  }
  *exists = true;
  return Status::OK();
}

Status ReadManifest(const std::string& dir, bool* exists, Manifest* out) {
  return ReadManifestFile(ManifestPath(dir), exists, out);
}

/// Resolves a leftover MANIFEST.tmp from a crash inside WriteManifest.
/// Two shapes exist:
///  - MANIFEST and MANIFEST.tmp both present: the crash hit before the
///    rename, so the tmp was never made durable-and-current — MANIFEST
///    stays authoritative, the tmp is discarded.
///  - Only MANIFEST.tmp present: the very first manifest write crashed
///    between creating the tmp and renaming it. If the tmp parses AND its
///    crc terminator validates, it carries exactly what the rename would
///    have installed — promote it; otherwise (torn, or flushed halfway so
///    it parses but is incomplete) discard it and let Open recreate a
///    manifest.
Status RecoverManifestTmp(const std::string& dir) {
  const std::string tmp = ManifestPath(dir) + ".tmp";
  struct stat st;
  if (::stat(tmp.c_str(), &st) != 0) {
    if (errno == ENOENT) return Status::OK();  // common case: no leftover
    return Status::IOError("stat " + tmp, strerror(errno));
  }
  if (::stat(ManifestPath(dir).c_str(), &st) == 0) {
    TSB_LOG_WARN("discarding leftover %s (MANIFEST is authoritative)",
                 tmp.c_str());
    if (::unlink(tmp.c_str()) != 0) {
      return Status::IOError("unlink " + tmp, strerror(errno));
    }
    return Status::OK();
  }
  bool parses = false;
  Manifest scratch;
  parses = ReadManifestFile(tmp, &parses, &scratch).ok() && parses &&
           scratch.complete;
  if (!parses) {
    TSB_LOG_WARN("discarding torn %s", tmp.c_str());
    if (::unlink(tmp.c_str()) != 0) {
      return Status::IOError("unlink " + tmp, strerror(errno));
    }
    return Status::OK();
  }
  TSB_LOG_WARN("promoting complete %s to MANIFEST", tmp.c_str());
  if (::rename(tmp.c_str(), ManifestPath(dir).c_str()) != 0) {
    return Status::IOError("rename " + tmp, strerror(errno));
  }
  return SyncDir(dir);
}

/// Creates the manifest on first open; on reopen verifies the recorded
/// geometry against `options` and fails fast BEFORE any device file is
/// touched with the wrong parameters.
Status CheckOrWriteManifest(const std::string& dir, const DbOptions& options,
                            Manifest* out) {
  TSB_RETURN_IF_ERROR(RecoverManifestTmp(dir));
  bool exists = false;
  Manifest& m = *out;
  TSB_RETURN_IF_ERROR(ReadManifest(dir, &exists, &m));
  if (exists) {
    // The manifest is only authoritative once a device file exists: if a
    // first Open wrote the manifest and then failed to create its
    // devices (disk full, permissions), the recorded geometry guards
    // nothing and must not lock out a retry with corrected options.
    struct stat st;
    if (::stat((dir + "/current.tsb").c_str(), &st) != 0) exists = false;
  }
  if (!exists) {
    m = ManifestFromOptions(options);
    return WriteManifest(dir, m);
  }
  if (m.page_size != options.tree.page_size) {
    return Status::InvalidArgument(
        "page_size mismatch with manifest",
        "manifest " + std::to_string(m.page_size) + " vs options " +
            std::to_string(options.tree.page_size));
  }
  if (m.worm_historical != options.worm_historical) {
    return Status::InvalidArgument(
        "worm_historical mismatch with manifest",
        m.worm_historical ? "database was created write-once"
                          : "database was created erasable");
  }
  if (options.worm_historical &&
      m.worm_sector_size != options.worm_sector_size) {
    return Status::InvalidArgument(
        "worm_sector_size mismatch with manifest",
        "manifest " + std::to_string(m.worm_sector_size) + " vs options " +
            std::to_string(options.worm_sector_size));
  }
  if (m.enable_mmap != options.enable_mmap) {
    // Read-path choice, not geometry: allowed, but keep the record fresh
    // (preserving the index catalog AND the WAL position — clobbering
    // checkpoint_lsn here would silently re-replay or skip log).
    m.enable_mmap = options.enable_mmap;
    return WriteManifest(dir, m);
  }
  return Status::OK();
}

// ---- write-ahead log files -------------------------------------------

std::string WalFileName(uint64_t seq) {
  char name[32];
  snprintf(name, sizeof(name), "wal-%06" PRIu64 ".tsb", seq);
  return name;
}

std::string WalFilePath(const std::string& dir, uint64_t seq) {
  return dir + "/" + WalFileName(seq);
}

/// Unlinks wal-*.tsb files other than the live one. A crash between a
/// rotation's manifest write and its unlink leaves the previous (fully
/// checkpointed) log behind; it is dead weight, never replayed.
void SweepStaleWalFiles(const std::string& dir, uint64_t live_seq) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  const std::string live = WalFileName(live_seq);
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() == live.size() && name.compare(0, 4, "wal-") == 0 &&
        name.compare(name.size() - 4, 4, ".tsb") == 0 && name != live) {
      TSB_LOG_WARN("removing stale log %s (live is %s)", name.c_str(),
                   live.c_str());
      ::unlink((dir + "/" + name).c_str());
    }
  }
  ::closedir(d);
}

// ---- verified-blob sidecar -------------------------------------------
//
// The historical store CRC-checks each blob once, on its first mapped
// pin, then serves it zero-copy forever (the bytes are immutable). That
// memo used to die with the process: every reopen re-paid one checksum
// pass per blob before cold reads reached memory speed. The sidecar
// persists the memo. Format (all little-endian):
//   [u32 magic "TSBV"][u32 version][u64 store_size][u64 count]
//   [count x u64 sorted offsets][u32 masked crc32c of preceding bytes]

constexpr char kVerifiedSidecarName[] = "verified.tsb";
constexpr uint32_t kVerifiedMagic = 0x56425354;  // "TSBV"
constexpr uint32_t kVerifiedVersion = 1;
constexpr size_t kVerifiedHeaderSize = 24;

Status WriteVerifiedSidecar(const std::string& dir, AppendStore* hist) {
  std::vector<uint64_t> offsets;
  uint64_t store_size = 0;
  hist->SnapshotVerified(&offsets, &store_size);
  std::string body;
  body.reserve(kVerifiedHeaderSize + offsets.size() * 8 + 4);
  PutFixed32(&body, kVerifiedMagic);
  PutFixed32(&body, kVerifiedVersion);
  PutFixed64(&body, store_size);
  PutFixed64(&body, offsets.size());
  for (const uint64_t off : offsets) PutFixed64(&body, off);
  PutFixed32(&body, crc32c::Mask(crc32c::Value(body.data(), body.size())));
  // The tmp name keeps the .tsb suffix so Destroy recognizes a leftover
  // from a crashed rename as ours.
  const std::string file = dir + "/" + kVerifiedSidecarName;
  const std::string tmp = dir + "/verified.tmp.tsb";
  FILE* f = fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IOError("create " + tmp, strerror(errno));
  const bool wrote = fwrite(body.data(), 1, body.size(), f) == body.size() &&
                     fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  fclose(f);
  if (!wrote) return Status::IOError("write " + tmp, strerror(errno));
  if (::rename(tmp.c_str(), file.c_str()) != 0) {
    return Status::IOError("rename " + tmp, strerror(errno));
  }
  return Status::OK();
}

/// Seeds the verified set from the sidecar. Purely a performance hint:
/// any validation failure just means cold pins re-verify lazily, so
/// every suspect condition is a silent return, never an Open error.
void LoadVerifiedSidecar(const std::string& dir, AppendStore* hist) {
  FILE* f = fopen((dir + "/" + kVerifiedSidecarName).c_str(), "rb");
  if (f == nullptr) return;
  std::string body;
  char buf[1 << 16];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) body.append(buf, n);
  fclose(f);
  if (body.size() < kVerifiedHeaderSize + 4) return;
  const size_t crc_pos = body.size() - 4;
  if (crc32c::Value(body.data(), crc_pos) !=
      crc32c::Unmask(DecodeFixed32(body.data() + crc_pos))) {
    return;
  }
  const char* p = body.data();
  if (DecodeFixed32(p) != kVerifiedMagic) return;
  if (DecodeFixed32(p + 4) != kVerifiedVersion) return;
  const uint64_t store_size = DecodeFixed64(p + 8);
  const uint64_t count = DecodeFixed64(p + 16);
  if (count != (body.size() - kVerifiedHeaderSize - 4) / 8 ||
      body.size() != kVerifiedHeaderSize + count * 8 + 4) {
    return;
  }
  // A snapshot larger than the store can only describe a different file;
  // the store is append-only, so a valid snapshot never shrinks.
  if (store_size > hist->device_bytes()) return;
  std::vector<uint64_t> offsets;
  offsets.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    offsets.push_back(DecodeFixed64(p + kVerifiedHeaderSize + i * 8));
  }
  hist->PreloadVerified(offsets);
}

/// Opens the file-backed historical device per options: WORM sector
/// semantics when requested, else a plain erasable file that still pays
/// optical cost parameters (the simulated 1989 archive medium).
Status OpenHistoricalFile(const std::string& file, const DbOptions& options,
                          std::unique_ptr<Device>* out) {
  if (options.worm_historical) {
    WormFileDevice* dev = nullptr;
    TSB_RETURN_IF_ERROR(WormFileDevice::Open(file, &dev,
                                             options.worm_sector_size,
                                             CostParams::OpticalWorm(),
                                             options.enable_mmap));
    out->reset(dev);
    return Status::OK();
  }
  FileDevice* dev = nullptr;
  TSB_RETURN_IF_ERROR(FileDevice::Open(file, &dev,
                                       DeviceKind::kOpticalErasable,
                                       CostParams::OpticalWorm(),
                                       options.enable_mmap));
  out->reset(dev);
  return Status::OK();
}

}  // namespace

Status MultiVersionDB::Open(const std::string& path, const DbOptions& options,
                            std::unique_ptr<MultiVersionDB>* out) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    // Only a genuinely absent path is a create candidate; EACCES/ENOTDIR
    // and friends are real errors, not "missing database".
    if (errno != ENOENT) {
      return Status::IOError("stat " + path, strerror(errno));
    }
    if (!options.create_if_missing) {
      return Status::IOError("no such database", path);
    }
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IOError("mkdir " + path, strerror(errno));
    }
  } else if (!S_ISDIR(st.st_mode)) {
    return Status::InvalidArgument("database path is not a directory", path);
  }

  // Geometry gate: verify (or create) the manifest before any device file
  // is opened with possibly-wrong parameters.
  Manifest manifest;
  TSB_RETURN_IF_ERROR(CheckOrWriteManifest(path, options, &manifest));

  // A checkpoint that crashed mid-apply left a complete double-write
  // journal behind; re-apply it BEFORE any device is opened so the trees
  // load the checkpointed page images, not a torn half-write.
  bool journal_applied = false;
  if (options.enable_wal) {
    TSB_RETURN_IF_ERROR(wal::CheckpointJournal::Recover(
        path, options.tree.page_size, &journal_applied));
  }

  FileDevice* mag = nullptr;
  TSB_RETURN_IF_ERROR(FileDevice::Open(path + "/current.tsb", &mag,
                                       DeviceKind::kMagnetic,
                                       CostParams::Magnetic(),
                                       options.enable_mmap));
  std::unique_ptr<Device> magnetic(mag);
  std::unique_ptr<Device> historical;
  TSB_RETURN_IF_ERROR(
      OpenHistoricalFile(path + "/history.tsb", options, &historical));
  if (options.wrap_device) {
    // Decorate before the trees ever see the devices (fault injection).
    magnetic = options.wrap_device("magnetic", std::move(magnetic));
    historical = options.wrap_device("historical", std::move(historical));
    if (magnetic == nullptr || historical == nullptr) {
      return Status::InvalidArgument("wrap_device returned null");
    }
  }

  std::unique_ptr<MultiVersionDB> mvdb;
  TSB_RETURN_IF_ERROR(Open(magnetic.get(), historical.get(), options, &mvdb));
  mvdb->path_ = path;
  mvdb->owned_magnetic_ = std::move(magnetic);
  mvdb->owned_historical_ = std::move(historical);

  // Re-attach every cataloged secondary index: with the registry extractor
  // when options provide one, extractor-less otherwise (readable via
  // FindBySecondary, unwritable until CreateSecondaryIndex binds code).
  for (const std::string& name : manifest.indexes) {
    KeyExtractor extract;
    auto reg = options.index_extractors.find(name);
    if (reg != options.index_extractors.end()) extract = reg->second;
    TSB_RETURN_IF_ERROR(mvdb->RegisterIndex(name, std::move(extract),
                                            /*from_catalog=*/true,
                                            /*magnetic=*/nullptr,
                                            /*historical=*/nullptr));
  }

  // Warm-start hint: seed the historical store's verified-blob memo so
  // cold mapped reads skip the per-blob first-pin checksum pass.
  LoadVerifiedSidecar(path, mvdb->tree_->hist_store());

  if (options.enable_wal) {
    mvdb->wal_seq_ = manifest.wal_seq;
    mvdb->wal_checkpoint_lsn_ = manifest.checkpoint_lsn;
    TSB_RETURN_IF_ERROR(
        mvdb->RecoverWal(manifest.clean_shutdown, journal_applied));
    SweepStaleWalFiles(path, mvdb->wal_seq_);
  }

  if (options.scrub_background) mvdb->StartScrubThread();

  *out = std::move(mvdb);
  return Status::OK();
}

MultiVersionDB::~MultiVersionDB() {
  // The background scrubber walks live devices and takes checkpoint_mu_;
  // it must be gone before the shutdown checkpoint below, let alone the
  // tree teardown.
  StopScrubThread();
  // Quiesce the auto-resume thread BEFORE anything it repairs is torn
  // down; destructor-path failures below are still recorded (stats/log)
  // through the shut-down handler.
  if (errors_ != nullptr) errors_->Shutdown();
  if (wal_ != nullptr) {
    if (errors_ != nullptr && errors_->degraded()) {
      // Degraded close: the device files cannot be trusted to accept a
      // checkpoint, and the manifest already says clean_shutdown=0 (set
      // at Open). Leave it that way — the next Open runs full recovery.
      TSB_LOG_WARN("closing degraded (%s); next open will recover",
                   errors_->BackgroundError().ToString().c_str());
    } else {
      // Clean shutdown: one final checkpoint folds the log into the
      // device files, then the manifest records clean_shutdown=1 so the
      // next Open skips the ghost purge. A failure here must NOT mark the
      // shutdown clean: the on-disk manifest keeps clean_shutdown=0 and
      // the next Open runs crash recovery, which is always correct.
      Status s = Checkpoint();
      if (s.ok()) {
        clean_shutdown_ = true;
        s = PersistManifest();
        if (!s.ok()) clean_shutdown_ = false;
      }
      if (!s.ok()) {
        TSB_LOG_WARN("clean shutdown incomplete (%s); next open will recover",
                     s.ToString().c_str());
        if (errors_ != nullptr) errors_->Report("shutdown checkpoint", s);
      }
    }
    wal_.reset();  // joins any background flusher before the trees go
  }
  // Best-effort: losing the sidecar only costs re-verification after the
  // next open, so a failed write must not throw from a destructor path.
  if (!path_.empty() && tree_ != nullptr) {
    (void)WriteVerifiedSidecar(path_, tree_->hist_store());
  }
}

Status MultiVersionDB::Destroy(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    if (errno == ENOENT) return Status::OK();  // nothing to destroy
    return Status::IOError("opendir " + path, strerror(errno));
  }
  Status status = Status::OK();
  const std::string suffix = ".tsb";
  while (struct dirent* e = ::readdir(dir)) {
    const std::string name = e->d_name;
    const bool manifest = name == kManifestName ||
                          name == std::string(kManifestName) + ".tmp";
    const bool device_file =
        name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
    if (!manifest && !device_file) {
      continue;  // not ours; the rmdir below will surface it
    }
    const std::string file = path + "/" + name;
    if (::unlink(file.c_str()) != 0) {
      status = Status::IOError("unlink " + file, strerror(errno));
    }
  }
  ::closedir(dir);
  TSB_RETURN_IF_ERROR(status);
  if (::rmdir(path.c_str()) != 0) {
    return Status::IOError("rmdir " + path, strerror(errno));
  }
  return Status::OK();
}

// ---------------------------------------------------------------- writes

Status MultiVersionDB::Write(const WriteBatch& batch, Timestamp* commit_ts) {
  TSB_RETURN_IF_ERROR(txns_->Write(batch, commit_ts));
  // Size trigger: read the append offset through TxnManager's mirror, not
  // wal_ — a concurrent writer's rotation may be destroying the old Wal
  // object right now, and this thread holds nothing that pins it.
  if (wal_enabled_ &&
      txns_->wal_appended_lsn() >= options_.wal_checkpoint_bytes &&
      !checkpoint_pending_.exchange(true, std::memory_order_acq_rel)) {
    // One writer claims the size-triggered checkpoint; the rest sail on
    // (FreezeCommits inside will briefly stall them at the commit point).
    Status s = Checkpoint();
    checkpoint_pending_.store(false, std::memory_order_release);
    if (!s.ok()) {
      // The commit above already landed (durable in the log, *commit_ts
      // set); surfacing the checkpoint failure here would read as "not
      // committed" and invite a double-apply retry. Log it, keep it
      // observable via LastCheckpointError(), and report the write OK —
      // recovery replays the un-checkpointed log regardless.
      TSB_LOG_ERROR("size-triggered checkpoint failed (%s); write at "
                    "t=%llu is committed and durable in the log",
                    s.ToString().c_str(),
                    (unsigned long long)(commit_ts != nullptr ? *commit_ts
                                                              : 0));
    }
  }
  return Status::OK();
}

Status MultiVersionDB::Put(const Slice& key, const Slice& value,
                           Timestamp* commit_ts) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(batch, commit_ts);
}

// ---------------------------------------------------------------- reads

Status MultiVersionDB::Get(const ReadOptions& options, const Slice& key,
                           std::string* value, Timestamp* ts) {
  return tree_->Get(options, key, value, ts);
}

Status MultiVersionDB::Get(const ReadOptions& options, const Slice& key,
                           PinnableValue* value) {
  return tree_->Get(options, key, value);
}

Status MultiVersionDB::Get(const Slice& key, std::string* value,
                           Timestamp* ts) {
  // Default ReadOptions read at the committed watermark: a reader must
  // never observe the partial stamps of an in-flight (or failed)
  // transaction. Quiesced, this is identical to a latest-version read.
  return Get(ReadOptions(), key, value, ts);
}

Status MultiVersionDB::GetAsOf(const Slice& key, Timestamp t,
                               std::string* value, Timestamp* ts) {
  ReadOptions options;
  options.as_of = t;
  return Get(options, key, value, ts);
}

std::unique_ptr<VersionCursor> MultiVersionDB::NewCursor(
    const ReadOptions& options) {
  return tree_->NewCursor(options);
}

std::unique_ptr<tsb_tree::SnapshotIterator> MultiVersionDB::NewSnapshotIterator(
    Timestamp t) {
  return tree_->NewSnapshotIterator(t);
}

std::unique_ptr<tsb_tree::HistoryIterator> MultiVersionDB::NewHistoryIterator(
    const Slice& key) {
  return tree_->NewHistoryIterator(key);
}

// ---------------------------------------------------------------- indexes

Status MultiVersionDB::CreateSecondaryIndex(const std::string& name,
                                            KeyExtractor extract,
                                            Device* magnetic,
                                            Device* historical) {
  return RegisterIndex(name, std::move(extract), /*from_catalog=*/false,
                       magnetic, historical);
}

Status MultiVersionDB::PersistManifest() {
  if (path_.empty()) return Status::OK();
  Manifest m = ManifestFromOptions(options_);
  m.wal_seq = wal_seq_;
  m.checkpoint_lsn = wal_checkpoint_lsn_;
  m.clean_shutdown = clean_shutdown_;
  m.indexes.reserve(indexes_.size());
  for (const auto& [name, def] : indexes_) m.indexes.push_back(name);
  return WriteManifest(path_, m);
}

Status MultiVersionDB::RegisterIndex(const std::string& name,
                                     KeyExtractor extract, bool from_catalog,
                                     Device* magnetic, Device* historical) {
  // Index names become file names and MANIFEST lines.
  if (name.empty() || name.find('/') != std::string::npos ||
      name.find('\n') != std::string::npos) {
    return Status::InvalidArgument("invalid index name", name);
  }
  auto existing = indexes_.find(name);
  if (existing != indexes_.end()) {
    if (!existing->second.from_catalog) {
      return Status::InvalidArgument("index already exists", name);
    }
    // Cataloged index re-attached at Open: this call binds its extractor
    // (extractors are code and cannot persist in the MANIFEST).
    existing->second.extract = std::move(extract);
    existing->second.from_catalog = false;
    return Status::OK();
  }
  if (errors_ != nullptr) {
    // Schema changes are writes: degraded mode rejects them fail-fast.
    TSB_RETURN_IF_ERROR(errors_->BackgroundError());
  }
  IndexEntryDef def;
  def.extract = std::move(extract);
  def.from_catalog = from_catalog;
  if (magnetic == nullptr) {
    if (!path_.empty()) {
      // Path-backed DB: the index persists alongside the primary.
      FileDevice* dev = nullptr;
      TSB_RETURN_IF_ERROR(FileDevice::Open(
          path_ + "/index-" + name + ".current.tsb", &dev,
          DeviceKind::kMagnetic, CostParams::Magnetic(),
          options_.enable_mmap));
      def.owned_magnetic.reset(dev);
    } else {
      def.owned_magnetic = std::make_unique<MemDevice>();
    }
    if (options_.wrap_device) {
      def.owned_magnetic = options_.wrap_device(
          "index-" + name + ".magnetic", std::move(def.owned_magnetic));
      if (def.owned_magnetic == nullptr) {
        return Status::InvalidArgument("wrap_device returned null");
      }
    }
    magnetic = def.owned_magnetic.get();
  }
  if (historical == nullptr) {
    if (!path_.empty()) {
      FileDevice* dev = nullptr;
      TSB_RETURN_IF_ERROR(FileDevice::Open(
          path_ + "/index-" + name + ".hist.tsb", &dev,
          DeviceKind::kOpticalErasable, CostParams::OpticalWorm(),
          options_.enable_mmap));
      def.owned_historical.reset(dev);
    } else {
      def.owned_historical = std::make_unique<MemDevice>(
          DeviceKind::kOpticalErasable, CostParams::OpticalWorm());
    }
    if (options_.wrap_device) {
      def.owned_historical = options_.wrap_device(
          "index-" + name + ".historical", std::move(def.owned_historical));
      if (def.owned_historical == nullptr) {
        return Status::InvalidArgument("wrap_device returned null");
      }
    }
    historical = def.owned_historical.get();
  }
  std::unique_ptr<tsb_tree::TsbTree> tree;
  // Index trees always run a PRIVATE clock, even when the primary shares
  // one across shards: index recovery/repair publishes the index clock's
  // Now(), which on a shared clock would move the global watermark past
  // in-flight cross-shard commits. Index reads are driven at primary
  // timestamps anyway, so the index clock only sequences maintenance.
  tsb_tree::TsbOptions index_tree_options = options_.tree;
  index_tree_options.external_clock = nullptr;
  TSB_RETURN_IF_ERROR(
      tsb_tree::TsbTree::Open(magnetic, historical, index_tree_options, &tree));
  def.index = std::make_unique<SecondaryIndex>(std::move(tree));
  InstallCorruptionReporter(name, def.index->tree());
  indexes_.emplace(name, std::move(def));
  // The hook goes in with the FIRST index (even an extractor-less one:
  // OnCommit must be able to reject writes it cannot maintain).
  InstallCommitHook();
  if (!from_catalog) {
    // A newly created index enters the catalog so reopen re-attaches it.
    TSB_RETURN_IF_ERROR(PersistManifest());
  }
  return Status::OK();
}

SecondaryIndex* MultiVersionDB::index(const std::string& name) {
  auto it = indexes_.find(name);
  return it == indexes_.end() ? nullptr : it->second.index.get();
}

Status MultiVersionDB::OnCommit(const std::string& key,
                                const std::string* old_value,
                                const std::string& new_value, Timestamp ts) {
  for (auto& [name, def] : indexes_) {
    if (!def.extract) {
      // Letting the write through would silently leave this index stale
      // (= corrupt). Rejecting makes it a loud schema-setup error: bind
      // the extractor (DbOptions::index_extractors or
      // CreateSecondaryIndex) before writing.
      return Status::InvalidArgument("secondary index has no extractor",
                                     name);
    }
    std::optional<std::string> old_sk;
    if (old_value != nullptr) old_sk = def.extract(Slice(*old_value));
    std::optional<std::string> new_sk = def.extract(Slice(new_value));
    if (old_sk == new_sk) continue;  // secondary field unchanged
    if (old_sk.has_value()) {
      TSB_RETURN_IF_ERROR(def.index->Remove(*old_sk, key, ts));
    }
    if (new_sk.has_value()) {
      TSB_RETURN_IF_ERROR(def.index->Add(*new_sk, key, ts));
    }
  }
  return Status::OK();
}

Status MultiVersionDB::FindBySecondary(
    const ReadOptions& options, const std::string& index_name,
    const Slice& secondary,
    std::vector<std::pair<std::string, std::string>>* key_values) {
  key_values->clear();
  SecondaryIndex* idx = index(index_name);
  if (idx == nullptr) {
    return Status::InvalidArgument("no such index", index_name);
  }
  // Resolve the sentinel ONCE against the primary's watermark so the
  // index lookup and the primary fetches observe the same time.
  const Timestamp t = tree_->ResolveAsOf(options.as_of);
  std::vector<std::string> pks;
  TSB_RETURN_IF_ERROR(idx->LookupAsOf(secondary, t, &pks));
  ReadOptions fetch = options;
  fetch.as_of = t;
  for (const std::string& pk : pks) {
    std::string value;
    // The timestamps in the secondary index locate the primary version
    // (section 3.6): read the primary record as of the same time.
    Status s = tree_->Get(fetch, pk, &value);
    if (s.IsNotFound()) continue;  // index entry newer than primary? skip
    TSB_RETURN_IF_ERROR(s);
    key_values->emplace_back(pk, std::move(value));
  }
  return Status::OK();
}

Status MultiVersionDB::FindBySecondaryAsOf(
    const std::string& index_name, const Slice& secondary, Timestamp t,
    std::vector<std::pair<std::string, std::string>>* key_values) {
  ReadOptions options;
  options.as_of = t;
  return FindBySecondary(options, index_name, secondary, key_values);
}

// ---------------------------------------------------------------- stats

HistReadStats MultiVersionDB::HistStats() const {
  HistReadStats s = tree_->HistStats();
  for (const auto& [name, def] : indexes_) {
    s.Add(def.index->tree()->HistStats());
  }
  return s;
}

BufferPoolStats MultiVersionDB::PoolStats() const {
  BufferPoolStats s = tree_->PoolStats();
  for (const auto& [name, def] : indexes_) {
    s.Add(def.index->tree()->PoolStats());
  }
  return s;
}

Status MultiVersionDB::Flush() {
  if (errors_ != nullptr) {
    // Degraded: flushing dirty pages over a sick device could tear the
    // base the next recovery replays against. Fail fast, sticky cause.
    TSB_RETURN_IF_ERROR(errors_->BackgroundError());
  }
  if (wal_enabled_) {
    // With a WAL the device files may only advance through crash-atomic
    // checkpoints: a plain flush could be half-written when the process
    // dies, tearing the base the next recovery replays against.
    TSB_RETURN_IF_ERROR(Checkpoint());
  } else {
    TSB_RETURN_IF_ERROR(tree_->Flush());
    for (auto& [name, def] : indexes_) {
      TSB_RETURN_IF_ERROR(def.index->tree()->Flush());
    }
  }
  if (!path_.empty()) {
    // Persist the verified-blob memo with the data it describes.
    TSB_RETURN_IF_ERROR(WriteVerifiedSidecar(path_, tree_->hist_store()));
  }
  return Status::OK();
}

// ------------------------------------------------------------ durability

Status MultiVersionDB::RecoverWal(bool manifest_clean, bool journal_applied) {
  // No-steal from the first moment: outside a checkpoint the buffer pool
  // must never write a dirty page back, or the next crash would recover
  // against a base containing an unjournaled half-state.
  tree_->buffer_pool()->set_no_steal(true);
  for (auto& [name, def] : indexes_) {
    def.index->tree()->buffer_pool()->set_no_steal(true);
  }
  recovery_stats_ = RecoveryStats{};
  recovery_stats_.journal_applied = journal_applied;
  const bool unclean = !manifest_clean || journal_applied;
  if (unclean) {
    // Transactions cut down mid-build left uncommitted records with no
    // timestamp and no owner: erase the ghosts before replay. Index trees
    // never hold uncommitted records (maintenance runs post-stamp).
    TSB_RETURN_IF_ERROR(
        tree_->PurgeUncommitted(&recovery_stats_.purged_uncommitted));
  }
  const std::string wal_file = WalFilePath(path_, wal_seq_);
  wal::WalReplayResult rr;
  TSB_RETURN_IF_ERROR(wal::Wal::Replay(
      wal_file, wal_checkpoint_lsn_,
      [this](const wal::WalCommit& c) { return ApplyWalCommit(c); }, &rr));
  recovery_stats_.tail_truncated = rr.tail_truncated;
  recovery_stats_.wal_bytes_scanned =
      rr.end_lsn > wal_checkpoint_lsn_ ? rr.end_lsn - wal_checkpoint_lsn_ : 0;
  // ReplayCommitted advances the clocks without publishing; expose every
  // recovered commit to readers in one step (whole-prefix, never torn).
  tree_->clock().Publish(tree_->clock().Now());
  for (auto& [name, def] : indexes_) {
    auto& clock = def.index->tree()->clock();
    clock.Publish(clock.Now());
  }
  TSB_RETURN_IF_ERROR(wal::Wal::Open(wal_file, options_.wal_sync,
                                     options_.wal_background_sync_ms, &wal_,
                                     options_.wal_fault_plan));
  InstallWalReporter(wal_.get());
  wal_enabled_ = true;  // immutable from here: hot paths gate on this
  txns_->SetWal(wal_.get());
  // From here until the destructor's final checkpoint the database is
  // live: the manifest must say so BEFORE the first commit can append.
  clean_shutdown_ = false;
  TSB_RETURN_IF_ERROR(PersistManifest());
  if (recovery_stats_.frames_replayed > 0 || unclean) {
    TSB_LOG_INFO(
        "recovered %s: %llu frames / %llu ops replayed (%llu KiB of log), "
        "%llu ghosts purged%s%s",
        path_.c_str(), (unsigned long long)recovery_stats_.frames_replayed,
        (unsigned long long)recovery_stats_.ops_replayed,
        (unsigned long long)(recovery_stats_.wal_bytes_scanned >> 10),
        (unsigned long long)recovery_stats_.purged_uncommitted,
        journal_applied ? ", checkpoint journal re-applied" : "",
        rr.tail_truncated ? ", torn tail truncated" : "");
    // Fold the replayed state into the device files now: recovery work
    // stays bounded even under repeated crashes, and the log truncates.
    TSB_RETURN_IF_ERROR(Checkpoint());
  }
  return Status::OK();
}

Status MultiVersionDB::ApplyWalCommit(const wal::WalCommit& commit) {
  if (commit.ops.empty()) return Status::OK();
  // Idempotence probe: a checkpoint that crashed after committing its
  // journal but before recording its LSN leaves the base AHEAD of the
  // manifest, so the first replayed frames may already be applied.
  // Checkpoints collect images with commits frozen — a frame is in the
  // base wholly or not at all — so one key at the exact commit timestamp
  // decides the whole frame.
  {
    std::string unused;
    Timestamp version_ts = 0;
    Status probe = tree_->GetAsOf(commit.ops.front().first, commit.ts,
                                  &unused, &version_ts);
    if (probe.ok() && version_ts == commit.ts) return Status::OK();
    if (!probe.ok() && !probe.IsNotFound()) return probe;
  }
  const bool maintain = !indexes_.empty();
  if (maintain) {
    for (auto& [name, def] : indexes_) {
      if (!def.extract) {
        // Same contract as OnCommit: applying the frame without
        // maintaining this index would silently corrupt it.
        return Status::InvalidArgument(
            "WAL replay needs this index's extractor (bind it via "
            "DbOptions::index_extractors)",
            name);
      }
    }
  }
  for (const auto& [key, value] : commit.ops) {
    // The pre-image must be read BEFORE the replay insert supersedes it —
    // the same old-value the original commit hook saw.
    std::optional<std::string> old_value;
    if (maintain && commit.ts > 0) {
      std::string prev;
      Status s = tree_->GetAsOf(key, commit.ts - 1, &prev);
      if (s.ok()) {
        old_value = std::move(prev);
      } else if (!s.IsNotFound()) {
        return s;
      }
    }
    TSB_RETURN_IF_ERROR(tree_->ReplayCommitted(key, value, commit.ts));
    for (auto& [name, def] : indexes_) {
      std::optional<std::string> old_sk;
      if (old_value.has_value()) old_sk = def.extract(Slice(*old_value));
      std::optional<std::string> new_sk = def.extract(Slice(value));
      if (old_sk == new_sk) continue;  // secondary field unchanged
      if (old_sk.has_value()) {
        TSB_RETURN_IF_ERROR(def.index->ReplayRemove(*old_sk, key, commit.ts));
      }
      if (new_sk.has_value()) {
        TSB_RETURN_IF_ERROR(def.index->ReplayAdd(*new_sk, key, commit.ts));
      }
    }
  }
  recovery_stats_.frames_replayed++;
  recovery_stats_.ops_replayed += commit.ops.size();
  return Status::OK();
}

Status MultiVersionDB::ReplayExternalCommit(const wal::WalCommit& commit) {
  return ApplyWalCommit(commit);
}

Status MultiVersionDB::PurgeCommittedAt(Timestamp ts, uint64_t* purged) {
  uint64_t total = 0;
  Status status = tree_->PurgeCommittedAt(ts, &total);
  if (status.ok()) {
    for (auto& [name, def] : indexes_) {
      uint64_t index_purged = 0;
      status = def.index->tree()->PurgeCommittedAt(ts, &index_purged);
      if (!status.ok()) break;
      total += index_purged;
    }
  }
  if (purged != nullptr) *purged = total;
  return status;
}

Status MultiVersionDB::Checkpoint() {
  if (!wal_enabled_) return Status::OK();  // raw-device / WAL-disabled
  if (errors_ != nullptr) {
    // Degraded: a checkpoint would advance the base over state whose
    // durability is already in question. Resume() is the only checkpoint-
    // like operation allowed in this state (it uses the recovery-grade
    // variant). Fail fast with the sticky cause.
    TSB_RETURN_IF_ERROR(errors_->BackgroundError());
  }
  Status status;
  {
    std::lock_guard<std::mutex> lock(checkpoint_mu_);
    status = CheckpointLocked();
  }
  {
    // Sticky health record: Write() swallows automatic-checkpoint
    // failures (the commit already landed), so this is where they stay
    // visible. A later success clears it.
    std::lock_guard<std::mutex> lock(ckpt_err_mu_);
    last_checkpoint_error_ = status;
  }
  if (!status.ok() && errors_ != nullptr) {
    // A failed checkpoint leaves journal/base/manifest mid-protocol;
    // escalate so writes stop digging and Resume() can repair.
    errors_->Report("checkpoint", status);
  }
  return status;
}

Status MultiVersionDB::LastCheckpointError() const {
  std::lock_guard<std::mutex> lock(ckpt_err_mu_);
  return last_checkpoint_error_;
}

Status MultiVersionDB::CheckpointLocked() {
  txns_->FreezeCommits();
  Status status = CheckpointFrozen(/*for_resume=*/false);
  txns_->UnfreezeCommits();
  return status;
}

Status MultiVersionDB::CheckpointFrozen(bool for_resume) {
  Status status = [&]() -> Status {
    if (!for_resume) {
      // Frozen, the WAL end is exactly the committed state of every tree.
      // The log must be durable before the checkpoint that supersedes its
      // prefix is (otherwise the base could get ahead of a lost log).
      TSB_RETURN_IF_ERROR(wal_->SyncAll());
    }
    // for_resume skips the sync on purpose: the log already failed an
    // fdatasync, and after a failed fsync the kernel may have dropped the
    // dirty tail with the error consumed — a retry that "succeeds" proves
    // nothing (never retry-and-assume). The in-memory pages being
    // checkpointed ARE the trusted copy; the poisoned log is abandoned by
    // the forced rotation below.
    const uint64_t ckpt_lsn = wal_->appended_lsn();

    struct TreeCkpt {
      tsb_tree::TsbTree* tree;
      std::string file;
      tsb_tree::TsbTree::CheckpointScope scope;
    };
    std::vector<TreeCkpt> trees;
    trees.push_back({tree_.get(), "current.tsb", {}});
    for (auto& [name, def] : indexes_) {
      trees.push_back(
          {def.index->tree(), "index-" + name + ".current.tsb", {}});
    }
    wal::CheckpointJournal journal(path_, options_.tree.page_size);
    for (auto& t : trees) {
      // Stamp every page this checkpoint flushes with the checkpoint's WAL
      // position. The stamp is what gives the lost-write check teeth: a
      // later read (inline or scrub) finding an OLDER stamp under a valid
      // CRC proves the device acked this flush and then dropped it.
      t.tree->pager()->set_flush_lsn(ckpt_lsn);
      TSB_RETURN_IF_ERROR(t.tree->BeginCheckpoint(&t.scope));
      journal.BeginTree(t.file);
      journal.AddPage(0, t.scope.meta_image);  // 0 = metadata page
      for (auto& [id, image] : t.scope.dirty_pages) {
        journal.AddPage(id, image);
      }
    }
    // Durability point. After this fsync the checkpoint applies fully —
    // now, or re-applied by the next Open if we die below. Before it, a
    // crash discards the journal whole and the old base still matches
    // the manifest's checkpoint_lsn. Either side is consistent.
    TSB_RETURN_IF_ERROR(journal.Commit());
    for (auto& t : trees) {
      TSB_RETURN_IF_ERROR(t.tree->FinishCheckpoint(&t.scope));
    }
    // Retire (not delete) the journal: its page images are the repair
    // source for pages that later rot ON DISK — under no-steal the image
    // recorded here IS the page's base content until the next checkpoint
    // rewrites it. Recovery ignores the retired file (only checkpoint.tsb
    // is re-applied).
    TSB_RETURN_IF_ERROR(journal.Retire());

    if (for_resume || ckpt_lsn >= options_.wal_checkpoint_bytes) {
      // The whole log is dead: rotate to a fresh file. Manifest first —
      // recovery must never be pointed at an unlinked log. for_resume
      // ALWAYS rotates: a fresh fd on a fresh file is the only way to
      // shed a sticky sync error and the never-durable tail behind it.
      const uint64_t old_seq = wal_seq_;
      std::unique_ptr<wal::Wal> fresh;
      TSB_RETURN_IF_ERROR(wal::Wal::Open(
          WalFilePath(path_, old_seq + 1), options_.wal_sync,
          options_.wal_background_sync_ms, &fresh,
          options_.wal_fault_plan));
      InstallWalReporter(fresh.get());
      wal_seq_ = old_seq + 1;
      wal_checkpoint_lsn_ = 0;
      Status persisted = PersistManifest();
      if (!persisted.ok()) {
        // Keep appending to the old log; the checkpoint still counts
        // (the stale on-disk LSN only means extra, skippable replay).
        wal_seq_ = old_seq;
        wal_checkpoint_lsn_ = ckpt_lsn;
        return persisted;
      }
      txns_->SetWal(fresh.get());  // commits frozen: no racing appender
      wal_ = std::move(fresh);     // the old log closes here
      ::unlink(WalFilePath(path_, old_seq).c_str());
      // Best effort: a resurrected dead log is swept at the next Open.
      (void)SyncDir(path_);
    } else {
      wal_checkpoint_lsn_ = ckpt_lsn;
      TSB_RETURN_IF_ERROR(PersistManifest());
    }
    return Status::OK();
  }();
  return status;
}

// ---------------------------------------------------- degraded-mode repair

Status MultiVersionDB::BackgroundError() const {
  return errors_->BackgroundError();
}

bool MultiVersionDB::degraded() const { return errors_->degraded(); }

ErrorHandlerStats MultiVersionDB::error_stats() const {
  return errors_->stats();
}

Status MultiVersionDB::Resume() {
  // Quarantine repair runs first, and even when the DB is not degraded —
  // a scrub hit quarantines single pages without sickening the whole
  // database, and Resume() is the operator's one repair verb.
  uint64_t repaired = 0;
  TSB_RETURN_IF_ERROR(RepairQuarantined(&repaired));
  return errors_->Resume();
}

Status MultiVersionDB::ResumeImpl() {
  // Serialized against checkpoints AND other resumes (the ErrorHandler
  // only runs one resume_fn at a time, but a checkpoint claimed before
  // degradation may still be in flight).
  std::lock_guard<std::mutex> lock(checkpoint_mu_);
  txns_->FreezeCommits();
  Status status = [&]() -> Status {
    // 1. Purge the half-stamped records of every failed commit from every
    // tree. Those timestamps never published (the poisoned watermark caps
    // below each one), so no reader ever saw them and no time split can
    // have moved them to historical nodes — the purge is exact, not a
    // heuristic. Commits that SUCCEEDED after the poisoning are acked and
    // stay: they become visible when the watermark lifts below.
    for (const Timestamp ts : txns_->failed_commits()) {
      uint64_t purged = 0;
      TSB_RETURN_IF_ERROR(tree_->PurgeCommittedAt(ts, &purged));
      for (auto& [name, def] : indexes_) {
        uint64_t index_purged = 0;
        TSB_RETURN_IF_ERROR(
            def.index->tree()->PurgeCommittedAt(ts, &index_purged));
        purged += index_purged;
      }
      TSB_LOG_INFO("resume: purged %llu records of failed commit t=%llu",
                   (unsigned long long)purged, (unsigned long long)ts);
    }
    // 2. Re-establish durability from the trusted in-memory pages with a
    // recovery-grade checkpoint: never re-syncs the poisoned log, always
    // rotates to a fresh log file. After this the acked prefix lives in
    // the checkpointed base and the fsync question is moot.
    if (wal_enabled_) {
      TSB_RETURN_IF_ERROR(CheckpointFrozen(/*for_resume=*/true));
    }
    return Status::OK();
  }();
  if (status.ok()) {
    // 3. Lift the poisoned watermark and publish the completed maximum:
    // durable-but-invisible commits become readable, the failed
    // timestamps are gone, and new commits are accepted again.
    txns_->ResetAfterRepair();
    for (auto& [name, def] : indexes_) {
      auto& clock = def.index->tree()->clock();
      clock.Publish(clock.Now());
    }
  }
  txns_->UnfreezeCommits();
  return status;
}

// ------------------------------------------------------ scrub & quarantine

void MultiVersionDB::AddQuarantine(const std::string& tree_name,
                                   uint32_t page_id, const Status& cause) {
  {
    std::lock_guard<std::mutex> lock(quarantine_mu_);
    auto inserted =
        quarantined_.emplace(std::make_pair(tree_name, page_id), cause);
    if (!inserted.second) return;  // already quarantined: count once
  }
  if (errors_ != nullptr) {
    errors_->NoteQuarantine(tree_name + " page " + std::to_string(page_id),
                            cause);
  }
}

std::vector<MultiVersionDB::QuarantinedPage> MultiVersionDB::quarantined_pages()
    const {
  std::vector<QuarantinedPage> out;
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  out.reserve(quarantined_.size());
  for (const auto& [key, cause] : quarantined_) {
    out.push_back({key.first, key.second, cause.ToString()});
  }
  return out;
}

uint64_t MultiVersionDB::quarantined_count() const {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  return quarantined_.size();
}

Status MultiVersionDB::Scrub(ScrubStats* stats) {
  ScrubStats pass;
  Status status;
  {
    // Serialized with checkpoints: an in-place page apply or a WAL
    // rotation mid-scan would read as torn. Commits keep flowing — the
    // scrub reads devices directly, never through the buffer pool, and
    // under no-steal nothing else writes base pages between checkpoints.
    std::lock_guard<std::mutex> lock(checkpoint_mu_);
    status = ScrubLocked(&pass);
  }
  if (status.ok()) {
    pass.passes = 1;
    std::lock_guard<std::mutex> lock(scrub_stats_mu_);
    scrub_totals_.Add(pass);
  }
  if (stats != nullptr) *stats = pass;
  return status;
}

ScrubStats MultiVersionDB::scrub_stats() const {
  std::lock_guard<std::mutex> lock(scrub_stats_mu_);
  return scrub_totals_;
}

Status MultiVersionDB::ScrubLocked(ScrubStats* stats) {
  ScrubRateLimiter limiter(options_.scrub_rate_mb_per_sec);
  MultiVersionDB* raw = this;

  struct TreeRef {
    std::string name;
    tsb_tree::TsbTree* tree;
  };
  std::vector<TreeRef> trees;
  trees.push_back({"primary", tree_.get()});
  for (auto& [name, def] : indexes_) {
    trees.push_back({name, def.index->tree()});
  }
  for (auto& t : trees) {
    // Base pages: header + trailer checksums and the page-id identity
    // against the device bytes. A hit quarantines exactly that page.
    std::set<uint32_t> hit;
    TSB_RETURN_IF_ERROR(ScrubPages(
        t.tree->pager()->device(), options_.tree.page_size, &limiter,
        [raw, &t, stats, &hit](uint32_t id, const Status& s) {
          hit.insert(id);
          raw->AddQuarantine(t.name, id, s);
          stats->pages_quarantined++;
        },
        stats));
    // Lost-write sweep: the device walk above cannot tell an old-but-valid
    // page from a current one, so re-check every page this process stamped
    // against its expected trailer LSN (catches dropped flushes — the meta
    // page included, which no ordinary read ever revisits). Pages the walk
    // already flagged are skipped so one bad page counts once.
    uint64_t stamped_checked = 0;
    TSB_RETURN_IF_ERROR(t.tree->pager()->VerifyStampedPages(
        [raw, &t, stats, &hit](uint32_t id, const Status& s) {
          if (!hit.insert(id).second) return;
          raw->AddQuarantine(t.name, id, s);
          stats->corruptions_detected++;
          stats->pages_quarantined++;
        },
        &stamped_checked));
    const uint64_t stamped_bytes = stamped_checked * options_.tree.page_size;
    stats->bytes_scanned += stamped_bytes;
    limiter.Consume(stamped_bytes);
    // Historical blobs: bypass the verified memo and the cache, and on a
    // mismatch evict both (sticky-detected). No quarantine map needed —
    // the blob read path re-verifies the device bytes and fails per read.
    AppendStore::BlobScrubResult blobs;
    const std::string tree_name = t.name;
    TSB_RETURN_IF_ERROR(t.tree->hist_store()->ScrubAll(
        [&tree_name](uint64_t offset, const Status& s) {
          TSB_LOG_WARN("scrub: %s historical blob @%llu corrupt: %s",
                       tree_name.c_str(), (unsigned long long)offset,
                       s.ToString().c_str());
        },
        &blobs, [&limiter](uint64_t bytes) { limiter.Consume(bytes); }));
    stats->blobs_scanned += blobs.blobs_scanned;
    stats->bytes_scanned += blobs.bytes_scanned;
    stats->corruptions_detected += blobs.corruptions;
  }

  // Live WAL, durable prefix only. checkpoint_mu_ pins wal_ (rotation
  // swaps it under this mutex); bytes below synced_lsn are immutable.
  if (wal_enabled_ && wal_ != nullptr) {
    Status wal_corruption;
    TSB_RETURN_IF_ERROR(ScrubWalFile(wal_->file(), wal_->synced_lsn(),
                                     &limiter, &wal_corruption, stats));
    if (!wal_corruption.ok()) {
      stats->corruptions_detected++;
      // A corrupt durable frame would replay garbage after a crash.
      // TRANSIENT by decree: Resume()'s recovery-grade checkpoint folds
      // the trusted in-memory state into the base and abandons this log
      // file entirely, which IS the repair.
      if (errors_ != nullptr) {
        errors_->Report("scrub wal", wal_corruption, ErrorClass::kTransient);
      }
    }
  }

  if (!path_.empty()) {
    // MANIFEST: its crc terminator re-validates the whole file. Hard on
    // mismatch — the manifest anchors recovery (live log name, checkpoint
    // LSN, index catalog); with it rotted there is nothing to resume onto.
    bool exists = false;
    Manifest m;
    Status ms = ReadManifest(path_, &exists, &m);
    stats->files_scanned++;
    if (ms.IsCorruption() || (ms.ok() && exists && !m.complete)) {
      Status c = ms.IsCorruption()
                     ? ms
                     : Status::Corruption("manifest incomplete",
                                          ManifestPath(path_));
      stats->corruptions_detected++;
      if (errors_ != nullptr) errors_->Report("scrub manifest", c);
    } else if (!ms.ok()) {
      return ms;
    }
    // Retired checkpoint journal — the quarantine repair source. Damage
    // here is not damage to the database (repair just loses its donor),
    // so it logs and counts but neither quarantines nor degrades.
    const std::string retired = wal::CheckpointJournal::RetiredPath(path_);
    struct stat st;
    if (::stat(retired.c_str(), &st) == 0) {
      uint64_t journal_bytes = 0;
      Status js = wal::CheckpointJournal::VerifyFile(
          retired, options_.tree.page_size, &journal_bytes);
      stats->files_scanned++;
      stats->bytes_scanned += journal_bytes;
      limiter.Consume(journal_bytes);
      if (js.IsCorruption()) {
        stats->corruptions_detected++;
        TSB_LOG_WARN("scrub: retired checkpoint journal corrupt (%s); "
                     "quarantine repair has no donor until the next "
                     "checkpoint retires a fresh one",
                     js.ToString().c_str());
      } else if (!js.ok()) {
        return js;
      }
    }
  }
  return Status::OK();
}

Status MultiVersionDB::RepairQuarantined(uint64_t* repaired) {
  if (repaired != nullptr) *repaired = 0;
  std::vector<std::pair<std::string, uint32_t>> pages;
  {
    std::lock_guard<std::mutex> lock(quarantine_mu_);
    for (const auto& [key, cause] : quarantined_) pages.push_back(key);
  }
  if (pages.empty() || path_.empty()) return Status::OK();
  const std::string retired = wal::CheckpointJournal::RetiredPath(path_);
  struct stat st;
  if (::stat(retired.c_str(), &st) != 0) {
    // No retained images yet (no checkpoint has retired a journal): the
    // pages stay quarantined until one does or the operator reopens.
    return Status::OK();
  }
  std::map<std::pair<std::string, uint32_t>, std::string> images;
  TSB_RETURN_IF_ERROR(wal::CheckpointJournal::LoadImages(
      retired, options_.tree.page_size, &images));
  // Page writes must not race a checkpoint's in-place apply phase.
  std::lock_guard<std::mutex> lock(checkpoint_mu_);
  uint64_t fixed = 0;
  for (const auto& key : pages) {
    const std::string file = key.first == "primary"
                                 ? "current.tsb"
                                 : "index-" + key.first + ".current.tsb";
    auto it = images.find({file, key.second});
    if (it == images.end()) continue;  // no retained image: stays put
    tsb_tree::TsbTree* tree = nullptr;
    if (key.first == "primary") {
      tree = tree_.get();
    } else {
      auto idx = indexes_.find(key.first);
      if (idx == indexes_.end()) continue;
      tree = idx->second.index->tree();
    }
    // Sound because corruption is only ever detected on a buffer-pool
    // MISS: there is no (newer) in-memory copy, and under no-steal base
    // pages change only at checkpoints — so the image the last checkpoint
    // retired IS this page's correct current content. Write re-seals it
    // and stamps the live flush LSN, resetting the lost-write expectation.
    std::string image = it->second;
    TSB_RETURN_IF_ERROR(tree->pager()->Write(key.second, image.data()));
    {
      std::lock_guard<std::mutex> qlock(quarantine_mu_);
      quarantined_.erase(key);
    }
    fixed++;
    TSB_LOG_INFO("repaired quarantined page %u of %s from retired journal",
                 key.second, key.first.c_str());
  }
  if (fixed > 0 && errors_ != nullptr) errors_->NoteRepairs(fixed);
  if (repaired != nullptr) *repaired = fixed;
  return Status::OK();
}

void MultiVersionDB::StartScrubThread() {
  scrub_thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(scrub_thread_mu_);
    while (!scrub_stop_) {
      if (scrub_cv_.wait_for(
              lock, std::chrono::milliseconds(options_.scrub_interval_ms),
              [this] { return scrub_stop_; })) {
        break;
      }
      lock.unlock();
      ScrubStats pass;
      Status s = Scrub(&pass);
      if (!s.ok()) {
        TSB_LOG_WARN("background scrub pass failed: %s",
                     s.ToString().c_str());
      } else if (pass.corruptions_detected > 0) {
        TSB_LOG_WARN("background scrub detected %llu corruptions",
                     (unsigned long long)pass.corruptions_detected);
      }
      lock.lock();
    }
  });
}

void MultiVersionDB::StopScrubThread() {
  if (!scrub_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(scrub_thread_mu_);
    scrub_stop_ = true;
  }
  scrub_cv_.notify_all();
  scrub_thread_.join();
}

}  // namespace db
}  // namespace tsb
