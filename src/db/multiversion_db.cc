#include "db/multiversion_db.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "storage/file_device.h"
#include "storage/worm_file_device.h"

namespace tsb {
namespace db {

MultiVersionDB::~MultiVersionDB() = default;

Status MultiVersionDB::Open(Device* magnetic, Device* historical,
                            const DbOptions& options,
                            std::unique_ptr<MultiVersionDB>* out) {
  std::unique_ptr<MultiVersionDB> mvdb(new MultiVersionDB(options));
  TSB_RETURN_IF_ERROR(tsb_tree::TsbTree::Open(magnetic, historical,
                                              options.tree, &mvdb->tree_));
  mvdb->txns_ = std::make_unique<txn::TxnManager>(mvdb->tree_.get());
  MultiVersionDB* raw = mvdb.get();
  mvdb->txns_->SetCommitHook(
      [raw](const std::string& key, const std::string* old_value,
            const std::string& new_value, Timestamp ts) {
        return raw->OnCommit(key, old_value, new_value, ts);
      });
  *out = std::move(mvdb);
  return Status::OK();
}

namespace {

/// Opens the file-backed historical device per options: WORM sector
/// semantics when requested, else a plain erasable file that still pays
/// optical cost parameters (the simulated 1989 archive medium).
Status OpenHistoricalFile(const std::string& file, const DbOptions& options,
                          std::unique_ptr<Device>* out) {
  if (options.worm_historical) {
    WormFileDevice* dev = nullptr;
    TSB_RETURN_IF_ERROR(WormFileDevice::Open(file, &dev,
                                             options.worm_sector_size,
                                             CostParams::OpticalWorm(),
                                             options.enable_mmap));
    out->reset(dev);
    return Status::OK();
  }
  FileDevice* dev = nullptr;
  TSB_RETURN_IF_ERROR(FileDevice::Open(file, &dev,
                                       DeviceKind::kOpticalErasable,
                                       CostParams::OpticalWorm(),
                                       options.enable_mmap));
  out->reset(dev);
  return Status::OK();
}

}  // namespace

Status MultiVersionDB::Open(const std::string& path, const DbOptions& options,
                            std::unique_ptr<MultiVersionDB>* out) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    // Only a genuinely absent path is a create candidate; EACCES/ENOTDIR
    // and friends are real errors, not "missing database".
    if (errno != ENOENT) {
      return Status::IOError("stat " + path, strerror(errno));
    }
    if (!options.create_if_missing) {
      return Status::IOError("no such database", path);
    }
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IOError("mkdir " + path, strerror(errno));
    }
  } else if (!S_ISDIR(st.st_mode)) {
    return Status::InvalidArgument("database path is not a directory", path);
  }

  FileDevice* mag = nullptr;
  TSB_RETURN_IF_ERROR(FileDevice::Open(path + "/current.tsb", &mag,
                                       DeviceKind::kMagnetic,
                                       CostParams::Magnetic(),
                                       options.enable_mmap));
  std::unique_ptr<Device> magnetic(mag);
  std::unique_ptr<Device> historical;
  TSB_RETURN_IF_ERROR(
      OpenHistoricalFile(path + "/history.tsb", options, &historical));

  std::unique_ptr<MultiVersionDB> mvdb;
  TSB_RETURN_IF_ERROR(Open(magnetic.get(), historical.get(), options, &mvdb));
  mvdb->path_ = path;
  mvdb->owned_magnetic_ = std::move(magnetic);
  mvdb->owned_historical_ = std::move(historical);
  *out = std::move(mvdb);
  return Status::OK();
}

Status MultiVersionDB::Destroy(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    if (errno == ENOENT) return Status::OK();  // nothing to destroy
    return Status::IOError("opendir " + path, strerror(errno));
  }
  Status status = Status::OK();
  const std::string suffix = ".tsb";
  while (struct dirent* e = ::readdir(dir)) {
    const std::string name = e->d_name;
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;  // not ours; the rmdir below will surface it
    }
    const std::string file = path + "/" + name;
    if (::unlink(file.c_str()) != 0) {
      status = Status::IOError("unlink " + file, strerror(errno));
    }
  }
  ::closedir(dir);
  TSB_RETURN_IF_ERROR(status);
  if (::rmdir(path.c_str()) != 0) {
    return Status::IOError("rmdir " + path, strerror(errno));
  }
  return Status::OK();
}

// ---------------------------------------------------------------- writes

Status MultiVersionDB::Write(const WriteBatch& batch, Timestamp* commit_ts) {
  return txns_->Write(batch, commit_ts);
}

Status MultiVersionDB::Put(const Slice& key, const Slice& value,
                           Timestamp* commit_ts) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(batch, commit_ts);
}

// ---------------------------------------------------------------- reads

Status MultiVersionDB::Get(const ReadOptions& options, const Slice& key,
                           std::string* value, Timestamp* ts) {
  return tree_->Get(options, key, value, ts);
}

Status MultiVersionDB::Get(const ReadOptions& options, const Slice& key,
                           PinnableValue* value) {
  return tree_->Get(options, key, value);
}

Status MultiVersionDB::Get(const Slice& key, std::string* value,
                           Timestamp* ts) {
  // Default ReadOptions read at the committed watermark: a reader must
  // never observe the partial stamps of an in-flight (or failed)
  // transaction. Quiesced, this is identical to a latest-version read.
  return Get(ReadOptions(), key, value, ts);
}

Status MultiVersionDB::GetAsOf(const Slice& key, Timestamp t,
                               std::string* value, Timestamp* ts) {
  ReadOptions options;
  options.as_of = t;
  return Get(options, key, value, ts);
}

std::unique_ptr<VersionCursor> MultiVersionDB::NewCursor(
    const ReadOptions& options) {
  return tree_->NewCursor(options);
}

std::unique_ptr<tsb_tree::SnapshotIterator> MultiVersionDB::NewSnapshotIterator(
    Timestamp t) {
  return tree_->NewSnapshotIterator(t);
}

std::unique_ptr<tsb_tree::HistoryIterator> MultiVersionDB::NewHistoryIterator(
    const Slice& key) {
  return tree_->NewHistoryIterator(key);
}

// ---------------------------------------------------------------- indexes

Status MultiVersionDB::CreateSecondaryIndex(const std::string& name,
                                            KeyExtractor extract,
                                            Device* magnetic,
                                            Device* historical) {
  if (indexes_.count(name) > 0) {
    return Status::InvalidArgument("index already exists", name);
  }
  IndexEntryDef def;
  def.extract = std::move(extract);
  if (magnetic == nullptr) {
    if (!path_.empty()) {
      // Path-backed DB: the index persists alongside the primary.
      FileDevice* dev = nullptr;
      TSB_RETURN_IF_ERROR(FileDevice::Open(
          path_ + "/index-" + name + ".current.tsb", &dev,
          DeviceKind::kMagnetic, CostParams::Magnetic(),
          options_.enable_mmap));
      def.owned_magnetic.reset(dev);
    } else {
      def.owned_magnetic = std::make_unique<MemDevice>();
    }
    magnetic = def.owned_magnetic.get();
  }
  if (historical == nullptr) {
    if (!path_.empty()) {
      FileDevice* dev = nullptr;
      TSB_RETURN_IF_ERROR(FileDevice::Open(
          path_ + "/index-" + name + ".hist.tsb", &dev,
          DeviceKind::kOpticalErasable, CostParams::OpticalWorm(),
          options_.enable_mmap));
      def.owned_historical.reset(dev);
    } else {
      def.owned_historical = std::make_unique<MemDevice>(
          DeviceKind::kOpticalErasable, CostParams::OpticalWorm());
    }
    historical = def.owned_historical.get();
  }
  std::unique_ptr<tsb_tree::TsbTree> tree;
  TSB_RETURN_IF_ERROR(
      tsb_tree::TsbTree::Open(magnetic, historical, options_.tree, &tree));
  def.index = std::make_unique<SecondaryIndex>(std::move(tree));
  indexes_.emplace(name, std::move(def));
  return Status::OK();
}

SecondaryIndex* MultiVersionDB::index(const std::string& name) {
  auto it = indexes_.find(name);
  return it == indexes_.end() ? nullptr : it->second.index.get();
}

Status MultiVersionDB::OnCommit(const std::string& key,
                                const std::string* old_value,
                                const std::string& new_value, Timestamp ts) {
  for (auto& [name, def] : indexes_) {
    std::optional<std::string> old_sk;
    if (old_value != nullptr) old_sk = def.extract(Slice(*old_value));
    std::optional<std::string> new_sk = def.extract(Slice(new_value));
    if (old_sk == new_sk) continue;  // secondary field unchanged
    if (old_sk.has_value()) {
      TSB_RETURN_IF_ERROR(def.index->Remove(*old_sk, key, ts));
    }
    if (new_sk.has_value()) {
      TSB_RETURN_IF_ERROR(def.index->Add(*new_sk, key, ts));
    }
  }
  return Status::OK();
}

Status MultiVersionDB::FindBySecondary(
    const ReadOptions& options, const std::string& index_name,
    const Slice& secondary,
    std::vector<std::pair<std::string, std::string>>* key_values) {
  key_values->clear();
  SecondaryIndex* idx = index(index_name);
  if (idx == nullptr) {
    return Status::InvalidArgument("no such index", index_name);
  }
  // Resolve the sentinel ONCE against the primary's watermark so the
  // index lookup and the primary fetches observe the same time.
  const Timestamp t = tree_->ResolveAsOf(options.as_of);
  std::vector<std::string> pks;
  TSB_RETURN_IF_ERROR(idx->LookupAsOf(secondary, t, &pks));
  ReadOptions fetch = options;
  fetch.as_of = t;
  for (const std::string& pk : pks) {
    std::string value;
    // The timestamps in the secondary index locate the primary version
    // (section 3.6): read the primary record as of the same time.
    Status s = tree_->Get(fetch, pk, &value);
    if (s.IsNotFound()) continue;  // index entry newer than primary? skip
    TSB_RETURN_IF_ERROR(s);
    key_values->emplace_back(pk, std::move(value));
  }
  return Status::OK();
}

Status MultiVersionDB::FindBySecondaryAsOf(
    const std::string& index_name, const Slice& secondary, Timestamp t,
    std::vector<std::pair<std::string, std::string>>* key_values) {
  ReadOptions options;
  options.as_of = t;
  return FindBySecondary(options, index_name, secondary, key_values);
}

// ---------------------------------------------------------------- stats

HistReadStats MultiVersionDB::HistStats() const {
  HistReadStats s = tree_->HistStats();
  for (const auto& [name, def] : indexes_) {
    s.Add(def.index->tree()->HistStats());
  }
  return s;
}

BufferPoolStats MultiVersionDB::PoolStats() const {
  BufferPoolStats s = tree_->PoolStats();
  for (const auto& [name, def] : indexes_) {
    s.Add(def.index->tree()->PoolStats());
  }
  return s;
}

Status MultiVersionDB::Flush() {
  TSB_RETURN_IF_ERROR(tree_->Flush());
  for (auto& [name, def] : indexes_) {
    TSB_RETURN_IF_ERROR(def.index->tree()->Flush());
  }
  return Status::OK();
}

}  // namespace db
}  // namespace tsb
