#include "db/multiversion_db.h"

namespace tsb {
namespace db {

Status MultiVersionDB::Open(Device* magnetic, Device* historical,
                            const DbOptions& options,
                            std::unique_ptr<MultiVersionDB>* out) {
  std::unique_ptr<MultiVersionDB> mvdb(new MultiVersionDB(options));
  TSB_RETURN_IF_ERROR(tsb_tree::TsbTree::Open(magnetic, historical,
                                              options.tree, &mvdb->tree_));
  mvdb->txns_ = std::make_unique<txn::TxnManager>(mvdb->tree_.get());
  MultiVersionDB* raw = mvdb.get();
  mvdb->txns_->SetCommitHook(
      [raw](const std::string& key, const std::string* old_value,
            const std::string& new_value, Timestamp ts) {
        return raw->OnCommit(key, old_value, new_value, ts);
      });
  *out = std::move(mvdb);
  return Status::OK();
}

Status MultiVersionDB::Put(const Slice& key, const Slice& value,
                           Timestamp* commit_ts) {
  std::unique_ptr<txn::Transaction> t;
  TSB_RETURN_IF_ERROR(Begin(&t));
  Status s = t->Put(key, value);
  if (!s.ok()) {
    t->Abort();
    return s;
  }
  return t->Commit(commit_ts);
}

Status MultiVersionDB::Get(const Slice& key, std::string* value,
                           Timestamp* ts) {
  // Read at the committed watermark, not the raw current axis: a reader
  // must never observe the partial stamps of an in-flight (or failed)
  // transaction. Quiesced, this is identical to a latest-version read.
  return tree_->GetAsOf(key, tree_->VisibleNow(), value, ts);
}

Status MultiVersionDB::GetAsOf(const Slice& key, Timestamp t,
                               std::string* value, Timestamp* ts) {
  return tree_->GetAsOf(key, t, value, ts);
}

std::unique_ptr<tsb_tree::SnapshotIterator> MultiVersionDB::NewSnapshotIterator(
    Timestamp t) {
  return tree_->NewSnapshotIterator(t);
}

std::unique_ptr<tsb_tree::HistoryIterator> MultiVersionDB::NewHistoryIterator(
    const Slice& key) {
  return tree_->NewHistoryIterator(key);
}

Status MultiVersionDB::CreateSecondaryIndex(const std::string& name,
                                            KeyExtractor extract,
                                            Device* magnetic,
                                            Device* historical) {
  if (indexes_.count(name) > 0) {
    return Status::InvalidArgument("index already exists", name);
  }
  IndexEntryDef def;
  def.extract = std::move(extract);
  if (magnetic == nullptr) {
    def.owned_magnetic = std::make_unique<MemDevice>();
    magnetic = def.owned_magnetic.get();
  }
  if (historical == nullptr) {
    def.owned_historical = std::make_unique<MemDevice>(
        DeviceKind::kOpticalErasable, CostParams::OpticalWorm());
    historical = def.owned_historical.get();
  }
  std::unique_ptr<tsb_tree::TsbTree> tree;
  TSB_RETURN_IF_ERROR(
      tsb_tree::TsbTree::Open(magnetic, historical, options_.tree, &tree));
  def.index = std::make_unique<SecondaryIndex>(std::move(tree));
  indexes_.emplace(name, std::move(def));
  return Status::OK();
}

SecondaryIndex* MultiVersionDB::index(const std::string& name) {
  auto it = indexes_.find(name);
  return it == indexes_.end() ? nullptr : it->second.index.get();
}

Status MultiVersionDB::OnCommit(const std::string& key,
                                const std::string* old_value,
                                const std::string& new_value, Timestamp ts) {
  for (auto& [name, def] : indexes_) {
    std::optional<std::string> old_sk;
    if (old_value != nullptr) old_sk = def.extract(Slice(*old_value));
    std::optional<std::string> new_sk = def.extract(Slice(new_value));
    if (old_sk == new_sk) continue;  // secondary field unchanged
    if (old_sk.has_value()) {
      TSB_RETURN_IF_ERROR(def.index->Remove(*old_sk, key, ts));
    }
    if (new_sk.has_value()) {
      TSB_RETURN_IF_ERROR(def.index->Add(*new_sk, key, ts));
    }
  }
  return Status::OK();
}

Status MultiVersionDB::FindBySecondaryAsOf(
    const std::string& index_name, const Slice& secondary, Timestamp t,
    std::vector<std::pair<std::string, std::string>>* key_values) {
  key_values->clear();
  SecondaryIndex* idx = index(index_name);
  if (idx == nullptr) {
    return Status::InvalidArgument("no such index", index_name);
  }
  std::vector<std::string> pks;
  TSB_RETURN_IF_ERROR(idx->LookupAsOf(secondary, t, &pks));
  for (const std::string& pk : pks) {
    std::string value;
    // The timestamps in the secondary index locate the primary version
    // (section 3.6): read the primary record as of the same time.
    Status s = tree_->GetAsOf(pk, t, &value);
    if (s.IsNotFound()) continue;  // index entry newer than primary? skip
    TSB_RETURN_IF_ERROR(s);
    key_values->emplace_back(pk, std::move(value));
  }
  return Status::OK();
}

HistReadStats MultiVersionDB::HistStats() const {
  HistReadStats s = tree_->HistStats();
  for (const auto& [name, def] : indexes_) {
    s.Add(def.index->tree()->HistStats());
  }
  return s;
}

BufferPoolStats MultiVersionDB::PoolStats() const {
  BufferPoolStats s = tree_->PoolStats();
  for (const auto& [name, def] : indexes_) {
    s.Add(def.index->tree()->PoolStats());
  }
  return s;
}

Status MultiVersionDB::Flush() {
  TSB_RETURN_IF_ERROR(tree_->Flush());
  for (auto& [name, def] : indexes_) {
    TSB_RETURN_IF_ERROR(def.index->tree()->Flush());
  }
  return Status::OK();
}

}  // namespace db
}  // namespace tsb
