// MultiVersionDB: the library's top-level facade — a versioned,
// timestamped database with a non-deletion policy (the paper's target
// applications: financial transactions, transcripts, engineering design
// histories, legal and medical records).
//
// Composes the TSB-tree primary index, the transaction layer (commit-time
// stamping, abort erase, lock-free readers) and secondary TSB-tree indexes
// maintained through a commit hook.
//
// The public surface in one breath:
//   Open(path, options)          — file-backed DB that OWNS its devices
//   Write(batch) / Put           — atomic writes under one commit time
//   Get(ReadOptions, key, ...)   — point reads; PinnableValue = zero-copy
//   NewCursor(ReadOptions)       — key-axis + time-axis traversal
//   Begin() / BeginReadOnly()    — explicit transactions
#ifndef TSBTREE_DB_MULTIVERSION_DB_H_
#define TSBTREE_DB_MULTIVERSION_DB_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "db/error_handler.h"
#include "db/scrubber.h"
#include "db/secondary_index.h"
#include "storage/fault_device.h"
#include "storage/mem_device.h"
#include "tsb/pinnable_value.h"
#include "tsb/tsb_tree.h"
#include "txn/txn_manager.h"
#include "txn/write_batch.h"
#include "wal/wal.h"

namespace tsb {
namespace db {

/// Per-read options (the read timestamp is the explicit choice point of
/// every multiversion query; see tsb_tree::ReadOptions for the fields).
using ReadOptions = tsb_tree::ReadOptions;
/// Zero-copy point-read result slot (see tsb/pinnable_value.h).
using PinnableValue = tsb_tree::PinnableValue;
/// Atomic multi-key write (see txn/write_batch.h).
using WriteBatch = txn::WriteBatch;
/// Unified key x time cursor (see tsb/cursor.h).
using VersionCursor = tsb_tree::VersionCursor;

/// Extracts the secondary key from a record value; return std::nullopt if
/// the record is not indexed.
using KeyExtractor =
    std::function<std::optional<std::string>(const Slice& value)>;

struct DbOptions {
  tsb_tree::TsbOptions tree;

  /// Commit clock shared with other databases (the sharded facade gives
  /// every shard one clock so a timestamp allocated on any shard is
  /// meaningful on all of them). When set it overrides
  /// tree.external_clock for the PRIMARY tree; secondary-index trees
  /// keep private clocks either way (index replay publishes its own
  /// clock, which must never advance the shared watermark past in-flight
  /// cross-shard commits). The DB holds the shared_ptr, so the clock
  /// outlives every tree that points at it. nullptr = private clock.
  std::shared_ptr<LogicalClock> shared_clock;

  // ---- path-based Open only (ignored by the raw-device overload) ----

  /// Create the database directory when absent; when false, opening a
  /// missing path fails.
  bool create_if_missing = true;
  /// Serve reads zero-copy out of file mappings (madvise-hinted). Off =
  /// every device read goes through pread (measurable baseline).
  bool enable_mmap = true;
  /// Enforce write-once sector semantics on the historical file — the
  /// paper's optical archive, with real durability. Off = plain erasable
  /// file carrying optical cost parameters.
  bool worm_historical = false;
  /// Sector grid for worm_historical.
  uint32_t worm_sector_size = 1024;
  /// Write-ahead log + crash recovery. Every commit appends its batch to
  /// `wal-NNNNNN.tsb` before stamping; Open replays the committed tail
  /// past the last checkpoint. Disabling trades kill -9 safety for commit
  /// latency (the buffer pool then steals dirty pages freely).
  bool enable_wal = true;
  /// When the log becomes durable. kGroup (default): every commit returns
  /// only after an fdatasync covers it; concurrent committers share one
  /// sync (group commit). kBackground: a flusher thread syncs every
  /// wal_background_sync_ms. kOff: the OS decides (still survives process
  /// kill — page cache — but not power loss).
  wal::WalSyncMode wal_sync = wal::WalSyncMode::kGroup;
  /// Flush cadence for WalSyncMode::kBackground.
  uint32_t wal_background_sync_ms = 10;
  /// Checkpoint (and rotate the log) once the live WAL file exceeds this
  /// many bytes — bounds recovery work. A checkpoint also runs at clean
  /// close.
  uint64_t wal_checkpoint_bytes = 8u << 20;
  /// Decorates every device a path-based Open creates internally (the
  /// primary magnetic/historical pair and per-index devices) before the
  /// trees see it. `role` names the device ("magnetic", "historical",
  /// "index-<name>.magnetic", ...). Fault-injection tests wrap in a
  /// FaultInjectingDevice here; empty = no wrapping. The raw-device Open
  /// overload ignores this (the caller already controls its devices).
  std::function<std::unique_ptr<Device>(const std::string& role,
                                        std::unique_ptr<Device> device)>
      wrap_device;
  /// Fault plan the WAL consults on every frame append (FaultOp::kAppend)
  /// and fdatasync (FaultOp::kSync) — including rotated log files.
  /// nullptr = no injection.
  std::shared_ptr<FaultPlan> wal_fault_plan;
  /// Verify page checksums (and the lost-write trailer LSN) on every
  /// buffer-pool miss read. Off trades inline detection for read latency:
  /// corruption is then caught only by the scrubber / TreeChecker. The
  /// historical axis is unaffected (blob CRCs have their own policy via
  /// ReadOptions::verify_checksums and the verified memo).
  bool paranoid_checks = true;
  /// Run Scrub() periodically on a background thread (path-based DBs).
  bool scrub_background = false;
  /// Cadence for scrub_background.
  uint32_t scrub_interval_ms = 60000;
  /// Scrub read-rate cap in MB/s shared by background and explicit
  /// Scrub() calls; 0 = unthrottled.
  uint64_t scrub_rate_mb_per_sec = 0;
  /// Retry Resume() in the background after a TRANSIENT background error
  /// (ENOSPC, EIO), with bounded exponential backoff. Hard errors
  /// (corruption, WORM violations) never auto-resume.
  bool auto_resume = false;
  uint32_t auto_resume_backoff_initial_ms = 100;
  uint32_t auto_resume_backoff_max_ms = 5000;
  /// 0 = keep retrying until the error heals or the DB closes.
  uint32_t auto_resume_max_retries = 0;
  /// Extractors for secondary indexes the MANIFEST catalogs, keyed by
  /// index name. Open re-registers every cataloged index automatically;
  /// an index found here is immediately queryable AND maintained. An
  /// index absent from this registry is attached extractor-less: reads
  /// (FindBySecondary) work, but a commit touching the primary fails
  /// until CreateSecondaryIndex installs its extractor — silently
  /// letting the index go stale would corrupt it.
  std::map<std::string, KeyExtractor> index_extractors;
};

/// A multiversion database over one primary TSB-tree.
///
/// Thread model (paper section 4.1):
///  - Reads (Get, cursors, BeginReadOnly, FindBySecondary) are safe from
///    any number of threads and never block on updaters: read-only
///    transactions capture a timestamp with one atomic load and descend
///    the tree under shared page latches only.
///  - Writes (Put, Write(batch), transactions) are safe from multiple
///    threads; the lock table resolves write-write conflicts
///    first-writer-wins. With TsbOptions::concurrent_writers the tree
///    runs writer descents in parallel under optimistic latch coupling;
///    otherwise page mutations serialize internally (single-writer
///    discipline). A DB with secondary indexes commits serially either
///    way — index maintenance must apply in timestamp order.
///  - CreateSecondaryIndex must complete before concurrent writes begin
///    (index registration is not latched — it is a schema operation).
class MultiVersionDB {
 public:
  /// Opens (creating, per options) the database directory `path`. The DB
  /// creates and OWNS its devices: a file-backed magnetic device for the
  /// current database and a file-backed historical device (WORM sector
  /// semantics when options.worm_historical), both honoring
  /// options.enable_mmap. State persists across reopen. A MANIFEST file
  /// in the directory records the device geometry (page size, WORM mode +
  /// sector grid, mmap flag); reopening with mismatched geometry fails
  /// with InvalidArgument instead of corrupting the stored files
  /// (enable_mmap is a read-path choice and may change freely). The
  /// MANIFEST also catalogs secondary indexes: Open re-registers each one
  /// automatically (see DbOptions::index_extractors), so index data is
  /// never silently orphaned by a reopen. A `verified.tsb` sidecar
  /// persists the historical store's CRC-verified blob set across
  /// restarts, so a reopened DB serves cold mapped reads at memory speed
  /// instead of re-checksumming every blob on first touch.
  static Status Open(const std::string& path, const DbOptions& options,
                     std::unique_ptr<MultiVersionDB>* out);

  /// Raw-device overload (tests, simulations): `magnetic` and
  /// `historical` back the PRIMARY index and must outlive the DB.
  static Status Open(Device* magnetic, Device* historical,
                     const DbOptions& options,
                     std::unique_ptr<MultiVersionDB>* out);

  /// Deletes a path-based database: every device file the DB layout owns
  /// (`*.tsb` — primary and secondary-index devices) and then the
  /// directory itself. Refuses to touch unrecognized files (the rmdir
  /// then fails, surfacing them). The DB must be closed first.
  static Status Destroy(const std::string& path);

  ~MultiVersionDB();

  // ---- writes ----

  /// Applies `batch` atomically: one commit timestamp stamps every
  /// record, secondary indexes update with it, readers see all of it or
  /// none. A write-write conflict with an open transaction fails the
  /// whole batch with nothing applied.
  Status Write(const WriteBatch& batch, Timestamp* commit_ts = nullptr);

  /// Writes one record in its own atomic commit (a one-entry batch).
  Status Put(const Slice& key, const Slice& value,
             Timestamp* commit_ts = nullptr);

  // ---- reads ----

  /// Point read at options.as_of (default: latest committed state),
  /// copying the value.
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value, Timestamp* ts = nullptr);

  /// Zero-copy point read: when the version lives in the historical
  /// store, the PinnableValue pins the node blob (shared-blob cache or
  /// file mapping) and the value is a view into it — no value memcpy.
  Status Get(const ReadOptions& options, const Slice& key,
             PinnableValue* value);

  /// Legacy wrappers over the ReadOptions surface.
  Status Get(const Slice& key, std::string* value, Timestamp* ts = nullptr);
  Status GetAsOf(const Slice& key, Timestamp t, std::string* value,
                 Timestamp* ts = nullptr);

  /// The unified traversal surface: Seek/Next/Prev over keys as of
  /// options.as_of, NextVersion/SeekTimestamp along the current key's
  /// time axis.
  std::unique_ptr<VersionCursor> NewCursor(
      const ReadOptions& options = ReadOptions());

  /// Legacy wrappers: key-ordered state as of `t` (a VersionCursor), and
  /// all committed versions of `key`, newest first.
  std::unique_ptr<tsb_tree::SnapshotIterator> NewSnapshotIterator(Timestamp t);
  std::unique_ptr<tsb_tree::HistoryIterator> NewHistoryIterator(
      const Slice& key);

  // ---- transactions ----

  /// Starts an updater transaction (commit stamps all its writes with one
  /// timestamp and maintains secondary indexes).
  Status Begin(std::unique_ptr<txn::Transaction>* out) {
    return txns_->Begin(out);
  }

  /// Lock-free read-only transaction at the current time (section 4.1).
  txn::ReadTransaction BeginReadOnly() { return txns_->BeginReadOnly(); }

  // ---- secondary indexes (section 3.6) ----

  /// Registers a secondary index maintained from `extract`. If devices
  /// are null the DB creates (and owns) devices for the index: files
  /// under the database directory for a path-opened DB (so the index
  /// persists with the primary and is cataloged in the MANIFEST),
  /// in-memory devices otherwise.
  /// Must be called before any writes touch indexed records.
  /// Calling it for an index the MANIFEST re-attached at Open installs
  /// `extract` on the existing index and returns OK (extractors are code,
  /// not data — they cannot persist, so reopen re-binds them here or via
  /// DbOptions::index_extractors).
  Status CreateSecondaryIndex(const std::string& name, KeyExtractor extract,
                              Device* magnetic = nullptr,
                              Device* historical = nullptr);

  /// Returns the named index (nullptr if absent).
  SecondaryIndex* index(const std::string& name);

  /// Records whose secondary key under `index_name` was `secondary` at
  /// options.as_of, with their primary values fetched as of the same
  /// time.
  Status FindBySecondary(const ReadOptions& options,
                         const std::string& index_name,
                         const Slice& secondary,
                         std::vector<std::pair<std::string, std::string>>*
                             key_values);

  /// Legacy wrapper over FindBySecondary.
  Status FindBySecondaryAsOf(const std::string& index_name,
                             const Slice& secondary, Timestamp t,
                             std::vector<std::pair<std::string, std::string>>*
                                 key_values);

  // ---- maintenance ----

  /// What Open's recovery pass did (path-based WAL-enabled DBs; zeros
  /// after a clean shutdown).
  struct RecoveryStats {
    /// A crashed checkpoint's double-write journal was re-applied.
    bool journal_applied = false;
    /// The WAL ended in a torn (partially written) frame that was
    /// truncated away.
    bool tail_truncated = false;
    /// Uncommitted (never-stamped) records erased before replay.
    uint64_t purged_uncommitted = 0;
    /// Commit frames re-applied from the WAL (frames already present in
    /// the checkpointed base are detected and skipped).
    uint64_t frames_replayed = 0;
    uint64_t ops_replayed = 0;
    /// Bytes of WAL scanned by replay.
    uint64_t wal_bytes_scanned = 0;
  };
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  /// Forces a checkpoint: freezes commits, makes the WAL durable, writes
  /// every tree's dirty pages + metadata crash-atomically (double-write
  /// journal), then truncates or rotates the log. Runs automatically when
  /// the WAL exceeds DbOptions::wal_checkpoint_bytes and at clean close.
  /// No-op for DBs without a WAL.
  Status Checkpoint();

  /// The write-ahead log (nullptr when disabled / raw-device DB). Exposed
  /// for stats; appending to it directly voids the warranty. Rotation
  /// replaces the object, so do not cache or call this concurrently with
  /// writes — quiesced inspection only.
  wal::Wal* wal() { return wal_.get(); }

  /// The most recent failure of an automatic (size-triggered) checkpoint,
  /// OK if none. Write() does NOT surface that failure — the commit it
  /// rode on already landed durably in the log, and returning an error
  /// for a committed write invites a double-apply retry. Health checks
  /// poll here instead; the next checkpoint (automatic or explicit)
  /// clears it on success.
  Status LastCheckpointError() const;

  // ---- degraded read-only mode (see db/error_handler.h) ----

  /// The sticky background error, OK when healthy. Any failed page write,
  /// WAL append/sync, checkpoint, or manifest rename lands here and flips
  /// the DB into degraded read-only mode: reads/cursors/snapshots keep
  /// serving, Write/Checkpoint/Flush fail fast with this cause.
  Status BackgroundError() const;
  bool degraded() const;

  /// Manual recovery from a TRANSIENT background error: purges the
  /// half-stamped records of every failed commit, re-establishes
  /// durability from the in-memory pages with a recovery-grade checkpoint
  /// onto a FRESH log file (the poisoned one is abandoned, never re-
  /// synced — a failed fsync may have dropped its tail with the error
  /// consumed), then lifts the read watermark. Refuses hard errors with
  /// the original cause. See also DbOptions::auto_resume.
  Status Resume();

  /// Degradation/resume counters plus the last reported error.
  ErrorHandlerStats error_stats() const;
  ErrorHandler* error_handler() { return errors_.get(); }

  // ---- scrub & quarantine (see db/scrubber.h) ----

  /// One full scrub pass, synchronously: every page slot of every base
  /// device (primary + secondary indexes), every historical blob
  /// (bypassing and, on mismatch, invalidating the verified memo), the
  /// durable prefix of the live WAL, the MANIFEST, and the retired
  /// checkpoint journal. Serializes against checkpoints (commits keep
  /// flowing). Corrupt pages are quarantined per page; WAL-tail hits
  /// degrade the DB transiently (Resume repairs by checkpointing onto a
  /// fresh log); MANIFEST hits degrade hard. Returns non-OK only for I/O
  /// errors running the scrub itself — detected corruption is reported
  /// through stats + the ErrorHandler, not the return status.
  Status Scrub(ScrubStats* stats = nullptr);

  /// Cumulative totals over every completed scrub pass.
  ScrubStats scrub_stats() const;

  /// One quarantined page: reads touching it fail with its cause;
  /// everything else keeps serving. Resume() repairs quarantined pages
  /// from the retired checkpoint journal when the image is present.
  struct QuarantinedPage {
    std::string tree;  ///< "primary" or the secondary index name
    uint32_t page_id;
    std::string cause;
  };
  std::vector<QuarantinedPage> quarantined_pages() const;
  uint64_t quarantined_count() const;

  // ---- sharded-facade hooks (see src/shard/sharded_db.h) ----

  /// Re-applies one externally logged commit (a sharded coordinator's
  /// decision record) to this DB: primary records plus secondary-index
  /// maintenance. Nothing is appended to this DB's own WAL — the slice
  /// stays durable through the COORDINATOR's record, which the facade
  /// keeps until every shard has checkpointed past it. Idempotent: a
  /// slice already present (stamped before the crash, or carried by the
  /// checkpointed base) is detected and skipped. Must not race other
  /// writes to the same keys.
  Status ReplayExternalCommit(const wal::WalCommit& commit);

  /// Purges every record stamped `ts` from the primary and all secondary
  /// indexes — the repair hook for a cross-shard commit that failed
  /// mid-stamp on some shard. Call only while `ts` is above the
  /// published watermark (no reader has seen the records).
  Status PurgeCommittedAt(Timestamp ts, uint64_t* purged = nullptr);

  Status Flush();
  Status ComputeSpaceStats(tsb_tree::SpaceStats* out) {
    return tree_->ComputeSpaceStats(out);
  }

  /// Historical read-path counters for the primary index plus every
  /// secondary index: blob reads/bytes, shared-blob cache hit ratio,
  /// mapped vs copied miss bytes, and view vs. owned node decodes. Safe
  /// to call concurrently with readers.
  HistReadStats HistStats() const;

  /// Buffer-pool counters (magnetic axis) aggregated over the primary and
  /// every secondary index — together with HistStats this makes mixed
  /// current/historical workloads diagnosable end to end.
  BufferPoolStats PoolStats() const;

  tsb_tree::TsbTree* primary() { return tree_.get(); }
  txn::TxnManager* txn_manager() { return txns_.get(); }
  /// Committed watermark — the time at which as-of queries see every
  /// finished transaction and no in-flight one.
  Timestamp Now() const { return tree_->VisibleNow(); }
  /// Directory backing a path-opened DB; empty for raw-device DBs.
  const std::string& path() const { return path_; }

 private:
  explicit MultiVersionDB(const DbOptions& options) : options_(options) {}

  Status OnCommit(const std::string& key, const std::string* old_value,
                  const std::string& new_value, Timestamp ts);

  struct IndexEntryDef {
    KeyExtractor extract;
    // True while the index was re-attached from the MANIFEST catalog and
    // no explicit CreateSecondaryIndex call has claimed it yet.
    bool from_catalog = false;
    // Devices owned iff created internally. Declared BEFORE the index so
    // they outlive the tree's destructor (which flushes to them).
    std::unique_ptr<Device> owned_magnetic;
    std::unique_ptr<Device> owned_historical;
    std::unique_ptr<SecondaryIndex> index;
  };

  /// Shared body of CreateSecondaryIndex and the Open-time catalog
  /// re-attachment.
  Status RegisterIndex(const std::string& name, KeyExtractor extract,
                       bool from_catalog, Device* magnetic,
                       Device* historical);

  /// Rewrites the MANIFEST with the current geometry + index catalog +
  /// WAL position (path-backed DBs only).
  Status PersistManifest();

  /// Installs the TxnManager commit hook once the first index exists.
  /// Deliberately lazy: a hook forces commits onto the serial path, so an
  /// index-less DB keeps the concurrent commit path available.
  void InstallCommitHook();

  // ---- durability (path-based, WAL-enabled DBs) ----

  /// Open-time recovery: no-steal the pools, purge uncommitted ghosts
  /// after an unclean shutdown, replay the committed WAL tail past the
  /// checkpoint, then open the log for appending and mark the MANIFEST
  /// dirty. `journal_applied` = CheckpointJournal::Recover re-applied a
  /// crashed checkpoint before the devices were opened.
  Status RecoverWal(bool manifest_clean, bool journal_applied);

  /// Applies one replayed commit frame: primary records via
  /// ReplayCommitted plus secondary-index maintenance re-derived from the
  /// pre-image. Skips frames already present in the checkpointed base.
  Status ApplyWalCommit(const wal::WalCommit& commit);

  /// Checkpoint body; caller holds checkpoint_mu_. Freezes commits around
  /// CheckpointFrozen.
  Status CheckpointLocked();

  /// Checkpoint with commits already frozen (caller holds checkpoint_mu_
  /// AND the freeze). `for_resume` is the degraded-mode repair variant:
  /// skips Wal::SyncAll (the poisoned log must not be retry-and-trusted;
  /// the in-memory pages being checkpointed are the trusted copy) and
  /// force-rotates to a fresh log file regardless of size.
  Status CheckpointFrozen(bool for_resume);

  /// The ErrorHandler's resume_fn: the actual degraded-mode repair.
  /// Serialized by the handler; see Resume() for the steps.
  Status ResumeImpl();

  /// Creates errors_ and plumbs the commit gate / error reporters into
  /// the TxnManager. Both Open overloads call it.
  void SetupErrorHandler();

  /// Installs the pager corruption reporter (quarantine routing) and the
  /// paranoid_checks verify-on-read toggle on one tree. Both Open
  /// overloads call it for the primary; RegisterIndex for each index.
  void InstallCorruptionReporter(const std::string& tree_name,
                                 tsb_tree::TsbTree* tree);

  /// Records a corrupt page in the quarantine map (idempotent per page)
  /// and notifies the ErrorHandler. Does NOT degrade the DB.
  void AddQuarantine(const std::string& tree_name, uint32_t page_id,
                     const Status& cause);

  /// Rewrites every quarantined page from the retired checkpoint
  /// journal's image (under no-steal that image IS the page's current
  /// content when the corruption was detected on a buffer-pool miss).
  /// Pages without a retained image stay quarantined.
  Status RepairQuarantined(uint64_t* repaired);

  /// Scrub body; caller holds checkpoint_mu_.
  Status ScrubLocked(ScrubStats* stats);

  void StartScrubThread();
  void StopScrubThread();

  /// Installs the sync-failure escalation hook on a (fresh) log object.
  void InstallWalReporter(wal::Wal* wal);

  DbOptions options_;
  bool hook_installed_ = false;
  std::string path_;  // set by path-based Open
  // Primary devices owned by path-based Open. Declared BEFORE tree_ /
  // indexes_: destruction runs in reverse, so the trees flush to live
  // devices.
  std::unique_ptr<Device> owned_magnetic_;
  std::unique_ptr<Device> owned_historical_;
  std::unique_ptr<tsb_tree::TsbTree> tree_;
  std::unique_ptr<txn::TxnManager> txns_;
  std::map<std::string, IndexEntryDef> indexes_;

  // WAL state (null / zero for raw-device or WAL-disabled DBs). wal_ is
  // declared after tree_/txns_ but torn down explicitly in ~MultiVersionDB
  // (after the final checkpoint, before the trees destruct).
  // CONCURRENCY: wal_ itself is swapped at rotation under checkpoint_mu_
  // (with commits frozen); hot paths must never read it bare. Write()'s
  // checkpoint trigger goes through wal_enabled_ (immutable after Open)
  // and TxnManager::wal_appended_lsn() instead.
  std::unique_ptr<wal::Wal> wal_;
  bool wal_enabled_ = false;        // set once in RecoverWal, never cleared
  uint32_t wal_seq_ = 0;            // live log file: wal-<seq>.tsb
  uint64_t wal_checkpoint_lsn_ = 0; // replay starts here (MANIFEST copy)
  bool clean_shutdown_ = true;      // MANIFEST flag mirrored in memory
  RecoveryStats recovery_stats_;
  std::mutex checkpoint_mu_;        // serializes Checkpoint()
  std::atomic<bool> checkpoint_pending_{false};  // auto-trigger claim
  mutable std::mutex ckpt_err_mu_;  // guards last_checkpoint_error_
  Status last_checkpoint_error_;    // see LastCheckpointError()

  // Quarantine + scrub state. quarantine_mu_ is a leaf lock (never held
  // while calling into trees/pager); the pager corruption reporter fires
  // outside pager locks, so AddQuarantine may be called from any reader
  // thread.
  mutable std::mutex quarantine_mu_;
  std::map<std::pair<std::string, uint32_t>, Status> quarantined_;
  mutable std::mutex scrub_stats_mu_;
  ScrubStats scrub_totals_;
  // Background scrubber (DbOptions::scrub_background). Stopped in the
  // destructor BEFORE any teardown — it walks live devices.
  std::thread scrub_thread_;
  std::mutex scrub_thread_mu_;
  std::condition_variable scrub_cv_;
  bool scrub_stop_ = false;

  // Background-error state machine. Declared LAST so it is destroyed
  // first, but the destructor additionally calls Shutdown() up front: the
  // auto-resume thread must be quiescent before the trees/WAL it repairs
  // start tearing down.
  std::unique_ptr<ErrorHandler> errors_;
};

}  // namespace db
}  // namespace tsb

#endif  // TSBTREE_DB_MULTIVERSION_DB_H_
