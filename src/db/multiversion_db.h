// MultiVersionDB: the library's top-level facade — a versioned,
// timestamped database with a non-deletion policy (the paper's target
// applications: financial transactions, transcripts, engineering design
// histories, legal and medical records).
//
// Composes the TSB-tree primary index, the transaction layer (commit-time
// stamping, abort erase, lock-free readers) and secondary TSB-tree indexes
// maintained through a commit hook.
#ifndef TSBTREE_DB_MULTIVERSION_DB_H_
#define TSBTREE_DB_MULTIVERSION_DB_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "db/secondary_index.h"
#include "storage/mem_device.h"
#include "tsb/tsb_tree.h"
#include "txn/txn_manager.h"

namespace tsb {
namespace db {

struct DbOptions {
  tsb_tree::TsbOptions tree;
};

/// Extracts the secondary key from a record value; return std::nullopt if
/// the record is not indexed.
using KeyExtractor =
    std::function<std::optional<std::string>(const Slice& value)>;

/// A multiversion database over one primary TSB-tree.
///
/// Thread model (paper section 4.1):
///  - Reads (Get, GetAsOf, BeginReadOnly, iterators, FindBySecondaryAsOf)
///    are safe from any number of threads and never block on updaters:
///    read-only transactions capture a timestamp with one atomic load and
///    descend the tree under shared page latches only.
///  - Writes (Put, transactions) are safe from multiple threads; the tree
///    serializes page mutations internally (single-writer discipline) and
///    the lock table resolves write-write conflicts first-writer-wins.
///  - CreateSecondaryIndex must complete before concurrent writes begin
///    (index registration is not latched — it is a schema operation).
class MultiVersionDB {
 public:
  /// `magnetic` and `historical` back the PRIMARY index and must outlive
  /// the DB.
  static Status Open(Device* magnetic, Device* historical,
                     const DbOptions& options,
                     std::unique_ptr<MultiVersionDB>* out);

  // ---- autocommit writes ----

  /// Writes one record in its own transaction (secondary indexes update
  /// atomically with it). Returns the commit timestamp via `commit_ts`.
  Status Put(const Slice& key, const Slice& value,
             Timestamp* commit_ts = nullptr);

  // ---- reads ----

  Status Get(const Slice& key, std::string* value, Timestamp* ts = nullptr);
  Status GetAsOf(const Slice& key, Timestamp t, std::string* value,
                 Timestamp* ts = nullptr);

  /// Key-ordered state as of time `t`.
  std::unique_ptr<tsb_tree::SnapshotIterator> NewSnapshotIterator(Timestamp t);
  /// All committed versions of `key`, newest first.
  std::unique_ptr<tsb_tree::HistoryIterator> NewHistoryIterator(
      const Slice& key);

  // ---- transactions ----

  /// Starts an updater transaction (commit stamps all its writes with one
  /// timestamp and maintains secondary indexes).
  Status Begin(std::unique_ptr<txn::Transaction>* out) {
    return txns_->Begin(out);
  }

  /// Lock-free read-only transaction at the current time (section 4.1).
  txn::ReadTransaction BeginReadOnly() { return txns_->BeginReadOnly(); }

  // ---- secondary indexes (section 3.6) ----

  /// Registers a secondary index maintained from `extract`. If devices are
  /// null the DB creates (and owns) in-memory devices for the index.
  /// Must be called before any writes touch indexed records.
  Status CreateSecondaryIndex(const std::string& name, KeyExtractor extract,
                              Device* magnetic = nullptr,
                              Device* historical = nullptr);

  /// Returns the named index (nullptr if absent).
  SecondaryIndex* index(const std::string& name);

  /// Convenience: records whose secondary key under `index_name` was
  /// `secondary` at time `t`, with their primary values fetched as of `t`.
  Status FindBySecondaryAsOf(const std::string& index_name,
                             const Slice& secondary, Timestamp t,
                             std::vector<std::pair<std::string, std::string>>*
                                 key_values);

  // ---- maintenance ----

  Status Flush();
  Status ComputeSpaceStats(tsb_tree::SpaceStats* out) {
    return tree_->ComputeSpaceStats(out);
  }

  /// Historical read-path counters for the primary index plus every
  /// secondary index: blob reads/bytes, shared-blob cache hit ratio,
  /// mapped vs copied miss bytes, and view vs. owned node decodes. Safe
  /// to call concurrently with readers.
  HistReadStats HistStats() const;

  /// Buffer-pool counters (magnetic axis) aggregated over the primary and
  /// every secondary index — together with HistStats this makes mixed
  /// current/historical workloads diagnosable end to end.
  BufferPoolStats PoolStats() const;

  tsb_tree::TsbTree* primary() { return tree_.get(); }
  txn::TxnManager* txn_manager() { return txns_.get(); }
  /// Committed watermark — the time at which as-of queries see every
  /// finished transaction and no in-flight one.
  Timestamp Now() const { return tree_->VisibleNow(); }

 private:
  explicit MultiVersionDB(const DbOptions& options) : options_(options) {}

  Status OnCommit(const std::string& key, const std::string* old_value,
                  const std::string& new_value, Timestamp ts);

  struct IndexEntryDef {
    KeyExtractor extract;
    // Devices owned iff created internally. Declared BEFORE the index so
    // they outlive the tree's destructor (which flushes to them).
    std::unique_ptr<Device> owned_magnetic;
    std::unique_ptr<Device> owned_historical;
    std::unique_ptr<SecondaryIndex> index;
  };

  DbOptions options_;
  std::unique_ptr<tsb_tree::TsbTree> tree_;
  std::unique_ptr<txn::TxnManager> txns_;
  std::map<std::string, IndexEntryDef> indexes_;
};

}  // namespace db
}  // namespace tsb

#endif  // TSBTREE_DB_MULTIVERSION_DB_H_
