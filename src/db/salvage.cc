#include "db/salvage.h"

#include <dirent.h>
#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/coding.h"
#include "common/crc32c.h"
#include "common/logger.h"
#include "db/multiversion_db.h"
#include "storage/append_store.h"
#include "storage/page.h"
#include "tsb/data_page.h"
#include "wal/wal.h"

namespace tsb {
namespace db {

namespace {

/// (key, commit ts) -> value. The map IS the dedupe: the same version
/// harvested from a page, a blob and a WAL frame lands on one entry.
using RecordMap = std::map<std::pair<std::string, Timestamp>, std::string>;

struct SourceGeometry {
  uint32_t page_size = kDefaultPageSize;
  uint32_t hist_alignment = 0;  ///< WORM sector grid; 0 = unaligned
};

/// Best-effort MANIFEST parse for the two facts salvage needs. The crc
/// terminator is deliberately NOT required — a torn manifest with a
/// readable page_size line still beats guessing.
void SniffGeometry(const std::string& src, SourceGeometry* geo) {
  FILE* f = fopen((src + "/MANIFEST").c_str(), "r");
  if (f == nullptr) return;
  char line[128];
  bool worm = false;
  uint32_t sector = 0;
  while (fgets(line, sizeof(line), f) != nullptr) {
    unsigned value = 0;
    if (sscanf(line, "page_size=%u", &value) == 1 && value >= 64 &&
        value <= (64u << 20)) {
      geo->page_size = value;
    } else if (sscanf(line, "worm_historical=%u", &value) == 1) {
      worm = value != 0;
    } else if (sscanf(line, "worm_sector_size=%u", &value) == 1) {
      sector = value;
    }
  }
  fclose(f);
  if (worm && sector > 0) geo->hist_alignment = sector;
}

Status ReadWholeFile(const std::string& file, bool* exists,
                     std::string* body) {
  *exists = false;
  body->clear();
  FILE* f = fopen(file.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return Status::OK();
    return Status::IOError("open " + file, strerror(errno));
  }
  char buf[1 << 16];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) body->append(buf, n);
  const bool read_ok = ferror(f) == 0;
  fclose(f);
  if (!read_ok) return Status::IOError("read " + file, strerror(errno));
  *exists = true;
  return Status::OK();
}

void KeepEntries(const std::vector<tsb_tree::DataEntry>& entries,
                 RecordMap* records, SalvageReport* report) {
  for (const tsb_tree::DataEntry& e : entries) {
    if (e.ts == kUncommittedTs) {
      // Its transaction never committed; there is no timestamp to replay
      // it at and no owner to finish it.
      report->uncommitted_dropped++;
      continue;
    }
    records->emplace(std::make_pair(e.key, e.ts), e.value);
  }
}

/// Source 1: page slots of the base device. Only a page whose header AND
/// trailer checksums verify against its own slot id contributes — a
/// misdirected or bit-flipped page is rejected whole (half-trusting a
/// page's slot directory invites garbage records).
Status HarvestPages(const std::string& file, uint32_t page_size,
                    bool verbose, RecordMap* records, SalvageReport* report) {
  bool exists = false;
  std::string body;
  TSB_RETURN_IF_ERROR(ReadWholeFile(file, &exists, &body));
  if (!exists) return Status::OK();
  const uint64_t slots = body.size() / page_size;
  for (uint64_t slot = 0; slot < slots; ++slot) {
    char* buf = body.data() + slot * page_size;
    bool all_zero = true;
    for (uint32_t i = 0; i < page_size; ++i) {
      if (buf[i] != 0) {
        all_zero = false;
        break;
      }
    }
    if (all_zero) continue;  // sparse hole
    report->pages_scanned++;
    Status s = VerifyPage(buf, page_size, static_cast<uint32_t>(slot));
    if (s.ok() && GetPageType(buf) == PageType::kTsbData) {
      tsb_tree::DataPageRef ref(buf, page_size);
      std::vector<tsb_tree::DataEntry> entries;
      s = ref.DecodeAll(&entries);
      if (s.ok()) {
        report->pages_salvaged++;
        KeepEntries(entries, records, report);
        continue;
      }
    } else if (s.ok()) {
      continue;  // meta / index page: verified, but carries no records
    }
    report->pages_rejected++;
    if (verbose) {
      fprintf(stderr, "tsb_doctor: reject page %llu of %s: %s\n",
              (unsigned long long)slot, file.c_str(), s.ToString().c_str());
    }
  }
  return Status::OK();
}

/// Source 2: append-store frames of the historical file. Frame =
/// [u32 len][u32 masked crc][payload] on the store's alignment grid. A
/// CRC-valid level-0 node contributes its entries; index nodes carry
/// only routing terms. A frame whose length no longer parses breaks the
/// chain — everything past it is unreachable without a valid length.
Status HarvestHistory(const std::string& file, uint32_t alignment,
                      bool verbose, RecordMap* records,
                      SalvageReport* report) {
  bool exists = false;
  std::string body;
  TSB_RETURN_IF_ERROR(ReadWholeFile(file, &exists, &body));
  if (!exists) return Status::OK();
  const uint64_t end = body.size();
  uint64_t offset = 0;
  while (true) {
    if (alignment > 0 && offset % alignment != 0) {
      offset += alignment - offset % alignment;
    }
    if (offset + AppendStore::kFrameHeaderSize > end) break;
    const char* p = body.data() + offset;
    const uint32_t len = DecodeFixed32(p);
    const uint32_t stored_crc = crc32c::Unmask(DecodeFixed32(p + 4));
    if (offset + AppendStore::kFrameHeaderSize + len > end) {
      report->blobs_rejected++;
      if (verbose) {
        fprintf(stderr,
                "tsb_doctor: history frame @%llu unparseable; chain ends\n",
                (unsigned long long)offset);
      }
      break;
    }
    report->blobs_scanned++;
    const Slice blob(p + AppendStore::kFrameHeaderSize, len);
    if (crc32c::Value(blob.data(), len) != stored_crc) {
      report->blobs_rejected++;
      if (verbose) {
        fprintf(stderr, "tsb_doctor: reject history blob @%llu: bad crc\n",
                (unsigned long long)offset);
      }
    } else {
      uint8_t level = 0;
      Status s = tsb_tree::HistNodeLevel(blob, &level);
      if (s.ok() && level == 0) {
        std::vector<tsb_tree::DataEntry> entries;
        s = tsb_tree::DecodeHistDataNode(blob, &entries);
        if (s.ok()) {
          report->blobs_salvaged++;
          KeepEntries(entries, records, report);
        } else {
          report->blobs_rejected++;
        }
      } else if (!s.ok()) {
        report->blobs_rejected++;
      }
      // level > 0: a healthy index node, no records to keep.
    }
    offset += AppendStore::kFrameHeaderSize + len;
  }
  return Status::OK();
}

/// Source 3: WAL commit frames, [u32 masked crc][u32 len][payload]. A
/// frame with a plausible length but a bad CRC is skipped (one flipped
/// payload bit must not cost every commit after it); an implausible
/// length ends the scan — the chain itself is broken.
Status HarvestWalFile(const std::string& file, bool verbose,
                      RecordMap* records, SalvageReport* report) {
  bool exists = false;
  std::string body;
  TSB_RETURN_IF_ERROR(ReadWholeFile(file, &exists, &body));
  if (!exists) return Status::OK();
  report->wal_files_scanned++;
  const uint64_t end = body.size();
  uint64_t offset = 0;
  while (offset + wal::Wal::kFrameHeaderSize <= end) {
    const char* head = body.data() + offset;
    const uint32_t stored_crc = crc32c::Unmask(DecodeFixed32(head));
    const uint32_t len = DecodeFixed32(head + 4);
    if (len > wal::Wal::kMaxFrameBytes ||
        offset + wal::Wal::kFrameHeaderSize + len > end) {
      break;  // torn tail or corrupted length: no way to re-sync the chain
    }
    const char* payload = head + wal::Wal::kFrameHeaderSize;
    if (crc32c::Value(payload, len) != stored_crc) {
      report->wal_frames_rejected++;
      if (verbose) {
        fprintf(stderr, "tsb_doctor: reject wal frame @%llu of %s: bad crc\n",
                (unsigned long long)offset, file.c_str());
      }
      offset += wal::Wal::kFrameHeaderSize + len;
      continue;
    }
    // Decode the commit payload; a CRC-valid frame that does not parse is
    // a foreign/garbage frame, not a salvageable commit.
    const char* q = payload;
    const char* limit = payload + len;
    bool parsed = false;
    if (len > 9 && static_cast<uint8_t>(*q) == wal::Wal::kCommitFrame) {
      q++;
      const Timestamp ts = DecodeFixed64(q);
      q += 8;
      uint32_t count = 0;
      q = GetVarint32Ptr(q, limit, &count);
      if (q != nullptr && ts != kUncommittedTs) {
        parsed = true;
        for (uint32_t i = 0; i < count && parsed; ++i) {
          uint32_t klen = 0, vlen = 0;
          q = GetVarint32Ptr(q, limit, &klen);
          if (q == nullptr || static_cast<size_t>(limit - q) < klen) {
            parsed = false;
            break;
          }
          std::string key(q, klen);
          q += klen;
          q = GetVarint32Ptr(q, limit, &vlen);
          if (q == nullptr || static_cast<size_t>(limit - q) < vlen) {
            parsed = false;
            break;
          }
          records->emplace(std::make_pair(std::move(key), ts),
                           std::string(q, vlen));
          q += vlen;
        }
      }
    }
    if (parsed) {
      report->wal_frames_salvaged++;
    } else {
      report->wal_frames_rejected++;
    }
    offset += wal::Wal::kFrameHeaderSize + len;
  }
  return Status::OK();
}

Status HarvestWalFiles(const std::string& src, bool verbose,
                       RecordMap* records, SalvageReport* report) {
  DIR* d = ::opendir(src.c_str());
  if (d == nullptr) return Status::IOError("opendir " + src, strerror(errno));
  std::vector<std::string> files;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() > 8 && name.compare(0, 4, "wal-") == 0 &&
        name.compare(name.size() - 4, 4, ".tsb") == 0) {
      files.push_back(src + "/" + name);
    }
  }
  ::closedir(d);
  // Stale rotated logs may coexist with the live one after a crash; scan
  // them all — the (key, ts) dedupe makes double-harvesting free.
  for (const std::string& f : files) {
    TSB_RETURN_IF_ERROR(HarvestWalFile(f, verbose, records, report));
  }
  return Status::OK();
}

}  // namespace

Status SalvageDatabase(const std::string& src, const std::string& dst,
                       const SalvageOptions& options, SalvageReport* report) {
  *report = SalvageReport();
  struct stat st;
  if (::stat(src.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::InvalidArgument("salvage source is not a directory", src);
  }
  if (::stat(dst.c_str(), &st) == 0) {
    // Refuse to mix salvaged records into an existing database — the
    // operator compares and swaps directories explicitly.
    return Status::InvalidArgument("salvage destination already exists", dst);
  }

  SourceGeometry geo;
  SniffGeometry(src, &geo);
  if (options.page_size != 0) geo.page_size = options.page_size;

  RecordMap records;
  TSB_RETURN_IF_ERROR(HarvestPages(src + "/current.tsb", geo.page_size,
                                   options.verbose, &records, report));
  TSB_RETURN_IF_ERROR(HarvestHistory(src + "/history.tsb",
                                     geo.hist_alignment, options.verbose,
                                     &records, report));
  TSB_RETURN_IF_ERROR(
      HarvestWalFiles(src, options.verbose, &records, report));

  // Regroup by commit timestamp and replay oldest-first: the fresh DB's
  // clock then advances exactly as the original's did, and every record
  // lands with its original commit time.
  std::map<Timestamp, std::map<std::string, std::string>> commits;
  for (const auto& [key_ts, value] : records) {
    commits[key_ts.second][key_ts.first] = value;
  }
  report->records_recovered = records.size();

  DbOptions dbo;
  dbo.tree.page_size = geo.page_size;
  std::unique_ptr<MultiVersionDB> out_db;
  TSB_RETURN_IF_ERROR(MultiVersionDB::Open(dst, dbo, &out_db));
  for (const auto& [ts, ops] : commits) {
    wal::WalCommit commit;
    commit.ts = ts;
    commit.ops.reserve(ops.size());
    for (const auto& [key, value] : ops) commit.ops.emplace_back(key, value);
    TSB_RETURN_IF_ERROR(out_db->ReplayExternalCommit(commit));
    report->commits_replayed++;
  }
  // ReplayExternalCommit advances the clock without publishing (the
  // sharded facade controls visibility); salvage is the whole world, so
  // publish everything in one step before the closing checkpoint.
  auto& clock = out_db->primary()->clock();
  clock.Publish(clock.Now());
  TSB_RETURN_IF_ERROR(out_db->Checkpoint());
  out_db.reset();  // clean shutdown: final checkpoint + clean manifest
  return Status::OK();
}

}  // namespace db
}  // namespace tsb
