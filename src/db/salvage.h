// Salvage: last-resort extraction of every record that still checksums
// out of a (possibly silently corrupted) database directory, into a
// fresh database.
//
// Where the scrubber DETECTS rot and quarantine CONTAINS it, salvage is
// the step after both: the directory is read purely physically — no
// recovery, no tree descent, nothing trusted that does not carry a valid
// checksum. Three independent sources are harvested:
//
//   1. base pages   — every page slot of current.tsb whose header+trailer
//                     CRCs and page-id identity verify, decoded as TSB
//                     data pages (index pages carry no records);
//   2. history blobs — every append-store frame of history.tsb whose CRC
//                     verifies, decoded as historical data nodes;
//   3. WAL frames   — every commit frame of wal-*.tsb whose CRC verifies
//                     (commits newer than the last checkpoint live only
//                     here).
//
// The same record version usually appears in several sources; versions
// dedupe by (key, commit timestamp). Uncommitted records (the
// kUncommittedTs sentinel) are dropped — their transactions never
// completed. The survivors replay into a brand-new database at `dst` in
// timestamp order, so the result is a well-formed DB whose every record
// was vouched for by a checksum in the wreckage.
//
// Secondary indexes are NOT salvaged: index entries are derivable from
// the primary records, and rebuilding them needs the application's
// extractors — re-create them on the salvaged DB with
// CreateSecondaryIndex.
#ifndef TSBTREE_DB_SALVAGE_H_
#define TSBTREE_DB_SALVAGE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace tsb {
namespace db {

struct SalvageOptions {
  /// Page size of the source database. 0 = take it from the source
  /// MANIFEST (best-effort parse; falls back to the build default when
  /// the manifest itself is rotten).
  uint32_t page_size = 0;
  /// Print a line per rejected page/blob/frame to stderr.
  bool verbose = false;
};

struct SalvageReport {
  uint64_t pages_scanned = 0;
  uint64_t pages_salvaged = 0;    ///< CRC-valid TSB data pages decoded
  uint64_t pages_rejected = 0;    ///< failed checksum / id / decode
  uint64_t blobs_scanned = 0;
  uint64_t blobs_salvaged = 0;    ///< CRC-valid level-0 historical nodes
  uint64_t blobs_rejected = 0;
  uint64_t wal_files_scanned = 0;
  uint64_t wal_frames_salvaged = 0;
  uint64_t wal_frames_rejected = 0;
  uint64_t uncommitted_dropped = 0;
  uint64_t records_recovered = 0;  ///< unique (key, ts) versions replayed
  uint64_t commits_replayed = 0;   ///< distinct commit timestamps
};

/// Harvests `src` (a database directory; need not open cleanly) and
/// builds a fresh database at `dst` holding every record version that
/// still checksums. `dst` must not exist. Returns non-OK only for
/// environmental failures (cannot read src at all, cannot create dst);
/// corrupt source bytes are counted in the report, never fatal.
Status SalvageDatabase(const std::string& src, const std::string& dst,
                       const SalvageOptions& options, SalvageReport* report);

}  // namespace db
}  // namespace tsb

#endif  // TSBTREE_DB_SALVAGE_H_
