#include "db/scrubber.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "common/coding.h"
#include "common/crc32c.h"
#include "storage/page.h"
#include "wal/wal.h"

namespace tsb {
namespace db {

ScrubRateLimiter::ScrubRateLimiter(uint64_t mb_per_sec)
    : bytes_per_sec_(mb_per_sec * (uint64_t{1} << 20)),
      start_(std::chrono::steady_clock::now()) {}

void ScrubRateLimiter::Consume(uint64_t bytes) {
  if (bytes_per_sec_ == 0) return;
  consumed_ += bytes;
  // Sleep until the wall clock catches up with the byte budget; scrub I/O
  // happens in bursts of one page/frame, so pacing on the cumulative
  // schedule keeps the long-run rate exact without per-call jitter.
  const auto due = start_ + std::chrono::microseconds(
                               consumed_ * 1000000 / bytes_per_sec_);
  const auto now = std::chrono::steady_clock::now();
  if (due > now) std::this_thread::sleep_for(due - now);
}

Status ScrubPages(Device* device, uint32_t page_size,
                  ScrubRateLimiter* limiter,
                  const std::function<void(uint32_t, const Status&)>&
                      on_corrupt,
                  ScrubStats* stats) {
  const uint64_t slots = device->Size() / page_size;
  std::vector<char> buf(page_size);
  for (uint64_t slot = 0; slot < slots; ++slot) {
    TSB_RETURN_IF_ERROR(
        device->Read(slot * page_size, page_size, buf.data()));
    stats->bytes_scanned += page_size;
    if (limiter != nullptr) limiter->Consume(page_size);
    bool all_zero = true;
    for (uint32_t i = 0; i < page_size; ++i) {
      if (buf[i] != 0) {
        all_zero = false;
        break;
      }
    }
    if (all_zero) continue;  // sparse hole / never-written slot
    stats->pages_scanned++;
    Status s = VerifyPage(buf.data(), page_size, static_cast<uint32_t>(slot));
    if (!s.ok()) {
      stats->corruptions_detected++;
      if (on_corrupt) on_corrupt(static_cast<uint32_t>(slot), s);
    }
  }
  return Status::OK();
}

Status ScrubWalFile(const std::string& file, uint64_t durable_lsn,
                    ScrubRateLimiter* limiter, Status* corruption,
                    ScrubStats* stats) {
  *corruption = Status::OK();
  if (durable_lsn == 0) return Status::OK();
  FILE* f = fopen(file.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return Status::OK();
    return Status::IOError("open " + file, strerror(errno));
  }
  uint64_t offset = 0;
  std::string payload;
  Status io;
  while (offset + wal::Wal::kFrameHeaderSize <= durable_lsn) {
    char head[wal::Wal::kFrameHeaderSize];
    if (fseek(f, static_cast<long>(offset), SEEK_SET) != 0 ||
        fread(head, 1, sizeof(head), f) != sizeof(head)) {
      io = Status::IOError("read " + file, strerror(errno));
      break;
    }
    const uint32_t stored_crc = crc32c::Unmask(DecodeFixed32(head));
    const uint32_t len = DecodeFixed32(head + 4);
    if (offset + wal::Wal::kFrameHeaderSize + len > durable_lsn ||
        len > wal::Wal::kMaxFrameBytes) {
      // The durable prefix claims this frame is complete, yet its length
      // runs past it (or is absurd): the header itself is damaged.
      *corruption = Status::Corruption(
          "wal frame header damaged in durable prefix",
          file + " @" + std::to_string(offset));
      break;
    }
    payload.resize(len);
    if (fread(payload.data(), 1, len, f) != len) {
      io = Status::IOError("read " + file, strerror(errno));
      break;
    }
    if (crc32c::Value(payload.data(), len) != stored_crc) {
      *corruption =
          Status::Corruption("wal frame checksum mismatch in durable prefix",
                             file + " @" + std::to_string(offset));
      break;
    }
    stats->wal_frames_scanned++;
    stats->bytes_scanned += wal::Wal::kFrameHeaderSize + len;
    if (limiter != nullptr) {
      limiter->Consume(wal::Wal::kFrameHeaderSize + len);
    }
    offset += wal::Wal::kFrameHeaderSize + len;
  }
  fclose(f);
  return io;
}

}  // namespace db
}  // namespace tsb
