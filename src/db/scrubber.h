// Background scrub: proactive detection of silent corruption.
//
// The read path only verifies what it touches — cold data can rot for
// months unnoticed, and the AppendStore's verified memo means a blob is
// CRC-checked against the device exactly once unless a reader asks for
// verify_checksums. The scrubber closes that gap: it walks the base
// (magnetic) devices page by page, the historical stores frame by frame
// (bypassing — and on mismatch invalidating — the verified memo), the
// durable prefix of the live WAL, the retired checkpoint journal, and the
// MANIFEST, re-verifying every checksum against the bytes the devices hold
// NOW.
//
// This module holds the storage-level walks plus the rate limiter; the
// orchestration (what to scrub, quarantine routing, ErrorHandler
// classification) lives in MultiVersionDB::Scrub, which serializes against
// checkpoints so an in-place page flush can never be observed half-written.
#ifndef TSBTREE_DB_SCRUBBER_H_
#define TSBTREE_DB_SCRUBBER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "storage/append_store.h"
#include "storage/device.h"

namespace tsb {
namespace db {

/// Counters for one scrub pass (or, summed, for a scrub history).
struct ScrubStats {
  uint64_t passes = 0;               ///< completed Scrub() calls
  uint64_t pages_scanned = 0;        ///< base-device pages verified
  uint64_t blobs_scanned = 0;        ///< historical frames verified
  uint64_t wal_frames_scanned = 0;   ///< durable WAL frames verified
  uint64_t files_scanned = 0;        ///< manifests + retired journals
  uint64_t bytes_scanned = 0;        ///< total bytes read and checksummed
  uint64_t corruptions_detected = 0; ///< checksum/identity mismatches
  uint64_t pages_quarantined = 0;    ///< page hits routed into quarantine

  void Add(const ScrubStats& o) {
    passes += o.passes;
    pages_scanned += o.pages_scanned;
    blobs_scanned += o.blobs_scanned;
    wal_frames_scanned += o.wal_frames_scanned;
    files_scanned += o.files_scanned;
    bytes_scanned += o.bytes_scanned;
    corruptions_detected += o.corruptions_detected;
    pages_quarantined += o.pages_quarantined;
  }
};

/// Token-bucket-ish limiter: Consume(bytes) sleeps so the long-run rate
/// stays at or under mb_per_sec. 0 = unthrottled. Not thread-safe — one
/// scrub pass owns one limiter.
class ScrubRateLimiter {
 public:
  explicit ScrubRateLimiter(uint64_t mb_per_sec);
  void Consume(uint64_t bytes);

 private:
  const uint64_t bytes_per_sec_;
  std::chrono::steady_clock::time_point start_;
  uint64_t consumed_ = 0;
};

/// Walks every page slot of `device` (the pager's write surface) and
/// verifies each one: header + trailer checksums and the page-id identity
/// (a misdirected write leaves the wrong id behind). All-zero slots are
/// sparse holes / never-written pages and are skipped — they are not
/// corruption. `on_corrupt(page_id, status)` fires per bad page; the walk
/// continues. Returns non-OK only for I/O errors reading the device.
Status ScrubPages(Device* device, uint32_t page_size,
                  ScrubRateLimiter* limiter,
                  const std::function<void(uint32_t, const Status&)>&
                      on_corrupt,
                  ScrubStats* stats);

/// Read-only CRC walk of the WAL file's durable prefix [0, durable_lsn).
/// Never truncates or repairs (that is recovery's job — this is detection
/// while the log is live). A frame that fails its CRC inside the durable
/// prefix is real corruption: `*corruption` receives the first such
/// status. Bytes past durable_lsn are unsynced or in-flight and are not
/// scanned.
Status ScrubWalFile(const std::string& file, uint64_t durable_lsn,
                    ScrubRateLimiter* limiter, Status* corruption,
                    ScrubStats* stats);

}  // namespace db
}  // namespace tsb

#endif  // TSBTREE_DB_SCRUBBER_H_
