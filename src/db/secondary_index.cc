#include "db/secondary_index.h"

namespace tsb {
namespace db {

constexpr char SecondaryIndex::kLinked[];
constexpr char SecondaryIndex::kUnlinked[];

std::string CompositePrefix(const Slice& secondary) {
  std::string out;
  out.reserve(secondary.size() + 2);
  for (size_t i = 0; i < secondary.size(); ++i) {
    out.push_back(secondary[i]);
    if (secondary[i] == '\0') out.push_back('\xff');
  }
  out.push_back('\0');
  out.push_back('\0');
  return out;
}

std::string EncodeCompositeKey(const Slice& secondary, const Slice& primary) {
  std::string out = CompositePrefix(secondary);
  out.append(primary.data(), primary.size());
  return out;
}

bool DecodeCompositeKey(const Slice& composite, std::string* secondary,
                        std::string* primary) {
  secondary->clear();
  primary->clear();
  size_t i = 0;
  for (; i < composite.size(); ++i) {
    if (composite[i] != '\0') {
      secondary->push_back(composite[i]);
      continue;
    }
    if (i + 1 >= composite.size()) return false;  // dangling escape
    if (composite[i + 1] == '\xff') {
      secondary->push_back('\0');
      ++i;
      continue;
    }
    if (composite[i + 1] == '\0') {
      primary->assign(composite.data() + i + 2, composite.size() - i - 2);
      return true;
    }
    return false;
  }
  return false;  // no separator found
}

Status SecondaryIndex::Add(const Slice& secondary, const Slice& primary,
                           Timestamp ts) {
  return tree_->Put(EncodeCompositeKey(secondary, primary), kLinked, ts);
}

Status SecondaryIndex::Remove(const Slice& secondary, const Slice& primary,
                              Timestamp ts) {
  return tree_->Put(EncodeCompositeKey(secondary, primary), kUnlinked, ts);
}

Status SecondaryIndex::ReplayAdd(const Slice& secondary, const Slice& primary,
                                 Timestamp ts) {
  return tree_->ReplayCommitted(EncodeCompositeKey(secondary, primary),
                                kLinked, ts);
}

Status SecondaryIndex::ReplayRemove(const Slice& secondary,
                                    const Slice& primary, Timestamp ts) {
  return tree_->ReplayCommitted(EncodeCompositeKey(secondary, primary),
                                kUnlinked, ts);
}

Status SecondaryIndex::LookupAsOf(const Slice& secondary, Timestamp t,
                                  std::vector<std::string>* primary_keys) {
  primary_keys->clear();
  const std::string prefix = CompositePrefix(secondary);
  auto it = tree_->NewSnapshotIterator(t);
  TSB_RETURN_IF_ERROR(it->Seek(prefix));
  while (it->Valid() && it->key().starts_with(prefix)) {
    if (it->value() == Slice(kLinked)) {
      std::string sk, pk;
      if (!DecodeCompositeKey(it->key(), &sk, &pk)) {
        return Status::Corruption("bad composite key in secondary index");
      }
      primary_keys->push_back(std::move(pk));
    }
    TSB_RETURN_IF_ERROR(it->Next());
  }
  return Status::OK();
}

Status SecondaryIndex::CountAsOf(const Slice& secondary, Timestamp t,
                                 size_t* count) {
  std::vector<std::string> pks;
  TSB_RETURN_IF_ERROR(LookupAsOf(secondary, t, &pks));
  *count = pks.size();
  return Status::OK();
}

Status SecondaryIndex::Lookup(const Slice& secondary,
                              std::vector<std::string>* primary_keys) {
  return LookupAsOf(secondary, kMaxCommittedTs, primary_keys);
}

}  // namespace db
}  // namespace tsb
