// Secondary indexes as Time-Split B-trees, paper section 3.6.
//
// Entries are <timestamp, secondary key, primary key>: the secondary and
// primary keys form the tree key (escape-encoded composite so prefix scans
// by secondary key are exact), the timestamp is inherited from the record
// change that caused the entry, and the value is a presence marker
// ("linked"/"unlinked") so updates of the secondary field supersede older
// entries without deleting them. Like the primary index, the structure
// spans the historical and current databases, and temporal queries about
// secondary values ("how many records had secondary key S at time T") are
// answered WITHOUT touching primary data.
#ifndef TSBTREE_DB_SECONDARY_INDEX_H_
#define TSBTREE_DB_SECONDARY_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/slice.h"
#include "common/status.h"
#include "tsb/cursor.h"
#include "tsb/tsb_tree.h"

namespace tsb {
namespace db {

/// Escape-encodes (secondary, primary) into one tree key such that
/// composite order == (secondary, primary) order and the secondary-key
/// prefix range is scannable exactly. 0x00 bytes in `secondary` are
/// escaped as 0x00 0xFF; the separator is 0x00 0x00.
std::string EncodeCompositeKey(const Slice& secondary, const Slice& primary);

/// Splits a composite key; false on malformed input.
bool DecodeCompositeKey(const Slice& composite, std::string* secondary,
                        std::string* primary);

/// Lower bound of the range of composite keys with secondary key `s`.
std::string CompositePrefix(const Slice& secondary);

/// A secondary index over a primary TSB-tree. Thread-safe with the same
/// guarantees as the underlying TsbTree: lock-free timestamped lookups,
/// serialized updates (Add/Remove run inside the commit hook, on the
/// committing transaction's thread).
class SecondaryIndex {
 public:
  /// `tree` is the index's own TSB-tree (the index spans both devices just
  /// like the primary).
  explicit SecondaryIndex(std::unique_ptr<tsb_tree::TsbTree> tree)
      : tree_(std::move(tree)) {}

  /// Records that `primary` acquired secondary key `secondary` at `ts`.
  Status Add(const Slice& secondary, const Slice& primary, Timestamp ts);

  /// Records that `primary` no longer has `secondary` as of `ts` (the old
  /// entry is superseded, never deleted — non-deletion policy).
  Status Remove(const Slice& secondary, const Slice& primary, Timestamp ts);

  /// WAL-recovery variants of Add/Remove: exempt from the monotone-clock
  /// check (the index tree's persisted clock may already have advanced
  /// past the replayed timestamps) and idempotent per (key, ts).
  Status ReplayAdd(const Slice& secondary, const Slice& primary,
                   Timestamp ts);
  Status ReplayRemove(const Slice& secondary, const Slice& primary,
                      Timestamp ts);

  /// Primary keys that had secondary key `secondary` at time `t`,
  /// ascending.
  Status LookupAsOf(const Slice& secondary, Timestamp t,
                    std::vector<std::string>* primary_keys);

  /// Count of records with `secondary` at time `t` — section 3.6's
  /// "without searching for primary data records" query.
  Status CountAsOf(const Slice& secondary, Timestamp t, size_t* count);

  /// Current lookup (t = latest committed time).
  Status Lookup(const Slice& secondary, std::vector<std::string>* primary_keys);

  tsb_tree::TsbTree* tree() { return tree_.get(); }

 private:
  static constexpr char kLinked[] = "1";
  static constexpr char kUnlinked[] = "0";

  std::unique_ptr<tsb_tree::TsbTree> tree_;
};

}  // namespace db
}  // namespace tsb

#endif  // TSBTREE_DB_SECONDARY_INDEX_H_
