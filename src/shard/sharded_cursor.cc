#include "shard/sharded_cursor.h"

namespace tsb {
namespace shard {

using tsb_tree::VersionCursor;

ShardedCursor::ShardedCursor(
    std::vector<std::unique_ptr<VersionCursor>> children, Timestamp as_of)
    : children_(std::move(children)), t_(as_of) {}

Status ShardedCursor::Pick() {
  valid_ = false;
  key_anchored_ = false;
  bool have = false;
  size_t best = 0;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Valid()) continue;
    if (!have) {
      best = i;
      have = true;
      continue;
    }
    // Hash routing gives each key exactly one home shard, so two valid
    // children never sit on equal keys — strict comparison suffices.
    const bool wins = reverse_
                          ? children_[i]->key() > children_[best]->key()
                          : children_[i]->key() < children_[best]->key();
    if (wins) best = i;
  }
  if (!have) return Status::OK();  // every shard concluded
  const Slice k = children_[best]->key();
  // Merge-level range bounds: children run unbounded, the merge stops.
  if (reverse_ ? k < Slice(range_lo_)
               : !range_hi_inf_ && k >= Slice(range_hi_)) {
    return Status::OK();
  }
  cur_ = best;
  valid_ = true;
  key_anchored_ = true;
  return Status::OK();
}

Status ShardedCursor::SeekToFirst() { return Seek(Slice()); }

Status ShardedCursor::Seek(const Slice& target) {
  range_lo_.clear();
  range_hi_.clear();
  range_hi_inf_ = true;
  reverse_ = false;
  for (auto& child : children_) TSB_RETURN_IF_ERROR(child->Seek(target));
  return Pick();
}

Status ShardedCursor::SeekRange(const Slice& start,
                                const Slice& end_exclusive) {
  range_lo_.assign(start.data(), start.size());
  range_hi_.assign(end_exclusive.data(), end_exclusive.size());
  range_hi_inf_ = false;
  reverse_ = false;
  for (auto& child : children_) TSB_RETURN_IF_ERROR(child->Seek(start));
  return Pick();
}

Status ShardedCursor::SeekToLast() {
  range_lo_.clear();
  range_hi_.clear();
  range_hi_inf_ = true;
  reverse_ = true;
  for (auto& child : children_) TSB_RETURN_IF_ERROR(child->SeekToLast());
  return Pick();
}

Status ShardedCursor::SeekForPrev(const Slice& upper_exclusive) {
  range_lo_.clear();
  range_hi_.clear();
  range_hi_inf_ = true;
  reverse_ = true;
  for (auto& child : children_) {
    TSB_RETURN_IF_ERROR(child->SeekForPrev(upper_exclusive));
  }
  return Pick();
}

Status ShardedCursor::Next() {
  if (!key_anchored_) return Status::InvalidArgument("Next on invalid cursor");
  if (reverse_) {
    // Direction switch: every child re-anchors just past the merge key
    // (one descent per shard), because in reverse they sit at per-shard
    // predecessors that mean nothing to a forward merge.
    reverse_ = false;
    const Slice k = children_[cur_]->key();
    std::string anchor(k.data(), k.size());
    anchor.push_back('\0');
    for (auto& child : children_) TSB_RETURN_IF_ERROR(child->Seek(anchor));
  } else {
    TSB_RETURN_IF_ERROR(children_[cur_]->Next());
  }
  return Pick();
}

Status ShardedCursor::Prev() {
  if (!key_anchored_) return Status::InvalidArgument("Prev on invalid cursor");
  if (!reverse_) {
    reverse_ = true;
    const Slice k = children_[cur_]->key();
    std::string anchor(k.data(), k.size());
    for (auto& child : children_) {
      TSB_RETURN_IF_ERROR(child->SeekForPrev(anchor));
    }
  } else {
    TSB_RETURN_IF_ERROR(children_[cur_]->Prev());
  }
  return Pick();
}

Status ShardedCursor::NextVersion() {
  if (!valid_) return Status::InvalidArgument("NextVersion on invalid cursor");
  TSB_RETURN_IF_ERROR(children_[cur_]->NextVersion());
  valid_ = children_[cur_]->Valid();
  return Status::OK();
}

Status ShardedCursor::SeekTimestamp(Timestamp t) {
  if (!valid_) {
    return Status::InvalidArgument("SeekTimestamp on invalid cursor");
  }
  TSB_RETURN_IF_ERROR(children_[cur_]->SeekTimestamp(t));
  valid_ = children_[cur_]->Valid();
  return Status::OK();
}

Slice ShardedCursor::key() const { return children_[cur_]->key(); }
Slice ShardedCursor::value() const { return children_[cur_]->value(); }
Timestamp ShardedCursor::ts() const { return children_[cur_]->ts(); }

}  // namespace shard
}  // namespace tsb
