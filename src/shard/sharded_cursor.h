// ShardedCursor: the k-way merging VersionCursor over N hash-partitioned
// shards.
//
// Hash routing scatters adjacent keys across shards, so a key-ordered
// scan must merge: every shard contributes a child VersionCursor pinned
// at the SAME resolved as-of time (the facade resolves kAsOfLatest once,
// against the shared clock, before constructing children — otherwise two
// children could snapshot different watermarks and the merge would stitch
// two different database states together). The merge winner is the
// smallest child key walking forward and the largest walking backward;
// hash routing assigns each key to exactly one shard, so ties cannot
// happen and the merge needs no tie-break rule.
//
// Range bounds (SeekRange's [start, end)) are enforced at the MERGE
// level, not pushed into the children: children only ever receive
// unbounded Seek/SeekForPrev/SeekToLast calls. A direction switch
// re-anchors every child on the far side of the current merge key (the
// same exclusive-bound convention as VersionCursor::Prev), which costs
// one O(height) descent per shard — after that, each step advances only
// the winning child and is amortized O(1) per shard consulted.
//
// The time axis (NextVersion/SeekTimestamp) needs no merging at all: a
// key lives on exactly one shard, so both calls delegate to the winner.
#ifndef TSBTREE_SHARD_SHARDED_CURSOR_H_
#define TSBTREE_SHARD_SHARDED_CURSOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "tsb/cursor.h"

namespace tsb {
namespace shard {

/// Mirrors the VersionCursor surface (see tsb/cursor.h) so sharded and
/// single-tree scans are drop-in interchangeable for callers.
class ShardedCursor {
 public:
  /// `children` holds one cursor per shard, all pinned at `as_of`
  /// (already resolved — not kAsOfLatest). Children must outlive no one:
  /// the sharded cursor owns them; they must not outlive their trees.
  ShardedCursor(std::vector<std::unique_ptr<tsb_tree::VersionCursor>> children,
                Timestamp as_of);

  // ---- key axis ----

  Status SeekToFirst();
  Status Seek(const Slice& target);
  Status SeekRange(const Slice& start, const Slice& end_exclusive);
  Status SeekToLast();
  Status SeekForPrev(const Slice& upper_exclusive);
  Status Next();
  Status Prev();

  // ---- time axis (of the current key; delegates to the owning shard) ----

  Status NextVersion();
  Status SeekTimestamp(Timestamp t);

  bool Valid() const { return valid_; }
  Slice key() const;
  Slice value() const;
  Timestamp ts() const;
  Timestamp as_of() const { return t_; }

 private:
  /// Re-picks the winner among valid children (forward: min key;
  /// reverse: max key) and applies the merge-level range bounds.
  Status Pick();

  std::vector<std::unique_ptr<tsb_tree::VersionCursor>> children_;
  Timestamp t_;
  bool reverse_ = false;
  bool valid_ = false;
  // The key axis stays anchored through a version-axis move that ran the
  // winner dry — same contract as VersionCursor.
  bool key_anchored_ = false;
  size_t cur_ = 0;             // winning child while key_anchored_
  std::string range_lo_;       // SeekRange floor ("" = none)
  std::string range_hi_;       // SeekRange ceiling (exclusive)...
  bool range_hi_inf_ = true;   // ...unless unbounded
};

}  // namespace shard
}  // namespace tsb

#endif  // TSBTREE_SHARD_SHARDED_CURSOR_H_
