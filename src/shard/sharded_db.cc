#include "shard/sharded_db.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/crc32c.h"
#include "common/fsync_dir.h"
#include "common/hash.h"
#include "common/logger.h"

namespace tsb {
namespace shard {

namespace {

constexpr char kShardsManifestName[] = "SHARDS";
constexpr char kCoordLogName[] = "coord.tsb";

std::string ShardDirName(uint32_t shard) {
  char buf[32];
  snprintf(buf, sizeof(buf), "shard-%03u", shard);
  return buf;
}

std::string ShardsManifestPath(const std::string& dir) {
  return dir + "/" + kShardsManifestName;
}

std::string CoordLogPath(const std::string& dir) {
  return dir + "/" + kCoordLogName;
}

/// {num_shards, hash_seed} are the sharded database's identity: both fix
/// key placement, so both are written exactly once at creation and every
/// reopen routes with the persisted values. Same write-temp-fsync-rename
/// + crc-terminator discipline as the per-shard MANIFEST.
struct ShardsManifest {
  uint32_t num_shards = 0;
  uint64_t hash_seed = 0;
};

Status WriteShardsManifest(const std::string& dir, const ShardsManifest& m) {
  char head[128];
  snprintf(head, sizeof(head),
           "tsb-shards v1\n"
           "num_shards=%u\n"
           "hash_seed=%016" PRIx64 "\n",
           m.num_shards, m.hash_seed);
  std::string body = head;
  char trailer[24];
  snprintf(trailer, sizeof(trailer), "crc=%08x\n",
           crc32c::Mask(crc32c::Value(body.data(), body.size())));
  body += trailer;
  const std::string tmp = ShardsManifestPath(dir) + ".tmp";
  FILE* f = fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("create " + tmp, strerror(errno));
  }
  const bool wrote = fwrite(body.data(), 1, body.size(), f) == body.size() &&
                     fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  fclose(f);
  if (!wrote) return Status::IOError("write " + tmp, strerror(errno));
  if (::rename(tmp.c_str(), ShardsManifestPath(dir).c_str()) != 0) {
    return Status::IOError("rename " + tmp, strerror(errno));
  }
  return SyncDir(dir);
}

Status ReadShardsManifest(const std::string& dir, bool* exists,
                          ShardsManifest* out) {
  *exists = false;
  const std::string file = ShardsManifestPath(dir);
  FILE* f = fopen(file.c_str(), "r");
  if (f == nullptr) {
    if (errno == ENOENT) return Status::OK();
    return Status::IOError("open " + file, strerror(errno));
  }
  char line[128];
  bool header_ok = false;
  bool complete = false;
  uint32_t running_crc = 0;
  while (fgets(line, sizeof(line), f) != nullptr) {
    unsigned crc_line = 0;
    if (header_ok && sscanf(line, "crc=%x", &crc_line) == 1) {
      if (crc32c::Unmask(static_cast<uint32_t>(crc_line)) != running_crc) {
        fclose(f);
        return Status::Corruption("shards manifest crc mismatch", file);
      }
      complete = true;
      break;
    }
    running_crc = crc32c::Extend(running_crc, line, strlen(line));
    if (!header_ok) {
      if (strncmp(line, "tsb-shards v1", 13) != 0) break;
      header_ok = true;
      continue;
    }
    unsigned value = 0;
    unsigned long long value64 = 0;
    if (sscanf(line, "num_shards=%u", &value) == 1) {
      out->num_shards = value;
    } else if (sscanf(line, "hash_seed=%llx", &value64) == 1) {
      out->hash_seed = value64;
    }
  }
  fclose(f);
  if (!header_ok) {
    return Status::Corruption("unrecognized shards manifest", file);
  }
  // A torn manifest must never silently misroute: without the crc
  // terminator the seed line may be missing, and opening with a default
  // seed would scatter every existing key to the wrong shard.
  if (!complete || out->num_shards == 0) {
    return Status::Corruption("incomplete shards manifest", file);
  }
  *exists = true;
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------- open

Status ShardedDB::Open(const std::string& path, const ShardedOptions& options,
                       std::unique_ptr<ShardedDB>* out) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    if (errno != ENOENT) {
      return Status::IOError("stat " + path, strerror(errno));
    }
    if (!options.create_if_missing) {
      return Status::IOError("no such database", path);
    }
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IOError("mkdir " + path, strerror(errno));
    }
  } else if (!S_ISDIR(st.st_mode)) {
    return Status::InvalidArgument("database path is not a directory", path);
  }

  ShardsManifest manifest;
  bool exists = false;
  TSB_RETURN_IF_ERROR(ReadShardsManifest(path, &exists, &manifest));
  if (!exists) {
    if (options.num_shards == 0) {
      return Status::InvalidArgument("num_shards must be >= 1 at creation");
    }
    manifest.num_shards = options.num_shards;
    manifest.hash_seed = options.hash_seed;
    TSB_RETURN_IF_ERROR(WriteShardsManifest(path, manifest));
  } else if (options.num_shards != 0 &&
             options.num_shards != manifest.num_shards) {
    // Resharding would need every record re-routed; refuse rather than
    // silently read from the wrong shard.
    return Status::InvalidArgument(
        "shard count is fixed at creation (manifest has " +
        std::to_string(manifest.num_shards) + ")");
  }

  std::unique_ptr<ShardedDB> sdb(new ShardedDB());
  sdb->path_ = path;
  sdb->hash_seed_ = manifest.hash_seed;
  sdb->coord_checkpoint_bytes_ = options.coord_checkpoint_bytes;
  sdb->clock_ = std::make_shared<LogicalClock>();
  sdb->shards_.resize(manifest.num_shards);
  for (uint32_t i = 0; i < manifest.num_shards; ++i) {
    DbOptions shard_options = options.base;
    shard_options.shared_clock = sdb->clock_;
    shard_options.create_if_missing = true;  // dirs are facade-managed
    if (options.base.wrap_device) {
      auto base_wrap = options.base.wrap_device;
      const std::string prefix = ShardDirName(i) + "/";
      shard_options.wrap_device =
          [base_wrap, prefix](const std::string& role,
                              std::unique_ptr<Device> device) {
            return base_wrap(prefix + role, std::move(device));
          };
    }
    if (options.shard_options_hook) {
      options.shard_options_hook(i, &shard_options);
    }
    // Each shard replays its own WAL onto the SHARED clock; the opens are
    // sequential and no reader exists yet, so the interleaved per-shard
    // publishes are harmless and the clock ends at the global maximum.
    TSB_RETURN_IF_ERROR(MultiVersionDB::Open(path + "/" + ShardDirName(i),
                                             shard_options, &sdb->shards_[i]));
  }

  // Resolve in-doubt multi-shard decisions: every decision whose record
  // reached the coordinator log is COMMITTED, so any slice a shard lost
  // (crash between the decision and that shard's WAL append) is re-applied
  // here; slices that did land are detected and skipped. Routing uses the
  // persisted seed, so the slices recompute exactly.
  wal::WalReplayResult rr;
  ShardedDB* raw = sdb.get();
  TSB_RETURN_IF_ERROR(wal::Wal::Replay(
      CoordLogPath(path), 0,
      [raw](const wal::WalCommit& c) { return raw->ApplyDecision(c); }, &rr));
  if (rr.frames > 0) {
    TSB_LOG_INFO("sharded open: resolved %llu in-doubt decision(s)%s",
                 (unsigned long long)rr.frames,
                 rr.tail_truncated ? ", torn tail truncated" : "");
  }
  // Everything recovered is fully applied: publish the watermark.
  sdb->clock_->Publish(sdb->clock_->Now());

  // The coordinator log is the multi-shard commit point, so it syncs per
  // decision (group commit) — unless the shards themselves run unsynced
  // (kOff benchmarks), where pretending the coordinator adds durability
  // would be a lie.
  sdb->coord_sync_mode_ = options.base.wal_sync == wal::WalSyncMode::kOff
                              ? wal::WalSyncMode::kOff
                              : wal::WalSyncMode::kGroup;
  sdb->coord_background_sync_ms_ = options.base.wal_background_sync_ms;
  sdb->coord_fault_plan_ = options.coord_fault_plan;
  TSB_RETURN_IF_ERROR(wal::Wal::Open(CoordLogPath(path), sdb->coord_sync_mode_,
                                     sdb->coord_background_sync_ms_,
                                     &sdb->coord_wal_,
                                     sdb->coord_fault_plan_));

  sdb->ledger_ = std::make_unique<txn::CommitLedger>(sdb->clock_.get());
  for (auto& s : sdb->shards_) {
    s->txn_manager()->SetLedger(sdb->ledger_.get());
  }
  *out = std::move(sdb);
  return Status::OK();
}

ShardedDB::~ShardedDB() {
  if (!degraded()) {
    // Clean shutdown: fold every shard and truncate the coordinator log,
    // so the next Open replays nothing. A failure leaves the logs in
    // place — recovery replays them, which is always correct.
    Status s = Checkpoint();
    if (!s.ok()) {
      TSB_LOG_WARN("sharded clean shutdown incomplete (%s); next open "
                   "will recover",
                   s.ToString().c_str());
    }
  }
  // Members tear down in reverse declaration order: the coordinator log
  // closes first, each shard then runs its own clean shutdown, and the
  // ledger/clock (which the shards' trees point into) go last.
}

Status ShardedDB::Destroy(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    if (errno == ENOENT) return Status::OK();
    return Status::IOError("opendir " + path, strerror(errno));
  }
  Status status = Status::OK();
  std::vector<std::string> shard_dirs;
  while (struct dirent* e = ::readdir(dir)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    if (name.rfind("shard-", 0) == 0) {
      shard_dirs.push_back(name);
      continue;
    }
    const bool owned = name == kShardsManifestName ||
                       name == std::string(kShardsManifestName) + ".tmp" ||
                       name == kCoordLogName;
    if (!owned) continue;  // unrecognized: left behind, rmdir surfaces it
    const std::string full = path + "/" + name;
    if (::unlink(full.c_str()) != 0 && status.ok()) {
      status = Status::IOError("unlink " + full, strerror(errno));
    }
  }
  ::closedir(dir);
  TSB_RETURN_IF_ERROR(status);
  for (const std::string& d : shard_dirs) {
    TSB_RETURN_IF_ERROR(MultiVersionDB::Destroy(path + "/" + d));
  }
  if (::rmdir(path.c_str()) != 0) {
    return Status::IOError("rmdir " + path, strerror(errno));
  }
  return Status::OK();
}

// ---------------------------------------------------------------- routing

uint32_t ShardedDB::ShardOf(const Slice& key) const {
  return ShardOfKey(key, static_cast<uint32_t>(shards_.size()), hash_seed_);
}

Status ShardedDB::ApplyDecision(const wal::WalCommit& commit) {
  std::map<uint32_t, wal::WalCommit> slices;
  for (const auto& [key, value] : commit.ops) {
    wal::WalCommit& slice = slices[ShardOf(key)];
    slice.ts = commit.ts;
    slice.ops.emplace_back(key, value);
  }
  for (auto& [s, slice] : slices) {
    TSB_RETURN_IF_ERROR(shards_[s]->ReplayExternalCommit(slice));
  }
  in_doubt_replayed_++;
  return Status::OK();
}

// ---------------------------------------------------------------- writes

Status ShardedDB::Put(const Slice& key, const Slice& value,
                      Timestamp* commit_ts) {
  return shards_[ShardOf(key)]->Put(key, value, commit_ts);
}

Status ShardedDB::Write(const WriteBatch& batch, Timestamp* commit_ts) {
  if (batch.empty()) {
    if (commit_ts != nullptr) *commit_ts = clock_->Visible();
    return Status::OK();
  }
  std::map<uint32_t, std::vector<std::pair<std::string, std::string>>> slices;
  for (const auto& op : batch.ops()) {
    slices[ShardOf(op.first)].push_back(op);
  }
  if (slices.size() == 1) {
    // The embarrassingly parallel case: the shard's own TxnManager
    // commits through the shared ledger, so even this path publishes the
    // global ordered prefix.
    return shards_[slices.begin()->first]->Write(batch, commit_ts);
  }
  return WriteMultiShard(slices, batch, commit_ts);
}

Status ShardedDB::WriteMultiShard(
    const std::map<uint32_t,
                   std::vector<std::pair<std::string, std::string>>>& slices,
    const WriteBatch& batch, Timestamp* commit_ts) {
  // Shared for the whole append-to-stamped window: Checkpoint's exclusive
  // hold can then never truncate a decision that is not yet fully
  // stamped and checkpointed into its shards.
  std::shared_lock<std::shared_mutex> coord(coord_mu_);
  if (coord_wal_ == nullptr) {
    // A failed RebuildCoordLog left no log; Resume() must re-establish
    // it before any new decision can be made durable.
    return Status::IOError("coordinator log unavailable; Resume required");
  }
  for (const auto& [s, ops] : slices) {
    // Fail fast: a degraded shard would reject its CommitPrepared AFTER
    // the decision became durable, turning a routine sick-shard error
    // into a repair cycle for this batch too.
    TSB_RETURN_IF_ERROR(shards_[s]->BackgroundError());
  }

  // 1. Lock and write the uncommitted slices (first-writer-wins; any
  // conflict aborts the whole batch with nothing decided).
  std::vector<std::pair<uint32_t, std::unique_ptr<txn::Transaction>>> txns;
  txns.reserve(slices.size());
  auto abort_active = [&txns]() {
    for (auto& [s, txn] : txns) {
      if (txn->active()) txn->Abort();
    }
  };
  for (const auto& [s, ops] : slices) {
    std::unique_ptr<txn::Transaction> txn;
    Status st = shards_[s]->Begin(&txn);
    if (st.ok()) {
      for (const auto& [key, value] : ops) {
        st = txn->Put(key, value);
        if (!st.ok()) break;
      }
    }
    if (txn != nullptr) txns.emplace_back(s, std::move(txn));
    if (!st.ok()) {
      abort_active();
      return st;
    }
  }

  // 2. Allocate the commit timestamp — registered in the ledger's global
  // in-flight set in the same critical section, so no commit completing
  // on any shard can publish the watermark past it from here on.
  const Timestamp ts = ledger_->TickCommit();

  // 3. The commit point: one self-contained decision record. Duplicate
  // keys collapse last-wins, matching the per-shard transaction's map.
  std::map<std::string, std::string> all_ops;
  for (const auto& [key, value] : batch.ops()) all_ops[key] = value;
  uint64_t end_lsn = 0;
  Status st = coord_wal_->AppendCommit(ts, all_ops, &end_lsn);
  if (!st.ok()) {
    // Append failure: the Wal truncated back to the last whole frame, so
    // nothing at ts can ever replay — the batch cleanly never happened.
    abort_active();
    ledger_->AbortCommit(ts);
    return st;
  }
  st = coord_wal_->Sync(end_lsn);
  if (!st.ok()) {
    // Sync failure AFTER a complete append: indeterminate — the frame
    // may be durable. The writer gets the error, but ts must stay
    // poisoned (never readable) until the outcome is resolved: Resume()
    // rebuilds the log without the ghost frame (abort), a crash lets the
    // frame replay if it survived (commit). Mirrors a single shard's
    // frozen watermark after a failed group commit.
    abort_active();
    {
      std::lock_guard<std::mutex> lock(multi_mu_);
      failed_coord_.insert(ts);
    }
    ledger_->PoisonCommit(ts);
    TSB_LOG_WARN("coordinator sync failed for t=%llu (%s): outcome "
                 "indeterminate, watermark pinned until Resume",
                 (unsigned long long)ts, st.ToString().c_str());
    return st;
  }

  // 4. Stamp every slice. Failures past this point cannot un-commit the
  // batch — they only delay its visibility.
  Status failure = Status::OK();
  for (auto& [s, txn] : txns) {
    Status cs = shards_[s]->txn_manager()->CommitPrepared(txn.get(), ts);
    if (!cs.ok() && failure.ok()) failure = cs;
  }
  if (!failure.ok()) {
    // Decided but unfinished. Release what the unstamped slices still
    // hold (locks, uncommitted records — stamped records stay for the
    // repair purge), pin the watermark below ts so no reader ever sees
    // the partial batch, and park the decision for Resume(). The sick
    // shard degraded through its own reporter; the OTHERS keep running.
    abort_active();
    {
      std::lock_guard<std::mutex> lock(multi_mu_);
      failed_multi_[ts] = all_ops;
    }
    ledger_->PoisonCommit(ts);
    TSB_LOG_WARN("multi-shard commit t=%llu decided but unfinished (%s); "
                 "watermark pinned until Resume",
                 (unsigned long long)ts, failure.ToString().c_str());
    // The decision record is durable: by the facade's contract the batch
    // IS committed (it survives any crash), so the writer is acked. Its
    // visibility waits for repair.
    if (commit_ts != nullptr) *commit_ts = ts;
    return Status::OK();
  }

  // 5. Fully stamped everywhere: retire the in-flight entry; the
  // watermark may now pass ts.
  ledger_->EndCommit(ts);
  if (commit_ts != nullptr) *commit_ts = ts;
  coord.unlock();

  if (coord_wal_->appended_lsn() > coord_checkpoint_bytes_) {
    // Bound Open-time decision replay. The commit above is already
    // durable and acked; a checkpoint failure is sticky in the shard it
    // hit and must not be read as "not committed".
    Status cp = Checkpoint();
    if (!cp.ok()) {
      TSB_LOG_ERROR("coordinator-triggered checkpoint failed (%s); "
                    "decision t=%llu is committed and durable",
                    cp.ToString().c_str(), (unsigned long long)ts);
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------- reads

Status ShardedDB::Get(const ReadOptions& options, const Slice& key,
                      std::string* value, Timestamp* ts) {
  return shards_[ShardOf(key)]->Get(options, key, value, ts);
}

Status ShardedDB::Get(const ReadOptions& options, const Slice& key,
                      PinnableValue* value) {
  return shards_[ShardOf(key)]->Get(options, key, value);
}

Status ShardedDB::Get(const Slice& key, std::string* value, Timestamp* ts) {
  return shards_[ShardOf(key)]->Get(key, value, ts);
}

std::unique_ptr<ShardedCursor> ShardedDB::NewCursor(
    const ReadOptions& options) {
  // Resolve the as-of time ONCE against the shared clock: handing
  // kAsOfLatest to each child would let them snapshot different
  // watermarks and merge two different database states.
  ReadOptions resolved = options;
  if (resolved.as_of == tsb_tree::kAsOfLatest) {
    resolved.as_of = clock_->Visible();
  }
  std::vector<std::unique_ptr<tsb_tree::VersionCursor>> children;
  children.reserve(shards_.size());
  for (auto& s : shards_) children.push_back(s->NewCursor(resolved));
  return std::make_unique<ShardedCursor>(std::move(children),
                                         resolved.as_of);
}

ShardedReadTransaction ShardedDB::BeginReadOnly() {
  // One atomic load of the shared watermark — the ledger publishes only
  // ordered prefixes of fully-stamped commits, so this timestamp can
  // never observe a torn multi-shard batch (section 4.1, lifted to N
  // trees).
  return ShardedReadTransaction(this, clock_->Visible());
}

Status ShardedReadTransaction::Get(const Slice& key, std::string* value,
                                   Timestamp* version_ts) {
  ReadOptions options;
  options.as_of = ts_;
  return db_->Get(options, key, value, version_ts);
}

std::unique_ptr<ShardedCursor> ShardedReadTransaction::NewCursor() {
  ReadOptions options;
  options.as_of = ts_;
  return db_->NewCursor(options);
}

// ---------------------------------------------------------------- health

Status ShardedDB::BackgroundError() const {
  for (const auto& s : shards_) {
    Status st = s->BackgroundError();
    if (!st.ok()) return st;
  }
  return Status::OK();
}

bool ShardedDB::degraded() const {
  for (const auto& s : shards_) {
    if (s->degraded()) return true;
  }
  return false;
}

bool ShardedDB::shard_degraded(uint32_t shard) const {
  return shards_[shard]->degraded();
}

Status ShardedDB::shard_background_error(uint32_t shard) const {
  return shards_[shard]->BackgroundError();
}

db::ErrorHandlerStats ShardedDB::shard_error_stats(uint32_t shard) const {
  return shards_[shard]->error_stats();
}

size_t ShardedDB::pending_decisions() const {
  std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(multi_mu_));
  return failed_multi_.size();
}

// ---------------------------------------------------------------- repair

Status ShardedDB::CheckpointShards() {
  for (auto& s : shards_) {
    TSB_RETURN_IF_ERROR(s->Checkpoint());
  }
  return Status::OK();
}

Status ShardedDB::Checkpoint() {
  // Exclusive: no decision record can be appended mid-checkpoint, so the
  // truncated prefix holds only decisions whose slices every shard just
  // folded into its durable base.
  std::unique_lock<std::shared_mutex> coord(coord_mu_);
  TSB_RETURN_IF_ERROR(CheckpointShards());
  {
    std::lock_guard<std::mutex> lock(multi_mu_);
    if (!failed_multi_.empty() || !failed_coord_.empty()) {
      // Pending repairs re-apply from failed_multi_ while live, but a
      // crash before Resume must still find the decisions on disk; and
      // indeterminate frames stay until Resume resolves them.
      return Status::OK();
    }
  }
  if (coord_wal_ == nullptr) return RebuildCoordLog();
  return coord_wal_->Reset();
}

Status ShardedDB::Resume() {
  // Heal the sick shards first: each shard's Resume purges ITS failed
  // timestamps (including slices of cross-shard decisions that died
  // mid-stamp there) and re-establishes its durability on a fresh log.
  // The external pins stay down — ResetAfterRepair skips them — until
  // the decisions are re-applied below.
  for (auto& s : shards_) {
    // Quarantined-but-healthy shards need the repair half of Resume too
    // (a scrub hit quarantines pages without degrading the shard).
    if (s->degraded() || s->quarantined_count() > 0) {
      TSB_RETURN_IF_ERROR(s->Resume());
    }
  }
  std::unique_lock<std::shared_mutex> coord(coord_mu_);
  std::map<Timestamp, std::map<std::string, std::string>> pending;
  std::set<Timestamp> indeterminate;
  {
    std::lock_guard<std::mutex> lock(multi_mu_);
    pending = failed_multi_;
    indeterminate = failed_coord_;
  }
  for (const auto& [ts, ops] : pending) {
    TSB_RETURN_IF_ERROR(RepairDecision(ts, ops));
    std::lock_guard<std::mutex> lock(multi_mu_);
    failed_multi_.erase(ts);
  }
  if (!indeterminate.empty() || coord_wal_ == nullptr) {
    // Resolve indeterminate decisions to ABORT: once every shard's state
    // is durably checkpointed, no coordinator frame is needed anymore,
    // so the log is rebuilt empty — the ghost frames (if they landed)
    // can never replay — and the pins lift. The writers already saw the
    // error; the batches now definitively never happened.
    TSB_RETURN_IF_ERROR(CheckpointShards());
    TSB_RETURN_IF_ERROR(RebuildCoordLog());
    std::lock_guard<std::mutex> lock(multi_mu_);
    for (const Timestamp ts : indeterminate) {
      ledger_->Unpoison(ts);
      failed_coord_.erase(ts);
    }
  }
  return Status::OK();
}

Status ShardedDB::Scrub(db::ScrubStats* total,
                        std::vector<db::ScrubStats>* per_shard) {
  if (per_shard != nullptr) {
    per_shard->clear();
    per_shard->resize(shards_.size());
  }
  db::ScrubStats sum;
  for (size_t i = 0; i < shards_.size(); ++i) {
    db::ScrubStats stats;
    TSB_RETURN_IF_ERROR(shards_[i]->Scrub(&stats));
    if (per_shard != nullptr) (*per_shard)[i] = stats;
    sum.Add(stats);
  }
  // SHARDS manifest: the crc terminator re-validates {num_shards,
  // hash_seed} — rot here would misroute every key at the next Open. It
  // is ensemble state, not one shard's, so it logs + counts rather than
  // degrading a shard that did nothing wrong.
  bool exists = false;
  ShardsManifest m;
  Status ms = ReadShardsManifest(path_, &exists, &m);
  sum.files_scanned++;
  if (ms.IsCorruption()) {
    sum.corruptions_detected++;
    TSB_LOG_ERROR("scrub: SHARDS manifest corrupt (%s); repair it from a "
                  "replica before the next reopen",
                  ms.ToString().c_str());
  } else if (!ms.ok()) {
    return ms;
  }
  if (total != nullptr) *total = sum;
  return Status::OK();
}

Status ShardedDB::RebuildCoordLog() {
  coord_wal_.reset();
  const std::string file = CoordLogPath(path_);
  if (::unlink(file.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError("unlink " + file, strerror(errno));
  }
  TSB_RETURN_IF_ERROR(SyncDir(path_));
  return wal::Wal::Open(file, coord_sync_mode_, coord_background_sync_ms_,
                        &coord_wal_, coord_fault_plan_);
}

Status ShardedDB::RepairDecision(
    Timestamp ts, const std::map<std::string, std::string>& ops) {
  std::map<uint32_t, wal::WalCommit> slices;
  for (const auto& [key, value] : ops) {
    wal::WalCommit& slice = slices[ShardOf(key)];
    slice.ts = ts;
    slice.ops.emplace_back(key, value);
  }
  for (auto& [s, slice] : slices) {
    // Purge-then-reapply is idempotent and shard-state-agnostic: a shard
    // that stamped its slice fully, partially, or not at all all converge
    // to exactly the decided slice. Commits freeze so no concurrent
    // same-key writer interleaves with the replay descents.
    txn::TxnManager* tm = shards_[s]->txn_manager();
    tm->FreezeCommits();
    Status st = shards_[s]->PurgeCommittedAt(ts);
    if (st.ok()) st = shards_[s]->ReplayExternalCommit(slice);
    tm->UnfreezeCommits();
    TSB_RETURN_IF_ERROR(st);
  }
  // Every slice is whole again: lift the pin. The watermark recomputes
  // and the batch becomes visible exactly once, atomically.
  ledger_->Unpoison(ts);
  TSB_LOG_INFO("repaired multi-shard decision t=%llu across %zu shard(s)",
               (unsigned long long)ts, slices.size());
  return Status::OK();
}

}  // namespace shard
}  // namespace tsb
