// ShardedDB: N MultiVersionDB shards behind the single-database surface.
//
// Keys hash-partition (seeded Hash64, see common/hash.h) over N shards,
// each a full MultiVersionDB in its own subdirectory — own devices, own
// buffer pool, own WAL, own ErrorHandler — so writers on different
// shards never contend on a page, a latch, or a log. What makes the
// ensemble ONE database instead of N is a single injected LogicalClock
// (DbOptions::shared_clock) plus a CommitLedger computing the published
// watermark over the GLOBAL in-flight set: a timestamp allocated on any
// shard is meaningful on all of them, and a reader at the watermark sees
// whole transactions or nothing — the paper's section 4.1 guarantee,
// lifted from one tree to N.
//
// Writes route by key. A batch whose keys all hash to one shard commits
// on that shard alone (the common, embarrassingly parallel case). A
// multi-shard batch runs a coordinator protocol whose commit point is a
// single self-contained decision record in the top-level coordinator log
// (`coord.tsb`, the same frame format as the shard WALs):
//
//   1. lock + write uncommitted slices on every touched shard
//   2. ts = ledger.TickCommit()       — pins the watermark below ts
//   3. append {ts, ALL ops} to coord.tsb + fdatasync   <- commit point
//   4. CommitPrepared(slice, ts) on every touched shard (shard WAL
//      append + stamp + group-commit sync)
//   5. ledger.EndCommit(ts)           — watermark may now pass ts
//
// Crash before 3: no shard logged anything at ts — the batch never
// happened (a failed append truncates back to the last whole frame, so
// no half-appended decision can replay). A FAILED SYNC in 3 is
// indeterminate — the frame may or may not be durable — so the writer
// gets the error but the timestamp stays poisoned (pinning the
// watermark, exactly like a single shard's failed group commit):
// Resume() resolves it to ABORT by rebuilding the coordinator log
// without the ghost frame, while a crash first resolves it to COMMIT at
// the next Open's replay. Either way no reader observed the other
// outcome — the pin kept the timestamp unreadable throughout.
// Crash after 3: Open replays coord.tsb, recomputes each op's
// home shard from the persisted hash seed, and idempotently re-applies
// every missing slice (a slice already in a shard — WAL-replayed or
// checkpointed — is detected by an exact as-of probe and skipped), so
// every acked batch surfaces fully visible or fully absent. The
// coordinator log only truncates after EVERY shard has checkpointed
// (folding re-applied slices into their durable bases), under the same
// exclusive lock that excludes in-flight decisions.
//
// A CommitPrepared failure AFTER the commit point leaves the batch
// decided but unfinished: the facade poisons the ledger (watermark pinned
// below ts — no reader ever sees the partial batch), remembers the
// decision, and degrades only the sick shard. Healthy shards keep
// accepting writes (durable, invisible above the pin until repair).
// Resume() heals the sick shards, then purges + re-applies each pending
// decision on every touched shard and lifts the pin — the batch becomes
// visible exactly once, whole.
#ifndef TSBTREE_SHARD_SHARDED_DB_H_
#define TSBTREE_SHARD_SHARDED_DB_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "db/multiversion_db.h"
#include "shard/sharded_cursor.h"
#include "txn/commit_ledger.h"

namespace tsb {
namespace shard {

using db::DbOptions;
using db::MultiVersionDB;
using db::PinnableValue;
using db::ReadOptions;
using db::WriteBatch;

struct ShardedOptions {
  /// Options every shard is opened with (per-shard paths, devices and
  /// WALs are derived internally; base.shared_clock is overwritten with
  /// the ensemble clock). base.wrap_device, if set, is called with roles
  /// prefixed "shard-NNN/" so fault tests can target one shard.
  DbOptions base;
  /// Shard count, FIXED at creation (the persisted SHARDS manifest is
  /// authoritative on reopen; a mismatching nonzero value fails the
  /// open). 0 on reopen = use the manifest's count.
  uint32_t num_shards = 4;
  /// Seed of the routing hash, fixed at creation and persisted — reopen
  /// always routes with the manifest's seed, never this field.
  uint64_t hash_seed = 0x74736273'31393839ull;
  bool create_if_missing = true;
  /// Checkpoint every shard (and truncate the coordinator log) once
  /// coord.tsb exceeds this many bytes — bounds Open-time decision
  /// replay the same way DbOptions::wal_checkpoint_bytes bounds shard
  /// replay.
  uint64_t coord_checkpoint_bytes = 8u << 20;
  /// Fault plan for the COORDINATOR log's appends/syncs (shard WALs take
  /// base.wal_fault_plan). nullptr = no injection.
  std::shared_ptr<FaultPlan> coord_fault_plan;
  /// Last-chance per-shard override (tests: inject a fault plan into one
  /// shard), called after the facade derived shard `i`'s options.
  std::function<void(uint32_t shard, DbOptions* options)> shard_options_hook;
};

class ShardedDB;

/// Lock-free read-only transaction spanning every shard: one timestamp
/// captured from the shared clock's watermark, point reads routed by
/// key, cursors merged — the same shapes as txn::ReadTransaction.
class ShardedReadTransaction {
 public:
  Timestamp timestamp() const { return ts_; }
  Status Get(const Slice& key, std::string* value,
             Timestamp* version_ts = nullptr);
  std::unique_ptr<ShardedCursor> NewCursor();

 private:
  friend class ShardedDB;
  ShardedReadTransaction(ShardedDB* db, Timestamp ts) : db_(db), ts_(ts) {}

  ShardedDB* db_;
  Timestamp ts_;
};

class ShardedDB {
 public:
  /// Opens (creating, per options) the sharded database at `path`:
  /// shard-NNN/ subdirectories each holding a full MultiVersionDB, a
  /// SHARDS manifest pinning {num_shards, hash_seed}, and the
  /// coordinator log. Recovery order: shards first (each replays its own
  /// WAL on the shared clock), then the coordinator log resolves
  /// in-doubt multi-shard decisions, then the watermark publishes — so a
  /// first read observes every acked batch whole.
  static Status Open(const std::string& path, const ShardedOptions& options,
                     std::unique_ptr<ShardedDB>* out);

  /// Deletes every shard directory (via MultiVersionDB::Destroy), the
  /// SHARDS manifest and coordinator log, then the directory itself.
  /// Refuses unrecognized files the same way the single-DB Destroy does.
  static Status Destroy(const std::string& path);

  ~ShardedDB();

  ShardedDB(const ShardedDB&) = delete;
  ShardedDB& operator=(const ShardedDB&) = delete;

  // ---- writes ----

  /// Applies `batch` atomically under ONE commit timestamp regardless of
  /// how many shards its keys span. Single-shard batches commit on that
  /// shard alone; multi-shard batches run the coordinator protocol (file
  /// comment). Once this returns OK the batch is durably decided: it is
  /// either already visible or (after a mid-commit shard failure)
  /// invisible-but-pinned until Resume()/reopen completes it — readers
  /// never observe a torn batch either way.
  Status Write(const WriteBatch& batch, Timestamp* commit_ts = nullptr);

  /// One record in its own commit (always single-shard).
  Status Put(const Slice& key, const Slice& value,
             Timestamp* commit_ts = nullptr);

  // ---- reads (routed by key; same shapes as MultiVersionDB) ----

  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value, Timestamp* ts = nullptr);
  Status Get(const ReadOptions& options, const Slice& key,
             PinnableValue* value);
  Status Get(const Slice& key, std::string* value, Timestamp* ts = nullptr);

  /// K-way merging cursor over all shards, pinned at one resolved as-of
  /// time (see shard/sharded_cursor.h).
  std::unique_ptr<ShardedCursor> NewCursor(
      const ReadOptions& options = ReadOptions());

  /// Lock-free cross-shard read-only transaction at the shared
  /// watermark: one atomic load, never blocks, never sees a torn batch.
  ShardedReadTransaction BeginReadOnly();

  // ---- maintenance ----

  /// Checkpoints every shard, then (when no decision is pending repair)
  /// truncates the coordinator log. Exclusive with in-flight multi-shard
  /// commits, so no decision record can slip into the dead prefix.
  Status Checkpoint();

  /// Heals the ensemble: resumes every degraded shard (repairing its
  /// quarantined pages), then completes every pending multi-shard
  /// decision (purge + re-apply on each touched shard, commits frozen)
  /// and lifts its watermark pin.
  Status Resume();

  /// One scrub pass over every shard (pages, blobs, WAL, MANIFEST) plus
  /// the ensemble's SHARDS manifest. A corrupt page quarantines on ITS
  /// shard alone — the other shards keep full service. `per_shard`, when
  /// non-null, receives one ScrubStats per shard (indexed by shard id);
  /// `total` the sum (plus the SHARDS manifest file). Detected corruption
  /// is reported through stats and the shards' error handlers, not the
  /// return status (non-OK = the scrub itself hit an I/O error).
  Status Scrub(db::ScrubStats* total = nullptr,
               std::vector<db::ScrubStats>* per_shard = nullptr);

  // ---- per-shard health (one sick shard degrades alone) ----

  /// First degraded shard's sticky error; OK when every shard is
  /// healthy.
  Status BackgroundError() const;
  /// True when ANY shard is degraded. Healthy shards keep serving reads
  /// AND writes — check shard_degraded() to find the sick one.
  bool degraded() const;
  bool shard_degraded(uint32_t shard) const;
  Status shard_background_error(uint32_t shard) const;
  db::ErrorHandlerStats shard_error_stats(uint32_t shard) const;

  // ---- introspection ----

  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  uint64_t hash_seed() const { return hash_seed_; }
  /// Routing: the shard `key` lives on.
  uint32_t ShardOf(const Slice& key) const;
  MultiVersionDB* shard(uint32_t i) { return shards_[i].get(); }
  LogicalClock* clock() { return clock_.get(); }
  txn::CommitLedger* ledger() { return ledger_.get(); }
  /// Committed cross-shard watermark.
  Timestamp Now() const { return clock_->Visible(); }
  const std::string& path() const { return path_; }
  /// Decision records the coordinator replay re-applied at Open (0 after
  /// a clean shutdown).
  uint64_t in_doubt_replayed() const { return in_doubt_replayed_; }
  /// Multi-shard decisions currently awaiting Resume().
  size_t pending_decisions() const;

 private:
  ShardedDB() = default;

  /// Coordinator-replay callback: routes `commit`'s ops by the persisted
  /// seed and idempotently re-applies each shard's slice.
  Status ApplyDecision(const wal::WalCommit& commit);

  /// The multi-shard commit protocol (file comment); caller verified the
  /// batch spans >1 shard.
  Status WriteMultiShard(
      const std::map<uint32_t, std::vector<std::pair<std::string,
                                                     std::string>>>& slices,
      const WriteBatch& batch, Timestamp* commit_ts);

  /// Purge + re-apply one decided batch on every touched shard (commits
  /// frozen per shard), then lift its pin. Caller holds coord_mu_
  /// exclusive.
  Status RepairDecision(Timestamp ts,
                        const std::map<std::string, std::string>& ops);

  /// Checkpoints every shard (no coordinator-log action). Caller holds
  /// coord_mu_ exclusive.
  Status CheckpointShards();

  /// Replaces the coordinator log with a fresh empty one — the only way
  /// to shed ghost frames once the log carries a sticky sync error.
  /// Caller holds coord_mu_ exclusive and has checkpointed every shard.
  Status RebuildCoordLog();

  std::string path_;
  uint64_t hash_seed_ = 0;
  uint64_t coord_checkpoint_bytes_ = 0;
  // Destruction order matters: shards_ holds raw pointers into clock_
  // and ledger_ (trees and TxnManagers), so both must outlive it —
  // members destroy in reverse declaration order.
  std::shared_ptr<LogicalClock> clock_;
  std::unique_ptr<txn::CommitLedger> ledger_;
  std::vector<std::unique_ptr<MultiVersionDB>> shards_;
  std::unique_ptr<wal::Wal> coord_wal_;
  wal::WalSyncMode coord_sync_mode_ = wal::WalSyncMode::kGroup;
  uint32_t coord_background_sync_ms_ = 0;
  std::shared_ptr<FaultPlan> coord_fault_plan_;
  uint64_t in_doubt_replayed_ = 0;

  /// Multi-shard commits hold this SHARED for their whole append-to-
  /// stamped window; Checkpoint/Resume hold it EXCLUSIVE — the log-
  /// truncation and repair barrier.
  mutable std::shared_mutex coord_mu_;
  /// Decisions durably committed but not fully stamped (a shard failed
  /// mid-CommitPrepared); keyed by commit timestamp. Guarded by
  /// multi_mu_; drained by Resume().
  std::mutex multi_mu_;
  std::map<Timestamp, std::map<std::string, std::string>> failed_multi_;
  /// Timestamps whose decision record's SYNC failed: outcome
  /// indeterminate, writer saw the error, watermark pinned. Resume()
  /// resolves them to abort (rebuild the log, lift the pin); a crash
  /// resolves them to commit (the frame, if durable, replays). Guarded
  /// by multi_mu_.
  std::set<Timestamp> failed_coord_;
};

}  // namespace shard
}  // namespace tsb

#endif  // TSBTREE_SHARD_SHARDED_DB_H_
