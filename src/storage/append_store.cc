#include "storage/append_store.h"

#include <algorithm>
#include <memory>

#include "common/coding.h"
#include "common/crc32c.h"

namespace tsb {

AppendStore::AppendStore(Device* device, size_t cache_blobs)
    : device_(device), cache_capacity_(cache_blobs) {
  sector_size_ = device->write_once_sector_size();
  next_offset_ = device->Size();
}

uint64_t AppendStore::AlignUp(uint64_t offset) const {
  if (sector_size_ == 0) return offset;
  const uint64_t rem = offset % sector_size_;
  return rem == 0 ? offset : offset + (sector_size_ - rem);
}

Status AppendStore::Append(const Slice& payload, HistAddr* addr) {
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed32(&frame,
             crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  frame.append(payload.data(), payload.size());

  std::lock_guard<std::mutex> lock(append_mu_);
  const uint64_t offset = AlignUp(next_offset_);
  TSB_RETURN_IF_ERROR(device_->Write(offset, frame));
  addr->offset = offset;
  addr->length = static_cast<uint32_t>(payload.size());
  next_offset_ = offset + frame.size();
  payload_bytes_ += payload.size();
  blob_count_++;
  return Status::OK();
}

Status AppendStore::ReadFromDevice(const HistAddr& addr,
                                   std::string* payload) {
  char header[kFrameHeaderSize];
  TSB_RETURN_IF_ERROR(device_->Read(addr.offset, kFrameHeaderSize, header));
  const uint32_t len = DecodeFixed32(header);
  const uint32_t stored_crc = crc32c::Unmask(DecodeFixed32(header + 4));
  if (len != addr.length) {
    Unverify(addr.offset);
    return Status::Corruption("historical blob length mismatch",
                              "at offset " + std::to_string(addr.offset));
  }
  payload->resize(len);
  TSB_RETURN_IF_ERROR(
      device_->Read(addr.offset + kFrameHeaderSize, len, payload->data()));
  if (crc32c::Value(payload->data(), len) != stored_crc) {
    // Sticky-DETECTED, not sticky-trusted: drop the first-pin memo so no
    // later mapped read serves these bytes as "already verified".
    Unverify(addr.offset);
    return Status::Corruption("historical blob checksum mismatch",
                              "at offset " + std::to_string(addr.offset));
  }
  return Status::OK();
}

void AppendStore::Unverify(uint64_t offset) {
  {
    std::lock_guard<std::mutex> lock(verified_mu_);
    verified_.erase(offset);
  }
  // Also drop any cached handle: a cache hit would keep serving the
  // (stale, once-good) copy and mask the device-level corruption from
  // every reader that does not pass verify_checksums.
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(offset);
  if (it != cache_.end()) {
    cache_lru_.erase(it->second.lru_pos);
    cache_.erase(it);
  }
}

Status AppendStore::PinFromDevice(const HistAddr& addr,
                                  const BlobReadHints& hints,
                                  BlobHandle* out) {
  if (device_->SupportsMappedReads()) {
    MappedRead m;
    Status s = device_->ReadMapped(
        addr.offset, kFrameHeaderSize + addr.length, &m,
        hints.sequential ? AccessPattern::kSequential
                         : AccessPattern::kRandom);
    if (s.ok()) {
      const char* frame = m.data.data();
      const uint32_t len = DecodeFixed32(frame);
      if (len != addr.length) {
        Unverify(addr.offset);
        return Status::Corruption("historical blob length mismatch",
                                  "at offset " + std::to_string(addr.offset));
      }
      const Slice payload(frame + kFrameHeaderSize, len);
      bool verified;
      {
        std::lock_guard<std::mutex> lock(verified_mu_);
        verified = verified_.count(addr.offset) != 0;
      }
      if (!verified || hints.verify_checksums) {
        const uint32_t stored_crc = crc32c::Unmask(DecodeFixed32(frame + 4));
        if (crc32c::Value(payload.data(), len) != stored_crc) {
          // Evict the memo (and any cached copy): the error must stay
          // detectable on every later read, not trusted away.
          Unverify(addr.offset);
          return Status::Corruption(
              "historical blob checksum mismatch",
              "at offset " + std::to_string(addr.offset));
        }
        std::lock_guard<std::mutex> lock(verified_mu_);
        if (verified_.size() < verified_capacity_) {
          verified_.insert(addr.offset);
        }
      }
      mapped_bytes_.fetch_add(len, std::memory_order_relaxed);
      // Re-alias the pin to the payload start so handles for the same blob
      // compare equal in SharesBufferWith regardless of the mapping they
      // came from being shared with other blobs.
      *out = BlobHandle(
          std::shared_ptr<const void>(std::move(m.pin), payload.data()),
          payload);
      return Status::OK();
    }
    // Mapped read unavailable (e.g. device grew no mapping yet failed);
    // fall through to the copying path.
  }
  auto payload = std::make_shared<std::string>();
  TSB_RETURN_IF_ERROR(ReadFromDevice(addr, payload.get()));
  copied_bytes_.fetch_add(payload->size(), std::memory_order_relaxed);
  *out = BlobHandle::FromString(std::move(payload));
  return Status::OK();
}

Status AppendStore::ReadView(const HistAddr& addr, BlobHandle* out,
                             const BlobReadHints& hints) {
  blob_reads_.fetch_add(1, std::memory_order_relaxed);
  blob_bytes_read_.fetch_add(addr.length, std::memory_order_relaxed);
  // A verifying read must not be satisfied (or influenced) by the shared
  // cache: the point of the hint is to check the bytes the DEVICE holds
  // now, and a cached handle — or another reader's concurrently published
  // one — was verified in the past. Bypass the cache entirely.
  const bool verify = hints.verify_checksums;
  if (cache_capacity_ > 0 && !verify) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_.find(addr.offset);
    if (it != cache_.end()) {
      // splice, not erase+push: the LRU bump must not allocate.
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second.lru_pos);
      *out = it->second.handle;  // pin, no copy
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }

  BlobHandle fresh;
  TSB_RETURN_IF_ERROR(PinFromDevice(addr, hints, &fresh));

  if (cache_capacity_ > 0 && hints.fill_cache && !verify) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_.find(addr.offset);
    if (it != cache_.end()) {
      // A concurrent reader published the same blob while we read it from
      // the device; share theirs so all pins reference one buffer.
      fresh = it->second.handle;
    } else {
      while (cache_.size() >= cache_capacity_) {
        const uint64_t victim = cache_lru_.back();
        cache_lru_.pop_back();
        cache_.erase(victim);  // pinned readers keep the blob alive
      }
      cache_lru_.push_front(addr.offset);
      cache_.emplace(addr.offset, CacheEntry{fresh, cache_lru_.begin()});
    }
  }
  *out = std::move(fresh);
  return Status::OK();
}

void AppendStore::ClearCache() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  cache_.clear();
  cache_lru_.clear();
}

Status AppendStore::Read(const HistAddr& addr, std::string* payload) {
  BlobHandle handle;
  TSB_RETURN_IF_ERROR(ReadView(addr, &handle));
  const Slice data = handle.data();
  payload->assign(data.data(), data.size());  // copy outside the cache latch
  return Status::OK();
}

void AppendStore::SnapshotVerified(std::vector<uint64_t>* offsets,
                                   uint64_t* store_size) const {
  {
    std::lock_guard<std::mutex> lock(append_mu_);
    *store_size = next_offset_;
  }
  std::lock_guard<std::mutex> lock(verified_mu_);
  offsets->assign(verified_.begin(), verified_.end());
  std::sort(offsets->begin(), offsets->end());
}

void AppendStore::PreloadVerified(const std::vector<uint64_t>& offsets) {
  uint64_t size = 0;
  {
    std::lock_guard<std::mutex> lock(append_mu_);
    size = next_offset_;
  }
  std::lock_guard<std::mutex> lock(verified_mu_);
  for (const uint64_t off : offsets) {
    // A verified blob has at least a whole frame header inside the store;
    // anything else is a snapshot from a different (or corrupted) file
    // and preloading it would mark unverifiable bytes as checked.
    if (off + kFrameHeaderSize > size) continue;
    if (verified_.size() >= verified_capacity_) break;
    verified_.insert(off);
  }
}

Status AppendStore::ScrubAll(
    const std::function<void(uint64_t, const Status&)>& on_corrupt,
    BlobScrubResult* result,
    const std::function<void(uint64_t)>& throttle) {
  *result = BlobScrubResult();
  uint64_t end = 0;
  {
    std::lock_guard<std::mutex> lock(append_mu_);
    end = next_offset_;
  }
  uint64_t offset = 0;
  std::string payload;
  while (true) {
    offset = AlignUp(offset);
    if (offset + kFrameHeaderSize > end) break;
    char header[kFrameHeaderSize];
    TSB_RETURN_IF_ERROR(device_->Read(offset, kFrameHeaderSize, header));
    const uint32_t len = DecodeFixed32(header);
    const uint32_t stored_crc = crc32c::Unmask(DecodeFixed32(header + 4));
    if (offset + kFrameHeaderSize + len > end) {
      // The length field itself no longer parses against the append chain;
      // every frame after this point is unreachable through it.
      result->corruptions++;
      Unverify(offset);
      if (on_corrupt) {
        on_corrupt(offset,
                   Status::Corruption("historical blob frame unparseable",
                                      "at offset " + std::to_string(offset)));
      }
      break;
    }
    payload.resize(len);
    TSB_RETURN_IF_ERROR(
        device_->Read(offset + kFrameHeaderSize, len, payload.data()));
    if (crc32c::Value(payload.data(), len) != stored_crc) {
      result->corruptions++;
      Unverify(offset);
      if (on_corrupt) {
        on_corrupt(offset,
                   Status::Corruption("historical blob checksum mismatch",
                                      "at offset " + std::to_string(offset)));
      }
    }
    result->blobs_scanned++;
    result->bytes_scanned += kFrameHeaderSize + len;
    if (throttle) throttle(kFrameHeaderSize + len);
    offset += kFrameHeaderSize + len;
  }
  return Status::OK();
}

HistReadStats AppendStore::hist_stats() const {
  HistReadStats s;
  s.blob_reads = blob_reads_.load(std::memory_order_relaxed);
  s.blob_bytes = blob_bytes_read_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.mapped_bytes = mapped_bytes_.load(std::memory_order_relaxed);
  s.copied_bytes = copied_bytes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace tsb
