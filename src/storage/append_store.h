// AppendStore: the historical database medium.
//
// Section 3.4 of the paper: "the historical data can be appended to a
// sequential file"; index pointers "record its address ... and its length".
// Nodes are consolidated variable-length blobs. On a WORM device each
// append is rounded up to the sector grid (the residue is the only waste,
// hence the paper's "nearly approximate the sector size" utilization); on
// erasable devices appends pack byte-contiguously.
//
// Blob framing: [u32 payload_len][u32 masked crc32c(payload)][payload].
#ifndef TSBTREE_STORAGE_APPEND_STORE_H_
#define TSBTREE_STORAGE_APPEND_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "storage/device.h"
#include "storage/io_stats.h"

namespace tsb {

/// Address of a blob inside the historical store.
struct HistAddr {
  uint64_t offset = 0;
  uint32_t length = 0;  ///< payload length (excludes framing)

  bool operator==(const HistAddr& o) const {
    return offset == o.offset && length == o.length;
  }
};

/// A pinned, immutable historical blob. The pin either refcounts a heap
/// buffer (copying read path, cache hits) or a device mapping (mmap read
/// path) — either way data() stays valid for the handle's lifetime, even
/// if the cache evicts the entry or the device remaps after growth. Cheap
/// to copy (one refcount bump).
class BlobHandle {
 public:
  BlobHandle() = default;

  /// The blob's payload bytes; valid while this handle (or any copy) lives.
  Slice data() const { return data_; }
  bool valid() const { return pin_ != nullptr; }
  void Release() {
    pin_.reset();
    data_ = Slice();
  }

  /// True when two handles pin the same underlying bytes (shared cache
  /// entry or shared mapping rather than separate copies) — used by tests.
  bool SharesBufferWith(const BlobHandle& o) const {
    return pin_ != nullptr && pin_ == o.pin_;
  }

 private:
  friend class AppendStore;
  BlobHandle(std::shared_ptr<const void> pin, Slice data)
      : pin_(std::move(pin)), data_(data) {}
  static BlobHandle FromString(std::shared_ptr<const std::string> blob) {
    const Slice data(*blob);
    return BlobHandle(std::shared_ptr<const void>(std::move(blob)), data);
  }

  std::shared_ptr<const void> pin_;
  Slice data_;
};

/// Per-read behavior knobs threaded down from the public ReadOptions.
struct BlobReadHints {
  /// Re-verify the CRC against the device bytes even when this blob was
  /// verified before. Bypasses the shared cache (a cached handle was
  /// verified in the past — the point here is the bytes as stored NOW)
  /// and the first-pin memo on the mapped path.
  bool verify_checksums = false;
  /// Publish cache-miss blobs into the shared read cache. Scans that
  /// should not evict the point-lookup working set pass false (hits are
  /// still served from the cache either way).
  bool fill_cache = true;
  /// The caller is range-scanning: mapped reads advise MADV_SEQUENTIAL
  /// over the range instead of the point-pin MADV_RANDOM default.
  bool sequential = false;
};

/// Append-only store of checksummed variable-length blobs, with a small
/// LRU read cache of shared immutable blobs (historical data is
/// read-mostly and slow; the cache models a modest staging buffer, not the
/// magnetic-disk buffer pool).
///
/// Thread-safe: appends are serialized by a mutex; concurrent reads share
/// the device (blobs are immutable once written) and the read cache is
/// latch-guarded. Cache hits never copy or verify the payload under the
/// latch — they pin the cached blob; misses read and CRC-check outside the
/// latch and publish the blob once.
class AppendStore {
 public:
  /// `device` outlives the store. If the device is a WORM, appends start at
  /// sector boundaries automatically (Device::Write enforcement); for
  /// erasable devices appends are byte-contiguous. `cache_blobs` = number
  /// of decoded blobs kept in the read cache (0 disables caching).
  AppendStore(Device* device, size_t cache_blobs = 0);

  /// Appends `payload` and returns its address.
  Status Append(const Slice& payload, HistAddr* addr);

  /// Pins the blob at `addr` without copying it. Cache hits pin the cached
  /// buffer (no memcpy, no CRC work under the cache latch). Misses on a
  /// mappable device (Device::SupportsMappedReads) pin the bytes straight
  /// out of the device mapping — no copy even on the cold path — with the
  /// CRC verified once, on the blob's first pin ever (blobs are immutable,
  /// so verification is sticky across cache eviction). Misses on other
  /// devices read + verify into a heap buffer outside the latch. Either
  /// way the blob is then published for sharing (unless
  /// `hints.fill_cache` is off).
  Status ReadView(const HistAddr& addr, BlobHandle* out,
                  const BlobReadHints& hints = BlobReadHints());

  /// Drops every cache entry (pinned readers keep their blobs alive).
  /// Benchmarks use this to measure the cold read path; CRC verification
  /// state is kept — it is a property of the immutable stored bytes.
  void ClearCache();

  /// Reads the blob at `addr` into `*payload`, verifying length and CRC.
  /// Thin wrapper over ReadView: the copy happens outside the cache latch.
  Status Read(const HistAddr& addr, std::string* payload);

  /// Total bytes of payload appended (excludes framing and sector residue).
  uint64_t payload_bytes() const {
    std::lock_guard<std::mutex> lock(append_mu_);
    return payload_bytes_;
  }
  /// Total bytes consumed on the device (framing + alignment included).
  uint64_t device_bytes() const {
    std::lock_guard<std::mutex> lock(append_mu_);
    return next_offset_;
  }
  /// Number of blobs appended.
  uint64_t blob_count() const {
    std::lock_guard<std::mutex> lock(append_mu_);
    return blob_count_;
  }

  uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }

  /// Read-path counters (blob reads/bytes served, cache hit/miss). The
  /// decode counters are zero here — the tree layers them on top.
  HistReadStats hist_stats() const;

  Device* device() const { return device_; }

  /// Number of blob offsets whose first-pin CRC verification is cached
  /// (mapped read path); bounded by set_verified_capacity.
  size_t verified_size() const {
    std::lock_guard<std::mutex> lock(verified_mu_);
    return verified_.size();
  }
  /// Caps the verified-offset set. Once full, additional blobs simply
  /// re-verify on every cold pin (correctness unaffected; the memory
  /// ceiling is ~8 B * capacity instead of unbounded growth).
  void set_verified_capacity(size_t cap) {
    std::lock_guard<std::mutex> lock(verified_mu_);
    verified_capacity_ = cap;
  }

  /// Snapshots the verified-offset set (sorted) together with the store
  /// size it is valid against. The DB layer persists this as a sidecar so
  /// a reopened database serves cold mapped reads without re-paying one
  /// CRC pass per blob on its first pin.
  void SnapshotVerified(std::vector<uint64_t>* offsets,
                        uint64_t* store_size) const;

  /// Seeds the verified-offset set from a persisted snapshot. Offsets at
  /// or past the current store size cannot name a stored blob and are
  /// ignored; insertion stops at the capacity bound. Safe because blobs
  /// are immutable and the store is append-only: an offset that was
  /// verified before shutdown still holds the same bytes.
  void PreloadVerified(const std::vector<uint64_t>& offsets);

  /// Outcome of one ScrubAll pass.
  struct BlobScrubResult {
    uint64_t blobs_scanned = 0;
    uint64_t bytes_scanned = 0;
    uint64_t corruptions = 0;
  };

  /// Walks every frame from offset 0 to the store size captured at entry,
  /// re-verifying each blob's CRC against the DEVICE bytes (the verified
  /// memo and the read cache are deliberately bypassed). A mismatch evicts
  /// the offset from the memo and the cache (sticky-detected), invokes
  /// `on_corrupt(offset, status)` and keeps walking; a frame whose length
  /// field no longer parses stops the walk (the append chain is broken —
  /// everything after it is unreachable anyway). `throttle`, when set, is
  /// called with each frame's byte count so callers can rate-limit.
  Status ScrubAll(const std::function<void(uint64_t, const Status&)>&
                      on_corrupt,
                  BlobScrubResult* result,
                  const std::function<void(uint64_t)>& throttle = {});

  static constexpr uint32_t kFrameHeaderSize = 8;
  /// Default bound on the verified-offset set (~8 MiB of offsets).
  static constexpr size_t kDefaultVerifiedCapacity = size_t{1} << 20;

 private:
  uint64_t AlignUp(uint64_t offset) const;

  /// Drops `offset` from the verified memo and the read cache (corruption
  /// was detected at the device level; nothing may keep trusting it).
  void Unverify(uint64_t offset);

  /// Reads and CRC-verifies the framed blob at `addr` from the device.
  Status ReadFromDevice(const HistAddr& addr, std::string* payload);

  /// Cache-miss path: pins the blob zero-copy from the device mapping when
  /// the device supports it (CRC checked on first pin only), else reads +
  /// verifies into a heap buffer.
  Status PinFromDevice(const HistAddr& addr, const BlobReadHints& hints,
                       BlobHandle* out);

  Device* device_;
  uint32_t sector_size_;  // 0 => no alignment (erasable device)

  mutable std::mutex append_mu_;  // guards the append cursor and counters
  uint64_t next_offset_ = 0;
  uint64_t payload_bytes_ = 0;
  uint64_t blob_count_ = 0;

  // Tiny LRU read cache keyed by offset, latch-guarded. Entries are
  // pinned handles so readers pin blobs instead of copying them; eviction
  // only drops the cache's reference.
  mutable std::mutex cache_mu_;
  size_t cache_capacity_;
  std::list<uint64_t> cache_lru_;
  struct CacheEntry {
    BlobHandle handle;
    std::list<uint64_t>::iterator lru_pos;
  };
  std::unordered_map<uint64_t, CacheEntry> cache_;

  // Blob offsets whose CRC has been verified on the mapped read path.
  // Sticky by design (immutable bytes) but bounded: once the set reaches
  // verified_capacity_, later blobs re-verify on every cold pin instead
  // of growing the set ~8 bytes per distinct blob forever.
  mutable std::mutex verified_mu_;
  std::unordered_set<uint64_t> verified_;
  size_t verified_capacity_ = kDefaultVerifiedCapacity;

  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> blob_reads_{0};
  std::atomic<uint64_t> blob_bytes_read_{0};
  std::atomic<uint64_t> mapped_bytes_{0};  // miss bytes pinned via mapping
  std::atomic<uint64_t> copied_bytes_{0};  // miss bytes copied to the heap
};

}  // namespace tsb

#endif  // TSBTREE_STORAGE_APPEND_STORE_H_
