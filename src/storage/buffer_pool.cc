#include "storage/buffer_pool.h"

#include <cassert>

namespace tsb {

PageHandle& PageHandle::operator=(PageHandle&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    id_ = o.id_;
    data_ = o.data_;
    o.pool_ = nullptr;
    o.data_ = nullptr;
  }
  return *this;
}

void PageHandle::MarkDirty() {
  if (pool_ != nullptr) {
    auto it = pool_->frames_.find(id_);
    if (it != pool_->frames_.end()) it->second.dirty = true;
  }
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(id_, /*dirty=*/false);
    pool_ = nullptr;
    data_ = nullptr;
  }
}

BufferPool::BufferPool(Pager* pager, size_t capacity)
    : pager_(pager), capacity_(capacity == 0 ? 1 : capacity) {}

BufferPool::~BufferPool() { FlushAll(); }

Status BufferPool::Fetch(uint32_t id, PageHandle* handle) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    Frame& f = it->second;
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    f.pins++;
    stats_.hits++;
    *handle = PageHandle(this, id, f.data.get());
    return Status::OK();
  }
  stats_.misses++;
  TSB_RETURN_IF_ERROR(EvictIfNeeded());
  Frame f;
  f.id = id;
  f.data.reset(new char[pager_->page_size()]);
  TSB_RETURN_IF_ERROR(pager_->Read(id, f.data.get()));
  f.pins = 1;
  auto [pos, inserted] = frames_.emplace(id, std::move(f));
  assert(inserted);
  (void)inserted;
  *handle = PageHandle(this, id, pos->second.data.get());
  return Status::OK();
}

Status BufferPool::New(PageType type, PageHandle* handle) {
  uint32_t id = 0;
  TSB_RETURN_IF_ERROR(pager_->Alloc(&id));
  TSB_RETURN_IF_ERROR(EvictIfNeeded());
  Frame f;
  f.id = id;
  f.data.reset(new char[pager_->page_size()]);
  InitPage(f.data.get(), pager_->page_size(), id, type);
  f.pins = 1;
  f.dirty = true;
  auto [pos, inserted] = frames_.emplace(id, std::move(f));
  assert(inserted);
  (void)inserted;
  *handle = PageHandle(this, id, pos->second.data.get());
  return Status::OK();
}

Status BufferPool::Flush(uint32_t id) {
  auto it = frames_.find(id);
  if (it == frames_.end()) return Status::OK();
  return WriteBack(&it->second);
}

Status BufferPool::FlushAll() {
  for (auto& [id, f] : frames_) {
    TSB_RETURN_IF_ERROR(WriteBack(&f));
  }
  return Status::OK();
}

Status BufferPool::Drop(uint32_t id) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    Frame& f = it->second;
    if (f.pins > 0) {
      return Status::Busy("Drop of pinned page", std::to_string(id));
    }
    if (f.in_lru) lru_.erase(f.lru_pos);
    frames_.erase(it);
  }
  return pager_->Free(id);
}

void BufferPool::Unpin(uint32_t id, bool dirty) {
  auto it = frames_.find(id);
  if (it == frames_.end()) return;
  Frame& f = it->second;
  if (dirty) f.dirty = true;
  assert(f.pins > 0);
  if (--f.pins == 0) {
    lru_.push_front(id);
    f.lru_pos = lru_.begin();
    f.in_lru = true;
  }
}

Status BufferPool::EvictIfNeeded() {
  while (frames_.size() >= capacity_ && !lru_.empty()) {
    const uint32_t victim = lru_.back();
    lru_.pop_back();
    auto it = frames_.find(victim);
    assert(it != frames_.end() && it->second.pins == 0);
    TSB_RETURN_IF_ERROR(WriteBack(&it->second));
    frames_.erase(it);
    stats_.evictions++;
  }
  // If everything is pinned we silently over-allocate; correctness first.
  return Status::OK();
}

Status BufferPool::WriteBack(Frame* f) {
  if (!f->dirty) return Status::OK();
  TSB_RETURN_IF_ERROR(pager_->Write(f->id, f->data.get()));
  f->dirty = false;
  stats_.dirty_writebacks++;
  return Status::OK();
}

}  // namespace tsb
