#include "storage/buffer_pool.h"

#include <cassert>
#include <iterator>
#include <thread>

#include "common/logger.h"

namespace tsb {

namespace {

// Shards only kick in for pools large enough that per-shard LRU cannot
// distort eviction behaviour; small pools (unit tests, tools) keep the
// exact global-LRU semantics of a single shard.
size_t PickShardCount(size_t capacity) {
  size_t shards = 1;
  while (shards < 16 && capacity / (shards * 2) >= 32) shards *= 2;
  return shards;
}

}  // namespace

PageHandle& PageHandle::operator=(PageHandle&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    frame_ = o.frame_;
    id_ = o.id_;
    data_ = o.data_;
    mode_ = o.mode_;
    o.pool_ = nullptr;
    o.frame_ = nullptr;
    o.data_ = nullptr;
    o.mode_ = LatchMode::kNone;
  }
  return *this;
}

void PageHandle::MarkDirty() {
  if (frame_ != nullptr) {
    auto* frame = static_cast<BufferPool::Frame*>(frame_);
    frame->dirty.store(true, std::memory_order_release);
    // Every content mutation marks dirty (inside the writer's exclusive
    // latch scope on shared structures), so this one bump site versions
    // all of them.
    frame->version.fetch_add(1, std::memory_order_release);
  }
}

uint64_t PageHandle::version() const {
  return frame_ == nullptr
             ? 0
             : static_cast<BufferPool::Frame*>(frame_)->version.load(
                   std::memory_order_acquire);
}

void PageHandle::LatchShared() {
  assert(frame_ != nullptr && mode_ == LatchMode::kNone);
  static_cast<BufferPool::Frame*>(frame_)->latch.lock_shared();
  mode_ = LatchMode::kShared;
}

void PageHandle::LatchExclusive() {
  assert(frame_ != nullptr && mode_ == LatchMode::kNone);
  static_cast<BufferPool::Frame*>(frame_)->latch.lock();
  mode_ = LatchMode::kExclusive;
}

bool PageHandle::TryUpgrade() {
  assert(frame_ != nullptr && mode_ == LatchMode::kShared);
  auto* frame = static_cast<BufferPool::Frame*>(frame_);
  // std::shared_mutex has no atomic upgrade: drop shared, then try to take
  // the exclusive latch without blocking (blocking here could deadlock
  // against another upgrader). The gap means a writer may slip in, so
  // callers that positioned under the shared latch must revalidate via
  // version() after a successful upgrade.
  frame->latch.unlock_shared();
  if (frame->latch.try_lock()) {
    mode_ = LatchMode::kExclusive;
    return true;
  }
  mode_ = LatchMode::kNone;
  return false;
}

void PageHandle::Unlatch() {
  if (frame_ == nullptr) return;
  auto* frame = static_cast<BufferPool::Frame*>(frame_);
  switch (mode_) {
    case LatchMode::kShared:
      frame->latch.unlock_shared();
      break;
    case LatchMode::kExclusive:
      frame->latch.unlock();
      break;
    case LatchMode::kNone:
      break;
  }
  mode_ = LatchMode::kNone;
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    auto* frame = static_cast<BufferPool::Frame*>(frame_);
    switch (mode_) {
      case LatchMode::kShared:
        frame->latch.unlock_shared();
        break;
      case LatchMode::kExclusive:
        frame->latch.unlock();
        break;
      case LatchMode::kNone:
        break;
    }
    pool_->Unpin(frame);
    pool_ = nullptr;
    frame_ = nullptr;
    data_ = nullptr;
    mode_ = LatchMode::kNone;
  }
}

BufferPool::BufferPool(Pager* pager, size_t capacity) : pager_(pager) {
  if (capacity == 0) capacity = 1;
  num_shards_ = PickShardCount(capacity);
  shard_capacity_ = capacity / num_shards_;
  if (shard_capacity_ == 0) shard_capacity_ = 1;
  shards_.reset(new Shard[num_shards_]);
}

BufferPool::~BufferPool() {
  if (no_steal()) {
    // WAL-protected pool: the on-disk base only advances through crash-
    // atomic checkpoints. A destructor-time flush here would write
    // whatever half-state the frames hold (e.g. a degraded close with
    // poisoned commits) straight over the checkpointed base — exactly
    // what no-steal exists to prevent. Recovery replays the log instead.
    return;
  }
  Status s = FlushAll();
  if (!s.ok()) {
    TSB_LOG_ERROR("buffer pool close flush failed: %s",
                  s.ToString().c_str());
  }
}

Status BufferPool::PinFrame(uint32_t id, Frame** out) {
  Shard& shard = ShardFor(id);
  Frame* f = nullptr;
  bool load_here = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.frames.find(id);
    if (it != shard.frames.end()) {
      f = &it->second;
      if (f->in_lru) {
        // Park the node instead of erasing it: the steady-state pin/unpin
        // cycle then performs no allocation at all.
        shard.pinned_nodes.splice(shard.pinned_nodes.begin(), shard.lru,
                                  f->lru_pos);
        f->in_lru = false;
      }
      f->pins++;
      shard.stats.hits++;
    } else {
      shard.stats.misses++;
      TSB_RETURN_IF_ERROR(EvictIfNeeded(&shard));
      f = &shard.frames[id];  // constructed in place; map nodes are stable
      f->id = id;
      f->data.reset(new char[pager_->page_size()]);
      f->pins = 1;
      shard.pinned_nodes.push_front(id);  // the frame's one list node
      f->lru_pos = shard.pinned_nodes.begin();
      // The device read happens OUTSIDE the shard mutex so other pins in
      // this shard don't stall behind the I/O. The frame is published
      // pinned + marked loading; concurrent fetchers of the same page pin
      // it and wait on the flag. Deliberately NOT a latch handoff: taking
      // the page latch while holding the shard mutex would order mu ->
      // latch, the inverse of Unpin during latch-coupled descents.
      f->loading.store(true, std::memory_order_release);
      load_here = true;
    }
  }
  if (load_here) {
    Status s = pager_->Read(id, f->data.get());
    if (!s.ok()) {
      f->load_error = s;  // before the release-stores: waiters acquire
      f->load_failed.store(true, std::memory_order_release);
    }
    f->loading.store(false, std::memory_order_release);
    f->loading.notify_all();
    if (!s.ok()) {
      UnpinDiscard(f);
      return s;
    }
  } else {
    // Wait for the loader; bounded by one device read. Blocking (futex)
    // rather than a yield spin: a device read is milliseconds, and an
    // oversubscribed scheduler can starve the loader behind its spinners.
    while (f->loading.load(std::memory_order_acquire)) {
      f->loading.wait(true, std::memory_order_acquire);
    }
  }
  if (f->load_failed.load(std::memory_order_acquire)) {
    // Copy the loader's status before dropping the pin — the last unpin
    // destroys the frame.
    Status s = f->load_error;
    if (s.ok()) s = Status::IOError("page load failed", std::to_string(id));
    UnpinDiscard(f);
    return s;
  }
  *out = f;
  return Status::OK();
}

// Drops a pin on a frame whose load failed; the last pinner removes the
// frame so the bad page never enters the LRU.
void BufferPool::UnpinDiscard(Frame* frame) {
  Shard& shard = ShardFor(frame->id);
  std::lock_guard<std::mutex> lock(shard.mu);
  assert(frame->pins > 0);
  if (--frame->pins == 0) {
    shard.pinned_nodes.erase(frame->lru_pos);
    shard.frames.erase(frame->id);
  }
}

Status BufferPool::Fetch(uint32_t id, PageHandle* handle) {
  Frame* f = nullptr;
  TSB_RETURN_IF_ERROR(PinFrame(id, &f));
  *handle = PageHandle(this, f, id, f->data.get(), LatchMode::kNone);
  return Status::OK();
}

Status BufferPool::FetchShared(uint32_t id, PageHandle* handle) {
  Frame* f = nullptr;
  TSB_RETURN_IF_ERROR(PinFrame(id, &f));
  f->latch.lock_shared();  // outside the shard mutex: may block on writer
  *handle = PageHandle(this, f, id, f->data.get(), LatchMode::kShared);
  return Status::OK();
}

Status BufferPool::FetchExclusive(uint32_t id, PageHandle* handle) {
  Frame* f = nullptr;
  TSB_RETURN_IF_ERROR(PinFrame(id, &f));
  f->latch.lock();  // outside the shard mutex: may block on readers
  *handle = PageHandle(this, f, id, f->data.get(), LatchMode::kExclusive);
  return Status::OK();
}

Status BufferPool::New(PageType type, PageHandle* handle) {
  uint32_t id = 0;
  TSB_RETURN_IF_ERROR(pager_->Alloc(&id));
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  TSB_RETURN_IF_ERROR(EvictIfNeeded(&shard));
  Frame& f = shard.frames[id];
  f.id = id;
  f.data.reset(new char[pager_->page_size()]);
  InitPage(f.data.get(), pager_->page_size(), id, type);
  f.pins = 1;
  shard.pinned_nodes.push_front(id);  // the frame's one list node
  f.lru_pos = shard.pinned_nodes.begin();
  f.dirty.store(true, std::memory_order_release);
  *handle = PageHandle(this, &f, id, f.data.get(), LatchMode::kNone);
  return Status::OK();
}

Status BufferPool::Flush(uint32_t id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(id);
  if (it == shard.frames.end()) return Status::OK();
  return WriteBack(&it->second);
}

Status BufferPool::FlushAll() {
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [id, f] : shard.frames) {
      TSB_RETURN_IF_ERROR(WriteBack(&f));
    }
  }
  return Status::OK();
}

Status BufferPool::Drop(uint32_t id) {
  Shard& shard = ShardFor(id);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.frames.find(id);
    if (it != shard.frames.end()) {
      Frame& f = it->second;
      if (f.pins > 0) {
        return Status::Busy("Drop of pinned page", std::to_string(id));
      }
      if (f.in_lru) {
        shard.lru.erase(f.lru_pos);
      } else {
        shard.pinned_nodes.erase(f.lru_pos);
      }
      shard.frames.erase(it);
    }
  }
  return pager_->Free(id);
}

void BufferPool::Unpin(Frame* frame) {
  Shard& shard = ShardFor(frame->id);
  std::lock_guard<std::mutex> lock(shard.mu);
  assert(frame->pins > 0);
  if (--frame->pins == 0) {
    shard.lru.splice(shard.lru.begin(), shard.pinned_nodes, frame->lru_pos);
    frame->in_lru = true;
  }
}

Status BufferPool::EvictIfNeeded(Shard* shard) {
  while (shard->frames.size() >= shard_capacity_ && !shard->lru.empty()) {
    // Prefer the coldest CLEAN frame: it evicts without device I/O, so
    // the shard mutex (held by our caller) is never stretched across a
    // write-back on the common read path. Only when every unpinned frame
    // is dirty do we pay a write under the mutex.
    auto victim_pos = shard->lru.end();
    for (auto it = shard->lru.rbegin(); it != shard->lru.rend(); ++it) {
      Frame& f = shard->frames.at(*it);
      if (!f.dirty.load(std::memory_order_acquire)) {
        victim_pos = std::next(it).base();
        break;
      }
    }
    if (victim_pos == shard->lru.end()) {
      // Every unpinned frame is dirty. Under no-steal (WAL mode) dirty
      // pages must NOT reach the device between checkpoints — keep them
      // resident and over-allocate instead.
      if (no_steal_.load(std::memory_order_acquire)) break;
      victim_pos = std::prev(shard->lru.end());  // all dirty: LRU tail
    }
    const uint32_t victim = *victim_pos;
    auto it = shard->frames.find(victim);
    assert(it != shard->frames.end() && it->second.pins == 0);
    // Write back BEFORE unlinking the LRU node: on failure the frame must
    // stay fully consistent (in_lru with a valid lru_pos), or later
    // pin/unpin splices would operate on a dangling iterator.
    TSB_RETURN_IF_ERROR(WriteBack(&it->second));
    shard->lru.erase(victim_pos);
    it->second.in_lru = false;
    shard->frames.erase(it);
    shard->stats.evictions++;
  }
  // If everything is pinned we silently over-allocate; correctness first.
  return Status::OK();
}

Status BufferPool::WriteBack(Frame* f) {
  if (!f->dirty.load(std::memory_order_acquire)) return Status::OK();
  TSB_RETURN_IF_ERROR(pager_->Write(f->id, f->data.get()));
  f->dirty.store(false, std::memory_order_release);
  ShardFor(f->id).stats.dirty_writebacks++;
  return Status::OK();
}

void BufferPool::SnapshotDirty(
    std::vector<std::pair<uint32_t, std::string>>* out) {
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [id, f] : shard.frames) {
      if (f.dirty.load(std::memory_order_acquire)) {
        out->emplace_back(id,
                          std::string(f.data.get(), pager_->page_size()));
      }
    }
  }
}

void BufferPool::DirtyIds(std::vector<uint32_t>* out) {
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [id, f] : shard.frames) {
      if (f.dirty.load(std::memory_order_acquire)) out->push_back(id);
    }
  }
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats total;
  for (size_t i = 0; i < num_shards_; ++i) {
    const Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.stats.hits;
    total.misses += shard.stats.misses;
    total.evictions += shard.stats.evictions;
    total.dirty_writebacks += shard.stats.dirty_writebacks;
  }
  return total;
}

size_t BufferPool::resident_frames() const {
  size_t total = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    const Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.frames.size();
  }
  return total;
}

void BufferPool::ResetStats() {
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.stats = BufferPoolStats{};
  }
}

}  // namespace tsb
