// Buffer pool: LRU page cache over a Pager with pin/unpin handles.
//
// Single-threaded (the 1989 design is a single-site access method; the
// paper's concurrency story is timestamp-based read-only transactions, not
// latching). Dirty frames are written back on eviction and FlushAll.
#ifndef TSBTREE_STORAGE_BUFFER_POOL_H_
#define TSBTREE_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "common/status.h"
#include "storage/pager.h"

namespace tsb {

class BufferPool;

/// RAII pin on a cached page. While a handle is live the frame cannot be
/// evicted. Movable, not copyable.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& o) noexcept { *this = std::move(o); }
  PageHandle& operator=(PageHandle&& o) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  uint32_t id() const { return id_; }
  char* data() { return data_; }
  const char* data() const { return data_; }

  /// Marks the frame dirty so eviction/flush writes it back.
  void MarkDirty();

  /// Drops the pin early.
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, uint32_t id, char* data)
      : pool_(pool), id_(id), data_(data) {}

  BufferPool* pool_ = nullptr;
  uint32_t id_ = 0;
  char* data_ = nullptr;
};

/// Statistics for cache behaviour (benchmarks report these).
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
};

/// LRU buffer pool. `capacity` is the number of resident frames; when all
/// frames are pinned the pool temporarily over-allocates rather than fail.
class BufferPool {
 public:
  BufferPool(Pager* pager, size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches page `id` through the cache (reads on miss) and pins it.
  Status Fetch(uint32_t id, PageHandle* handle);

  /// Allocates a fresh page, initializes its header to `type`, pins it and
  /// marks it dirty.
  Status New(PageType type, PageHandle* handle);

  /// Writes back a dirty frame now (keeps it cached).
  Status Flush(uint32_t id);

  /// Writes back every dirty frame.
  Status FlushAll();

  /// Drops page `id` from the cache (must be unpinned) and frees it in the
  /// pager. Used when a current node is erased (e.g. abort cleanup).
  Status Drop(uint32_t id);

  Pager* pager() const { return pager_; }
  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats{}; }
  size_t resident_frames() const { return frames_.size(); }

 private:
  friend class PageHandle;

  struct Frame {
    uint32_t id = 0;
    std::unique_ptr<char[]> data;
    int pins = 0;
    bool dirty = false;
    std::list<uint32_t>::iterator lru_pos;  // valid iff pins == 0
    bool in_lru = false;
  };

  void Unpin(uint32_t id, bool dirty);
  Status EvictIfNeeded();
  Status WriteBack(Frame* f);

  Pager* pager_;
  size_t capacity_;
  std::unordered_map<uint32_t, Frame> frames_;
  std::list<uint32_t> lru_;  // front = most recent
  BufferPoolStats stats_;
};

}  // namespace tsb

#endif  // TSBTREE_STORAGE_BUFFER_POOL_H_
