// Buffer pool: shard-partitioned LRU page cache over a Pager with pin/unpin
// handles and per-frame reader/writer latches.
//
// Thread model (paper section 4.1: one updater, many lock-free timestamped
// readers):
//  - The hash table and LRU lists are partitioned into shards, each guarded
//    by its own mutex; lookups and pin-count changes hold only the shard
//    mutex.
//  - Every frame carries a reader/writer latch. FetchShared pins the frame
//    and acquires the latch shared (concurrent readers proceed in
//    parallel); FetchExclusive acquires it exclusively (an updater
//    mutating the page — with TsbOptions::concurrent_writers several
//    updaters hold exclusive latches on DIFFERENT pages at once). Latches
//    are acquired AFTER pinning and outside the shard mutex, so a blocked
//    latch never stalls the shard.
//  - Fetch (no latch) remains for strictly single-threaded users (the B+
//    and WOBT comparison trees, quiesced maintenance walks).
//
// Dirty frames are written back on eviction and FlushAll. When every frame
// of a shard is pinned the pool temporarily over-allocates rather than
// fail.
#ifndef TSBTREE_STORAGE_BUFFER_POOL_H_
#define TSBTREE_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/pager.h"

namespace tsb {

class BufferPool;

/// Latch held by a PageHandle on its frame.
enum class LatchMode : uint8_t { kNone = 0, kShared = 1, kExclusive = 2 };

/// RAII pin (and optional latch) on a cached page. While a handle is live
/// the frame cannot be evicted; a latched handle additionally excludes (or
/// shares with) other latch holders. Movable, not copyable.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& o) noexcept { *this = std::move(o); }
  PageHandle& operator=(PageHandle&& o) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  uint32_t id() const { return id_; }
  char* data() { return data_; }
  const char* data() const { return data_; }
  LatchMode latch_mode() const { return mode_; }

  /// Marks the frame dirty so eviction/flush writes it back, and bumps the
  /// frame's mutation counter (see version()).
  void MarkDirty();

  /// The frame's mutation counter: bumped by every MarkDirty, i.e. by
  /// every content mutation (the writer marks inside its exclusive latch
  /// scope). A reader that sampled the counter under a shared latch can
  /// later revalidate a pinned-but-unlatched view: an unchanged counter
  /// proves nothing mutated the bytes since the sample. Cursors use this
  /// to keep zero-copy frames across user-paced iteration without holding
  /// any latch.
  uint64_t version() const;

  /// Re-acquires the frame latch shared on an already-pinned, unlatched
  /// handle (pins survive latch cycling; eviction stays blocked).
  void LatchShared();

  /// Re-acquires the frame latch exclusively on an already-pinned,
  /// unlatched handle (blocks until all shared holders release).
  void LatchExclusive();

  /// Upgrades a shared latch to exclusive WITHOUT blocking. Not atomic:
  /// the shared latch is dropped first, so on success a concurrent writer
  /// may have mutated the page in the gap — revalidate with version().
  /// On failure the handle is left UNLATCHED (still pinned); the caller
  /// must re-latch and re-position.
  bool TryUpgrade();

  /// Drops the latch but keeps the pin, so the handle can relatch later.
  void Unlatch();

  /// Drops the latch (if any) and the pin early.
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, void* frame, uint32_t id, char* data,
             LatchMode mode)
      : pool_(pool), frame_(frame), id_(id), data_(data), mode_(mode) {}

  BufferPool* pool_ = nullptr;
  void* frame_ = nullptr;  // Frame*, opaque to keep Frame private
  uint32_t id_ = 0;
  char* data_ = nullptr;
  LatchMode mode_ = LatchMode::kNone;
};

/// Statistics for cache behaviour (benchmarks report these; the tree and
/// DB surface them next to HistReadStats so the magnetic axis of a mixed
/// workload is diagnosable alongside the historical one).
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;

  /// Frame-cache hits per lookup; 1.0 when the pool was never consulted.
  double hit_ratio() const {
    const uint64_t lookups = hits + misses;
    return lookups == 0 ? 1.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }

  void Add(const BufferPoolStats& o) {
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    dirty_writebacks += o.dirty_writebacks;
  }
};

/// Sharded LRU buffer pool. `capacity` is the total number of resident
/// frames across all shards.
class BufferPool {
 public:
  BufferPool(Pager* pager, size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches page `id` through the cache (reads on miss) and pins it
  /// without latching — single-threaded callers only.
  Status Fetch(uint32_t id, PageHandle* handle);

  /// Fetches and pins page `id`, then acquires its frame latch shared.
  /// Concurrent FetchShared calls on the same page proceed in parallel.
  Status FetchShared(uint32_t id, PageHandle* handle);

  /// Fetches and pins page `id`, then acquires its frame latch exclusively
  /// (blocks until all shared holders release).
  Status FetchExclusive(uint32_t id, PageHandle* handle);

  /// Allocates a fresh page, initializes its header to `type`, pins it and
  /// marks it dirty. The page is invisible to other threads until the
  /// caller links it into a shared structure, so no latch is taken.
  Status New(PageType type, PageHandle* handle);

  /// Writes back a dirty frame now (keeps it cached).
  Status Flush(uint32_t id);

  /// Writes back every dirty frame. Must not race with page mutators.
  Status FlushAll();

  /// Drops page `id` from the cache (must be unpinned) and frees it in the
  /// pager. Used when a current node is erased (e.g. abort cleanup).
  Status Drop(uint32_t id);

  Pager* pager() const { return pager_; }

  /// No-steal mode: eviction never writes a dirty frame back to the
  /// device (the pool over-allocates instead of stealing). WAL-protected
  /// databases run in this mode so the on-disk page graph only changes at
  /// checkpoints — the structurally consistent base logical WAL replay
  /// requires. FlushAll / Flush still write back (checkpoints use them
  /// after journaling).
  void set_no_steal(bool on) {
    no_steal_.store(on, std::memory_order_release);
  }
  bool no_steal() const { return no_steal_.load(std::memory_order_acquire); }

  /// Copies every dirty frame's id + page image into `out` (appended).
  /// Caller must have quiesced all mutators (checkpoint holds the tree's
  /// exclusive writer lock); images are raw frame bytes, unsealed.
  void SnapshotDirty(std::vector<std::pair<uint32_t, std::string>>* out);

  /// Ids of the currently dirty frames, no image copies (exact only when
  /// quiesced). Device-side verification uses this to skip pages whose
  /// on-disk copy is legitimately behind the pool (no-steal).
  void DirtyIds(std::vector<uint32_t>* out);

  /// Aggregated snapshot across shards (exact only when quiesced).
  BufferPoolStats stats() const;
  void ResetStats();
  size_t resident_frames() const;
  size_t shard_count() const { return num_shards_; }

 private:
  friend class PageHandle;

  struct Frame {
    uint32_t id = 0;
    std::unique_ptr<char[]> data;
    int pins = 0;                    // guarded by the shard mutex
    std::atomic<bool> dirty{false};
    // Mutation counter (see PageHandle::version). Monotone over the
    // frame's residency; a frame cannot be evicted and reloaded while any
    // pin — hence any recorded baseline — exists, so comparisons never
    // cross a reload.
    std::atomic<uint64_t> version{0};
    std::atomic<bool> loading{false};  // device read in flight
    std::atomic<bool> load_failed{false};
    // The loader's failing Status, written before the `loading` false
    // release-store; waiters read it after their acquire on `loading`, so
    // Corruption (e.g. a checksum mismatch) propagates to every fetcher
    // instead of a generic IOError.
    Status load_error;
    std::shared_mutex latch;         // page-content reader/writer latch
    // List node carrying this frame's id; lives in `lru` while unpinned
    // (in_lru) and is parked in `pinned_nodes` while pinned, so pin/unpin
    // splice the node instead of freeing and reallocating it.
    std::list<uint32_t>::iterator lru_pos;
    bool in_lru = false;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint32_t, Frame> frames;
    std::list<uint32_t> lru;  // front = most recent
    std::list<uint32_t> pinned_nodes;  // parked nodes of pinned frames
    BufferPoolStats stats;
  };

  Shard& ShardFor(uint32_t id) { return shards_[id % num_shards_]; }

  /// Looks up or loads `id` in its shard and pins it. Returns the frame.
  /// Miss-path device reads run outside the shard mutex (frames are
  /// published pinned + `loading`; concurrent fetchers block on the flag
  /// via atomic wait, never holding the shard — and the page latch is
  /// never touched while the shard mutex is held).
  Status PinFrame(uint32_t id, Frame** out);
  void Unpin(Frame* frame);
  void UnpinDiscard(Frame* frame);
  Status EvictIfNeeded(Shard* shard);
  Status WriteBack(Frame* f);

  Pager* pager_;
  size_t shard_capacity_;
  size_t num_shards_;
  std::atomic<bool> no_steal_{false};
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace tsb

#endif  // TSBTREE_STORAGE_BUFFER_POOL_H_
