#include "storage/device.h"

namespace tsb {

const char* DeviceKindName(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kMagnetic:
      return "magnetic";
    case DeviceKind::kOpticalWorm:
      return "optical-worm";
    case DeviceKind::kOpticalErasable:
      return "optical-erasable";
  }
  return "?";
}

Status Device::ReadMapped(uint64_t offset, size_t n, MappedRead* out,
                          AccessPattern pattern) {
  (void)offset;
  (void)n;
  (void)out;
  (void)pattern;
  return Status::NotSupported("ReadMapped", DeviceKindName(kind_));
}

void Device::AccountAccess(uint64_t offset, size_t n) {
  if (!mounted_) {
    mounted_ = true;
    stats_.mounts++;
    stats_.simulated_ms += params_.mount_ms;
  }
  if (offset != last_end_) {
    stats_.seeks++;
    stats_.simulated_ms += params_.avg_seek_ms;
  }
  last_end_ = offset + n;
  // transfer_mb_per_s MB/s  ==  params * 1048.576 bytes/ms
  stats_.simulated_ms +=
      static_cast<double>(n) / (params_.transfer_mb_per_s * 1048.576);
}

void Device::AccountRead(uint64_t offset, size_t n) {
  std::lock_guard<std::mutex> lock(account_mu_);
  AccountAccess(offset, n);
  stats_.reads++;
  stats_.bytes_read += n;
}

void Device::AccountWrite(uint64_t offset, size_t n) {
  std::lock_guard<std::mutex> lock(account_mu_);
  AccountAccess(offset, n);
  stats_.writes++;
  stats_.bytes_written += n;
}

}  // namespace tsb
