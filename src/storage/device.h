// Device: the simulated storage hardware interface.
//
// The paper requires only that both databases live on *random-access*
// devices, the current one erasable (section 1). We model three kinds:
//   - kMagnetic        : erasable, fast (the current database)
//   - kOpticalWorm     : write-once sectors, slow seeks (historical)
//   - kOpticalErasable : erasable but slow (alternative historical medium)
// All devices count I/O and simulate elapsed time via CostParams.
#ifndef TSBTREE_STORAGE_DEVICE_H_
#define TSBTREE_STORAGE_DEVICE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "storage/io_stats.h"

namespace tsb {

enum class DeviceKind : uint8_t {
  kMagnetic = 0,
  kOpticalWorm = 1,
  kOpticalErasable = 2,
};

const char* DeviceKindName(DeviceKind kind);

/// A pinned, zero-copy view of device bytes returned by ReadMapped. `pin`
/// refcounts the underlying mapping: `data` stays valid until every copy
/// of the pin is released, even if the device grows and remaps afterwards.
struct MappedRead {
  Slice data;
  std::shared_ptr<const void> pin;
};

/// How the caller is about to touch a mapped range — devices turn this
/// into paging advice (madvise). Point pins default to kRandom; range
/// scans that will walk the range forward pass kSequential so the kernel
/// reads ahead instead of faulting one page at a time.
enum class AccessPattern : uint8_t {
  kRandom = 0,
  kSequential = 1,
};

/// Abstract random-access device with I/O accounting.
class Device {
 public:
  Device(DeviceKind kind, CostParams params)
      : kind_(kind), params_(params) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// Reads exactly `n` bytes at `offset` into `scratch`. Fails with IOError
  /// if the range extends past Size().
  virtual Status Read(uint64_t offset, size_t n, char* scratch) = 0;

  /// Writes `data` at `offset`. Erasable devices may overwrite; write-once
  /// devices fail with WriteOnceViolation when a burned sector is touched.
  virtual Status Write(uint64_t offset, const Slice& data) = 0;

  /// True when ReadMapped is available (memory-mappable devices).
  virtual bool SupportsMappedReads() const { return false; }

  /// Pins a zero-copy view of [offset, offset+n). The bytes are served
  /// straight from a page-aligned mapping — no copy into caller memory.
  /// `pattern` is advisory (paging hints only). Devices that cannot map
  /// (or whose buffers may move) keep the default NotSupported and callers
  /// fall back to Read.
  virtual Status ReadMapped(uint64_t offset, size_t n, MappedRead* out,
                            AccessPattern pattern = AccessPattern::kRandom);

  /// Sector granularity of a write-once medium (0 = erasable device,
  /// byte-addressable overwrites allowed). Append stores align their
  /// frames to this grid.
  virtual uint32_t write_once_sector_size() const { return 0; }

  /// High-water mark: one past the last written byte.
  virtual uint64_t Size() const = 0;

  /// Forgets all contents (erasable devices only).
  virtual Status Truncate(uint64_t size) {
    (void)size;
    return Status::NotSupported("Truncate", DeviceKindName(kind_));
  }

  /// Flushes to durable backing, if any.
  virtual Status Sync() { return Status::OK(); }

  DeviceKind kind() const { return kind_; }
  const CostParams& cost_params() const { return params_; }

  /// Racy under concurrent I/O; read quiesced (or after joining workers)
  /// for exact numbers.
  const IoStats& stats() const { return stats_; }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(account_mu_);
    stats_.Reset();
  }

 protected:
  /// Subclasses call these from Read/Write to maintain counters and the
  /// simulated clock. An access is a "seek" when it does not begin where
  /// the previous access ended. Thread-safe (internal accounting mutex).
  void AccountRead(uint64_t offset, size_t n);
  void AccountWrite(uint64_t offset, size_t n);

 private:
  void AccountAccess(uint64_t offset, size_t n);

  DeviceKind kind_;
  CostParams params_;
  mutable std::mutex account_mu_;  // guards stats_, last_end_, mounted_
  IoStats stats_;
  uint64_t last_end_ = UINT64_MAX;  // offset following the previous access
  bool mounted_ = false;
};

}  // namespace tsb

#endif  // TSBTREE_STORAGE_DEVICE_H_
