#include "storage/fault_device.h"

#include <algorithm>
#include <cstring>

#include "common/logger.h"

namespace tsb {

void FaultPlan::Arm(const Fault& fault) {
  std::lock_guard<std::mutex> lock(mu_);
  ArmedFault armed;
  armed.fault = fault;
  armed.baseline = ops_[static_cast<int>(fault.op)];
  armed_.push_back(armed);
}

void FaultPlan::FailNth(FaultOp op, uint64_t nth, FaultKind kind,
                        bool sticky) {
  Fault f;
  f.op = op;
  f.nth = nth;
  f.kind = kind;
  f.sticky = sticky;
  Arm(f);
}

void FaultPlan::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.clear();
}

bool FaultPlan::Check(FaultOp op, Fault* fired) {
  std::lock_guard<std::mutex> lock(mu_);
  const int idx = static_cast<int>(op);
  const uint64_t count = ++ops_[idx];
  for (auto it = armed_.begin(); it != armed_.end(); ++it) {
    if (it->fault.op != op) continue;
    const uint64_t since_armed = count - it->baseline;
    const bool trips = it->fault.sticky ? since_armed >= it->fault.nth
                                        : since_armed == it->fault.nth;
    if (!trips) continue;
    fired_[idx]++;
    *fired = it->fault;
    if (!it->fault.sticky) armed_.erase(it);
    return true;
  }
  return false;
}

Status FaultPlan::ToStatus(const Fault& fault, const std::string& what) {
  switch (fault.kind) {
    case FaultKind::kENOSPC:
      return Status::OutOfSpace("injected ENOSPC", what);
    case FaultKind::kShortWrite:
      return Status::IOError("injected short write", what);
    case FaultKind::kTornSync:
      return Status::IOError("injected torn sync", what);
    case FaultKind::kBitFlip:
    case FaultKind::kMisdirectedWrite:
    case FaultKind::kLostWrite:
      // Silent kinds ack the op; they never surface as a Status. Reaching
      // here means a consumer misrouted one — fail loudly in its place.
      return Status::IOError("silent fault kind misrouted to ToStatus", what);
    case FaultKind::kEIO:
      break;
  }
  return Status::IOError("injected EIO", what);
}

uint64_t FaultPlan::ops(FaultOp op) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_[static_cast<int>(op)];
}

uint64_t FaultPlan::fired(FaultOp op) const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_[static_cast<int>(op)];
}

bool FaultPlan::armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !armed_.empty();
}

FaultInjectingDevice::FaultInjectingDevice(Device* base,
                                           std::shared_ptr<FaultPlan> plan)
    : Device(base->kind(), base->cost_params()),
      base_(base),
      plan_(std::move(plan)) {}

FaultInjectingDevice::FaultInjectingDevice(std::unique_ptr<Device> base,
                                           std::shared_ptr<FaultPlan> plan)
    : Device(base->kind(), base->cost_params()),
      base_(base.get()),
      owned_base_(std::move(base)),
      plan_(std::move(plan)) {}

Status FaultInjectingDevice::Read(uint64_t offset, size_t n, char* scratch) {
  Fault fault;
  if (plan_->Check(FaultOp::kRead, &fault)) {
    return FaultPlan::ToStatus(fault, "read @" + std::to_string(offset));
  }
  return base_->Read(offset, n, scratch);
}

Status FaultInjectingDevice::Write(uint64_t offset, const Slice& data) {
  Fault fault;
  if (plan_->Check(FaultOp::kWrite, &fault)) {
    if (fault.kind == FaultKind::kShortWrite && fault.short_bytes > 0 &&
        fault.short_bytes < data.size()) {
      // The prefix really lands on the medium — exactly what a torn page
      // write leaves behind for recovery to detect.
      (void)base_->Write(offset, Slice(data.data(), fault.short_bytes));
    }
    // The silent kinds model firmware/medium failures the kernel never
    // reports: the op "succeeds" and only checksums can tell the truth.
    if (fault.kind == FaultKind::kLostWrite) {
      return Status::OK();  // acked, never written
    }
    if (fault.kind == FaultKind::kMisdirectedWrite) {
      uint64_t where = fault.misdirect_offset;
      if (where == UINT64_MAX) {
        where = offset >= data.size() ? offset - data.size()
                                      : offset + data.size();
      }
      return base_->Write(where, data);  // full payload, wrong address
    }
    if (fault.kind == FaultKind::kBitFlip) {
      std::string flipped(data.data(), data.size());
      if (!flipped.empty()) flipped[flipped.size() / 2] ^= 0x10;
      return base_->Write(offset, Slice(flipped));
    }
    return FaultPlan::ToStatus(fault, "write @" + std::to_string(offset));
  }
  Status s = base_->Write(offset, data);
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(last_write_mu_);
    last_write_offset_ = offset;
    last_write_size_ = data.size();
  }
  return s;
}

Status FaultInjectingDevice::ReadMapped(uint64_t offset, size_t n,
                                        MappedRead* out,
                                        AccessPattern pattern) {
  Fault fault;
  if (plan_->Check(FaultOp::kRead, &fault)) {
    return FaultPlan::ToStatus(fault,
                               "mapped read @" + std::to_string(offset));
  }
  return base_->ReadMapped(offset, n, out, pattern);
}

Status FaultInjectingDevice::Truncate(uint64_t size) {
  Fault fault;
  if (plan_->Check(FaultOp::kTruncate, &fault)) {
    return FaultPlan::ToStatus(fault, "truncate to " + std::to_string(size));
  }
  return base_->Truncate(size);
}

Status FaultInjectingDevice::Sync() {
  Fault fault;
  if (plan_->Check(FaultOp::kSync, &fault)) {
    if (fault.kind == FaultKind::kTornSync) {
      // A dying drive acking writes into volatile cache: the tail of the
      // last write never reached the platter. Garble it so recovery has
      // something real to detect (checksums / checkpoint journal).
      uint64_t offset = 0;
      size_t size = 0;
      {
        std::lock_guard<std::mutex> lock(last_write_mu_);
        offset = last_write_offset_;
        size = last_write_size_;
      }
      if (size > 0) {
        const size_t torn = std::min<size_t>(size, 64);
        std::string garbage(torn, '\xa5');
        (void)base_->Write(offset + size - torn, Slice(garbage));
      }
    }
    return FaultPlan::ToStatus(fault, "sync");
  }
  return base_->Sync();
}

}  // namespace tsb
