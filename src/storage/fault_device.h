// Fault injection for the storage stack: a decorator over any Device
// (including the WORM file/mem devices — write_once_sector_size and the
// write-once enforcement of the wrapped device pass straight through)
// that fails operations according to a programmable FaultPlan.
//
// A plan arms faults of the form "fail the Nth read/write/sync/append
// with EIO or ENOSPC", optionally sticky (the Nth and every later
// matching op fail until the plan is cleared — a dead disk) vs one-shot
// (a transient glitch), plus two nastier shapes real disks exhibit:
//   - short write: the first `short_bytes` of the payload reach the
//     medium, then the op errors (torn frame / torn page on the device);
//   - torn sector on sync: the sync garbles the tail of the most recent
//     write before failing (volatile cache lost on a dying drive).
//
// The same FaultPlan object is shared between the test and the device
// (and the WAL — see Wal::Open's fault_plan parameter, which consults
// kAppend/kSync), so tests can re-arm, heal (Clear) and assert exactly
// which op tripped via the per-op counters.
#ifndef TSBTREE_STORAGE_FAULT_DEVICE_H_
#define TSBTREE_STORAGE_FAULT_DEVICE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/device.h"

namespace tsb {

/// Operation classes a fault can target. kAppend is consulted by log-
/// structured writers (the WAL's frame append); plain devices map their
/// entire write surface to kWrite.
enum class FaultOp : uint8_t {
  kRead = 0,
  kWrite = 1,
  kSync = 2,
  kTruncate = 3,
  kAppend = 4,
};
inline constexpr int kNumFaultOps = 5;

enum class FaultKind : uint8_t {
  kEIO = 0,        ///< Status::IOError
  kENOSPC = 1,     ///< Status::OutOfSpace
  kShortWrite = 2, ///< partial payload lands, then Status::IOError
  kTornSync = 3,   ///< sync garbles the last write's tail, then kEIO
  // Silent corruption kinds: the operation REPORTS SUCCESS (returns OK),
  // exactly like the real failure mode — only checksums can catch these.
  kBitFlip = 4,          ///< write lands with one bit flipped mid-payload
  kMisdirectedWrite = 5, ///< payload lands at the wrong offset
  kLostWrite = 6,        ///< write is dropped entirely, still acked
};

/// True for the kinds that ack the op and corrupt silently (they never map
/// to a Status — ToStatus on them is a programming error).
inline bool IsSilentFault(FaultKind kind) {
  return kind == FaultKind::kBitFlip || kind == FaultKind::kMisdirectedWrite ||
         kind == FaultKind::kLostWrite;
}

/// One armed fault: trip on the `nth` (1-based) operation of class `op`
/// counted from when the fault was armed; sticky faults keep tripping on
/// every later matching op until the plan is cleared.
struct Fault {
  FaultOp op = FaultOp::kWrite;
  FaultKind kind = FaultKind::kEIO;
  uint64_t nth = 1;
  bool sticky = false;
  uint64_t short_bytes = 0;  ///< kShortWrite: payload prefix that lands
  /// kMisdirectedWrite: absolute offset the payload lands at instead.
  /// UINT64_MAX (default) = the neighbouring slot (offset - size, or
  /// offset + size when the write starts at 0).
  uint64_t misdirect_offset = UINT64_MAX;
};

/// Thread-safe fault schedule + per-op counters. Shared (by shared_ptr)
/// between the consumer (FaultInjectingDevice / Wal) and the test that
/// arms and heals it.
class FaultPlan {
 public:
  /// Arms `fault`; its op counter baseline is the CURRENT count, so
  /// `nth` means "the nth matching op from now".
  void Arm(const Fault& fault);

  /// Convenience: fail the nth op of `op` with `kind`.
  void FailNth(FaultOp op, uint64_t nth, FaultKind kind = FaultKind::kEIO,
               bool sticky = false);

  /// Heals the disk: disarms every fault (counters keep counting).
  void Clear();

  /// Consumer side: counts one operation of class `op` and reports
  /// whether an armed fault trips on it (one-shot faults disarm here).
  bool Check(FaultOp op, Fault* fired);

  /// Builds the Status a fired fault maps to.
  static Status ToStatus(const Fault& fault, const std::string& what);

  /// Operations of class `op` observed since construction.
  uint64_t ops(FaultOp op) const;
  /// Faults fired on class `op` since construction.
  uint64_t fired(FaultOp op) const;
  /// True while any fault is armed.
  bool armed() const;

 private:
  struct ArmedFault {
    Fault fault;
    uint64_t baseline = 0;  ///< op count when armed
  };

  mutable std::mutex mu_;
  uint64_t ops_[kNumFaultOps] = {};
  uint64_t fired_[kNumFaultOps] = {};
  std::vector<ArmedFault> armed_;
};

/// Decorator that injects the plan's faults in front of `base`. Owns
/// nothing unless constructed with the owning overload; accounting stays
/// with the base device (the decorator never double-counts I/O).
class FaultInjectingDevice : public Device {
 public:
  FaultInjectingDevice(Device* base, std::shared_ptr<FaultPlan> plan);
  /// Owning overload (path-based DbOptions::wrap_device hands the DB's
  /// device through here).
  FaultInjectingDevice(std::unique_ptr<Device> base,
                       std::shared_ptr<FaultPlan> plan);

  Status Read(uint64_t offset, size_t n, char* scratch) override;
  Status Write(uint64_t offset, const Slice& data) override;
  bool SupportsMappedReads() const override {
    return base_->SupportsMappedReads();
  }
  Status ReadMapped(uint64_t offset, size_t n, MappedRead* out,
                    AccessPattern pattern) override;
  uint32_t write_once_sector_size() const override {
    return base_->write_once_sector_size();
  }
  uint64_t Size() const override { return base_->Size(); }
  Status Truncate(uint64_t size) override;
  Status Sync() override;

  Device* base() { return base_; }
  const FaultPlan& plan() const { return *plan_; }

 private:
  Device* base_;
  std::unique_ptr<Device> owned_base_;
  std::shared_ptr<FaultPlan> plan_;

  // Most recent successful write, so kTornSync knows which range to
  // garble. Guarded by last_write_mu_.
  std::mutex last_write_mu_;
  uint64_t last_write_offset_ = 0;
  size_t last_write_size_ = 0;
};

}  // namespace tsb

#endif  // TSBTREE_STORAGE_FAULT_DEVICE_H_
