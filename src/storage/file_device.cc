#include "storage/file_device.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tsb {

FileDevice::Mapping::~Mapping() {
  if (base != nullptr) ::munmap(base, len);
}

FileDevice::~FileDevice() {
  if (fd_ >= 0) ::close(fd_);
  // map_ (and any pinned Mapping) outlives the fd; a file mapping stays
  // valid after close(2).
}

Status FileDevice::OpenFd(const std::string& path, int* fd, uint64_t* size) {
  *fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (*fd < 0) {
    return Status::IOError("open " + path, strerror(errno));
  }
  struct stat st;
  if (::fstat(*fd, &st) != 0) {
    ::close(*fd);
    *fd = -1;
    return Status::IOError("fstat " + path, strerror(errno));
  }
  *size = static_cast<uint64_t>(st.st_size);
  return Status::OK();
}

Status FileDevice::Open(const std::string& path, FileDevice** out,
                        DeviceKind kind, CostParams params,
                        bool enable_mmap) {
  int fd = -1;
  uint64_t size = 0;
  TSB_RETURN_IF_ERROR(OpenFd(path, &fd, &size));
  *out = new FileDevice(fd, size, kind, params, enable_mmap);
  return Status::OK();
}

Status FileDevice::Read(uint64_t offset, size_t n, char* scratch) {
  if (offset + n > size_.load(std::memory_order_acquire)) {
    return Status::IOError("FileDevice read past end");
  }
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pread(fd_, scratch + done, n - done,
                        static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread", strerror(errno));
    }
    if (r == 0) return Status::IOError("pread short read");
    done += static_cast<size_t>(r);
  }
  AccountRead(offset, n);
  return Status::OK();
}

Status FileDevice::Write(uint64_t offset, const Slice& data) {
  size_t done = 0;
  while (done < data.size()) {
    ssize_t w = ::pwrite(fd_, data.data() + done, data.size() - done,
                         static_cast<off_t>(offset + done));
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == ENOSPC) {
        // Distinguished so the error handler classifies it transient:
        // freeing space + Resume() heals, unlike a generic EIO surface.
        return Status::OutOfSpace("pwrite", strerror(errno));
      }
      return Status::IOError("pwrite", strerror(errno));
    }
    if (w == 0) {
      // pwrite returning 0 for a nonzero count: full device edge case;
      // retrying would spin forever.
      return Status::OutOfSpace("pwrite wrote 0 bytes");
    }
    done += static_cast<size_t>(w);
  }
  const uint64_t end = offset + data.size();
  uint64_t cur = size_.load(std::memory_order_relaxed);
  while (end > cur &&
         !size_.compare_exchange_weak(cur, end, std::memory_order_release)) {
  }
  AccountWrite(offset, data.size());
  return Status::OK();
}

Status FileDevice::ReadMapped(uint64_t offset, size_t n, MappedRead* out,
                              AccessPattern pattern) {
  if (!enable_mmap_) {
    return Status::NotSupported("ReadMapped", "mmap disabled");
  }
  const uint64_t file_size = size_.load(std::memory_order_acquire);
  // Overflow-safe bounds check: a corrupt address with offset near
  // UINT64_MAX must fail cleanly here, not wrap past the check and fault
  // on a wild mapped pointer.
  if (n > file_size || offset > file_size - n) {
    return Status::IOError("FileDevice mapped read past end");
  }
  std::shared_ptr<const Mapping> map;
  {
    std::lock_guard<std::mutex> lock(map_mu_);
    if (map_ == nullptr || offset + n > map_->len) {
      // Remap the whole file, rounded up to the page grid. Pins on the old
      // mapping keep it alive through their shared_ptr; nothing existing
      // is invalidated. MAP_SHARED keeps the view coherent with pwrite
      // appends landing inside the mapped length.
      const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
      const size_t len = ((file_size + page - 1) / page) * page;
      void* base = ::mmap(nullptr, len, PROT_READ, MAP_SHARED, fd_, 0);
      if (base == MAP_FAILED) {
        return Status::IOError("mmap", strerror(errno));
      }
      // Default the whole mapping to random access: point pins touch
      // exactly the pages they need, and readahead for them is waste.
      // Sequential readers re-advise their own range below.
      ::madvise(base, len, MADV_RANDOM);
      auto m = std::make_shared<Mapping>();
      m->base = static_cast<char*>(base);
      m->len = len;
      map_ = std::move(m);
    }
    map = map_;
  }
  if (pattern == AccessPattern::kSequential) {
    // Prefetch the scanned range with MADV_WILLNEED rather than flipping
    // it to MADV_SEQUENTIAL: sequential advice is a sticky per-range
    // regime on this long-lived shared mapping and would keep penalizing
    // later point reads of the same pages (aggressive readahead + eager
    // reclaim behind the fault point) long after the scan ended.
    // WILLNEED triggers the readahead a scan wants, changes no steady
    // state, and needs no undo. Page-align; best-effort, errors ignored.
    const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
    const uint64_t lo = (offset / page) * page;
    const uint64_t hi = ((offset + n + page - 1) / page) * page;
    const uint64_t end = hi < map->len ? hi : map->len;
    if (end > lo) {
      ::madvise(map->base + lo, static_cast<size_t>(end - lo),
                MADV_WILLNEED);
    }
  }
  out->data = Slice(map->base + offset, n);
  const void* start = map->base + offset;
  out->pin = std::shared_ptr<const void>(std::move(map), start);
  AccountRead(offset, n);
  return Status::OK();
}

Status FileDevice::Truncate(uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Status::IOError("ftruncate", strerror(errno));
  }
  size_.store(size, std::memory_order_release);
  // Mapped bytes beyond the new end would fault on access; drop the
  // mapping so later ReadMapped calls rebuild it at the new length.
  std::lock_guard<std::mutex> lock(map_mu_);
  map_.reset();
  return Status::OK();
}

Status FileDevice::Sync() {
  if (::fsync(fd_) != 0) {
    if (errno == ENOSPC) {
      return Status::OutOfSpace("fsync", strerror(errno));
    }
    return Status::IOError("fsync", strerror(errno));
  }
  return Status::OK();
}

}  // namespace tsb
