#include "storage/file_device.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tsb {

FileDevice::~FileDevice() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileDevice::Open(const std::string& path, FileDevice** out,
                        DeviceKind kind, CostParams params) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path, strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat " + path, strerror(errno));
  }
  *out = new FileDevice(fd, static_cast<uint64_t>(st.st_size), kind, params);
  return Status::OK();
}

Status FileDevice::Read(uint64_t offset, size_t n, char* scratch) {
  if (offset + n > size_.load(std::memory_order_acquire)) {
    return Status::IOError("FileDevice read past end");
  }
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pread(fd_, scratch + done, n - done,
                        static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread", strerror(errno));
    }
    if (r == 0) return Status::IOError("pread short read");
    done += static_cast<size_t>(r);
  }
  AccountRead(offset, n);
  return Status::OK();
}

Status FileDevice::Write(uint64_t offset, const Slice& data) {
  size_t done = 0;
  while (done < data.size()) {
    ssize_t w = ::pwrite(fd_, data.data() + done, data.size() - done,
                         static_cast<off_t>(offset + done));
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pwrite", strerror(errno));
    }
    done += static_cast<size_t>(w);
  }
  const uint64_t end = offset + data.size();
  uint64_t cur = size_.load(std::memory_order_relaxed);
  while (end > cur &&
         !size_.compare_exchange_weak(cur, end, std::memory_order_release)) {
  }
  AccountWrite(offset, data.size());
  return Status::OK();
}

Status FileDevice::Truncate(uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Status::IOError("ftruncate", strerror(errno));
  }
  size_.store(size, std::memory_order_release);
  return Status::OK();
}

Status FileDevice::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync", strerror(errno));
  }
  return Status::OK();
}

}  // namespace tsb
