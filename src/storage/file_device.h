// File-backed erasable device, for durability tests and on-disk runs.
#ifndef TSBTREE_STORAGE_FILE_DEVICE_H_
#define TSBTREE_STORAGE_FILE_DEVICE_H_

#include <atomic>
#include <string>

#include "storage/device.h"

namespace tsb {

/// Erasable device backed by a POSIX file (pread/pwrite).
/// Thread-safe: pread/pwrite are atomic at the OS level; the size
/// high-water mark is maintained with atomics.
class FileDevice : public Device {
 public:
  ~FileDevice() override;

  /// Opens (creating if absent) `path`. On success returns a new device via
  /// `*out`.
  static Status Open(const std::string& path, FileDevice** out,
                     DeviceKind kind = DeviceKind::kMagnetic,
                     CostParams params = CostParams::Magnetic());

  Status Read(uint64_t offset, size_t n, char* scratch) override;
  Status Write(uint64_t offset, const Slice& data) override;
  uint64_t Size() const override { return size_.load(std::memory_order_acquire); }
  Status Truncate(uint64_t size) override;
  Status Sync() override;

 private:
  FileDevice(int fd, uint64_t size, DeviceKind kind, CostParams params)
      : Device(kind, params), fd_(fd), size_(size) {}

  int fd_;
  std::atomic<uint64_t> size_;
};

}  // namespace tsb

#endif  // TSBTREE_STORAGE_FILE_DEVICE_H_
