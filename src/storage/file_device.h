// File-backed erasable device, for durability tests and on-disk runs.
#ifndef TSBTREE_STORAGE_FILE_DEVICE_H_
#define TSBTREE_STORAGE_FILE_DEVICE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "storage/device.h"

namespace tsb {

/// Erasable device backed by a POSIX file (pread/pwrite).
/// Thread-safe: pread/pwrite are atomic at the OS level; the size
/// high-water mark is maintained with atomics.
///
/// When mmap is enabled (the default) ReadMapped serves pinned zero-copy
/// views out of a PROT_READ MAP_SHARED mapping of the file. The mapping is
/// refcounted: when the file grows past the mapped length a fresh mapping
/// of the whole file replaces it, and the old one stays alive until its
/// last pin releases — file growth never invalidates live pins. Truncate
/// drops the current mapping; bytes a pin covered that the truncate cut
/// away must not be accessed afterwards (the historical append path never
/// truncates).
class FileDevice : public Device {
 public:
  ~FileDevice() override;

  /// Opens (creating if absent) `path`. On success returns a new device via
  /// `*out`. `enable_mmap` = false forces every read through pread (the
  /// copying path) — used as a measurable baseline and for filesystems
  /// where mapping is undesirable.
  static Status Open(const std::string& path, FileDevice** out,
                     DeviceKind kind = DeviceKind::kMagnetic,
                     CostParams params = CostParams::Magnetic(),
                     bool enable_mmap = true);

  Status Read(uint64_t offset, size_t n, char* scratch) override;
  Status Write(uint64_t offset, const Slice& data) override;
  uint64_t Size() const override { return size_.load(std::memory_order_acquire); }
  Status Truncate(uint64_t size) override;
  Status Sync() override;

  bool SupportsMappedReads() const override { return enable_mmap_; }
  /// Fresh mappings are advised MADV_RANDOM once (point pins fault exactly
  /// the pages they touch, no wasted readahead); a kSequential read
  /// prefetches its own range with MADV_WILLNEED — readahead for the scan
  /// without leaving sticky sequential advice behind on pages later point
  /// reads will hit. kRandom reads after mapping creation cost no syscall.
  Status ReadMapped(uint64_t offset, size_t n, MappedRead* out,
                    AccessPattern pattern = AccessPattern::kRandom) override;

 protected:
  FileDevice(int fd, uint64_t size, DeviceKind kind, CostParams params,
             bool enable_mmap)
      : Device(kind, params),
        fd_(fd),
        size_(size),
        enable_mmap_(enable_mmap) {}

  /// open(2) + fstat for Open and subclasses (WormFileDevice).
  static Status OpenFd(const std::string& path, int* fd, uint64_t* size);

 private:
  /// One mmap of a prefix of the file; unmapped when the last pin drops.
  struct Mapping {
    char* base = nullptr;
    size_t len = 0;
    ~Mapping();
  };

  int fd_;
  std::atomic<uint64_t> size_;
  bool enable_mmap_;

  std::mutex map_mu_;                   // guards map_ (re)creation
  std::shared_ptr<const Mapping> map_;  // covers [0, map_->len)
};

}  // namespace tsb

#endif  // TSBTREE_STORAGE_FILE_DEVICE_H_
