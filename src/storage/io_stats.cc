#include "storage/io_stats.h"

#include <cstdio>

namespace tsb {

std::string IoStats::ToString() const {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "reads=%llu writes=%llu bytes_read=%llu bytes_written=%llu "
           "seeks=%llu mounts=%llu simulated_ms=%.3f",
           static_cast<unsigned long long>(reads),
           static_cast<unsigned long long>(writes),
           static_cast<unsigned long long>(bytes_read),
           static_cast<unsigned long long>(bytes_written),
           static_cast<unsigned long long>(seeks),
           static_cast<unsigned long long>(mounts), simulated_ms);
  return std::string(buf);
}

std::string HistReadStats::ToString() const {
  char buf[384];
  snprintf(buf, sizeof(buf),
           "blob_reads=%llu blob_bytes=%llu cache_hits=%llu "
           "cache_misses=%llu hit_ratio=%.3f mapped_bytes=%llu "
           "copied_bytes=%llu view_decodes=%llu owned_decodes=%llu "
           "compression_ratio=%.3f",
           static_cast<unsigned long long>(blob_reads),
           static_cast<unsigned long long>(blob_bytes),
           static_cast<unsigned long long>(cache_hits),
           static_cast<unsigned long long>(cache_misses), hit_ratio(),
           static_cast<unsigned long long>(mapped_bytes),
           static_cast<unsigned long long>(copied_bytes),
           static_cast<unsigned long long>(view_decodes),
           static_cast<unsigned long long>(owned_decodes),
           compression_ratio());
  return std::string(buf);
}

}  // namespace tsb
