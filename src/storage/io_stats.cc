#include "storage/io_stats.h"

#include <cstdio>

namespace tsb {

std::string IoStats::ToString() const {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "reads=%llu writes=%llu bytes_read=%llu bytes_written=%llu "
           "seeks=%llu mounts=%llu simulated_ms=%.3f",
           static_cast<unsigned long long>(reads),
           static_cast<unsigned long long>(writes),
           static_cast<unsigned long long>(bytes_read),
           static_cast<unsigned long long>(bytes_written),
           static_cast<unsigned long long>(seeks),
           static_cast<unsigned long long>(mounts), simulated_ms);
  return std::string(buf);
}

}  // namespace tsb
