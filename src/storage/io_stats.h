// I/O accounting and the device cost model.
//
// The paper's storage argument (section 1) is quantitative: optical seeks
// are ~3x slower than magnetic, robot mounts cost ~20 seconds, and the
// smallest writable WORM unit is a ~1 KiB sector. Every Device tracks the
// operations issued against it and converts them to simulated elapsed time
// through CostParams, so benchmarks can report access-time shapes without
// the 1989 hardware.
#ifndef TSBTREE_STORAGE_IO_STATS_H_
#define TSBTREE_STORAGE_IO_STATS_H_

#include <cstdint>
#include <string>

namespace tsb {

/// Per-device latency/bandwidth parameters used to simulate elapsed time.
struct CostParams {
  double avg_seek_ms = 16.0;          ///< average seek+rotate latency
  double transfer_mb_per_s = 2.0;     ///< sustained sequential bandwidth
  double mount_ms = 0.0;              ///< robot library mount cost (once)

  /// 1989-class magnetic disk.
  static CostParams Magnetic() { return CostParams{16.0, 2.0, 0.0}; }
  /// Write-once optical: seeks ~3x slower (paper section 1).
  static CostParams OpticalWorm() { return CostParams{48.0, 1.0, 0.0}; }
  /// Optical platter served by a robot jukebox (~20 s mount).
  static CostParams OpticalJukebox() { return CostParams{48.0, 1.0, 20000.0}; }
};

/// Operation counters plus simulated elapsed time for one device.
struct IoStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t seeks = 0;   ///< accesses that were not sequential with the last
  uint64_t mounts = 0;  ///< robot mounts (at most 1 in this model)
  double simulated_ms = 0.0;

  void Reset() { *this = IoStats{}; }

  /// Adds another stats block (for whole-system totals).
  void Add(const IoStats& o) {
    reads += o.reads;
    writes += o.writes;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    seeks += o.seeks;
    mounts += o.mounts;
    simulated_ms += o.simulated_ms;
  }

  std::string ToString() const;
};

/// Counters for the historical (append-store) read path: how many blob
/// reads were served, how many bytes, how often the shared-blob cache hit,
/// and whether nodes were parsed zero-copy (view) or materialized (owned).
/// Blob/cache numbers come from the AppendStore; decode numbers from the
/// tree's read paths.
struct HistReadStats {
  uint64_t blob_reads = 0;     ///< ReadView/Read calls served
  uint64_t blob_bytes = 0;     ///< payload bytes served (incl. cache hits)
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t mapped_bytes = 0;   ///< miss bytes pinned from a device mapping
  uint64_t copied_bytes = 0;   ///< miss bytes copied into heap buffers
  uint64_t view_decodes = 0;   ///< nodes parsed zero-copy over pinned blobs
  uint64_t owned_decodes = 0;  ///< nodes materialized into owning vectors
  uint64_t node_raw_bytes = 0;     ///< v2-equivalent bytes of written nodes
  uint64_t node_stored_bytes = 0;  ///< bytes actually written (v3 compresses)

  /// Cache hits per lookup; 1.0 when the cache was never consulted.
  double hit_ratio() const {
    const uint64_t lookups = cache_hits + cache_misses;
    return lookups == 0 ? 1.0
                        : static_cast<double>(cache_hits) /
                              static_cast<double>(lookups);
  }

  /// Stored bytes per raw (uncompressed v2-equivalent) byte of written
  /// historical nodes; 1.0 when nothing was written.
  double compression_ratio() const {
    return node_raw_bytes == 0
               ? 1.0
               : static_cast<double>(node_stored_bytes) /
                     static_cast<double>(node_raw_bytes);
  }

  void Add(const HistReadStats& o) {
    blob_reads += o.blob_reads;
    blob_bytes += o.blob_bytes;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    mapped_bytes += o.mapped_bytes;
    copied_bytes += o.copied_bytes;
    view_decodes += o.view_decodes;
    owned_decodes += o.owned_decodes;
    node_raw_bytes += o.node_raw_bytes;
    node_stored_bytes += o.node_stored_bytes;
  }

  std::string ToString() const;
};

}  // namespace tsb

#endif  // TSBTREE_STORAGE_IO_STATS_H_
