#include "storage/mem_device.h"

#include <cstring>

namespace tsb {

Status MemDevice::Read(uint64_t offset, size_t n, char* scratch) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (offset + n > buf_.size()) {
      return Status::IOError("MemDevice read past end");
    }
    memcpy(scratch, buf_.data() + offset, n);
  }
  AccountRead(offset, n);
  return Status::OK();
}

Status MemDevice::Write(uint64_t offset, const Slice& data) {
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (offset + data.size() > buf_.size()) {
      buf_.resize(offset + data.size(), 0);
    }
    memcpy(buf_.data() + offset, data.data(), data.size());
  }
  AccountWrite(offset, data.size());
  return Status::OK();
}

Status MemDevice::Truncate(uint64_t size) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  buf_.resize(size, 0);
  return Status::OK();
}

}  // namespace tsb
