// In-memory erasable device: the default simulated magnetic disk.
#ifndef TSBTREE_STORAGE_MEM_DEVICE_H_
#define TSBTREE_STORAGE_MEM_DEVICE_H_

#include <shared_mutex>
#include <vector>

#include "storage/device.h"

namespace tsb {

/// Byte-addressable erasable device backed by a growable buffer.
/// Thread-safe: reads take a shared latch, writes (which may reallocate the
/// buffer) an exclusive one.
class MemDevice : public Device {
 public:
  explicit MemDevice(DeviceKind kind = DeviceKind::kMagnetic,
                     CostParams params = CostParams::Magnetic())
      : Device(kind, params) {}

  Status Read(uint64_t offset, size_t n, char* scratch) override;
  Status Write(uint64_t offset, const Slice& data) override;
  uint64_t Size() const override {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return buf_.size();
  }
  Status Truncate(uint64_t size) override;

 private:
  mutable std::shared_mutex mu_;
  std::vector<char> buf_;
};

}  // namespace tsb

#endif  // TSBTREE_STORAGE_MEM_DEVICE_H_
