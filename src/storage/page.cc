#include "storage/page.h"

#include <cstring>

#include "common/coding.h"
#include "common/crc32c.h"

namespace tsb {

void InitPage(char* buf, uint32_t page_size, uint32_t page_id, PageType type) {
  memset(buf, 0, page_size);
  EncodeFixed32(buf, kPageMagic);
  EncodeFixed32(buf + 8, page_id);
  EncodeFixed16(buf + 12, static_cast<uint16_t>(type));
}

void SealPage(char* buf, uint32_t page_size) {
  const uint32_t crc = crc32c::Value(buf + 8, page_size - 8);
  EncodeFixed32(buf + 4, crc32c::Mask(crc));
}

Status VerifyPage(const char* buf, uint32_t page_size, uint32_t expected_id) {
  if (DecodeFixed32(buf) != kPageMagic) {
    return Status::Corruption("bad page magic");
  }
  const uint32_t stored = crc32c::Unmask(DecodeFixed32(buf + 4));
  const uint32_t actual = crc32c::Value(buf + 8, page_size - 8);
  if (stored != actual) {
    return Status::Corruption("page checksum mismatch",
                              "page " + std::to_string(PageId(buf)));
  }
  if (expected_id != UINT32_MAX && PageId(buf) != expected_id) {
    return Status::Corruption("page id mismatch",
                              "expected " + std::to_string(expected_id) +
                                  " got " + std::to_string(PageId(buf)));
  }
  return Status::OK();
}

uint32_t PageId(const char* buf) { return DecodeFixed32(buf + 8); }

PageType GetPageType(const char* buf) {
  return static_cast<PageType>(DecodeFixed16(buf + 12));
}

void SetPageType(char* buf, PageType type) {
  EncodeFixed16(buf + 12, static_cast<uint16_t>(type));
}

uint16_t PageFlags(const char* buf) { return DecodeFixed16(buf + 14); }

void SetPageFlags(char* buf, uint16_t flags) { EncodeFixed16(buf + 14, flags); }

uint32_t PageSibling(const char* buf) { return DecodeFixed32(buf + 16); }

void SetPageSibling(char* buf, uint32_t sibling_id) {
  EncodeFixed32(buf + 16, sibling_id);
}

}  // namespace tsb
