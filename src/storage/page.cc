#include "storage/page.h"

#include <cstring>

#include "common/coding.h"
#include "common/crc32c.h"

namespace tsb {

void InitPage(char* buf, uint32_t page_size, uint32_t page_id, PageType type) {
  memset(buf, 0, page_size);
  EncodeFixed32(buf, kPageMagic);
  EncodeFixed32(buf + 8, page_id);
  EncodeFixed16(buf + 12, static_cast<uint16_t>(type));
  EncodeFixed16(buf + 14, kPageFlagHasTrailer);
  char* trailer = buf + page_size - kPageTrailerSize;
  EncodeFixed32(trailer, kPageTrailerMagic);
  EncodeFixed32(trailer + 4, page_id);
}

void SealPage(char* buf, uint32_t page_size) {
  if (PageHasTrailer(buf)) {
    // Keep the trailer magic/id faithful to the header even when callers
    // reseal an image they mutated in place.
    char* trailer = buf + page_size - kPageTrailerSize;
    EncodeFixed32(trailer, kPageTrailerMagic);
    EncodeFixed32(trailer + 4, PageId(buf));
    const uint32_t hcrc = crc32c::Value(buf + 8, page_size - 8 - 4);
    EncodeFixed32(buf + 4, crc32c::Mask(hcrc));
    const uint32_t tcrc = crc32c::Value(buf, page_size - 4);
    EncodeFixed32(buf + page_size - 4, crc32c::Mask(tcrc));
  } else {
    const uint32_t crc = crc32c::Value(buf + 8, page_size - 8);
    EncodeFixed32(buf + 4, crc32c::Mask(crc));
  }
}

void SealPageWithLsn(char* buf, uint32_t page_size, uint64_t flush_lsn) {
  if (PageHasTrailer(buf)) {
    EncodeFixed64(buf + page_size - kPageTrailerSize + 8, flush_lsn);
  }
  SealPage(buf, page_size);
}

Status VerifyPage(const char* buf, uint32_t page_size, uint32_t expected_id) {
  if (DecodeFixed32(buf) != kPageMagic) {
    return Status::Corruption("bad page magic");
  }
  const uint32_t stored = crc32c::Unmask(DecodeFixed32(buf + 4));
  if (PageHasTrailer(buf)) {
    const char* trailer = buf + page_size - kPageTrailerSize;
    if (DecodeFixed32(trailer) != kPageTrailerMagic) {
      return Status::Corruption("bad page trailer magic",
                                "page " + std::to_string(PageId(buf)));
    }
    const uint32_t actual = crc32c::Value(buf + 8, page_size - 8 - 4);
    if (stored != actual) {
      return Status::Corruption("page checksum mismatch",
                                "page " + std::to_string(PageId(buf)));
    }
    const uint32_t tstored = crc32c::Unmask(DecodeFixed32(buf + page_size - 4));
    const uint32_t tactual = crc32c::Value(buf, page_size - 4);
    if (tstored != tactual) {
      return Status::Corruption("page trailer checksum mismatch",
                                "page " + std::to_string(PageId(buf)));
    }
    if (DecodeFixed32(trailer + 4) != PageId(buf)) {
      return Status::Corruption(
          "page trailer id mismatch",
          "header " + std::to_string(PageId(buf)) + " trailer " +
              std::to_string(DecodeFixed32(trailer + 4)));
    }
  } else {
    const uint32_t actual = crc32c::Value(buf + 8, page_size - 8);
    if (stored != actual) {
      return Status::Corruption("page checksum mismatch",
                                "page " + std::to_string(PageId(buf)));
    }
  }
  if (expected_id != UINT32_MAX && PageId(buf) != expected_id) {
    return Status::Corruption("page id mismatch",
                              "expected " + std::to_string(expected_id) +
                                  " got " + std::to_string(PageId(buf)));
  }
  return Status::OK();
}

bool PageHasTrailer(const char* buf) {
  return (PageFlags(buf) & kPageFlagHasTrailer) != 0;
}

uint64_t PageFlushLsn(const char* buf, uint32_t page_size) {
  if (!PageHasTrailer(buf)) return 0;
  return DecodeFixed64(buf + page_size - kPageTrailerSize + 8);
}

uint32_t PageUsableSize(const char* buf, uint32_t page_size) {
  return PageHasTrailer(buf) ? page_size - kPageTrailerSize : page_size;
}

uint32_t PageId(const char* buf) { return DecodeFixed32(buf + 8); }

PageType GetPageType(const char* buf) {
  return static_cast<PageType>(DecodeFixed16(buf + 12));
}

void SetPageType(char* buf, PageType type) {
  EncodeFixed16(buf + 12, static_cast<uint16_t>(type));
}

uint16_t PageFlags(const char* buf) { return DecodeFixed16(buf + 14); }

void SetPageFlags(char* buf, uint16_t flags) { EncodeFixed16(buf + 14, flags); }

uint32_t PageSibling(const char* buf) { return DecodeFixed32(buf + 16); }

void SetPageSibling(char* buf, uint32_t sibling_id) {
  EncodeFixed32(buf + 16, sibling_id);
}

}  // namespace tsb
