// Fixed-size page layout for the current (erasable) database.
//
// Byte layout of every page:
//   [0..4)   magic        (0x54534254 "TSBT")
//   [4..8)   masked CRC32C of bytes [8, page_size)
//   [8..12)  page id
//   [12..14) page type
//   [14..16) flags
//   [16..20) right-sibling page id (B-link; 0 = none)
//   [20..24) reserved (0)
//   [24.. )  type-specific payload
#ifndef TSBTREE_STORAGE_PAGE_H_
#define TSBTREE_STORAGE_PAGE_H_

#include <cstdint>

#include "common/status.h"

namespace tsb {

inline constexpr uint32_t kPageMagic = 0x54534254;  // "TSBT"
inline constexpr uint32_t kPageHeaderSize = 24;
inline constexpr uint32_t kDefaultPageSize = 4096;

enum class PageType : uint16_t {
  kFree = 0,
  kMeta = 1,
  kBptLeaf = 2,
  kBptInternal = 3,
  kTsbData = 4,
  kTsbIndex = 5,
  kWobtNode = 6,
};

/// Zeroes `buf` and writes a fresh header (CRC left for SealPage).
void InitPage(char* buf, uint32_t page_size, uint32_t page_id, PageType type);

/// Computes and stores the masked CRC over [8, page_size).
void SealPage(char* buf, uint32_t page_size);

/// Verifies magic and CRC. `expected_id` checks the stored page id
/// (pass UINT32_MAX to skip).
Status VerifyPage(const char* buf, uint32_t page_size, uint32_t expected_id);

uint32_t PageId(const char* buf);
PageType GetPageType(const char* buf);
void SetPageType(char* buf, PageType type);
uint16_t PageFlags(const char* buf);
void SetPageFlags(char* buf, uint16_t flags);

/// Right-sibling page id set when a key split creates a sibling to this
/// page's right (B-link link; covered by the page CRC, so it persists).
/// kInvalidPageId (0, the meta page — never a node) means "none": fresh
/// pages read as link-less because InitPage zeroes the header.
uint32_t PageSibling(const char* buf);
void SetPageSibling(char* buf, uint32_t sibling_id);

}  // namespace tsb

#endif  // TSBTREE_STORAGE_PAGE_H_
