// Fixed-size page layout for the current (erasable) database.
//
// Byte layout of every page:
//   [0..4)   magic        (0x54534254 "TSBT")
//   [4..8)   masked CRC32C of bytes [8, page_size)
//   [8..12)  page id
//   [12..14) page type
//   [14..16) flags
//   [16..20) right-sibling page id (B-link; 0 = none)
//   [20..24) reserved (0)
//   [24.. )  type-specific payload
//
// v2 pages (flag kPageFlagHasTrailer, set on every page formatted since
// the trailer was introduced) additionally reserve the LAST 20 bytes for
// an end-of-page trailer:
//   [ps-20..ps-16) trailer magic (0x32565354 "TSV2")
//   [ps-16..ps-12) page id (redundant copy — catches misdirected writes
//                  even when the header bytes were overwritten wholesale)
//   [ps-12..ps-4)  flush LSN stamped by the pager at write time (a lost
//                  write leaves a stale LSN behind)
//   [ps-4..ps)     masked CRC32C of bytes [0, ps-4) — covers the header
//                  INCLUDING its CRC field, so header and trailer vouch
//                  for each other.
// On v2 pages the header CRC covers [8, ps-4): excluding the trailer CRC
// field breaks the circular dependency, and because the flags word is
// inside both CRC ranges a flipped format bit fails verification in either
// direction (v1->v2 flips fail the trailer magic, v2->v1 flips change the
// header CRC range). Legacy v1 pages keep their full payload capacity and
// header-only CRC forever; pages upgrade when they are next formatted.
#ifndef TSBTREE_STORAGE_PAGE_H_
#define TSBTREE_STORAGE_PAGE_H_

#include <cstdint>

#include "common/status.h"

namespace tsb {

inline constexpr uint32_t kPageMagic = 0x54534254;  // "TSBT"
inline constexpr uint32_t kPageHeaderSize = 24;
inline constexpr uint32_t kDefaultPageSize = 4096;
inline constexpr uint32_t kPageTrailerMagic = 0x32565354;  // "TSV2"
inline constexpr uint32_t kPageTrailerSize = 20;
inline constexpr uint16_t kPageFlagHasTrailer = 0x1;

enum class PageType : uint16_t {
  kFree = 0,
  kMeta = 1,
  kBptLeaf = 2,
  kBptInternal = 3,
  kTsbData = 4,
  kTsbIndex = 5,
  kWobtNode = 6,
};

/// Zeroes `buf` and writes a fresh v2 header + trailer skeleton (CRCs left
/// for SealPage). Every freshly formatted page carries the trailer.
void InitPage(char* buf, uint32_t page_size, uint32_t page_id, PageType type);

/// Computes and stores the CRCs for the page's own format: header-only for
/// legacy v1 pages, header + trailer for v2 pages (the trailer's flush LSN
/// bytes are preserved as-is — use SealPageWithLsn to stamp a new one).
void SealPage(char* buf, uint32_t page_size);

/// SealPage plus stamping `flush_lsn` into the v2 trailer (no-op LSN-wise
/// on legacy v1 pages). The pager uses this on every page write so a lost
/// write is detectable as a stale trailer LSN.
void SealPageWithLsn(char* buf, uint32_t page_size, uint64_t flush_lsn);

/// Verifies magic and CRC(s); v2 pages additionally verify the trailer
/// magic, trailer CRC and the redundant trailer page id. `expected_id`
/// checks the stored page id (pass UINT32_MAX to skip).
Status VerifyPage(const char* buf, uint32_t page_size, uint32_t expected_id);

/// True when the page was formatted with the v2 end-of-page trailer.
bool PageHasTrailer(const char* buf);

/// The flush LSN stamped in the v2 trailer (0 for legacy v1 pages).
uint64_t PageFlushLsn(const char* buf, uint32_t page_size);

/// Bytes usable by type-specific payload: page_size minus the trailer
/// reservation when the page carries one. Payload views must size their
/// regions with this so cells never overlap the trailer.
uint32_t PageUsableSize(const char* buf, uint32_t page_size);

uint32_t PageId(const char* buf);
PageType GetPageType(const char* buf);
void SetPageType(char* buf, PageType type);
uint16_t PageFlags(const char* buf);
void SetPageFlags(char* buf, uint16_t flags);

/// Right-sibling page id set when a key split creates a sibling to this
/// page's right (B-link link; covered by the page CRC, so it persists).
/// kInvalidPageId (0, the meta page — never a node) means "none": fresh
/// pages read as link-less because InitPage zeroes the header.
uint32_t PageSibling(const char* buf);
void SetPageSibling(char* buf, uint32_t sibling_id);

}  // namespace tsb

#endif  // TSBTREE_STORAGE_PAGE_H_
