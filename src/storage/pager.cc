#include "storage/pager.h"

#include <cstring>
#include <memory>

#include "common/coding.h"
#include "common/logger.h"

namespace tsb {

Pager::Pager(Device* device, uint32_t page_size)
    : device_(device), page_size_(page_size) {
  // Materialize the meta page on fresh devices so ReadMeta always works.
  if (device_->Size() < page_size_) {
    std::unique_ptr<char[]> buf(new char[page_size_]);
    InitPage(buf.get(), page_size_, 0, PageType::kMeta);
    SealPage(buf.get(), page_size_);
    Status s = device_->Write(0, Slice(buf.get(), page_size_));
    if (!s.ok()) {
      // Constructors cannot return Status; the first ReadMeta will fail
      // loudly on the missing page — but say why here, not there.
      TSB_LOG_ERROR("meta page init write failed: %s", s.ToString().c_str());
    }
  } else {
    next_page_ = static_cast<uint32_t>(device_->Size() / page_size_);
    if (next_page_ == 0) next_page_ = 1;
  }
}

Status Pager::Alloc(uint32_t* page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!free_list_.empty()) {
    *page_id = free_list_.back();
    free_list_.pop_back();
    return Status::OK();
  }
  *page_id = next_page_++;
  return Status::OK();
}

Status Pager::Free(uint32_t page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (page_id == kInvalidPageId || page_id >= next_page_) {
    return Status::InvalidArgument("Free of invalid page",
                                   std::to_string(page_id));
  }
  free_list_.push_back(page_id);
  return Status::OK();
}

Status Pager::VerifyRead(uint32_t id, const char* buf) {
  if (!verify_on_read_) return Status::OK();
  Status s = VerifyPage(buf, page_size_, id);
  if (s.ok()) {
    // Lost-write check: if we stamped this page during this process
    // lifetime, the trailer must carry that exact LSN. An older (or
    // missing) stamp means the device acked a write it never applied.
    uint64_t expected = 0;
    bool have_expected = false;
    {
      std::lock_guard<std::mutex> lock(lsn_mu_);
      auto it = stamped_lsn_.find(id);
      if (it != stamped_lsn_.end()) {
        expected = it->second;
        have_expected = true;
      }
    }
    if (have_expected &&
        (!PageHasTrailer(buf) || PageFlushLsn(buf, page_size_) != expected)) {
      s = Status::Corruption(
          "lost page write",
          "page " + std::to_string(id) + " expected flush lsn " +
              std::to_string(expected) + " got " +
              std::to_string(PageFlushLsn(buf, page_size_)));
    }
  }
  if (!s.ok()) ReportCorruption(id, s);
  return s;
}

void Pager::ReportCorruption(uint32_t id, const Status& s) {
  CorruptionReporter reporter;
  {
    std::lock_guard<std::mutex> lock(mu_);
    reporter = corruption_reporter_;
  }
  if (reporter) reporter(id, s);
}

Status Pager::Read(uint32_t id, char* buf) {
  TSB_RETURN_IF_ERROR(
      device_->Read(static_cast<uint64_t>(id) * page_size_, page_size_, buf));
  return VerifyRead(id, buf);
}

Status Pager::Write(uint32_t id, char* buf) {
  const uint64_t lsn = flush_lsn_.load(std::memory_order_relaxed);
  SealPageWithLsn(buf, page_size_, lsn);
  Status s = device_->Write(static_cast<uint64_t>(id) * page_size_,
                            Slice(buf, page_size_));
  if (s.ok() && PageHasTrailer(buf)) {
    std::lock_guard<std::mutex> lock(lsn_mu_);
    stamped_lsn_[id] = lsn;
  }
  return s;
}

void Pager::EncodeFreeList(std::string* out, size_t max_bytes) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t header = 4;
  size_t fit = max_bytes > header ? (max_bytes - header) / 4 : 0;
  if (fit > free_list_.size()) fit = free_list_.size();
  PutFixed32(out, static_cast<uint32_t>(fit));
  for (size_t i = 0; i < fit; ++i) {
    PutFixed32(out, free_list_[i]);
  }
  last_encode_leaked_ = free_list_.size() - fit;
  if (last_encode_leaked_ > 0) {
    TSB_LOG_WARN(
        "free list overflow: %llu of %llu free pages do not fit in %zu "
        "meta bytes and leak until the pages are freed again",
        static_cast<unsigned long long>(last_encode_leaked_),
        static_cast<unsigned long long>(free_list_.size()), max_bytes);
  }
}

Status Pager::DecodeFreeList(Slice in) {
  if (in.size() < 4) return Status::Corruption("free list truncated");
  const uint32_t count = DecodeFixed32(in.data());
  in.remove_prefix(4);
  if (in.size() < static_cast<size_t>(count) * 4) {
    return Status::Corruption("free list truncated");
  }
  std::lock_guard<std::mutex> lock(mu_);
  free_list_.clear();
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t id = DecodeFixed32(in.data() + static_cast<size_t>(i) * 4);
    if (id != kInvalidPageId && id < next_page_) {
      free_list_.push_back(id);
    }
  }
  return Status::OK();
}

Status Pager::VerifyStampedPages(
    const std::function<void(uint32_t, const Status&)>& on_corrupt,
    uint64_t* pages_checked) {
  std::vector<std::pair<uint32_t, uint64_t>> stamped;
  {
    std::lock_guard<std::mutex> lock(lsn_mu_);
    stamped.assign(stamped_lsn_.begin(), stamped_lsn_.end());
  }
  std::unique_ptr<char[]> buf(new char[page_size_]);
  for (const auto& [id, lsn] : stamped) {
    const uint64_t offset = static_cast<uint64_t>(id) * page_size_;
    if (pages_checked != nullptr) ++*pages_checked;
    if (offset + page_size_ > device_->Size()) {
      // The stamped slot is not even on the device: a lost write to the
      // tail page (the device never grew to cover it).
      if (on_corrupt) {
        on_corrupt(id, Status::Corruption(
                           "lost page write",
                           "page " + std::to_string(id) +
                               " stamped but past device end"));
      }
      continue;
    }
    TSB_RETURN_IF_ERROR(device_->Read(offset, page_size_, buf.get()));
    Status s = VerifyPage(buf.get(), page_size_, id);
    if (s.ok() && (!PageHasTrailer(buf.get()) ||
                   PageFlushLsn(buf.get(), page_size_) != lsn)) {
      s = Status::Corruption(
          "lost page write",
          "page " + std::to_string(id) + " expected flush lsn " +
              std::to_string(lsn) + " got " +
              std::to_string(PageHasTrailer(buf.get())
                                 ? PageFlushLsn(buf.get(), page_size_)
                                 : 0));
    }
    if (!s.ok() && on_corrupt) on_corrupt(id, s);
  }
  return Status::OK();
}

Status Pager::ReadMeta(char* buf) {
  TSB_RETURN_IF_ERROR(device_->Read(0, page_size_, buf));
  return VerifyRead(0, buf);
}

Status Pager::WriteMeta(char* buf) {
  const uint64_t lsn = flush_lsn_.load(std::memory_order_relaxed);
  SealPageWithLsn(buf, page_size_, lsn);
  Status s = device_->Write(0, Slice(buf, page_size_));
  if (s.ok() && PageHasTrailer(buf)) {
    std::lock_guard<std::mutex> lock(lsn_mu_);
    stamped_lsn_[0] = lsn;
  }
  return s;
}

}  // namespace tsb
