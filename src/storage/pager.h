// Pager: page allocation and checksummed page I/O on one erasable device.
//
// Page 0 is a reserved meta page (trees persist their root pointer and
// counters there). Freed pages go on a free list and are reused — this is
// the "erasable medium" capability the current database depends on.
//
// Thread-safe: allocation, free-list mutation and the counters are guarded
// by an internal mutex; page I/O delegates to the (thread-safe) Device.
#ifndef TSBTREE_STORAGE_PAGER_H_
#define TSBTREE_STORAGE_PAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/device.h"
#include "storage/page.h"

namespace tsb {

inline constexpr uint32_t kInvalidPageId = 0;  // page 0 = meta, never a node

/// Allocates, frees, reads and writes fixed-size pages on a Device.
class Pager {
 public:
  Pager(Device* device, uint32_t page_size = kDefaultPageSize);

  uint32_t page_size() const { return page_size_; }
  Device* device() const { return device_; }

  /// LSN stamped into v2 page trailers by subsequent Write calls. The DB
  /// advances this to the checkpoint LSN before flushing dirty pages, so a
  /// page whose write the disk dropped still carries the previous stamp.
  void set_flush_lsn(uint64_t lsn) {
    flush_lsn_.store(lsn, std::memory_order_relaxed);
  }
  uint64_t flush_lsn() const {
    return flush_lsn_.load(std::memory_order_relaxed);
  }

  /// When false, Read skips checksum verification (scrub-only deployments
  /// that prefer read latency over inline detection). Defaults to true.
  void set_verify_on_read(bool verify) { verify_on_read_ = verify; }
  bool verify_on_read() const { return verify_on_read_; }

  /// Invoked (outside pager locks) whenever Read detects corruption, with
  /// the page id and the Corruption status. Owners route this into the
  /// quarantine set; the failing Status still propagates to the caller.
  using CorruptionReporter = std::function<void(uint32_t, const Status&)>;
  void set_corruption_reporter(CorruptionReporter reporter) {
    std::lock_guard<std::mutex> lock(mu_);
    corruption_reporter_ = std::move(reporter);
  }

  /// Allocates a page id (reusing freed pages first).
  Status Alloc(uint32_t* page_id);

  /// Returns a page to the free list.
  Status Free(uint32_t page_id);

  /// Reads page `id` into `buf` (page_size bytes) and verifies its checksum.
  Status Read(uint32_t id, char* buf);

  /// Seals (checksums) and writes page `id` from `buf`.
  Status Write(uint32_t id, char* buf);

  /// Raw access to the meta page (page 0): read with verification.
  Status ReadMeta(char* buf);
  Status WriteMeta(char* buf);

  /// Number of page slots ever allocated (excluding meta).
  uint32_t high_water_pages() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_page_ - 1;
  }
  /// Currently live pages (allocated minus freed, excluding meta).
  uint32_t live_pages() const {
    std::lock_guard<std::mutex> lock(mu_);
    return (next_page_ - 1) - static_cast<uint32_t>(free_list_.size());
  }
  /// Bytes of magnetic storage occupied by live pages.
  uint64_t live_bytes() const {
    return static_cast<uint64_t>(live_pages()) * page_size_;
  }

  /// Serializes the free list (for owners to persist in their meta page).
  /// At most `max_bytes` are written; pages that do not fit LEAK until the
  /// next reopen-free cycle (bounded meta space). Leaks are logged and
  /// counted — see leaked_free_pages().
  void EncodeFreeList(std::string* out, size_t max_bytes) const;

  /// Free pages dropped by the most recent EncodeFreeList because they did
  /// not fit in the caller's meta budget (0 when everything fit). Surfaced
  /// in SpaceStats so space accounting shows the loss.
  uint64_t leaked_free_pages() const {
    std::lock_guard<std::mutex> lock(mu_);
    return last_encode_leaked_;
  }

  /// Restores a free list written by EncodeFreeList. Ignores ids outside
  /// the allocated range (robust to stale meta).
  Status DecodeFreeList(Slice in);

  /// Scrub-side lost-write sweep: re-reads every page stamped during THIS
  /// process lifetime (including the meta page) and checks that the device
  /// still holds the stamped trailer LSN. The inline read-path check only
  /// fires on buffer-pool misses, and a device-level scrub cannot tell an
  /// old-but-valid page from a current one — this sweep is the only way a
  /// lost write to a page nobody re-reads (the meta page above all) gets
  /// caught before the next restart discards the stamps. `on_corrupt`
  /// fires per bad page and the sweep continues. Callers must serialize
  /// against page flushes (MultiVersionDB::Scrub holds the checkpoint
  /// lock). Returns non-OK only for device I/O errors.
  Status VerifyStampedPages(
      const std::function<void(uint32_t, const Status&)>& on_corrupt,
      uint64_t* pages_checked);

 private:
  Status VerifyRead(uint32_t id, const char* buf);
  void ReportCorruption(uint32_t id, const Status& s);

  Device* device_;
  uint32_t page_size_;
  mutable std::mutex mu_;   // guards next_page_, free_list_, leak counter
  uint32_t next_page_ = 1;  // 0 is meta
  std::vector<uint32_t> free_list_;
  mutable uint64_t last_encode_leaked_ = 0;
  std::atomic<uint64_t> flush_lsn_{0};
  bool verify_on_read_ = true;
  CorruptionReporter corruption_reporter_;
  // Trailer LSN each page was last stamped with THIS process lifetime; a
  // later read returning an older stamp means the device lost the write.
  // Reset at restart, so recovery-time rewrites can never false-positive.
  std::mutex lsn_mu_;
  std::unordered_map<uint32_t, uint64_t> stamped_lsn_;
};

}  // namespace tsb

#endif  // TSBTREE_STORAGE_PAGER_H_
