// Pager: page allocation and checksummed page I/O on one erasable device.
//
// Page 0 is a reserved meta page (trees persist their root pointer and
// counters there). Freed pages go on a free list and are reused — this is
// the "erasable medium" capability the current database depends on.
//
// Thread-safe: allocation, free-list mutation and the counters are guarded
// by an internal mutex; page I/O delegates to the (thread-safe) Device.
#ifndef TSBTREE_STORAGE_PAGER_H_
#define TSBTREE_STORAGE_PAGER_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "storage/device.h"
#include "storage/page.h"

namespace tsb {

inline constexpr uint32_t kInvalidPageId = 0;  // page 0 = meta, never a node

/// Allocates, frees, reads and writes fixed-size pages on a Device.
class Pager {
 public:
  Pager(Device* device, uint32_t page_size = kDefaultPageSize);

  uint32_t page_size() const { return page_size_; }
  Device* device() const { return device_; }

  /// Allocates a page id (reusing freed pages first).
  Status Alloc(uint32_t* page_id);

  /// Returns a page to the free list.
  Status Free(uint32_t page_id);

  /// Reads page `id` into `buf` (page_size bytes) and verifies its checksum.
  Status Read(uint32_t id, char* buf);

  /// Seals (checksums) and writes page `id` from `buf`.
  Status Write(uint32_t id, char* buf);

  /// Raw access to the meta page (page 0): read with verification.
  Status ReadMeta(char* buf);
  Status WriteMeta(char* buf);

  /// Number of page slots ever allocated (excluding meta).
  uint32_t high_water_pages() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_page_ - 1;
  }
  /// Currently live pages (allocated minus freed, excluding meta).
  uint32_t live_pages() const {
    std::lock_guard<std::mutex> lock(mu_);
    return (next_page_ - 1) - static_cast<uint32_t>(free_list_.size());
  }
  /// Bytes of magnetic storage occupied by live pages.
  uint64_t live_bytes() const {
    return static_cast<uint64_t>(live_pages()) * page_size_;
  }

  /// Serializes the free list (for owners to persist in their meta page).
  /// At most `max_bytes` are written; pages that do not fit LEAK until the
  /// next reopen-free cycle (bounded meta space). Leaks are logged and
  /// counted — see leaked_free_pages().
  void EncodeFreeList(std::string* out, size_t max_bytes) const;

  /// Free pages dropped by the most recent EncodeFreeList because they did
  /// not fit in the caller's meta budget (0 when everything fit). Surfaced
  /// in SpaceStats so space accounting shows the loss.
  uint64_t leaked_free_pages() const {
    std::lock_guard<std::mutex> lock(mu_);
    return last_encode_leaked_;
  }

  /// Restores a free list written by EncodeFreeList. Ignores ids outside
  /// the allocated range (robust to stale meta).
  Status DecodeFreeList(Slice in);

 private:
  Device* device_;
  uint32_t page_size_;
  mutable std::mutex mu_;   // guards next_page_, free_list_, leak counter
  uint32_t next_page_ = 1;  // 0 is meta
  std::vector<uint32_t> free_list_;
  mutable uint64_t last_encode_leaked_ = 0;
};

}  // namespace tsb

#endif  // TSBTREE_STORAGE_PAGER_H_
