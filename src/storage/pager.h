// Pager: page allocation and checksummed page I/O on one erasable device.
//
// Page 0 is a reserved meta page (trees persist their root pointer and
// counters there). Freed pages go on a free list and are reused — this is
// the "erasable medium" capability the current database depends on.
#ifndef TSBTREE_STORAGE_PAGER_H_
#define TSBTREE_STORAGE_PAGER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/device.h"
#include "storage/page.h"

namespace tsb {

inline constexpr uint32_t kInvalidPageId = 0;  // page 0 = meta, never a node

/// Allocates, frees, reads and writes fixed-size pages on a Device.
class Pager {
 public:
  Pager(Device* device, uint32_t page_size = kDefaultPageSize);

  uint32_t page_size() const { return page_size_; }
  Device* device() const { return device_; }

  /// Allocates a page id (reusing freed pages first).
  Status Alloc(uint32_t* page_id);

  /// Returns a page to the free list.
  Status Free(uint32_t page_id);

  /// Reads page `id` into `buf` (page_size bytes) and verifies its checksum.
  Status Read(uint32_t id, char* buf);

  /// Seals (checksums) and writes page `id` from `buf`.
  Status Write(uint32_t id, char* buf);

  /// Raw access to the meta page (page 0): read with verification.
  Status ReadMeta(char* buf);
  Status WriteMeta(char* buf);

  /// Number of page slots ever allocated (excluding meta).
  uint32_t high_water_pages() const { return next_page_ - 1; }
  /// Currently live pages (allocated minus freed, excluding meta).
  uint32_t live_pages() const {
    return high_water_pages() - static_cast<uint32_t>(free_list_.size());
  }
  /// Bytes of magnetic storage occupied by live pages.
  uint64_t live_bytes() const {
    return static_cast<uint64_t>(live_pages()) * page_size_;
  }

  /// Serializes the free list (for owners to persist in their meta page).
  /// At most `max_bytes` are written; pages that do not fit leak until the
  /// next reopen-free cycle (bounded meta space).
  void EncodeFreeList(std::string* out, size_t max_bytes) const;

  /// Restores a free list written by EncodeFreeList. Ignores ids outside
  /// the allocated range (robust to stale meta).
  Status DecodeFreeList(Slice in);

 private:
  Device* device_;
  uint32_t page_size_;
  uint32_t next_page_ = 1;  // 0 is meta
  std::vector<uint32_t> free_list_;
};

}  // namespace tsb

#endif  // TSBTREE_STORAGE_PAGER_H_
