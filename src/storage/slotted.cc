#include "storage/slotted.h"

#include <cassert>
#include <cstring>
#include <vector>

#include "common/coding.h"

namespace tsb {

namespace {
constexpr uint32_t kHeader = 6;
constexpr uint32_t kSlot = 2;
constexpr uint32_t kCellHeader = 2;  // u16 length prefix
}  // namespace

void SlottedView::Init() {
  set_count(0);
  set_cell_start(static_cast<uint16_t>(cap_));
  set_live_bytes(0);
}

uint16_t SlottedView::count() const { return DecodeFixed16(base_); }
uint16_t SlottedView::cell_start() const { return DecodeFixed16(base_ + 2); }
uint16_t SlottedView::live_bytes() const { return DecodeFixed16(base_ + 4); }
void SlottedView::set_count(uint16_t v) { EncodeFixed16(base_, v); }
void SlottedView::set_cell_start(uint16_t v) { EncodeFixed16(base_ + 2, v); }
void SlottedView::set_live_bytes(uint16_t v) { EncodeFixed16(base_ + 4, v); }

uint16_t SlottedView::slot(int i) const {
  return DecodeFixed16(base_ + kHeader + kSlot * i);
}

void SlottedView::set_slot(int i, uint16_t v) {
  EncodeFixed16(base_ + kHeader + kSlot * i, v);
}

Slice SlottedView::Cell(int i) const {
  assert(i >= 0 && i < count());
  const uint16_t off = slot(i);
  const uint16_t len = DecodeFixed16(base_ + off);
  return Slice(base_ + off + kCellHeader, len);
}

uint32_t SlottedView::ContiguousFree() const {
  const uint32_t slots_end = kHeader + kSlot * count();
  const uint32_t cs = cell_start();
  return cs > slots_end ? cs - slots_end : 0;
}

uint32_t SlottedView::FreeBytes() const {
  const uint32_t used = kHeader + kSlot * count() + live_bytes();
  return cap_ > used ? cap_ - used : 0;
}

bool SlottedView::HasRoomFor(uint32_t payload_size) const {
  return FreeBytes() >= payload_size + kCellHeader + kSlot;
}

void SlottedView::Compact() {
  const int n = count();
  std::vector<std::string> cells;
  cells.reserve(n);
  for (int i = 0; i < n; ++i) {
    cells.push_back(Cell(i).ToString());
  }
  uint16_t write = static_cast<uint16_t>(cap_);
  for (int i = 0; i < n; ++i) {
    const uint16_t need = static_cast<uint16_t>(cells[i].size() + kCellHeader);
    write = static_cast<uint16_t>(write - need);
    EncodeFixed16(base_ + write, static_cast<uint16_t>(cells[i].size()));
    memcpy(base_ + write + kCellHeader, cells[i].data(), cells[i].size());
    set_slot(i, write);
  }
  set_cell_start(write);
}

bool SlottedView::Insert(int pos, const Slice& cell) {
  assert(pos >= 0 && pos <= count());
  const uint32_t need = static_cast<uint32_t>(cell.size()) + kCellHeader;
  if (!HasRoomFor(static_cast<uint32_t>(cell.size()))) return false;
  if (ContiguousFree() < need + kSlot) Compact();
  const int n = count();
  // Shift slots [pos, n) right by one.
  memmove(base_ + kHeader + kSlot * (pos + 1), base_ + kHeader + kSlot * pos,
          kSlot * static_cast<size_t>(n - pos));
  const uint16_t write = static_cast<uint16_t>(cell_start() - need);
  EncodeFixed16(base_ + write, static_cast<uint16_t>(cell.size()));
  memcpy(base_ + write + kCellHeader, cell.data(), cell.size());
  set_slot(pos, write);
  set_cell_start(write);
  set_count(static_cast<uint16_t>(n + 1));
  set_live_bytes(static_cast<uint16_t>(live_bytes() + need));
  return true;
}

void SlottedView::Remove(int pos) {
  const int n = count();
  assert(pos >= 0 && pos < n);
  const uint16_t off = slot(pos);
  const uint16_t len = DecodeFixed16(base_ + off);
  memmove(base_ + kHeader + kSlot * pos, base_ + kHeader + kSlot * (pos + 1),
          kSlot * static_cast<size_t>(n - pos - 1));
  set_count(static_cast<uint16_t>(n - 1));
  set_live_bytes(static_cast<uint16_t>(live_bytes() - (len + kCellHeader)));
  if (off == cell_start()) {
    // Best-effort: advance cell_start past the removed cell so sequential
    // remove/insert patterns don't force compaction.
    set_cell_start(static_cast<uint16_t>(off + len + kCellHeader));
  }
}

bool SlottedView::Replace(int pos, const Slice& cell) {
  std::string old = Cell(pos).ToString();
  Remove(pos);
  if (Insert(pos, cell)) return true;
  // Roll back.
  bool ok = Insert(pos, old);
  assert(ok);
  (void)ok;
  return false;
}

}  // namespace tsb
