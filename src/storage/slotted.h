// SlottedView: classic slotted-page layout over an arbitrary byte region.
//
// Region layout:
//   [0..2)  cell count n
//   [2..4)  cell_start: lowest byte offset occupied by any live cell
//   [4..6)  live_bytes: total bytes of live cells
//   [6..6+2n)  slot array, slot i = offset of cell i within the region
//   [cell_start..cap)  cells, allocated downward, possibly with holes
// Cells are opaque byte strings; each cell is stored as [u16 len][bytes].
// The slot array keeps logical order (callers keep it sorted); holes from
// removals are reclaimed by compaction when contiguous space runs out.
#ifndef TSBTREE_STORAGE_SLOTTED_H_
#define TSBTREE_STORAGE_SLOTTED_H_

#include <cstdint>

#include "common/slice.h"

namespace tsb {

/// Mutable view over a slotted region. Does not own memory.
class SlottedView {
 public:
  SlottedView(char* base, uint32_t cap) : base_(base), cap_(cap) {}

  /// Zeroes the bookkeeping of a fresh region.
  void Init();

  uint16_t count() const;
  /// Returns cell i's payload (view into the region).
  Slice Cell(int i) const;

  /// Total free bytes (contiguous + holes), accounting for the slot the
  /// insert would add.
  uint32_t FreeBytes() const;

  /// True if a cell of `payload_size` bytes fits (after compaction if
  /// necessary).
  bool HasRoomFor(uint32_t payload_size) const;

  /// Inserts `cell` so it becomes cell `pos` (0 <= pos <= count()). Returns
  /// false if there is no room.
  bool Insert(int pos, const Slice& cell);

  /// Removes cell `pos`.
  void Remove(int pos);

  /// Replaces cell `pos` with `cell`; false if no room (cell removed is
  /// reclaimed first, so shrinking always succeeds).
  bool Replace(int pos, const Slice& cell);

  /// Drops all cells.
  void Clear() { Init(); }

  uint32_t capacity() const { return cap_; }

 private:
  uint16_t cell_start() const;
  uint16_t live_bytes() const;
  void set_count(uint16_t v);
  void set_cell_start(uint16_t v);
  void set_live_bytes(uint16_t v);
  uint16_t slot(int i) const;
  void set_slot(int i, uint16_t v);
  uint32_t ContiguousFree() const;
  void Compact();

  char* base_;
  uint32_t cap_;
};

}  // namespace tsb

#endif  // TSBTREE_STORAGE_SLOTTED_H_
