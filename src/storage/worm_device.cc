#include "storage/worm_device.h"

#include <cstring>

namespace tsb {

Status WormDevice::Read(uint64_t offset, size_t n, char* scratch) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (offset + n > buf_.size()) {
      return Status::IOError("WormDevice read past end");
    }
    memcpy(scratch, buf_.data() + offset, n);
  }
  AccountRead(offset, n);
  return Status::OK();
}

Status WormDevice::Write(uint64_t offset, const Slice& data) {
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    TSB_RETURN_IF_ERROR(WriteLocked(offset, data));
  }
  if (!data.empty()) AccountWrite(offset, data.size());
  return Status::OK();
}

Status WormDevice::WriteLocked(uint64_t offset, const Slice& data) {
  if (data.empty()) return Status::OK();
  const uint64_t first = SectorOf(offset);
  const uint64_t last = SectorOf(offset + data.size() - 1);
  for (uint64_t s = first; s <= last; ++s) {
    if (IsBurnedLocked(s)) {
      return Status::WriteOnceViolation("sector already burned",
                                        std::to_string(s));
    }
  }
  const uint64_t end_byte = (last + 1) * sector_size_;
  if (end_byte > buf_.size()) {
    buf_.resize(end_byte, 0);
  }
  if (last + 1 > burned_.size()) {
    burned_.resize(last + 1, false);
  }
  memcpy(buf_.data() + offset, data.data(), data.size());
  for (uint64_t s = first; s <= last; ++s) {
    burned_[s] = true;
    ++sectors_burned_;
  }
  if (last + 1 > next_alloc_sector_) next_alloc_sector_ = last + 1;
  payload_bytes_ += data.size();
  return Status::OK();
}

Status WormDevice::Append(const Slice& data, uint64_t* offset) {
  uint64_t start = 0;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    start = next_alloc_sector_ * sector_size_;
    TSB_RETURN_IF_ERROR(WriteLocked(start, data));
  }
  if (!data.empty()) AccountWrite(start, data.size());
  *offset = start;
  return Status::OK();
}

Status WormDevice::AllocateExtent(uint32_t n_sectors, uint64_t* first_sector) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  *first_sector = next_alloc_sector_;
  next_alloc_sector_ += n_sectors;
  const uint64_t end_byte = next_alloc_sector_ * sector_size_;
  if (end_byte > buf_.size()) buf_.resize(end_byte, 0);
  if (next_alloc_sector_ > burned_.size()) {
    burned_.resize(next_alloc_sector_, false);
  }
  return Status::OK();
}

double WormDevice::Utilization() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (sectors_burned_ == 0) return 1.0;
  return static_cast<double>(payload_bytes_) /
         static_cast<double>(sectors_burned_ * sector_size_);
}

}  // namespace tsb
