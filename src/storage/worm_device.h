// Write-Once Read-Many device.
//
// Models the two limiting characteristics of 1989 optical disks the paper
// analyses (section 1): the smallest writable unit is a sector (an ECC is
// burned with it, so a sector can be written exactly once), and seeks are
// ~3x slower than magnetic. Any write that touches an already-burned
// sector fails with WriteOnceViolation. Utilization accounting separates
// payload bytes from burned capacity so benches can reproduce the paper's
// space-waste argument.
#ifndef TSBTREE_STORAGE_WORM_DEVICE_H_
#define TSBTREE_STORAGE_WORM_DEVICE_H_

#include <shared_mutex>
#include <vector>

#include "storage/device.h"

namespace tsb {

/// Sector-granular write-once device backed by memory.
/// Thread-safe: reads take a shared latch; writes and extent allocation an
/// exclusive one (burning a sector is a state change).
class WormDevice : public Device {
 public:
  explicit WormDevice(uint32_t sector_size = kDefaultSectorSize,
                      CostParams params = CostParams::OpticalWorm())
      : Device(DeviceKind::kOpticalWorm, params), sector_size_(sector_size) {}

  static constexpr uint32_t kDefaultSectorSize = 1024;  // paper: ~1 KiB

  Status Read(uint64_t offset, size_t n, char* scratch) override;

  /// Burns the sectors covering [offset, offset+data.size()). Every covered
  /// sector must be unburned; all of them become unwritable afterwards.
  /// The unfilled remainder of a partially covered sector is wasted — this
  /// is exactly the incremental-write waste the paper describes.
  Status Write(uint64_t offset, const Slice& data) override;

  uint64_t Size() const override {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return buf_.size();
  }

  /// Appends `data` starting at the next unburned sector boundary; returns
  /// its byte offset. This is the "append to the end of the historical
  /// database" primitive.
  Status Append(const Slice& data, uint64_t* offset);

  /// Reserves `n_sectors` consecutive sectors past the high-water mark
  /// without burning them; returns the first sector index. Used by the
  /// WOBT, whose nodes are "a sequence of consecutive sectors".
  Status AllocateExtent(uint32_t n_sectors, uint64_t* first_sector);

  uint32_t sector_size() const { return sector_size_; }
  uint32_t write_once_sector_size() const override { return sector_size_; }
  bool IsBurned(uint64_t sector) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return IsBurnedLocked(sector);
  }

  uint64_t sectors_burned() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return sectors_burned_;
  }
  /// Bytes of caller payload actually written into burned sectors.
  uint64_t payload_bytes() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return payload_bytes_;
  }
  /// payload / (sectors_burned * sector_size); 1.0 when nothing burned.
  double Utilization() const;

 private:
  uint64_t SectorOf(uint64_t offset) const { return offset / sector_size_; }
  bool IsBurnedLocked(uint64_t sector) const {
    return sector < burned_.size() && burned_[sector];
  }
  Status WriteLocked(uint64_t offset, const Slice& data);

  mutable std::shared_mutex mu_;
  uint32_t sector_size_;
  std::vector<char> buf_;
  std::vector<bool> burned_;
  uint64_t next_alloc_sector_ = 0;  // allocation high-water (sectors)
  uint64_t sectors_burned_ = 0;
  uint64_t payload_bytes_ = 0;
};

}  // namespace tsb

#endif  // TSBTREE_STORAGE_WORM_DEVICE_H_
