#include "storage/worm_file_device.h"

namespace tsb {

Status WormFileDevice::Open(const std::string& path, WormFileDevice** out,
                            uint32_t sector_size, CostParams params,
                            bool enable_mmap) {
  if (sector_size == 0) {
    return Status::InvalidArgument("WORM sector size must be non-zero");
  }
  int fd = -1;
  uint64_t size = 0;
  TSB_RETURN_IF_ERROR(OpenFd(path, &fd, &size));
  *out = new WormFileDevice(fd, size, sector_size, params, enable_mmap);
  return Status::OK();
}

Status WormFileDevice::Write(uint64_t offset, const Slice& data) {
  // Burned region = sectors covered by the high-water mark (a trailing
  // partially-filled sector is burned; its residue is the WORM waste the
  // paper describes). A legal write therefore starts in a fresh sector.
  std::lock_guard<std::mutex> lock(burn_check_mu_);
  if (offset / sector_size_ < sectors_burned()) {
    return Status::WriteOnceViolation(
        "sector already burned",
        "offset " + std::to_string(offset));
  }
  return FileDevice::Write(offset, data);
}

Status WormFileDevice::Truncate(uint64_t size) {
  (void)size;
  return Status::NotSupported("Truncate", "write-once device");
}

}  // namespace tsb
