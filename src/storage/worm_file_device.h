// File-backed write-once device: the paper's optical archive with real
// durability and mmap-served zero-copy reads.
#ifndef TSBTREE_STORAGE_WORM_FILE_DEVICE_H_
#define TSBTREE_STORAGE_WORM_FILE_DEVICE_H_

#include <string>

#include "storage/file_device.h"

namespace tsb {

/// A FileDevice with WORM sector semantics: the smallest writable unit is
/// a sector and every sector can be burned exactly once. Unlike the
/// in-memory WormDevice simulation, contents persist across reopen and
/// reads can be served zero-copy from the file mapping.
///
/// The burned region needs no side metadata: this device is only ever
/// written append-style (the AppendStore), so every sector covered by
/// [0, Size()) — including a trailing partially-filled sector — is burned,
/// and that invariant reconstructs itself from the file size on reopen.
class WormFileDevice : public FileDevice {
 public:
  /// Opens (creating if absent) `path`. Sectors covered by the existing
  /// file contents count as burned.
  static Status Open(const std::string& path, WormFileDevice** out,
                     uint32_t sector_size = kDefaultSectorSize,
                     CostParams params = CostParams::OpticalWorm(),
                     bool enable_mmap = true);

  static constexpr uint32_t kDefaultSectorSize = 1024;

  /// Fails with WriteOnceViolation when any covered sector is burned.
  Status Write(uint64_t offset, const Slice& data) override;

  /// A WORM never truncates (burned sectors cannot be un-burned).
  Status Truncate(uint64_t size) override;

  uint32_t write_once_sector_size() const override { return sector_size_; }
  uint32_t sector_size() const { return sector_size_; }

  /// Sectors burned so far (= sectors covered by the high-water mark).
  uint64_t sectors_burned() const {
    const uint64_t size = Size();
    return (size + sector_size_ - 1) / sector_size_;
  }

 private:
  WormFileDevice(int fd, uint64_t size, uint32_t sector_size,
                 CostParams params, bool enable_mmap)
      : FileDevice(fd, size, DeviceKind::kOpticalWorm, params, enable_mmap),
        sector_size_(sector_size) {}

  uint32_t sector_size_;
  /// Serializes the burn check against the size high-water advance.
  std::mutex burn_check_mu_;
};

}  // namespace tsb

#endif  // TSBTREE_STORAGE_WORM_FILE_DEVICE_H_
