#include "tsb/cursor.h"

#include <mutex>
#include <shared_mutex>
#include <utility>

namespace tsb {
namespace tsb_tree {

VersionCursor::VersionCursor(TsbTree* tree, const ReadOptions& options)
    : tree_(tree), opts_(options), t_(tree->ResolveAsOf(options.as_of)) {}

Status VersionCursor::SeekToFirst() { return Seek(Slice()); }

Status VersionCursor::Seek(const Slice& target) {
  end_key_.clear();
  end_inf_ = true;
  range_lo_.clear();
  return SeekInternal(target);
}

Status VersionCursor::SeekRange(const Slice& start,
                                const Slice& end_exclusive) {
  end_key_.assign(end_exclusive.data(), end_exclusive.size());
  end_inf_ = false;
  range_lo_.assign(start.data(), start.size());
  return SeekInternal(start);
}

Status VersionCursor::SeekInternal(const Slice& target) {
  reverse_ = false;
  valid_ = false;
  key_anchored_ = false;
  emitted_any_ = false;
  seek_target_.assign(target.data(), target.size());
  TSB_RETURN_IF_ERROR(BuildStack());
  return Advance();
}

Status VersionCursor::SeekToLast() {
  end_key_.clear();
  end_inf_ = true;
  range_lo_.clear();
  return SeekReverseInternal(Slice(), /*upper_inf=*/true);
}

Status VersionCursor::SeekForPrev(const Slice& upper_exclusive) {
  end_key_.clear();
  end_inf_ = true;
  range_lo_.clear();
  return SeekReverseInternal(upper_exclusive, /*upper_inf=*/false);
}

Status VersionCursor::SeekReverseInternal(const Slice& upper, bool upper_inf) {
  reverse_ = true;
  valid_ = false;
  key_anchored_ = false;
  emitted_any_ = false;
  seek_target_.clear();
  rev_upper_.assign(upper.data(), upper.size());
  rev_upper_inf_ = upper_inf;
  TSB_RETURN_IF_ERROR(BuildStack());
  return Advance();
}

Status VersionCursor::BuildStack() {
  ClearStack();
  const NodeRef root = tree_->root();
  root_page_ = root.page_id;
  static const std::string kNoBound;
  return PushNode(root, kNoBound, kNoBound, true);
}

// ---------------------------------------------------------------- frames

VersionCursor::Frame& VersionCursor::EmplaceFrame() {
  if (depth_ == stack_.size()) stack_.emplace_back();
  Frame& f = stack_[depth_++];
  f.order.clear();  // pins were already dropped when the frame was popped
  return f;
}

void VersionCursor::PopFrame() {
  Frame& f = stack_[--depth_];
  // Drop the pins now (frames beyond depth_ must not hold pages or blobs
  // hostage), but keep the capacity-bearing members: a steady-state scan
  // pushes and pops frames without allocating.
  f.page.Release();
  f.blob.Release();
  f.order.clear();
}

void VersionCursor::ClearStack() {
  while (depth_ > 0) PopFrame();
  rec_count_ = 0;
  rec_idx_ = 0;
}

template <typename DataAccessor>
Status VersionCursor::EmitLeaf(const DataAccessor& node,
                               const std::string& win_lo,
                               const std::string& win_hi,
                               bool win_hi_inf) {
  // Emit per key the latest committed version with ts <= t, clipped to
  // the window and the direction's bounds. Entries are (key, ts) sorted.
  // A view is only guaranteed valid until the accessor's next At (v3
  // historical cells may live in the ref's scratch), so the run key is
  // copied into a reused buffer and the best version is re-fetched by
  // index when the run ends; only emitted records are copied, into reused
  // slots. The buffer is always filled in ascending key order; reverse
  // iteration serves it back-to-front.
  rec_count_ = 0;
  const int n = node.Count();
  int i = 0;
  while (i < n) {
    DataEntryView first;
    TSB_RETURN_IF_ERROR(node.At(i, &first));
    run_key_.assign(first.key.data(), first.key.size());
    bool have_best = false;
    Timestamp best_ts = 0;
    int best_j = -1;
    int j = i;
    for (; j < n; ++j) {
      DataEntryView e;
      TSB_RETURN_IF_ERROR(node.At(j, &e));
      if (e.key != Slice(run_key_)) break;
      if (!e.uncommitted() && e.ts <= t_) {
        have_best = true;
        best_ts = e.ts;
        best_j = j;
      }
    }
    if (have_best) {
      const Slice run_key(run_key_);
      bool in_window = run_key >= Slice(win_lo) &&
                       (win_hi_inf || run_key < Slice(win_hi));
      if (in_window) {
        // Forward emits [seek_target_, end); reverse emits [range floor,
        // rev_upper_) — backward movement may pass below the original
        // seek target, but never below a SeekRange start.
        in_window =
            reverse_ ? (rev_upper_inf_ || run_key < Slice(rev_upper_)) &&
                           run_key >= Slice(range_lo_)
                     : run_key >= Slice(seek_target_) &&
                           (end_inf_ || run_key < Slice(end_key_));
      }
      if (in_window) {
        DataEntryView best;
        TSB_RETURN_IF_ERROR(node.At(best_j, &best));
        if (rec_count_ == records_.size()) records_.emplace_back();
        Record& r = records_[rec_count_++];
        r.key.assign(run_key.data(), run_key.size());
        r.ts = best_ts;
        r.value.assign(best.value.data(), best.value.size());
      }
    }
    i = j;
  }
  rec_idx_ = reverse_ ? rec_count_ : 0;
  return Status::OK();
}

bool VersionCursor::EntrySurvives(const IndexEntryView& e,
                                  const std::string& win_lo,
                                  const std::string& win_hi,
                                  bool win_hi_inf) const {
  if (!e.ContainsTime(t_)) return false;
  // Content floor: the rectangle may contain t_ (time floors stay loose
  // across key splits), but if every committed record in the subtree is
  // younger than t_ there is nothing to emit there.
  if (e.min_ts > t_) return false;
  // Key overlap with the window?
  if (!win_hi_inf && e.key_lo >= Slice(win_hi)) return false;
  if (!e.key_hi_inf && e.key_hi <= Slice(win_lo)) return false;
  if (reverse_) {
    // Skip subtrees entirely at/above the backward anchor or below the
    // range floor.
    if (!rev_upper_inf_ && e.key_lo >= Slice(rev_upper_)) return false;
    if (!range_lo_.empty() && !e.key_hi_inf && e.key_hi <= Slice(range_lo_)) {
      return false;
    }
    return true;
  }
  // Skip subtrees entirely below the seek target or past the end bound.
  if (!e.key_hi_inf && e.key_hi <= Slice(seek_target_)) return false;
  if (!end_inf_ && e.key_lo >= Slice(end_key_)) return false;
  return true;
}

Status VersionCursor::PushIndexFrame(PageHandle page,
                                     const std::string& win_lo,
                                     const std::string& win_hi,
                                     bool win_hi_inf) {
  Frame& f = EmplaceFrame();
  f.historical = false;
  f.win_lo.assign(win_lo);
  f.win_hi.assign(win_hi);
  f.win_hi_inf = win_hi_inf;
  IndexPageRef node(page.data(), tree_->options_.page_size);
  const int n = node.Count();
  for (int i = 0; i < n; ++i) {
    IndexEntryView e;
    Status s = node.AtView(i, &e);
    if (!s.ok()) {
      PopFrame();
      return s;
    }
    if (!EntrySurvives(e, win_lo, win_hi, win_hi_inf)) continue;
    f.order.push_back(i);
  }
  // Stored entries are (key_lo, t_lo)-sorted and the rectangles that
  // contain t_ tile the key space (one per key stripe), hence `order` is
  // already key_lo-ordered — no sort, no copies.
  //
  // Sample the mutation counter while the build latch is still held, then
  // drop the latch but KEEP the pin: later entry reads relatch briefly
  // and compare against this baseline.
  f.page_version = page.version();
  page.Unlatch();
  f.page = std::move(page);
  f.next = reverse_ ? f.order.size() : 0;
  return Status::OK();
}

Status VersionCursor::PushHistIndexFrame(BlobHandle blob,
                                         HistIndexNodeRef node,
                                         const std::string& win_lo,
                                         const std::string& win_hi,
                                         bool win_hi_inf) {
  Frame& f = EmplaceFrame();
  f.historical = true;
  f.win_lo.assign(win_lo);
  f.win_hi.assign(win_hi);
  f.win_hi_inf = win_hi_inf;
  const int n = node.Count();
  for (int i = 0; i < n; ++i) {
    IndexEntryView e;
    Status s = node.AtView(i, &e);
    if (!s.ok()) {
      PopFrame();
      return s;
    }
    if (!EntrySurvives(e, win_lo, win_hi, win_hi_inf)) continue;
    f.order.push_back(i);
  }
  // Survivors are key_lo-ordered for the same reason as above.
  f.blob = std::move(blob);
  f.hist_node = std::move(node);
  f.next = reverse_ ? f.order.size() : 0;
  return Status::OK();
}

Status VersionCursor::PushNode(const NodeRef& ref,
                               const std::string& win_lo,
                               const std::string& win_hi,
                               bool win_hi_inf) {
  if (ref.historical) {
    // Historical nodes: the dispatch pins the blob (shared with the
    // append-store cache / device mapping) and hands us the parsed view
    // ref; index frames keep both alive for the subtree's lifetime. The
    // cursor is a range scan: mapped reads advise sequential access.
    return DispatchHistNode(
        tree_->hist_.get(), &tree_->hist_decodes_, ref.addr,
        [&](BlobHandle&, HistDataNodeRef& node) -> Status {
          return EmitLeaf(node, win_lo, win_hi, win_hi_inf);
        },
        [&](BlobHandle& blob, HistIndexNodeRef& node) -> Status {
          return PushHistIndexFrame(std::move(blob), std::move(node),
                                    win_lo, win_hi, win_hi_inf);
        },
        MakeBlobReadHints(opts_, /*sequential=*/true));
  }
  // Current pages: leaves are emitted under the shared latch; index pages
  // become pinned-but-unlatched frames.
  PageHandle h;
  TSB_RETURN_IF_ERROR(tree_->pool_->FetchShared(ref.page_id, &h));
  const uint32_t page_size = tree_->options_.page_size;
  if (TsbPageLevel(h.data()) == 0) {
    DataPageRef page(h.data(), page_size);
    return EmitLeaf(page, win_lo, win_hi, win_hi_inf);
  }
  return PushIndexFrame(std::move(h), win_lo, win_hi, win_hi_inf);
}

// ---------------------------------------------------------------- walking

bool VersionCursor::StackValid() const {
  // Root moved (GrowRoot): restart conservatively. This is also the only
  // signal for a time split of a LEAF root — a root data page can only be
  // rewritten after GrowRoot gave it a parent, so the root pointer always
  // moves before its content can change structurally.
  if (tree_->root().page_id != root_page_) return false;
  for (size_t i = 0; i < depth_; ++i) {
    const Frame& f = stack_[i];
    if (!f.historical && f.page.version() != f.page_version) return false;
  }
  return true;
}

Status VersionCursor::Restart() {
  // Invalidation fallback: one fresh O(height) descent from the walk's
  // anchor. Forward resumes at the successor of the last emitted key;
  // reverse resumes just below it (rev_upper_ tracks the last emitted key
  // already). The as-of-T state is immutable, so the restarted walk emits
  // exactly the remaining keys: no duplicates, no gaps.
  if (!reverse_ && emitted_any_) {
    seek_target_.assign(key_);
    seek_target_.push_back('\0');
  }
  return BuildStack();
}

Status VersionCursor::ReadFrameEntry(Frame& f, int cell, NodeRef* child,
                                     bool* stale) {
  *stale = false;
  IndexEntryView e;
  if (f.historical) {
    // Immutable blob: no latch needed. The view dies at the frame's next
    // AtView, so the bounds are copied into scratch before any descent.
    TSB_RETURN_IF_ERROR(f.hist_node.AtView(cell, &e));
    entry_lo_.assign(e.key_lo.data(), e.key_lo.size());
    entry_hi_.assign(e.key_hi.data(), e.key_hi.size());
    entry_hi_inf_ = e.key_hi_inf;
    *child = e.child;
    return Status::OK();
  }
  // Mutable page: relatch for the instant of the read and revalidate the
  // mutation counter first. On mismatch the stored slot indices may no
  // longer mean what they did — report stale (the caller re-seeks),
  // never decode.
  f.page.LatchShared();
  if (f.page.version() != f.page_version) {
    f.page.Unlatch();
    *stale = true;
    return Status::OK();
  }
  IndexPageRef page(f.page.data(), tree_->options_.page_size);
  Status s = page.AtView(cell, &e);
  if (s.ok()) {
    entry_lo_.assign(e.key_lo.data(), e.key_lo.size());
    entry_hi_.assign(e.key_hi.data(), e.key_hi.size());
    entry_hi_inf_ = e.key_hi_inf;
    *child = e.child;
  }
  f.page.Unlatch();
  return s;
}

Status VersionCursor::Advance() {
  // Liveness: invalidation restarts are optimistic a bounded number of
  // times, then the walk quiesces the writer (like ScanHistoryRange's
  // final attempt) for the remainder of this Advance — with writer_mu_
  // held no page version can move, so the rebuilt stack validates and
  // the call is guaranteed to emit or conclude. The lock drops when
  // Advance returns; user-paced iteration never holds it.
  constexpr int kOptimisticRestarts = 4;
  int restarts = 0;
  std::unique_lock<std::shared_mutex> quiesce(tree_->writer_mu_, std::defer_lock);
  auto restart = [&]() -> Status {
    if (++restarts > kOptimisticRestarts && !quiesce.owns_lock()) {
      quiesce.lock();
    }
    return Restart();
  };
  for (;;) {
    // Validate the stack before serving from a fresh leaf buffer, before
    // advancing frames, and before concluding the scan. (A partially
    // served buffer needs no re-check: passing the check once proves the
    // buffer was decoded from an unbroken structure, and later splits
    // cannot retroactively change that decode.)
    const bool fresh = reverse_ ? rec_idx_ == rec_count_ : rec_idx_ == 0;
    if (fresh && !StackValid()) {
      TSB_RETURN_IF_ERROR(restart());
      continue;
    }
    if (reverse_ ? rec_idx_ > 0 : rec_idx_ < rec_count_) {
      const Record& r = records_[reverse_ ? --rec_idx_ : rec_idx_++];
      key_ = r.key;
      ts_ = r.ts;
      value_ = r.value;
      if (reverse_) {
        rev_upper_ = key_;  // backward anchor follows the walk
        rev_upper_inf_ = false;
      }
      valid_ = true;
      key_anchored_ = true;
      emitted_any_ = true;
      return Status::OK();
    }
    rec_count_ = 0;
    rec_idx_ = 0;
    if (depth_ == 0) {
      valid_ = false;
      key_anchored_ = false;
      return Status::OK();
    }
    Frame& f = stack_[depth_ - 1];
    if (reverse_ ? f.next == 0 : f.next >= f.order.size()) {
      PopFrame();
      continue;
    }
    const int cell = f.order[reverse_ ? f.next - 1 : f.next];
    NodeRef child;
    bool stale = false;
    TSB_RETURN_IF_ERROR(ReadFrameEntry(f, cell, &child, &stale));
    if (stale) {
      TSB_RETURN_IF_ERROR(restart());
      continue;
    }
    if (reverse_) {
      --f.next;
    } else {
      ++f.next;
    }
    // Child window = entry rectangle's key range clipped by ours. The
    // entry bounds live in scratch (copied out under the latch), so
    // nothing below touches the frame's page or view — and `f` itself
    // must not be touched past PushNode, which may grow the frame pool.
    const Slice e_lo(entry_lo_);
    const Slice lo = e_lo < Slice(f.win_lo) ? Slice(f.win_lo) : e_lo;
    child_lo_.assign(lo.data(), lo.size());
    bool child_hi_inf;
    if (entry_hi_inf_) {
      child_hi_.assign(f.win_hi);
      child_hi_inf = f.win_hi_inf;
    } else {
      const Slice e_hi(entry_hi_);
      const Slice hi =
          f.win_hi_inf || e_hi < Slice(f.win_hi) ? e_hi : Slice(f.win_hi);
      child_hi_.assign(hi.data(), hi.size());
      child_hi_inf = false;
    }
    TSB_RETURN_IF_ERROR(PushNode(child, child_lo_, child_hi_, child_hi_inf));
  }
}

Status VersionCursor::Next() {
  // Version-axis moves may have invalidated the cursor (no older
  // version), but the key axis stays anchored: Next() resumes the scan
  // from the current key. Only a concluded/never-started scan errors.
  if (!key_anchored_) return Status::InvalidArgument("Next on invalid cursor");
  if (reverse_) {
    // Direction switch: one fresh forward descent anchored just past the
    // current key. The SeekRange bounds survive the turn.
    reverse_ = false;
    seek_target_.assign(key_);
    seek_target_.push_back('\0');
    TSB_RETURN_IF_ERROR(BuildStack());
  }
  return Advance();
}

Status VersionCursor::Prev() {
  if (!key_anchored_) return Status::InvalidArgument("Prev on invalid cursor");
  if (!reverse_) {
    // Direction switch: ONE O(height) descent anchored just below the
    // current key; afterwards the backward walk steps frames leftward and
    // is amortized O(1) per key, exactly like Next.
    reverse_ = true;
    rev_upper_.assign(key_);
    rev_upper_inf_ = false;
    TSB_RETURN_IF_ERROR(BuildStack());
  }
  return Advance();
}

// ---------------------------------------------------------------- time axis

Status VersionCursor::NextVersion() {
  if (!valid_) return Status::InvalidArgument("NextVersion on invalid cursor");
  if (ts_ <= 1) {
    valid_ = false;
    return Status::OK();
  }
  return ProbeVersion(ts_ - 1);
}

Status VersionCursor::SeekTimestamp(Timestamp t) {
  if (!valid_) {
    return Status::InvalidArgument("SeekTimestamp on invalid cursor");
  }
  return ProbeVersion(t);
}

Status VersionCursor::ProbeVersion(Timestamp t) {
  // As-of probe for the current key (each probe lands in the node holding
  // that version, so consecutive versions usually share nodes). Only
  // value_/ts_ move; the key-axis stack stays anchored where it was.
  ReadOptions probe = opts_;
  probe.as_of = t;
  Timestamp got_ts = 0;
  Status s = tree_->Get(probe, Slice(key_), &value_, &got_ts);
  if (s.IsNotFound()) {
    valid_ = false;
    return Status::OK();
  }
  TSB_RETURN_IF_ERROR(s);
  ts_ = got_ts;
  valid_ = true;
  return Status::OK();
}

// ---------------------------------------------------------------- shims

HistoryIterator::HistoryIterator(TsbTree* tree, const Slice& key)
    : tree_(tree), key_(key.ToString()) {}

Status HistoryIterator::SeekToNewest() { return Probe(kMaxCommittedTs); }

Status HistoryIterator::Probe(Timestamp t) {
  ReadOptions options;
  options.as_of = t;
  Timestamp got_ts = 0;
  Status s = tree_->Get(options, Slice(key_), &value_, &got_ts);
  if (s.IsNotFound()) {
    valid_ = false;
    return Status::OK();
  }
  TSB_RETURN_IF_ERROR(s);
  ts_ = got_ts;
  valid_ = true;
  return Status::OK();
}

Status HistoryIterator::Next() {
  if (!valid_) return Status::InvalidArgument("Next on invalid iterator");
  if (ts_ <= 1) {
    valid_ = false;
    return Status::OK();
  }
  return Probe(ts_ - 1);
}

}  // namespace tsb_tree
}  // namespace tsb
