#include "tsb/cursor.h"

#include <algorithm>
#include <mutex>

#include "storage/buffer_pool.h"

namespace tsb {
namespace tsb_tree {

VersionCursor::VersionCursor(TsbTree* tree, const ReadOptions& options)
    : tree_(tree), opts_(options), t_(tree->ResolveAsOf(options.as_of)) {}

Status VersionCursor::SeekToFirst() { return Seek(Slice()); }

Status VersionCursor::Seek(const Slice& target) {
  end_key_.clear();
  end_inf_ = true;
  range_lo_.clear();
  return SeekInternal(target);
}

Status VersionCursor::SeekRange(const Slice& start,
                                const Slice& end_exclusive) {
  end_key_ = end_exclusive.ToString();
  end_inf_ = false;
  range_lo_ = start.ToString();
  return SeekInternal(start);
}

Status VersionCursor::SeekInternal(const Slice& target) {
  stack_.clear();
  rec_count_ = 0;
  rec_idx_ = 0;
  valid_ = false;
  key_anchored_ = false;
  emitted_any_ = false;
  seek_target_ = target.ToString();
  epoch_ = tree_->structure_epoch();
  TSB_RETURN_IF_ERROR(
      PushNode(tree_->root(), std::string(), std::string(), true));
  return Advance();
}

template <typename DataAccessor>
Status VersionCursor::EmitLeaf(const DataAccessor& node,
                               const std::string& win_lo,
                               const std::string& win_hi,
                               bool win_hi_inf) {
  // Emit per key the latest committed version with ts <= t, clipped to
  // the window and the seek target. Entries are (key, ts) sorted. A view
  // is only guaranteed valid until the accessor's next At (v3 historical
  // cells may live in the ref's scratch), so the run key is copied into a
  // reused buffer and the best version is re-fetched by index when the
  // run ends; only emitted records are copied, into reused slots.
  rec_count_ = 0;
  rec_idx_ = 0;
  const int n = node.Count();
  int i = 0;
  while (i < n) {
    DataEntryView first;
    TSB_RETURN_IF_ERROR(node.At(i, &first));
    run_key_.assign(first.key.data(), first.key.size());
    bool have_best = false;
    Timestamp best_ts = 0;
    int best_j = -1;
    int j = i;
    for (; j < n; ++j) {
      DataEntryView e;
      TSB_RETURN_IF_ERROR(node.At(j, &e));
      if (e.key != Slice(run_key_)) break;
      if (!e.uncommitted() && e.ts <= t_) {
        have_best = true;
        best_ts = e.ts;
        best_j = j;
      }
    }
    if (have_best) {
      const Slice run_key(run_key_);
      const bool in_window = run_key >= Slice(win_lo) &&
                             (win_hi_inf || run_key < Slice(win_hi)) &&
                             run_key >= Slice(seek_target_) &&
                             (end_inf_ || run_key < Slice(end_key_));
      if (in_window) {
        DataEntryView best;
        TSB_RETURN_IF_ERROR(node.At(best_j, &best));
        if (rec_count_ == records_.size()) records_.emplace_back();
        Record& r = records_[rec_count_++];
        r.key.assign(run_key.data(), run_key.size());
        r.ts = best_ts;
        r.value.assign(best.value.data(), best.value.size());
      }
    }
    i = j;
  }
  return Status::OK();
}

bool VersionCursor::EntrySurvives(const IndexEntryView& e,
                                  const std::string& win_lo,
                                  const std::string& win_hi,
                                  bool win_hi_inf) const {
  if (!e.ContainsTime(t_)) return false;
  // Key overlap with the window?
  if (!win_hi_inf && e.key_lo >= Slice(win_hi)) return false;
  if (!e.key_hi_inf && e.key_hi <= Slice(win_lo)) return false;
  // Skip subtrees entirely below the seek target or past the end bound.
  if (!e.key_hi_inf && e.key_hi <= Slice(seek_target_)) return false;
  if (!end_inf_ && e.key_lo >= Slice(end_key_)) return false;
  return true;
}

Status VersionCursor::PushIndexFrame(const IndexPageRef& node,
                                     const std::string& win_lo,
                                     const std::string& win_hi,
                                     bool win_hi_inf) {
  Frame f;
  f.win_lo = win_lo;
  f.win_hi = win_hi;
  f.win_hi_inf = win_hi_inf;
  const int n = node.Count();
  for (int i = 0; i < n; ++i) {
    IndexEntryView e;
    TSB_RETURN_IF_ERROR(node.AtView(i, &e));
    if (!EntrySurvives(e, win_lo, win_hi, win_hi_inf)) continue;
    f.entries.push_back(e.ToOwned());  // only survivors are materialized
  }
  std::sort(f.entries.begin(), f.entries.end(),
            [](const IndexEntry& a, const IndexEntry& b) {
              return Slice(a.key_lo) < Slice(b.key_lo);
            });
  stack_.push_back(std::move(f));
  return Status::OK();
}

Status VersionCursor::PushHistIndexFrame(BlobHandle blob,
                                         HistIndexNodeRef node,
                                         const std::string& win_lo,
                                         const std::string& win_hi,
                                         bool win_hi_inf) {
  Frame f;
  f.historical = true;
  f.win_lo = win_lo;
  f.win_hi = win_hi;
  f.win_hi_inf = win_hi_inf;
  const int n = node.Count();
  for (int i = 0; i < n; ++i) {
    IndexEntryView e;
    TSB_RETURN_IF_ERROR(node.AtView(i, &e));
    if (!EntrySurvives(e, win_lo, win_hi, win_hi_inf)) continue;
    f.order.push_back(i);
  }
  // Stored entries are (key_lo, t_lo)-sorted and survivors have distinct
  // key_lo (the rectangles tile, so only one cell per key stripe contains
  // t_), hence `order` is already key_lo-ordered — no sort, no copies.
  f.blob = std::move(blob);
  f.hist_node = std::move(node);
  stack_.push_back(std::move(f));
  return Status::OK();
}

Status VersionCursor::PushNode(const NodeRef& ref,
                               const std::string& win_lo,
                               const std::string& win_hi,
                               bool win_hi_inf) {
  if (ref.historical) {
    // Historical nodes: the dispatch pins the blob (shared with the
    // append-store cache / device mapping) and hands us the parsed view
    // ref; index frames keep both alive for the subtree's lifetime. The
    // cursor is a range scan: mapped reads advise sequential access.
    return DispatchHistNode(
        tree_->hist_.get(), &tree_->hist_decodes_, ref.addr,
        [&](BlobHandle&, HistDataNodeRef& node) -> Status {
          return EmitLeaf(node, win_lo, win_hi, win_hi_inf);
        },
        [&](BlobHandle& blob, HistIndexNodeRef& node) -> Status {
          return PushHistIndexFrame(std::move(blob), std::move(node),
                                    win_lo, win_hi, win_hi_inf);
        },
        MakeBlobReadHints(opts_, /*sequential=*/true));
  }
  // Current pages: walk the page views under the shared frame latch.
  PageHandle h;
  TSB_RETURN_IF_ERROR(tree_->pool_->FetchShared(ref.page_id, &h));
  const uint32_t page_size = tree_->options_.page_size;
  if (TsbPageLevel(h.data()) == 0) {
    DataPageRef page(h.data(), page_size);
    return EmitLeaf(page, win_lo, win_hi, win_hi_inf);
  }
  IndexPageRef page(h.data(), page_size);
  return PushIndexFrame(page, win_lo, win_hi, win_hi_inf);
}

Status VersionCursor::Advance() {
  for (;;) {
    // Validate the structure epoch before emitting from a fresh leaf
    // buffer, before descending further, and before concluding the scan.
    // (A partially emitted buffer needs no re-check: passing the check
    // once proves the buffer was decoded from an unbroken structure, and
    // later splits cannot retroactively change that decode.) On mismatch,
    // rebuild the descent stack from the successor of the last emitted
    // key — the as-of-T state is immutable, so the restarted scan resumes
    // exactly where it left off: no duplicates, no gaps.
    if (rec_idx_ == 0 && tree_->structure_epoch() != epoch_) {
      if (emitted_any_) {
        seek_target_ = key_;
        seek_target_.push_back('\0');
      }
      rec_count_ = 0;
      stack_.clear();
      epoch_ = tree_->structure_epoch();
      TSB_RETURN_IF_ERROR(
          PushNode(tree_->root(), std::string(), std::string(), true));
      continue;
    }
    if (rec_idx_ < rec_count_) {
      key_ = records_[rec_idx_].key;
      ts_ = records_[rec_idx_].ts;
      value_ = records_[rec_idx_].value;
      rec_idx_++;
      valid_ = true;
      key_anchored_ = true;
      emitted_any_ = true;
      return Status::OK();
    }
    rec_count_ = 0;
    rec_idx_ = 0;
    if (stack_.empty()) {
      valid_ = false;
      key_anchored_ = false;
      return Status::OK();
    }
    Frame& f = stack_.back();
    const size_t avail = f.historical ? f.order.size() : f.entries.size();
    if (f.next >= avail) {
      stack_.pop_back();
      continue;
    }
    // Copy everything needed out of the frame entry before PushNode: the
    // push may grow the stack (invalidating `f`) and, for historical
    // frames, the next AtView invalidates the current view.
    Slice e_key_lo, e_key_hi;
    bool e_key_hi_inf;
    NodeRef child;
    if (f.historical) {
      IndexEntryView e;
      TSB_RETURN_IF_ERROR(f.hist_node.AtView(f.order[f.next++], &e));
      e_key_lo = e.key_lo;
      e_key_hi = e.key_hi;
      e_key_hi_inf = e.key_hi_inf;
      child = e.child;
    } else {
      const IndexEntry& e = f.entries[f.next++];
      e_key_lo = Slice(e.key_lo);
      e_key_hi = Slice(e.key_hi);
      e_key_hi_inf = e.key_hi_inf;
      child = e.child;
    }
    // Child window = entry rectangle's key range clipped by ours. The
    // slices stay valid here: nothing touches the frame or the view
    // between the reads above and the assigns below.
    std::string child_lo, child_hi;
    bool child_hi_inf;
    const Slice lo = e_key_lo < Slice(f.win_lo) ? Slice(f.win_lo) : e_key_lo;
    child_lo.assign(lo.data(), lo.size());
    if (e_key_hi_inf) {
      child_hi = f.win_hi;
      child_hi_inf = f.win_hi_inf;
    } else {
      const Slice hi = f.win_hi_inf || e_key_hi < Slice(f.win_hi)
                           ? e_key_hi
                           : Slice(f.win_hi);
      child_hi.assign(hi.data(), hi.size());
      child_hi_inf = false;
    }
    TSB_RETURN_IF_ERROR(PushNode(child, child_lo, child_hi, child_hi_inf));
  }
}

Status VersionCursor::Next() {
  // Version-axis moves may have invalidated the cursor (no older
  // version), but the key axis stays anchored: Next() resumes the scan
  // from the current key. Only a concluded/never-started scan errors.
  if (!key_anchored_) return Status::InvalidArgument("Next on invalid cursor");
  return Advance();
}

// ---------------------------------------------------------------- prev

Status VersionCursor::Prev() {
  if (!key_anchored_) return Status::InvalidArgument("Prev on invalid cursor");
  // Find the predecessor with a fresh descent, then re-anchor the forward
  // stack exactly there (the predecessor has a version at t_, so the seek
  // lands on it) — Next() afterwards continues normally.
  const std::string upper = key_;
  bool found = false;
  std::string pred_key;
  TSB_RETURN_IF_ERROR(PrevLookup(Slice(upper), &found, &pred_key));
  if (!found) {
    valid_ = false;
    key_anchored_ = false;  // walked off the front: the scan is over
    return Status::OK();
  }
  return SeekInternal(Slice(pred_key));
}

Status VersionCursor::PrevLookup(const Slice& upper, bool* found,
                                 std::string* pred_key) {
  // The descent holds no latch across levels, so a concurrent split could
  // move entries underneath it. Optimistic epoch validation, exactly like
  // ScanHistoryRange: retry on change, quiesce the writer on the last
  // attempt. The answer itself is stable — the as-of state is immutable.
  constexpr int kOptimisticAttempts = 4;
  for (int attempt = 0; attempt <= kOptimisticAttempts; ++attempt) {
    const bool quiesce = attempt == kOptimisticAttempts;
    std::unique_lock<std::mutex> wl(tree_->writer_mu_, std::defer_lock);
    if (quiesce) wl.lock();
    const uint64_t epoch = tree_->structure_epoch();
    *found = false;
    TSB_RETURN_IF_ERROR(PrevInNode(tree_->root(), upper, found, pred_key));
    if (quiesce || tree_->structure_epoch() == epoch) return Status::OK();
  }
  return Status::Corruption("unreachable: quiesced Prev did not return");
}

Status VersionCursor::PrevInNode(const NodeRef& ref, const Slice& upper,
                                 bool* found, std::string* pred_key) {
  // Children whose rectangle contains t_ tile the key space; visiting
  // them in descending key_lo order makes the first hit the predecessor.
  std::vector<NodeRef> kids;  // empty after a leaf visit: loop is a no-op
  if (ref.historical) {
    TSB_RETURN_IF_ERROR(DispatchHistNode(
        tree_->hist_.get(), &tree_->hist_decodes_, ref.addr,
        [&](BlobHandle&, HistDataNodeRef& node) -> Status {
          return PrevInLeaf(node, upper, found, pred_key);
        },
        [&](BlobHandle&, HistIndexNodeRef& node) -> Status {
          // Copy the POD child refs out first: the recursion below would
          // reuse the ref's scratch, and stored order is (key_lo, t_lo)
          // ascending, so a reverse walk is descending key order.
          for (int i = 0; i < node.Count(); ++i) {
            IndexEntryView e;
            TSB_RETURN_IF_ERROR(node.AtView(i, &e));
            if (!e.ContainsTime(t_)) continue;
            if (e.key_lo >= upper) continue;  // subtree has no key < upper
            kids.push_back(e.child);
          }
          return Status::OK();
        },
        MakeBlobReadHints(opts_)));
  } else {
    PageHandle h;
    TSB_RETURN_IF_ERROR(tree_->pool_->FetchShared(ref.page_id, &h));
    const uint32_t page_size = tree_->options_.page_size;
    if (TsbPageLevel(h.data()) == 0) {
      DataPageRef page(h.data(), page_size);
      return PrevInLeaf(page, upper, found, pred_key);
    }
    IndexPageRef page(h.data(), page_size);
    for (int i = 0; i < page.Count(); ++i) {
      IndexEntryView e;
      TSB_RETURN_IF_ERROR(page.AtView(i, &e));
      if (!e.ContainsTime(t_)) continue;
      if (e.key_lo >= upper) continue;
      kids.push_back(e.child);
    }
    // The latch drops before recursing (holding it across an arbitrary
    // subtree walk could stall the writer); PrevLookup's epoch check
    // catches any restructuring this opens the door to.
  }
  for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
    TSB_RETURN_IF_ERROR(PrevInNode(*it, upper, found, pred_key));
    if (*found) return Status::OK();
  }
  return Status::OK();
}

namespace {
// Uniform lower-bound shim over the two leaf accessors.
Status NodeLowerBound(const DataPageRef& node, const Slice& key, Timestamp t,
                      int* pos) {
  *pos = node.LowerBound(key, t);
  return Status::OK();
}
Status NodeLowerBound(const HistDataNodeRef& node, const Slice& key,
                      Timestamp t, int* pos) {
  return node.LowerBound(key, t, pos);
}
}  // namespace

template <typename DataAccessor>
Status VersionCursor::PrevInLeaf(const DataAccessor& node, const Slice& upper,
                                 bool* found, std::string* pred_key) {
  // Entries are (key asc, ts asc); everything before LowerBound(upper, 0)
  // has key < upper. Walk key runs backward (largest key first); within a
  // run the first committed ts <= t_ seen while walking down is the
  // newest one, so the first qualifying run is the predecessor.
  int pos = 0;
  TSB_RETURN_IF_ERROR(NodeLowerBound(node, upper, kMinTimestamp, &pos));
  int j = pos - 1;
  if (j < 0) return Status::OK();
  // Each entry decodes exactly once: when the inner walk crosses a run
  // boundary, `e` already holds the next (smaller) run's newest entry.
  DataEntryView e;
  TSB_RETURN_IF_ERROR(node.At(j, &e));
  while (j >= 0) {
    run_key_.assign(e.key.data(), e.key.size());
    if (!range_lo_.empty() && Slice(run_key_) < Slice(range_lo_)) {
      return Status::OK();  // below the range floor; smaller keys only left
    }
    // Walk the run downward (descending ts): the first committed version
    // at or before t_ is the newest qualifying one.
    for (;;) {
      if (!e.uncommitted() && e.ts <= t_) {
        *found = true;
        *pred_key = run_key_;
        return Status::OK();
      }
      if (--j < 0) return Status::OK();
      TSB_RETURN_IF_ERROR(node.At(j, &e));
      if (e.key != Slice(run_key_)) break;  // next run's head is in `e`
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------- time axis

Status VersionCursor::NextVersion() {
  if (!valid_) return Status::InvalidArgument("NextVersion on invalid cursor");
  if (ts_ <= 1) {
    valid_ = false;
    return Status::OK();
  }
  return ProbeVersion(ts_ - 1);
}

Status VersionCursor::SeekTimestamp(Timestamp t) {
  if (!valid_) {
    return Status::InvalidArgument("SeekTimestamp on invalid cursor");
  }
  return ProbeVersion(t);
}

Status VersionCursor::ProbeVersion(Timestamp t) {
  // As-of probe for the current key (each probe lands in the node holding
  // that version, so consecutive versions usually share nodes). Only
  // value_/ts_ move; the key-axis stack stays anchored where it was.
  ReadOptions probe = opts_;
  probe.as_of = t;
  Timestamp got_ts = 0;
  Status s = tree_->Get(probe, Slice(key_), &value_, &got_ts);
  if (s.IsNotFound()) {
    valid_ = false;
    return Status::OK();
  }
  TSB_RETURN_IF_ERROR(s);
  ts_ = got_ts;
  valid_ = true;
  return Status::OK();
}

// ---------------------------------------------------------------- shims

HistoryIterator::HistoryIterator(TsbTree* tree, const Slice& key)
    : tree_(tree), key_(key.ToString()) {}

Status HistoryIterator::SeekToNewest() { return Probe(kMaxCommittedTs); }

Status HistoryIterator::Probe(Timestamp t) {
  ReadOptions options;
  options.as_of = t;
  Timestamp got_ts = 0;
  Status s = tree_->Get(options, Slice(key_), &value_, &got_ts);
  if (s.IsNotFound()) {
    valid_ = false;
    return Status::OK();
  }
  TSB_RETURN_IF_ERROR(s);
  ts_ = got_ts;
  valid_ = true;
  return Status::OK();
}

Status HistoryIterator::Next() {
  if (!valid_) return Status::InvalidArgument("Next on invalid iterator");
  if (ts_ <= 1) {
    valid_ = false;
    return Status::OK();
  }
  return Probe(ts_ - 1);
}

}  // namespace tsb_tree
}  // namespace tsb
