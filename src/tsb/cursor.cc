#include "tsb/cursor.h"

#include <algorithm>

#include "storage/buffer_pool.h"

namespace tsb {
namespace tsb_tree {

namespace {

// max(a, b) on key strings.
const std::string& MaxKey(const std::string& a, const std::string& b) {
  return Slice(a) < Slice(b) ? b : a;
}

}  // namespace

SnapshotIterator::SnapshotIterator(TsbTree* tree, Timestamp t)
    : tree_(tree), t_(t) {}

Status SnapshotIterator::SeekToFirst() { return Seek(Slice()); }

Status SnapshotIterator::SeekRange(const Slice& start,
                                   const Slice& end_exclusive) {
  end_key_ = end_exclusive.ToString();
  end_inf_ = false;
  return Seek(start);
}

Status SnapshotIterator::Seek(const Slice& target) {
  stack_.clear();
  rec_count_ = 0;
  rec_idx_ = 0;
  valid_ = false;
  emitted_any_ = false;
  seek_target_ = target.ToString();
  epoch_ = tree_->structure_epoch();
  TSB_RETURN_IF_ERROR(
      PushNode(tree_->root(), std::string(), std::string(), true));
  return Advance();
}

template <typename DataAccessor>
Status SnapshotIterator::EmitLeaf(const DataAccessor& node,
                                  const std::string& win_lo,
                                  const std::string& win_hi,
                                  bool win_hi_inf) {
  // Emit per key the latest committed version with ts <= t, clipped to
  // the window and the seek target. Entries are (key, ts) sorted. Views
  // stay valid for the whole loop (the caller holds the page latch or the
  // blob pin); only emitted records are copied, into reused slots.
  rec_count_ = 0;
  rec_idx_ = 0;
  const int n = node.Count();
  int i = 0;
  while (i < n) {
    DataEntryView first;
    TSB_RETURN_IF_ERROR(node.At(i, &first));
    const Slice run_key = first.key;
    bool have_best = false;
    Timestamp best_ts = 0;
    Slice best_value;
    int j = i;
    for (; j < n; ++j) {
      DataEntryView e;
      TSB_RETURN_IF_ERROR(node.At(j, &e));
      if (e.key != run_key) break;
      if (!e.uncommitted() && e.ts <= t_) {
        have_best = true;
        best_ts = e.ts;
        best_value = e.value;
      }
    }
    if (have_best) {
      const bool in_window = run_key >= Slice(win_lo) &&
                             (win_hi_inf || run_key < Slice(win_hi)) &&
                             run_key >= Slice(seek_target_) &&
                             (end_inf_ || run_key < Slice(end_key_));
      if (in_window) {
        if (rec_count_ == records_.size()) records_.emplace_back();
        Record& r = records_[rec_count_++];
        r.key.assign(run_key.data(), run_key.size());
        r.ts = best_ts;
        r.value.assign(best_value.data(), best_value.size());
      }
    }
    i = j;
  }
  return Status::OK();
}

template <typename IndexAccessor>
Status SnapshotIterator::PushIndexFrame(const IndexAccessor& node,
                                        const std::string& win_lo,
                                        const std::string& win_hi,
                                        bool win_hi_inf) {
  Frame f;
  f.win_lo = win_lo;
  f.win_hi = win_hi;
  f.win_hi_inf = win_hi_inf;
  const int n = node.Count();
  for (int i = 0; i < n; ++i) {
    IndexEntryView e;
    TSB_RETURN_IF_ERROR(node.AtView(i, &e));
    if (!e.ContainsTime(t_)) continue;
    // Key overlap with the window?
    if (!win_hi_inf && e.key_lo >= Slice(win_hi)) continue;
    if (!e.key_hi_inf && e.key_hi <= Slice(win_lo)) continue;
    // Skip subtrees entirely below the seek target or past the end bound.
    if (!e.key_hi_inf && e.key_hi <= Slice(seek_target_)) continue;
    if (!end_inf_ && e.key_lo >= Slice(end_key_)) continue;
    f.entries.push_back(e.ToOwned());  // only survivors are materialized
  }
  std::sort(f.entries.begin(), f.entries.end(),
            [](const IndexEntry& a, const IndexEntry& b) {
              return Slice(a.key_lo) < Slice(b.key_lo);
            });
  stack_.push_back(std::move(f));
  return Status::OK();
}

Status SnapshotIterator::PushNode(const NodeRef& ref,
                                  const std::string& win_lo,
                                  const std::string& win_hi,
                                  bool win_hi_inf) {
  if (ref.historical) {
    // Historical nodes: pin the blob (shared with the append-store cache)
    // and walk it through view refs — nothing is materialized besides the
    // emitted records / surviving frame entries.
    BlobHandle blob;
    TSB_RETURN_IF_ERROR(tree_->ReadHistBlob(ref.addr, &blob));
    uint8_t level = 0;
    TSB_RETURN_IF_ERROR(HistNodeLevel(blob.data(), &level));
    if (level == 0) {
      HistDataNodeRef node;
      TSB_RETURN_IF_ERROR(node.Parse(blob.data()));
      return EmitLeaf(node, win_lo, win_hi, win_hi_inf);
    }
    HistIndexNodeRef node;
    TSB_RETURN_IF_ERROR(node.Parse(blob.data()));
    return PushIndexFrame(node, win_lo, win_hi, win_hi_inf);
  }
  // Current pages: walk the page views under the shared frame latch.
  PageHandle h;
  TSB_RETURN_IF_ERROR(tree_->pool_->FetchShared(ref.page_id, &h));
  const uint32_t page_size = tree_->options_.page_size;
  if (TsbPageLevel(h.data()) == 0) {
    DataPageRef page(h.data(), page_size);
    return EmitLeaf(page, win_lo, win_hi, win_hi_inf);
  }
  IndexPageRef page(h.data(), page_size);
  return PushIndexFrame(page, win_lo, win_hi, win_hi_inf);
}

Status SnapshotIterator::Advance() {
  for (;;) {
    // Validate the structure epoch before emitting from a fresh leaf
    // buffer, before descending further, and before concluding the scan.
    // (A partially emitted buffer needs no re-check: passing the check
    // once proves the buffer was decoded from an unbroken structure, and
    // later splits cannot retroactively change that decode.) On mismatch,
    // rebuild the descent stack from the successor of the last emitted
    // key — the as-of-T state is immutable, so the restarted scan resumes
    // exactly where it left off: no duplicates, no gaps.
    if (rec_idx_ == 0 && tree_->structure_epoch() != epoch_) {
      if (emitted_any_) {
        seek_target_ = key_;
        seek_target_.push_back('\0');
      }
      rec_count_ = 0;
      stack_.clear();
      epoch_ = tree_->structure_epoch();
      TSB_RETURN_IF_ERROR(
          PushNode(tree_->root(), std::string(), std::string(), true));
      continue;
    }
    if (rec_idx_ < rec_count_) {
      key_ = records_[rec_idx_].key;
      ts_ = records_[rec_idx_].ts;
      value_ = records_[rec_idx_].value;
      rec_idx_++;
      valid_ = true;
      emitted_any_ = true;
      return Status::OK();
    }
    rec_count_ = 0;
    rec_idx_ = 0;
    if (stack_.empty()) {
      valid_ = false;
      return Status::OK();
    }
    Frame& f = stack_.back();
    if (f.next >= f.entries.size()) {
      stack_.pop_back();
      continue;
    }
    const IndexEntry e = f.entries[f.next++];
    // Child window = entry rectangle's key range clipped by ours.
    std::string child_lo = MaxKey(f.win_lo, e.key_lo);
    std::string child_hi;
    bool child_hi_inf;
    if (e.key_hi_inf) {
      child_hi = f.win_hi;
      child_hi_inf = f.win_hi_inf;
    } else if (f.win_hi_inf) {
      child_hi = e.key_hi;
      child_hi_inf = false;
    } else {
      child_hi = Slice(e.key_hi) < Slice(f.win_hi) ? e.key_hi : f.win_hi;
      child_hi_inf = false;
    }
    TSB_RETURN_IF_ERROR(
        PushNode(e.child, child_lo, child_hi, child_hi_inf));
  }
}

Status SnapshotIterator::Next() {
  if (!valid_) return Status::InvalidArgument("Next on invalid iterator");
  return Advance();
}

HistoryIterator::HistoryIterator(TsbTree* tree, const Slice& key)
    : tree_(tree), key_(key.ToString()) {}

Status HistoryIterator::SeekToNewest() { return Probe(kMaxCommittedTs); }

Status HistoryIterator::Probe(Timestamp t) {
  Timestamp got_ts = 0;
  Status s = tree_->GetAsOf(Slice(key_), t, &value_, &got_ts);
  if (s.IsNotFound()) {
    valid_ = false;
    return Status::OK();
  }
  TSB_RETURN_IF_ERROR(s);
  ts_ = got_ts;
  valid_ = true;
  return Status::OK();
}

Status HistoryIterator::Next() {
  if (!valid_) return Status::InvalidArgument("Next on invalid iterator");
  if (ts_ <= 1) {
    valid_ = false;
    return Status::OK();
  }
  return Probe(ts_ - 1);
}

}  // namespace tsb_tree
}  // namespace tsb
