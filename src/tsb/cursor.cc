#include "tsb/cursor.h"

#include <algorithm>

#include "storage/buffer_pool.h"

namespace tsb {
namespace tsb_tree {

SnapshotIterator::SnapshotIterator(TsbTree* tree, Timestamp t)
    : tree_(tree), t_(t) {}

Status SnapshotIterator::SeekToFirst() { return Seek(Slice()); }

Status SnapshotIterator::SeekRange(const Slice& start,
                                   const Slice& end_exclusive) {
  end_key_ = end_exclusive.ToString();
  end_inf_ = false;
  return Seek(start);
}

Status SnapshotIterator::Seek(const Slice& target) {
  stack_.clear();
  rec_count_ = 0;
  rec_idx_ = 0;
  valid_ = false;
  emitted_any_ = false;
  seek_target_ = target.ToString();
  epoch_ = tree_->structure_epoch();
  TSB_RETURN_IF_ERROR(
      PushNode(tree_->root(), std::string(), std::string(), true));
  return Advance();
}

template <typename DataAccessor>
Status SnapshotIterator::EmitLeaf(const DataAccessor& node,
                                  const std::string& win_lo,
                                  const std::string& win_hi,
                                  bool win_hi_inf) {
  // Emit per key the latest committed version with ts <= t, clipped to
  // the window and the seek target. Entries are (key, ts) sorted. A view
  // is only guaranteed valid until the accessor's next At (v3 historical
  // cells may live in the ref's scratch), so the run key is copied into a
  // reused buffer and the best version is re-fetched by index when the
  // run ends; only emitted records are copied, into reused slots.
  rec_count_ = 0;
  rec_idx_ = 0;
  const int n = node.Count();
  int i = 0;
  while (i < n) {
    DataEntryView first;
    TSB_RETURN_IF_ERROR(node.At(i, &first));
    run_key_.assign(first.key.data(), first.key.size());
    bool have_best = false;
    Timestamp best_ts = 0;
    int best_j = -1;
    int j = i;
    for (; j < n; ++j) {
      DataEntryView e;
      TSB_RETURN_IF_ERROR(node.At(j, &e));
      if (e.key != Slice(run_key_)) break;
      if (!e.uncommitted() && e.ts <= t_) {
        have_best = true;
        best_ts = e.ts;
        best_j = j;
      }
    }
    if (have_best) {
      const Slice run_key(run_key_);
      const bool in_window = run_key >= Slice(win_lo) &&
                             (win_hi_inf || run_key < Slice(win_hi)) &&
                             run_key >= Slice(seek_target_) &&
                             (end_inf_ || run_key < Slice(end_key_));
      if (in_window) {
        DataEntryView best;
        TSB_RETURN_IF_ERROR(node.At(best_j, &best));
        if (rec_count_ == records_.size()) records_.emplace_back();
        Record& r = records_[rec_count_++];
        r.key.assign(run_key.data(), run_key.size());
        r.ts = best_ts;
        r.value.assign(best.value.data(), best.value.size());
      }
    }
    i = j;
  }
  return Status::OK();
}

bool SnapshotIterator::EntrySurvives(const IndexEntryView& e,
                                     const std::string& win_lo,
                                     const std::string& win_hi,
                                     bool win_hi_inf) const {
  if (!e.ContainsTime(t_)) return false;
  // Key overlap with the window?
  if (!win_hi_inf && e.key_lo >= Slice(win_hi)) return false;
  if (!e.key_hi_inf && e.key_hi <= Slice(win_lo)) return false;
  // Skip subtrees entirely below the seek target or past the end bound.
  if (!e.key_hi_inf && e.key_hi <= Slice(seek_target_)) return false;
  if (!end_inf_ && e.key_lo >= Slice(end_key_)) return false;
  return true;
}

Status SnapshotIterator::PushIndexFrame(const IndexPageRef& node,
                                        const std::string& win_lo,
                                        const std::string& win_hi,
                                        bool win_hi_inf) {
  Frame f;
  f.win_lo = win_lo;
  f.win_hi = win_hi;
  f.win_hi_inf = win_hi_inf;
  const int n = node.Count();
  for (int i = 0; i < n; ++i) {
    IndexEntryView e;
    TSB_RETURN_IF_ERROR(node.AtView(i, &e));
    if (!EntrySurvives(e, win_lo, win_hi, win_hi_inf)) continue;
    f.entries.push_back(e.ToOwned());  // only survivors are materialized
  }
  std::sort(f.entries.begin(), f.entries.end(),
            [](const IndexEntry& a, const IndexEntry& b) {
              return Slice(a.key_lo) < Slice(b.key_lo);
            });
  stack_.push_back(std::move(f));
  return Status::OK();
}

Status SnapshotIterator::PushHistIndexFrame(BlobHandle blob,
                                            HistIndexNodeRef node,
                                            const std::string& win_lo,
                                            const std::string& win_hi,
                                            bool win_hi_inf) {
  Frame f;
  f.historical = true;
  f.win_lo = win_lo;
  f.win_hi = win_hi;
  f.win_hi_inf = win_hi_inf;
  const int n = node.Count();
  for (int i = 0; i < n; ++i) {
    IndexEntryView e;
    TSB_RETURN_IF_ERROR(node.AtView(i, &e));
    if (!EntrySurvives(e, win_lo, win_hi, win_hi_inf)) continue;
    f.order.push_back(i);
  }
  // Stored entries are (key_lo, t_lo)-sorted and survivors have distinct
  // key_lo (the rectangles tile, so only one cell per key stripe contains
  // t_), hence `order` is already key_lo-ordered — no sort, no copies.
  f.blob = std::move(blob);
  f.hist_node = std::move(node);
  stack_.push_back(std::move(f));
  return Status::OK();
}

Status SnapshotIterator::PushNode(const NodeRef& ref,
                                  const std::string& win_lo,
                                  const std::string& win_hi,
                                  bool win_hi_inf) {
  if (ref.historical) {
    // Historical nodes: the dispatch pins the blob (shared with the
    // append-store cache / device mapping) and hands us the parsed view
    // ref; index frames keep both alive for the subtree's lifetime.
    return DispatchHistNode(
        tree_->hist_.get(), &tree_->hist_decodes_, ref.addr,
        [&](BlobHandle&, HistDataNodeRef& node) -> Status {
          return EmitLeaf(node, win_lo, win_hi, win_hi_inf);
        },
        [&](BlobHandle& blob, HistIndexNodeRef& node) -> Status {
          return PushHistIndexFrame(std::move(blob), std::move(node),
                                    win_lo, win_hi, win_hi_inf);
        });
  }
  // Current pages: walk the page views under the shared frame latch.
  PageHandle h;
  TSB_RETURN_IF_ERROR(tree_->pool_->FetchShared(ref.page_id, &h));
  const uint32_t page_size = tree_->options_.page_size;
  if (TsbPageLevel(h.data()) == 0) {
    DataPageRef page(h.data(), page_size);
    return EmitLeaf(page, win_lo, win_hi, win_hi_inf);
  }
  IndexPageRef page(h.data(), page_size);
  return PushIndexFrame(page, win_lo, win_hi, win_hi_inf);
}

Status SnapshotIterator::Advance() {
  for (;;) {
    // Validate the structure epoch before emitting from a fresh leaf
    // buffer, before descending further, and before concluding the scan.
    // (A partially emitted buffer needs no re-check: passing the check
    // once proves the buffer was decoded from an unbroken structure, and
    // later splits cannot retroactively change that decode.) On mismatch,
    // rebuild the descent stack from the successor of the last emitted
    // key — the as-of-T state is immutable, so the restarted scan resumes
    // exactly where it left off: no duplicates, no gaps.
    if (rec_idx_ == 0 && tree_->structure_epoch() != epoch_) {
      if (emitted_any_) {
        seek_target_ = key_;
        seek_target_.push_back('\0');
      }
      rec_count_ = 0;
      stack_.clear();
      epoch_ = tree_->structure_epoch();
      TSB_RETURN_IF_ERROR(
          PushNode(tree_->root(), std::string(), std::string(), true));
      continue;
    }
    if (rec_idx_ < rec_count_) {
      key_ = records_[rec_idx_].key;
      ts_ = records_[rec_idx_].ts;
      value_ = records_[rec_idx_].value;
      rec_idx_++;
      valid_ = true;
      emitted_any_ = true;
      return Status::OK();
    }
    rec_count_ = 0;
    rec_idx_ = 0;
    if (stack_.empty()) {
      valid_ = false;
      return Status::OK();
    }
    Frame& f = stack_.back();
    const size_t avail = f.historical ? f.order.size() : f.entries.size();
    if (f.next >= avail) {
      stack_.pop_back();
      continue;
    }
    // Copy everything needed out of the frame entry before PushNode: the
    // push may grow the stack (invalidating `f`) and, for historical
    // frames, the next AtView invalidates the current view.
    Slice e_key_lo, e_key_hi;
    bool e_key_hi_inf;
    NodeRef child;
    if (f.historical) {
      IndexEntryView e;
      TSB_RETURN_IF_ERROR(f.hist_node.AtView(f.order[f.next++], &e));
      e_key_lo = e.key_lo;
      e_key_hi = e.key_hi;
      e_key_hi_inf = e.key_hi_inf;
      child = e.child;
    } else {
      const IndexEntry& e = f.entries[f.next++];
      e_key_lo = Slice(e.key_lo);
      e_key_hi = Slice(e.key_hi);
      e_key_hi_inf = e.key_hi_inf;
      child = e.child;
    }
    // Child window = entry rectangle's key range clipped by ours. The
    // slices stay valid here: nothing touches the frame or the view
    // between the reads above and the assigns below.
    std::string child_lo, child_hi;
    bool child_hi_inf;
    const Slice lo = e_key_lo < Slice(f.win_lo) ? Slice(f.win_lo) : e_key_lo;
    child_lo.assign(lo.data(), lo.size());
    if (e_key_hi_inf) {
      child_hi = f.win_hi;
      child_hi_inf = f.win_hi_inf;
    } else {
      const Slice hi = f.win_hi_inf || e_key_hi < Slice(f.win_hi)
                           ? e_key_hi
                           : Slice(f.win_hi);
      child_hi.assign(hi.data(), hi.size());
      child_hi_inf = false;
    }
    TSB_RETURN_IF_ERROR(PushNode(child, child_lo, child_hi, child_hi_inf));
  }
}

Status SnapshotIterator::Next() {
  if (!valid_) return Status::InvalidArgument("Next on invalid iterator");
  return Advance();
}

HistoryIterator::HistoryIterator(TsbTree* tree, const Slice& key)
    : tree_(tree), key_(key.ToString()) {}

Status HistoryIterator::SeekToNewest() { return Probe(kMaxCommittedTs); }

Status HistoryIterator::Probe(Timestamp t) {
  Timestamp got_ts = 0;
  Status s = tree_->GetAsOf(Slice(key_), t, &value_, &got_ts);
  if (s.IsNotFound()) {
    valid_ = false;
    return Status::OK();
  }
  TSB_RETURN_IF_ERROR(s);
  ts_ = got_ts;
  valid_ = true;
  return Status::OK();
}

Status HistoryIterator::Next() {
  if (!valid_) return Status::InvalidArgument("Next on invalid iterator");
  if (ts_ <= 1) {
    valid_ = false;
    return Status::OK();
  }
  return Probe(ts_ - 1);
}

}  // namespace tsb_tree
}  // namespace tsb
