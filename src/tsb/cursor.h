// VersionCursor: the one traversal surface over the TSB-tree's key x time
// rectangle.
//
// A cursor is pinned at one as-of time (ReadOptions::as_of). Along the
// KEY axis it behaves like the paper's snapshot query (section 2.5):
// Seek/SeekToFirst/Next/Prev walk the database state as of that time in
// key order. Along the TIME axis, NextVersion/SeekTimestamp move through
// the committed versions of the *current* key — the version-history
// query — without disturbing the key-axis position, so a scan can stop
// at any record and drill into its past.
//
// Key movement — forward AND backward — uses one descent stack of
// zero-copy frames. Historical frames keep the node blob pinned and
// re-read surviving entry views on demand (blobs are immutable).
// Current-page frames keep the page PINNED but NOT latched, plus the
// frame's mutation counter sampled under a shared latch: every entry read
// relatches for an instant, revalidates the counter, and on mismatch the
// whole walk re-seeks from its anchor key — so no latch is ever held
// across user-paced iteration, and nothing is materialized per entry.
// Because index keyspace splits duplicate straddling historical
// references into both siblings (section 3.5 rule 4), the walk clips
// every child's emission to the intersection of the ancestor entries' key
// ranges — each region is visited exactly once, in either direction.
//
// Prev is a real backward walk: the first Prev after forward movement
// rebuilds the stack in reverse mode with ONE O(height) descent anchored
// just below the current key; every further Prev steps frames leftward
// and is amortized O(1) like Next. The O(height) descent recurs only as
// the invalidation fallback (a frame's page version moved) and on
// direction switches.
//
// The legacy iterators are thin shims: SnapshotIterator is an alias for
// VersionCursor (declared in tsb_tree.h) and HistoryIterator drives the
// cursor's time axis.
#ifndef TSBTREE_TSB_CURSOR_H_
#define TSBTREE_TSB_CURSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "tsb/index_page.h"
#include "tsb/tsb_tree.h"

namespace tsb {
namespace tsb_tree {

/// Usage:
///   auto c = tree->NewCursor({.as_of = t});
///   for (c->SeekToFirst(); c->Valid(); ) {                     // key axis
///     for (; c->Valid(); c->NextVersion()) { ... }             // time axis
///     c->Next();  // resumes the key scan even though the version walk
///   }             // ran the cursor dry — the key axis stays anchored
///
/// Safe under a concurrent updater: current-page frames revalidate a
/// per-page mutation counter before every use; when a split rewrote a
/// page underneath the scan the cursor transparently re-seeks to the
/// successor (predecessor, when walking backward) of the last emitted
/// key. Because the as-of-T state cannot change (new commits always carry
/// larger timestamps), the restarted scan emits exactly the remaining
/// keys — no duplicates, no gaps.
///
/// Lifetime: frames pin buffer-pool pages and historical blobs, so a
/// cursor must not outlive its tree.
class VersionCursor {
 public:
  VersionCursor(TsbTree* tree, const ReadOptions& options);

  // ---- key axis (at the cursor's as-of time) ----

  Status SeekToFirst();
  /// Positions at the first key >= target (clearing any range bounds).
  Status Seek(const Slice& target);
  /// Positions at the LAST key of the as-of state (clearing any range
  /// bounds), walking backward: a following Prev yields the
  /// second-to-last key. The k-way merged sharded cursor needs this to
  /// anchor children that have no key >= a forward target.
  Status SeekToLast();
  /// Positions at the largest key STRICTLY BELOW `upper_exclusive`
  /// (clearing any range bounds), walking backward — the reverse twin of
  /// Seek, with the same exclusive-upper convention as Prev's anchor.
  Status SeekForPrev(const Slice& upper_exclusive);
  /// Scans only keys in [start, end_exclusive).
  Status SeekRange(const Slice& start, const Slice& end_exclusive);
  /// Advances to the next key.
  Status Next();
  /// Moves to the largest key smaller than the current one (that has a
  /// version at the as-of time and lies within the range bounds);
  /// invalidates the cursor at the front. The first Prev after forward
  /// movement re-anchors with one O(height) descent; consecutive Prevs
  /// walk the descent stack backward and are amortized O(1) like Next.
  Status Prev();

  // ---- time axis (of the current key) ----

  /// Moves to the next-older committed version of the current key;
  /// invalidates the cursor when none remains. The key-axis position is
  /// untouched: a later Next() resumes the key scan.
  Status NextVersion();
  /// Positions at the current key's version valid at time `t` (any
  /// committed time, including times newer than the cursor's as-of);
  /// invalidates the cursor if the key has no version at `t`.
  Status SeekTimestamp(Timestamp t);

  bool Valid() const { return valid_; }
  Slice key() const { return Slice(key_); }
  Slice value() const { return Slice(value_); }
  Timestamp ts() const { return ts_; }
  /// The time the key axis reads at (resolved; fixed at construction).
  Timestamp as_of() const { return t_; }

 private:
  /// One level of the descent stack — zero-copy in BOTH axes' node kinds.
  /// Historical frames keep the blob pinned and re-read surviving entry
  /// views on demand (immutable). Current-page frames keep the page
  /// pinned but UNLATCHED plus the mutation counter sampled when the
  /// frame was built; entry reads relatch briefly and revalidate it.
  /// `order` holds the surviving cell/slot indices (already
  /// key_lo-sorted, see PushIndexFrame); `next` is the walk position:
  /// forward consumes order[next] and increments, backward consumes
  /// order[next - 1] and decrements.
  ///
  /// Frames are pooled: PopFrame drops pins but keeps the containers'
  /// capacity, so a steady-state scan pushes and pops frames without
  /// allocating.
  struct Frame {
    bool historical = false;
    // Historical frames:
    BlobHandle blob;             // pins the node bytes
    HistIndexNodeRef hist_node;  // parsed over `blob`
    // Current-page frames:
    PageHandle page;             // pinned, NOT latched
    uint64_t page_version = 0;   // counter sampled under the build latch
    // Both:
    std::vector<int> order;      // surviving cells (key_lo-sorted)
    size_t next = 0;
    std::string win_lo;
    std::string win_hi;
    bool win_hi_inf = true;
  };

  struct Record {
    std::string key;
    Timestamp ts;
    std::string value;
  };

  /// (Re)builds the forward stack for keys >= target, preserving the
  /// range bounds (Seek/SeekRange and forward re-anchors funnel here).
  Status SeekInternal(const Slice& target);

  /// Backward twin: (re)builds the reverse stack for keys < upper (all
  /// keys when upper_inf), preserving the range bounds.
  Status SeekReverseInternal(const Slice& upper, bool upper_inf);

  /// Clears the stack and pushes the root under the CURRENT direction's
  /// bounds (forward: keys >= seek_target_; reverse: keys < rev_upper_).
  Status BuildStack();

  Status PushNode(const NodeRef& ref, const std::string& win_lo,
                  const std::string& win_hi, bool win_hi_inf);
  Status Advance();

  /// Fills the emission buffer from a leaf accessor (DataPageRef over a
  /// latched page, or HistDataNodeRef over a pinned blob): per key the
  /// latest committed version with ts <= t, clipped to the window and the
  /// direction's bounds. Only emitted records are copied; record slots
  /// reuse their string capacity across leaves instead of reallocating
  /// per visited version.
  template <typename DataAccessor>
  Status EmitLeaf(const DataAccessor& node, const std::string& win_lo,
                  const std::string& win_hi, bool win_hi_inf);

  /// Builds and pushes a descent frame from a current index page: filters
  /// entry views against the window/direction bounds under the handle's
  /// (still held) shared latch, keeps only surviving slot indices, then
  /// drops the latch but KEEPS the pin — nothing is materialized.
  Status PushIndexFrame(PageHandle page, const std::string& win_lo,
                        const std::string& win_hi, bool win_hi_inf);

  /// Builds and pushes a historical descent frame: filters entry views in
  /// place and keeps only surviving cell indices plus the pinned blob.
  Status PushHistIndexFrame(BlobHandle blob, HistIndexNodeRef node,
                            const std::string& win_lo,
                            const std::string& win_hi, bool win_hi_inf);

  /// True when the entry view survives the window and the current
  /// direction's seek/end (forward) or upper/floor (reverse) bounds.
  bool EntrySurvives(const IndexEntryView& e, const std::string& win_lo,
                     const std::string& win_hi, bool win_hi_inf) const;

  /// Reads entry `cell` of the top frame into entry_lo_/entry_hi_/
  /// entry_hi_inf_ and *child. Current frames relatch and revalidate the
  /// page version; *stale reports a mismatch (caller re-seeks, no error).
  Status ReadFrameEntry(Frame& f, int cell, NodeRef* child, bool* stale);

  /// All current frames still carry their sampled page versions and the
  /// root has not moved. Checked before serving a freshly emitted buffer
  /// and before concluding the scan (the root check is what catches a
  /// time split of a leaf-root, which has no parent frame to version).
  bool StackValid() const;

  /// Re-seek fallback after an invalidation: forward from the successor
  /// of the last emitted key, reverse from just below it.
  Status Restart();

  Frame& EmplaceFrame();
  void PopFrame();
  void ClearStack();

  /// Time-axis probe: repositions value_/ts_ at the current key's version
  /// valid at `t` (key-axis state untouched).
  Status ProbeVersion(Timestamp t);

  TsbTree* tree_;
  ReadOptions opts_;
  Timestamp t_ = 0;          // resolved as-of time of the key axis
  // The key axis stays anchored (Next/Prev legal) even while valid_ is
  // false from a version-axis move that ran dry — that is what lets a
  // scan drill into one key's past and then resume walking keys.
  bool key_anchored_ = false;
  bool reverse_ = false;     // key-axis walk direction
  std::string seek_target_;  // forward: emit only keys >= this
  std::string end_key_;      // ...and < this, unless end_inf_
  bool end_inf_ = true;
  std::string range_lo_;     // SeekRange start; floor for Prev ("" = none)
  std::string rev_upper_;    // reverse: emit only keys < this (exclusive)
  bool rev_upper_inf_ = false;  // ...unless true (SeekToLast: no upper)
  uint32_t root_page_ = 0;   // root page id the stack was built from
  bool emitted_any_ = false;
  std::vector<Frame> stack_;     // frame pool; [0, depth_) is the stack
  size_t depth_ = 0;
  std::vector<Record> records_;  // emission slots; capacity reused
  size_t rec_count_ = 0;         // live records in records_
  size_t rec_idx_ = 0;           // forward: next to serve; reverse: served
                                 // records are [rec_idx_, rec_count_)
  std::string run_key_;          // EmitLeaf key run (reused)
  std::string entry_lo_, entry_hi_;    // ReadFrameEntry scratch
  bool entry_hi_inf_ = true;
  std::string child_lo_, child_hi_;    // Advance window-clip scratch
  bool valid_ = false;
  std::string key_, value_;
  Timestamp ts_ = 0;
};

/// Legacy shim: newest-first scan of all committed versions of one key.
/// Chained as-of point probes through the ReadOptions read surface —
/// deliberately NOT a key-axis cursor seek, which would materialize a
/// whole leaf's worth of records to use one.
class HistoryIterator {
 public:
  HistoryIterator(TsbTree* tree, const Slice& key);

  /// Positions at the newest version (call first).
  Status SeekToNewest();
  bool Valid() const { return valid_; }
  Status Next();

  Timestamp ts() const { return ts_; }
  Slice value() const { return Slice(value_); }

 private:
  Status Probe(Timestamp t);

  TsbTree* tree_;
  std::string key_;
  bool valid_ = false;
  Timestamp ts_ = 0;
  std::string value_;
};

}  // namespace tsb_tree
}  // namespace tsb

#endif  // TSBTREE_TSB_CURSOR_H_
