// Iterators over the TSB-tree.
//
// SnapshotIterator walks the database state as of one time T in key order
// (the paper's snapshot query, section 2.5, carried over to the TSB-tree).
// Because index keyspace splits duplicate straddling historical references
// into both siblings (section 3.5 rule 4), the walk clips every child's
// emission to the intersection of the ancestor entries' key ranges — each
// region is visited exactly once.
//
// HistoryIterator yields all committed versions of one key, newest first,
// by chaining as-of probes (each probe lands in the node holding that
// version, so consecutive versions usually share nodes).
#ifndef TSBTREE_TSB_CURSOR_H_
#define TSBTREE_TSB_CURSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/slice.h"
#include "common/status.h"
#include "tsb/index_page.h"
#include "tsb/tsb_tree.h"

namespace tsb {
namespace tsb_tree {

/// Key-ordered scan of the database as of time `t`. Usage:
///   auto it = tree->NewSnapshotIterator(t);
///   for (it->SeekToFirst(); it->Valid(); it->Next()) { ... }
///
/// Safe under a concurrent updater: the iterator snapshots the tree's
/// structure epoch when it builds its descent stack; if a split moves
/// entries while the scan is in flight it transparently re-seeks to the
/// successor of the last emitted key. Because the as-of-T state cannot
/// change (new commits always carry larger timestamps), the restarted scan
/// emits exactly the remaining keys — no duplicates, no gaps.
class SnapshotIterator {
 public:
  SnapshotIterator(TsbTree* tree, Timestamp t);

  Status SeekToFirst();
  /// Positions at the first key >= target.
  Status Seek(const Slice& target);
  /// Scans only keys in [start, end_exclusive).
  Status SeekRange(const Slice& start, const Slice& end_exclusive);
  bool Valid() const { return valid_; }
  Status Next();

  Slice key() const { return Slice(key_); }
  Slice value() const { return Slice(value_); }
  Timestamp ts() const { return ts_; }

 private:
  /// One level of the descent stack. Historical frames keep the blob
  /// pinned and re-read surviving entry views on demand — zero-copy, and
  /// safe because historical blobs are immutable. Current-page frames
  /// still materialize owned entries under the shared latch: pinning a
  /// mutable page without its latch would let the writer rewrite it under
  /// the scan, and holding a latch across user-paced iteration could
  /// block the writer indefinitely.
  struct Frame {
    bool historical = false;
    // Historical frames:
    BlobHandle blob;             // pins the node bytes
    HistIndexNodeRef hist_node;  // parsed over `blob`
    std::vector<int> order;      // surviving cells (already key_lo-sorted)
    // Current-page frames:
    std::vector<IndexEntry> entries;  // filtered & ordered by key_lo
    size_t next = 0;
    std::string win_lo;
    std::string win_hi;
    bool win_hi_inf = true;
  };

  struct Record {
    std::string key;
    Timestamp ts;
    std::string value;
  };

  Status PushNode(const NodeRef& ref, const std::string& win_lo,
                  const std::string& win_hi, bool win_hi_inf);
  Status Advance();

  /// Fills the emission buffer from a leaf accessor (DataPageRef over a
  /// latched page, or HistDataNodeRef over a pinned blob): per key the
  /// latest committed version with ts <= t, clipped to the window. Only
  /// emitted records are copied; record slots reuse their string capacity
  /// across leaves instead of reallocating per visited version.
  template <typename DataAccessor>
  Status EmitLeaf(const DataAccessor& node, const std::string& win_lo,
                  const std::string& win_hi, bool win_hi_inf);

  /// Builds and pushes a descent frame from a current index page: filters
  /// entry views against the window/seek bounds and materializes only the
  /// survivors (owned — see Frame).
  Status PushIndexFrame(const IndexPageRef& node, const std::string& win_lo,
                        const std::string& win_hi, bool win_hi_inf);

  /// Builds and pushes a historical descent frame: filters entry views in
  /// place and keeps only surviving cell indices plus the pinned blob —
  /// nothing is materialized.
  Status PushHistIndexFrame(BlobHandle blob, HistIndexNodeRef node,
                            const std::string& win_lo,
                            const std::string& win_hi, bool win_hi_inf);

  /// True when the entry view survives the window/seek/end filters.
  bool EntrySurvives(const IndexEntryView& e, const std::string& win_lo,
                     const std::string& win_hi, bool win_hi_inf) const;

  TsbTree* tree_;
  Timestamp t_;
  std::string seek_target_;  // iteration emits only keys >= this
  std::string end_key_;      // ...and < this, unless end_inf_
  bool end_inf_ = true;
  uint64_t epoch_ = 0;       // tree structure epoch the stack was built at
  bool emitted_any_ = false;
  std::vector<Frame> stack_;
  std::vector<Record> records_;  // emission slots; capacity reused
  size_t rec_count_ = 0;         // live records in records_
  size_t rec_idx_ = 0;
  std::string run_key_;          // EmitLeaf's current key run (reused)
  bool valid_ = false;
  std::string key_, value_;
  Timestamp ts_ = 0;
};

/// Newest-first scan of all committed versions of one key.
class HistoryIterator {
 public:
  HistoryIterator(TsbTree* tree, const Slice& key);

  /// Positions at the newest version (call first).
  Status SeekToNewest();
  bool Valid() const { return valid_; }
  Status Next();

  Timestamp ts() const { return ts_; }
  Slice value() const { return Slice(value_); }

 private:
  Status Probe(Timestamp t);

  TsbTree* tree_;
  std::string key_;
  bool valid_ = false;
  Timestamp ts_ = 0;
  std::string value_;
};

}  // namespace tsb_tree
}  // namespace tsb

#endif  // TSBTREE_TSB_CURSOR_H_
