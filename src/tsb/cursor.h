// VersionCursor: the one traversal surface over the TSB-tree's key x time
// rectangle.
//
// A cursor is pinned at one as-of time (ReadOptions::as_of). Along the
// KEY axis it behaves like the paper's snapshot query (section 2.5):
// Seek/SeekToFirst/Next/Prev walk the database state as of that time in
// key order. Along the TIME axis, NextVersion/SeekTimestamp move through
// the committed versions of the *current* key — the version-history
// query — without disturbing the key-axis position, so a scan can stop
// at any record and drill into its past.
//
// Forward key movement uses a descent stack of pinned historical frames
// (zero-copy, blobs stay pinned for the subtree's lifetime) and filtered
// current-page frames. Because index keyspace splits duplicate straddling
// historical references into both siblings (section 3.5 rule 4), the walk
// clips every child's emission to the intersection of the ancestor
// entries' key ranges — each region is visited exactly once. Prev is a
// fresh predecessor descent that re-anchors the forward stack (O(height)
// per call); version moves are as-of probes at the current key.
//
// The legacy iterators are thin shims: SnapshotIterator is an alias for
// VersionCursor (declared in tsb_tree.h) and HistoryIterator drives the
// cursor's time axis.
#ifndef TSBTREE_TSB_CURSOR_H_
#define TSBTREE_TSB_CURSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/slice.h"
#include "common/status.h"
#include "tsb/index_page.h"
#include "tsb/tsb_tree.h"

namespace tsb {
namespace tsb_tree {

/// Usage:
///   auto c = tree->NewCursor({.as_of = t});
///   for (c->SeekToFirst(); c->Valid(); ) {                     // key axis
///     for (; c->Valid(); c->NextVersion()) { ... }             // time axis
///     c->Next();  // resumes the key scan even though the version walk
///   }             // ran the cursor dry — the key axis stays anchored
///
/// Safe under a concurrent updater: the cursor snapshots the tree's
/// structure epoch when it builds its descent stack; if a split moves
/// entries while the scan is in flight it transparently re-seeks to the
/// successor of the last emitted key. Because the as-of-T state cannot
/// change (new commits always carry larger timestamps), the restarted scan
/// emits exactly the remaining keys — no duplicates, no gaps.
class VersionCursor {
 public:
  VersionCursor(TsbTree* tree, const ReadOptions& options);

  // ---- key axis (at the cursor's as-of time) ----

  Status SeekToFirst();
  /// Positions at the first key >= target (clearing any range bounds).
  Status Seek(const Slice& target);
  /// Scans only keys in [start, end_exclusive).
  Status SeekRange(const Slice& start, const Slice& end_exclusive);
  /// Advances to the next key.
  Status Next();
  /// Moves to the largest key smaller than the current one (that has a
  /// version at the as-of time and lies within the range bounds);
  /// invalidates the cursor at the front. Unlike Next, each Prev is a
  /// fresh O(height) descent that then re-anchors the forward stack.
  Status Prev();

  // ---- time axis (of the current key) ----

  /// Moves to the next-older committed version of the current key;
  /// invalidates the cursor when none remains. The key-axis position is
  /// untouched: a later Next() resumes the key scan.
  Status NextVersion();
  /// Positions at the current key's version valid at time `t` (any
  /// committed time, including times newer than the cursor's as-of);
  /// invalidates the cursor if the key has no version at `t`.
  Status SeekTimestamp(Timestamp t);

  bool Valid() const { return valid_; }
  Slice key() const { return Slice(key_); }
  Slice value() const { return Slice(value_); }
  Timestamp ts() const { return ts_; }
  /// The time the key axis reads at (resolved; fixed at construction).
  Timestamp as_of() const { return t_; }

 private:
  /// One level of the descent stack. Historical frames keep the blob
  /// pinned and re-read surviving entry views on demand — zero-copy, and
  /// safe because historical blobs are immutable. Current-page frames
  /// still materialize owned entries under the shared latch: pinning a
  /// mutable page without its latch would let the writer rewrite it under
  /// the scan, and holding a latch across user-paced iteration could
  /// block the writer indefinitely.
  struct Frame {
    bool historical = false;
    // Historical frames:
    BlobHandle blob;             // pins the node bytes
    HistIndexNodeRef hist_node;  // parsed over `blob`
    std::vector<int> order;      // surviving cells (already key_lo-sorted)
    // Current-page frames:
    std::vector<IndexEntry> entries;  // filtered & ordered by key_lo
    size_t next = 0;
    std::string win_lo;
    std::string win_hi;
    bool win_hi_inf = true;
  };

  struct Record {
    std::string key;
    Timestamp ts;
    std::string value;
  };

  /// (Re)builds the forward stack for keys >= target, preserving the
  /// range bounds (Seek/SeekRange/Prev all funnel through here).
  Status SeekInternal(const Slice& target);

  Status PushNode(const NodeRef& ref, const std::string& win_lo,
                  const std::string& win_hi, bool win_hi_inf);
  Status Advance();

  /// Fills the emission buffer from a leaf accessor (DataPageRef over a
  /// latched page, or HistDataNodeRef over a pinned blob): per key the
  /// latest committed version with ts <= t, clipped to the window. Only
  /// emitted records are copied; record slots reuse their string capacity
  /// across leaves instead of reallocating per visited version.
  template <typename DataAccessor>
  Status EmitLeaf(const DataAccessor& node, const std::string& win_lo,
                  const std::string& win_hi, bool win_hi_inf);

  /// Builds and pushes a descent frame from a current index page: filters
  /// entry views against the window/seek bounds and materializes only the
  /// survivors (owned — see Frame).
  Status PushIndexFrame(const IndexPageRef& node, const std::string& win_lo,
                        const std::string& win_hi, bool win_hi_inf);

  /// Builds and pushes a historical descent frame: filters entry views in
  /// place and keeps only surviving cell indices plus the pinned blob —
  /// nothing is materialized.
  Status PushHistIndexFrame(BlobHandle blob, HistIndexNodeRef node,
                            const std::string& win_lo,
                            const std::string& win_hi, bool win_hi_inf);

  /// True when the entry view survives the window/seek/end filters.
  bool EntrySurvives(const IndexEntryView& e, const std::string& win_lo,
                     const std::string& win_hi, bool win_hi_inf) const;

  /// Predecessor search: the largest key < `upper` (and >= range_lo_)
  /// with a committed version at t_. Epoch-validated like
  /// ScanHistoryRange: optimistic attempts, final attempt quiesced.
  Status PrevLookup(const Slice& upper, bool* found, std::string* pred_key);
  Status PrevInNode(const NodeRef& ref, const Slice& upper, bool* found,
                    std::string* pred_key);
  template <typename DataAccessor>
  Status PrevInLeaf(const DataAccessor& node, const Slice& upper,
                    bool* found, std::string* pred_key);

  /// Time-axis probe: repositions value_/ts_ at the current key's version
  /// valid at `t` (key-axis state untouched).
  Status ProbeVersion(Timestamp t);

  TsbTree* tree_;
  ReadOptions opts_;
  Timestamp t_ = 0;          // resolved as-of time of the key axis
  // The key axis stays anchored (Next/Prev legal) even while valid_ is
  // false from a version-axis move that ran dry — that is what lets a
  // scan drill into one key's past and then resume walking keys.
  bool key_anchored_ = false;
  std::string seek_target_;  // iteration emits only keys >= this
  std::string end_key_;      // ...and < this, unless end_inf_
  bool end_inf_ = true;
  std::string range_lo_;     // SeekRange start; floor for Prev ("" = none)
  uint64_t epoch_ = 0;       // tree structure epoch the stack was built at
  bool emitted_any_ = false;
  std::vector<Frame> stack_;
  std::vector<Record> records_;  // emission slots; capacity reused
  size_t rec_count_ = 0;         // live records in records_
  size_t rec_idx_ = 0;
  std::string run_key_;          // EmitLeaf/PrevInLeaf key run (reused)
  bool valid_ = false;
  std::string key_, value_;
  Timestamp ts_ = 0;
};

/// Legacy shim: newest-first scan of all committed versions of one key.
/// Chained as-of point probes through the ReadOptions read surface —
/// deliberately NOT a key-axis cursor seek, which would materialize a
/// whole leaf's worth of records to use one.
class HistoryIterator {
 public:
  HistoryIterator(TsbTree* tree, const Slice& key);

  /// Positions at the newest version (call first).
  Status SeekToNewest();
  bool Valid() const { return valid_; }
  Status Next();

  Timestamp ts() const { return ts_; }
  Slice value() const { return Slice(value_); }

 private:
  Status Probe(Timestamp t);

  TsbTree* tree_;
  std::string key_;
  bool valid_ = false;
  Timestamp ts_ = 0;
  std::string value_;
};

}  // namespace tsb_tree
}  // namespace tsb

#endif  // TSBTREE_TSB_CURSOR_H_
