#include "tsb/data_page.h"

#include <algorithm>

#include "common/coding.h"

namespace tsb {
namespace tsb_tree {

size_t DataEntry::EncodedSize() const {
  return VarintLength(key.size()) + key.size() + 8 + VarintLength(txn) +
         value.size();
}

void EncodeDataCell(std::string* out, const Slice& key, Timestamp ts,
                    TxnId txn, const Slice& value) {
  PutVarint32(out, static_cast<uint32_t>(key.size()));
  out->append(key.data(), key.size());
  PutFixed64(out, ts);
  PutVarint64(out, txn);
  out->append(value.data(), value.size());
}

bool DecodeDataCell(const Slice& cell, DataEntryView* view) {
  Slice in = cell;
  if (!GetLengthPrefixedSlice(&in, &view->key)) return false;
  if (in.size() < 8) return false;
  view->ts = DecodeFixed64(in.data());
  in.remove_prefix(8);
  if (!GetVarint64(&in, &view->txn)) return false;
  view->value = in;
  return true;
}

void DataPageRef::Format(char* buf, uint32_t page_size) {
  SetTsbPageLevel(buf, 0);
  SlottedView(buf + kTsbSlotBase, PageUsableSize(buf, page_size) - kTsbSlotBase)
      .Init();
}

Status DataPageRef::At(int i, DataEntryView* view) const {
  if (!DecodeDataCell(slots_.Cell(i), view)) {
    return Status::Corruption("bad data cell");
  }
  return Status::OK();
}

int DataPageRef::LowerBound(const Slice& key, Timestamp t) const {
  int lo = 0, hi = Count();
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    DataEntryView v;
    if (!DecodeDataCell(slots_.Cell(mid), &v)) return Count();
    const int c = v.key.compare(key);
    if (c < 0 || (c == 0 && v.ts < t)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int DataPageRef::FindVersion(const Slice& key, Timestamp t) const {
  // Entries for `key` are contiguous and ts-ascending: the candidate is the
  // last committed entry before LowerBound(key, t+1). Uncommitted entries
  // (kUncommittedTs sentinel) sit at the end of the run and are skipped.
  const Timestamp upper = (t == kInfiniteTs) ? kInfiniteTs : t + 1;
  int pos = LowerBound(key, upper) - 1;
  while (pos >= 0) {
    DataEntryView v;
    if (!DecodeDataCell(slots_.Cell(pos), &v)) return -1;
    if (v.key != key) return -1;
    if (v.uncommitted()) {
      --pos;
      continue;
    }
    return (v.ts <= t) ? pos : -1;
  }
  return -1;
}

int DataPageRef::FindUncommitted(const Slice& key, TxnId txn) const {
  // Uncommitted entries sort at the very end of the key's run.
  int pos = LowerBound(key, kUncommittedTs);
  while (pos < Count()) {
    DataEntryView v;
    if (!DecodeDataCell(slots_.Cell(pos), &v)) return -1;
    if (v.key != key) break;
    if (v.uncommitted() && v.txn == txn) return pos;
    ++pos;
  }
  return -1;
}

bool DataPageRef::Insert(const DataEntry& e) {
  std::string cell;
  EncodeDataCell(&cell, e.key, e.ts, e.txn, e.value);
  const int pos = LowerBound(e.key, e.ts);
  return slots_.Insert(pos, cell);
}

bool DataPageRef::Replace(int i, const DataEntry& e) {
  std::string cell;
  EncodeDataCell(&cell, e.key, e.ts, e.txn, e.value);
  return slots_.Replace(i, cell);
}

Status DataPageRef::DecodeAll(std::vector<DataEntry>* out) const {
  out->clear();
  out->reserve(Count());
  for (int i = 0; i < Count(); ++i) {
    DataEntryView v;
    TSB_RETURN_IF_ERROR(At(i, &v));
    out->push_back(v.ToOwned());
  }
  return Status::OK();
}

Status DataPageRef::Load(const std::vector<DataEntry>& entries) {
  slots_.Clear();
  for (size_t i = 0; i < entries.size(); ++i) {
    std::string cell;
    EncodeDataCell(&cell, entries[i].key, entries[i].ts, entries[i].txn,
                   entries[i].value);
    if (!slots_.Insert(static_cast<int>(i), cell)) {
      return Status::OutOfSpace("data page bulk load overflow");
    }
  }
  return Status::OK();
}

void SerializeHistDataNode(const std::vector<DataEntry>& entries,
                           std::string* out, HistNodeFormat format,
                           uint64_t* raw_bytes, uint32_t restart_interval) {
  HistNodeBuilder builder(0, static_cast<uint32_t>(entries.size()), out,
                          format, restart_interval);
  std::string cell;
  for (const DataEntry& e : entries) {
    cell.clear();
    EncodeDataCell(&cell, e.key, e.ts, e.txn, e.value);
    builder.AddCell(cell);
  }
  builder.Finish();
  if (raw_bytes != nullptr) *raw_bytes = builder.raw_bytes();
}

void SerializeHistDataNodeV1(const std::vector<DataEntry>& entries,
                             std::string* out) {
  out->clear();
  out->push_back(0);  // level 0 = data
  out->push_back(0);  // pad == 0 marks the v1 wire format
  PutVarint32(out, static_cast<uint32_t>(entries.size()));
  std::string cell;
  for (const DataEntry& e : entries) {
    cell.clear();
    EncodeDataCell(&cell, e.key, e.ts, e.txn, e.value);
    PutVarint32(out, static_cast<uint32_t>(cell.size()));
    out->append(cell);
  }
}

Status HistNodeLevel(const Slice& blob, uint8_t* level) {
  if (blob.size() < 2) return Status::Corruption("historical node too short");
  *level = static_cast<uint8_t>(blob[0]);
  return Status::OK();
}

Status HistDataNodeRef::Parse(const Slice& blob) {
  TSB_RETURN_IF_ERROR(node_.Parse(blob));
  if (node_.level() != 0) {
    return Status::Corruption("not a historical data node");
  }
  return Status::OK();
}

Status HistDataNodeRef::At(int i, DataEntryView* view) const {
  return At(i, view, &scratch_);
}

Status HistDataNodeRef::At(int i, DataEntryView* view,
                           CellScratch* scratch) const {
  if (!DecodeDataCell(node_.Cell(i, scratch), view)) {
    return Status::Corruption("bad historical record cell");
  }
  return Status::OK();
}

Status HistDataNodeRef::LowerBound(const Slice& key, Timestamp t,
                                   int* pos) const {
  int lo = 0, hi = Count();
  if (node_.v3() && node_.RestartCount() > 1) {
    // Phase 1: binary-search restart cells (always stored whole, O(1) to
    // decode) for the last block whose restart entry precedes (key, t).
    // The lower bound then lies inside that block or exactly at the next
    // restart, so phase 2 only ever decodes cells of one block.
    int blo = 0, bhi = node_.RestartCount() - 1, best = 0;
    while (blo <= bhi) {
      const int mid = (blo + bhi) / 2;
      DataEntryView v;
      TSB_RETURN_IF_ERROR(At(node_.RestartIndex(mid), &v));
      const int c = v.key.compare(key);
      if (c < 0 || (c == 0 && v.ts < t)) {
        best = mid;
        blo = mid + 1;
      } else {
        bhi = mid - 1;
      }
    }
    lo = node_.RestartIndex(best);
    hi = std::min(Count(), node_.RestartIndex(best + 1));
  }
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    DataEntryView v;
    TSB_RETURN_IF_ERROR(At(mid, &v));
    const int c = v.key.compare(key);
    if (c < 0 || (c == 0 && v.ts < t)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  *pos = lo;
  return Status::OK();
}

Status HistDataNodeRef::FindVersion(const Slice& key, Timestamp t,
                                    int* pos) const {
  // Same logic as DataPageRef::FindVersion: entries are (key, ts) sorted,
  // so the candidate is the last entry before LowerBound(key, t+1).
  // Uncommitted sentinels never migrate but are skipped defensively.
  const Timestamp upper = (t == kInfiniteTs) ? kInfiniteTs : t + 1;
  int p = 0;
  TSB_RETURN_IF_ERROR(LowerBound(key, upper, &p));
  --p;
  while (p >= 0) {
    DataEntryView v;
    TSB_RETURN_IF_ERROR(At(p, &v));
    if (v.key != key) break;
    if (v.uncommitted()) {
      --p;
      continue;
    }
    *pos = (v.ts <= t) ? p : -1;
    return Status::OK();
  }
  *pos = -1;
  return Status::OK();
}

Status DecodeHistDataNode(const Slice& blob, std::vector<DataEntry>* out) {
  out->clear();
  HistDataNodeRef node;
  TSB_RETURN_IF_ERROR(node.Parse(blob));
  out->reserve(node.Count());
  for (int i = 0; i < node.Count(); ++i) {
    DataEntryView v;
    TSB_RETURN_IF_ERROR(node.At(i, &v));
    out->push_back(v.ToOwned());
  }
  return Status::OK();
}

}  // namespace tsb_tree
}  // namespace tsb
