// TSB-tree data node format.
//
// Current data pages (magnetic disk) are slotted pages holding record
// versions sorted by (key asc, timestamp asc); records of uncommitted
// transactions carry the kUncommittedTs sentinel (they sort after every
// committed version of the key) plus their transaction id — per paper
// section 4 they are never migrated and can be erased.
//
// Historical data nodes are the *consolidated* serialization of the same
// entries into an exactly-sized blob for the append store (section 3.4).
//
// Record cell: [varint klen][key][fixed64 ts][varint64 txn][value...]
// Historical blob: [u8 level=0][u8 pad][varint32 count]
//                  { [varint32 cell_len][cell] } * count
#ifndef TSBTREE_TSB_DATA_PAGE_H_
#define TSBTREE_TSB_DATA_PAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/page.h"
#include "storage/slotted.h"

namespace tsb {
namespace tsb_tree {

/// Sub-header after the 24-byte page header: [24] level, [25] pad.
inline constexpr uint32_t kTsbSubHeader = 2;
inline constexpr uint32_t kTsbSlotBase = kPageHeaderSize + kTsbSubHeader;

inline uint8_t TsbPageLevel(const char* buf) {
  return static_cast<uint8_t>(buf[24]);
}
inline void SetTsbPageLevel(char* buf, uint8_t level) {
  buf[24] = static_cast<char>(level);
}

/// A decoded record version (owning).
struct DataEntry {
  std::string key;
  Timestamp ts = 0;   ///< commit time; kUncommittedTs if not yet committed
  TxnId txn = kNoTxn; ///< issuing transaction while uncommitted
  std::string value;

  bool uncommitted() const { return ts == kUncommittedTs; }
  size_t EncodedSize() const;

  /// Sort order used everywhere: (key, ts); the uncommitted sentinel sorts
  /// after all committed versions of the same key.
  bool operator<(const DataEntry& o) const {
    const int c = Slice(key).compare(Slice(o.key));
    if (c != 0) return c < 0;
    return ts < o.ts;
  }
};

/// Non-owning view of a record cell inside a page.
struct DataEntryView {
  Slice key;
  Timestamp ts = 0;
  TxnId txn = kNoTxn;
  Slice value;

  bool uncommitted() const { return ts == kUncommittedTs; }
  DataEntry ToOwned() const {
    return DataEntry{key.ToString(), ts, txn, value.ToString()};
  }
};

void EncodeDataCell(std::string* out, const Slice& key, Timestamp ts,
                    TxnId txn, const Slice& value);
bool DecodeDataCell(const Slice& cell, DataEntryView* view);

/// Accessor over a current data page's bytes. Does not own the buffer; the
/// caller keeps the page pinned while a ref is live.
class DataPageRef {
 public:
  DataPageRef(char* buf, uint32_t page_size)
      : buf_(buf), slots_(buf + kTsbSlotBase, page_size - kTsbSlotBase) {}

  /// Initializes the sub-header + slotted area of a freshly created page.
  static void Format(char* buf, uint32_t page_size);

  int Count() const { return slots_.count(); }
  Status At(int i, DataEntryView* view) const;

  /// First index with (key, ts) >= (k, t); Count() if none.
  int LowerBound(const Slice& key, Timestamp t) const;

  /// Index of the version of `key` valid at time `t`: the last entry with
  /// this key and ts <= t (committed only). -1 if none.
  int FindVersion(const Slice& key, Timestamp t) const;

  /// Index of the uncommitted entry for (key, txn); -1 if none.
  int FindUncommitted(const Slice& key, TxnId txn) const;

  bool HasRoomFor(const DataEntry& e) const {
    return slots_.HasRoomFor(static_cast<uint32_t>(e.EncodedSize()));
  }

  /// Inserts keeping sort order; false when full. An existing cell with the
  /// same (key, ts/txn) position is NOT replaced — callers decide.
  bool Insert(const DataEntry& e);

  void Remove(int i) { slots_.Remove(i); }
  bool Replace(int i, const DataEntry& e);
  void Clear() { slots_.Clear(); }

  /// Decodes every entry (owning copies, for split staging).
  Status DecodeAll(std::vector<DataEntry>* out) const;

  /// Clears the page and bulk-loads `entries` (must be sorted, must fit).
  Status Load(const std::vector<DataEntry>& entries);

  /// Live payload bytes (cells + slots).
  uint32_t UsedBytes() const {
    return slots_.capacity() - slots_.FreeBytes();
  }

 private:
  char* buf_;
  SlottedView slots_;
};

/// Serializes entries as a consolidated historical data node.
void SerializeHistDataNode(const std::vector<DataEntry>& entries,
                           std::string* out);

/// Parses a historical node blob of either kind; returns its level.
/// For level 0 use DecodeHistDataNode instead.
Status HistNodeLevel(const Slice& blob, uint8_t* level);

/// Parses a historical data node blob.
Status DecodeHistDataNode(const Slice& blob, std::vector<DataEntry>* out);

}  // namespace tsb_tree
}  // namespace tsb

#endif  // TSBTREE_TSB_DATA_PAGE_H_
