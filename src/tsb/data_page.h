// TSB-tree data node format.
//
// Current data pages (magnetic disk) are slotted pages holding record
// versions sorted by (key asc, timestamp asc); records of uncommitted
// transactions carry the kUncommittedTs sentinel (they sort after every
// committed version of the key) plus their transaction id — per paper
// section 4 they are never migrated and can be erased.
//
// Historical data nodes are the *consolidated* serialization of the same
// entries into an exactly-sized blob for the append store (section 3.4).
//
// Record cell: [varint klen][key][fixed64 ts][varint64 txn][value...]
// Historical blob: a hist_node.h container (v2 slotted or v3
// prefix-compressed) holding record cells; legacy v1 length-prefixed
// blobs remain decodable.
#ifndef TSBTREE_TSB_DATA_PAGE_H_
#define TSBTREE_TSB_DATA_PAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/page.h"
#include "storage/slotted.h"
#include "tsb/hist_node.h"

namespace tsb {
namespace tsb_tree {

/// Sub-header after the 24-byte page header: [24] level, [25] pad.
inline constexpr uint32_t kTsbSubHeader = 2;
inline constexpr uint32_t kTsbSlotBase = kPageHeaderSize + kTsbSubHeader;

inline uint8_t TsbPageLevel(const char* buf) {
  return static_cast<uint8_t>(buf[24]);
}
inline void SetTsbPageLevel(char* buf, uint8_t level) {
  buf[24] = static_cast<char>(level);
}

/// A decoded record version (owning).
struct DataEntry {
  std::string key;
  Timestamp ts = 0;   ///< commit time; kUncommittedTs if not yet committed
  TxnId txn = kNoTxn; ///< issuing transaction while uncommitted
  std::string value;

  bool uncommitted() const { return ts == kUncommittedTs; }
  size_t EncodedSize() const;

  /// Sort order used everywhere: (key, ts); the uncommitted sentinel sorts
  /// after all committed versions of the same key.
  bool operator<(const DataEntry& o) const {
    const int c = Slice(key).compare(Slice(o.key));
    if (c != 0) return c < 0;
    return ts < o.ts;
  }
};

/// Non-owning view of a record cell inside a page.
struct DataEntryView {
  Slice key;
  Timestamp ts = 0;
  TxnId txn = kNoTxn;
  Slice value;

  bool uncommitted() const { return ts == kUncommittedTs; }
  DataEntry ToOwned() const {
    return DataEntry{key.ToString(), ts, txn, value.ToString()};
  }
};

void EncodeDataCell(std::string* out, const Slice& key, Timestamp ts,
                    TxnId txn, const Slice& value);
bool DecodeDataCell(const Slice& cell, DataEntryView* view);

/// Accessor over a current data page's bytes. Does not own the buffer; the
/// caller keeps the page pinned while a ref is live.
class DataPageRef {
 public:
  // Capacity follows the page's own format: v2 pages reserve the checksum
  // trailer, legacy v1 pages keep their full payload area (their cells were
  // laid out against the untrailed capacity and Compact() re-packs cells
  // downward from it, so shrinking a live v1 page would corrupt it).
  DataPageRef(char* buf, uint32_t page_size)
      : buf_(buf),
        slots_(buf + kTsbSlotBase,
               PageUsableSize(buf, page_size) - kTsbSlotBase) {}

  /// Initializes the sub-header + slotted area of a freshly created page.
  static void Format(char* buf, uint32_t page_size);

  int Count() const { return slots_.count(); }
  Status At(int i, DataEntryView* view) const;

  /// First index with (key, ts) >= (k, t); Count() if none.
  int LowerBound(const Slice& key, Timestamp t) const;

  /// Index of the version of `key` valid at time `t`: the last entry with
  /// this key and ts <= t (committed only). -1 if none.
  int FindVersion(const Slice& key, Timestamp t) const;

  /// Index of the uncommitted entry for (key, txn); -1 if none.
  int FindUncommitted(const Slice& key, TxnId txn) const;

  bool HasRoomFor(const DataEntry& e) const {
    return slots_.HasRoomFor(static_cast<uint32_t>(e.EncodedSize()));
  }

  /// Inserts keeping sort order; false when full. An existing cell with the
  /// same (key, ts/txn) position is NOT replaced — callers decide.
  bool Insert(const DataEntry& e);

  void Remove(int i) { slots_.Remove(i); }
  bool Replace(int i, const DataEntry& e);
  void Clear() { slots_.Clear(); }

  /// Decodes every entry (owning copies, for split staging).
  Status DecodeAll(std::vector<DataEntry>* out) const;

  /// Clears the page and bulk-loads `entries` (must be sorted, must fit).
  Status Load(const std::vector<DataEntry>& entries);

  /// Live payload bytes (cells + slots).
  uint32_t UsedBytes() const {
    return slots_.capacity() - slots_.FreeBytes();
  }

 private:
  char* buf_;
  SlottedView slots_;
};

/// Serializes entries as a consolidated historical data node in `format`
/// (v2 slotted or v3 prefix-compressed). When `raw_bytes` is non-null it
/// receives the v2-equivalent size, for compression accounting.
/// `restart_interval` sets the v3 restart-block size (ignored for v2).
void SerializeHistDataNode(const std::vector<DataEntry>& entries,
                           std::string* out,
                           HistNodeFormat format = HistNodeFormat::kV3,
                           uint64_t* raw_bytes = nullptr,
                           uint32_t restart_interval = kHistRestartInterval);

/// Serializes the legacy v1 wire format (no slot directory). Kept for
/// compatibility tests; new nodes are written as v2 or v3 (see
/// TsbOptions::hist_node_format).
void SerializeHistDataNodeV1(const std::vector<DataEntry>& entries,
                             std::string* out);

/// Parses a historical node blob of either kind; returns its level.
/// For level 0 use HistDataNodeRef (zero-copy) or DecodeHistDataNode.
Status HistNodeLevel(const Slice& blob, uint8_t* level);

/// Zero-copy accessor over a historical data node blob (any version). The
/// caller keeps the blob alive (pinned BlobHandle) while the ref and any
/// views from it are in use. v2 blobs binary-search the trailing slot
/// directory with no allocation; v3 blobs binary-search restart blocks and
/// reassemble delta-encoded cells into the ref's scratch buffer; v1 blobs
/// fall back to a one-pass offset table.
///
/// View lifetime: because v3 cells may live in the shared scratch, a
/// DataEntryView is valid only until the NEXT At/LowerBound/FindVersion
/// call on the same ref. Callers that need two entries at once (or an
/// entry across another probe) must copy first.
class HistDataNodeRef {
 public:
  /// Parses `blob`; fails unless it is a level-0 historical node.
  Status Parse(const Slice& blob);

  int Count() const { return node_.Count(); }
  uint8_t version() const { return node_.version(); }
  bool v2() const { return node_.v2(); }
  Status At(int i, DataEntryView* view) const;

  /// Like At, but reassembles a delta-encoded v3 cell into the CALLER's
  /// scratch: the returned view stays valid as long as `scratch` and the
  /// blob live, surviving later calls on this ref. Pinned point lookups
  /// use this to hand the user a stable zero-copy view.
  Status At(int i, DataEntryView* view, CellScratch* scratch) const;

  /// First index with (key, ts) >= (k, t) into *pos; Count() if none.
  /// Binary search over the slot directory (v3: restart blocks first, then
  /// within one block). Unlike the in-page DataPageRef search, a bad cell
  /// is reported as Corruption rather than folded into a miss — historical
  /// blobs are supposed to be immutable.
  Status LowerBound(const Slice& key, Timestamp t, int* pos) const;

  /// Index of the version of `key` valid at time `t` into *pos: the last
  /// committed entry with this key and ts <= t. -1 if none.
  Status FindVersion(const Slice& key, Timestamp t, int* pos) const;

 private:
  HistNodeRef node_;
  mutable CellScratch scratch_;
};

/// Parses a historical data node blob (any version) into owning entries.
Status DecodeHistDataNode(const Slice& blob, std::vector<DataEntry>* out);

}  // namespace tsb_tree
}  // namespace tsb

#endif  // TSBTREE_TSB_DATA_PAGE_H_
