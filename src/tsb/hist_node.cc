#include "tsb/hist_node.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/coding.h"

namespace tsb {
namespace tsb_tree {

namespace {
constexpr uint32_t kV2HeaderSize = 6;  // level + version + fixed32 count
constexpr uint32_t kV3HeaderSize = 8;  // ... + fixed16 restart interval

size_t SharedPrefix(const Slice& a, const Slice& b) {
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}
}  // namespace

HistNodeBuilder::HistNodeBuilder(uint8_t level, uint32_t count,
                                 std::string* out, HistNodeFormat format,
                                 uint32_t restart_interval)
    : out_(out),
      format_(format),
      count_(count),
      // The interval is fixed16 on the wire: clamp to what Parse can read
      // back, so no legal builder call can write an unreadable node.
      interval_(restart_interval == 0
                    ? 1
                    : std::min<uint32_t>(restart_interval, UINT16_MAX)) {
  out_->clear();
  out_->push_back(static_cast<char>(level));
  out_->push_back(static_cast<char>(format_));
  PutFixed32(out_, count);
  if (format_ == HistNodeFormat::kV3) {
    PutFixed16(out_, static_cast<uint16_t>(interval_));
    offsets_.reserve((count + interval_ - 1) / interval_);
  } else {
    offsets_.reserve(count);
  }
}

void HistNodeBuilder::AddCell(const Slice& cell) {
  cell_bytes_ += cell.size();
  if (format_ != HistNodeFormat::kV3) {
    offsets_.push_back(static_cast<uint32_t>(out_->size()));
    out_->append(cell.data(), cell.size());
  } else if (in_block_ == 0) {
    offsets_.push_back(static_cast<uint32_t>(out_->size()));
    restart_cell_.assign(cell.data(), cell.size());
    PutVarint32(out_, 0);
    PutVarint32(out_, static_cast<uint32_t>(cell.size()));
    out_->append(cell.data(), cell.size());
  } else {
    const size_t shared = SharedPrefix(Slice(restart_cell_), cell);
    PutVarint32(out_, static_cast<uint32_t>(shared));
    PutVarint32(out_, static_cast<uint32_t>(cell.size() - shared));
    out_->append(cell.data() + shared, cell.size() - shared);
  }
  if (++in_block_ == interval_) in_block_ = 0;
  ++added_;
}

void HistNodeBuilder::Finish() {
  assert(added_ == count_);
  for (const uint32_t off : offsets_) PutFixed32(out_, off);
}

Status HistNodeRef::Parse(const Slice& blob) {
  blob_ = blob;
  dir_ = nullptr;
  dir_entries_ = 0;
  v1_cells_.clear();
  count_ = 0;
  interval_ = 1;
  if (blob.size() < 2) {
    return Status::Corruption("historical node too short");
  }
  level_ = static_cast<uint8_t>(blob[0]);
  version_ = static_cast<uint8_t>(blob[1]);
  if (version_ == kHistNodeVersion2 || version_ == kHistNodeVersion3) {
    const uint32_t header =
        version_ == kHistNodeVersion2 ? kV2HeaderSize : kV3HeaderSize;
    if (blob.size() < header) {
      return Status::Corruption("historical node truncated header");
    }
    count_ = DecodeFixed32(blob.data() + 2);
    if (version_ == kHistNodeVersion3) {
      interval_ = DecodeFixed16(blob.data() + 6);
      if (interval_ == 0) {
        return Status::Corruption("historical v3 node zero restart interval");
      }
      dir_entries_ = count_ == 0 ? 0 : (count_ + interval_ - 1) / interval_;
    } else {
      dir_entries_ = count_;
    }
    const uint64_t dir_bytes = 4ull * dir_entries_;
    if (header + dir_bytes > blob.size()) {
      return Status::Corruption("historical node truncated directory");
    }
    cells_end_ = static_cast<uint32_t>(blob.size() - dir_bytes);
    dir_ = blob.data() + cells_end_;
    return Status::OK();
  }
  if (version_ != 0) {
    return Status::Corruption("unknown historical node version",
                              std::to_string(version_));
  }
  // v1: one linear walk over the length-prefixed cells builds the offset
  // table (per-node vector; no per-entry materialization).
  Slice in = blob_;
  in.remove_prefix(2);
  if (!GetVarint32(&in, &count_)) {
    return Status::Corruption("bad historical node count");
  }
  v1_cells_.reserve(count_);
  for (uint32_t i = 0; i < count_; ++i) {
    Slice cell;
    if (!GetLengthPrefixedSlice(&in, &cell)) {
      return Status::Corruption("bad historical node cell");
    }
    v1_cells_.emplace_back(static_cast<uint32_t>(cell.data() - blob_.data()),
                           static_cast<uint32_t>(cell.size()));
  }
  return Status::OK();
}

Slice HistNodeRef::Cell(int i, CellScratch* scratch) const {
  if (i < 0 || static_cast<uint32_t>(i) >= count_) return Slice();
  if (version_ == kHistNodeVersion2) {
    const uint32_t start = DecodeFixed32(dir_ + 4 * i);
    const uint32_t end = (static_cast<uint32_t>(i) + 1 < count_)
                             ? DecodeFixed32(dir_ + 4 * (i + 1))
                             : cells_end_;
    if (start < kV2HeaderSize || start > end || end > cells_end_) {
      return Slice();  // corrupt directory; decoders report it
    }
    return Slice(blob_.data() + start, end - start);
  }
  if (version_ == kHistNodeVersion3) {
    const uint32_t block = static_cast<uint32_t>(i) / interval_;
    const uint32_t start = DecodeFixed32(dir_ + 4 * block);
    const uint32_t end = (block + 1 < dir_entries_)
                             ? DecodeFixed32(dir_ + 4 * (block + 1))
                             : cells_end_;
    if (start < kV3HeaderSize || start > end || end > cells_end_) {
      return Slice();
    }
    Slice in(blob_.data() + start, end - start);
    // Decode the restart cell (stored whole: shared must be 0).
    uint32_t shared0 = 0, len0 = 0;
    if (!GetVarint32(&in, &shared0) || shared0 != 0 ||
        !GetVarint32(&in, &len0) || in.size() < len0) {
      return Slice();
    }
    const char* restart_body = in.data();
    const uint32_t target = static_cast<uint32_t>(i) % interval_;
    if (target == 0) return Slice(restart_body, len0);
    in.remove_prefix(len0);
    for (uint32_t j = 1;; ++j) {
      uint32_t shared = 0, rest = 0;
      if (!GetVarint32(&in, &shared) || !GetVarint32(&in, &rest) ||
          in.size() < rest || shared > len0) {
        return Slice();
      }
      if (j == target) {
        if (shared == 0) return Slice(in.data(), rest);
        char* buf = scratch->Acquire(shared + rest);
        memcpy(buf, restart_body, shared);
        memcpy(buf + shared, in.data(), rest);
        return Slice(buf, shared + rest);
      }
      in.remove_prefix(rest);
    }
  }
  const auto& [off, len] = v1_cells_[i];
  return Slice(blob_.data() + off, len);
}

}  // namespace tsb_tree
}  // namespace tsb
