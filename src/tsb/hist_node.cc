#include "tsb/hist_node.h"

#include <cassert>

#include "common/coding.h"

namespace tsb {
namespace tsb_tree {

namespace {
constexpr uint32_t kV2HeaderSize = 6;  // level + version + fixed32 count
}  // namespace

HistNodeBuilder::HistNodeBuilder(uint8_t level, uint32_t count,
                                 std::string* out)
    : out_(out), count_(count) {
  out_->clear();
  out_->push_back(static_cast<char>(level));
  out_->push_back(static_cast<char>(kHistNodeVersion2));
  PutFixed32(out_, count);
  offsets_.reserve(count);
}

void HistNodeBuilder::Finish() {
  assert(offsets_.size() == count_);
  for (const uint32_t off : offsets_) PutFixed32(out_, off);
}

Status HistNodeRef::Parse(const Slice& blob) {
  blob_ = blob;
  dir_ = nullptr;
  v1_cells_.clear();
  count_ = 0;
  if (blob.size() < 2) {
    return Status::Corruption("historical node too short");
  }
  level_ = static_cast<uint8_t>(blob[0]);
  const uint8_t version = static_cast<uint8_t>(blob[1]);
  if (version == kHistNodeVersion2) {
    is_v2_ = true;
    if (blob.size() < kV2HeaderSize) {
      return Status::Corruption("historical v2 node truncated header");
    }
    count_ = DecodeFixed32(blob.data() + 2);
    const uint64_t dir_bytes = 4ull * count_;
    if (kV2HeaderSize + dir_bytes > blob.size()) {
      return Status::Corruption("historical v2 node truncated directory");
    }
    cells_end_ = static_cast<uint32_t>(blob.size() - dir_bytes);
    dir_ = blob.data() + cells_end_;
    return Status::OK();
  }
  if (version != 0) {
    return Status::Corruption("unknown historical node version",
                              std::to_string(version));
  }
  // v1: one linear walk over the length-prefixed cells builds the offset
  // table (per-node vector; no per-entry materialization).
  is_v2_ = false;
  Slice in = blob_;
  in.remove_prefix(2);
  if (!GetVarint32(&in, &count_)) {
    return Status::Corruption("bad historical node count");
  }
  v1_cells_.reserve(count_);
  for (uint32_t i = 0; i < count_; ++i) {
    Slice cell;
    if (!GetLengthPrefixedSlice(&in, &cell)) {
      return Status::Corruption("bad historical node cell");
    }
    v1_cells_.emplace_back(static_cast<uint32_t>(cell.data() - blob_.data()),
                           static_cast<uint32_t>(cell.size()));
  }
  return Status::OK();
}

Slice HistNodeRef::Cell(int i) const {
  if (i < 0 || static_cast<uint32_t>(i) >= count_) return Slice();
  if (dir_ != nullptr) {
    const uint32_t start = DecodeFixed32(dir_ + 4 * i);
    const uint32_t end = (static_cast<uint32_t>(i) + 1 < count_)
                             ? DecodeFixed32(dir_ + 4 * (i + 1))
                             : cells_end_;
    if (start < kV2HeaderSize || start > end || end > cells_end_) {
      return Slice();  // corrupt directory; decoders report it
    }
    return Slice(blob_.data() + start, end - start);
  }
  const auto& [off, len] = v1_cells_[i];
  return Slice(blob_.data() + off, len);
}

}  // namespace tsb_tree
}  // namespace tsb
