// Historical node container format.
//
// Historical nodes are immutable consolidated blobs in the append store
// (paper section 3.4). Two wire versions exist, distinguished by byte 1:
//
//  v1 (legacy, byte1 == 0):
//    [u8 level][u8 0][varint32 count] { [varint32 cell_len][cell] } * count
//    Cells can only be found by a linear front-to-back walk.
//
//  v2 (byte1 == kHistNodeVersion2) — slotted, mirrors SlottedView:
//    [u8 level][u8 2][u32 count]
//    [cells back-to-back, no per-cell framing]
//    [u32 cell_offset] * count      <- trailing slot directory
//    Cell i spans [dir[i], dir[i+1]) (the last cell ends where the
//    directory starts), so views can random-access and binary-search cells
//    directly over the pinned blob with no decode pass and no allocation.
//
// HistNodeRef parses either version; v2 needs O(1) setup, v1 falls back to
// one linear walk that builds a per-node offset table (no per-entry string
// materialization either way). New nodes are always written as v2; v1
// support exists so stores written before the format change open unchanged.
#ifndef TSBTREE_TSB_HIST_NODE_H_
#define TSBTREE_TSB_HIST_NODE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace tsb {
namespace tsb_tree {

inline constexpr uint8_t kHistNodeVersion2 = 2;

/// Serializes a v2 historical node: construct with the level and cell
/// count, call BeginCell() before appending each cell's bytes to out(),
/// then Finish() to emit the trailing slot directory.
class HistNodeBuilder {
 public:
  HistNodeBuilder(uint8_t level, uint32_t count, std::string* out);

  std::string* out() { return out_; }
  /// Marks the start of the next cell at the current end of out().
  void BeginCell() { offsets_.push_back(static_cast<uint32_t>(out_->size())); }
  /// Appends the slot directory. Must be called exactly once, after
  /// `count` BeginCell() calls.
  void Finish();

 private:
  std::string* out_;
  uint32_t count_;
  std::vector<uint32_t> offsets_;
};

/// Zero-copy accessor over a historical node blob of either version. The
/// caller keeps the blob alive (pinned BlobHandle or owning string) while
/// the ref and any Slices obtained through it are in use.
class HistNodeRef {
 public:
  /// Parses the container framing. O(1) for v2; one linear walk for v1.
  Status Parse(const Slice& blob);

  uint8_t level() const { return level_; }
  bool v2() const { return is_v2_; }
  int Count() const { return static_cast<int>(count_); }

  /// Cell i's payload (view into the blob); empty on out-of-range or a
  /// corrupt directory entry (cell decoders then report corruption).
  Slice Cell(int i) const;

 private:
  Slice blob_;
  uint8_t level_ = 0;
  bool is_v2_ = false;
  uint32_t count_ = 0;
  const char* dir_ = nullptr;   // v2: count_ fixed32 cell offsets
  uint32_t cells_end_ = 0;      // v2: blob offset where the directory starts
  std::vector<std::pair<uint32_t, uint32_t>> v1_cells_;  // v1: offset, len
};

}  // namespace tsb_tree
}  // namespace tsb

#endif  // TSBTREE_TSB_HIST_NODE_H_
