// Historical node container format.
//
// Historical nodes are immutable consolidated blobs in the append store
// (paper section 3.4). Three wire versions exist, distinguished by byte 1:
//
//  v1 (legacy, byte1 == 0):
//    [u8 level][u8 0][varint32 count] { [varint32 cell_len][cell] } * count
//    Cells can only be found by a linear front-to-back walk.
//
//  v2 (byte1 == kHistNodeVersion2) — slotted, mirrors SlottedView:
//    [u8 level][u8 2][u32 count]
//    [cells back-to-back, no per-cell framing]
//    [u32 cell_offset] * count      <- trailing slot directory
//    Cell i spans [dir[i], dir[i+1]) (the last cell ends where the
//    directory starts), so views can random-access and binary-search cells
//    directly over the pinned blob with no decode pass and no allocation.
//
//  v3 (byte1 == kHistNodeVersion3) — restart-block prefix compression,
//  PISA/LevelDB-block style. Cells are grouped into blocks of K
//  (restart_interval); each block's first cell (the restart cell) is
//  stored whole, the others store only the byte suffix after their shared
//  prefix with the restart cell. Sorted cells start with their encoded
//  key, so key prefixes (and whole keys, for multi-version runs) compress
//  away. The trailing directory indexes restart points only:
//    [u8 level][u8 3][u32 count][u16 restart_interval]
//    { [varint shared][varint rest_len][rest bytes] } * count
//    [u32 restart_offset] * ceil(count / K)
//  Readers binary-search the restarts, then decode at most K cells inside
//  one block. Delta-encoded cells are reassembled into a small per-ref
//  scratch buffer (restart cells and all v1/v2 cells stay pure views), so
//  a view obtained from Cell/At is valid only until the NEXT Cell/At call
//  on the same ref.
//
// HistNodeRef parses all versions; v2/v3 need O(1) setup, v1 falls back to
// one linear walk that builds a per-node offset table. Historical nodes
// are written exactly once (consolidation), which is why the heavier
// one-shot v3 encoding costs nothing on the write path. The write format
// is selected per tree via TsbOptions::hist_node_format; every version
// remains decodable forever.
#ifndef TSBTREE_TSB_HIST_NODE_H_
#define TSBTREE_TSB_HIST_NODE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace tsb {
namespace tsb_tree {

inline constexpr uint8_t kHistNodeVersion2 = 2;
inline constexpr uint8_t kHistNodeVersion3 = 3;

/// Wire format selector for newly written historical nodes.
enum class HistNodeFormat : uint8_t {
  kV2 = kHistNodeVersion2,  ///< slotted, uncompressed (fastest decode)
  kV3 = kHistNodeVersion3,  ///< restart-block prefix compression (smallest)
};

/// Cells per restart block in v3 nodes.
inline constexpr uint32_t kHistRestartInterval = 16;

/// Reassembly buffer for delta-encoded v3 cells. Cells up to the inline
/// size (the common case) rebuild with no heap traffic; larger cells fall
/// back to a heap buffer whose capacity is reused.
class CellScratch {
 public:
  char* Acquire(size_t n) {
    if (n <= sizeof(inline_)) return inline_;
    if (heap_.size() < n) heap_.resize(n);
    return heap_.data();
  }

 private:
  char inline_[512];
  std::vector<char> heap_;
};

/// Serializes a historical node: construct with the level, cell count and
/// wire format, AddCell() each cell's encoded bytes in sorted order, then
/// Finish() to emit the trailing directory.
class HistNodeBuilder {
 public:
  HistNodeBuilder(uint8_t level, uint32_t count, std::string* out,
                  HistNodeFormat format = HistNodeFormat::kV3,
                  uint32_t restart_interval = kHistRestartInterval);

  void AddCell(const Slice& cell);

  /// Appends the trailing directory. Must be called exactly once, after
  /// `count` AddCell() calls.
  void Finish();

  /// Bytes a v2 (uncompressed slotted) encoding of the same cells would
  /// occupy; with out->size() after Finish this yields the node's
  /// compression ratio.
  uint64_t raw_bytes() const { return 6 + cell_bytes_ + 4ull * count_; }

 private:
  std::string* out_;
  HistNodeFormat format_;
  uint32_t count_;
  uint32_t interval_;
  uint32_t added_ = 0;
  uint32_t in_block_ = 0;
  uint64_t cell_bytes_ = 0;
  std::string restart_cell_;       // v3: current block's first cell
  std::vector<uint32_t> offsets_;  // v2: cell offsets; v3: restart offsets
};

/// Zero-copy accessor over a historical node blob of any version. The
/// caller keeps the blob alive (pinned BlobHandle or owning string) while
/// the ref and any Slices obtained through it are in use. For v3 blobs a
/// Slice from Cell() may point into the scratch buffer and is additionally
/// invalidated by the next Cell() call using the same scratch.
class HistNodeRef {
 public:
  /// Parses the container framing. O(1) for v2/v3; one linear walk for v1.
  Status Parse(const Slice& blob);

  uint8_t level() const { return level_; }
  uint8_t version() const { return version_; }
  bool v2() const { return version_ == kHistNodeVersion2; }
  bool v3() const { return version_ == kHistNodeVersion3; }
  int Count() const { return static_cast<int>(count_); }

  /// Cell i's payload; empty on out-of-range or a corrupt directory entry
  /// (cell decoders then report corruption). v1/v2 cells and v3 restart
  /// cells are views into the blob; delta-encoded v3 cells are reassembled
  /// into `scratch`.
  Slice Cell(int i, CellScratch* scratch) const;

  // ---- v3 restart topology (two-phase binary search) ----

  uint32_t restart_interval() const { return interval_; }
  int RestartCount() const {
    return count_ == 0 ? 0
                       : static_cast<int>((count_ + interval_ - 1) / interval_);
  }
  /// First cell index of restart block r.
  int RestartIndex(int r) const { return r * static_cast<int>(interval_); }

 private:
  Slice blob_;
  uint8_t level_ = 0;
  uint8_t version_ = 0;
  uint32_t count_ = 0;
  uint32_t interval_ = 1;       // v3 restart interval (1 elsewhere)
  const char* dir_ = nullptr;   // v2: cell offsets; v3: restart offsets
  uint32_t dir_entries_ = 0;    // number of fixed32 entries behind dir_
  uint32_t cells_end_ = 0;      // blob offset where the directory starts
  std::vector<std::pair<uint32_t, uint32_t>> v1_cells_;  // v1: offset, len
};

}  // namespace tsb_tree
}  // namespace tsb

#endif  // TSBTREE_TSB_HIST_NODE_H_
