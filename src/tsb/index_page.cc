#include "tsb/index_page.h"

#include <algorithm>

#include "common/coding.h"

namespace tsb {
namespace tsb_tree {

namespace {
constexpr uint8_t kFlagKeyHiInf = 0x1;
}  // namespace

size_t IndexEntry::EncodedSize() const {
  size_t n = 1 + VarintLength(key_lo.size()) + key_lo.size() + 16;
  if (!key_hi_inf) n += VarintLength(key_hi.size()) + key_hi.size();
  n += child.historical
           ? 1 + VarintLength(child.addr.offset) + VarintLength(child.addr.length)
           : 1 + 4;
  n += VarintLength(min_ts);
  return n;
}

std::string IndexEntry::ToString() const {
  std::string s = "[" + key_lo + ", " + (key_hi_inf ? "+inf" : key_hi) +
                  ") x [" + std::to_string(t_lo) + ", " +
                  (t_hi == kInfiniteTs ? "+inf" : std::to_string(t_hi)) +
                  ") -> " + child.ToString();
  if (min_ts != 0) s += " min_ts=" + std::to_string(min_ts);
  return s;
}

void EncodeIndexCell(std::string* out, const IndexEntry& e) {
  out->push_back(static_cast<char>(e.key_hi_inf ? kFlagKeyHiInf : 0));
  PutVarint32(out, static_cast<uint32_t>(e.key_lo.size()));
  out->append(e.key_lo);
  if (!e.key_hi_inf) {
    PutVarint32(out, static_cast<uint32_t>(e.key_hi.size()));
    out->append(e.key_hi);
  }
  PutFixed64(out, e.t_lo);
  PutFixed64(out, e.t_hi);
  EncodeNodeRef(out, e.child);
  PutVarint64(out, e.min_ts);
}

bool DecodeIndexCellView(const Slice& cell, IndexEntryView* e) {
  Slice in = cell;
  if (in.empty()) return false;
  const uint8_t flags = static_cast<uint8_t>(in[0]);
  in.remove_prefix(1);
  e->key_hi_inf = (flags & kFlagKeyHiInf) != 0;
  if (!GetLengthPrefixedSlice(&in, &e->key_lo)) return false;
  if (!e->key_hi_inf) {
    if (!GetLengthPrefixedSlice(&in, &e->key_hi)) return false;
  } else {
    e->key_hi.clear();
  }
  if (in.size() < 16) return false;
  e->t_lo = DecodeFixed64(in.data());
  e->t_hi = DecodeFixed64(in.data() + 8);
  in.remove_prefix(16);
  if (!DecodeNodeRef(&in, &e->child)) return false;
  // Trailing content-floor hint; legacy cells end at the NodeRef.
  e->min_ts = 0;
  if (!in.empty() && !GetVarint64(&in, &e->min_ts)) return false;
  return true;
}

bool DecodeIndexCell(const Slice& cell, IndexEntry* e) {
  IndexEntryView v;
  if (!DecodeIndexCellView(cell, &v)) return false;
  *e = v.ToOwned();
  return true;
}

void IndexPageRef::Format(char* buf, uint32_t page_size, uint8_t level) {
  SetTsbPageLevel(buf, level);
  SlottedView(buf + kTsbSlotBase, PageUsableSize(buf, page_size) - kTsbSlotBase)
      .Init();
}

Status IndexPageRef::At(int i, IndexEntry* e) const {
  if (!DecodeIndexCell(slots_.Cell(i), e)) {
    return Status::Corruption("bad index cell");
  }
  return Status::OK();
}

Status IndexPageRef::AtView(int i, IndexEntryView* e) const {
  if (!DecodeIndexCellView(slots_.Cell(i), e)) {
    return Status::Corruption("bad index cell");
  }
  return Status::OK();
}

int IndexPageRef::FindContaining(const Slice& key, Timestamp t) const {
  // Entries tile the node's region, so at most one contains the point,
  // and it has key_lo <= key. Binary-search the first entry with
  // key_lo > key (entries are (key_lo, t_lo)-sorted), then walk backwards
  // over the prefix — the match is almost always within the run of
  // entries sharing the nearest key_lo, so the walk is short. View
  // decode: no allocation per probed cell (this is the descent hot path).
  int lo = 0, hi = Count();
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    IndexEntryView e;
    if (!DecodeIndexCellView(slots_.Cell(mid), &e)) return -1;
    if (e.key_lo <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  for (int i = lo - 1; i >= 0; --i) {
    IndexEntryView e;
    if (!DecodeIndexCellView(slots_.Cell(i), &e)) return -1;
    if (e.Contains(key, t)) return i;
  }
  return -1;
}

int IndexPageRef::FindChild(uint32_t page_id) const {
  const int n = Count();
  for (int i = 0; i < n; ++i) {
    IndexEntryView e;
    if (!DecodeIndexCellView(slots_.Cell(i), &e)) return -1;
    if (!e.child.historical && e.child.page_id == page_id) return i;
  }
  return -1;
}

bool IndexPageRef::Insert(const IndexEntry& e) {
  std::string cell;
  EncodeIndexCell(&cell, e);
  // Keep (key_lo, t_lo) order.
  int lo = 0, hi = Count();
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    IndexEntryView m;
    if (!DecodeIndexCellView(slots_.Cell(mid), &m)) return false;
    const int c = m.key_lo.compare(Slice(e.key_lo));
    if (c < 0 || (c == 0 && m.t_lo < e.t_lo)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return slots_.Insert(lo, cell);
}

bool IndexPageRef::Replace(int i, const IndexEntry& e) {
  std::string cell;
  EncodeIndexCell(&cell, e);
  return slots_.Replace(i, cell);
}

Status IndexPageRef::DecodeAll(std::vector<IndexEntry>* out) const {
  out->clear();
  out->reserve(Count());
  for (int i = 0; i < Count(); ++i) {
    IndexEntry e;
    TSB_RETURN_IF_ERROR(At(i, &e));
    out->push_back(std::move(e));
  }
  return Status::OK();
}

Status IndexPageRef::Load(const std::vector<IndexEntry>& entries) {
  slots_.Clear();
  for (size_t i = 0; i < entries.size(); ++i) {
    std::string cell;
    EncodeIndexCell(&cell, entries[i]);
    if (!slots_.Insert(static_cast<int>(i), cell)) {
      return Status::OutOfSpace("index page bulk load overflow");
    }
  }
  return Status::OK();
}

void SerializeHistIndexNode(uint8_t level,
                            const std::vector<IndexEntry>& entries,
                            std::string* out, HistNodeFormat format,
                            uint64_t* raw_bytes, uint32_t restart_interval) {
  HistNodeBuilder builder(level, static_cast<uint32_t>(entries.size()), out,
                          format, restart_interval);
  std::string cell;
  for (const IndexEntry& e : entries) {
    cell.clear();
    EncodeIndexCell(&cell, e);
    builder.AddCell(cell);
  }
  builder.Finish();
  if (raw_bytes != nullptr) *raw_bytes = builder.raw_bytes();
}

void SerializeHistIndexNodeV1(uint8_t level,
                              const std::vector<IndexEntry>& entries,
                              std::string* out) {
  out->clear();
  out->push_back(static_cast<char>(level));
  out->push_back(0);  // pad == 0 marks the v1 wire format
  PutVarint32(out, static_cast<uint32_t>(entries.size()));
  std::string cell;
  for (const IndexEntry& e : entries) {
    cell.clear();
    EncodeIndexCell(&cell, e);
    PutVarint32(out, static_cast<uint32_t>(cell.size()));
    out->append(cell);
  }
}

Status HistIndexNodeRef::Parse(const Slice& blob) {
  TSB_RETURN_IF_ERROR(node_.Parse(blob));
  if (node_.level() == 0) {
    return Status::Corruption("not a historical index node");
  }
  return Status::OK();
}

Status HistIndexNodeRef::AtView(int i, IndexEntryView* e) const {
  if (!DecodeIndexCellView(node_.Cell(i, &scratch_), e)) {
    return Status::Corruption("bad historical index entry");
  }
  return Status::OK();
}

Status HistIndexNodeRef::FindContaining(const Slice& key, Timestamp t,
                                        int* pos) const {
  // Entries are (key_lo, t_lo)-sorted and tile the node's region: the
  // unique containing entry has key_lo <= key. Binary-search the first
  // entry with key_lo > key, then walk backwards over the prefix — the
  // match is almost always within the run of entries sharing the nearest
  // key_lo, so the walk is short in practice.
  int lo = 0, hi = Count();
  if (node_.v3() && node_.RestartCount() > 1) {
    // Restart phase: the first entry with key_lo > key lies inside (or at
    // the far edge of) the last block whose restart key_lo <= key.
    int blo = 0, bhi = node_.RestartCount() - 1, best = -1;
    while (blo <= bhi) {
      const int mid = (blo + bhi) / 2;
      IndexEntryView v;
      TSB_RETURN_IF_ERROR(AtView(node_.RestartIndex(mid), &v));
      if (v.key_lo <= key) {
        best = mid;
        blo = mid + 1;
      } else {
        bhi = mid - 1;
      }
    }
    if (best < 0) {
      lo = hi = 0;  // every entry has key_lo > key
    } else {
      lo = node_.RestartIndex(best);
      hi = std::min(Count(), node_.RestartIndex(best + 1));
    }
  }
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    IndexEntryView v;
    TSB_RETURN_IF_ERROR(AtView(mid, &v));
    if (v.key_lo <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  for (int i = lo - 1; i >= 0; --i) {
    IndexEntryView v;
    TSB_RETURN_IF_ERROR(AtView(i, &v));
    if (v.Contains(key, t)) {
      *pos = i;
      return Status::OK();
    }
  }
  *pos = -1;
  return Status::OK();
}

Status DecodeHistIndexNode(const Slice& blob, uint8_t* level,
                           std::vector<IndexEntry>* out) {
  out->clear();
  HistIndexNodeRef node;
  TSB_RETURN_IF_ERROR(node.Parse(blob));
  *level = node.Level();
  out->reserve(node.Count());
  for (int i = 0; i < node.Count(); ++i) {
    IndexEntryView v;
    TSB_RETURN_IF_ERROR(node.AtView(i, &v));
    out->push_back(v.ToOwned());
  }
  return Status::OK();
}

}  // namespace tsb_tree
}  // namespace tsb
