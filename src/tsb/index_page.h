// TSB-tree index node format.
//
// Every index entry describes the key-time *rectangle* its child is
// responsible for: [key_lo, key_hi) x [t_lo, t_hi), with key_hi possibly
// +infinity and t_hi == kInfiniteTs for current children. The 1989 paper
// stores only the low bounds and searches by insertion order; its split
// rules, however, are stated in terms of the key ranges' lower AND upper
// bounds (section 3.5), which this encoding makes explicit. Search is by
// unique containment of the (key, time) point. Entries with a finite t_hi
// reference historical nodes; t_hi == infinity references current pages —
// an invariant the checker enforces.
//
// Index cell:
//   [u8 flags: bit0 = key_hi is +inf]
//   [varint klen_lo][key_lo]  ([varint klen_hi][key_hi] unless bit0)
//   [fixed64 t_lo][fixed64 t_hi]
//   [NodeRef]
//   [varint64 min_ts]   (optional; absent in legacy cells == 0)
//
// min_ts is a content-floor hint: no committed record anywhere in the
// child's subtree has a timestamp below it (0 = unknown, claim nothing).
// It is computed when the entry is created at a split — commit timestamps
// are monotonic, so later inserts can only raise the true floor — and it
// lets as-of readers skip subtrees whose rectangle contains the query
// time but whose content is entirely younger (rectangles inherit loose
// time floors across key splits; the hint is tight where the rectangle
// is not). Cells are length-delimited by their slotted container, so the
// trailing varint decodes iff present and legacy cells stay readable.
// Historical index blob: a hist_node.h container (v2 slotted or v3
// prefix-compressed) holding index cells; legacy v1 length-prefixed
// blobs remain decodable.
#ifndef TSBTREE_TSB_INDEX_PAGE_H_
#define TSBTREE_TSB_INDEX_PAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/slotted.h"
#include "tsb/data_page.h"
#include "tsb/node_ref.h"

namespace tsb {
namespace tsb_tree {

/// One index entry (owning). The rectangle is half-open on both axes.
struct IndexEntry {
  std::string key_lo;
  std::string key_hi;   // meaningful iff !key_hi_inf
  bool key_hi_inf = false;
  Timestamp t_lo = 0;
  Timestamp t_hi = kInfiniteTs;  // kInfiniteTs <=> current child
  NodeRef child;
  Timestamp min_ts = 0;  ///< subtree content floor; 0 = unknown

  bool current_child() const { return t_hi == kInfiniteTs; }

  bool ContainsKey(const Slice& k) const {
    if (Slice(key_lo) > k) return false;
    return key_hi_inf || k < Slice(key_hi);
  }
  bool ContainsTime(Timestamp t) const { return t_lo <= t && t < t_hi; }
  bool Contains(const Slice& k, Timestamp t) const {
    return ContainsKey(k) && ContainsTime(t);
  }
  /// True if the key interval strictly contains `s` in its interior
  /// (key_lo < s < key_hi) — the "straddler" test of the keyspace split
  /// rule, clause 4.
  bool KeyRangeStrictlyContains(const Slice& s) const {
    if (Slice(key_lo) >= s) return false;
    return key_hi_inf || s < Slice(key_hi);
  }

  size_t EncodedSize() const;
  std::string ToString() const;

  /// Order used in index pages: (key_lo, t_lo).
  bool operator<(const IndexEntry& o) const {
    const int c = Slice(key_lo).compare(Slice(o.key_lo));
    if (c != 0) return c < 0;
    return t_lo < o.t_lo;
  }
};

/// Non-owning view of an index cell (Slices point into the cell's buffer).
struct IndexEntryView {
  Slice key_lo;
  Slice key_hi;  // meaningful iff !key_hi_inf
  bool key_hi_inf = false;
  Timestamp t_lo = 0;
  Timestamp t_hi = kInfiniteTs;
  NodeRef child;
  Timestamp min_ts = 0;  ///< subtree content floor; 0 = unknown

  bool current_child() const { return t_hi == kInfiniteTs; }

  bool ContainsKey(const Slice& k) const {
    if (key_lo > k) return false;
    return key_hi_inf || k < key_hi;
  }
  bool ContainsTime(Timestamp t) const { return t_lo <= t && t < t_hi; }
  bool Contains(const Slice& k, Timestamp t) const {
    return ContainsKey(k) && ContainsTime(t);
  }

  IndexEntry ToOwned() const {
    IndexEntry e;
    e.key_lo = key_lo.ToString();
    e.key_hi = key_hi.ToString();
    e.key_hi_inf = key_hi_inf;
    e.t_lo = t_lo;
    e.t_hi = t_hi;
    e.child = child;
    e.min_ts = min_ts;
    return e;
  }
};

void EncodeIndexCell(std::string* out, const IndexEntry& e);
bool DecodeIndexCell(const Slice& cell, IndexEntry* e);
bool DecodeIndexCellView(const Slice& cell, IndexEntryView* e);

/// Accessor over a current index page. Caller keeps the page pinned.
class IndexPageRef {
 public:
  // Capacity follows the page's own format (see DataPageRef): v2 pages
  // reserve the checksum trailer, legacy v1 pages keep full capacity.
  IndexPageRef(char* buf, uint32_t page_size)
      : buf_(buf),
        slots_(buf + kTsbSlotBase,
               PageUsableSize(buf, page_size) - kTsbSlotBase) {}

  static void Format(char* buf, uint32_t page_size, uint8_t level);

  uint8_t Level() const { return TsbPageLevel(buf_); }
  int Count() const { return slots_.count(); }
  Status At(int i, IndexEntry* e) const;
  /// Non-owning variant; the view is valid while the page stays pinned.
  Status AtView(int i, IndexEntryView* e) const;

  /// Index of the unique entry containing (key, t); -1 if none (corrupt
  /// tree or t outside the node's region). Binary search on key_lo over
  /// the slotted directory, then a backward scan over the candidate
  /// prefix — the same algorithm historical index nodes use.
  int FindContaining(const Slice& key, Timestamp t) const;

  /// Index of the entry referencing the current page `page_id`; -1 if
  /// absent. (Current children have exactly one parent.)
  int FindChild(uint32_t page_id) const;

  bool HasRoomFor(const IndexEntry& e) const {
    return slots_.HasRoomFor(static_cast<uint32_t>(e.EncodedSize()));
  }
  bool Insert(const IndexEntry& e);
  bool Replace(int i, const IndexEntry& e);
  void Remove(int i) { slots_.Remove(i); }

  Status DecodeAll(std::vector<IndexEntry>* out) const;
  Status Load(const std::vector<IndexEntry>& entries);

  uint32_t UsedBytes() const { return slots_.capacity() - slots_.FreeBytes(); }
  uint32_t FreeBytes() const { return slots_.FreeBytes(); }

 private:
  char* buf_;
  SlottedView slots_;
};

/// Serializes a historical index node (level > 0) in `format`. When
/// `raw_bytes` is non-null it receives the v2-equivalent size.
/// `restart_interval` sets the v3 restart-block size (ignored for v2).
void SerializeHistIndexNode(uint8_t level, const std::vector<IndexEntry>& entries,
                            std::string* out,
                            HistNodeFormat format = HistNodeFormat::kV3,
                            uint64_t* raw_bytes = nullptr,
                            uint32_t restart_interval = kHistRestartInterval);

/// Serializes the legacy v1 wire format. Kept for compatibility tests;
/// new nodes are written as v2 or v3 (see TsbOptions::hist_node_format).
void SerializeHistIndexNodeV1(uint8_t level,
                              const std::vector<IndexEntry>& entries,
                              std::string* out);

/// Zero-copy accessor over a historical index node blob (any version).
/// The caller keeps the blob alive while the ref and its views are in use.
///
/// View lifetime: as with HistDataNodeRef, a v3 cell may live in the
/// ref's scratch buffer, so an IndexEntryView is valid only until the
/// next AtView/FindContaining call on the same ref.
class HistIndexNodeRef {
 public:
  /// Parses `blob`; fails unless it is a level>0 historical node.
  Status Parse(const Slice& blob);

  uint8_t Level() const { return node_.level(); }
  int Count() const { return node_.Count(); }
  uint8_t version() const { return node_.version(); }
  bool v2() const { return node_.v2(); }
  /// Named like IndexPageRef::AtView so generic code can use either.
  Status AtView(int i, IndexEntryView* e) const;

  /// Index of the unique entry containing (key, t) into *pos; -1 if none.
  /// Binary search on key_lo (entries are (key_lo, t_lo)-sorted; v3 nodes
  /// search restart blocks first), then a backward scan over the
  /// candidates whose key_lo <= key. A bad cell is Corruption, not a
  /// miss — historical blobs are supposed to be immutable.
  Status FindContaining(const Slice& key, Timestamp t, int* pos) const;

 private:
  HistNodeRef node_;
  mutable CellScratch scratch_;
};

/// Parses a historical index node blob (any version) into owning entries.
Status DecodeHistIndexNode(const Slice& blob, uint8_t* level,
                           std::vector<IndexEntry>* out);

}  // namespace tsb_tree
}  // namespace tsb

#endif  // TSBTREE_TSB_INDEX_PAGE_H_
