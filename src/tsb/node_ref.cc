#include "tsb/node_ref.h"

#include "common/coding.h"
#include "tsb/data_page.h"
#include "tsb/index_page.h"
#include "tsb/tsb_stats.h"

namespace tsb {
namespace tsb_tree {

std::string NodeRef::ToString() const {
  if (historical) {
    return "hist@" + std::to_string(addr.offset) + "+" +
           std::to_string(addr.length);
  }
  return "page#" + std::to_string(page_id);
}

void EncodeNodeRef(std::string* out, const NodeRef& ref) {
  out->push_back(ref.historical ? 1 : 0);
  if (ref.historical) {
    PutVarint64(out, ref.addr.offset);
    PutVarint32(out, ref.addr.length);
  } else {
    PutFixed32(out, ref.page_id);
  }
}

bool DecodeNodeRef(Slice* in, NodeRef* ref) {
  if (in->empty()) return false;
  const bool historical = ((*in)[0] != 0);
  in->remove_prefix(1);
  ref->historical = historical;
  if (historical) {
    uint64_t off = 0;
    uint32_t len = 0;
    if (!GetVarint64(in, &off) || !GetVarint32(in, &len)) return false;
    ref->addr = HistAddr{off, len};
    ref->page_id = kInvalidPageId;
  } else {
    if (in->size() < 4) return false;
    ref->page_id = DecodeFixed32(in->data());
    in->remove_prefix(4);
    ref->addr = HistAddr{};
  }
  return true;
}

Status DispatchHistNode(AppendStore* store, HistDecodeCounters* counters,
                        const HistAddr& addr, HistDataVisitor on_data,
                        HistIndexVisitor on_index,
                        const BlobReadHints& hints) {
  BlobHandle blob;
  TSB_RETURN_IF_ERROR(store->ReadView(addr, &blob, hints));
  if (counters != nullptr) {
    counters->view_decodes.fetch_add(1, std::memory_order_relaxed);
  }
  uint8_t level = 0;
  TSB_RETURN_IF_ERROR(HistNodeLevel(blob.data(), &level));
  if (level == 0) {
    HistDataNodeRef node;
    TSB_RETURN_IF_ERROR(node.Parse(blob.data()));
    return on_data(blob, node);
  }
  HistIndexNodeRef node;
  TSB_RETURN_IF_ERROR(node.Parse(blob.data()));
  return on_index(blob, node);
}

}  // namespace tsb_tree
}  // namespace tsb
