// NodeRef: a child pointer in the TSB-tree, which spans two devices.
//
// Current nodes live on the magnetic disk and are addressed by page id;
// historical nodes live in the append store and are addressed by
// <offset, length> (paper section 3.4: "The index pointer to a historical
// node needs only to record its address on the optical disk and its
// length").
#ifndef TSBTREE_TSB_NODE_REF_H_
#define TSBTREE_TSB_NODE_REF_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "storage/append_store.h"
#include "storage/pager.h"

namespace tsb {
namespace tsb_tree {

/// Two-device child pointer.
struct NodeRef {
  bool historical = false;
  uint32_t page_id = kInvalidPageId;  // current nodes
  HistAddr addr;                      // historical nodes

  static NodeRef Current(uint32_t id) {
    NodeRef r;
    r.historical = false;
    r.page_id = id;
    return r;
  }
  static NodeRef Historical(const HistAddr& a) {
    NodeRef r;
    r.historical = true;
    r.addr = a;
    return r;
  }

  bool operator==(const NodeRef& o) const {
    if (historical != o.historical) return false;
    return historical ? (addr == o.addr) : (page_id == o.page_id);
  }

  std::string ToString() const;
};

/// Appends the wire encoding of `ref` (1 + 4 bytes current; 1 + varints
/// historical).
void EncodeNodeRef(std::string* out, const NodeRef& ref);

/// Consumes a NodeRef from the front of `in`.
bool DecodeNodeRef(Slice* in, NodeRef* ref);

}  // namespace tsb_tree
}  // namespace tsb

#endif  // TSBTREE_TSB_NODE_REF_H_
