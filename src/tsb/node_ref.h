// NodeRef: a child pointer in the TSB-tree, which spans two devices.
//
// Current nodes live on the magnetic disk and are addressed by page id;
// historical nodes live in the append store and are addressed by
// <offset, length> (paper section 3.4: "The index pointer to a historical
// node needs only to record its address on the optical disk and its
// length").
#ifndef TSBTREE_TSB_NODE_REF_H_
#define TSBTREE_TSB_NODE_REF_H_

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>

#include "common/slice.h"
#include "common/status.h"
#include "storage/append_store.h"
#include "storage/pager.h"

namespace tsb {
namespace tsb_tree {

/// Two-device child pointer.
struct NodeRef {
  bool historical = false;
  uint32_t page_id = kInvalidPageId;  // current nodes
  HistAddr addr;                      // historical nodes

  static NodeRef Current(uint32_t id) {
    NodeRef r;
    r.historical = false;
    r.page_id = id;
    return r;
  }
  static NodeRef Historical(const HistAddr& a) {
    NodeRef r;
    r.historical = true;
    r.addr = a;
    return r;
  }

  bool operator==(const NodeRef& o) const {
    if (historical != o.historical) return false;
    return historical ? (addr == o.addr) : (page_id == o.page_id);
  }

  std::string ToString() const;
};

/// Appends the wire encoding of `ref` (1 + 4 bytes current; 1 + varints
/// historical).
void EncodeNodeRef(std::string* out, const NodeRef& ref);

/// Consumes a NodeRef from the front of `in`.
bool DecodeNodeRef(Slice* in, NodeRef* ref);

// ---------------------------------------------------------------- dispatch

class HistDataNodeRef;        // tsb/data_page.h
class HistIndexNodeRef;       // tsb/index_page.h
struct HistDecodeCounters;    // tsb/tsb_stats.h

/// Minimal non-owning callable reference — no allocation, no std::function
/// overhead. The referenced callable must outlive the FnRef (the dispatch
/// below only ever invokes it within the calling expression).
template <typename Sig>
class FnRef;

template <typename R, typename... Args>
class FnRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, FnRef>>>
  FnRef(F&& f)  // NOLINT(google-explicit-constructor): bind-site sugar
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

using HistDataVisitor = FnRef<Status(BlobHandle&, HistDataNodeRef&)>;
using HistIndexVisitor = FnRef<Status(BlobHandle&, HistIndexNodeRef&)>;

/// The single edit site for reading a historical node: pins the blob at
/// `addr` (ReadView with `hints` — checksum/cache/access-pattern behavior
/// threaded down from the public ReadOptions), counts the decode in
/// `counters` (may be null), probes the level byte and parses the matching
/// ref type — any wire version, v1 through v3 — then invokes the
/// corresponding visitor. The blob stays pinned for the duration of the
/// visit; a visitor may move the handle and ref into longer-lived state to
/// extend the pin (cursor frames do).
///
/// Every historical reader (point lookups, range scans, cursors, the tree
/// checker) funnels through here, so a future v4 format changes exactly
/// one descent path.
Status DispatchHistNode(AppendStore* store, HistDecodeCounters* counters,
                        const HistAddr& addr, HistDataVisitor on_data,
                        HistIndexVisitor on_index,
                        const BlobReadHints& hints = BlobReadHints());

}  // namespace tsb_tree
}  // namespace tsb

#endif  // TSBTREE_TSB_NODE_REF_H_
