// PinnableValue: a zero-copy result slot for point lookups.
//
// When a lookup resolves inside the historical store, the value bytes
// already live in a pinned immutable blob (shared-blob cache entry or
// device mapping); copying them into a std::string — what the legacy
// string Get does — is the last memcpy on an otherwise zero-copy read
// path. PinnableValue removes it: the handle keeps the blob pinned and
// the value is a Slice straight into it. Values found in mutable current
// pages are copied into an internal buffer under the page latch (a pin
// without a latch would let the writer rewrite the page underneath the
// caller); the buffer's capacity is reused across lookups, so a reused
// PinnableValue makes repeated lookups allocation-free either way.
#ifndef TSBTREE_TSB_PINNABLE_VALUE_H_
#define TSBTREE_TSB_PINNABLE_VALUE_H_

#include <string>
#include <utility>

#include "common/clock.h"
#include "common/slice.h"
#include "storage/append_store.h"
#include "tsb/hist_node.h"

namespace tsb {
namespace tsb_tree {

class TsbTree;

class PinnableValue {
 public:
  PinnableValue() = default;
  // The value Slice may point into scratch_/buf_; moving or copying the
  // object would dangle it, and a pin-sharing copy is never what a result
  // slot means. Reuse one slot and Reset() between lookups instead.
  PinnableValue(const PinnableValue&) = delete;
  PinnableValue& operator=(const PinnableValue&) = delete;

  /// The value bytes; valid until the next lookup into this object (or
  /// Reset). No lifetime coupling to the database's caches: the pin keeps
  /// blob-backed bytes alive even across cache eviction or store close.
  Slice data() const { return value_; }
  /// Commit timestamp of the version read.
  Timestamp timestamp() const { return ts_; }
  /// True when the bytes are served from a pinned blob (no value copy was
  /// made); false when they were copied from a mutable current page.
  bool pinned() const { return pin_.valid(); }

  std::string ToString() const { return value_.ToString(); }

  void Reset() {
    pin_.Release();
    value_ = Slice();
    ts_ = 0;
  }

 private:
  friend class TsbTree;

  /// Current-page result: copy `value` (the page latch is held by the
  /// caller for the duration of this call).
  void SetCopied(const Slice& value, Timestamp ts) {
    pin_.Release();
    buf_.assign(value.data(), value.size());
    value_ = Slice(buf_);
    ts_ = ts;
  }

  /// Historical result: adopt the blob pin; `value` points into the blob
  /// or into scratch_ (delta-decoded v3 cells).
  void SetPinned(BlobHandle blob, const Slice& value, Timestamp ts) {
    pin_ = std::move(blob);
    value_ = value;
    ts_ = ts;
  }

  /// Reassembly target for delta-encoded v3 cells: the tree decodes the
  /// final cell into THIS scratch so the view survives the lookup.
  CellScratch* scratch() { return &scratch_; }

  BlobHandle pin_;
  CellScratch scratch_;
  Slice value_;
  std::string buf_;
  Timestamp ts_ = 0;
};

}  // namespace tsb_tree
}  // namespace tsb

#endif  // TSBTREE_TSB_PINNABLE_VALUE_H_
