#include "tsb/split_policy.h"

#include <algorithm>

namespace tsb {
namespace tsb_tree {

DataNodeStats ComputeDataNodeStats(const std::vector<DataEntry>& entries) {
  DataNodeStats s;
  s.total_entries = entries.size();
  size_t i = 0;
  while (i < entries.size()) {
    size_t j = i;
    while (j < entries.size() && entries[j].key == entries[i].key) ++j;
    s.distinct_keys++;
    // Within the run [i, j): committed versions first (ts asc), then
    // uncommitted. Current = latest committed + every uncommitted.
    int latest_committed = -1;
    for (size_t k = i; k < j; ++k) {
      s.bytes_total += entries[k].EncodedSize();
      if (entries[k].uncommitted()) {
        s.uncommitted_entries++;
        s.current_entries++;
        s.bytes_current += entries[k].EncodedSize();
      } else {
        latest_committed = static_cast<int>(k);
      }
    }
    if (latest_committed >= 0) {
      s.current_entries++;
      s.bytes_current += entries[latest_committed].EncodedSize();
    }
    i = j;
  }
  return s;
}

SplitKind SplitPolicy::DecideDataSplit(const DataNodeStats& stats,
                                       uint32_t page_capacity) const {
  // Boundary conditions (section 3.2) override any policy:
  // all data current => time splitting is useless, key split;
  // a single key => key splitting is impossible, time split.
  if (!stats.has_superseded_versions()) return SplitKind::kKeySplit;
  if (stats.distinct_keys <= 1) return SplitKind::kTimeSplit;

  switch (config_.kind_policy) {
    case SplitKindPolicy::kWobtStyle:
      return SplitKind::kTimeSplit;
    case SplitKindPolicy::kThreshold: {
      const double frac = stats.bytes_total == 0
                              ? 1.0
                              : static_cast<double>(stats.bytes_current) /
                                    static_cast<double>(stats.bytes_total);
      return frac >= config_.key_split_threshold ? SplitKind::kKeySplit
                                                 : SplitKind::kTimeSplit;
    }
    case SplitKindPolicy::kCostBased: {
      // Marginal CS of each choice (section 3.2): a key split allocates one
      // more magnetic page; a time split appends the superseded bytes to
      // the optical store.
      const double key_cost =
          config_.cost_magnetic * static_cast<double>(page_capacity);
      const double hist_bytes =
          static_cast<double>(stats.bytes_total - stats.bytes_current);
      const double time_cost = config_.cost_optical * hist_bytes;
      return key_cost <= time_cost ? SplitKind::kKeySplit
                                   : SplitKind::kTimeSplit;
    }
  }
  return SplitKind::kTimeSplit;
}

uint32_t SplitPolicy::ChooseRestartInterval(uint32_t base, size_t entries,
                                            size_t distinct_keys,
                                            size_t key_bytes) const {
  if (!config_.adaptive_restart_interval || entries == 0 || base == 0) {
    return base;
  }
  const size_t avg_key = key_bytes / entries;
  const double versions_per_key =
      distinct_keys == 0
          ? 1.0
          : static_cast<double>(entries) / static_cast<double>(distinct_keys);
  if (avg_key >= 48) {
    // Long keys: every non-restart cell pays a suffix reassembly, so
    // small blocks bound the cells decoded per probe.
    return std::max<uint32_t>(4, base / 4);
  }
  if (versions_per_key >= 4.0) {
    // Version runs: consecutive cells share the whole key, so a bigger
    // block amortizes the restart cell across more of them.
    return std::min<uint32_t>(128, base * 4);
  }
  return base;
}

size_t SplitPolicy::RedundantAt(const std::vector<DataEntry>& entries,
                                Timestamp t) {
  // Per key, the version with the largest ts <= T must be in the new node
  // (clause 3); it is redundant iff its ts < T (then clause 1 also places
  // it in the historical node).
  size_t redundant = 0;
  size_t i = 0;
  while (i < entries.size()) {
    size_t j = i;
    Timestamp best = kInfiniteTs;
    bool have = false;
    while (j < entries.size() && entries[j].key == entries[i].key) {
      if (!entries[j].uncommitted() && entries[j].ts <= t) {
        best = entries[j].ts;
        have = true;
      }
      ++j;
    }
    if (have && best < t) redundant++;
    i = j;
  }
  return redundant;
}

Timestamp SplitPolicy::ChooseSplitTime(const std::vector<DataEntry>& entries,
                                       Timestamp t_lo, Timestamp now) const {
  // Collect committed timestamps (sorted entries => per-key ascending, but
  // we need the global distinct set).
  std::vector<Timestamp> committed;
  committed.reserve(entries.size());
  for (const DataEntry& e : entries) {
    if (!e.uncommitted()) committed.push_back(e.ts);
  }
  if (committed.empty()) return t_lo + 1;  // caller will fail gracefully
  std::sort(committed.begin(), committed.end());
  const Timestamp min_ts = committed.front();

  auto clamp = [&](Timestamp t) {
    // Valid range: t_lo < T, min_ts < T (non-empty migration), T <= now.
    Timestamp lo = std::max(t_lo, min_ts) + 1;
    if (t < lo) t = lo;
    if (t > now) t = now;
    return t;
  };

  switch (config_.time_mode) {
    case SplitTimeMode::kCurrentTime:
      return clamp(now);
    case SplitTimeMode::kLastUpdate: {
      // T = timestamp of the last committed *update* (a version that
      // supersedes an earlier one); trailing pure insertions then stay out
      // of the historical node (section 3.3).
      Timestamp last_update = 0;
      size_t i = 0;
      while (i < entries.size()) {
        size_t j = i;
        size_t committed_in_run = 0;
        while (j < entries.size() && entries[j].key == entries[i].key) {
          if (!entries[j].uncommitted()) {
            committed_in_run++;
            if (committed_in_run >= 2) {
              last_update = std::max(last_update, entries[j].ts);
            }
          }
          ++j;
        }
        i = j;
      }
      if (last_update == 0) return clamp(now);
      return clamp(last_update);
    }
    case SplitTimeMode::kMinRedundancy: {
      // Candidates: every distinct committed timestamp (exclusive bounds
      // handled by clamp) plus `now`. Among redundancy minima prefer the
      // largest T (migrates the most history).
      std::vector<Timestamp> candidates;
      for (size_t i = 0; i < committed.size(); ++i) {
        if (i == 0 || committed[i] != committed[i - 1]) {
          candidates.push_back(committed[i]);
        }
      }
      candidates.push_back(now);
      Timestamp best_t = clamp(now);
      size_t best_r = SIZE_MAX;
      for (Timestamp c : candidates) {
        const Timestamp t = clamp(c);
        const size_t r = RedundantAt(entries, t);
        if (r < best_r || (r == best_r && t > best_t)) {
          best_r = r;
          best_t = t;
        }
      }
      return best_t;
    }
  }
  return clamp(now);
}

}  // namespace tsb_tree
}  // namespace tsb
