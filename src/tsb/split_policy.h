// Split policies, paper sections 3.2-3.3.
//
// Two orthogonal decisions are made when a data node fills:
//
// 1. *Kind*: key-space split vs time split. The boundary conditions are
//    hard rules (3.2): a node of all-distinct current keys MUST key-split
//    (time splitting is useless); a node of versions of a single key MUST
//    time-split (key splitting is impossible). In between, policy: the
//    threshold policy key-splits when current versions occupy at least a
//    configured fraction of the node; the cost policy minimizes the
//    marginal storage cost CS = SpaceM*CM + SpaceO*CO; the WOBT-style
//    policy always prefers time splits at current time (for the baseline
//    comparison).
//
// 2. *Time value* for time splits (3.3): current time (the only choice the
//    WOBT has), the time of the last update (so trailing insertions stay
//    out of the historical node), or the redundancy-minimizing time.
#ifndef TSBTREE_TSB_SPLIT_POLICY_H_
#define TSBTREE_TSB_SPLIT_POLICY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "tsb/data_page.h"

namespace tsb {
namespace tsb_tree {

enum class SplitKind : uint8_t {
  kKeySplit = 0,
  kTimeSplit = 1,
};

enum class SplitKindPolicy : uint8_t {
  /// Mimic the WOBT: time split whenever any superseded version exists.
  kWobtStyle = 0,
  /// Key split iff current-version bytes >= threshold * total bytes.
  kThreshold = 1,
  /// Pick the kind with smaller marginal cost under CS = SpaceM*CM +
  /// SpaceO*CO (section 3.2).
  kCostBased = 2,
};

enum class SplitTimeMode : uint8_t {
  kCurrentTime = 0,   ///< WOBT behaviour: split at now
  kLastUpdate = 1,    ///< push back to the last update (section 3.3)
  kMinRedundancy = 2, ///< choose the candidate time with fewest duplicates
};

struct SplitPolicyConfig {
  SplitKindPolicy kind_policy = SplitKindPolicy::kThreshold;
  /// kThreshold: key split when bytes_current/bytes_total >= this.
  double key_split_threshold = 0.67;
  SplitTimeMode time_mode = SplitTimeMode::kLastUpdate;
  /// kCostBased: per-byte storage prices.
  double cost_magnetic = 1.0;
  double cost_optical = 0.2;
  /// Pick the v3 restart-block size per consolidated node instead of
  /// using TsbOptions::hist_restart_interval verbatim: long-key nodes get
  /// small blocks (fewer cells decoded per probe), dense version-run
  /// nodes get large blocks (the shared key compresses across more
  /// cells). Read-compatible either way — the interval is stored per
  /// node.
  bool adaptive_restart_interval = true;
  /// Stamp content-floor min_ts hints on index cells at split time so
  /// scans prune subtrees by timestamp. Disabling reproduces pre-hint
  /// databases (cells store min_ts = 0); TreeChecker::RepairContentFloors
  /// backfills such legacy cells in place.
  bool content_floor_hints = true;
};

/// What a full data node looks like to the policy.
struct DataNodeStats {
  size_t total_entries = 0;
  size_t distinct_keys = 0;
  size_t current_entries = 0;  ///< latest committed per key + uncommitted
  size_t bytes_total = 0;
  size_t bytes_current = 0;
  size_t uncommitted_entries = 0;
  bool has_superseded_versions() const {
    return total_entries > current_entries;
  }
};

/// Computes stats over a decoded node. `entries` must be (key, ts) sorted.
DataNodeStats ComputeDataNodeStats(const std::vector<DataEntry>& entries);

/// The pluggable split policy.
class SplitPolicy {
 public:
  explicit SplitPolicy(const SplitPolicyConfig& config) : config_(config) {}

  const SplitPolicyConfig& config() const { return config_; }

  /// Chooses key vs time split for a full data node. `page_capacity` is the
  /// slotted capacity of a current page (for the cost estimate).
  SplitKind DecideDataSplit(const DataNodeStats& stats,
                            uint32_t page_capacity) const;

  /// Chooses the split time T for a time split of a data node whose region
  /// starts at `t_lo`, given `now`. Guarantees t_lo < T <= now+1 and that
  /// at least one committed entry has ts < T (callers verified such an
  /// entry exists). `entries` must be (key, ts) sorted.
  Timestamp ChooseSplitTime(const std::vector<DataEntry>& entries,
                            Timestamp t_lo, Timestamp now) const;

  /// The v3 restart-block size for ONE consolidated historical node about
  /// to be written. `base` is the tree-level default
  /// (TsbOptions::hist_restart_interval); `entries`, `distinct_keys` and
  /// `key_bytes` describe the node's cells. Returns `base` unchanged when
  /// adaptive_restart_interval is off.
  uint32_t ChooseRestartInterval(uint32_t base, size_t entries,
                                 size_t distinct_keys,
                                 size_t key_bytes) const;

  /// Number of entries that would be stored redundantly (in both the
  /// historical and the current node) if the node split at time T — i.e.
  /// per key, the latest committed version with ts < T that persists
  /// through T (TIME-SPLIT RULE clause 3).
  static size_t RedundantAt(const std::vector<DataEntry>& entries,
                            Timestamp t);

 private:
  SplitPolicyConfig config_;
};

}  // namespace tsb_tree
}  // namespace tsb

#endif  // TSBTREE_TSB_SPLIT_POLICY_H_
