#include "tsb/tree_check.h"

#include <algorithm>
#include <set>
#include <vector>

#include "storage/append_store.h"
#include "storage/page.h"

namespace tsb {
namespace tsb_tree {

namespace {

std::string Describe(const NodeRef& ref) { return ref.ToString(); }

// The check functions run over entry views so historical nodes are
// validated directly on the pinned blob (no per-entry materialization);
// current pages are copied out under their latch once and viewed.
IndexEntryView ViewOf(const IndexEntry& e) {
  IndexEntryView v;
  v.key_lo = Slice(e.key_lo);
  v.key_hi = Slice(e.key_hi);
  v.key_hi_inf = e.key_hi_inf;
  v.t_lo = e.t_lo;
  v.t_hi = e.t_hi;
  v.child = e.child;
  v.min_ts = e.min_ts;
  return v;
}

DataEntryView ViewOf(const DataEntry& e) {
  DataEntryView v;
  v.key = Slice(e.key);
  v.ts = e.ts;
  v.txn = e.txn;
  v.value = Slice(e.value);
  return v;
}

}  // namespace

Status TreeChecker::Check() {
  nodes_visited_ = 0;
  current_parent_counts_.clear();
  dirty_at_start_.clear();
  if (verify_checksums_) {
    std::vector<uint32_t> dirty;
    tree_->pool_->DirtyIds(&dirty);
    dirty_at_start_.insert(dirty.begin(), dirty.end());
  }
  Window all;
  const NodeRef root = tree_->root();
  current_parent_counts_[root.page_id] = 1;
  TSB_RETURN_IF_ERROR(
      CheckNode(root, static_cast<uint8_t>(tree_->height() - 1), all));
  for (const auto& [page, count] : current_parent_counts_) {
    if (count != 1) {
      return Status::Corruption(
          "current page has wrong parent count",
          "page " + std::to_string(page) + " count " + std::to_string(count));
    }
  }
  return Status::OK();
}

Status TreeChecker::CheckNode(const NodeRef& ref, uint8_t expected_level,
                              const Window& win) {
  nodes_visited_++;
  if (ref.historical && verify_checksums_) {
    // Re-CRC the blob against the device bytes, past the verified memo
    // and the read cache (the dispatch below may legitimately serve a
    // copy verified long ago).
    BlobHandle device_bytes;
    BlobReadHints hints;
    hints.verify_checksums = true;
    hints.fill_cache = false;
    TSB_RETURN_IF_ERROR(
        tree_->hist_->ReadView(ref.addr, &device_bytes, hints));
  }
  if (ref.historical) {
    // Historical nodes go through the shared dispatch like every other
    // reader. The checker needs all entries of a node alive at once (the
    // tiling check cross-references them), and v3 views are only valid
    // one at a time, so entries are copied out — fine for a maintenance
    // walk.
    return DispatchHistNode(
        tree_->hist_.get(), &tree_->hist_decodes_, ref.addr,
        [&](BlobHandle&, HistDataNodeRef& node) -> Status {
          if (expected_level != 0) {
            return Status::Corruption(
                "node level mismatch",
                Describe(ref) + " level 0 expected " +
                    std::to_string(expected_level));
          }
          std::vector<DataEntry> owned(node.Count());
          for (int i = 0; i < node.Count(); ++i) {
            DataEntryView v;
            TSB_RETURN_IF_ERROR(node.At(i, &v));
            owned[i] = v.ToOwned();
          }
          std::vector<DataEntryView> entries;
          entries.reserve(owned.size());
          for (const DataEntry& e : owned) entries.push_back(ViewOf(e));
          return CheckDataEntries(ref, entries, win);
        },
        [&](BlobHandle&, HistIndexNodeRef& node) -> Status {
          if (node.Level() != expected_level) {
            return Status::Corruption(
                "node level mismatch",
                Describe(ref) + " level " + std::to_string(node.Level()) +
                    " expected " + std::to_string(expected_level));
          }
          std::vector<IndexEntry> owned(node.Count());
          for (int i = 0; i < node.Count(); ++i) {
            IndexEntryView v;
            TSB_RETURN_IF_ERROR(node.AtView(i, &v));
            owned[i] = v.ToOwned();
          }
          std::vector<IndexEntryView> entries;
          entries.reserve(owned.size());
          for (const IndexEntry& e : owned) entries.push_back(ViewOf(e));
          return CheckIndexEntries(ref, node.Level(), entries, win);
        });
  }
  if (verify_checksums_ && dirty_at_start_.count(ref.page_id) == 0) {
    // Clean (or evicted) page: the device copy is current under no-steal,
    // so its stored checksums must verify. A dirty page is skipped — its
    // device copy is legitimately behind until the next checkpoint.
    const uint32_t ps = tree_->pager()->page_size();
    std::vector<char> raw(ps);
    TSB_RETURN_IF_ERROR(tree_->pager()->device()->Read(
        static_cast<uint64_t>(ref.page_id) * ps, ps, raw.data()));
    Status vs = VerifyPage(raw.data(), ps, ref.page_id);
    if (!vs.ok()) {
      return Status::Corruption(
          "device page failed checksum audit",
          Describe(ref) + ": " + vs.ToString());
    }
  }
  DecodedNode node;
  TSB_RETURN_IF_ERROR(tree_->ReadNode(ref, &node));
  if (node.level != expected_level) {
    return Status::Corruption("node level mismatch",
                              Describe(ref) + " level " +
                                  std::to_string(node.level) + " expected " +
                                  std::to_string(expected_level));
  }
  if (node.is_data()) {
    std::vector<DataEntryView> entries;
    entries.reserve(node.data.size());
    for (const DataEntry& e : node.data) entries.push_back(ViewOf(e));
    return CheckDataEntries(ref, entries, win);
  }
  std::vector<IndexEntryView> entries;
  entries.reserve(node.index.size());
  for (const IndexEntry& e : node.index) entries.push_back(ViewOf(e));
  return CheckIndexEntries(ref, node.level, entries, win);
}

Status TreeChecker::CheckIndexEntries(
    const NodeRef& ref, uint8_t level,
    const std::vector<IndexEntryView>& entries, const Window& win) {
  if (entries.empty()) {
    return Status::Corruption("empty index node", Describe(ref));
  }

  // Well-formedness, ordering, and the migration invariant.
  for (size_t i = 0; i < entries.size(); ++i) {
    const IndexEntryView& e = entries[i];
    if (!e.key_hi_inf && e.key_lo >= e.key_hi) {
      return Status::Corruption("empty key range", e.ToOwned().ToString());
    }
    if (e.t_lo >= e.t_hi) {
      return Status::Corruption("empty time range", e.ToOwned().ToString());
    }
    if (e.current_child() == e.child.historical) {
      return Status::Corruption(
          "t_hi/device mismatch (finite t_hi <=> historical)",
          e.ToOwned().ToString());
    }
    if (i > 0) {
      const IndexEntryView& p = entries[i - 1];
      const int c = p.key_lo.compare(e.key_lo);
      if (c > 0 || (c == 0 && p.t_lo >= e.t_lo)) {
        return Status::Corruption("index entries out of order", Describe(ref));
      }
    }
    // Entries not fully inside the node window must be historical
    // straddlers (duplicated by keyspace splits, rule 4) — on the key axis.
    const bool inside_lo = e.key_lo >= Slice(win.key_lo);
    const bool inside_hi =
        win.key_hi_inf || (!e.key_hi_inf && e.key_hi <= Slice(win.key_hi));
    if ((!inside_lo || !inside_hi) && !e.child.historical) {
      return Status::Corruption("current child exceeds node key range",
                                e.ToOwned().ToString());
    }
    // Time axis: entries may begin before the node's t_lo only if they are
    // historical (local-time-split straddlers).
    if (e.t_lo < win.t_lo && !e.child.historical) {
      return Status::Corruption("current child predates node time range",
                                e.ToOwned().ToString());
    }
  }

  // ---- tiling check on the boundary grid ----
  // Key boundaries: window low plus every entry bound strictly inside.
  std::vector<Slice> kb = {Slice(win.key_lo)};
  auto add_key = [&](const Slice& k) {
    if (k <= Slice(win.key_lo)) return;
    if (!win.key_hi_inf && k >= Slice(win.key_hi)) return;
    kb.push_back(k);
  };
  std::vector<Timestamp> tb = {win.t_lo};
  auto add_time = [&](Timestamp t) {
    if (t <= win.t_lo) return;
    if (t >= win.t_hi) return;
    tb.push_back(t);
  };
  for (const IndexEntryView& e : entries) {
    add_key(e.key_lo);
    if (!e.key_hi_inf) add_key(e.key_hi);
    add_time(e.t_lo);
    if (e.t_hi != kInfiniteTs) add_time(e.t_hi);
  }
  std::sort(kb.begin(), kb.end());
  kb.erase(std::unique(kb.begin(), kb.end()), kb.end());
  std::sort(tb.begin(), tb.end());
  tb.erase(std::unique(tb.begin(), tb.end()), tb.end());

  for (const Slice& k : kb) {
    for (const Timestamp t : tb) {
      int cover = 0;
      for (const IndexEntryView& e : entries) {
        if (e.Contains(k, t)) cover++;
      }
      if (cover != 1) {
        return Status::Corruption(
            "index region not tiled",
            Describe(ref) + " point (" + k.ToString() + ", " +
                std::to_string(t) + ") covered " + std::to_string(cover) +
                " times");
      }
    }
  }

  // ---- recurse ----
  for (const IndexEntryView& e : entries) {
    if (!e.child.historical) {
      current_parent_counts_[e.child.page_id]++;
    }
    // The child's region is the ENTRY rectangle itself, not its clip by our
    // window: straddler references duplicated by keyspace/time splits carry
    // the full child rectangle into both hosting nodes (rule 4), and the
    // child's contents answer to that rectangle. (Queries clip; structure
    // does not.)
    Window child;
    child.key_lo = e.key_lo.ToString();
    child.key_hi = e.key_hi.ToString();
    child.key_hi_inf = e.key_hi_inf;
    child.t_lo = e.t_lo;
    child.t_hi = e.t_hi;
    // Claims compose: every entry on the path bounds the whole subtree
    // under it, so the child answers to the strongest one seen so far.
    child.min_ts = std::max(win.min_ts, e.min_ts);
    TSB_RETURN_IF_ERROR(
        CheckNode(e.child, static_cast<uint8_t>(level - 1), child));
  }
  return Status::OK();
}

Status TreeChecker::CheckDataEntries(const NodeRef& ref,
                                     const std::vector<DataEntryView>& entries,
                                     const Window& win) {
  Slice prev_key;
  Timestamp prev_ts = 0;
  bool have_prev = false;
  // Per key, committed records with ts < win.t_lo seen so far.
  Slice run_key;
  bool have_run = false;
  int run_below_tlo = 0;
  Timestamp run_max_committed = 0;

  for (const DataEntryView& e : entries) {
    const Slice k = e.key;
    if (k < Slice(win.key_lo) ||
        (!win.key_hi_inf && k >= Slice(win.key_hi))) {
      return Status::Corruption("record outside node key range",
                                Describe(ref) + " key " + k.ToString());
    }
    if (have_prev) {
      const int c = prev_key.compare(k);
      if (c > 0 || (c == 0 && prev_ts > e.ts)) {
        return Status::Corruption("data records out of order", Describe(ref));
      }
    }
    prev_key = k;
    prev_ts = e.ts;
    have_prev = true;

    if (e.uncommitted()) {
      if (ref.historical) {
        return Status::Corruption("uncommitted record migrated to history",
                                  Describe(ref));
      }
      continue;
    }
    if (e.ts >= win.t_hi) {
      return Status::Corruption("record after node time range",
                                Describe(ref) + " key " + k.ToString());
    }
    if (e.ts < win.min_ts) {
      return Status::Corruption(
          "committed record predates content-floor hint",
          Describe(ref) + " key " + k.ToString() + " ts " +
              std::to_string(e.ts) + " min_ts " +
              std::to_string(win.min_ts));
    }
    if (!have_run || k != run_key) {
      run_key = k;
      have_run = true;
      run_below_tlo = 0;
      run_max_committed = 0;
    }
    if (e.ts < win.t_lo) {
      run_below_tlo++;
      if (run_below_tlo > 1) {
        return Status::Corruption(
            "more than one pre-t_lo version of a key (TIME-SPLIT RULE 3)",
            Describe(ref) + " key " + k.ToString());
      }
    }
    if (e.ts < run_max_committed) {
      return Status::Corruption("committed versions out of ts order",
                                Describe(ref));
    }
    run_max_committed = e.ts;
  }
  return Status::OK();
}

Status TreeChecker::RepairContentFloors(uint64_t* repaired) {
  *repaired = 0;
  hist_floor_memo_.clear();
  // Exclusive writer lock: the walk reads pages unlatched and rewrites
  // index cells in place, so every mutator must be stopped.
  std::lock_guard<std::shared_mutex> wl(tree_->writer_mu_);
  Timestamp floor = kInfiniteTs;
  return RepairNodeFloors(tree_->root(), &floor, repaired);
}

Status TreeChecker::RepairNodeFloors(const NodeRef& ref, Timestamp* floor,
                                     uint64_t* repaired) {
  *floor = kInfiniteTs;
  if (ref.historical) {
    auto memo = hist_floor_memo_.find(ref.addr.offset);
    if (memo != hist_floor_memo_.end()) {
      *floor = memo->second;
      return Status::OK();
    }
  }
  DecodedNode node;
  TSB_RETURN_IF_ERROR(tree_->ReadNode(ref, &node));
  if (node.is_data()) {
    for (const DataEntry& e : node.data) {
      if (!e.uncommitted() && e.ts < *floor) *floor = e.ts;
    }
  } else {
    for (size_t i = 0; i < node.index.size(); ++i) {
      const IndexEntry& e = node.index[i];
      Timestamp child_floor = kInfiniteTs;
      TSB_RETURN_IF_ERROR(RepairNodeFloors(e.child, &child_floor, repaired));
      // Upgrade a legacy cell (min_ts == 0 claims nothing) of a CURRENT
      // page when the subtree has a real floor. kInfiniteTs (no committed
      // record yet) must NOT be stamped: a later insert would break the
      // claim; 0 stays sound. Historical pages are immutable — skip.
      if (!ref.historical && e.min_ts == 0 && child_floor > 0 &&
          child_floor != kInfiniteTs) {
        PageHandle h;
        TSB_RETURN_IF_ERROR(
            tree_->pool_->FetchExclusive(ref.page_id, &h));
        IndexPageRef page(h.data(), tree_->options_.page_size);
        IndexEntry cell;
        TSB_RETURN_IF_ERROR(page.At(static_cast<int>(i), &cell));
        cell.min_ts = child_floor;
        // Replace fails only when the wider varint does not fit the
        // page; the 0 claim stays (sound, just unpruned).
        if (page.Replace(static_cast<int>(i), cell)) {
          h.MarkDirty();
          ++*repaired;
        }
      }
      if (child_floor < *floor) *floor = child_floor;
    }
  }
  if (ref.historical) hist_floor_memo_[ref.addr.offset] = *floor;
  return Status::OK();
}

}  // namespace tsb_tree
}  // namespace tsb
