#include "tsb/tree_check.h"

#include <algorithm>
#include <set>
#include <vector>

namespace tsb {
namespace tsb_tree {

namespace {

std::string Describe(const NodeRef& ref) { return ref.ToString(); }

}  // namespace

Status TreeChecker::Check() {
  nodes_visited_ = 0;
  current_parent_counts_.clear();
  Window all;
  const NodeRef root = tree_->root();
  current_parent_counts_[root.page_id] = 1;
  TSB_RETURN_IF_ERROR(
      CheckNode(root, static_cast<uint8_t>(tree_->height() - 1), all));
  for (const auto& [page, count] : current_parent_counts_) {
    if (count != 1) {
      return Status::Corruption(
          "current page has wrong parent count",
          "page " + std::to_string(page) + " count " + std::to_string(count));
    }
  }
  return Status::OK();
}

Status TreeChecker::CheckNode(const NodeRef& ref, uint8_t expected_level,
                              const Window& win) {
  DecodedNode node;
  TSB_RETURN_IF_ERROR(tree_->ReadNode(ref, &node));
  nodes_visited_++;
  if (node.level != expected_level) {
    return Status::Corruption("node level mismatch",
                              Describe(ref) + " level " +
                                  std::to_string(node.level) + " expected " +
                                  std::to_string(expected_level));
  }
  if (node.is_data()) return CheckDataNode(ref, node, win);
  return CheckIndexNode(ref, node, win);
}

Status TreeChecker::CheckIndexNode(const NodeRef& ref, const DecodedNode& node,
                                   const Window& win) {
  const auto& entries = node.index;
  if (entries.empty()) {
    return Status::Corruption("empty index node", Describe(ref));
  }

  // Well-formedness, ordering, and the migration invariant.
  for (size_t i = 0; i < entries.size(); ++i) {
    const IndexEntry& e = entries[i];
    if (!e.key_hi_inf && Slice(e.key_lo) >= Slice(e.key_hi)) {
      return Status::Corruption("empty key range", e.ToString());
    }
    if (e.t_lo >= e.t_hi) {
      return Status::Corruption("empty time range", e.ToString());
    }
    if (e.current_child() == e.child.historical) {
      return Status::Corruption(
          "t_hi/device mismatch (finite t_hi <=> historical)", e.ToString());
    }
    if (i > 0 && !(entries[i - 1] < e)) {
      return Status::Corruption("index entries out of order", Describe(ref));
    }
    // Entries not fully inside the node window must be historical
    // straddlers (duplicated by keyspace splits, rule 4) — on the key axis.
    const bool inside_lo = Slice(e.key_lo) >= Slice(win.key_lo);
    const bool inside_hi =
        win.key_hi_inf || (!e.key_hi_inf && Slice(e.key_hi) <= Slice(win.key_hi));
    if ((!inside_lo || !inside_hi) && !e.child.historical) {
      return Status::Corruption("current child exceeds node key range",
                                e.ToString());
    }
    // Time axis: entries may begin before the node's t_lo only if they are
    // historical (local-time-split straddlers).
    if (e.t_lo < win.t_lo && !e.child.historical) {
      return Status::Corruption("current child predates node time range",
                                e.ToString());
    }
  }

  // ---- tiling check on the boundary grid ----
  // Key boundaries: window low plus every entry bound strictly inside.
  std::vector<std::string> kb = {win.key_lo};
  auto add_key = [&](const std::string& k) {
    if (Slice(k) <= Slice(win.key_lo)) return;
    if (!win.key_hi_inf && Slice(k) >= Slice(win.key_hi)) return;
    kb.push_back(k);
  };
  std::vector<Timestamp> tb = {win.t_lo};
  auto add_time = [&](Timestamp t) {
    if (t <= win.t_lo) return;
    if (t >= win.t_hi) return;
    tb.push_back(t);
  };
  for (const IndexEntry& e : entries) {
    add_key(e.key_lo);
    if (!e.key_hi_inf) add_key(e.key_hi);
    add_time(e.t_lo);
    if (e.t_hi != kInfiniteTs) add_time(e.t_hi);
  }
  std::sort(kb.begin(), kb.end(),
            [](const std::string& a, const std::string& b) {
              return Slice(a) < Slice(b);
            });
  kb.erase(std::unique(kb.begin(), kb.end()), kb.end());
  std::sort(tb.begin(), tb.end());
  tb.erase(std::unique(tb.begin(), tb.end()), tb.end());

  for (const std::string& k : kb) {
    for (const Timestamp t : tb) {
      int cover = 0;
      for (const IndexEntry& e : entries) {
        if (e.Contains(Slice(k), t)) cover++;
      }
      if (cover != 1) {
        return Status::Corruption(
            "index region not tiled",
            Describe(ref) + " point (" + k + ", " + std::to_string(t) +
                ") covered " + std::to_string(cover) + " times");
      }
    }
  }

  // ---- recurse ----
  for (const IndexEntry& e : entries) {
    if (!e.child.historical) {
      current_parent_counts_[e.child.page_id]++;
    }
    // The child's region is the ENTRY rectangle itself, not its clip by our
    // window: straddler references duplicated by keyspace/time splits carry
    // the full child rectangle into both hosting nodes (rule 4), and the
    // child's contents answer to that rectangle. (Queries clip; structure
    // does not.)
    Window child;
    child.key_lo = e.key_lo;
    child.key_hi = e.key_hi;
    child.key_hi_inf = e.key_hi_inf;
    child.t_lo = e.t_lo;
    child.t_hi = e.t_hi;
    TSB_RETURN_IF_ERROR(
        CheckNode(e.child, static_cast<uint8_t>(node.level - 1), child));
  }
  return Status::OK();
}

Status TreeChecker::CheckDataNode(const NodeRef& ref, const DecodedNode& node,
                                  const Window& win) {
  const auto& entries = node.data;
  std::string prev_key;
  Timestamp prev_ts = 0;
  bool have_prev = false;
  // Per key, committed records with ts < win.t_lo seen so far.
  std::string run_key;
  int run_below_tlo = 0;
  Timestamp run_max_committed = 0;

  for (const DataEntry& e : entries) {
    const Slice k(e.key);
    if (k < Slice(win.key_lo) ||
        (!win.key_hi_inf && k >= Slice(win.key_hi))) {
      return Status::Corruption("record outside node key range",
                                Describe(ref) + " key " + e.key);
    }
    if (have_prev) {
      const int c = Slice(prev_key).compare(k);
      if (c > 0 || (c == 0 && prev_ts > e.ts)) {
        return Status::Corruption("data records out of order", Describe(ref));
      }
    }
    prev_key = e.key;
    prev_ts = e.ts;
    have_prev = true;

    if (e.uncommitted()) {
      if (ref.historical) {
        return Status::Corruption("uncommitted record migrated to history",
                                  Describe(ref));
      }
      continue;
    }
    if (e.ts >= win.t_hi) {
      return Status::Corruption("record after node time range",
                                Describe(ref) + " key " + e.key);
    }
    if (e.key != run_key) {
      run_key = e.key;
      run_below_tlo = 0;
      run_max_committed = 0;
    }
    if (e.ts < win.t_lo) {
      run_below_tlo++;
      if (run_below_tlo > 1) {
        return Status::Corruption(
            "more than one pre-t_lo version of a key (TIME-SPLIT RULE 3)",
            Describe(ref) + " key " + e.key);
      }
    }
    if (e.ts < run_max_committed) {
      return Status::Corruption("committed versions out of ts order",
                                Describe(ref));
    }
    run_max_committed = e.ts;
  }
  return Status::OK();
}

}  // namespace tsb_tree
}  // namespace tsb
