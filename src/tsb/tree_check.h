// TreeChecker: structural verification of a TSB-tree.
//
// Checks, per DESIGN.md section 5:
//  - node levels decrease by one per level; data nodes are level 0;
//  - index entries are (key_lo, t_lo)-sorted, rectangles well-formed;
//  - finite t_hi <=> historical child (the migration invariant);
//  - the clipped rectangles of each index node exactly TILE the node's
//    region (no gap, no overlap) — verified on the grid induced by the
//    entry boundaries, so unique-containment search is sound;
//  - entries whose rectangle is not fully inside the node's region are
//    historical (straddlers duplicated by keyspace splits, rule 4);
//  - every current page is referenced by exactly one parent entry (only
//    historical nodes may have several parents — the DAG property);
//  - data records lie inside their node's key range; committed records
//    below the node's t_lo are exactly the TIME-SPLIT-RULE redundant
//    copies: per key the single latest version preceding t_lo;
//  - historical data records all precede the node's t_hi;
//  - content-floor hints hold: no committed record in a subtree predates
//    the strongest min_ts claim on the path to it (0 claims nothing).
#ifndef TSBTREE_TSB_TREE_CHECK_H_
#define TSBTREE_TSB_TREE_CHECK_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "tsb/tsb_tree.h"

namespace tsb {
namespace tsb_tree {

/// Walks the whole DAG and validates structure. Cheap enough for tests to
/// run after every few hundred operations.
class TreeChecker {
 public:
  explicit TreeChecker(TsbTree* tree) : tree_(tree) {}

  /// Returns OK or the first violation (Corruption with a description).
  Status Check();

  /// When set, Check() additionally audits every node against the DEVICE
  /// bytes: current pages are re-read raw from the pager's device and
  /// verified (header + trailer CRC, page-id identity) — the buffer pool
  /// can mask on-disk rot behind a good in-memory copy — and historical
  /// blobs re-CRC past the verified memo and the read cache. Pages dirty
  /// in the pool are skipped (no-steal: their device copy is legitimately
  /// behind until the next checkpoint), so the audit is exact right after
  /// a checkpoint and sound at any quiesced moment.
  void set_verify_checksums(bool v) { verify_checksums_ = v; }

  /// Number of nodes visited by the last Check() (tests use it to assert
  /// the walk saw the whole tree).
  uint64_t nodes_visited() const { return nodes_visited_; }

  /// Backfills content-floor min_ts hints on legacy index cells (stored
  /// min_ts == 0, as written before the hints existed or with
  /// SplitPolicyConfig::content_floor_hints disabled): walks the DAG,
  /// computes each subtree's exact committed-timestamp floor, and
  /// upgrades qualifying cells of CURRENT index pages in place via
  /// IndexPageRef::Replace — skipped when the page has no room for the
  /// wider varint (a 0 claim stays sound). Historical nodes are immutable
  /// (their cells keep 0), but the floor computed for a historical
  /// subtree still upgrades the current parent cell referencing it.
  /// Quiesces the tree (exclusive writer lock) for the duration.
  /// `*repaired` counts upgraded cells.
  Status RepairContentFloors(uint64_t* repaired);

 private:
  struct Window {
    std::string key_lo;
    std::string key_hi;
    bool key_hi_inf = true;
    Timestamp t_lo = 0;
    Timestamp t_hi = kInfiniteTs;
    Timestamp min_ts = 0;  ///< strongest content-floor claim on the path
  };

  Status CheckNode(const NodeRef& ref, uint8_t expected_level,
                   const Window& win);
  // The entry checks run over views: historical nodes are validated
  // directly on the pinned blob; current pages are copied out under their
  // latch once and then viewed.
  Status CheckIndexEntries(const NodeRef& ref, uint8_t level,
                           const std::vector<IndexEntryView>& entries,
                           const Window& win);
  Status CheckDataEntries(const NodeRef& ref,
                          const std::vector<DataEntryView>& entries,
                          const Window& win);

  /// Recursive worker for RepairContentFloors: computes the subtree's
  /// exact committed floor into `*floor` (kInfiniteTs = no committed
  /// record) and upgrades legacy cells along the way.
  Status RepairNodeFloors(const NodeRef& ref, Timestamp* floor,
                          uint64_t* repaired);

  TsbTree* tree_;
  bool verify_checksums_ = false;
  /// Pages dirty in the pool when Check() started (checksums mode skips
  /// their device-side verification).
  std::set<uint32_t> dirty_at_start_;
  uint64_t nodes_visited_ = 0;
  std::map<uint32_t, int> current_parent_counts_;
  /// Historical subtree floors memoized by blob offset: the structure is
  /// a DAG (straddlers give historical nodes several parents), so each
  /// blob is computed once.
  std::map<uint64_t, Timestamp> hist_floor_memo_;
};

}  // namespace tsb_tree
}  // namespace tsb

#endif  // TSBTREE_TSB_TREE_CHECK_H_
