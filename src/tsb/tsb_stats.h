// Counters and space statistics for the TSB-tree: exactly the quantities
// the paper's section 5 says the authors were measuring — total space,
// current-database space, and amount of redundancy — under different
// splitting policies and update:insert mixes.
#ifndef TSBTREE_TSB_TSB_STATS_H_
#define TSBTREE_TSB_TSB_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace tsb {
namespace tsb_tree {

/// How historical nodes were parsed on the read paths. Atomic because the
/// lock-free readers bump these concurrently. Snapshot through
/// TsbTree::HistStats.
struct HistDecodeCounters {
  std::atomic<uint64_t> view_decodes{0};   ///< zero-copy ref parses
  std::atomic<uint64_t> owned_decodes{0};  ///< materializing decodes
};

/// Running operation counters (cheap, maintained inline). Atomic fields:
/// with TsbOptions::concurrent_writers multiple writer threads bump them
/// in parallel; fields convert implicitly to uint64_t for reading.
struct TsbCounters {
  std::atomic<uint64_t> puts{0};   ///< committed record versions inserted
  std::atomic<uint64_t> uncommitted_puts{0};
  std::atomic<uint64_t> stamps{0}; ///< uncommitted records committed in place
  /// Leaf descents performed to stamp them: batched commits stamp every
  /// key landing on one leaf in a single descent, so for large batches
  /// this grows with leaves touched, not keys stamped.
  std::atomic<uint64_t> stamp_descents{0};
  std::atomic<uint64_t> erases{0}; ///< uncommitted records erased (aborts)

  std::atomic<uint64_t> data_key_splits{0};
  std::atomic<uint64_t> data_time_splits{0};
  std::atomic<uint64_t> index_key_splits{0};
  std::atomic<uint64_t> index_time_splits{0};
  std::atomic<uint64_t> root_grows{0};

  std::atomic<uint64_t> hist_data_nodes{0};   ///< data nodes migrated
  std::atomic<uint64_t> hist_index_nodes{0};  ///< index nodes migrated
  /// Record versions written historically.
  std::atomic<uint64_t> records_migrated{0};
  std::atomic<uint64_t> index_entries_migrated{0};

  /// Record versions kept in BOTH nodes by TIME-SPLIT RULE clause 3.
  std::atomic<uint64_t> redundant_record_copies{0};
  /// Index entries duplicated into both siblings (keyspace-split clause 4
  /// and local-time-split straddlers).
  std::atomic<uint64_t> redundant_index_copies{0};

  /// Optimistic-latch-coupling writer descents that restarted from the
  /// root because the structure changed underneath them (concurrent mode).
  std::atomic<uint64_t> olc_restarts{0};
  /// Descents that resolved a concurrent key split by stepping laterally
  /// to the just-split page's right sibling instead of restarting.
  std::atomic<uint64_t> olc_sidesteps{0};
};

/// Space snapshot computed by walking the tree (see
/// TsbTree::ComputeSpaceStats). Magnetic numbers come from the pager,
/// optical numbers from the append store, logical/physical version counts
/// from a DAG walk.
struct SpaceStats {
  uint64_t magnetic_pages = 0;
  uint64_t magnetic_bytes = 0;       ///< pages * page_size (allocated)
  uint64_t magnetic_used_bytes = 0;  ///< live cell bytes within pages
  uint64_t optical_payload_bytes = 0;
  uint64_t optical_device_bytes = 0;  ///< incl. framing + sector residue
  uint64_t hist_nodes = 0;
  /// Free pages dropped by the last free-list persist because they did not
  /// fit in the bounded meta space (see Pager::EncodeFreeList).
  uint64_t leaked_free_pages = 0;

  uint64_t logical_versions = 0;        ///< distinct committed (key, ts)
  uint64_t physical_record_copies = 0;  ///< record cells, all nodes

  uint64_t total_bytes() const { return magnetic_bytes + optical_device_bytes; }

  /// Physical copies per logical version (1.0 = no redundancy).
  double redundancy() const {
    return logical_versions == 0
               ? 1.0
               : static_cast<double>(physical_record_copies) /
                     static_cast<double>(logical_versions);
  }

  /// The paper's cost function CS = SpaceM * CM + SpaceO * CO.
  double StorageCost(double cm, double co) const {
    return static_cast<double>(magnetic_bytes) * cm +
           static_cast<double>(optical_device_bytes) * co;
  }
};

}  // namespace tsb_tree
}  // namespace tsb

#endif  // TSBTREE_TSB_TSB_STATS_H_
