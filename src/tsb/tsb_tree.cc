#include "tsb/tsb_tree.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <set>
#include <thread>

#include "common/coding.h"
#include "common/logger.h"
#include "storage/page.h"
#include "storage/worm_device.h"
#include "tsb/cursor.h"

namespace tsb {
namespace tsb_tree {

namespace {

constexpr uint32_t kMetaMagic = 0x54534231;  // "TSB1"
constexpr int kMaxInsertRetries = 64;
// Yield budget while waiting for in-flight commits to publish so a
// watermark-capped time split can migrate history (concurrent mode only).
constexpr int kMaxWatermarkSpins = 4096;

// Upper bound on the encoded size of an index entry we are about to create
// whose historical address and content-floor hint are not yet known
// (varints at their widest).
size_t IndexEntrySizeBound(const IndexEntry& prototype) {
  IndexEntry e = prototype;
  e.child = NodeRef::Historical(HistAddr{UINT64_MAX / 2, UINT32_MAX / 2});
  e.min_ts = UINT64_MAX / 2;
  return e.EncodedSize() + 8;
}

// Content-floor hint for an entry about to reference a data node holding
// exactly `entries`: the smallest committed timestamp present, or
// `fallback` when nothing is committed yet (uncommitted records stamp
// with a later timestamp than every commit so far, so any floor at or
// below the current clock is sound).
Timestamp DataContentFloor(const std::vector<DataEntry>& entries,
                           Timestamp fallback) {
  Timestamp min_ts = kInfiniteTs;
  for (const DataEntry& e : entries) {
    if (!e.uncommitted() && e.ts < min_ts) min_ts = e.ts;
  }
  return min_ts == kInfiniteTs ? fallback : min_ts;
}

// Content-floor hint for an entry about to reference an index node holding
// exactly `entries`: the subtree floor is the weakest child claim — and a
// single unknown child (0) makes the whole claim unknown.
Timestamp IndexContentFloor(const std::vector<IndexEntry>& entries) {
  Timestamp min_ts = kInfiniteTs;
  for (const IndexEntry& e : entries) {
    if (e.min_ts < min_ts) min_ts = e.min_ts;
  }
  return min_ts == kInfiniteTs ? 0 : min_ts;
}

// Slot + length-prefix overhead of one slotted cell.
constexpr uint32_t kCellOverhead = 4;

// Node-shape inputs (distinct keys, total key bytes) for the per-node
// restart-interval choice; `entries` are sorted, so runs are adjacent.
void DataNodeShape(const std::vector<DataEntry>& entries, size_t* distinct,
                   size_t* key_bytes) {
  *distinct = 0;
  *key_bytes = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    *key_bytes += entries[i].key.size();
    if (i == 0 || entries[i].key != entries[i - 1].key) ++*distinct;
  }
}

void IndexNodeShape(const std::vector<IndexEntry>& entries, size_t* distinct,
                    size_t* key_bytes) {
  *distinct = 0;
  *key_bytes = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    *key_bytes += entries[i].key_lo.size();
    if (i == 0 || entries[i].key_lo != entries[i - 1].key_lo) ++*distinct;
  }
}

}  // namespace

TsbTree::TsbTree(Device* magnetic, Device* historical,
                 const TsbOptions& options)
    : options_(options),
      pager_(std::make_unique<Pager>(magnetic, options.page_size)),
      pool_(std::make_unique<BufferPool>(pager_.get(),
                                         options.buffer_pool_frames)),
      hist_(std::make_unique<AppendStore>(historical,
                                          options.hist_cache_blobs)),
      policy_(options.policy),
      clock_(options.external_clock != nullptr ? options.external_clock
                                               : &own_clock_) {}

TsbTree::~TsbTree() {
  if (pool_->no_steal()) {
    // WAL-protected tree: the on-disk base only advances through crash-
    // atomic checkpoints (the DB layer runs one at clean close). Flushing
    // meta + dirty pages here would overwrite the checkpointed base with
    // un-journaled state — on a degraded close, possibly half a commit.
    return;
  }
  Status s = Flush();
  if (!s.ok()) {
    TSB_LOG_ERROR("tree close flush failed: %s", s.ToString().c_str());
  }
}

Status TsbTree::Open(Device* magnetic, Device* historical,
                     const TsbOptions& options,
                     std::unique_ptr<TsbTree>* out) {
  if (options.page_size < 512) {
    return Status::InvalidArgument("page_size must be >= 512");
  }
  std::unique_ptr<TsbTree> tree(new TsbTree(magnetic, historical, options));
  TSB_RETURN_IF_ERROR(tree->Load());
  *out = std::move(tree);
  return Status::OK();
}

Status TsbTree::Load() {
  std::vector<char> meta(options_.page_size);
  TSB_RETURN_IF_ERROR(pager_->ReadMeta(meta.data()));
  const char* p = meta.data() + kPageHeaderSize;
  if (DecodeFixed32(p) == kMetaMagic) {
    root_ = DecodeFixed32(p + 4);
    height_ = DecodeFixed32(p + 8);
    clock_->AdvanceTo(DecodeFixed64(p + 12));
    clock_->Publish(DecodeFixed64(p + 12));  // persisted state is committed
    // Restore the free list persisted after the fixed fields.
    const size_t fixed = 20;
    Slice rest(p + fixed, PageUsableSize(meta.data(), options_.page_size) -
                              kPageHeaderSize - fixed);
    Status s = pager_->DecodeFreeList(rest);
    if (!s.ok()) {
      TSB_LOG_WARN("free list not restored: %s", s.ToString().c_str());
    }
    return Status::OK();
  }
  PageHandle h;
  TSB_RETURN_IF_ERROR(pool_->New(PageType::kTsbData, &h));
  DataPageRef::Format(h.data(), options_.page_size);
  h.MarkDirty();
  root_ = h.id();
  height_ = 1;
  return Status::OK();
}

Status TsbTree::Flush() {
  // Exclusive writer lock: quiesces every mutator in both writer modes so
  // the meta snapshot and the page flush are mutually consistent.
  std::lock_guard<std::shared_mutex> wl(writer_mu_);
  std::vector<char> meta(options_.page_size);
  TSB_RETURN_IF_ERROR(pager_->ReadMeta(meta.data()));
  char* p = meta.data() + kPageHeaderSize;
  EncodeFixed32(p, kMetaMagic);
  EncodeFixed32(p + 4, root_.load(std::memory_order_acquire));
  EncodeFixed32(p + 8, height_.load(std::memory_order_acquire));
  EncodeFixed64(p + 12, clock_->Now());
  const size_t fixed = 20;
  std::string free_list;
  pager_->EncodeFreeList(&free_list,
                         PageUsableSize(meta.data(), options_.page_size) -
                             kPageHeaderSize - fixed - 8);
  memcpy(p + fixed, free_list.data(), free_list.size());
  TSB_RETURN_IF_ERROR(pager_->WriteMeta(meta.data()));
  return pool_->FlushAll();
}

// ---------------------------------------------------- durability (WAL)

Status TsbTree::BeginCheckpoint(CheckpointScope* scope) {
  // Exclusive writer lock, held until FinishCheckpoint: the journal
  // snapshot and the in-place flush must see the same tree state.
  scope->quiesce = std::unique_lock<std::shared_mutex>(writer_mu_);
  // Historical blobs referenced by the snapshotted pages must be durable
  // BEFORE the journal commits — recovery re-applies pages verbatim, and
  // a page pointing at a never-synced blob would dangle.
  TSB_RETURN_IF_ERROR(hist_->device()->Sync());
  std::vector<char> meta(options_.page_size);
  TSB_RETURN_IF_ERROR(pager_->ReadMeta(meta.data()));
  char* p = meta.data() + kPageHeaderSize;
  EncodeFixed32(p, kMetaMagic);
  EncodeFixed32(p + 4, root_.load(std::memory_order_acquire));
  EncodeFixed32(p + 8, height_.load(std::memory_order_acquire));
  EncodeFixed64(p + 12, clock_->Now());
  const size_t fixed = 20;
  std::string free_list;
  pager_->EncodeFreeList(&free_list,
                         PageUsableSize(meta.data(), options_.page_size) -
                             kPageHeaderSize - fixed - 8);
  memcpy(p + fixed, free_list.data(), free_list.size());
  scope->meta_image.assign(meta.data(), options_.page_size);
  scope->dirty_pages.clear();
  pool_->SnapshotDirty(&scope->dirty_pages);
  return Status::OK();
}

Status TsbTree::FinishCheckpoint(CheckpointScope* scope) {
  std::vector<char> meta(scope->meta_image.begin(), scope->meta_image.end());
  TSB_RETURN_IF_ERROR(pager_->WriteMeta(meta.data()));
  TSB_RETURN_IF_ERROR(pool_->FlushAll());
  TSB_RETURN_IF_ERROR(pager_->device()->Sync());
  scope->quiesce.unlock();
  return Status::OK();
}

Status TsbTree::ReplayCommitted(const Slice& key, const Slice& value,
                                Timestamp ts) {
  WriterGuard wl(this);
  if (ts == kMinTimestamp || ts > kMaxCommittedTs) {
    return Status::InvalidArgument("timestamp out of committed range");
  }
  // No monotone-clock check: the persisted clock already advanced past
  // the timestamps the log re-inserts. Same-(key, ts) inserts replace in
  // place, so replaying an already-applied frame is idempotent.
  DataEntry e;
  e.key = key.ToString();
  e.ts = ts;
  e.txn = kNoTxn;
  e.value = value.ToString();
  TSB_RETURN_IF_ERROR(InsertEntry(e));
  clock_->AdvanceTo(ts);
  counters_.puts++;
  return Status::OK();
}

Status TsbTree::PurgeUncommitted(uint64_t* purged) {
  *purged = 0;
  std::lock_guard<std::shared_mutex> wl(writer_mu_);
  return PurgeUncommittedRec(root_.load(std::memory_order_acquire), purged);
}

Status TsbTree::PurgeUncommittedRec(uint32_t page_id, uint64_t* purged) {
  PageHandle h;
  TSB_RETURN_IF_ERROR(pool_->Fetch(page_id, &h));
  if (TsbPageLevel(h.data()) == 0) {
    DataPageRef page(h.data(), options_.page_size);
    bool removed = false;
    for (int i = page.Count() - 1; i >= 0; --i) {
      DataEntryView v;
      TSB_RETURN_IF_ERROR(page.At(i, &v));
      if (v.uncommitted()) {
        page.Remove(i);
        ++*purged;
        removed = true;
      }
    }
    if (removed) h.MarkDirty();
    return Status::OK();
  }
  IndexPageRef page(h.data(), options_.page_size);
  std::vector<IndexEntry> entries;
  TSB_RETURN_IF_ERROR(page.DecodeAll(&entries));
  h.Release();
  for (const IndexEntry& e : entries) {
    // Historical nodes are immutable and never hold uncommitted versions.
    if (!e.child.historical) {
      TSB_RETURN_IF_ERROR(PurgeUncommittedRec(e.child.page_id, purged));
    }
  }
  return Status::OK();
}

Status TsbTree::PurgeCommittedAt(Timestamp ts, uint64_t* purged) {
  *purged = 0;
  if (ts == kMinTimestamp || ts > kMaxCommittedTs) {
    return Status::InvalidArgument("purge timestamp out of committed range");
  }
  std::lock_guard<std::shared_mutex> wl(writer_mu_);
  return PurgeCommittedAtRec(root_.load(std::memory_order_acquire), ts,
                             purged);
}

Status TsbTree::PurgeCommittedAtRec(uint32_t page_id, Timestamp ts,
                                    uint64_t* purged) {
  PageHandle h;
  TSB_RETURN_IF_ERROR(pool_->Fetch(page_id, &h));
  if (TsbPageLevel(h.data()) == 0) {
    DataPageRef page(h.data(), options_.page_size);
    bool removed = false;
    for (int i = page.Count() - 1; i >= 0; --i) {
      DataEntryView v;
      TSB_RETURN_IF_ERROR(page.At(i, &v));
      if (v.ts == ts) {
        page.Remove(i);
        ++*purged;
        removed = true;
      }
    }
    if (removed) h.MarkDirty();
    return Status::OK();
  }
  IndexPageRef page(h.data(), options_.page_size);
  std::vector<IndexEntry> entries;
  TSB_RETURN_IF_ERROR(page.DecodeAll(&entries));
  h.Release();
  for (const IndexEntry& e : entries) {
    // A failed commit's timestamp sits above the published watermark, and
    // time splits cap their boundary at that watermark: nothing stamped
    // `ts` can live under a historical child.
    if (!e.child.historical) {
      TSB_RETURN_IF_ERROR(PurgeCommittedAtRec(e.child.page_id, ts, purged));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------- descent

Status TsbTree::DescendCurrent(const Slice& key, std::vector<PathElem>* path,
                               bool latched) {
  path->clear();
  uint32_t id = root_.load(std::memory_order_acquire);
  for (;;) {
    PageHandle h;
    // `latched` reads each page under a shared latch: required when other
    // writers may mutate leaves concurrently (split re-descents under
    // structure_mu_ in concurrent mode; index pages are stable there but
    // the leaf level byte is not).
    TSB_RETURN_IF_ERROR(latched ? pool_->FetchShared(id, &h)
                                : pool_->Fetch(id, &h));
    if (TsbPageLevel(h.data()) == 0) {
      path->push_back(PathElem{id, -1});
      return Status::OK();
    }
    IndexPageRef page(h.data(), options_.page_size);
    const int idx = page.FindContaining(key, kUncommittedTs);
    if (idx < 0) {
      return Status::Corruption("current axis not covered",
                                "page " + std::to_string(id));
    }
    IndexEntry e;
    TSB_RETURN_IF_ERROR(page.At(idx, &e));
    if (e.child.historical) {
      return Status::Corruption("current axis routed to historical node");
    }
    path->push_back(PathElem{id, idx});
    id = e.child.page_id;
  }
}

// Optimistic latch-coupled writer descent (concurrent_writers mode). At
// most ONE page latch is held at any moment: internal pages are read under
// a brief shared latch, their routing entry copied out, and only the pin
// (not the latch) carried to the next level; after latching the child, the
// parent's mutation counter is revalidated — a change means the routing
// entry may be stale, so the descent restarts from the root
// (counters_.olc_restarts). The target leaf is latched exclusively
// (TryUpgrade, falling back to a blocking exclusive fetch). If the parent
// changed while the leaf latch was being acquired, the descent first tries
// to resolve locally: a concurrent key split leaves the shed upper range
// reachable through the leaf's B-link right sibling, so the parent entry
// is re-read and a lateral step (counters_.olc_sidesteps) replaces a full
// restart. The leaf latch is always RELEASED before relatching the parent
// — a splitter holds parent-exclusive while waiting for leaf-exclusive,
// so holding the leaf while waiting on the parent would deadlock.
// On success `*leaf` holds the exclusive latch and `*pe` the parent's
// routing entry (identity rectangle when the root is the leaf), valid as
// of a moment at which the leaf latch was already held.
Status TsbTree::LatchLeafOLC(const Slice& key, PageHandle* leaf,
                             IndexEntry* pe) {
  constexpr int kMaxOlcRestarts = 64;
  constexpr int kMaxSideSteps = 4;
  for (int restart = 0; restart < kMaxOlcRestarts; ++restart) {
    if (restart > 0) counters_.olc_restarts++;
    PageHandle parent_h;  // pinned, UNLATCHED between levels
    uint64_t parent_ver = 0;
    bool have_parent = false;
    pe->key_lo.clear();
    pe->key_hi.clear();
    pe->key_hi_inf = true;
    pe->t_lo = kMinTimestamp;
    pe->t_hi = kInfiniteTs;
    pe->child = NodeRef::Current(root_.load(std::memory_order_acquire));

    uint32_t id = pe->child.page_id;
    bool at_root = true;
    bool restart_descent = false;
    while (!restart_descent) {
      PageHandle h;
      TSB_RETURN_IF_ERROR(pool_->FetchShared(id, &h));
      if (at_root) {
        // Post-latch root validation, same as the reader descent.
        const uint32_t cur_root = root_.load(std::memory_order_acquire);
        if (cur_root != id) {
          h.Release();
          id = cur_root;
          pe->child = NodeRef::Current(id);
          continue;
        }
        at_root = false;
      } else if (parent_h.version() != parent_ver) {
        // Parent mutated between copying its entry and latching the child:
        // the child id itself may be stale. Start over.
        h.Release();
        restart_descent = true;
        break;
      }
      if (TsbPageLevel(h.data()) != 0) {
        // Internal page: copy the routing entry and the mutation counter
        // under the shared latch, then carry only the pin downward.
        IndexPageRef page(h.data(), options_.page_size);
        const int idx = page.FindContaining(key, kUncommittedTs);
        if (idx < 0) {
          // Transiently possible mid-restructure; never permanent.
          h.Release();
          restart_descent = true;
          break;
        }
        IndexEntry e;
        TSB_RETURN_IF_ERROR(page.At(idx, &e));
        if (e.child.historical) {
          return Status::Corruption("current axis routed to historical node");
        }
        const uint64_t ver = h.version();
        h.Unlatch();  // the pin survives; eviction stays blocked
        parent_h = std::move(h);
        parent_ver = ver;
        have_parent = true;
        *pe = e;
        id = e.child.page_id;
        continue;
      }
      // Leaf: upgrade to exclusive without blocking; on contention fall
      // back to a blocking exclusive fetch (we hold no other latch, so
      // blocking here cannot deadlock).
      if (!h.TryUpgrade()) {
        h.Release();
        TSB_RETURN_IF_ERROR(pool_->FetchExclusive(id, &h));
      }
      if (!have_parent) {
        // Root leaf: valid iff still the root (a concurrent split moves
        // keys to a sibling reachable only through a new root).
        if (root_.load(std::memory_order_acquire) != id) {
          h.Release();
          restart_descent = true;
          break;
        }
        *leaf = std::move(h);
        return Status::OK();
      }
      if (parent_h.version() == parent_ver) {
        *leaf = std::move(h);
        return Status::OK();
      }
      // The parent changed while the leaf latch was being acquired.
      // Resolve locally: re-read the parent's routing entry; if it now
      // points at this leaf's right sibling, the key moved in a concurrent
      // key split — step laterally instead of restarting.
      for (int step = 0; step < kMaxSideSteps; ++step) {
        const uint32_t sibling = PageSibling(h.data());
        h.Release();  // ALWAYS before relatching the parent (lock order)
        parent_h.LatchShared();
        IndexPageRef parent(parent_h.data(), options_.page_size);
        const int idx = parent.FindContaining(key, kUncommittedTs);
        IndexEntry cand;
        Status ps = idx >= 0 ? parent.At(idx, &cand) : Status::OK();
        parent_ver = parent_h.version();
        parent_h.Unlatch();
        TSB_RETURN_IF_ERROR(ps);
        if (idx < 0 || cand.child.historical) break;  // parent restructured
        const uint32_t target = cand.child.page_id;
        if (target != id && target != sibling) break;  // non-local change
        if (target == sibling) counters_.olc_sidesteps++;
        id = target;
        *pe = cand;
        TSB_RETURN_IF_ERROR(pool_->FetchExclusive(id, &h));
        if (parent_h.version() == parent_ver) {
          *leaf = std::move(h);
          return Status::OK();
        }
      }
      h.Release();
      restart_descent = true;
    }
  }
  return Status::Busy("writer descent did not converge");
}

Status TsbTree::SearchPoint(const Slice& key, Timestamp t, TxnId txn,
                            const BlobReadHints& hints,
                            const PointSink& sink) {
  // Phase 1: walk current pages until the point leaves the magnetic disk.
  // Latch coupling: each child's shared latch is acquired before the
  // parent's is released, so the (parent entry, child content) pair is
  // always from one structural state — the writer holds both exclusive
  // latches while it restructures.
  PageHandle parent_h;
  uint32_t id = root_.load(std::memory_order_acquire);
  bool at_root = true;
  for (;;) {
    PageHandle h;
    TSB_RETURN_IF_ERROR(pool_->FetchShared(id, &h));
    if (at_root) {
      // Validate the root AFTER latching it: any restructure of the old
      // root goes through GrowRoot first, so a stale root pointer always
      // shows up as root_ having moved. Once the check passes the page is
      // the live root and latch coupling covers the rest of the descent.
      const uint32_t cur_root = root_.load(std::memory_order_acquire);
      if (cur_root != id) {
        h.Release();
        id = cur_root;
        continue;
      }
      at_root = false;
    }
    parent_h.Release();
    if (TsbPageLevel(h.data()) == 0) {
      DataPageRef page(h.data(), options_.page_size);
      int pos;
      if (txn != kNoTxn) {
        pos = page.FindUncommitted(key, txn);
      } else {
        pos = page.FindVersion(key, t);
      }
      if (pos < 0) return Status::NotFound("no version at time");
      DataEntryView v;
      TSB_RETURN_IF_ERROR(page.At(pos, &v));
      // Current pages are mutable: the value must leave the page before
      // the latch drops. A pinned sink copies into its reused buffer (no
      // allocation once the capacity is warm), never into a pin.
      if (sink.pinned != nullptr) {
        sink.pinned->SetCopied(v.value, v.ts);
      } else {
        sink.value->assign(v.value.data(), v.value.size());
      }
      if (sink.ts != nullptr) *sink.ts = v.ts;
      return Status::OK();
    }
    IndexPageRef page(h.data(), options_.page_size);
    const int idx = page.FindContaining(key, t);
    if (idx < 0) return Status::NotFound("time precedes database");
    // View decode: only the POD child ref is copied out of the latched
    // page, so the whole descent performs no per-level heap allocation.
    IndexEntryView e;
    TSB_RETURN_IF_ERROR(page.AtView(idx, &e));
    if (!e.child.historical) {
      id = e.child.page_id;
      parent_h = std::move(h);  // hold the latch until the child is latched
      continue;
    }
    // Phase 2: continue inside the historical store; historical index
    // nodes reference only historical children. Blobs are immutable, so
    // no latches are needed past this point.
    const HistAddr addr = e.child.addr;
    h.Release();
    if (options_.zero_copy_hist_reads) {
      return SearchHistPoint(addr, key, t, hints, sink);
    }
    return SearchHistPointOwned(addr, key, t, sink);
  }
}

Status TsbTree::SearchHistPoint(HistAddr addr, const Slice& key, Timestamp t,
                                const BlobReadHints& hints,
                                const PointSink& sink) {
  // Zero-copy descent through the shared dispatch: every visited node
  // stays a pinned blob; data nodes are binary-searched through the slot
  // (or restart) directory, index nodes binary-search key_lo. On the
  // cache-hit path no per-entry heap allocation happens — and with a
  // pinned sink not even a value copy: the blob pin moves into the
  // PinnableValue and the value stays a view.
  for (;;) {
    bool done = false;
    HistAddr next_addr{};
    TSB_RETURN_IF_ERROR(DispatchHistNode(
        hist_.get(), &hist_decodes_, addr,
        [&](BlobHandle& blob, HistDataNodeRef& node) -> Status {
          int pos = -1;
          TSB_RETURN_IF_ERROR(node.FindVersion(key, t, &pos));
          if (pos < 0) return Status::NotFound("no version at time");
          DataEntryView v;
          if (sink.pinned != nullptr) {
            // Decode into the sink's own scratch so the view outlives
            // this dispatch (v3 delta cells reassemble there; v1/v2
            // cells stay views into the pinned blob).
            TSB_RETURN_IF_ERROR(node.At(pos, &v, sink.pinned->scratch()));
            if (sink.ts != nullptr) *sink.ts = v.ts;
            sink.pinned->SetPinned(std::move(blob), v.value, v.ts);
          } else {
            TSB_RETURN_IF_ERROR(node.At(pos, &v));
            sink.value->assign(v.value.data(), v.value.size());
            if (sink.ts != nullptr) *sink.ts = v.ts;
          }
          done = true;
          return Status::OK();
        },
        [&](BlobHandle&, HistIndexNodeRef& node) -> Status {
          int pos = -1;
          TSB_RETURN_IF_ERROR(node.FindContaining(key, t, &pos));
          if (pos < 0) return Status::NotFound("time precedes database");
          IndexEntryView next;
          TSB_RETURN_IF_ERROR(node.AtView(pos, &next));
          if (!next.child.historical) {
            return Status::Corruption(
                "historical index references current node");
          }
          next_addr = next.child.addr;
          return Status::OK();
        },
        hints));
    if (done) return Status::OK();
    addr = next_addr;
  }
}

Status TsbTree::SearchHistPointOwned(HistAddr addr, const Slice& key,
                                     Timestamp t, const PointSink& sink) {
  for (;;) {
    std::string blob;
    TSB_RETURN_IF_ERROR(hist_->Read(addr, &blob));
    hist_decodes_.owned_decodes.fetch_add(1, std::memory_order_relaxed);
    uint8_t level = 0;
    TSB_RETURN_IF_ERROR(HistNodeLevel(Slice(blob), &level));
    if (level == 0) {
      std::vector<DataEntry> entries;
      TSB_RETURN_IF_ERROR(DecodeHistDataNode(Slice(blob), &entries));
      const DataEntry* best = nullptr;
      for (const DataEntry& de : entries) {
        if (de.uncommitted()) continue;
        if (Slice(de.key) == key && de.ts <= t) {
          if (best == nullptr || de.ts > best->ts) best = &de;
        }
      }
      if (best == nullptr) return Status::NotFound("no version at time");
      if (sink.pinned != nullptr) {
        sink.pinned->SetCopied(Slice(best->value), best->ts);
      } else {
        *sink.value = best->value;
      }
      if (sink.ts != nullptr) *sink.ts = best->ts;
      return Status::OK();
    }
    std::vector<IndexEntry> entries;
    TSB_RETURN_IF_ERROR(DecodeHistIndexNode(Slice(blob), &level, &entries));
    const IndexEntry* next = nullptr;
    for (const IndexEntry& ie : entries) {
      if (ie.Contains(key, t)) {
        next = &ie;
        break;
      }
    }
    if (next == nullptr) return Status::NotFound("time precedes database");
    if (!next->child.historical) {
      return Status::Corruption("historical index references current node");
    }
    addr = next->child.addr;
  }
}

// ---------------------------------------------------------------- reads

Status TsbTree::Get(const ReadOptions& options, const Slice& key,
                    std::string* value, Timestamp* ts) {
  const Timestamp t = ResolveAsOf(options.as_of);
  if (t > kMaxCommittedTs) {
    return Status::InvalidArgument("as-of time out of range");
  }
  PointSink sink;
  sink.value = value;
  sink.ts = ts;
  return SearchPoint(key, t, kNoTxn, MakeBlobReadHints(options), sink);
}

Status TsbTree::Get(const ReadOptions& options, const Slice& key,
                    PinnableValue* value) {
  // Clear the slot up front: a failed lookup must not leave the PREVIOUS
  // result readable through it — nor keep that result's blob (and,
  // transitively, a whole file mapping) pinned.
  value->Reset();
  const Timestamp t = ResolveAsOf(options.as_of);
  if (t > kMaxCommittedTs) {
    return Status::InvalidArgument("as-of time out of range");
  }
  PointSink sink;
  sink.pinned = value;
  return SearchPoint(key, t, kNoTxn, MakeBlobReadHints(options), sink);
}

Status TsbTree::GetCurrent(const Slice& key, std::string* value,
                           Timestamp* ts) {
  // kMaxCommittedTs, not the watermark: internal callers (commit-time
  // old-value capture, transaction reads) must observe versions stamped
  // by a commit that has not published yet.
  ReadOptions options;
  options.as_of = kMaxCommittedTs;
  return Get(options, key, value, ts);
}

Status TsbTree::GetAsOf(const Slice& key, Timestamp t, std::string* value,
                        Timestamp* ts) {
  if (t > kMaxCommittedTs) {
    return Status::InvalidArgument("as-of time out of range");
  }
  ReadOptions options;
  options.as_of = t;
  return Get(options, key, value, ts);
}

Status TsbTree::GetUncommitted(const Slice& key, TxnId txn,
                               std::string* value) {
  if (txn == kNoTxn) return Status::InvalidArgument("txn id required");
  PointSink sink;
  sink.value = value;
  return SearchPoint(key, kUncommittedTs, txn, BlobReadHints(), sink);
}

// ---------------------------------------------------------------- writes

Status TsbTree::Put(const Slice& key, const Slice& value, Timestamp ts) {
  WriterGuard wl(this);
  if (ts == kMinTimestamp || ts > kMaxCommittedTs) {
    return Status::InvalidArgument("timestamp out of committed range");
  }
  if (ts < clock_->Now()) {
    return Status::InvalidArgument("timestamps must be non-decreasing");
  }
  DataEntry e;
  e.key = key.ToString();
  e.ts = ts;
  e.txn = kNoTxn;
  e.value = value.ToString();
  TSB_RETURN_IF_ERROR(InsertEntry(e));
  clock_->AdvanceTo(ts);
  // A direct Put is a complete single-record commit: publish immediately.
  clock_->Publish(ts);
  counters_.puts++;
  return Status::OK();
}

Status TsbTree::PutUncommitted(const Slice& key, const Slice& value,
                               TxnId txn) {
  WriterGuard wl(this);
  if (txn == kNoTxn) return Status::InvalidArgument("txn id required");
  DataEntry e;
  e.key = key.ToString();
  e.ts = kUncommittedTs;
  e.txn = txn;
  e.value = value.ToString();
  TSB_RETURN_IF_ERROR(InsertEntry(e));
  counters_.uncommitted_puts++;
  return Status::OK();
}

Status TsbTree::InsertEntry(const DataEntry& e) {
  // Sized against v2 pages (trailer reserved) — the tighter of the two
  // formats, so a record accepted here fits on every page.
  const uint32_t capacity =
      options_.page_size - kTsbSlotBase - kPageTrailerSize;
  if (e.EncodedSize() + kCellOverhead > capacity / 3) {
    return Status::InvalidArgument("record too large for page size");
  }
  const bool concurrent = options_.concurrent_writers;
  for (int attempt = 0; attempt < kMaxInsertRetries; ++attempt) {
    PageHandle h;
    IndexEntry pe;
    if (concurrent) {
      // Optimistic descent: exclusive latch on the target leaf only; the
      // routing entry is captured during the descent (index pages may not
      // be read unlatched while other writers split).
      TSB_RETURN_IF_ERROR(LatchLeafOLC(Slice(e.key), &h, &pe));
    } else {
      std::vector<PathElem> path;
      TSB_RETURN_IF_ERROR(DescendCurrent(Slice(e.key), &path));
      // Exclusive leaf latch: concurrent readers of this page must not
      // see the slotted layout mid-mutation.
      TSB_RETURN_IF_ERROR(pool_->FetchExclusive(path.back().page_id, &h));
      int pe_pos;
      TSB_RETURN_IF_ERROR(
          ParentEntryFor(path, path.size() - 1, &pe, &pe_pos));
    }
    DataPageRef page(h.data(), options_.page_size);

    // Region lower time bound: committed inserts must not predate it.
    if (!e.uncommitted() && e.ts < pe.t_lo) {
      return Status::InvalidArgument(
          "timestamp predates the node's time-split boundary");
    }

    // Same-position overwrite: own uncommitted version or same (key, ts).
    int existing = -1;
    if (e.uncommitted()) {
      existing = page.FindUncommitted(Slice(e.key), e.txn);
    } else {
      const int pos = page.LowerBound(Slice(e.key), e.ts);
      if (pos < page.Count()) {
        DataEntryView v;
        TSB_RETURN_IF_ERROR(page.At(pos, &v));
        if (v.key == Slice(e.key) && v.ts == e.ts && !v.uncommitted()) {
          existing = pos;
        }
      }
    }
    bool ok;
    if (existing >= 0) {
      ok = page.Replace(existing, e);
    } else {
      ok = page.Insert(e);
    }
    if (ok) {
      h.MarkDirty();
      return Status::OK();
    }
    h.Release();
    Status split = SplitForInsert(e);
    if (concurrent && split.IsOutOfSpace() &&
        clock_->Visible() < clock_->Now()) {
      // The page looks wedged only because the time-split boundary is
      // capped at the PUBLISHED watermark and in-flight commits are still
      // holding it back. Those commits finish without our help (we hold
      // no latch here and only a shared writer lock), so yield until the
      // watermark catches up and the split can migrate history again.
      for (int spin = 0;
           spin < kMaxWatermarkSpins && clock_->Visible() < clock_->Now();
           ++spin) {
        std::this_thread::yield();
      }
      split = SplitForInsert(e);
    }
    TSB_RETURN_IF_ERROR(split);
  }
  return Status::Corruption("insert did not converge after splits");
}

Status TsbTree::SplitForInsert(const DataEntry& e) {
  // Structural changes are serialized on structure_mu_ (uncontended in
  // single-writer mode). Index pages are mutated ONLY by the split/grow
  // code running under this mutex, so the unlatched index reads below it
  // (DescendCurrent's routing, ParentEntryFor, EnsureIndexRoom) are safe;
  // LEAVES still change under other writers' latches in concurrent mode,
  // so the re-descent latches pages and SplitDataPage revalidates the
  // leaf's mutation counter before installing its rewrite.
  std::lock_guard<std::mutex> sl(structure_mu_);
  std::vector<PathElem> path;
  TSB_RETURN_IF_ERROR(
      DescendCurrent(Slice(e.key), &path, options_.concurrent_writers));
  {
    // Another writer may have split this leaf while we waited on the
    // mutex: skip when the entry now fits (the caller retries the insert
    // with a fresh descent either way).
    PageHandle h;
    TSB_RETURN_IF_ERROR(pool_->FetchShared(path.back().page_id, &h));
    DataPageRef page(h.data(), options_.page_size);
    if (page.HasRoomFor(e)) return Status::OK();
  }
  return SplitDataPage(path);
}

Status TsbTree::StampCommitted(const Slice& key, TxnId txn, Timestamp ts) {
  WriterGuard wl(this);
  if (ts == kMinTimestamp || ts > kMaxCommittedTs) {
    return Status::InvalidArgument("timestamp out of committed range");
  }
  PageHandle h;
  IndexEntry pe;
  if (options_.concurrent_writers) {
    TSB_RETURN_IF_ERROR(LatchLeafOLC(key, &h, &pe));
  } else {
    std::vector<PathElem> path;
    TSB_RETURN_IF_ERROR(DescendCurrent(key, &path));
    int pe_pos;
    TSB_RETURN_IF_ERROR(ParentEntryFor(path, path.size() - 1, &pe, &pe_pos));
    TSB_RETURN_IF_ERROR(pool_->FetchExclusive(path.back().page_id, &h));
  }
  // Defense in depth: stamping below the region's time-split boundary
  // would make the version unreachable for as-of reads (the region
  // [t_lo, inf) no longer covers it). Commits can never legally hit this
  // — serialized commits never split above an in-flight timestamp, and
  // concurrent-mode splits cap the boundary at the published watermark,
  // which trails every in-flight commit — so treat it as corruption, not
  // data loss.
  if (ts < pe.t_lo) {
    return Status::Corruption(
        "commit timestamp predates the node's time-split boundary");
  }
  DataPageRef page(h.data(), options_.page_size);
  const int pos = page.FindUncommitted(key, txn);
  if (pos < 0) return Status::NotFound("no uncommitted version for txn");
  DataEntryView v;
  TSB_RETURN_IF_ERROR(page.At(pos, &v));
  DataEntry committed;
  committed.key = v.key.ToString();
  committed.ts = ts;
  committed.txn = kNoTxn;
  committed.value = v.value.ToString();
  page.Remove(pos);
  if (!page.Insert(committed)) {
    return Status::Corruption("stamp lost space on rewrite");
  }
  h.MarkDirty();
  clock_->AdvanceTo(ts);
  counters_.stamps++;
  counters_.stamp_descents++;
  return Status::OK();
}

Status TsbTree::StampCommittedBatch(const std::vector<Slice>& keys,
                                    TxnId txn, Timestamp ts) {
  WriterGuard wl(this);
  if (ts == kMinTimestamp || ts > kMaxCommittedTs) {
    return Status::InvalidArgument("timestamp out of committed range");
  }
  const bool concurrent = options_.concurrent_writers;
  size_t i = 0;
  while (i < keys.size()) {
    assert(i == 0 || keys[i - 1] < keys[i]);  // sorted + distinct
    PageHandle h;
    // The region boundary check of StampCommitted, hoisted per leaf: every
    // key stamped below shares this leaf's region.
    IndexEntry pe;
    if (concurrent) {
      TSB_RETURN_IF_ERROR(LatchLeafOLC(keys[i], &h, &pe));
    } else {
      std::vector<PathElem> path;
      TSB_RETURN_IF_ERROR(DescendCurrent(keys[i], &path));
      int pe_pos;
      TSB_RETURN_IF_ERROR(
          ParentEntryFor(path, path.size() - 1, &pe, &pe_pos));
      TSB_RETURN_IF_ERROR(pool_->FetchExclusive(path.back().page_id, &h));
    }
    if (ts < pe.t_lo) {
      return Status::Corruption(
          "commit timestamp predates the node's time-split boundary");
    }
    // Dirty (and version-bump) the leaf BEFORE mutating it: an error
    // return mid-leaf must leave the already-applied stamps flagged for
    // write-back, exactly like per-key stamping would (the caller
    // poisons the watermark, so they stay invisible either way). A
    // spurious mark when the very first lookup fails costs one rewrite.
    h.MarkDirty();
    DataPageRef page(h.data(), options_.page_size);
    // One descent stamps this key and every following key whose point
    // falls inside the same leaf's key region.
    do {
      const int pos = page.FindUncommitted(keys[i], txn);
      if (pos < 0) return Status::NotFound("no uncommitted version for txn");
      DataEntryView v;
      TSB_RETURN_IF_ERROR(page.At(pos, &v));
      DataEntry committed;
      committed.key = v.key.ToString();
      committed.ts = ts;
      committed.txn = kNoTxn;
      committed.value = v.value.ToString();
      page.Remove(pos);
      if (!page.Insert(committed)) {
        return Status::Corruption("stamp lost space on rewrite");
      }
      counters_.stamps++;
      ++i;
    } while (i < keys.size() && pe.ContainsKey(keys[i]));
    counters_.stamp_descents++;
  }
  clock_->AdvanceTo(ts);
  return Status::OK();
}

Status TsbTree::EraseUncommitted(const Slice& key, TxnId txn) {
  WriterGuard wl(this);
  PageHandle h;
  if (options_.concurrent_writers) {
    IndexEntry pe;
    TSB_RETURN_IF_ERROR(LatchLeafOLC(key, &h, &pe));
  } else {
    std::vector<PathElem> path;
    TSB_RETURN_IF_ERROR(DescendCurrent(key, &path));
    TSB_RETURN_IF_ERROR(pool_->FetchExclusive(path.back().page_id, &h));
  }
  DataPageRef page(h.data(), options_.page_size);
  const int pos = page.FindUncommitted(key, txn);
  if (pos < 0) return Status::NotFound("no uncommitted version for txn");
  page.Remove(pos);
  h.MarkDirty();
  counters_.erases++;
  return Status::OK();
}

// ---------------------------------------------------------------- splits

Status TsbTree::ParentEntryFor(const std::vector<PathElem>& path, size_t idx,
                               IndexEntry* entry, int* pos_in_parent) {
  if (idx == 0) {
    entry->key_lo.clear();
    entry->key_hi_inf = true;
    entry->t_lo = kMinTimestamp;
    entry->t_hi = kInfiniteTs;
    entry->child = NodeRef::Current(path[0].page_id);
    *pos_in_parent = -1;
    return Status::OK();
  }
  PageHandle h;
  TSB_RETURN_IF_ERROR(pool_->Fetch(path[idx - 1].page_id, &h));
  IndexPageRef parent(h.data(), options_.page_size);
  const int pos = path[idx - 1].entry_idx;
  if (pos < 0 || pos >= parent.Count()) {
    return Status::Corruption("stale parent entry index");
  }
  TSB_RETURN_IF_ERROR(parent.At(pos, entry));
  if (entry->child.historical ||
      entry->child.page_id != path[idx].page_id) {
    return Status::Corruption("parent entry does not reference child");
  }
  *pos_in_parent = pos;
  return Status::OK();
}

void TsbTree::PartitionByTime(const std::vector<DataEntry>& all, Timestamp t,
                              std::vector<DataEntry>* hist,
                              std::vector<DataEntry>* current,
                              size_t* redundant) {
  hist->clear();
  current->clear();
  *redundant = 0;
  size_t i = 0;
  while (i < all.size()) {
    size_t j = i;
    const DataEntry* latest_lt = nullptr;  // largest committed ts < t
    bool has_at_or_after = false;          // committed version with ts in [t, ...]
    bool has_exact_le = false;             // committed version with ts == t? no:
    // We need: the largest committed ts <= t. Versions with ts == t fall in
    // the "ts >= t" bucket (rule 2) and satisfy rule 3 with no duplication.
    (void)has_at_or_after;
    for (; j < all.size() && all[j].key == all[i].key; ++j) {
      const DataEntry& e = all[j];
      if (e.uncommitted()) {
        current->push_back(e);  // never migrated (section 4)
        continue;
      }
      if (e.ts < t) {
        hist->push_back(e);  // rule 1
        latest_lt = &e;
      } else {
        current->push_back(e);  // rule 2
        if (e.ts == t) has_exact_le = true;
      }
    }
    // Rule 3: the version valid at the split time must be in the new node.
    if (latest_lt != nullptr && !has_exact_le) {
      current->push_back(*latest_lt);
      (*redundant)++;
    }
    i = j;
  }
  std::sort(current->begin(), current->end());
}

Status TsbTree::SplitDataPage(const std::vector<PathElem>& path) {
  const size_t leaf_idx = path.size() - 1;
  if (leaf_idx == 0) {
    // Root is still a data page: grow first, split on the retry.
    return GrowRoot();
  }

  IndexEntry pe;
  int pe_pos;
  TSB_RETURN_IF_ERROR(ParentEntryFor(path, leaf_idx, &pe, &pe_pos));

  std::vector<DataEntry> entries;
  uint64_t leaf_ver = 0;
  {
    PageHandle h;
    TSB_RETURN_IF_ERROR(pool_->FetchShared(path[leaf_idx].page_id, &h));
    DataPageRef page(h.data(), options_.page_size);
    TSB_RETURN_IF_ERROR(page.DecodeAll(&entries));
    // Mutation counter baseline: the installs below re-check it under the
    // exclusive leaf latch and abandon the split if a concurrent writer
    // mutated the leaf after this decode (rewriting from the stale
    // snapshot would lose that write).
    leaf_ver = h.version();
  }
  const DataNodeStats stats = ComputeDataNodeStats(entries);
  const uint32_t capacity =
      options_.page_size - kTsbSlotBase - kPageTrailerSize;
  SplitKind kind = policy_.DecideDataSplit(stats, capacity);

  if (kind == SplitKind::kTimeSplit) {
    // Concurrent mode caps the split time at the PUBLISHED watermark, not
    // the raw clock: Now() may already exceed an in-flight commit's
    // timestamp, and a boundary above it would later make that commit's
    // stamp land below t_lo (unreachable for as-of reads).
    const Timestamp now_cap =
        options_.concurrent_writers ? clock_->Visible() : clock_->Now();
    const Timestamp split_t =
        policy_.ChooseSplitTime(entries, pe.t_lo, now_cap);
    std::vector<DataEntry> hist_set, cur_set;
    size_t redundant = 0;
    PartitionByTime(entries, split_t, &hist_set, &cur_set, &redundant);
    // Progress = the current page sheds entries.
    const bool progress =
        !hist_set.empty() && cur_set.size() < entries.size();
    if (progress) {
      // Ensure the parent can take one more (historical) entry BEFORE any
      // irreversible work; if the structure changed, retry from the top.
      IndexEntry he = pe;
      he.t_hi = split_t;
      he.min_ts = ContentFloorHint(DataContentFloor(hist_set, pe.min_ts));
      const uint32_t need =
          static_cast<uint32_t>(IndexEntrySizeBound(he)) + kCellOverhead;
      bool changed = false;
      TSB_RETURN_IF_ERROR(EnsureIndexRoom(path, leaf_idx - 1, need, &changed));
      if (changed) return Status::OK();

      // Migrate: consolidate and append one node (section 3.1). The v3
      // restart interval is chosen per node from its key shape.
      size_t distinct = 0, key_bytes = 0;
      DataNodeShape(hist_set, &distinct, &key_bytes);
      const uint32_t interval = policy_.ChooseRestartInterval(
          options_.hist_restart_interval, hist_set.size(), distinct,
          key_bytes);
      std::string blob;
      uint64_t raw_bytes = 0;
      SerializeHistDataNode(hist_set, &blob, options_.hist_node_format,
                            &raw_bytes, interval);
      HistAddr addr;
      TSB_RETURN_IF_ERROR(AppendHistNode(blob, raw_bytes, &addr));

      // Rewrite the leaf and repoint the parent while holding BOTH
      // exclusive latches (top-down order, same as reader coupling), so a
      // latch-coupled reader never pairs a stale parent entry with the
      // rewritten leaf.
      {
        PageHandle parent_h;
        TSB_RETURN_IF_ERROR(
            pool_->FetchExclusive(path[leaf_idx - 1].page_id, &parent_h));
        PageHandle leaf_h;
        TSB_RETURN_IF_ERROR(
            pool_->FetchExclusive(path[leaf_idx].page_id, &leaf_h));
        if (leaf_h.version() != leaf_ver) {
          // Stale decode (concurrent writer): abandon; the caller retries
          // with a fresh descent. The appended blob stays unreferenced in
          // the append-only store — bounded garbage, the same state a
          // crash between append and install leaves behind.
          return Status::OK();
        }
        // Leaf keeps only the TIME-SPLIT RULE survivors.
        DataPageRef page(leaf_h.data(), options_.page_size);
        TSB_RETURN_IF_ERROR(page.Load(cur_set));
        leaf_h.MarkDirty();
        // Parent: the child's region now starts at split_t; the prefix of
        // its old region points at the migrated node.
        IndexPageRef parent(parent_h.data(), options_.page_size);
        IndexEntry cur_e = pe;
        cur_e.t_lo = split_t;
        // Retained-alive records can predate split_t; with nothing
        // committed, split_t is sound — the watermark cap keeps every
        // in-flight stamp above it.
        cur_e.min_ts = ContentFloorHint(DataContentFloor(cur_set, split_t));
        if (!parent.Replace(pe_pos, cur_e)) {
          return Status::Corruption("parent entry replace failed");
        }
        he.child = NodeRef::Historical(addr);
        if (!parent.Insert(he)) {
          return Status::Corruption("parent lost reserved space");
        }
        parent_h.MarkDirty();
        // Bump the epoch BEFORE dropping the latches: a reader that can
        // observe the new structure must also observe the new epoch.
        structure_epoch_.fetch_add(1, std::memory_order_acq_rel);
      }
      counters_.data_time_splits++;
      counters_.hist_data_nodes++;
      counters_.records_migrated += hist_set.size();
      counters_.redundant_record_copies += redundant;
      return Status::OK();
    }
    // No migratable history: fall through to a key split if possible.
    if (stats.distinct_keys < 2) {
      return Status::OutOfSpace("versions of a single key overflow the page");
    }
    kind = SplitKind::kKeySplit;
  }

  // ---- key split (B+-tree style, erasable medium; Fig 5) ----
  if (stats.distinct_keys < 2) {
    return Status::OutOfSpace("cannot key-split a single-key node");
  }
  // Choose a distinct-key boundary near the byte midpoint.
  size_t total_bytes = 0;
  for (const DataEntry& e : entries) total_bytes += e.EncodedSize();
  size_t acc = 0;
  size_t split_at = 0;  // first index of the right node
  for (size_t i = 0; i < entries.size(); ++i) {
    acc += entries[i].EncodedSize();
    if (acc * 2 >= total_bytes) {
      // Advance to the next key boundary.
      size_t j = i + 1;
      while (j < entries.size() && entries[j].key == entries[i].key) ++j;
      split_at = j;
      break;
    }
  }
  if (split_at == 0 || split_at >= entries.size()) {
    // Degenerate byte distribution: put the last key run on the right.
    size_t j = entries.size() - 1;
    while (j > 0 && entries[j - 1].key == entries.back().key) --j;
    split_at = j;
  }
  if (split_at == 0 || split_at >= entries.size()) {
    return Status::OutOfSpace("no key boundary available for split");
  }
  const std::string split_key = entries[split_at].key;

  IndexEntry ne = pe;  // prototype for size estimation
  ne.key_lo = split_key;
  const uint32_t need =
      static_cast<uint32_t>(IndexEntrySizeBound(ne)) + kCellOverhead;
  bool changed = false;
  TSB_RETURN_IF_ERROR(EnsureIndexRoom(path, leaf_idx - 1, need, &changed));
  if (changed) return Status::OK();

  std::vector<DataEntry> left(entries.begin(), entries.begin() + split_at);
  std::vector<DataEntry> right(entries.begin() + split_at, entries.end());
  // The right sibling is private until the parent publishes it: no latch.
  PageHandle right_h;
  TSB_RETURN_IF_ERROR(pool_->New(PageType::kTsbData, &right_h));
  DataPageRef::Format(right_h.data(), options_.page_size);
  {
    DataPageRef rp(right_h.data(), options_.page_size);
    TSB_RETURN_IF_ERROR(rp.Load(right));
    right_h.MarkDirty();
  }
  // Shrink the leaf and publish the sibling under both exclusive latches.
  {
    PageHandle parent_h;
    TSB_RETURN_IF_ERROR(
        pool_->FetchExclusive(path[leaf_idx - 1].page_id, &parent_h));
    PageHandle leaf_h;
    TSB_RETURN_IF_ERROR(
        pool_->FetchExclusive(path[leaf_idx].page_id, &leaf_h));
    if (leaf_h.version() != leaf_ver) {
      // Stale decode (see the time-split bail-out): drop the unpublished
      // sibling and let the caller retry.
      leaf_h.Release();
      parent_h.Release();
      const uint32_t right_id = right_h.id();
      right_h.Release();
      return pool_->Drop(right_id);
    }
    // B-link chain: the sibling inherits the leaf's old right link, then
    // the leaf links to the sibling — both set before the parent entry
    // makes the sibling reachable, so a concurrent OLC descent that finds
    // its routing stale can step laterally instead of restarting.
    SetPageSibling(right_h.data(), PageSibling(leaf_h.data()));
    DataPageRef page(leaf_h.data(), options_.page_size);
    TSB_RETURN_IF_ERROR(page.Load(left));
    SetPageSibling(leaf_h.data(), right_h.id());
    leaf_h.MarkDirty();
    IndexPageRef parent(parent_h.data(), options_.page_size);
    IndexEntry left_e = pe;
    left_e.key_hi = split_key;
    left_e.key_hi_inf = false;
    left_e.min_ts = ContentFloorHint(DataContentFloor(left, pe.min_ts));
    if (!parent.Replace(pe_pos, left_e)) {
      return Status::Corruption("parent entry replace failed");
    }
    IndexEntry right_e = pe;  // the new entry inherits the predecessor's
    right_e.key_lo = split_key;  // timestamp (Fig 5): t_lo stays pe.t_lo
    right_e.child = NodeRef::Current(right_h.id());
    // The rectangle keeps the predecessor's loose time floor, but the
    // content floor is tight: old-snapshot readers skip siblings whose
    // records are all younger than their as-of time.
    right_e.min_ts = ContentFloorHint(DataContentFloor(right, pe.min_ts));
    if (!parent.Insert(right_e)) {
      return Status::Corruption("parent lost reserved space (key split)");
    }
    parent_h.MarkDirty();
    // Epoch bump inside the latch scope (see time-split comment).
    structure_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  counters_.data_key_splits++;
  return Status::OK();
}

Status TsbTree::GrowRoot() {
  // The new root is fully built before root_ publishes it; readers that
  // loaded the old root id keep descending a still-valid subtree.
  PageHandle h;
  TSB_RETURN_IF_ERROR(pool_->New(PageType::kTsbIndex, &h));
  IndexPageRef::Format(h.data(), options_.page_size,
                       static_cast<uint8_t>(height_.load()));
  IndexPageRef page(h.data(), options_.page_size);
  IndexEntry e;
  e.key_lo.clear();
  e.key_hi_inf = true;
  e.t_lo = kMinTimestamp;
  e.t_hi = kInfiniteTs;
  e.child = NodeRef::Current(root_.load(std::memory_order_acquire));
  if (!page.Insert(e)) {
    return Status::Corruption("fresh root cannot hold one entry");
  }
  h.MarkDirty();
  // Epoch first, then the root pointer: a reader that sees the new root
  // must also see the new epoch.
  structure_epoch_.fetch_add(1, std::memory_order_acq_rel);
  root_.store(h.id(), std::memory_order_release);
  height_.fetch_add(1, std::memory_order_acq_rel);
  counters_.root_grows++;
  return Status::OK();
}

Status TsbTree::EnsureIndexRoom(const std::vector<PathElem>& path, size_t idx,
                                uint32_t need, bool* changed) {
  {
    PageHandle h;
    TSB_RETURN_IF_ERROR(pool_->Fetch(path[idx].page_id, &h));
    IndexPageRef page(h.data(), options_.page_size);
    if (page.FreeBytes() >= need) return Status::OK();
  }
  *changed = true;
  if (idx == 0) {
    // Full root: give it a parent; the retry path will then split it.
    return GrowRoot();
  }
  return SplitIndexPage(path, idx);
}

Status TsbTree::SplitIndexPage(const std::vector<PathElem>& path, size_t idx) {
  if (idx == 0) {
    return GrowRoot();
  }
  IndexEntry pe;
  int pe_pos;
  TSB_RETURN_IF_ERROR(ParentEntryFor(path, idx, &pe, &pe_pos));

  std::vector<IndexEntry> entries;
  uint8_t level = 0;
  {
    PageHandle h;
    TSB_RETURN_IF_ERROR(pool_->Fetch(path[idx].page_id, &h));
    IndexPageRef page(h.data(), options_.page_size);
    level = page.Level();
    TSB_RETURN_IF_ERROR(page.DecodeAll(&entries));
  }

  // ---- try a local time split (Figs 8-9): find the time before which all
  // references are historical. Entries referencing current children pin
  // the split time at their minimal t_lo.
  Timestamp split_t = kInfiniteTs;
  for (const IndexEntry& e : entries) {
    if (e.current_child()) split_t = std::min(split_t, e.t_lo);
  }
  std::vector<const IndexEntry*> hist_set, straddlers;
  size_t hist_bytes = 0, used_bytes = 0;
  for (const IndexEntry& e : entries) {
    used_bytes += e.EncodedSize();
    if (e.t_hi <= split_t) {
      hist_set.push_back(&e);
      hist_bytes += e.EncodedSize();
    } else if (e.t_lo < split_t) {
      straddlers.push_back(&e);  // guaranteed historical (t_hi finite > T)
    }
  }
  const bool time_split_useful =
      split_t > pe.t_lo && split_t != kInfiniteTs && !hist_set.empty() &&
      hist_bytes * 4 >= used_bytes;  // gain check: migrate >= 25% of bytes

  if (time_split_useful) {
    return TimeSplitIndexPage(path, idx, pe, pe_pos, level, entries, split_t);
  }

  // ---- keyspace split (section 3.5 rule). The split value must be a key
  // value actually used in an index entry AND strictly inside the node's
  // own key region: straddler entries carry key_lo values at or below the
  // region's lower bound, which would produce an empty sibling.
  std::vector<std::string> key_los;
  for (const IndexEntry& e : entries) {
    if (Slice(e.key_lo) <= Slice(pe.key_lo)) continue;
    if (!pe.key_hi_inf && Slice(e.key_lo) >= Slice(pe.key_hi)) continue;
    key_los.push_back(e.key_lo);
  }
  std::sort(key_los.begin(), key_los.end());
  key_los.erase(std::unique(key_los.begin(), key_los.end()), key_los.end());
  if (key_los.empty()) {
    // No key boundary: force a time split if one is at all possible (the
    // gain check above was advisory), else the node cannot shed anything.
    if (split_t > pe.t_lo && split_t != kInfiniteTs && !hist_set.empty()) {
      return TimeSplitIndexPage(path, idx, pe, pe_pos, level, entries,
                                split_t);
    }
    return Status::OutOfSpace("index node has no key boundary to split at");
  }
  const std::string split_key = key_los[key_los.size() / 2];

  IndexEntry ne = pe;
  ne.key_lo = split_key;
  const uint32_t need =
      static_cast<uint32_t>(IndexEntrySizeBound(ne)) + kCellOverhead;
  bool changed = false;
  TSB_RETURN_IF_ERROR(EnsureIndexRoom(path, idx - 1, need, &changed));
  if (changed) return Status::OK();

  std::vector<IndexEntry> left, right;
  size_t dupes = 0;
  for (const IndexEntry& e : entries) {
    const bool hi_le = !e.key_hi_inf && Slice(e.key_hi) <= Slice(split_key);
    const bool lo_ge = Slice(e.key_lo) >= Slice(split_key);
    if (hi_le) {
      left.push_back(e);  // rule 2
    } else if (lo_ge) {
      right.push_back(e);  // rule 3
    } else {
      // Rule 4: the key range strictly contains the split value; such
      // references are guaranteed historical and are copied to BOTH nodes.
      if (!e.child.historical) {
        return Status::Corruption(
            "straddling index entry references a current node");
      }
      left.push_back(e);
      right.push_back(e);
      dupes++;
    }
  }
  if (left.empty() || right.empty()) {
    return Status::OutOfSpace("index keyspace split produced an empty side");
  }

  // The right sibling is private until the parent publishes it: no latch.
  PageHandle right_h;
  TSB_RETURN_IF_ERROR(pool_->New(PageType::kTsbIndex, &right_h));
  IndexPageRef::Format(right_h.data(), options_.page_size, level);
  {
    IndexPageRef rp(right_h.data(), options_.page_size);
    TSB_RETURN_IF_ERROR(rp.Load(right));
    right_h.MarkDirty();
  }
  // Shrink the node and publish the sibling under both exclusive latches.
  {
    PageHandle parent_h;
    TSB_RETURN_IF_ERROR(
        pool_->FetchExclusive(path[idx - 1].page_id, &parent_h));
    PageHandle h;
    TSB_RETURN_IF_ERROR(pool_->FetchExclusive(path[idx].page_id, &h));
    // Keep the B-link chain at the index level too (uniform invariant;
    // only leaf links are consulted by the OLC side-step today).
    SetPageSibling(right_h.data(), PageSibling(h.data()));
    IndexPageRef page(h.data(), options_.page_size);
    TSB_RETURN_IF_ERROR(page.Load(left));
    SetPageSibling(h.data(), right_h.id());
    h.MarkDirty();
    IndexPageRef parent(parent_h.data(), options_.page_size);
    IndexEntry left_e = pe;
    left_e.key_hi = split_key;
    left_e.key_hi_inf = false;
    left_e.min_ts = ContentFloorHint(IndexContentFloor(left));
    if (!parent.Replace(pe_pos, left_e)) {
      return Status::Corruption("index key split: parent replace failed");
    }
    IndexEntry right_e = pe;  // rule 1: a copy of the time used for the
    right_e.key_lo = split_key;  // previous reference is posted
    right_e.child = NodeRef::Current(right_h.id());
    right_e.min_ts = ContentFloorHint(IndexContentFloor(right));
    if (!parent.Insert(right_e)) {
      return Status::Corruption("index key split: parent lost space");
    }
    parent_h.MarkDirty();
    // Epoch bump inside the latch scope (see time-split comment).
    structure_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  counters_.index_key_splits++;
  counters_.redundant_index_copies += dupes;
  return Status::OK();
}


Status TsbTree::TimeSplitIndexPage(const std::vector<PathElem>& path,
                                   size_t idx, const IndexEntry& pe,
                                   int pe_pos, uint8_t level,
                                   const std::vector<IndexEntry>& entries,
                                   Timestamp split_t) {
  IndexEntry he = pe;
  he.t_hi = split_t;
  const uint32_t need =
      static_cast<uint32_t>(IndexEntrySizeBound(he)) + kCellOverhead;
  bool changed = false;
  TSB_RETURN_IF_ERROR(EnsureIndexRoom(path, idx - 1, need, &changed));
  if (changed) return Status::OK();  // structure moved; caller retries

  std::vector<IndexEntry> hist_entries;
  size_t straddler_count = 0;
  for (const IndexEntry& e : entries) {
    if (e.t_hi <= split_t) {
      hist_entries.push_back(e);
    } else if (e.t_lo < split_t) {
      hist_entries.push_back(e);  // straddler: copied to BOTH nodes
      straddler_count++;
    }
  }
  std::sort(hist_entries.begin(), hist_entries.end());
  he.min_ts = ContentFloorHint(IndexContentFloor(hist_entries));
  size_t distinct = 0, key_bytes = 0;
  IndexNodeShape(hist_entries, &distinct, &key_bytes);
  const uint32_t interval = policy_.ChooseRestartInterval(
      options_.hist_restart_interval, hist_entries.size(), distinct,
      key_bytes);
  std::string blob;
  uint64_t raw_bytes = 0;
  SerializeHistIndexNode(level, hist_entries, &blob,
                         options_.hist_node_format, &raw_bytes, interval);
  HistAddr addr;
  TSB_RETURN_IF_ERROR(AppendHistNode(blob, raw_bytes, &addr));

  std::vector<IndexEntry> keep;
  for (const IndexEntry& e : entries) {
    if (e.t_hi > split_t) keep.push_back(e);
  }
  // Rewrite the node and repoint the parent under both exclusive latches
  // (top-down order, matching reader latch coupling).
  {
    PageHandle parent_h;
    TSB_RETURN_IF_ERROR(
        pool_->FetchExclusive(path[idx - 1].page_id, &parent_h));
    PageHandle h;
    TSB_RETURN_IF_ERROR(pool_->FetchExclusive(path[idx].page_id, &h));
    IndexPageRef page(h.data(), options_.page_size);
    TSB_RETURN_IF_ERROR(page.Load(keep));
    h.MarkDirty();
    IndexPageRef parent(parent_h.data(), options_.page_size);
    IndexEntry cur_e = pe;
    cur_e.t_lo = split_t;
    cur_e.min_ts = ContentFloorHint(IndexContentFloor(keep));
    if (!parent.Replace(pe_pos, cur_e)) {
      return Status::Corruption("index time split: parent replace failed");
    }
    he.child = NodeRef::Historical(addr);
    if (!parent.Insert(he)) {
      return Status::Corruption("index time split: parent lost space");
    }
    parent_h.MarkDirty();
    // Epoch bump inside the latch scope (see time-split comment).
    structure_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  counters_.index_time_splits++;
  counters_.hist_index_nodes++;
  counters_.index_entries_migrated += hist_entries.size();
  counters_.redundant_index_copies += straddler_count;
  return Status::OK();
}

// ---------------------------------------------------------------- tools

Status TsbTree::AppendHistNode(const std::string& blob, uint64_t raw_bytes,
                               HistAddr* addr) {
  TSB_RETURN_IF_ERROR(hist_->Append(blob, addr));
  hist_node_raw_bytes_.fetch_add(raw_bytes, std::memory_order_relaxed);
  hist_node_stored_bytes_.fetch_add(blob.size(), std::memory_order_relaxed);
  return Status::OK();
}

Status TsbTree::ReadNode(const NodeRef& ref, DecodedNode* out) {
  out->data.clear();
  out->index.clear();
  out->historical = ref.historical;
  if (!ref.historical) {
    // Shared latch for the duration of the decode: the node is copied out
    // as one consistent snapshot.
    PageHandle h;
    TSB_RETURN_IF_ERROR(pool_->FetchShared(ref.page_id, &h));
    out->level = TsbPageLevel(h.data());
    if (out->level == 0) {
      DataPageRef page(h.data(), options_.page_size);
      return page.DecodeAll(&out->data);
    }
    IndexPageRef page(h.data(), options_.page_size);
    return page.DecodeAll(&out->index);
  }
  BlobHandle blob;
  TSB_RETURN_IF_ERROR(hist_->ReadView(ref.addr, &blob));
  hist_decodes_.owned_decodes.fetch_add(1, std::memory_order_relaxed);
  TSB_RETURN_IF_ERROR(HistNodeLevel(blob.data(), &out->level));
  if (out->level == 0) {
    return DecodeHistDataNode(blob.data(), &out->data);
  }
  uint8_t level = 0;
  return DecodeHistIndexNode(blob.data(), &level, &out->index);
}

HistReadStats TsbTree::HistStats() const {
  HistReadStats s = hist_->hist_stats();
  s.view_decodes = hist_decodes_.view_decodes.load(std::memory_order_relaxed);
  s.owned_decodes =
      hist_decodes_.owned_decodes.load(std::memory_order_relaxed);
  s.node_raw_bytes = hist_node_raw_bytes_.load(std::memory_order_relaxed);
  s.node_stored_bytes =
      hist_node_stored_bytes_.load(std::memory_order_relaxed);
  return s;
}

Status TsbTree::WalkStats(
    const NodeRef& ref, SpaceStats* stats,
    std::vector<std::pair<std::string, Timestamp>>* versions,
    std::vector<HistAddr>* seen_hist) {
  if (ref.historical) {
    // A historical node can have several parents (the structure is a DAG);
    // count each stored node once.
    for (const HistAddr& a : *seen_hist) {
      if (a == ref.addr) return Status::OK();
    }
    seen_hist->push_back(ref.addr);
  }
  DecodedNode node;
  TSB_RETURN_IF_ERROR(ReadNode(ref, &node));
  if (node.is_data()) {
    for (const DataEntry& e : node.data) {
      if (e.uncommitted()) continue;
      stats->physical_record_copies++;
      versions->emplace_back(e.key, e.ts);
    }
    return Status::OK();
  }
  for (const IndexEntry& e : node.index) {
    TSB_RETURN_IF_ERROR(WalkStats(e.child, stats, versions, seen_hist));
  }
  return Status::OK();
}

Status TsbTree::ComputeSpaceStats(SpaceStats* out) {
  // Maintenance walk: quiesce every mutator (exclusive writer lock, both
  // writer modes) for a consistent DAG traversal; readers may continue
  // concurrently.
  std::lock_guard<std::shared_mutex> wl(writer_mu_);
  *out = SpaceStats{};
  out->magnetic_pages = pager_->live_pages();
  out->magnetic_bytes = pager_->live_bytes();
  out->leaked_free_pages = pager_->leaked_free_pages();
  out->optical_payload_bytes = hist_->payload_bytes();
  out->hist_nodes = hist_->blob_count();
  auto* worm = dynamic_cast<WormDevice*>(hist_->device());
  out->optical_device_bytes =
      (worm != nullptr) ? worm->sectors_burned() * worm->sector_size()
                        : hist_->device_bytes();

  std::vector<std::pair<std::string, Timestamp>> versions;
  std::vector<HistAddr> seen_hist;
  TSB_RETURN_IF_ERROR(WalkStats(root(), out, &versions, &seen_hist));
  std::sort(versions.begin(), versions.end());
  versions.erase(std::unique(versions.begin(), versions.end()),
                 versions.end());
  out->logical_versions = versions.size();

  // Used bytes inside live current pages: walk current pages only.
  // (Re-walk is cheap relative to the full DAG walk above.)
  std::vector<uint32_t> stack = {root_.load(std::memory_order_acquire)};
  std::set<uint32_t> seen_pages;
  uint64_t used = 0;
  while (!stack.empty()) {
    const uint32_t id = stack.back();
    stack.pop_back();
    if (!seen_pages.insert(id).second) continue;
    PageHandle h;
    TSB_RETURN_IF_ERROR(pool_->Fetch(id, &h));
    if (TsbPageLevel(h.data()) == 0) {
      DataPageRef page(h.data(), options_.page_size);
      used += page.UsedBytes();
    } else {
      IndexPageRef page(h.data(), options_.page_size);
      used += page.UsedBytes();
      for (int i = 0; i < page.Count(); ++i) {
        IndexEntry e;
        TSB_RETURN_IF_ERROR(page.At(i, &e));
        if (!e.child.historical) stack.push_back(e.child.page_id);
      }
    }
  }
  out->magnetic_used_bytes = used;
  return Status::OK();
}

Status TsbTree::ScanHistoryRange(const Slice& key_lo, const Slice& key_hi,
                                 Timestamp t_lo, Timestamp t_hi,
                                 std::vector<VersionRecord>* out) {
  out->clear();
  if (t_lo >= t_hi) return Status::OK();
  // The walk holds no latch across levels; instead every CURRENT index
  // page stays pinned while its subtrees are visited and its per-frame
  // mutation counter is revalidated after each child (see
  // ScanHistoryRangeRec) — far finer-grained than the old whole-tree
  // structure-epoch check, which restarted the scan on ANY split anywhere.
  // Two escalations remain: a page that will not stabilize reports Busy,
  // and a root swap mid-walk means entries may have moved to a page only
  // reachable from the NEW root. Both retry the walk; the final attempt
  // quiesces every mutator via the exclusive writer lock. The accumulator
  // persists across attempts: each emission is a committed version decoded
  // consistently under a latch, and the (key, ts) keying dedups re-visits,
  // so earlier partial walks only save work.
  constexpr int kOptimisticScanAttempts = 4;
  std::map<std::pair<std::string, Timestamp>, std::string> acc;
  std::vector<HistAddr> seen;
  for (int attempt = 0; attempt <= kOptimisticScanAttempts; ++attempt) {
    const bool quiesce = attempt == kOptimisticScanAttempts;
    std::unique_lock<std::shared_mutex> wl(writer_mu_, std::defer_lock);
    if (quiesce) wl.lock();
    const NodeRef scan_root = root();
    Status s = ScanHistoryRangeRec(scan_root, key_lo, key_hi, t_lo, t_hi,
                                   &acc, &seen);
    if (s.IsBusy()) continue;
    TSB_RETURN_IF_ERROR(s);
    if (!quiesce &&
        root_.load(std::memory_order_acquire) != scan_root.page_id) {
      continue;
    }
    out->reserve(acc.size());
    for (auto& [kt, value] : acc) {
      out->push_back(VersionRecord{kt.first, kt.second, std::move(value)});
    }
    return Status::OK();
  }
  return Status::Corruption("unreachable: quiesced scan did not return");
}

Status TsbTree::ScanHistoryRangeRec(
    const NodeRef& ref, const Slice& key_lo, const Slice& key_hi,
    Timestamp t_lo, Timestamp t_hi,
    std::map<std::pair<std::string, Timestamp>, std::string>* acc,
    std::vector<HistAddr>* seen) {
  if (ref.historical) {
    for (const HistAddr& a : *seen) {
      if (a == ref.addr) return Status::OK();  // DAG: visit each node once
    }
    seen->push_back(ref.addr);
    // Historical nodes scan zero-copy over the pinned blob: only entries
    // matching the window are materialized into the accumulator; the
    // dispatch keeps the pin alive across the recursion into children.
    // Range scans advise sequential access so the mapping gets readahead.
    BlobReadHints scan_hints;
    scan_hints.sequential = true;
    return DispatchHistNode(
        hist_.get(), &hist_decodes_, ref.addr,
        [&](BlobHandle&, HistDataNodeRef& node) -> Status {
          for (int i = 0; i < node.Count(); ++i) {
            DataEntryView v;
            TSB_RETURN_IF_ERROR(node.At(i, &v));
            if (v.uncommitted()) continue;
            if (v.ts < t_lo || v.ts >= t_hi) continue;
            if (v.key < key_lo) continue;
            if (!key_hi.empty() && v.key >= key_hi) continue;
            acc->emplace(std::make_pair(v.key.ToString(), v.ts),
                         v.value.ToString());
          }
          return Status::OK();
        },
        [&](BlobHandle&, HistIndexNodeRef& node) -> Status {
          for (int i = 0; i < node.Count(); ++i) {
            IndexEntryView e;
            TSB_RETURN_IF_ERROR(node.AtView(i, &e));
            if (e.t_hi <= t_lo || e.t_lo >= t_hi) continue;
            if (e.min_ts >= t_hi) continue;  // content floor past the window
            if (!key_hi.empty() && e.key_lo >= key_hi) continue;
            if (!e.key_hi_inf && e.key_hi <= key_lo) continue;
            // The recursion only needs the POD child ref; the view itself
            // dies at the next AtView.
            const NodeRef child = e.child;
            TSB_RETURN_IF_ERROR(ScanHistoryRangeRec(child, key_lo, key_hi,
                                                    t_lo, t_hi, acc, seen));
          }
          return Status::OK();
        },
        scan_hints);
  }
  // Current page. Leaves decode under a brief shared latch and emit their
  // matching entries. Index pages also decode under a brief latch, then
  // keep only the PIN while recursing into children; after each child the
  // frame's mutation counter is revalidated — a change means a split may
  // have moved entries into a sibling this snapshot of the page does not
  // reference yet, so the page is re-read and its loop restarts (the
  // (key, ts)-keyed accumulator and the historical-node dedup make
  // re-visits idempotent). A page that never stabilizes reports
  // Status::Busy and the top-level caller escalates to a quiesced walk.
  PageHandle h;
  TSB_RETURN_IF_ERROR(pool_->FetchShared(ref.page_id, &h));
  if (TsbPageLevel(h.data()) == 0) {
    DataPageRef page(h.data(), options_.page_size);
    std::vector<DataEntry> data;
    TSB_RETURN_IF_ERROR(page.DecodeAll(&data));
    h.Release();
    for (const DataEntry& e : data) {
      if (e.uncommitted()) continue;
      if (e.ts < t_lo || e.ts >= t_hi) continue;
      if (Slice(e.key) < key_lo) continue;
      if (!key_hi.empty() && Slice(e.key) >= key_hi) continue;
      acc->emplace(std::make_pair(e.key, e.ts), e.value);
    }
    return Status::OK();
  }
  IndexPageRef page(h.data(), options_.page_size);
  std::vector<IndexEntry> index;
  TSB_RETURN_IF_ERROR(page.DecodeAll(&index));
  uint64_t ver = h.version();
  h.Unlatch();  // keep the pin: the frame cannot be evicted or reloaded
  constexpr int kMaxPageRereads = 8;
  int rereads = 0;
  size_t i = 0;
  while (i < index.size()) {
    const IndexEntry& e = index[i];
    // Prune subtrees whose rectangle misses the query window. This is
    // complete: every version lives in at least one data node whose time
    // range CONTAINS its write time (time splits partition by write time;
    // the rule-3 redundant copies elsewhere are duplicates removed by the
    // (key, ts) deduplication).
    const bool pruned = e.t_hi <= t_lo || e.t_lo >= t_hi ||
                        e.min_ts >= t_hi ||  // content floor past the window
                        (!key_hi.empty() && Slice(e.key_lo) >= key_hi) ||
                        (!e.key_hi_inf && Slice(e.key_hi) <= key_lo);
    if (!pruned) {
      TSB_RETURN_IF_ERROR(ScanHistoryRangeRec(e.child, key_lo, key_hi, t_lo,
                                              t_hi, acc, seen));
    }
    ++i;
    if (h.version() != ver) {
      if (++rereads > kMaxPageRereads) {
        return Status::Busy("current index page would not stabilize");
      }
      h.LatchShared();
      IndexPageRef repage(h.data(), options_.page_size);
      index.clear();
      Status ds = repage.DecodeAll(&index);
      ver = h.version();
      h.Unlatch();
      TSB_RETURN_IF_ERROR(ds);
      i = 0;
    }
  }
  return Status::OK();
}

std::unique_ptr<VersionCursor> TsbTree::NewCursor(const ReadOptions& options) {
  return std::make_unique<VersionCursor>(this, options);
}

std::unique_ptr<SnapshotIterator> TsbTree::NewSnapshotIterator(Timestamp t) {
  ReadOptions options;
  options.as_of = t;
  return NewCursor(options);
}

std::unique_ptr<HistoryIterator> TsbTree::NewHistoryIterator(
    const Slice& key) {
  return std::make_unique<HistoryIterator>(this, key);
}

}  // namespace tsb_tree
}  // namespace tsb
