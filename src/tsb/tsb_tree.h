// The Time-Split B-tree (paper section 3): a single integrated index over
// a current database on an erasable device and a historical database on an
// append-only device, with key splits, time splits at a chooseable time,
// and incremental one-node-at-a-time migration.
#ifndef TSBTREE_TSB_TSB_TREE_H_
#define TSBTREE_TSB_TSB_TREE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/append_store.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "tsb/data_page.h"
#include "tsb/index_page.h"
#include "tsb/pinnable_value.h"
#include "tsb/split_policy.h"
#include "tsb/tsb_stats.h"

namespace tsb {
namespace tsb_tree {

class VersionCursor;
class HistoryIterator;

/// Legacy name: a key-ordered snapshot scan is a VersionCursor pinned at
/// one as-of time (the cursor subsumed the old iterator).
using SnapshotIterator = VersionCursor;

/// Sentinel for ReadOptions::as_of: read at the committed watermark (the
/// newest time at which every finished transaction is visible and no
/// in-flight one is).
inline constexpr Timestamp kAsOfLatest = kInfiniteTs;

/// Per-read options, threaded through every read entry point. The read
/// timestamp is the explicit choice point every multiversion query has;
/// making it an option (instead of method variants) keeps one read
/// surface for "now", "as of t" and snapshot-handle reads.
struct ReadOptions {
  /// Timestamp the read observes (stepwise-constant semantics, Fig 1).
  /// kAsOfLatest = the committed watermark.
  Timestamp as_of = kAsOfLatest;
  /// Re-verify blob checksums even when a previous pin already did.
  bool verify_checksums = false;
  /// Publish cold historical blobs into the shared read cache.
  bool fill_cache = true;
};

struct TsbOptions {
  uint32_t page_size = kDefaultPageSize;
  size_t buffer_pool_frames = 256;
  /// Shared-blob read cache for the historical store (0 = none). Cache
  /// hits pin the cached blob — no copy, no decode — so sizing this to the
  /// historical working set makes as-of reads allocation-free.
  size_t hist_cache_blobs = 8;
  /// Point lookups into the historical store binary-search pinned blobs
  /// through view refs (zero-copy). Off = legacy owning decode of every
  /// visited node; kept only as a measurable baseline for benchmarks.
  bool zero_copy_hist_reads = true;
  /// Wire format for NEWLY written historical nodes. v3 prefix-compresses
  /// keys per restart block (smaller nodes, slightly more decode work);
  /// v2 is the uncompressed slotted format. Every format ever written
  /// stays readable, so the knob can change between runs freely.
  HistNodeFormat hist_node_format = HistNodeFormat::kV3;
  /// Cells per restart block in newly written v3 nodes. Smaller blocks
  /// decode fewer cells per lookup (long-key workloads); larger blocks
  /// compress better (many short versions per key). Read-compatible in
  /// every direction — the interval is stored per node.
  uint32_t hist_restart_interval = kHistRestartInterval;
  /// Parallel write path. Off (default): every mutator serializes behind
  /// one writer mutex — the paper's single-updater discipline, zero
  /// overhead, the measurable baseline. On: mutators run concurrently
  /// using optimistic latch coupling — the descent reads internal pages
  /// under brief shared latches, validates each page's mutation counter
  /// after latching the child, takes the exclusive frame latch only on the
  /// target leaf, and side-steps along B-link sibling pointers when a
  /// concurrent key split moved the key (see counters().olc_restarts /
  /// olc_sidesteps). Splits serialize on an internal structure mutex;
  /// leaf-only writes scale with cores. With concurrent writers, route
  /// committed writes through ONE discipline: either direct Put calls or
  /// TxnManager commits, not both interleaved (the commit watermark
  /// ordering assumes it allocates the timestamps it publishes).
  bool concurrent_writers = false;
  /// Commit clock shared with other trees (must outlive this one).
  /// nullptr = the tree owns a private clock, the historical default.
  /// One injected clock spanning N trees is what gives a sharded database
  /// a single timestamp axis: a commit ts allocated on any shard is
  /// meaningful on every shard, and one published watermark covers them
  /// all. The clock's Visible() watermark then moves only through
  /// whoever coordinates the sharing (see txn::CommitLedger).
  LogicalClock* external_clock = nullptr;
  SplitPolicyConfig policy;
};

/// Converts public read options into the blob-read hints the node layer
/// consumes. `sequential` marks range scans (mapped reads then advise
/// kernel readahead over the scanned range).
inline BlobReadHints MakeBlobReadHints(const ReadOptions& options,
                                       bool sequential = false) {
  BlobReadHints h;
  h.verify_checksums = options.verify_checksums;
  h.fill_cache = options.fill_cache;
  h.sequential = sequential;
  return h;
}

/// A fully decoded node, for iterators, the checker and tools. Either
/// `data` (level == 0) or `index` (level > 0) is populated.
struct DecodedNode {
  uint8_t level = 0;
  bool historical = false;
  std::vector<DataEntry> data;
  std::vector<IndexEntry> index;
  bool is_data() const { return level == 0; }
};

/// The Time-Split B-tree.
///
/// Writes:
///  - Put(key, value, ts)            committed version, ts non-decreasing
///  - PutUncommitted(key, value, txn) version without timestamp (section 4)
///  - StampCommitted(key, txn, ts)   commit an uncommitted version in place
///  - EraseUncommitted(key, txn)     abort cleanup (erasable current DB)
/// Reads:
///  - GetCurrent / GetAsOf / GetUncommitted
///  - NewSnapshotIterator(T)         key-ordered state as of T
///  - NewHistoryIterator(key)        all committed versions, newest first
///
/// Thread model (paper section 4.1 extended with optimistic latch
/// coupling on the write path):
///  - Default (options.concurrent_writers == false): all write entry
///    points serialize exclusively on the internal writer mutex — the
///    paper's single-updater discipline; concurrent writers are safe but
///    not parallel.
///  - concurrent_writers == true: mutators hold the writer mutex SHARED
///    (so N writer threads proceed in parallel) and descend with
///    optimistic latch coupling — brief shared latch per internal page,
///    PageHandle::version validation after each child latch, exclusive
///    latch only on the target leaf. A descent that loses a race
///    side-steps along the leaf's B-link sibling pointer (concurrent key
///    split) or restarts from the root. Structural changes (splits, root
///    growth) additionally serialize on an internal structure mutex, so
///    index pages mutate one split at a time. Quiescing maintenance
///    (Flush, ComputeSpaceStats, bounded scan/cursor fallbacks) takes the
///    writer mutex exclusively and thus still excludes every mutator in
///    both modes.
///  - Read entry points never take the writer mutex. Point reads descend
///    the current pages with latch coupling: the child's shared frame
///    latch is acquired before the parent's is dropped, and every
///    structural change holds the parent and child exclusive latches
///    simultaneously, so a reader can never observe a parent entry and a
///    child page from different structural states. Historical nodes are
///    immutable blobs and need no latches.
///  - Scans (SnapshotIterator, ScanHistoryRange) keep pinned frames and
///    revalidate per-page mutation counters, transparently re-reading a
///    page a split rewrote underneath them; as-of-T results are stable
///    because commit timestamps only grow (section 4.1).
class TsbTree {
 public:
  /// Opens a tree. `magnetic` (erasable) holds the current database,
  /// `historical` (append-only; may be a WormDevice) holds migrated nodes.
  /// Both must outlive the tree.
  static Status Open(Device* magnetic, Device* historical,
                     const TsbOptions& options, std::unique_ptr<TsbTree>* out);

  ~TsbTree();

  // ---- writes ----

  /// Inserts a committed version. `ts` must be >= every previously written
  /// timestamp (commit order; the tree advances its clock to ts).
  Status Put(const Slice& key, const Slice& value, Timestamp ts);

  /// Inserts an uncommitted version for transaction `txn`. At most one
  /// uncommitted version per (key, txn); a second Put replaces it.
  Status PutUncommitted(const Slice& key, const Slice& value, TxnId txn);

  /// Stamps the uncommitted version of (key, txn) with commit time `ts`.
  Status StampCommitted(const Slice& key, TxnId txn, Timestamp ts);

  /// Stamps every (key, txn) pair in `keys` with the same commit time.
  /// `keys` must be sorted ascending and distinct (a WriteBatch commit);
  /// all keys landing on the same leaf are stamped in ONE descent, so a
  /// large batch costs O(leaves touched) descents instead of O(keys) —
  /// see counters().stamp_descents. Equivalent to per-key StampCommitted
  /// calls, including the mid-batch failure behavior (the caller poisons
  /// the watermark on error, so partial stamps never become visible).
  Status StampCommittedBatch(const std::vector<Slice>& keys, TxnId txn,
                             Timestamp ts);

  /// Erases the uncommitted version of (key, txn) — abort path.
  Status EraseUncommitted(const Slice& key, TxnId txn);

  // ---- reads ----

  /// Point lookup at options.as_of, copying the value into `*value`.
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value, Timestamp* ts = nullptr);

  /// Zero-copy point lookup at options.as_of: when the version resolves
  /// in the historical store the PinnableValue pins the node blob and the
  /// value is a view into it — no value memcpy on blob-cache/mmap hits.
  /// Values in mutable current pages are copied under the page latch.
  Status Get(const ReadOptions& options, const Slice& key,
             PinnableValue* value);

  /// Legacy wrapper: latest committed version (including any not yet
  /// published by an in-flight multi-key commit — internal callers rely
  /// on this; user code should prefer Get with default ReadOptions).
  Status GetCurrent(const Slice& key, std::string* value,
                    Timestamp* ts = nullptr);

  /// Legacy wrapper: version valid at time `t`.
  Status GetAsOf(const Slice& key, Timestamp t, std::string* value,
                 Timestamp* ts = nullptr);

  /// Reads a transaction's own uncommitted version.
  Status GetUncommitted(const Slice& key, TxnId txn, std::string* value);

  /// The unified traversal surface: key-ordered Seek/Next/Prev at
  /// options.as_of plus NextVersion/SeekTimestamp along the current key's
  /// time axis. Safe to use while an updater runs (structure-epoch
  /// restarts; the as-of state is immutable).
  std::unique_ptr<VersionCursor> NewCursor(const ReadOptions& options);

  /// Legacy wrapper: key-ordered state as of time `t` (a VersionCursor).
  std::unique_ptr<SnapshotIterator> NewSnapshotIterator(Timestamp t);

  /// Legacy wrapper: all committed versions of `key`, newest first (a
  /// VersionCursor walking the time axis).
  std::unique_ptr<HistoryIterator> NewHistoryIterator(const Slice& key);

  /// Resolves a ReadOptions::as_of value (kAsOfLatest = the committed
  /// watermark) into a concrete timestamp.
  Timestamp ResolveAsOf(Timestamp as_of) const {
    return as_of == kAsOfLatest ? VisibleNow() : as_of;
  }

  /// One record of a range-history scan.
  struct VersionRecord {
    std::string key;
    Timestamp ts;
    std::string value;
  };

  /// Every committed version WRITTEN during [t_lo, t_hi) whose key lies in
  /// [key_lo, key_hi) (key_hi empty = unbounded), in (key, ts) order —
  /// the audit-trail query over a key range and time window. Duplicated
  /// copies (TIME-SPLIT RULE redundancy, straddler references) are emitted
  /// once.
  Status ScanHistoryRange(const Slice& key_lo, const Slice& key_hi,
                          Timestamp t_lo, Timestamp t_hi,
                          std::vector<VersionRecord>* out);

  // ---- maintenance / stats ----

  /// Persists tree meta and flushes dirty pages.
  Status Flush();

  // ---- durability (WAL checkpoint + recovery; see src/wal/) ----

  /// Quiesced image of this tree's dirty state, captured by
  /// BeginCheckpoint. Holds the exclusive writer lock until
  /// FinishCheckpoint (or destruction), so no mutator runs between the
  /// journal snapshot and the in-place flush.
  struct CheckpointScope {
    std::unique_lock<std::shared_mutex> quiesce;
    std::string meta_image;  ///< page-0 image (unsealed)
    std::vector<std::pair<uint32_t, std::string>> dirty_pages;  ///< unsealed
  };

  /// Phase 1 of a crash-atomic checkpoint: takes the exclusive writer
  /// lock, syncs the historical device (journaled pages may reference
  /// freshly appended blobs), and snapshots the meta image + every dirty
  /// buffer-pool frame into `scope`. The caller journals the images, then
  /// calls FinishCheckpoint.
  Status BeginCheckpoint(CheckpointScope* scope);

  /// Phase 2: writes the snapshotted images in place (meta + FlushAll),
  /// syncs the current device, and releases the writer lock.
  Status FinishCheckpoint(CheckpointScope* scope);

  /// WAL recovery insert: like Put but exempt from the monotone-clock
  /// check (replay re-inserts timestamps the persisted clock already
  /// advanced past) and without publishing (the caller publishes once
  /// after the whole log is replayed).
  Status ReplayCommitted(const Slice& key, const Slice& value, Timestamp ts);

  /// Removes every uncommitted (ghost) version left behind by a crash
  /// mid-transaction. Recovery runs this before WAL replay; `*purged`
  /// counts removed versions.
  Status PurgeUncommitted(uint64_t* purged);

  /// Removes every version stamped exactly `ts` — the repair step for a
  /// commit that FAILED mid-stamp: its timestamp never published (the
  /// poisoned watermark caps below it), so the records were never reader-
  /// visible, and a time split can never have migrated them to historical
  /// nodes (split boundaries cap at the published watermark). Degraded-
  /// mode Resume runs this, with commits frozen, for each failed commit
  /// timestamp before lifting the watermark. `*purged` counts removals.
  Status PurgeCommittedAt(Timestamp ts, uint64_t* purged);

  /// Walks the whole DAG and computes the section-5 space metrics.
  Status ComputeSpaceStats(SpaceStats* out);

  const TsbCounters& counters() const { return counters_; }
  /// Historical read-path counters: blob reads/bytes, cache hit ratio,
  /// mapped vs copied miss bytes, view vs. owned node decodes and the
  /// written-node compression ratio. Safe to call concurrently with
  /// readers.
  HistReadStats HistStats() const;
  /// Buffer-pool counters for the magnetic (current-page) axis — the
  /// companion of HistStats so mixed workloads are diagnosable end to end.
  BufferPoolStats PoolStats() const { return pool_->stats(); }
  const TsbOptions& options() const { return options_; }
  /// The commit clock — the tree's own unless TsbOptions::external_clock
  /// injected a shared one.
  LogicalClock& clock() { return *clock_; }
  /// Latest issued timestamp (allocator; may lead the committed state
  /// while a transaction commit is in flight).
  Timestamp Now() const { return clock_->Now(); }
  /// Committed watermark: the correct start timestamp for lock-free
  /// readers — everything at or before it is fully stamped.
  Timestamp VisibleNow() const { return clock_->Visible(); }

  Pager* pager() { return pager_.get(); }
  BufferPool* buffer_pool() { return pool_.get(); }
  AppendStore* hist_store() { return hist_.get(); }

  // ---- introspection (iterators, checker, tests) ----

  NodeRef root() const {
    return NodeRef::Current(root_.load(std::memory_order_acquire));
  }
  uint32_t height() const { return height_.load(std::memory_order_acquire); }

  /// Monotone counter bumped by every structural change (split, root
  /// grow). Scans snapshot it to detect concurrent restructuring.
  uint64_t structure_epoch() const {
    return structure_epoch_.load(std::memory_order_acquire);
  }

  /// Decodes any node (current page or historical blob).
  Status ReadNode(const NodeRef& ref, DecodedNode* out);

 private:
  TsbTree(Device* magnetic, Device* historical, const TsbOptions& options);

  Status Load();

  struct PathElem {
    uint32_t page_id;
    int entry_idx;  // entry followed in THIS page to reach the child (-1 leaf)
  };

  /// Descends the current axis (T = kUncommittedTs) to the leaf for `key`.
  /// Writer-only. With `latched`, every page is read under a brief shared
  /// latch (required whenever other writers may mutate leaves, i.e. under
  /// structure_mu_ in concurrent mode); unlatched reads are only safe when
  /// the caller holds writer_mu_ exclusively.
  Status DescendCurrent(const Slice& key, std::vector<PathElem>* path,
                        bool latched = false);

  /// Concurrent-mode writer descent (optimistic latch coupling): descends
  /// to the leaf for `key` under brief shared latches with per-page
  /// version validation, and returns the leaf EXCLUSIVELY latched plus the
  /// parent entry (`pe`, identity rectangle when the leaf is the root)
  /// captured consistently with the leaf. Lost races side-step via the
  /// B-link sibling or restart from the root (bounded).
  Status LatchLeafOLC(const Slice& key, PageHandle* leaf, IndexEntry* pe);

  /// Where a point lookup delivers its result: exactly one of `value`
  /// (copying) or `pinned` (zero-copy blob view) is non-null.
  struct PointSink {
    std::string* value = nullptr;
    PinnableValue* pinned = nullptr;
    Timestamp* ts = nullptr;
  };

  /// Point lookup for (key, t); t <= kUncommittedTs. Fills the sink.
  /// Lock-free for callers: descends with shared latch coupling.
  Status SearchPoint(const Slice& key, Timestamp t, TxnId txn,
                     const BlobReadHints& hints, const PointSink& sink);

  /// Phase 2 of SearchPoint: continues a point lookup inside the
  /// historical store from `addr`, zero-copy (pinned blobs + view refs,
  /// binary-search descent).
  Status SearchHistPoint(HistAddr addr, const Slice& key, Timestamp t,
                         const BlobReadHints& hints, const PointSink& sink);

  /// Legacy phase 2 using owning decodes of every visited node; kept as a
  /// measurable baseline (options_.zero_copy_hist_reads == false).
  Status SearchHistPointOwned(HistAddr addr, const Slice& key, Timestamp t,
                              const PointSink& sink);

  /// Serializes + appends one consolidated historical node in the
  /// configured wire format and maintains the compression counters.
  Status AppendHistNode(const std::string& blob, uint64_t raw_bytes,
                        HistAddr* addr);

  /// Inserts `e` (committed or uncommitted), splitting as needed.
  Status InsertEntry(const DataEntry& e);

  /// Applies the content_floor_hints knob at every hint-stamping split
  /// site: disabled reproduces legacy cells (stored min_ts = 0), which
  /// TreeChecker::RepairContentFloors can later backfill.
  Timestamp ContentFloorHint(Timestamp floor) const {
    return policy_.config().content_floor_hints ? floor : 0;
  }

  /// Recursive walk for PurgeUncommitted (current axis only; historical
  /// nodes are immutable and never hold uncommitted versions).
  Status PurgeUncommittedRec(uint32_t page_id, uint64_t* purged);

  /// Recursive walk for PurgeCommittedAt (current axis only; see the
  /// public doc for why historical nodes cannot hold the timestamp).
  Status PurgeCommittedAtRec(uint32_t page_id, Timestamp ts,
                             uint64_t* purged);

  /// The split slow path of InsertEntry: re-descends under structure_mu_
  /// and splits the target leaf unless another writer already made room.
  Status SplitForInsert(const DataEntry& e);

  /// Splits the full leaf at path.back(); posts to parents; the caller
  /// re-descends afterwards.
  Status SplitDataPage(const std::vector<PathElem>& path);

  /// Ensures the index page at path[idx] can absorb `need` more bytes,
  /// splitting it (and ancestors) if necessary. May grow the root. Sets
  /// *changed when the structure was altered (the caller must re-descend).
  Status EnsureIndexRoom(const std::vector<PathElem>& path, size_t idx,
                         uint32_t need, bool* changed);

  /// Splits the index page at path[idx] (key split or local time split).
  Status SplitIndexPage(const std::vector<PathElem>& path, size_t idx);

  /// Performs the local time split of an index page at `split_t` (Fig 8):
  /// migrates entries with t_hi <= split_t plus straddlers to the append
  /// store, keeps entries with t_hi > split_t, updates the parent.
  Status TimeSplitIndexPage(const std::vector<PathElem>& path, size_t idx,
                            const IndexEntry& pe, int pe_pos, uint8_t level,
                            const std::vector<IndexEntry>& entries,
                            Timestamp split_t);

  /// Creates a new root above the current one (entry covering everything).
  Status GrowRoot();

  /// Returns the parent entry bounds for the child at path position idx
  /// (identity rectangle for the root).
  Status ParentEntryFor(const std::vector<PathElem>& path, size_t idx,
                        IndexEntry* entry, int* pos_in_parent);

  /// Applies a time split to decoded data entries: partitions into
  /// historical and current sets per the TIME-SPLIT RULE.
  static void PartitionByTime(const std::vector<DataEntry>& all, Timestamp t,
                              std::vector<DataEntry>* hist,
                              std::vector<DataEntry>* current,
                              size_t* redundant);

  /// Recursive walk for ScanHistoryRange. Current index pages are
  /// processed optimistically: the frame stays pinned (unlatched) across
  /// the child recursion and the page's mutation counter is revalidated
  /// after each child — a bumped counter re-reads the page and reprocesses
  /// it (the (key, ts)-keyed accumulator and the seen-blob set make
  /// re-visits idempotent). Returns Status::Busy when a page will not
  /// stabilize within the re-read budget; the caller then quiesces.
  Status ScanHistoryRangeRec(const NodeRef& ref, const Slice& key_lo,
                             const Slice& key_hi, Timestamp t_lo,
                             Timestamp t_hi,
                             std::map<std::pair<std::string, Timestamp>,
                                      std::string>* acc,
                             std::vector<HistAddr>* seen);

  Status WalkStats(const NodeRef& ref, SpaceStats* stats,
                   std::vector<std::pair<std::string, Timestamp>>* versions,
                   std::vector<HistAddr>* seen_hist);

  TsbOptions options_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<AppendStore> hist_;
  SplitPolicy policy_;
  /// Private clock, used only when no external clock was injected.
  LogicalClock own_clock_;
  /// The clock every timestamp decision goes through: &own_clock_ or
  /// TsbOptions::external_clock.
  LogicalClock* clock_;

  /// The writer-mode lock. Single-writer mode: every mutator holds it
  /// exclusively (strict serialization). Concurrent mode: mutators hold
  /// it SHARED — parallelism comes from per-page latches — while
  /// quiescing maintenance (Flush, ComputeSpaceStats, scan/cursor
  /// fallbacks) still takes it exclusively to stop all mutation.
  std::shared_mutex writer_mu_;
  /// Serializes structural changes (data/index splits, root growth) in
  /// concurrent mode. Lock order: writer_mu_ -> structure_mu_ -> page
  /// latches top-down (parent before child); never acquired while holding
  /// a page latch. Index pages mutate ONLY under this mutex, so split code
  /// may read them unlatched while holding it.
  std::mutex structure_mu_;

  /// RAII mutator lock: exclusive writer_mu_ in single-writer mode,
  /// shared in concurrent mode (see writer_mu_).
  struct WriterGuard {
    explicit WriterGuard(TsbTree* t) {
      if (t->options_.concurrent_writers) {
        shared = std::shared_lock<std::shared_mutex>(t->writer_mu_);
      } else {
        exclusive = std::unique_lock<std::shared_mutex>(t->writer_mu_);
      }
    }
    std::shared_lock<std::shared_mutex> shared;
    std::unique_lock<std::shared_mutex> exclusive;
  };

  std::atomic<uint32_t> root_{kInvalidPageId};
  std::atomic<uint32_t> height_{1};
  std::atomic<uint64_t> structure_epoch_{0};
  TsbCounters counters_;  // atomic fields; see tsb_stats.h
  mutable HistDecodeCounters hist_decodes_;  // bumped by lock-free readers
  // Written-node compression accounting (writer-only stores, but read by
  // HistStats concurrently, hence atomic).
  std::atomic<uint64_t> hist_node_raw_bytes_{0};
  std::atomic<uint64_t> hist_node_stored_bytes_{0};

  friend class VersionCursor;
  friend class TreeChecker;
};

}  // namespace tsb_tree
}  // namespace tsb

#endif  // TSBTREE_TSB_TSB_TREE_H_
