#include "txn/commit_ledger.h"

namespace tsb {
namespace txn {

CommitLedger::CommitLedger(LogicalClock* clock)
    : clock_(clock), completed_max_(clock->Visible()) {}

Timestamp CommitLedger::TickCommit() {
  std::lock_guard<std::mutex> lock(mu_);
  const Timestamp ts = clock_->Tick();
  inflight_.insert(ts);
  return ts;
}

void CommitLedger::EndCommit(Timestamp ts) {
  std::lock_guard<std::mutex> lock(mu_);
  inflight_.erase(ts);
  if (completed_max_ < ts) completed_max_ = ts;
  PublishLocked();
}

void CommitLedger::AbortCommit(Timestamp ts) {
  std::lock_guard<std::mutex> lock(mu_);
  inflight_.erase(ts);
  // Not completed: nothing was stamped at ts, so the watermark passing it
  // exposes nothing. Later commits may already be blocked behind it in
  // the in-flight set — recompute so they publish.
  PublishLocked();
}

void CommitLedger::PoisonCommit(Timestamp ts) {
  std::lock_guard<std::mutex> lock(mu_);
  inflight_.erase(ts);
  poisoned_.insert(ts);
  PublishLocked();
}

void CommitLedger::Unpoison(Timestamp ts) {
  std::lock_guard<std::mutex> lock(mu_);
  poisoned_.erase(ts);
  PublishLocked();
}

Timestamp CommitLedger::PublishableNow() const {
  std::lock_guard<std::mutex> lock(mu_);
  Timestamp publish =
      inflight_.empty() ? completed_max_ : *inflight_.begin() - 1;
  if (!poisoned_.empty() && publish > *poisoned_.begin() - 1) {
    publish = *poisoned_.begin() - 1;
  }
  return publish;
}

bool CommitLedger::HasPoisoned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !poisoned_.empty();
}

void CommitLedger::PublishLocked() {
  // Ordered prefix over the global in-flight set, capped below the oldest
  // poisoned timestamp. Readers at the result see whole cross-shard
  // transactions or nothing (the section 4.1 guarantee, lifted from one
  // tree to N).
  Timestamp publish =
      inflight_.empty() ? completed_max_ : *inflight_.begin() - 1;
  if (!poisoned_.empty() && publish > *poisoned_.begin() - 1) {
    publish = *poisoned_.begin() - 1;
  }
  clock_->Publish(publish);
}

}  // namespace txn
}  // namespace tsb
