// CommitLedger: cross-shard commit bookkeeping over ONE shared clock.
//
// A sharded database gives every shard the same LogicalClock, so a commit
// timestamp allocated on any shard is meaningful on all of them — but the
// published watermark then has to be computed GLOBALLY. If each shard
// published its own completed prefix, shard A finishing ts=10 would make
// ts=10 visible while shard B is still stamping its slice of the same
// multi-shard batch: a reader at the watermark would see a torn
// transaction. The ledger prevents that by owning both the timestamp
// allocation and the publish decision:
//
//   publish = min( ordered prefix over the GLOBAL in-flight set,
//                  smallest poisoned (failed mid-stamp) timestamp - 1 )
//
// TickCommit() allocates a timestamp and registers it in-flight in one
// critical section — the allocate-then-register race is what would let a
// later commit publish past an unregistered earlier one. EndCommit /
// AbortCommit / PoisonCommit retire a timestamp and recompute the
// watermark. Per-shard TxnManagers route every commit through the ledger
// when one is attached (see TxnManager::SetLedger); the sharded facade
// drives it directly for multi-shard batches, holding the timestamp
// in-flight from before the coordinator-log append until every touched
// shard has stamped — the prepare/commit ts-barrier.
#ifndef TSBTREE_TXN_COMMIT_LEDGER_H_
#define TSBTREE_TXN_COMMIT_LEDGER_H_

#include <mutex>
#include <set>

#include "common/clock.h"

namespace tsb {
namespace txn {

class CommitLedger {
 public:
  /// `clock` is the shared commit clock; must outlive the ledger.
  explicit CommitLedger(LogicalClock* clock);

  CommitLedger(const CommitLedger&) = delete;
  CommitLedger& operator=(const CommitLedger&) = delete;

  /// Allocates the next commit timestamp and registers it in-flight —
  /// atomically with respect to every publish computation, so no commit
  /// completing concurrently can move the watermark past it.
  Timestamp TickCommit();

  /// Retires `ts` as fully stamped everywhere; recomputes and publishes
  /// the watermark.
  void EndCommit(Timestamp ts);

  /// Retires `ts` as never-stamped (the commit aborted before touching
  /// any tree — e.g. its log append failed). The watermark may pass it.
  void AbortCommit(Timestamp ts);

  /// Retires `ts` as failed MID-stamp: some tree may carry a half-stamped
  /// record at `ts`, so the watermark is pinned below it until Unpoison
  /// (degraded-mode repair purges the records first).
  void PoisonCommit(Timestamp ts);

  /// Lifts the pin for a repaired timestamp and republishes.
  void Unpoison(Timestamp ts);

  /// The watermark the ledger would publish right now (tests/diagnostics).
  Timestamp PublishableNow() const;

  bool HasPoisoned() const;

 private:
  /// Computes the watermark under mu_ and publishes it (monotone CAS-max
  /// inside the clock, so stale recomputations are harmless).
  void PublishLocked();

  LogicalClock* const clock_;
  mutable std::mutex mu_;
  std::set<Timestamp> inflight_;
  std::set<Timestamp> poisoned_;
  Timestamp completed_max_ = 0;
};

}  // namespace txn
}  // namespace tsb

#endif  // TSBTREE_TXN_COMMIT_LEDGER_H_
