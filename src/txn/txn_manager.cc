#include "txn/txn_manager.h"

#include <utility>
#include <vector>

#include "common/logger.h"
#include "txn/commit_ledger.h"

namespace tsb {
namespace txn {

Transaction::~Transaction() {
  if (active_) {
    Abort();  // best effort; destruction must not lose locks
  }
}

Status Transaction::Put(const Slice& key, const Slice& value) {
  if (!active_) return Status::TxnNotActive("Put on finished transaction");
  TSB_RETURN_IF_ERROR(mgr_->LockKey(key.ToString(), id_));
  TSB_RETURN_IF_ERROR(mgr_->tree_->PutUncommitted(key, value, id_));
  writes_[key.ToString()] = value.ToString();
  return Status::OK();
}

Status Transaction::Get(const Slice& key, std::string* value) {
  if (!active_) return Status::TxnNotActive("Get on finished transaction");
  auto it = writes_.find(key.ToString());
  if (it != writes_.end()) {
    *value = it->second;
    return Status::OK();
  }
  return mgr_->tree_->GetCurrent(key, value);
}

Status Transaction::Commit(Timestamp* commit_ts) {
  if (!active_) return Status::TxnNotActive("Commit on finished transaction");
  return mgr_->CommitTxn(this, commit_ts);
}

Status Transaction::Abort() {
  if (!active_) return Status::TxnNotActive("Abort on finished transaction");
  return mgr_->AbortTxn(this);
}

Status TxnManager::Begin(std::unique_ptr<Transaction>* out) {
  out->reset(
      new Transaction(this, next_txn_.fetch_add(1, std::memory_order_acq_rel)));
  active_count_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status TxnManager::Write(const WriteBatch& batch, Timestamp* commit_ts) {
  if (batch.empty()) {
    // Nothing to stamp; report the current watermark as "when".
    if (commit_ts != nullptr) *commit_ts = tree_->VisibleNow();
    return Status::OK();
  }
  std::unique_ptr<Transaction> txn;
  TSB_RETURN_IF_ERROR(Begin(&txn));
  for (const auto& [key, value] : batch.ops()) {
    Status s = txn->Put(key, value);
    if (!s.ok()) {
      txn->Abort();  // all-or-nothing: a conflict undoes the whole batch
      return s;
    }
  }
  return txn->Commit(commit_ts);
}

Status TxnManager::LockKey(const std::string& key, TxnId txn) {
  std::lock_guard<std::mutex> lock(lock_mu_);
  auto [it, inserted] = lock_table_.emplace(key, txn);
  if (!inserted && it->second != txn) {
    return Status::TxnConflict("key locked by txn " +
                               std::to_string(it->second), key);
  }
  return Status::OK();
}

void TxnManager::UnlockKeys(const Transaction& txn) {
  std::lock_guard<std::mutex> lock(lock_mu_);
  for (const auto& [key, value] : txn.writes_) {
    auto it = lock_table_.find(key);
    if (it != lock_table_.end() && it->second == txn.id_) {
      lock_table_.erase(it);
    }
  }
}

Status TxnManager::CommitTxn(Transaction* txn, Timestamp* commit_ts) {
  return CommitInternal(txn, commit_ts, /*external_ts=*/0);
}

Status TxnManager::CommitPrepared(Transaction* txn, Timestamp ts) {
  if (!txn->active_) {
    return Status::TxnNotActive("CommitPrepared on finished transaction");
  }
  return CommitInternal(txn, nullptr, ts);
}

Status TxnManager::CommitInternal(Transaction* txn, Timestamp* commit_ts,
                                  Timestamp external_ts) {
  // One commit timestamp for the whole transaction (rollback-database
  // semantics: records are stamped with transaction commit time). With a
  // ledger, allocation goes through it so registration in the GLOBAL
  // in-flight set is atomic with the tick; an externally allocated
  // timestamp is already registered by the caller.
  if (tree_->options().concurrent_writers && !hook_) {
    // Concurrent commit: only the tick and the watermark bookkeeping are
    // serialized; the stamping descents themselves run in parallel
    // (optimistic latch coupling inside the tree). Publication advances
    // to the largest timestamp with no smaller commit still in flight —
    // an ordered prefix — so a reader at the watermark still sees whole
    // transactions or nothing, and a time split (which caps its boundary
    // at the PUBLISHED watermark) can never out-run an in-flight stamp.
    // A hook forces the serial path below: index maintenance must apply
    // in timestamp order.
    Timestamp ts;
    uint64_t wal_end_lsn = 0;
    {
      std::unique_lock<std::mutex> commit_lock(commit_mu_);
      commit_cv_.wait(commit_lock, [&] { return !frozen_; });
      if (gate_) TSB_RETURN_IF_ERROR(gate_());
      ts = external_ts != 0 ? external_ts
           : ledger_ != nullptr ? ledger_->TickCommit()
                                : tree_->clock().Tick();
      if (wal_ != nullptr) {
        // Log BEFORE entering inflight_: append order under commit_mu_ ==
        // timestamp order, so replay reproduces the one serialization the
        // watermark could have published. (Cross-shard slices may land
        // out of global ts order in a SHARD's log, but per key the lock
        // table serializes writers, so per-key order — all replay
        // depends on — still holds.) An append failure aborts the commit
        // before any stamp — nothing torn, nothing to poison — but the
        // log itself is sick: escalate.
        Status append_status =
            wal_->AppendCommit(ts, txn->writes_, &wal_end_lsn);
        if (!append_status.ok()) {
          commit_lock.unlock();
          if (external_ts == 0 && ledger_ != nullptr) {
            ledger_->AbortCommit(ts);
          }
          if (reporter_) reporter_("wal append", append_status);
          return append_status;
        }
        wal_appended_lsn_.store(wal_end_lsn, std::memory_order_release);
      }
      inflight_.insert(ts);
    }
    std::vector<Slice> keys;
    keys.reserve(txn->writes_.size());
    for (const auto& [key, value] : txn->writes_) keys.emplace_back(key);
    Status status = tree_->StampCommittedBatch(keys, txn->id_, ts);
    if (status.ok() && wal_ != nullptr) {
      // Group-commit rendezvous, while this commit is STILL in inflight_:
      // the watermark cannot publish past a commit whose durability is
      // unresolved, so an fdatasync failure can poison before any reader
      // observed the stamp.
      status = wal_->Sync(wal_end_lsn);
    }
    Timestamp publish;
    {
      std::lock_guard<std::mutex> commit_lock(commit_mu_);
      inflight_.erase(ts);
      if (frozen_ && inflight_.empty()) commit_cv_.notify_all();
      if (!status.ok()) {
        // Same poisoned-watermark contract as the serial path below.
        if (publish_cap_ > ts - 1) publish_cap_ = ts - 1;
        failed_commits_.push_back(ts);
        if (external_ts != 0) failed_external_.insert(ts);
      } else if (completed_max_ < ts) {
        completed_max_ = ts;
      }
      publish = inflight_.empty() ? completed_max_ : *inflight_.begin() - 1;
      if (publish > publish_cap_) publish = publish_cap_;
    }
    if (!status.ok()) {
      if (external_ts == 0 && ledger_ != nullptr) ledger_->PoisonCommit(ts);
      TSB_LOG_ERROR("commit at t=%llu failed mid-stamp (%s); freezing the "
                    "read watermark at t=%llu",
                    (unsigned long long)ts, status.ToString().c_str(),
                    (unsigned long long)publish_cap_);
      if (reporter_) reporter_("commit", status);
      return status;
    }
    if (external_ts == 0) {
      if (ledger_ != nullptr) {
        ledger_->EndCommit(ts);  // global ordered prefix; publishes inside
      } else {
        tree_->clock().Publish(publish);  // monotone CAS-max inside
      }
    }
    UnlockKeys(*txn);
    txn->active_ = false;
    active_count_.fetch_sub(1, std::memory_order_acq_rel);
    if (commit_ts != nullptr) *commit_ts = ts;
    return Status::OK();
  }
  // Serial path. The whole commit — tick, stamps, index hooks, publish —
  // runs under commit_mu_: the paper's model is a SINGLE updater (section
  // 4.1), and serializing commits makes timestamp order equal commit
  // order. That is what keeps every secondary-index Put monotone and
  // guarantees a time split can never choose a boundary above a
  // still-in-flight commit timestamp. Updaters may still build
  // transactions concurrently (Put phases interleave under the key-lock
  // table); only the commit point is serial.
  std::unique_lock<std::mutex> commit_lock(commit_mu_);
  commit_cv_.wait(commit_lock, [&] { return !frozen_; });
  if (gate_) TSB_RETURN_IF_ERROR(gate_());
  if (hook_ && tree_->options().concurrent_writers) {
    // Concurrent mode was requested but index maintenance forces the
    // serial path — make the fallback observable (ROADMAP carry-over).
    serial_fallback_commits_.fetch_add(1, std::memory_order_relaxed);
  }
  const Timestamp ts = external_ts != 0 ? external_ts
                       : ledger_ != nullptr ? ledger_->TickCommit()
                                            : tree_->clock().Tick();
  uint64_t wal_end_lsn = 0;
  if (wal_ != nullptr) {
    // Append failure aborts before any stamp: the transaction stays
    // active and abortable, nothing is torn — but the log itself is
    // sick: escalate.
    Status append_status = wal_->AppendCommit(ts, txn->writes_, &wal_end_lsn);
    if (!append_status.ok()) {
      commit_lock.unlock();
      if (external_ts == 0 && ledger_ != nullptr) ledger_->AbortCommit(ts);
      if (reporter_) reporter_("wal append", append_status);
      return append_status;
    }
    wal_appended_lsn_.store(wal_end_lsn, std::memory_order_release);
  }
  Status status;
  // Capture the previous committed versions for the hook BEFORE any
  // stamping — and only when a hook is installed (no secondary indexes =
  // no pre-commit read descents at all).
  std::vector<std::pair<bool, std::string>> old_values;
  if (hook_) {
    old_values.reserve(txn->writes_.size());
    for (const auto& [key, value] : txn->writes_) {
      std::string old_value;
      const bool had_old = tree_->GetCurrent(key, &old_value).ok();
      old_values.emplace_back(had_old, std::move(old_value));
    }
  }
  // Batched stamping: writes_ is a std::map, so the keys arrive sorted
  // and every key landing on the same leaf is stamped in one descent
  // (see TsbTree::StampCommittedBatch).
  std::vector<Slice> keys;
  keys.reserve(txn->writes_.size());
  for (const auto& [key, value] : txn->writes_) keys.emplace_back(key);
  status = tree_->StampCommittedBatch(keys, txn->id_, ts);
  if (status.ok() && wal_ != nullptr) {
    // Serial path: the sync runs under commit_mu_, so there is nothing to
    // amortize against — group commit only pays off on the concurrent
    // path, where syncs rendezvous outside the mutex.
    status = wal_->Sync(wal_end_lsn);
  }
  if (status.ok() && hook_) {
    size_t i = 0;
    for (const auto& [key, value] : txn->writes_) {
      status = hook_(key, old_values[i].first ? &old_values[i].second : nullptr,
                     value, ts);
      if (!status.ok()) break;
      ++i;
    }
  }
  if (!status.ok()) {
    // A storage/hook error mid-commit may leave partial stamps behind.
    // Those must never become reader-visible: poison the watermark so no
    // later commit can publish past this torn timestamp. The database
    // needs recovery (degraded-mode Resume purges the failed timestamp)
    // at this point; readers keep a consistent (older) view, writers keep
    // getting this commit's error surfaced.
    if (publish_cap_ > ts - 1) publish_cap_ = ts - 1;
    failed_commits_.push_back(ts);
    if (external_ts != 0) failed_external_.insert(ts);
    TSB_LOG_ERROR("commit at t=%llu failed mid-stamp (%s); freezing the "
                  "read watermark at t=%llu",
                  (unsigned long long)ts, status.ToString().c_str(),
                  (unsigned long long)publish_cap_);
    commit_lock.unlock();
    if (external_ts == 0 && ledger_ != nullptr) ledger_->PoisonCommit(ts);
    if (reporter_) reporter_("commit", status);
    return status;
  }
  // Publish only once every key is stamped AND every secondary index is
  // maintained: readers at the watermark see whole transactions or
  // nothing (paper section 4.1).
  if (external_ts == 0) {
    if (ledger_ != nullptr) {
      ledger_->EndCommit(ts);
    } else {
      tree_->clock().Publish(ts < publish_cap_ ? ts : publish_cap_);
    }
  }
  UnlockKeys(*txn);
  txn->active_ = false;
  active_count_.fetch_sub(1, std::memory_order_acq_rel);
  if (commit_ts != nullptr) *commit_ts = ts;
  return Status::OK();
}

std::vector<Timestamp> TxnManager::failed_commits() {
  std::lock_guard<std::mutex> lock(commit_mu_);
  return failed_commits_;
}

void TxnManager::ResetAfterRepair() {
  Timestamp publish;
  std::vector<Timestamp> own_failed;
  {
    std::lock_guard<std::mutex> lock(commit_mu_);
    own_failed.reserve(failed_commits_.size());
    for (const Timestamp ts : failed_commits_) {
      if (failed_external_.find(ts) == failed_external_.end()) {
        own_failed.push_back(ts);
      }
    }
    failed_commits_.clear();
    failed_external_.clear();
    publish_cap_ = kMaxCommittedTs;
    publish = completed_max_;
  }
  if (ledger_ != nullptr) {
    // The ledger owns the watermark. Lift only the pins THIS shard's own
    // commits set; externally-coordinated failures stay pinned until the
    // sharded facade has re-applied their decided slices (it unpoisons
    // them itself afterwards).
    for (const Timestamp ts : own_failed) ledger_->Unpoison(ts);
    return;
  }
  // Monotone CAS-max inside: commits that completed after the poisoning
  // (acked, durable, invisible under the cap) become readable here.
  tree_->clock().Publish(publish);
}

void TxnManager::FreezeCommits() {
  std::unique_lock<std::mutex> lock(commit_mu_);
  // Block new commit starts first, then drain the in-flight set with
  // commit_mu_ RELEASED inside the wait: finishing committers need the
  // mutex for their bookkeeping, so holding it through the drain would
  // deadlock.
  frozen_ = true;
  commit_cv_.wait(lock, [&] { return inflight_.empty(); });
}

void TxnManager::UnfreezeCommits() {
  {
    std::lock_guard<std::mutex> lock(commit_mu_);
    frozen_ = false;
  }
  commit_cv_.notify_all();
}

Status TxnManager::AbortTxn(Transaction* txn) {
  for (const auto& [key, value] : txn->writes_) {
    Status s = tree_->EraseUncommitted(key, txn->id_);
    if (!s.ok() && !s.IsNotFound()) return s;
  }
  UnlockKeys(*txn);
  txn->active_ = false;
  active_count_.fetch_sub(1, std::memory_order_acq_rel);
  return Status::OK();
}

}  // namespace txn
}  // namespace tsb
