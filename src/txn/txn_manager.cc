#include "txn/txn_manager.h"

namespace tsb {
namespace txn {

Transaction::~Transaction() {
  if (active_) {
    Abort();  // best effort; destruction must not lose locks
  }
}

Status Transaction::Put(const Slice& key, const Slice& value) {
  if (!active_) return Status::TxnNotActive("Put on finished transaction");
  TSB_RETURN_IF_ERROR(mgr_->LockKey(key.ToString(), id_));
  TSB_RETURN_IF_ERROR(mgr_->tree_->PutUncommitted(key, value, id_));
  writes_[key.ToString()] = value.ToString();
  return Status::OK();
}

Status Transaction::Get(const Slice& key, std::string* value) {
  if (!active_) return Status::TxnNotActive("Get on finished transaction");
  auto it = writes_.find(key.ToString());
  if (it != writes_.end()) {
    *value = it->second;
    return Status::OK();
  }
  return mgr_->tree_->GetCurrent(key, value);
}

Status Transaction::Commit(Timestamp* commit_ts) {
  if (!active_) return Status::TxnNotActive("Commit on finished transaction");
  return mgr_->CommitTxn(this, commit_ts);
}

Status Transaction::Abort() {
  if (!active_) return Status::TxnNotActive("Abort on finished transaction");
  return mgr_->AbortTxn(this);
}

Status TxnManager::Begin(std::unique_ptr<Transaction>* out) {
  out->reset(new Transaction(this, next_txn_++));
  active_count_++;
  return Status::OK();
}

Status TxnManager::LockKey(const std::string& key, TxnId txn) {
  auto [it, inserted] = lock_table_.emplace(key, txn);
  if (!inserted && it->second != txn) {
    return Status::TxnConflict("key locked by txn " +
                               std::to_string(it->second), key);
  }
  return Status::OK();
}

void TxnManager::UnlockKeys(const Transaction& txn) {
  for (const auto& [key, value] : txn.writes_) {
    auto it = lock_table_.find(key);
    if (it != lock_table_.end() && it->second == txn.id_) {
      lock_table_.erase(it);
    }
  }
}

Status TxnManager::CommitTxn(Transaction* txn, Timestamp* commit_ts) {
  // One commit timestamp for the whole transaction (rollback-database
  // semantics: records are stamped with transaction commit time).
  const Timestamp ts = tree_->clock().Tick();
  for (const auto& [key, value] : txn->writes_) {
    // Capture the previous committed version for the hook BEFORE stamping.
    std::string old_value;
    const bool had_old = tree_->GetCurrent(key, &old_value).ok();
    TSB_RETURN_IF_ERROR(tree_->StampCommitted(key, txn->id_, ts));
    if (hook_) {
      TSB_RETURN_IF_ERROR(
          hook_(key, had_old ? &old_value : nullptr, value, ts));
    }
  }
  UnlockKeys(*txn);
  txn->active_ = false;
  active_count_--;
  if (commit_ts != nullptr) *commit_ts = ts;
  return Status::OK();
}

Status TxnManager::AbortTxn(Transaction* txn) {
  for (const auto& [key, value] : txn->writes_) {
    Status s = tree_->EraseUncommitted(key, txn->id_);
    if (!s.ok() && !s.IsNotFound()) return s;
  }
  UnlockKeys(*txn);
  txn->active_ = false;
  active_count_--;
  return Status::OK();
}

}  // namespace txn
}  // namespace tsb
