// Transaction support for the TSB-tree, paper section 4.
//
// Updaters write uncommitted records (no timestamp) through the tree; at
// commit every written key is stamped with one commit timestamp issued by
// the tree's logical clock; on abort the uncommitted records are erased —
// possible precisely because the current database is erasable.
//
// Read-only transactions (section 4.1) take a start timestamp and read
// versions as of that time WITHOUT any locks: they never see uncommitted
// data (it has no timestamp) and never wait for updaters, because no
// updater can commit at or before an already-issued timestamp.
//
// Write-write conflicts between concurrent transactions are rejected
// eagerly (first-writer-wins lock table).
#ifndef TSBTREE_TXN_TXN_MANAGER_H_
#define TSBTREE_TXN_TXN_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/slice.h"
#include "common/status.h"
#include "tsb/cursor.h"
#include "tsb/pinnable_value.h"
#include "tsb/tsb_tree.h"
#include "txn/write_batch.h"
#include "wal/wal.h"

namespace tsb {
namespace txn {

class CommitLedger;
class TxnManager;

/// An updater transaction. Obtain via TxnManager::Begin; finish with
/// Commit or Abort (destruction aborts a still-active transaction).
/// A Transaction object belongs to one thread; different transactions may
/// run on different threads concurrently (first-writer-wins key locks
/// resolve conflicts, the tree serializes page mutations internally).
class Transaction {
 public:
  ~Transaction();
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  TxnId id() const { return id_; }
  bool active() const { return active_; }

  /// Buffers an uncommitted version of `key`. Fails with TxnConflict if
  /// another active transaction wrote the key first.
  Status Put(const Slice& key, const Slice& value);

  /// Reads through the transaction: own uncommitted write first, then the
  /// latest committed version.
  Status Get(const Slice& key, std::string* value);

  /// Stamps every written key with one new commit timestamp.
  Status Commit(Timestamp* commit_ts = nullptr);

  /// Erases every uncommitted record this transaction wrote.
  Status Abort();

  size_t write_count() const { return writes_.size(); }

 private:
  friend class TxnManager;
  Transaction(TxnManager* mgr, TxnId id) : mgr_(mgr), id_(id) {}

  TxnManager* mgr_;
  TxnId id_;
  bool active_ = true;
  std::map<std::string, std::string> writes_;  // key -> newest value
};

/// A lock-free read-only transaction: a captured timestamp (section 4.1).
class ReadTransaction {
 public:
  ReadTransaction(tsb_tree::TsbTree* tree, Timestamp ts)
      : tree_(tree), ts_(ts) {}

  Timestamp timestamp() const { return ts_; }

  /// Reads the version of `key` valid at the transaction's timestamp.
  Status Get(const Slice& key, std::string* value,
             Timestamp* version_ts = nullptr) {
    return tree_->GetAsOf(key, ts_, value, version_ts);
  }

  /// Zero-copy read at the transaction's timestamp (see
  /// TsbTree::Get(ReadOptions, key, PinnableValue*)).
  Status Get(const Slice& key, tsb_tree::PinnableValue* value) {
    tsb_tree::ReadOptions options;
    options.as_of = ts_;
    return tree_->Get(options, key, value);
  }

  /// Cursor over the key x time rectangle pinned at the transaction's
  /// timestamp.
  std::unique_ptr<tsb_tree::VersionCursor> NewCursor() {
    tsb_tree::ReadOptions options;
    options.as_of = ts_;
    return tree_->NewCursor(options);
  }

  /// Key-ordered scan of the database as of the transaction's timestamp —
  /// the paper's lock-free backup/unload use case.
  std::unique_ptr<tsb_tree::SnapshotIterator> NewIterator() {
    return tree_->NewSnapshotIterator(ts_);
  }

 private:
  tsb_tree::TsbTree* tree_;
  Timestamp ts_;
};

/// Issues transactions over one TsbTree. Thread-safe: the lock table is
/// mutex-guarded, transaction ids and the active count are atomic, and
/// BeginReadOnly is genuinely lock-free (one atomic clock load — paper
/// section 4.1: readers never wait for updaters).
class TxnManager {
 public:
  /// Called once per committed key, after stamping, with the previous
  /// committed value (nullptr if the key is new). Used by the DB layer to
  /// maintain secondary indexes.
  using CommitHook = std::function<Status(
      const std::string& key, const std::string* old_value,
      const std::string& new_value, Timestamp commit_ts)>;

  explicit TxnManager(tsb_tree::TsbTree* tree) : tree_(tree) {}

  /// Starts an updater transaction.
  Status Begin(std::unique_ptr<Transaction>* out);

  /// Applies `batch` atomically under one commit timestamp: every key is
  /// locked (first-writer-wins; a conflict fails the WHOLE batch with
  /// nothing applied), written uncommitted, then stamped and published as
  /// one transaction — secondary indexes update with the same timestamp
  /// through the commit hook.
  Status Write(const WriteBatch& batch, Timestamp* commit_ts = nullptr);

  /// Starts a lock-free reader pinned at the committed watermark (one
  /// atomic load; never blocks, never takes a mutex). The watermark only
  /// covers fully-stamped commits, so the reader can never observe a torn
  /// multi-key transaction — the paper's 4.1 guarantee that no updater
  /// commits at or before an already-issued read timestamp.
  ReadTransaction BeginReadOnly() {
    return ReadTransaction(tree_, tree_->VisibleNow());
  }

  /// Not thread-safe relative to in-flight commits; install before
  /// concurrent use (the DB layer does this when the first secondary
  /// index is registered). A hook also forces commits back onto the
  /// serial path even when the tree runs with concurrent_writers: index
  /// maintenance must apply in timestamp order.
  void SetCommitHook(CommitHook hook) { hook_ = std::move(hook); }

  /// Installs the write-ahead log every commit appends to before
  /// stamping. Not thread-safe relative to in-flight commits; the DB
  /// layer installs it during Open (before handing the manager out) and
  /// swaps it at log rotation with commits frozen.
  /// nullptr = no logging (raw-device databases).
  void SetWal(wal::Wal* wal) {
    wal_ = wal;
    wal_appended_lsn_.store(wal != nullptr ? wal->appended_lsn() : 0,
                            std::memory_order_release);
  }
  wal::Wal* wal() const { return wal_; }

  /// End offset of the last commit frame this manager appended to the
  /// CURRENT log (resets on SetWal at rotation). This — not
  /// Wal::appended_lsn() — is what the DB layer's size-triggered
  /// checkpoint must poll: it is updated under commit_mu_ while the Wal
  /// object is pinned by the in-flight commit, so reading it never
  /// touches a Wal that a concurrent rotation is destroying.
  uint64_t wal_appended_lsn() const {
    return wal_appended_lsn_.load(std::memory_order_acquire);
  }

  /// Degraded-mode gate, checked at every commit start (after any freeze
  /// wait, before the commit timestamp is issued). Returns the sticky
  /// background error when the DB is degraded so commits fail fast with
  /// the original cause instead of wedging further. Install before
  /// concurrent use (the DB layer does, during Open).
  using CommitGate = std::function<Status()>;
  void SetCommitGate(CommitGate gate) { gate_ = std::move(gate); }

  /// Called (outside internal locks) when a commit fails in a way that
  /// sickens the database: a WAL append failure, or ANY failure after the
  /// commit timestamp entered the stamping pipeline (mid-stamp, sync,
  /// index hook) — those poison the read watermark until repaired. The DB
  /// layer escalates into its ErrorHandler. Install before concurrent use.
  using ErrorReporter =
      std::function<void(const std::string& context, const Status& s)>;
  void SetErrorReporter(ErrorReporter fn) { reporter_ = std::move(fn); }

  /// Attaches the cross-shard commit ledger (sharded databases share one
  /// clock across N trees; see txn/commit_ledger.h). With a ledger,
  /// commit-timestamp allocation and watermark publication route through
  /// it — this manager never publishes on its own — so one watermark
  /// spans every shard. Install before concurrent use (the sharded
  /// facade does, during Open). nullptr = standalone database.
  void SetLedger(CommitLedger* ledger) { ledger_ = ledger; }
  CommitLedger* ledger() const { return ledger_; }

  /// Commits `txn` at an EXTERNALLY allocated timestamp — the shard-side
  /// half of a cross-shard commit. The caller has already allocated `ts`
  /// on the shared clock, registered it in the ledger (pinning the
  /// watermark below it) and made the cross-shard decision durable in its
  /// coordinator log; this call appends the shard's slice to the shard
  /// WAL, stamps it, and rides the group-commit sync — but does NOT
  /// publish or retire the ledger entry: the caller does, once every
  /// touched shard has finished. On failure the half-stamped records are
  /// tracked for purge by this shard's Resume, while the ledger
  /// poison/unpoison lifecycle for `ts` stays with the caller (the slice
  /// is re-applied from the coordinator log before the pin lifts).
  Status CommitPrepared(Transaction* txn, Timestamp ts);

  /// Commits forced onto the serial stamping path while the tree ran
  /// with concurrent_writers (a commit hook — secondary-index
  /// maintenance — requires timestamp-ordered application). A growing
  /// counter on an indexed workload is the signal that indexed commits
  /// are the write-scaling bottleneck (ROADMAP carry-over).
  uint64_t serial_fallback_commits() const {
    return serial_fallback_commits_.load(std::memory_order_relaxed);
  }

  /// Commit timestamps that ticked and then failed mid-commit: whatever
  /// records they half-stamped are invisible (the poisoned watermark caps
  /// below every one of them) and must be purged from every tree before
  /// degraded mode can lift. Snapshot, in tick order.
  std::vector<Timestamp> failed_commits();

  /// Post-repair reset, called by the DB's Resume with commits frozen and
  /// the failed timestamps already purged: clears the failed list, lifts
  /// the poisoned watermark, and publishes the completed maximum — acked
  /// commits that finished AFTER the poisoning (durable but invisible
  /// until now) become readable again.
  void ResetAfterRepair();

  /// Blocks NEW commits and waits until every in-flight commit finishes
  /// (stamped, synced, bookkept). While frozen, the WAL end is exactly
  /// the committed state of the tree — the checkpoint invariant. Commits
  /// resume on UnfreezeCommits. One freezer at a time; reentrant freezing
  /// deadlocks (the DB layer serializes checkpoints).
  void FreezeCommits();
  void UnfreezeCommits();

  size_t active_txns() const {
    return active_count_.load(std::memory_order_acquire);
  }
  tsb_tree::TsbTree* tree() { return tree_; }

 private:
  friend class Transaction;

  Status LockKey(const std::string& key, TxnId txn);
  void UnlockKeys(const Transaction& txn);
  Status CommitTxn(Transaction* txn, Timestamp* commit_ts);
  /// Shared body of CommitTxn and CommitPrepared. `external_ts` == 0
  /// means "allocate one here" (ledger or tree clock); nonzero means the
  /// caller allocated, pins the watermark, and publishes.
  Status CommitInternal(Transaction* txn, Timestamp* commit_ts,
                        Timestamp external_ts);
  Status AbortTxn(Transaction* txn);

  tsb_tree::TsbTree* tree_;
  CommitHook hook_;
  CommitGate gate_;        // may be empty (no degraded-mode plumbing)
  ErrorReporter reporter_; // may be empty
  CommitLedger* ledger_ = nullptr;  // may be null (standalone DB)
  std::atomic<uint64_t> serial_fallback_commits_{0};
  wal::Wal* wal_ = nullptr;
  /// Mirror of the live log's append offset, written only under
  /// commit_mu_ (appends and SetWal both hold it, directly or via the
  /// rotation freeze); see wal_appended_lsn().
  std::atomic<uint64_t> wal_appended_lsn_{0};
  std::atomic<TxnId> next_txn_{1};
  std::atomic<size_t> active_count_{0};
  std::mutex lock_mu_;  // guards lock_table_
  std::map<std::string, TxnId> lock_table_;
  // Serial mode: serializes the commit point (tick -> stamps -> hooks ->
  // publish); see CommitTxn. Concurrent mode (tree option
  // concurrent_writers, no hook): guards only the inflight set around the
  // stamping phase, which runs unlocked. Always guards publish_cap_,
  // inflight_ and completed_max_.
  std::mutex commit_mu_;
  /// Signals commit starts blocked by a freeze and the freezer's drain
  /// wait; guarded by commit_mu_.
  std::condition_variable commit_cv_;
  bool frozen_ = false;
  Timestamp publish_cap_ = kMaxCommittedTs;
  // Commit timestamps ticked but not yet fully stamped. The publishable
  // watermark is the largest timestamp below every member: publishing an
  // ordered prefix keeps the 4.1 guarantee (readers never see a torn or
  // skipped commit) without serializing the stamping work itself.
  std::set<Timestamp> inflight_;
  Timestamp completed_max_ = 0;
  /// Ticked-then-failed commit timestamps awaiting purge; see
  /// failed_commits(). Guarded by commit_mu_.
  std::vector<Timestamp> failed_commits_;
  /// Subset of failed_commits_ whose timestamps were EXTERNALLY allocated
  /// (CommitPrepared): this shard's Resume purges their records, but must
  /// NOT lift their ledger pins — the cross-shard coordinator re-applies
  /// the decided slices first and unpoisons afterwards. Guarded by
  /// commit_mu_.
  std::set<Timestamp> failed_external_;
};

}  // namespace txn
}  // namespace tsb

#endif  // TSBTREE_TXN_TXN_MANAGER_H_
