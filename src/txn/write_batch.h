// WriteBatch: a group of writes applied atomically under ONE commit
// timestamp.
//
// The batch is plain data — building it touches no locks and no tree
// state. TxnManager::Write turns it into a transaction at apply time, so
// the batch inherits the full commit discipline: first-writer-wins key
// locks, a single clock tick stamping every record, secondary-index
// maintenance through the commit hook, and all-or-nothing visibility at
// the published watermark. This replaces N autocommit Puts, which would
// burn N timestamps and let readers observe the group half-applied.
#ifndef TSBTREE_TXN_WRITE_BATCH_H_
#define TSBTREE_TXN_WRITE_BATCH_H_

#include <string>
#include <utility>
#include <vector>

#include "common/slice.h"

namespace tsb {
namespace txn {

class WriteBatch {
 public:
  /// Buffers a write of `key` = `value`. A later Put of the same key
  /// within the batch wins (one version per key per commit timestamp).
  void Put(const Slice& key, const Slice& value) {
    ops_.emplace_back(key.ToString(), value.ToString());
  }

  void Clear() { ops_.clear(); }
  size_t Count() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  /// Buffered (key, value) pairs in Put order.
  const std::vector<std::pair<std::string, std::string>>& ops() const {
    return ops_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> ops_;
};

}  // namespace txn
}  // namespace tsb

#endif  // TSBTREE_TXN_WRITE_BATCH_H_
