#include "util/workload.h"

#include <cstdio>

namespace tsb {
namespace util {

WorkloadGenerator::WorkloadGenerator(const WorkloadSpec& spec)
    : spec_(spec), rnd_(spec.seed) {}

std::string WorkloadGenerator::KeyFor(size_t i) const {
  char buf[32];
  snprintf(buf, sizeof(buf), "%s%08zu", spec_.key_prefix.c_str(), i);
  return buf;
}

bool WorkloadGenerator::Next(Op* op) {
  if (produced_ >= spec_.num_ops) return false;
  op->ts = static_cast<Timestamp>(produced_ + 1);

  const bool update =
      keys_created_ > 0 && rnd_.NextDouble() < spec_.update_fraction;
  if (update) {
    op->type = OpType::kUpdate;
    const size_t victim =
        spec_.skewed_updates
            ? keys_created_ - 1 - rnd_.Skewed(keys_created_)
            : rnd_.Uniform(keys_created_);
    op->key = KeyFor(victim);
  } else {
    op->type = OpType::kInsert;
    op->key = KeyFor(keys_created_++);
  }

  size_t vs = spec_.value_size;
  if (spec_.variable_value_size && vs > 1) {
    vs = vs / 2 + rnd_.Uniform(vs);
  }
  op->value.assign(vs, static_cast<char>('a' + (produced_ % 26)));
  produced_++;
  return true;
}

std::vector<Op> WorkloadGenerator::All() {
  std::vector<Op> ops;
  ops.reserve(spec_.num_ops);
  Op op;
  while (Next(&op)) ops.push_back(op);
  return ops;
}

}  // namespace util
}  // namespace tsb
