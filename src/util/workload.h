// Workload generation for experiments E1-E9.
//
// The paper's planned evaluation (section 5) varies the RATE OF UPDATE
// VERSUS INSERTION; this generator produces deterministic operation streams
// parameterized exactly that way, so every bench and property test can
// reproduce a row of the space/redundancy tables.
#ifndef TSBTREE_UTIL_WORKLOAD_H_
#define TSBTREE_UTIL_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"

namespace tsb {
namespace util {

enum class OpType : uint8_t {
  kInsert = 0,  ///< a brand-new key
  kUpdate = 1,  ///< a new version of an existing key
};

struct Op {
  OpType type;
  std::string key;
  std::string value;
  Timestamp ts;
};

struct WorkloadSpec {
  uint64_t seed = 42;
  size_t num_ops = 10000;
  /// Fraction of operations that update existing keys (0.0 = pure inserts,
  /// 1.0 = pure updates once a key exists).
  double update_fraction = 0.5;
  /// Uniformly random update victim vs skew toward recent keys.
  bool skewed_updates = false;
  size_t value_size = 20;
  /// Value sizes vary uniformly in [value_size/2, value_size*3/2] if true.
  bool variable_value_size = false;
  /// Keys are zero-padded decimals under this prefix.
  std::string key_prefix = "k";
};

/// Deterministic operation stream: op i carries timestamp i+1.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(const WorkloadSpec& spec);

  /// Returns true and fills `op` until num_ops are produced.
  bool Next(Op* op);

  /// Generates the whole stream at once.
  std::vector<Op> All();

  size_t keys_created() const { return keys_created_; }
  const WorkloadSpec& spec() const { return spec_; }

  /// Formats the i-th key of this workload.
  std::string KeyFor(size_t i) const;

 private:
  WorkloadSpec spec_;
  Random rnd_;
  size_t produced_ = 0;
  size_t keys_created_ = 0;
};

}  // namespace util
}  // namespace tsb

#endif  // TSBTREE_UTIL_WORKLOAD_H_
